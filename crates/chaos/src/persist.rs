//! [`Persist`] impls for the chaos layer. The disruption plan is part of
//! the checkpointed dispatcher state: it is the run's *only* source of
//! pseudo-randomness (generated up front from the chaos seed, never
//! during the run), so snapshotting the materialized plan — rather than
//! an RNG cursor — captures the whole random stream exactly.

use crate::plan::{ChaosConfig, Disruption, DisruptionPlan, TimedDisruption};
use crate::retry::RetryPolicy;
use mtshare_model::{RequestId, TaxiId};
use mtshare_persist::{DecodeError, Decoder, Encoder, Persist};
use mtshare_road::TrafficShiftSpec;

impl Persist for Disruption {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Disruption::Breakdown { taxi } => {
                enc.u8(0);
                taxi.encode(enc);
            }
            Disruption::Cancel { request } => {
                enc.u8(1);
                request.encode(enc);
            }
            Disruption::TrafficShift(spec) => {
                enc.u8(2);
                spec.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.u8()? {
            0 => Ok(Disruption::Breakdown { taxi: TaxiId::decode(dec)? }),
            1 => Ok(Disruption::Cancel { request: RequestId::decode(dec)? }),
            2 => Ok(Disruption::TrafficShift(TrafficShiftSpec::decode(dec)?)),
            _ => Err(DecodeError::Invalid("unknown Disruption tag")),
        }
    }
}

impl Persist for TimedDisruption {
    fn encode(&self, enc: &mut Encoder) {
        enc.f64(self.at);
        self.disruption.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(TimedDisruption { at: dec.f64()?, disruption: Disruption::decode(dec)? })
    }
}

impl Persist for DisruptionPlan {
    fn encode(&self, enc: &mut Encoder) {
        enc.seq(&self.events);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(DisruptionPlan { events: dec.seq()? })
    }
}

impl Persist for ChaosConfig {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.seed);
        enc.u32(self.breakdowns);
        enc.u32(self.cancellations);
        enc.u32(self.traffic_shifts);
        enc.f64(self.shift_radius_m);
        enc.f64(self.shift_factor);
        enc.f64(self.shift_duration_s);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(ChaosConfig {
            seed: dec.u64()?,
            breakdowns: dec.u32()?,
            cancellations: dec.u32()?,
            traffic_shifts: dec.u32()?,
            shift_radius_m: dec.f64()?,
            shift_factor: dec.f64()?,
            shift_duration_s: dec.f64()?,
        })
    }
}

impl Persist for RetryPolicy {
    fn encode(&self, enc: &mut Encoder) {
        enc.u32(self.max_attempts);
        enc.f64(self.base_delay_s);
        enc.f64(self.backoff_factor);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(RetryPolicy {
            max_attempts: dec.u32()?,
            base_delay_s: dec.f64()?,
            backoff_factor: dec.f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtshare_road::NodeId;

    #[test]
    fn generated_plan_round_trips_exactly() {
        let cfg = ChaosConfig::with_seed(7);
        let graph = mtshare_road::grid_city(&mtshare_road::GridCityConfig::tiny()).unwrap();
        let plan = DisruptionPlan::generate(&cfg, &graph, 3600.0, 20, 100);
        let back = DisruptionPlan::from_bytes(&plan.to_bytes()).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn every_disruption_kind_round_trips() {
        let plan = DisruptionPlan {
            events: vec![
                TimedDisruption { at: 10.0, disruption: Disruption::Breakdown { taxi: TaxiId(3) } },
                TimedDisruption {
                    at: 20.5,
                    disruption: Disruption::Cancel { request: RequestId(9) },
                },
                TimedDisruption {
                    at: 30.25,
                    disruption: Disruption::TrafficShift(TrafficShiftSpec {
                        center: NodeId(5),
                        radius_m: 500.0,
                        factor: 0.4,
                        start_s: 30.25,
                        duration_s: 120.0,
                    }),
                },
            ],
        };
        assert_eq!(DisruptionPlan::from_bytes(&plan.to_bytes()).unwrap(), plan);
    }

    #[test]
    fn configs_round_trip() {
        let cfg = ChaosConfig::with_seed(42);
        assert_eq!(ChaosConfig::from_bytes(&cfg.to_bytes()).unwrap(), cfg);
        let retry = RetryPolicy { max_attempts: 5, base_delay_s: 12.0, backoff_factor: 1.5 };
        assert_eq!(RetryPolicy::from_bytes(&retry.to_bytes()).unwrap(), retry);
        assert!(Disruption::from_bytes(&[9]).is_err());
    }
}
