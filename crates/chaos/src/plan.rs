//! Seeded disruption plans.
//!
//! A plan is generated once, up front, from a single seed — never during
//! the run — so the injected faults are a pure function of
//! `(seed, mix, fleet size, request count)` and byte-identical traces
//! survive any `--parallelism`.

use mtshare_model::{RequestId, TaxiId, Time};
use mtshare_road::{NodeId, RoadNetwork, TrafficShiftSpec};
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Disruption {
    /// The taxi breaks down and never moves again; its passengers are
    /// orphaned and re-dispatched.
    Breakdown {
        /// The failing taxi.
        taxi: TaxiId,
    },
    /// The passenger cancels before pick-up. Cancels targeting a rider
    /// already picked up (or already rejected) are no-ops.
    Cancel {
        /// The cancelling request.
        request: RequestId,
    },
    /// A localized travel-time shift that stretches committed routes.
    TrafficShift(TrafficShiftSpec),
}

/// A disruption stamped with its injection time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedDisruption {
    /// Simulation time at which the fault fires.
    pub at: Time,
    /// The fault.
    pub disruption: Disruption,
}

/// Disruption-generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Seed for the deterministic plan.
    pub seed: u64,
    /// Number of taxi breakdowns to inject (capped at the fleet size).
    pub breakdowns: u32,
    /// Number of passenger cancellations to inject (capped at the request
    /// count).
    pub cancellations: u32,
    /// Number of traffic shifts to inject.
    pub traffic_shifts: u32,
    /// Radius of each shift's affected region, metres.
    pub shift_radius_m: f64,
    /// Travel-time multiplier of each shift (above 1 slows traffic).
    pub shift_factor: f64,
    /// Duration of each shift, seconds.
    pub shift_duration_s: f64,
}

impl ChaosConfig {
    /// A default mix for `--chaos-seed` without `--disruptions`: a few of
    /// every kind.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            breakdowns: 2,
            cancellations: 4,
            traffic_shifts: 2,
            shift_radius_m: 600.0,
            shift_factor: 2.0,
            shift_duration_s: 600.0,
        }
    }

    /// Parses a `--disruptions` mix spec of the form
    /// `breakdowns=2,cancels=4,shifts=1` (any subset, any order; unnamed
    /// kinds keep their current value). Returns an error message for
    /// unknown keys or unparsable counts.
    pub fn parse_mix(&mut self, spec: &str) -> Result<(), String> {
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, val) = part
                .split_once('=')
                .ok_or_else(|| format!("disruption spec `{part}` is not key=count"))?;
            let n: u32 = val
                .trim()
                .parse()
                .map_err(|_| format!("disruption count `{val}` is not a non-negative integer"))?;
            match key.trim() {
                "breakdowns" => self.breakdowns = n,
                "cancels" | "cancellations" => self.cancellations = n,
                "shifts" | "traffic_shifts" => self.traffic_shifts = n,
                other => return Err(format!("unknown disruption kind `{other}`")),
            }
        }
        Ok(())
    }
}

/// A complete, time-sorted disruption schedule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DisruptionPlan {
    /// The disruptions in injection order (ascending time; generation
    /// order breaks ties).
    pub events: Vec<TimedDisruption>,
}

impl DisruptionPlan {
    /// Generates the plan for a scenario of `horizon_s` seconds over
    /// `n_taxis` taxis and `n_requests` requests on `graph`.
    ///
    /// Breakdowns hit distinct taxis and cancellations distinct requests
    /// (sampled without replacement), so every injected fault is
    /// observable. Injection times land in the first 80% of the horizon —
    /// late faults would outlive every request and test nothing.
    pub fn generate(
        cfg: &ChaosConfig,
        graph: &RoadNetwork,
        horizon_s: f64,
        n_taxis: usize,
        n_requests: usize,
    ) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let window = (horizon_s * 0.8).max(1.0);
        let mut events = Vec::new();

        for taxi in sample_distinct(&mut rng, n_taxis, cfg.breakdowns as usize) {
            events.push(TimedDisruption {
                at: rng.gen_range(0.0..window),
                disruption: Disruption::Breakdown { taxi: TaxiId(taxi as u32) },
            });
        }
        for request in sample_distinct(&mut rng, n_requests, cfg.cancellations as usize) {
            events.push(TimedDisruption {
                at: rng.gen_range(0.0..window),
                disruption: Disruption::Cancel { request: RequestId(request as u32) },
            });
        }
        for _ in 0..cfg.traffic_shifts {
            let at = rng.gen_range(0.0..window);
            let center = NodeId(rng.gen_range(0..graph.node_count() as u32));
            events.push(TimedDisruption {
                at,
                disruption: Disruption::TrafficShift(TrafficShiftSpec {
                    center,
                    radius_m: cfg.shift_radius_m,
                    factor: cfg.shift_factor,
                    start_s: at,
                    duration_s: cfg.shift_duration_s,
                }),
            });
        }

        // Stable sort: ties keep generation order, which is itself
        // deterministic under the seeded rng.
        events.sort_by(|a, b| a.at.total_cmp(&b.at));
        Self { events }
    }

    /// Number of planned disruptions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// `k` distinct values from `0..n` (fewer when `n < k`), in draw order.
fn sample_distinct(rng: &mut SmallRng, n: usize, k: usize) -> Vec<usize> {
    let k = k.min(n);
    let mut pool: Vec<usize> = (0..n).collect();
    let mut out = Vec::with_capacity(k);
    for _ in 0..k {
        let i = rng.gen_range(0..pool.len());
        out.push(pool.swap_remove(i));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtshare_road::{grid_city, GridCityConfig};

    fn graph() -> RoadNetwork {
        grid_city(&GridCityConfig::tiny()).unwrap()
    }

    #[test]
    fn same_seed_same_plan() {
        let g = graph();
        let cfg = ChaosConfig::with_seed(42);
        let a = DisruptionPlan::generate(&cfg, &g, 3600.0, 50, 200);
        let b = DisruptionPlan::generate(&cfg, &g, 3600.0, 50, 200);
        assert_eq!(a.events, b.events);
        assert_eq!(a.len(), 8);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seed_different_plan() {
        let g = graph();
        let a = DisruptionPlan::generate(&ChaosConfig::with_seed(1), &g, 3600.0, 50, 200);
        let b = DisruptionPlan::generate(&ChaosConfig::with_seed(2), &g, 3600.0, 50, 200);
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn plan_is_sorted_within_window_and_targets_are_distinct() {
        let g = graph();
        let mut cfg = ChaosConfig::with_seed(7);
        cfg.breakdowns = 10;
        cfg.cancellations = 20;
        cfg.traffic_shifts = 5;
        let plan = DisruptionPlan::generate(&cfg, &g, 1000.0, 10, 20);
        assert!(plan.events.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(plan.events.iter().all(|e| e.at >= 0.0 && e.at < 800.0));
        let mut taxis: Vec<_> = plan
            .events
            .iter()
            .filter_map(|e| match e.disruption {
                Disruption::Breakdown { taxi } => Some(taxi),
                _ => None,
            })
            .collect();
        taxis.sort_unstable();
        let n = taxis.len();
        taxis.dedup();
        assert_eq!(n, 10, "breakdowns capped at fleet size");
        assert_eq!(taxis.len(), n, "breakdown targets must be distinct");
        // Shift specs carry their own start time.
        for e in &plan.events {
            if let Disruption::TrafficShift(s) = e.disruption {
                assert_eq!(s.start_s, e.at);
                assert!(s.factor > 1.0 && s.radius_m > 0.0 && s.duration_s > 0.0);
                assert!(s.active_at(e.at) && !s.active_at(e.at + s.duration_s));
            }
        }
    }

    #[test]
    fn mix_spec_parses_and_rejects_garbage() {
        let mut cfg = ChaosConfig::with_seed(0);
        cfg.parse_mix("breakdowns=3,cancels=7,shifts=0").unwrap();
        assert_eq!((cfg.breakdowns, cfg.cancellations, cfg.traffic_shifts), (3, 7, 0));
        cfg.parse_mix("cancellations=9").unwrap();
        assert_eq!(cfg.cancellations, 9);
        assert!(cfg.parse_mix("meteors=1").is_err());
        assert!(cfg.parse_mix("breakdowns").is_err());
        assert!(cfg.parse_mix("breakdowns=-2").is_err());
    }
}
