//! Dispatcher-death injection: the one disruption the in-world chaos
//! plan cannot model. A [`CrashPoint`] kills the *process itself* after
//! a fixed number of simulator steps, so a harness (or the CI
//! crash-restart job) can restart it with `--resume` and verify the
//! continued trace is byte-identical to an uninterrupted run.
//!
//! The step counter — not wall clock or sim time — defines the crash
//! position: one step per committed unit of work in the sequential event
//! order (a heap event, a consumed arrival, or a validation sweep).
//! Batched dispatch consumes arrivals in the same sequence, so a step
//! index names the same world state at any `--parallelism`.

/// How the simulator should die when the crash step is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// Hard-exit the process with [`CRASH_EXIT_CODE`] after flushing the
    /// WAL and trace sinks — the CLI/harness path. Deliberately *not* a
    /// clean shutdown: no final snapshot is written, recovery must come
    /// from the last checkpoint plus the WAL.
    ExitProcess,
    /// Return control to the caller instead of exiting — the in-process
    /// test path, so a single test can crash, resume and compare.
    Return,
}

/// Exit code of a run killed by `--crash-at`, distinct from success (0)
/// and ordinary errors (1/2) so restart harnesses can tell a planned
/// crash from a real failure.
pub const CRASH_EXIT_CODE: i32 = 42;

/// A planned dispatcher death.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Die once this many steps have been fully processed.
    pub at_step: u64,
    /// Process-exit (CLI) or in-process return (tests).
    pub mode: CrashMode,
}

impl CrashPoint {
    /// A process-exiting crash after `at_step` steps.
    pub fn exit_at(at_step: u64) -> Self {
        Self { at_step, mode: CrashMode::ExitProcess }
    }

    /// An in-process crash after `at_step` steps (for tests).
    pub fn return_at(at_step: u64) -> Self {
        Self { at_step, mode: CrashMode::Return }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_mode() {
        assert_eq!(CrashPoint::exit_at(10).mode, CrashMode::ExitProcess);
        assert_eq!(CrashPoint::return_at(10).mode, CrashMode::Return);
        assert_eq!(CrashPoint::exit_at(10).at_step, 10);
    }
}
