//! Bounded retry/backoff for re-dispatching orphaned passengers.

/// Retry policy for orphaned passengers: a breakdown detaches riders from
/// their taxi, and each rider is re-offered to the dispatch scheme up to
/// `max_attempts` times with exponentially growing delays between
/// attempts. Delays are deterministic (no jitter) — injected randomness
/// would break the byte-identical-trace guarantee.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum redispatch attempts per orphan before the request is
    /// rejected as `RetriesExhausted`.
    pub max_attempts: u32,
    /// Delay before the first retry, seconds.
    pub base_delay_s: f64,
    /// Multiplier applied per further attempt.
    pub backoff_factor: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 3, base_delay_s: 20.0, backoff_factor: 2.0 }
    }
}

impl RetryPolicy {
    /// Delay before attempt number `attempt` (1-based: the first retry is
    /// attempt 1 and waits `base_delay_s`).
    pub fn delay_s(&self, attempt: u32) -> f64 {
        self.base_delay_s * self.backoff_factor.powi(attempt.saturating_sub(1) as i32)
    }

    /// Whether `attempt` exceeds the budget.
    pub fn exhausted(&self, attempt: u32) -> bool {
        attempt > self.max_attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_exponentially() {
        let p = RetryPolicy::default();
        assert_eq!(p.delay_s(1), 20.0);
        assert_eq!(p.delay_s(2), 40.0);
        assert_eq!(p.delay_s(3), 80.0);
        assert!(!p.exhausted(3));
        assert!(p.exhausted(4));
    }

    #[test]
    fn custom_policy() {
        let p = RetryPolicy { max_attempts: 1, base_delay_s: 5.0, backoff_factor: 3.0 };
        assert_eq!(p.delay_s(1), 5.0);
        assert!(p.exhausted(2));
    }
}
