//! Deterministic disruption injection and recovery policies.
//!
//! The paper's dispatcher assumes committed schedules execute faithfully;
//! a production system must survive taxis breaking down mid-route,
//! passengers cancelling, and travel times drifting until committed
//! deadlines become infeasible. This crate supplies the *pure* half of
//! that robustness story — the simulator threads it through its event
//! loop:
//!
//! - [`plan`]: a seeded, deterministic disruption schedule (breakdowns,
//!   pre-pickup cancellations, localized traffic shifts) generated from a
//!   `--chaos-seed` through the workspace `rand` shim. Same seed, same
//!   plan, any `--parallelism` — the injected events ride the simulator's
//!   ordinary `(time, seq)` heap order, so determinism is preserved.
//! - [`retry`]: the bounded retry/backoff policy for re-dispatching
//!   orphaned passengers.
//! - [`invariants`]: pure world-state checks (seat accounting,
//!   schedule/route agreement, monotone arrival times) the simulator's
//!   `validate_world` cadence runs and reports through `mtshare-obs`.

#![warn(missing_docs)]

pub mod crash;
pub mod invariants;
pub mod persist;
pub mod plan;
pub mod retry;

pub use crash::{CrashMode, CrashPoint, CRASH_EXIT_CODE};
pub use invariants::check_taxi;
pub use plan::{ChaosConfig, Disruption, DisruptionPlan, TimedDisruption};
pub use retry::RetryPolicy;
