//! Deterministic disruption injection and recovery policies.
//!
//! The paper's dispatcher assumes committed schedules execute faithfully;
//! a production system must survive taxis breaking down mid-route,
//! passengers cancelling, and travel times drifting until committed
//! deadlines become infeasible. This crate supplies the *pure* half of
//! that robustness story — the simulator threads it through its event
//! loop:
//!
//! - [`plan`]: a seeded, deterministic disruption schedule (breakdowns,
//!   pre-pickup cancellations, localized traffic shifts) generated from a
//!   `--chaos-seed` through the workspace `rand` shim. Same seed, same
//!   plan, any `--parallelism` — the injected events ride the simulator's
//!   ordinary `(time, seq)` heap order, so determinism is preserved.
//! - [`failpoint`]: seeded storage/feed failpoints (`--failpoints`) —
//!   ENOSPC, lost fsyncs, torn frames, read-back corruption, feed
//!   disconnects — generated once up front and threaded through the
//!   `mtshare-persist` fault-injection seam, so every injected I/O
//!   fault is a pure function of the seed.
//! - [`retry`]: the bounded retry/backoff policy for re-dispatching
//!   orphaned passengers — reused by `mtshare serve --supervise` as the
//!   restart-backoff schedule.
//! - [`invariants`]: pure world-state checks (seat accounting,
//!   schedule/route agreement, monotone arrival times) the simulator's
//!   `validate_world` cadence runs and reports through `mtshare-obs`.

#![warn(missing_docs)]

pub mod crash;
pub mod failpoint;
pub mod invariants;
pub mod persist;
pub mod plan;
pub mod retry;

pub use crash::{CrashMode, CrashPoint, CRASH_EXIT_CODE};
pub use failpoint::{Failpoint, FailpointPlan, FailpointSpec, FeedFaultPlan};
pub use invariants::check_taxi;
pub use mtshare_persist::fault::{FaultInjector, IoFault, IoOp};
pub use plan::{ChaosConfig, Disruption, DisruptionPlan, TimedDisruption};
pub use retry::RetryPolicy;
