//! Pure per-taxi invariant checks.
//!
//! The simulator's `validate_world` cadence combines these with its own
//! cross-taxi checks (passenger conservation, index/world agreement) and
//! reports violations through `mtshare-obs` as structured events.

use mtshare_model::{EventKind, RequestStore, Taxi};

/// Checks one taxi's internal consistency. Returns `Err(description)` on
/// the first violated invariant:
///
/// - seat accounting: onboard load never exceeds capacity;
/// - plan agreement: a non-empty schedule has a route with one event
///   marker per event and non-decreasing arrival times;
/// - precedence: every pick-up precedes its drop-off;
/// - membership: the schedule's pick-ups are exactly the assigned set and
///   its drop-off-only requests exactly the onboard set;
/// - death: a broken-down taxi holds no plan and no passengers.
pub fn check_taxi(taxi: &Taxi, requests: &RequestStore) -> Result<(), String> {
    let load = taxi.onboard_load(requests);
    if load > taxi.capacity as u32 {
        return Err(format!("{}: onboard load {load} exceeds capacity {}", taxi.id, taxi.capacity));
    }
    if !taxi.alive {
        if !taxi.schedule.is_empty() || taxi.route.is_some() || !taxi.is_vacant() {
            return Err(format!("{}: dead taxi still holds a plan or passengers", taxi.id));
        }
        return Ok(());
    }
    if !taxi.schedule.precedence_ok() {
        return Err(format!("{}: schedule violates pickup-before-dropoff", taxi.id));
    }
    match &taxi.route {
        None => {
            if !taxi.schedule.is_empty() {
                return Err(format!("{}: non-empty schedule without a route", taxi.id));
            }
        }
        Some(route) => {
            if route.event_node_idx.len() != taxi.schedule.len() {
                return Err(format!(
                    "{}: route markers {} != schedule events {}",
                    taxi.id,
                    route.event_node_idx.len(),
                    taxi.schedule.len()
                ));
            }
            if route.arrival_s.windows(2).any(|w| w[1] < w[0] - 1e-9) {
                return Err(format!("{}: route arrival times decrease", taxi.id));
            }
        }
    }
    // Membership: pickups ↔ assigned, dropoff-only ↔ onboard.
    let mut pickups: Vec<_> = taxi
        .schedule
        .events()
        .iter()
        .filter_map(|e| (e.kind == EventKind::Pickup).then_some(e.request))
        .collect();
    let mut dropoff_only: Vec<_> = taxi
        .schedule
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::Dropoff)
        .map(|e| e.request)
        .filter(|r| !pickups.contains(r))
        .collect();
    pickups.sort_unstable();
    dropoff_only.sort_unstable();
    let mut assigned = taxi.assigned.clone();
    assigned.sort_unstable();
    let mut onboard = taxi.onboard.clone();
    onboard.sort_unstable();
    if pickups != assigned {
        return Err(format!("{}: scheduled pickups {pickups:?} != assigned {assigned:?}", taxi.id));
    }
    if dropoff_only != onboard {
        return Err(format!(
            "{}: dropoff-only requests {dropoff_only:?} != onboard {onboard:?}",
            taxi.id
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtshare_model::{RequestId, RideRequest, Schedule, TaxiId, TimedRoute};
    use mtshare_road::NodeId;
    use mtshare_routing::Path;

    fn mkreq(id: u32, origin: u32, dest: u32, passengers: u8) -> RideRequest {
        RideRequest {
            id: RequestId(id),
            release_time: 0.0,
            origin: NodeId(origin),
            destination: NodeId(dest),
            passengers,
            deadline: 1e9,
            direct_cost_s: 10.0,
            offline: false,
        }
    }

    fn store(reqs: Vec<RideRequest>) -> RequestStore {
        let mut s = RequestStore::new();
        for r in reqs {
            s.push(r);
        }
        s
    }

    fn planned_taxi() -> (Taxi, RequestStore) {
        let r = mkreq(0, 2, 4, 1);
        let reqs = store(vec![r.clone()]);
        let mut t = Taxi::new(TaxiId(0), 4, NodeId(0));
        let s = Schedule::new().with_insertion(&r, 0, 1);
        let legs = vec![
            Path { nodes: vec![NodeId(0), NodeId(1), NodeId(2)], cost_s: 20.0 },
            Path { nodes: vec![NodeId(2), NodeId(3), NodeId(4)], cost_s: 30.0 },
        ];
        let route = TimedRoute::build(NodeId(0), 0.0, &legs, &s);
        t.assigned.push(r.id);
        t.set_plan(s, route, 0.0);
        (t, reqs)
    }

    #[test]
    fn healthy_taxi_passes() {
        let (t, reqs) = planned_taxi();
        assert_eq!(check_taxi(&t, &reqs), Ok(()));
        let idle = Taxi::new(TaxiId(1), 4, NodeId(0));
        assert_eq!(check_taxi(&idle, &reqs), Ok(()));
    }

    #[test]
    fn overload_detected() {
        let big = mkreq(0, 2, 4, 6);
        let reqs = store(vec![big]);
        let mut t = Taxi::new(TaxiId(0), 4, NodeId(0));
        t.onboard.push(RequestId(0));
        let err = check_taxi(&t, &reqs).unwrap_err();
        assert!(err.contains("capacity"), "{err}");
    }

    #[test]
    fn dead_taxi_with_plan_detected() {
        let (mut t, reqs) = planned_taxi();
        t.alive = false;
        let err = check_taxi(&t, &reqs).unwrap_err();
        assert!(err.contains("dead taxi"), "{err}");
        // Properly failed taxi passes.
        let (mut t, reqs) = planned_taxi();
        t.fail(5.0);
        assert_eq!(check_taxi(&t, &reqs), Ok(()));
    }

    #[test]
    fn membership_mismatch_detected() {
        let (mut t, reqs) = planned_taxi();
        // Claim the passenger is onboard while the schedule still has the
        // pickup.
        t.assigned.clear();
        t.onboard.push(RequestId(0));
        let err = check_taxi(&t, &reqs).unwrap_err();
        assert!(err.contains("pickups"), "{err}");
    }

    #[test]
    fn decreasing_arrivals_detected() {
        let (mut t, reqs) = planned_taxi();
        if let Some(route) = &mut t.route {
            route.arrival_s[2] = 0.5;
        }
        let err = check_taxi(&t, &reqs).unwrap_err();
        assert!(err.contains("decrease"), "{err}");
    }
}
