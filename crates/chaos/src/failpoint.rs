//! Seeded, plan-driven I/O failpoints.
//!
//! Mirrors the [`crate::plan`] contract for storage and feed faults: a
//! [`FailpointPlan`] is generated once, up front, from `--chaos-seed`
//! and a `--failpoints` mix spec — never during the run — so the fault
//! schedule is a pure function of `(seed, spec)` and reruns are
//! byte-identical. The plan implements
//! [`mtshare_persist::fault::FaultInjector`]: the storage layer asks it
//! before every WAL append/sync, snapshot write/read and directory
//! fsync, and the plan fires when that operation's call counter hits a
//! pre-sampled index. Feed faults (mid-line disconnect, consumer
//! stalls) are carried as a [`FeedFaultPlan`] the serve feed reader
//! consumes by line number.
//!
//! Call counters are the determinism coordinate: "the 7th WAL append"
//! names the same moment at any `--parallelism`, because every durable
//! I/O call rides the sequential step order.

use mtshare_persist::fault::{FaultInjector, IoFault, IoOp};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};

/// The fault kinds a `--failpoints` spec can request, in the fixed
/// generation order (spec order does not matter; generation order
/// does, so the plan is a pure function of the seed and the counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Failpoint {
    /// ENOSPC on a WAL append.
    WalAppendEnospc,
    /// Torn WAL frame: a prefix of the frame reaches disk, then EIO.
    WalAppendShort,
    /// Lost fsync on a WAL sync (data reaches the OS, durability lost).
    WalSyncFail,
    /// ENOSPC on a snapshot write.
    SnapWriteEnospc,
    /// Torn snapshot temp file, then EIO (final name stays atomic).
    SnapWriteShort,
    /// One flipped byte on a snapshot read-back.
    SnapReadCorrupt,
    /// Failed directory fsync after a snapshot rename.
    DirSyncFail,
    /// Mid-line TCP-style disconnect in the serve feed.
    FeedDisconnect,
    /// Slow-consumer stall in the serve feed (wall-clock only; virtual
    /// time, and therefore the trace, is unaffected).
    FeedStall,
}

impl Failpoint {
    /// Every failpoint, in generation order.
    pub const ALL: [Failpoint; 9] = [
        Failpoint::WalAppendEnospc,
        Failpoint::WalAppendShort,
        Failpoint::WalSyncFail,
        Failpoint::SnapWriteEnospc,
        Failpoint::SnapWriteShort,
        Failpoint::SnapReadCorrupt,
        Failpoint::DirSyncFail,
        Failpoint::FeedDisconnect,
        Failpoint::FeedStall,
    ];

    /// The spec key naming this failpoint.
    pub fn label(self) -> &'static str {
        match self {
            Failpoint::WalAppendEnospc => "wal-append-enospc",
            Failpoint::WalAppendShort => "wal-append-short",
            Failpoint::WalSyncFail => "wal-sync-fail",
            Failpoint::SnapWriteEnospc => "snap-write-enospc",
            Failpoint::SnapWriteShort => "snap-write-short",
            Failpoint::SnapReadCorrupt => "snap-read-corrupt",
            Failpoint::DirSyncFail => "dir-sync-fail",
            Failpoint::FeedDisconnect => "feed-disconnect",
            Failpoint::FeedStall => "feed-stall",
        }
    }

    /// The storage operation this failpoint fires on, when it is a
    /// storage failpoint ([`Failpoint::FeedDisconnect`]/
    /// [`Failpoint::FeedStall`] live in the feed reader instead).
    fn op(self) -> Option<IoOp> {
        match self {
            Failpoint::WalAppendEnospc | Failpoint::WalAppendShort => Some(IoOp::WalAppend),
            Failpoint::WalSyncFail => Some(IoOp::WalSync),
            Failpoint::SnapWriteEnospc | Failpoint::SnapWriteShort => Some(IoOp::SnapshotWrite),
            Failpoint::SnapReadCorrupt => Some(IoOp::SnapshotRead),
            Failpoint::DirSyncFail => Some(IoOp::DirSync),
            Failpoint::FeedDisconnect | Failpoint::FeedStall => None,
        }
    }

    /// Call-index sampling window `lo..=hi` for this failpoint.
    ///
    /// Appends happen once per step, so they get a wide window; sync/
    /// checkpoint operations happen once per checkpoint interval and
    /// get a narrow one so a short run still reaches the sampled index.
    /// Windows start at 2 — call 1 is the step-0 bootstrap (initial
    /// checkpoint, first sync), and failing a run before it has begun
    /// tests configuration handling, not fault recovery. Snapshot
    /// *reads* only happen on resume, so index 1 must stay eligible.
    fn window(self) -> (u32, u32) {
        match self {
            Failpoint::WalAppendEnospc | Failpoint::WalAppendShort => (2, 65),
            Failpoint::WalSyncFail | Failpoint::SnapWriteEnospc | Failpoint::SnapWriteShort => {
                (2, 9)
            }
            Failpoint::SnapReadCorrupt => (1, 2),
            Failpoint::DirSyncFail => (2, 9),
            Failpoint::FeedDisconnect | Failpoint::FeedStall => (2, 33),
        }
    }
}

/// How many times each failpoint fires: the parsed `--failpoints` spec.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailpointSpec {
    counts: Vec<(Failpoint, u32)>,
}

impl FailpointSpec {
    /// Parses a `--failpoints` spec of the form
    /// `wal-append-enospc=1,feed-disconnect=1` (any subset, any order).
    /// Returns an error message for unknown keys or unparsable counts.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut counts: Vec<(Failpoint, u32)> = Vec::new();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, val) = part
                .split_once('=')
                .ok_or_else(|| format!("failpoint spec `{part}` is not key=count"))?;
            let n: u32 = val
                .trim()
                .parse()
                .map_err(|_| format!("failpoint count `{val}` is not a non-negative integer"))?;
            let key = key.trim();
            let fp = Failpoint::ALL
                .into_iter()
                .find(|fp| fp.label() == key)
                .ok_or_else(|| format!("unknown failpoint `{key}`"))?;
            match counts.iter_mut().find(|(f, _)| *f == fp) {
                Some((_, c)) => *c = n,
                None => counts.push((fp, n)),
            }
        }
        Ok(Self { counts })
    }

    /// Requested fire count for `fp`.
    pub fn count(&self, fp: Failpoint) -> u32 {
        self.counts.iter().find(|(f, _)| *f == fp).map_or(0, |(_, n)| *n)
    }

    /// Whether the spec requests no faults at all.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|(_, n)| *n == 0)
    }
}

/// Feed faults by 1-based feed line number, extracted from a
/// [`FailpointPlan`] for the serve feed reader.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeedFaultPlan {
    /// Sever the feed mid-line when this line would be read.
    pub disconnect_at_line: Option<u64>,
    /// Stall (wall-clock sleep, milliseconds) before reading this line.
    pub stall: Option<(u64, u64)>,
}

impl FeedFaultPlan {
    /// Whether any feed fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.disconnect_at_line.is_none() && self.stall.is_none()
    }
}

/// Wall-clock milliseconds a generated feed stall sleeps for — also the
/// ceiling the feed reader clamps any planned stall to, so an injected
/// slow-consumer fault can never wedge a test run.
pub const STALL_MS: u64 = 50;

/// A generated fault schedule: per-operation call indices mapped to
/// faults, plus the feed-fault lines. Implements
/// [`FaultInjector`], counting calls internally.
#[derive(Debug, Default)]
pub struct FailpointPlan {
    /// `schedules[op.index()]` maps a 1-based call number to its fault.
    schedules: [BTreeMap<u32, IoFault>; 5],
    /// Live call counters, one per [`IoOp`].
    counters: [AtomicU32; 5],
    feed: FeedFaultPlan,
}

impl FailpointPlan {
    /// Generates the schedule for `spec` from `seed`. Pure: the same
    /// `(seed, spec)` always yields the same plan. Call indices are
    /// sampled without replacement per operation, in the fixed
    /// [`Failpoint::ALL`] order.
    pub fn generate(seed: u64, spec: &FailpointSpec) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut plan = Self::default();
        for fp in Failpoint::ALL {
            let count = spec.count(fp);
            if count == 0 {
                continue;
            }
            let (lo, hi) = fp.window();
            match fp.op() {
                Some(op) => {
                    let sched = &mut plan.schedules[op.index()];
                    for _ in 0..count {
                        let call = sample_free_index(&mut rng, lo, hi, sched);
                        let Some(call) = call else { break };
                        sched.insert(call, fault_of(fp, &mut rng));
                    }
                }
                None => {
                    let line = u64::from(rng.gen_range(lo..=hi));
                    match fp {
                        Failpoint::FeedDisconnect => {
                            plan.feed.disconnect_at_line = Some(line);
                        }
                        Failpoint::FeedStall => plan.feed.stall = Some((line, STALL_MS)),
                        _ => unreachable!("storage failpoints have an op"),
                    }
                }
            }
        }
        plan
    }

    /// A hand-built plan for tests: fire `fault` on the `call`-th
    /// invocation of `op` (1-based), for each entry.
    pub fn exact(entries: &[(IoOp, u32, IoFault)]) -> Self {
        let mut plan = Self::default();
        for &(op, call, fault) in entries {
            plan.schedules[op.index()].insert(call, fault);
        }
        plan
    }

    /// The feed-fault lines for the serve feed reader.
    pub fn feed_faults(&self) -> FeedFaultPlan {
        self.feed
    }

    /// Whether any storage fault is scheduled.
    pub fn has_storage_faults(&self) -> bool {
        self.schedules.iter().any(|s| !s.is_empty())
    }

    /// Calls observed so far for `op`.
    pub fn calls(&self, op: IoOp) -> u32 {
        self.counters[op.index()].load(Ordering::Relaxed)
    }
}

impl FaultInjector for FailpointPlan {
    fn check(&self, op: IoOp) -> Option<IoFault> {
        let call = self.counters[op.index()].fetch_add(1, Ordering::Relaxed) + 1;
        self.schedules[op.index()].get(&call).copied()
    }
}

/// The concrete fault a failpoint materialises as, with its random
/// parameters (torn-frame offset, corrupted byte position/mask) drawn
/// from the plan rng.
fn fault_of(fp: Failpoint, rng: &mut SmallRng) -> IoFault {
    match fp {
        Failpoint::WalAppendEnospc | Failpoint::SnapWriteEnospc => IoFault::NoSpace,
        Failpoint::WalAppendShort | Failpoint::SnapWriteShort => {
            IoFault::ShortWrite { keep_permille: rng.gen_range(0..1000) }
        }
        Failpoint::WalSyncFail | Failpoint::DirSyncFail => IoFault::SyncFailed,
        Failpoint::SnapReadCorrupt => {
            IoFault::CorruptByte { offset: rng.gen_range(0..4096), mask: rng.gen_range(1..=255) }
        }
        Failpoint::FeedDisconnect | Failpoint::FeedStall => {
            unreachable!("feed failpoints are not storage faults")
        }
    }
}

/// A call index in `lo..=hi` not yet scheduled in `taken`; `None` when
/// the window is exhausted.
fn sample_free_index(
    rng: &mut SmallRng,
    lo: u32,
    hi: u32,
    taken: &BTreeMap<u32, IoFault>,
) -> Option<u32> {
    let free: Vec<u32> = (lo..=hi).filter(|i| !taken.contains_key(i)).collect();
    if free.is_empty() {
        return None;
    }
    Some(free[rng.gen_range(0..free.len())])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(s: &str) -> FailpointSpec {
        FailpointSpec::parse(s).unwrap()
    }

    #[test]
    fn spec_parses_and_rejects_garbage() {
        let s = spec("wal-append-enospc=2,feed-disconnect=1");
        assert_eq!(s.count(Failpoint::WalAppendEnospc), 2);
        assert_eq!(s.count(Failpoint::FeedDisconnect), 1);
        assert_eq!(s.count(Failpoint::WalSyncFail), 0);
        assert!(!s.is_empty());
        assert!(FailpointSpec::parse("").unwrap().is_empty());
        assert!(FailpointSpec::parse("meteors=1").is_err());
        assert!(FailpointSpec::parse("wal-sync-fail").is_err());
        assert!(FailpointSpec::parse("wal-sync-fail=-1").is_err());
    }

    #[test]
    fn every_label_round_trips_through_parse() {
        for fp in Failpoint::ALL {
            let s = spec(&format!("{}=1", fp.label()));
            assert_eq!(s.count(fp), 1, "{}", fp.label());
        }
    }

    /// The acceptance criterion: the schedule is a pure function of the
    /// seed — two generations agree call-for-call over a long horizon.
    #[test]
    fn same_seed_same_schedule() {
        let s = spec("wal-append-enospc=1,wal-sync-fail=1,snap-write-enospc=1,feed-stall=1");
        let a = FailpointPlan::generate(7, &s);
        let b = FailpointPlan::generate(7, &s);
        assert_eq!(a.feed_faults(), b.feed_faults());
        for op in IoOp::ALL {
            for _ in 0..200 {
                assert_eq!(a.check(op), b.check(op), "{op:?}");
            }
        }
        let c = FailpointPlan::generate(8, &s);
        let mut diverged = c.feed_faults() != a.feed_faults();
        let a2 = FailpointPlan::generate(7, &s);
        for op in IoOp::ALL {
            for _ in 0..200 {
                diverged |= a2.check(op) != c.check(op);
            }
        }
        assert!(diverged, "a different seed must move at least one fault");
    }

    #[test]
    fn requested_counts_fire_exactly() {
        let s = spec("wal-append-enospc=3,wal-append-short=2,snap-read-corrupt=1");
        let plan = FailpointPlan::generate(11, &s);
        assert!(plan.has_storage_faults());
        let mut fired = Vec::new();
        for _ in 0..200 {
            if let Some(f) = plan.check(IoOp::WalAppend) {
                fired.push(f);
            }
        }
        assert_eq!(fired.len(), 5, "3 enospc + 2 short writes on the append path");
        assert_eq!(fired.iter().filter(|f| matches!(f, IoFault::NoSpace)).count(), 3);
        let reads: Vec<_> = (0..10).filter_map(|_| plan.check(IoOp::SnapshotRead)).collect();
        assert_eq!(reads.len(), 1);
        assert!(matches!(reads[0], IoFault::CorruptByte { mask, .. } if mask != 0));
        assert_eq!(plan.calls(IoOp::WalAppend), 200);
    }

    #[test]
    fn feed_lines_are_sampled_in_window() {
        let s = spec("feed-disconnect=1,feed-stall=1");
        let plan = FailpointPlan::generate(3, &s);
        let feed = plan.feed_faults();
        let line = feed.disconnect_at_line.unwrap();
        assert!((2..=33).contains(&line));
        let (stall_line, ms) = feed.stall.unwrap();
        assert!((2..=33).contains(&stall_line));
        assert_eq!(ms, STALL_MS);
        assert!(!feed.is_empty());
        assert!(!plan.has_storage_faults());
    }

    #[test]
    fn exact_plan_fires_on_the_named_call() {
        let plan = FailpointPlan::exact(&[(IoOp::WalSync, 3, IoFault::SyncFailed)]);
        assert_eq!(plan.check(IoOp::WalSync), None);
        assert_eq!(plan.check(IoOp::WalSync), None);
        assert_eq!(plan.check(IoOp::WalSync), Some(IoFault::SyncFailed));
        assert_eq!(plan.check(IoOp::WalSync), None);
    }
}
