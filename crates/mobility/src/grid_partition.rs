//! Grid-based map partitioning — the baseline strategy of T-Share /
//! pGreedyDP and the comparison point of Table V.
//!
//! Divides the bounding box into roughly square cells targeting κ non-empty
//! partitions, ignoring transition patterns entirely.

use crate::partition::MapPartitioning;
use mtshare_road::RoadNetwork;

/// Partitions the graph with a uniform grid targeting `kappa` non-empty
/// cells. Returns the same [`MapPartitioning`] type as the bipartite
/// partitioner so every consumer is strategy-agnostic.
pub fn grid_partition(graph: &RoadNetwork, kappa: usize) -> MapPartitioning {
    assert!(kappa >= 1);
    assert!(graph.node_count() > 0, "graph must be non-empty");
    let bbox = graph.bbox();
    let w = bbox.width_m().max(1.0);
    let h = bbox.height_m().max(1.0);
    // rows/cols proportioned to the aspect ratio so cells are square-ish.
    let rows = ((kappa as f64 * h / w).sqrt().round() as usize).max(1);
    let cols = kappa.div_ceil(rows).max(1);

    let dlat = (bbox.max_lat - bbox.min_lat).max(1e-12) / rows as f64 * (1.0 + 1e-12);
    let dlng = (bbox.max_lng - bbox.min_lng).max(1e-12) / cols as f64 * (1.0 + 1e-12);

    // First pass: raw cell per vertex.
    let mut raw = Vec::with_capacity(graph.node_count());
    for n in graph.nodes() {
        let p = graph.point(n);
        let r = (((p.lat - bbox.min_lat) / dlat) as usize).min(rows - 1);
        let c = (((p.lng - bbox.min_lng) / dlng) as usize).min(cols - 1);
        raw.push(r * cols + c);
    }
    // Compact non-empty cells into contiguous labels.
    let mut remap = vec![u16::MAX; rows * cols];
    let mut next = 0u16;
    let mut assignment = Vec::with_capacity(raw.len());
    for cell in raw {
        if remap[cell] == u16::MAX {
            remap[cell] = next;
            next += 1;
        }
        assignment.push(remap[cell]);
    }
    MapPartitioning::from_assignment(graph, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtshare_road::{grid_city, GridCityConfig, NodeId};

    #[test]
    fn covers_all_vertices() {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        let p = grid_partition(&g, 16);
        let total: usize = p.partitions().map(|q| p.members(q).len()).sum();
        assert_eq!(total, g.node_count());
    }

    #[test]
    fn partition_count_near_target() {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        for kappa in [4, 9, 16, 25] {
            let p = grid_partition(&g, kappa);
            assert!(
                p.len() >= kappa / 2 && p.len() <= kappa * 2,
                "kappa={kappa} produced {} partitions",
                p.len()
            );
        }
    }

    #[test]
    fn cells_are_spatially_tight() {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        let p = grid_partition(&g, 16);
        let diam = g.bbox().width_m().hypot(g.bbox().height_m());
        for q in p.partitions() {
            assert!(p.radius_m(q) < diam / 3.0);
            assert_eq!(p.partition_of(p.landmark(q)), q);
        }
    }

    #[test]
    fn single_cell_degenerate() {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        let p = grid_partition(&g, 1);
        assert_eq!(p.len(), 1);
        assert_eq!(p.members(p.partitions().next().unwrap()).len(), g.node_count());
        assert_eq!(p.partition_of(NodeId(0)), p.partition_of(NodeId(399)));
    }
}
