//! [`Persist`] impls for the mobility layer.
//!
//! The incremental [`MobilityClusterer`] is *history-dependent* state:
//! cluster identity (slot position), the recycled-slot free list and the
//! per-slot running sums all depend on the insertion/removal sequence,
//! and they leak into candidate-set composition through
//! `live_clusters`/`best_match` order. A warm restart therefore
//! snapshots the clusterer faithfully — slot for slot — rather than
//! re-clustering, which could assign different cluster ids and change
//! dispatch decisions after resume.

use crate::cluster::{ClusterId, MobilityClusterer, MobilityVector};
use mtshare_persist::{DecodeError, Decoder, Encoder, Persist};
use mtshare_road::GeoPoint;

impl Persist for MobilityVector {
    fn encode(&self, enc: &mut Encoder) {
        self.origin.encode(enc);
        self.destination.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(MobilityVector { origin: GeoPoint::decode(dec)?, destination: GeoPoint::decode(dec)? })
    }
}

impl Persist for ClusterId {
    fn encode(&self, enc: &mut Encoder) {
        enc.u32(self.0);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(ClusterId(dec.u32()?))
    }
}

impl Persist for MobilityClusterer {
    fn encode(&self, enc: &mut Encoder) {
        let (lambda, slots, free, live) = self.snapshot_parts();
        enc.f64(lambda);
        enc.usize(slots.len());
        for (count, sums) in slots {
            enc.u32(count);
            for s in sums {
                enc.f64(s);
            }
        }
        enc.seq(&free);
        enc.usize(live);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let lambda = dec.f64()?;
        if !(-1.0..=1.0).contains(&lambda) {
            return Err(DecodeError::Invalid("clusterer lambda is not a cosine"));
        }
        let n = dec.usize()?;
        let mut slots = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let count = dec.u32()?;
            let sums = [dec.f64()?, dec.f64()?, dec.f64()?, dec.f64()?];
            slots.push((count, sums));
        }
        let free: Vec<u32> = dec.seq()?;
        let live = dec.usize()?;
        MobilityClusterer::from_snapshot_parts(lambda, slots, free, live)
            .map_err(DecodeError::Invalid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mv(o: (f64, f64), d: (f64, f64)) -> MobilityVector {
        MobilityVector::new(GeoPoint::new(o.0, o.1), GeoPoint::new(d.0, d.1))
    }

    #[test]
    fn clusterer_round_trips_slot_for_slot() {
        let mut c = MobilityClusterer::new(0.707);
        let vectors = [
            mv((0.0, 0.0), (1.0, 1.0)),
            mv((0.0, 0.0), (-1.0, -1.0)),
            mv((0.1, 0.1), (1.1, 1.2)),
            mv((0.5, 0.5), (0.5, 1.5)),
        ];
        let mut ids = Vec::new();
        for v in &vectors {
            ids.push(c.insert(v));
        }
        // Recycle a slot so the free list is non-trivial.
        c.remove(ids[1], &vectors[1]);

        let back = MobilityClusterer::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(back.len(), c.len());
        assert_eq!(back.lambda(), c.lambda());
        let live_a: Vec<ClusterId> = c.live_clusters().collect();
        let live_b: Vec<ClusterId> = back.live_clusters().collect();
        assert_eq!(live_a, live_b, "slot identity must survive the round trip");
        for id in live_a {
            assert_eq!(back.member_count(id), c.member_count(id));
            assert_eq!(back.general_vector(id), c.general_vector(id));
        }
        // The recycled slot must be reused identically after restore.
        let next = mv((2.0, 2.0), (-3.0, -3.0));
        let mut c2 = c.clone();
        let mut b2 = back;
        assert_eq!(c2.insert(&next), b2.insert(&next));
        assert_eq!(b2.to_bytes(), c2.to_bytes());
    }

    #[test]
    fn inconsistent_snapshot_rejected() {
        let mut enc = Encoder::new();
        enc.f64(0.7);
        enc.usize(1); // one slot...
        enc.u32(5);
        for _ in 0..4 {
            enc.f64(1.0);
        }
        enc.seq(&[0u32]); // ...that is also on the free list
        enc.usize(1);
        assert!(MobilityClusterer::from_bytes(&enc.into_bytes()).is_err());
    }
}
