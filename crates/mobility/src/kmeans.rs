//! Seeded k-means with k-means++ initialization.
//!
//! Used three ways by the bipartite map partitioning (Sec. IV-B1): on
//! vertex coordinates (spatial clustering), on transition-probability
//! vectors (transition clustering), and again on coordinates inside each
//! transition cluster (geo-clustering). Deterministic given a seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster index per input point.
    pub assignment: Vec<u32>,
    /// Flat centroid matrix (`k × dim`).
    pub centroids: Vec<f64>,
    /// Number of clusters actually produced (≤ requested k; empty clusters
    /// are reseeded, but k > n yields exactly n singleton clusters).
    pub k: usize,
    /// Sum of squared distances of points to their centroid.
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

#[inline]
fn dist2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Runs k-means over `n = data.len() / dim` points of dimension `dim`.
///
/// # Panics
/// Panics when `dim == 0`, `k == 0`, or `data.len()` is not a multiple of
/// `dim`.
#[allow(clippy::needless_range_loop)] // indices address several parallel arrays
pub fn kmeans(data: &[f64], dim: usize, k: usize, seed: u64, max_iter: usize) -> KMeansResult {
    assert!(dim > 0, "dim must be positive");
    assert!(k > 0, "k must be positive");
    assert_eq!(data.len() % dim, 0, "data length must be a multiple of dim");
    let n = data.len() / dim;
    if n == 0 {
        return KMeansResult {
            assignment: Vec::new(),
            centroids: Vec::new(),
            k: 0,
            inertia: 0.0,
            iterations: 0,
        };
    }
    let k = k.min(n);
    let point = |i: usize| &data[i * dim..(i + 1) * dim];
    let mut rng = SmallRng::seed_from_u64(seed);

    // --- k-means++ seeding ---
    let mut centroids = Vec::with_capacity(k * dim);
    let first = rng.gen_range(0..n);
    centroids.extend_from_slice(point(first));
    let mut min_d2 = vec![f64::INFINITY; n];
    while centroids.len() / dim < k {
        let last = &centroids[centroids.len() - dim..];
        let mut total = 0.0;
        for i in 0..n {
            let d = dist2(point(i), last);
            if d < min_d2[i] {
                min_d2[i] = d;
            }
            total += min_d2[i];
        }
        let next = if total <= f64::EPSILON {
            // All remaining points coincide with chosen centroids.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &d) in min_d2.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.extend_from_slice(point(next));
    }

    // --- Lloyd iterations ---
    let mut assignment = vec![0u32; n];
    let mut iterations = 0;
    let mut counts = vec![0usize; k];
    let mut sums = vec![0.0f64; k * dim];
    for it in 0..max_iter.max(1) {
        iterations = it + 1;
        let mut changed = false;
        for i in 0..n {
            let p = point(i);
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let d = dist2(p, &centroids[c * dim..(c + 1) * dim]);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignment[i] != best as u32 {
                assignment[i] = best as u32;
                changed = true;
            }
        }
        counts.iter_mut().for_each(|c| *c = 0);
        sums.iter_mut().for_each(|s| *s = 0.0);
        for i in 0..n {
            let c = assignment[i] as usize;
            counts[c] += 1;
            for (s, v) in sums[c * dim..(c + 1) * dim].iter_mut().zip(point(i)) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Reseed an empty cluster at the point farthest from its
                // current centroid assignment.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = dist2(point(a), &centroids[assignment[a] as usize * dim..][..dim]);
                        let db = dist2(point(b), &centroids[assignment[b] as usize * dim..][..dim]);
                        da.total_cmp(&db)
                    })
                    .unwrap();
                centroids[c * dim..(c + 1) * dim].copy_from_slice(point(far));
                changed = true;
            } else {
                for (cd, s) in
                    centroids[c * dim..(c + 1) * dim].iter_mut().zip(&sums[c * dim..(c + 1) * dim])
                {
                    *cd = s / counts[c] as f64;
                }
            }
        }
        if !changed && it > 0 {
            break;
        }
    }

    let inertia =
        (0..n).map(|i| dist2(point(i), &centroids[assignment[i] as usize * dim..][..dim])).sum();
    KMeansResult { assignment, centroids, k, inertia, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(seed: u64) -> (Vec<f64>, usize) {
        // Three well-separated 2-d blobs of 30 points each.
        let mut rng = SmallRng::seed_from_u64(seed);
        let centers = [(0.0, 0.0), (10.0, 10.0), (-10.0, 8.0)];
        let mut data = Vec::new();
        for &(cx, cy) in &centers {
            for _ in 0..30 {
                data.push(cx + rng.gen_range(-1.0..1.0));
                data.push(cy + rng.gen_range(-1.0..1.0));
            }
        }
        (data, 2)
    }

    #[test]
    fn separates_blobs() {
        let (data, dim) = blobs(1);
        let r = kmeans(&data, dim, 3, 42, 50);
        assert_eq!(r.k, 3);
        // Points of a blob must share a label.
        for b in 0..3 {
            let label = r.assignment[b * 30];
            for i in 0..30 {
                assert_eq!(r.assignment[b * 30 + i], label, "blob {b} split");
            }
        }
        assert!(r.inertia < 90.0 * 2.0, "inertia {}", r.inertia);
    }

    #[test]
    fn every_point_assigned_to_nearest_centroid() {
        let (data, dim) = blobs(2);
        let r = kmeans(&data, dim, 4, 7, 50);
        let n = data.len() / dim;
        for i in 0..n {
            let p = &data[i * dim..(i + 1) * dim];
            let own = dist2(p, &r.centroids[r.assignment[i] as usize * dim..][..dim]);
            for c in 0..r.k {
                let d = dist2(p, &r.centroids[c * dim..(c + 1) * dim]);
                assert!(own <= d + 1e-9, "point {i} not at nearest centroid");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (data, dim) = blobs(3);
        let a = kmeans(&data, dim, 3, 9, 50);
        let b = kmeans(&data, dim, 3, 9, 50);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn k_clamped_to_point_count() {
        let data = vec![0.0, 0.0, 1.0, 1.0];
        let r = kmeans(&data, 2, 10, 1, 20);
        assert_eq!(r.k, 2);
        assert!(r.inertia < 1e-12);
    }

    #[test]
    fn handles_duplicate_points() {
        let data = vec![5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0];
        let r = kmeans(&data, 2, 2, 3, 20);
        assert_eq!(r.assignment.len(), 4);
        assert!(r.inertia < 1e-12);
    }

    #[test]
    fn empty_input() {
        let r = kmeans(&[], 2, 3, 0, 10);
        assert_eq!(r.k, 0);
        assert!(r.assignment.is_empty());
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn rejects_ragged_data() {
        let _ = kmeans(&[1.0, 2.0, 3.0], 2, 1, 0, 5);
    }
}
