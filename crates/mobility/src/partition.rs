//! Map partitionings and the bipartite map partitioner (Sec. IV-B1).
//!
//! A [`MapPartitioning`] groups road-network vertices into κ partitions
//! whose members are geographically close and — for the bipartite variant —
//! share similar transition patterns mined from historical trips. Each
//! partition exposes a landmark (Def. 7), its geographic centroid, and a
//! covering radius used to intersect partitions with search circles.

use crate::kmeans::kmeans;
use crate::transition::{TransitionModel, Trip};
use mtshare_road::{GeoPoint, NodeId, RoadNetwork};

/// Identifier of a map partition. `u16` suffices: κ ≤ 250 in every paper
/// experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartitionId(pub u16);

impl PartitionId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PartitionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A partitioning of all road-network vertices.
#[derive(Debug, Clone)]
pub struct MapPartitioning {
    assignment: Vec<u16>,
    members: Vec<Vec<NodeId>>,
    landmarks: Vec<NodeId>,
    centroids: Vec<GeoPoint>,
    radii_m: Vec<f64>,
}

impl MapPartitioning {
    /// Assembles a partitioning from a per-vertex label vector.
    ///
    /// Labels must form a contiguous range `0..k`. The landmark of each
    /// partition is the member vertex closest to the partition's geographic
    /// centroid — a documented approximation of Def. 7's graph-median that
    /// avoids per-partition all-pairs searches.
    pub fn from_assignment(graph: &RoadNetwork, assignment: Vec<u16>) -> Self {
        assert_eq!(assignment.len(), graph.node_count());
        let k = assignment.iter().copied().max().map_or(0, |m| m as usize + 1);
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        for (i, &p) in assignment.iter().enumerate() {
            members[p as usize].push(NodeId(i as u32));
        }
        assert!(
            members.iter().all(|m| !m.is_empty()),
            "labels must be contiguous, no empty partition"
        );
        let mut centroids = Vec::with_capacity(k);
        let mut landmarks = Vec::with_capacity(k);
        let mut radii_m = Vec::with_capacity(k);
        for mem in &members {
            let (mut lat, mut lng) = (0.0, 0.0);
            for &v in mem {
                let p = graph.point(v);
                lat += p.lat;
                lng += p.lng;
            }
            let c = GeoPoint::new(lat / mem.len() as f64, lng / mem.len() as f64);
            centroids.push(c);
            let lm = *mem
                .iter()
                .min_by(|a, b| {
                    graph.point(**a).distance_m(&c).total_cmp(&graph.point(**b).distance_m(&c))
                })
                .expect("non-empty partition");
            landmarks.push(lm);
            let r = mem.iter().map(|&v| graph.point(v).distance_m(&c)).fold(0.0, f64::max);
            radii_m.push(r);
        }
        Self { assignment, members, landmarks, centroids, radii_m }
    }

    /// Number of partitions κ.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the partitioning is empty (graph had no vertices).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Partition containing `node`.
    #[inline]
    pub fn partition_of(&self, node: NodeId) -> PartitionId {
        PartitionId(self.assignment[node.index()])
    }

    /// Member vertices of partition `p`.
    #[inline]
    pub fn members(&self, p: PartitionId) -> &[NodeId] {
        &self.members[p.index()]
    }

    /// Landmark vertex of partition `p` (Def. 7).
    #[inline]
    pub fn landmark(&self, p: PartitionId) -> NodeId {
        self.landmarks[p.index()]
    }

    /// All landmarks, indexed by partition.
    #[inline]
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// Geographic centroid of partition `p`.
    #[inline]
    pub fn centroid(&self, p: PartitionId) -> GeoPoint {
        self.centroids[p.index()]
    }

    /// Covering radius of partition `p` around its centroid, metres.
    #[inline]
    pub fn radius_m(&self, p: PartitionId) -> f64 {
        self.radii_m[p.index()]
    }

    /// Iterator over all partition ids.
    pub fn partitions(&self) -> impl Iterator<Item = PartitionId> {
        (0..self.members.len() as u16).map(PartitionId)
    }

    /// Partitions whose covering disc intersects the circle
    /// `(center, radius_m)` — the map-partition set `S_ri` of Sec. IV-C1.
    pub fn intersecting_circle(&self, center: &GeoPoint, radius_m: f64) -> Vec<PartitionId> {
        self.partitions()
            .filter(|&p| {
                self.centroids[p.index()].distance_m(center) <= radius_m + self.radii_m[p.index()]
            })
            .collect()
    }

    /// Per-vertex label slice (used to key transition models).
    pub fn labels_u32(&self) -> Vec<u32> {
        self.assignment.iter().map(|&p| p as u32).collect()
    }

    /// Approximate resident memory in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.assignment.len() * 2
            + self.members.iter().map(|m| m.len() * 4).sum::<usize>()
            + self.landmarks.len() * 4
            + self.centroids.len() * std::mem::size_of::<GeoPoint>()
            + self.radii_m.len() * 8
    }
}

/// Configuration of the bipartite map partitioner.
#[derive(Debug, Clone)]
pub struct BipartiteConfig {
    /// Target number of spatial partitions κ.
    pub kappa: usize,
    /// Number of transition clusters `kt` (paper default 20, `kt < κ`).
    pub kt: usize,
    /// Maximum outer refinement rounds.
    pub max_rounds: usize,
    /// Stop when fewer than this fraction of vertices change partition
    /// between rounds.
    pub tol: f64,
    /// RNG seed for the k-means stages.
    pub seed: u64,
    /// Lloyd iterations per k-means invocation.
    pub kmeans_iters: usize,
}

impl Default for BipartiteConfig {
    fn default() -> Self {
        Self { kappa: 96, kt: 12, max_rounds: 4, tol: 0.01, seed: 17, kmeans_iters: 30 }
    }
}

/// Runs the three-step bipartite map partitioning until the partitions
/// stabilize (Sec. IV-B1):
///
/// 1. transition-probability calculation per vertex against the current
///    spatial clusters;
/// 2. transition clustering of the probability vectors into `kt` groups;
/// 3. geo-clustering inside each transition cluster into
///    `⌊n·κ/N + 1/2⌋` spatial clusters.
pub fn bipartite_partition(
    graph: &RoadNetwork,
    trips: &[Trip],
    cfg: &BipartiteConfig,
) -> MapPartitioning {
    let n = graph.node_count();
    assert!(n > 0, "graph must be non-empty");
    assert!(cfg.kappa >= 1 && cfg.kt >= 1);
    let coords: Vec<f64> = graph
        .points()
        .iter()
        .flat_map(|p| {
            // Scale longitude so Euclidean distance ≈ metres ratio.
            let scale = p.lat.to_radians().cos();
            [p.lat, p.lng * scale]
        })
        .collect();

    // Initial spatial clustering on coordinates.
    let init = kmeans(&coords, 2, cfg.kappa, cfg.seed, cfg.kmeans_iters);
    let mut assignment: Vec<u32> = init.assignment;
    let mut current_k = init.k;

    for round in 0..cfg.max_rounds {
        // ① transition probabilities against current clusters.
        let tm = TransitionModel::from_trips(n, trips, &assignment, current_k);
        // ② transition clustering.
        let tc = kmeans(
            &tm.rows_f64(),
            current_k,
            cfg.kt,
            cfg.seed ^ (round as u64 + 1),
            cfg.kmeans_iters,
        );
        // ③ geo-clustering inside each transition cluster.
        let mut new_assignment = vec![0u32; n];
        let mut next = 0u32;
        for t in 0..tc.k {
            let members: Vec<usize> = (0..n).filter(|&i| tc.assignment[i] == t as u32).collect();
            if members.is_empty() {
                continue;
            }
            let sub_k =
                ((members.len() * cfg.kappa) as f64 / n as f64 + 0.5).floor().max(1.0) as usize;
            let sub_coords: Vec<f64> =
                members.iter().flat_map(|&i| [coords[2 * i], coords[2 * i + 1]]).collect();
            let sub =
                kmeans(&sub_coords, 2, sub_k, cfg.seed ^ (0x9E37 + t as u64), cfg.kmeans_iters);
            for (j, &i) in members.iter().enumerate() {
                new_assignment[i] = next + sub.assignment[j];
            }
            next += sub.k as u32;
        }
        let changed =
            relabelled_change_fraction(&assignment, current_k, &new_assignment, next as usize);
        assignment = new_assignment;
        current_k = next as usize;
        if changed < cfg.tol {
            break;
        }
    }

    assert!(current_k <= u16::MAX as usize, "partition labels exceed u16 ({current_k})");
    MapPartitioning::from_assignment(graph, assignment.iter().map(|&p| p as u16).collect())
}

/// Fraction of vertices that changed partition between two labelings, after
/// mapping each new label to its majority-overlap old label (labels permute
/// freely between rounds, so raw comparison is meaningless).
fn relabelled_change_fraction(old: &[u32], old_k: usize, new: &[u32], new_k: usize) -> f64 {
    if old.is_empty() {
        return 0.0;
    }
    // majority[new_label] = old label with the largest overlap.
    let mut overlap = vec![0u32; new_k * old_k.max(1)];
    for (o, nl) in old.iter().zip(new) {
        overlap[*nl as usize * old_k + *o as usize] += 1;
    }
    let majority: Vec<u32> = (0..new_k)
        .map(|nl| (0..old_k).max_by_key(|&o| overlap[nl * old_k + o]).unwrap_or(0) as u32)
        .collect();
    let changed = old.iter().zip(new).filter(|(o, nl)| majority[**nl as usize] != **o).count();
    changed as f64 / old.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtshare_road::{grid_city, GridCityConfig};
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn city() -> RoadNetwork {
        grid_city(&GridCityConfig::tiny()).unwrap()
    }

    fn random_trips(g: &RoadNetwork, n: usize, seed: u64) -> Vec<Trip> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Trip {
                origin: NodeId(rng.gen_range(0..g.node_count() as u32)),
                destination: NodeId(rng.gen_range(0..g.node_count() as u32)),
            })
            .collect()
    }

    #[test]
    fn covers_every_vertex_with_nonempty_partitions() {
        let g = city();
        let trips = random_trips(&g, 2000, 1);
        let cfg = BipartiteConfig { kappa: 16, kt: 4, ..Default::default() };
        let p = bipartite_partition(&g, &trips, &cfg);
        assert!(!p.is_empty());
        let total: usize = p.partitions().map(|q| p.members(q).len()).sum();
        assert_eq!(total, g.node_count());
        for q in p.partitions() {
            assert!(!p.members(q).is_empty());
            // Landmark belongs to its own partition.
            assert_eq!(p.partition_of(p.landmark(q)), q);
        }
    }

    #[test]
    fn partition_count_close_to_kappa() {
        let g = city();
        let trips = random_trips(&g, 2000, 2);
        let cfg = BipartiteConfig { kappa: 16, kt: 4, ..Default::default() };
        let p = bipartite_partition(&g, &trips, &cfg);
        assert!(p.len() >= 8 && p.len() <= 32, "got {} partitions", p.len());
    }

    #[test]
    fn members_are_geographically_coherent() {
        let g = city();
        let trips = random_trips(&g, 2000, 3);
        let cfg = BipartiteConfig { kappa: 16, kt: 4, ..Default::default() };
        let p = bipartite_partition(&g, &trips, &cfg);
        // Average covering radius should be far below the city diameter.
        let diam = g.bbox().width_m().hypot(g.bbox().height_m());
        let avg_r: f64 = p.partitions().map(|q| p.radius_m(q)).sum::<f64>() / p.len() as f64;
        assert!(avg_r < diam / 2.5, "avg radius {avg_r} vs diameter {diam}");
    }

    #[test]
    fn intersecting_circle_finds_home_partition() {
        let g = city();
        let trips = random_trips(&g, 1000, 4);
        let cfg = BipartiteConfig { kappa: 12, kt: 4, ..Default::default() };
        let p = bipartite_partition(&g, &trips, &cfg);
        let v = NodeId(123);
        let home = p.partition_of(v);
        let hits = p.intersecting_circle(&g.point(v), 100.0);
        assert!(hits.contains(&home));
    }

    #[test]
    fn deterministic() {
        let g = city();
        let trips = random_trips(&g, 1000, 5);
        let cfg = BipartiteConfig { kappa: 12, kt: 4, ..Default::default() };
        let a = bipartite_partition(&g, &trips, &cfg);
        let b = bipartite_partition(&g, &trips, &cfg);
        assert_eq!(a.labels_u32(), b.labels_u32());
    }

    #[test]
    fn relabel_change_fraction_identity() {
        let old = vec![0, 0, 1, 1, 2];
        // Same grouping, permuted labels: no change.
        let new = vec![2, 2, 0, 0, 1];
        assert_eq!(relabelled_change_fraction(&old, 3, &new, 3), 0.0);
        // One vertex moved.
        let new2 = vec![2, 2, 0, 1, 1];
        let f = relabelled_change_fraction(&old, 3, &new2, 3);
        assert!(f > 0.0 && f <= 0.4);
    }

    #[test]
    fn memory_accounting() {
        let g = city();
        let trips = random_trips(&g, 500, 6);
        let p = bipartite_partition(
            &g,
            &trips,
            &BipartiteConfig { kappa: 8, kt: 3, ..Default::default() },
        );
        assert!(p.memory_bytes() > g.node_count() * 2);
    }
}
