//! The landmark graph `G_ℓ` (Def. 8) built over a map partitioning.
//!
//! Vertices are partition landmarks; two landmarks are connected when their
//! partitions are adjacent (some road edge crosses between them). Exact
//! landmark↔landmark and landmark↔vertex travel costs come from a dense
//! [`CostMatrix`], which is what lets partition filtering (Alg. 2) estimate
//! shortest-path lengths without touching the full graph.

use crate::partition::{MapPartitioning, PartitionId};
use mtshare_road::{NodeId, RoadNetwork};
use mtshare_routing::CostMatrix;
use rustc_hash::FxHashSet;

/// Landmark graph with precomputed cost tables.
#[derive(Debug, Clone)]
pub struct LandmarkGraph {
    adjacency: Vec<Vec<PartitionId>>,
    costs: CostMatrix,
    landmark_of: Vec<NodeId>,
    /// Matrix row of each partition's landmark. [`CostMatrix::compute`]
    /// collapses duplicate sources to one row, so when two partitions
    /// share a landmark vertex they share a row.
    row_of: Vec<u32>,
}

impl LandmarkGraph {
    /// Builds the landmark graph for `partitioning` over `graph`.
    pub fn build(graph: &RoadNetwork, partitioning: &MapPartitioning) -> Self {
        let k = partitioning.len();
        let mut adj_sets: Vec<FxHashSet<u16>> = vec![FxHashSet::default(); k];
        for u in graph.nodes() {
            let pu = partitioning.partition_of(u);
            for (v, _) in graph.out_edges(u) {
                let pv = partitioning.partition_of(v);
                if pu != pv {
                    adj_sets[pu.index()].insert(pv.0);
                    adj_sets[pv.index()].insert(pu.0);
                }
            }
        }
        let adjacency = adj_sets
            .into_iter()
            .map(|s| {
                let mut v: Vec<PartitionId> = s.into_iter().map(PartitionId).collect();
                v.sort();
                v
            })
            .collect();
        let landmark_of = partitioning.landmarks().to_vec();
        let costs = CostMatrix::compute(graph, &landmark_of);
        let row_of = landmark_of
            .iter()
            .map(|&s| costs.source_index(s).expect("every landmark has a row") as u32)
            .collect();
        Self { adjacency, costs, landmark_of, row_of }
    }

    /// Number of partitions / landmarks.
    #[inline]
    pub fn len(&self) -> usize {
        self.landmark_of.len()
    }

    /// Whether the landmark graph is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.landmark_of.is_empty()
    }

    /// Partitions adjacent to `p`.
    #[inline]
    pub fn neighbors(&self, p: PartitionId) -> &[PartitionId] {
        &self.adjacency[p.index()]
    }

    /// Landmark vertex of partition `p`.
    #[inline]
    pub fn landmark(&self, p: PartitionId) -> NodeId {
        self.landmark_of[p.index()]
    }

    /// Travel cost between the landmarks of two partitions, seconds.
    #[inline]
    pub fn cost_between(&self, from: PartitionId, to: PartitionId) -> f32 {
        self.costs.cost_from_idx(self.row_of[from.index()] as usize, self.landmark_of[to.index()])
    }

    /// Travel cost from partition `p`'s landmark to any vertex.
    #[inline]
    pub fn cost_from_landmark(&self, p: PartitionId, v: NodeId) -> f32 {
        self.costs.cost_from_idx(self.row_of[p.index()] as usize, v)
    }

    /// Travel cost from any vertex to partition `p`'s landmark.
    #[inline]
    pub fn cost_to_landmark(&self, v: NodeId, p: PartitionId) -> f32 {
        self.costs.cost_to_idx(v, self.row_of[p.index()] as usize)
    }

    /// Approximate resident memory in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.adjacency.iter().map(|a| a.len() * 2).sum::<usize>()
            + self.costs.memory_bytes()
            + self.landmark_of.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid_partition::grid_partition;
    use mtshare_road::{grid_city, GridCityConfig};
    use mtshare_routing::Dijkstra;

    fn setup() -> (RoadNetwork, MapPartitioning, LandmarkGraph) {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        let p = grid_partition(&g, 16);
        let lg = LandmarkGraph::build(&g, &p);
        (g, p, lg)
    }

    #[test]
    fn adjacency_is_symmetric_and_irreflexive() {
        let (_, p, lg) = setup();
        for q in p.partitions() {
            for &r in lg.neighbors(q) {
                assert_ne!(q, r);
                assert!(lg.neighbors(r).contains(&q), "{q} -> {r} not symmetric");
            }
        }
    }

    #[test]
    fn grid_partitions_have_neighbors() {
        let (_, p, lg) = setup();
        assert!(!lg.is_empty());
        assert_eq!(lg.len(), p.len());
        for q in p.partitions() {
            assert!(!lg.neighbors(q).is_empty(), "{q} isolated");
        }
    }

    #[test]
    fn landmark_costs_are_exact() {
        let (g, p, lg) = setup();
        let mut d = Dijkstra::new(&g);
        let parts: Vec<_> = p.partitions().collect();
        for &a in parts.iter().take(4) {
            for &b in parts.iter().rev().take(4) {
                let want = d.cost(&g, lg.landmark(a), lg.landmark(b)).unwrap();
                assert!((lg.cost_between(a, b) as f64 - want).abs() < 1e-2);
            }
        }
    }

    #[test]
    fn vertex_to_landmark_costs_are_exact() {
        let (g, p, lg) = setup();
        let mut d = Dijkstra::new(&g);
        let q = p.partitions().next().unwrap();
        for v in [NodeId(3), NodeId(250), NodeId(399)] {
            let want_to = d.cost(&g, v, lg.landmark(q)).unwrap();
            assert!((lg.cost_to_landmark(v, q) as f64 - want_to).abs() < 1e-2);
            let want_from = d.cost(&g, lg.landmark(q), v).unwrap();
            assert!((lg.cost_from_landmark(q, v) as f64 - want_from).abs() < 1e-2);
        }
    }

    #[test]
    fn memory_positive() {
        let (_, _, lg) = setup();
        assert!(lg.memory_bytes() > 0);
    }
}
