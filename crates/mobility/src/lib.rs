//! Mobility substrate for mT-Share (Sec. IV-B).
//!
//! Implements the two indexing foundations of the system:
//!
//! - **Bipartite map partitioning** ([`partition`]): vertices are grouped by
//!   geography *and* transition patterns mined from historical trips
//!   ([`transition`]), on top of a seeded k-means ([`kmeans`]). Each
//!   partitioning carries landmarks and a landmark graph ([`landmark`]).
//!   The grid strategy of prior work lives in [`grid_partition`] for the
//!   Table V ablation.
//! - **Mobility clustering** ([`cluster`]): requests and busy taxis are
//!   clustered by travel direction with a cosine threshold λ.

#![warn(missing_docs)]

pub mod cluster;
pub mod grid_partition;
pub mod kmeans;
pub mod landmark;
pub mod partition;
pub mod persist;
pub mod transition;

pub use cluster::{ClusterId, ClustererParts, MobilityClusterer, MobilityVector};
pub use grid_partition::grid_partition;
pub use kmeans::{kmeans, KMeansResult};
pub use landmark::LandmarkGraph;
pub use partition::{bipartite_partition, BipartiteConfig, MapPartitioning, PartitionId};
pub use transition::{TransitionModel, Trip};
