//! Mobility vectors and incremental mobility clustering (Sec. IV-B2).
//!
//! A mobility vector points from a trip origin to its destination (Def. 9).
//! Requests and busy taxis are grouped into clusters of similar travel
//! direction: a new vector joins the best-matching cluster whose general
//! vector lies within `cos θ ≥ λ`, otherwise it founds a new cluster.
//! Cluster membership updates are O(#clusters), matching the paper's
//! "negligible overheads" claim.

use mtshare_road::{direction_cosine, GeoPoint};

/// A travel intent from an origin to a destination (Def. 9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MobilityVector {
    /// Trip origin.
    pub origin: GeoPoint,
    /// Trip destination.
    pub destination: GeoPoint,
}

impl MobilityVector {
    /// Creates a mobility vector.
    pub fn new(origin: GeoPoint, destination: GeoPoint) -> Self {
        Self { origin, destination }
    }

    /// Planar direction (east, north) in metres.
    #[inline]
    pub fn direction(&self) -> (f64, f64) {
        self.origin.displacement_m(&self.destination)
    }

    /// Cosine of the travel-direction difference to `other` (Eq. 1).
    #[inline]
    pub fn cos_to(&self, other: &MobilityVector) -> f64 {
        direction_cosine(self.direction(), other.direction())
    }
}

/// Identifier of a mobility cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterId(pub u32);

impl ClusterId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, Default)]
struct ClusterState {
    count: u32,
    sum_o_lat: f64,
    sum_o_lng: f64,
    sum_d_lat: f64,
    sum_d_lng: f64,
}

impl ClusterState {
    fn general_vector(&self) -> MobilityVector {
        let n = self.count as f64;
        MobilityVector::new(
            GeoPoint::new(self.sum_o_lat / n, self.sum_o_lng / n),
            GeoPoint::new(self.sum_d_lat / n, self.sum_d_lng / n),
        )
    }
}

/// [`MobilityClusterer::snapshot_parts`] output: `(lambda, slots as
/// (count, [Σo_lat, Σo_lng, Σd_lat, Σd_lng]), free list, live count)`.
pub type ClustererParts = (f64, Vec<(u32, [f64; 4])>, Vec<u32>, usize);

/// Incremental clusterer over mobility vectors.
#[derive(Debug, Clone)]
pub struct MobilityClusterer {
    lambda: f64,
    clusters: Vec<ClusterState>,
    free: Vec<u32>,
    live: usize,
}

impl MobilityClusterer {
    /// Creates a clusterer with direction threshold `lambda = cos θ`
    /// (paper default 0.707, i.e. θ = 45°).
    pub fn new(lambda: f64) -> Self {
        assert!((-1.0..=1.0).contains(&lambda), "lambda must be a cosine");
        Self { lambda, clusters: Vec::new(), free: Vec::new(), live: 0 }
    }

    /// The direction threshold λ.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Number of live (non-empty) clusters.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no clusters exist.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The best-matching live cluster for `v` with `cos ≥ λ`, if any.
    pub fn best_match(&self, v: &MobilityVector) -> Option<ClusterId> {
        let mut best: Option<(f64, ClusterId)> = None;
        for (i, c) in self.clusters.iter().enumerate() {
            if c.count == 0 {
                continue;
            }
            let cos = v.cos_to(&c.general_vector());
            if cos >= self.lambda && best.is_none_or(|(b, _)| cos > b) {
                best = Some((cos, ClusterId(i as u32)));
            }
        }
        best.map(|(_, id)| id)
    }

    /// Inserts `v`, joining the best-matching cluster or founding a new one.
    /// Returns the cluster it landed in.
    pub fn insert(&mut self, v: &MobilityVector) -> ClusterId {
        if let Some(id) = self.best_match(v) {
            self.add_to(id, v);
            id
        } else {
            let id = match self.free.pop() {
                Some(slot) => ClusterId(slot),
                None => {
                    self.clusters.push(ClusterState::default());
                    ClusterId(self.clusters.len() as u32 - 1)
                }
            };
            self.live += 1;
            self.add_to(id, v);
            id
        }
    }

    fn add_to(&mut self, id: ClusterId, v: &MobilityVector) {
        let c = &mut self.clusters[id.index()];
        c.count += 1;
        c.sum_o_lat += v.origin.lat;
        c.sum_o_lng += v.origin.lng;
        c.sum_d_lat += v.destination.lat;
        c.sum_d_lng += v.destination.lng;
    }

    /// Removes a previously inserted vector from cluster `id` (e.g. when
    /// its ride request completes). Empty clusters are recycled.
    pub fn remove(&mut self, id: ClusterId, v: &MobilityVector) {
        let c = &mut self.clusters[id.index()];
        assert!(c.count > 0, "removing from an empty cluster");
        c.count -= 1;
        c.sum_o_lat -= v.origin.lat;
        c.sum_o_lng -= v.origin.lng;
        c.sum_d_lat -= v.destination.lat;
        c.sum_d_lng -= v.destination.lng;
        if c.count == 0 {
            *c = ClusterState::default();
            self.free.push(id.0);
            self.live -= 1;
        }
    }

    /// General mobility vector of a live cluster.
    pub fn general_vector(&self, id: ClusterId) -> Option<MobilityVector> {
        let c = self.clusters.get(id.index())?;
        (c.count > 0).then(|| c.general_vector())
    }

    /// Member count of a cluster (0 for recycled slots).
    pub fn member_count(&self, id: ClusterId) -> u32 {
        self.clusters.get(id.index()).map_or(0, |c| c.count)
    }

    /// Iterator over live cluster ids.
    pub fn live_clusters(&self) -> impl Iterator<Item = ClusterId> + '_ {
        self.clusters
            .iter()
            .enumerate()
            .filter(|(_, c)| c.count > 0)
            .map(|(i, _)| ClusterId(i as u32))
    }

    /// Approximate resident memory in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.clusters.len() * std::mem::size_of::<ClusterState>() + self.free.len() * 4
    }

    /// The clusterer's complete internal state, slot for slot, for
    /// persistence (see [`ClustererParts`]). Slot positions and free-list
    /// order are part of the state — cluster *identity* is the slot
    /// index, and recycled slots must be reused in the same order after
    /// a restore for dispatch decisions to replay identically.
    pub fn snapshot_parts(&self) -> ClustererParts {
        let slots = self
            .clusters
            .iter()
            .map(|c| (c.count, [c.sum_o_lat, c.sum_o_lng, c.sum_d_lat, c.sum_d_lng]))
            .collect();
        (self.lambda, slots, self.free.clone(), self.live)
    }

    /// Rebuilds a clusterer from [`MobilityClusterer::snapshot_parts`]
    /// output, validating internal consistency (free list ↔ empty slots
    /// ↔ live count) so a corrupt snapshot cannot produce a clusterer
    /// that panics later.
    pub fn from_snapshot_parts(
        lambda: f64,
        slots: Vec<(u32, [f64; 4])>,
        free: Vec<u32>,
        live: usize,
    ) -> Result<Self, &'static str> {
        let n_live = slots.iter().filter(|(count, _)| *count > 0).count();
        if n_live != live {
            return Err("live count disagrees with non-empty slots");
        }
        for &slot in &free {
            match slots.get(slot as usize) {
                Some((0, _)) => {}
                Some(_) => return Err("free list references a non-empty slot"),
                None => return Err("free list references a missing slot"),
            }
        }
        let n_free: std::collections::HashSet<u32> = free.iter().copied().collect();
        if n_free.len() != free.len() {
            return Err("free list contains duplicates");
        }
        if n_free.len() + live != slots.len() {
            return Err("every slot must be live or free");
        }
        let clusters = slots
            .into_iter()
            .map(|(count, [sum_o_lat, sum_o_lng, sum_d_lat, sum_d_lng])| ClusterState {
                count,
                sum_o_lat,
                sum_o_lng,
                sum_d_lat,
                sum_d_lng,
            })
            .collect();
        Ok(Self { lambda, clusters, free, live })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mv(o: (f64, f64), d: (f64, f64)) -> MobilityVector {
        MobilityVector::new(GeoPoint::new(o.0, o.1), GeoPoint::new(d.0, d.1))
    }

    const LAMBDA_45: f64 = std::f64::consts::FRAC_1_SQRT_2;

    #[test]
    fn similar_directions_share_a_cluster() {
        let mut c = MobilityClusterer::new(LAMBDA_45);
        // Both head roughly north-east.
        let a = mv((30.0, 104.0), (30.01, 104.01));
        let b = mv((30.001, 104.001), (30.012, 104.009));
        let ca = c.insert(&a);
        let cb = c.insert(&b);
        assert_eq!(ca, cb);
        assert_eq!(c.len(), 1);
        assert_eq!(c.member_count(ca), 2);
    }

    #[test]
    fn opposite_directions_split() {
        let mut c = MobilityClusterer::new(LAMBDA_45);
        let north = mv((30.0, 104.0), (30.01, 104.0));
        let south = mv((30.0, 104.0), (29.99, 104.0));
        let cn = c.insert(&north);
        let cs = c.insert(&south);
        assert_ne!(cn, cs);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn best_match_prefers_closest_direction() {
        let mut c = MobilityClusterer::new(0.8);
        let east = mv((30.0, 104.0), (30.0, 104.02));
        let north = mv((30.0, 104.0), (30.02, 104.0));
        let ce = c.insert(&east);
        let cn = c.insert(&north);
        // North-north-east probe: nearer to north than east.
        let probe = mv((30.0, 104.0), (30.02, 104.005));
        assert_eq!(c.best_match(&probe), Some(cn));
        assert_ne!(ce, cn);
    }

    #[test]
    fn remove_recycles_empty_clusters() {
        let mut c = MobilityClusterer::new(LAMBDA_45);
        let a = mv((30.0, 104.0), (30.01, 104.0));
        let id = c.insert(&a);
        c.remove(id, &a);
        assert_eq!(c.len(), 0);
        assert_eq!(c.general_vector(id), None);
        // Next insert reuses the slot.
        let b = mv((30.0, 104.0), (29.99, 104.0));
        let id2 = c.insert(&b);
        assert_eq!(id2, id);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn general_vector_is_mean_of_members() {
        let mut c = MobilityClusterer::new(0.5);
        let a = mv((30.0, 104.0), (30.02, 104.0));
        let b = mv((30.01, 104.0), (30.05, 104.0));
        let id = c.insert(&a);
        assert_eq!(c.insert(&b), id);
        let g = c.general_vector(id).unwrap();
        assert!((g.origin.lat - 30.005).abs() < 1e-9);
        assert!((g.destination.lat - 30.035).abs() < 1e-9);
    }

    #[test]
    fn member_within_threshold_at_admission() {
        // Property sampled over a fan of directions.
        let mut c = MobilityClusterer::new(LAMBDA_45);
        for i in 0..36 {
            let theta = i as f64 * 10f64.to_radians();
            let v = mv((30.0, 104.0), (30.0 + 0.01 * theta.cos(), 104.0 + 0.01 * theta.sin()));
            let id = c.insert(&v);
            // After insertion the member's cosine to its own cluster mean
            // should be high (mean moved toward it).
            let g = c.general_vector(id).unwrap();
            assert!(v.cos_to(&g) >= 0.5, "i={i} cos={}", v.cos_to(&g));
        }
        assert!(c.len() >= 4, "a 45° threshold splits the circle into ≥4 fans, got {}", c.len());
    }

    #[test]
    fn degenerate_zero_length_vector_forms_own_cluster() {
        let mut c = MobilityClusterer::new(LAMBDA_45);
        let p = GeoPoint::new(30.0, 104.0);
        let z = MobilityVector::new(p, p);
        let n = mv((30.0, 104.0), (30.01, 104.0));
        let cz = c.insert(&z);
        let cn = c.insert(&n);
        assert_ne!(cz, cn);
    }
}
