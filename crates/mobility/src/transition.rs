//! Transition-probability mining from historical taxi trips.
//!
//! Step ① of the bipartite map partitioning (Sec. IV-B1): for every vertex
//! `v_i`, compute the probability vector `B_i` over the κ spatial clusters,
//! where `B_ij` is the probability that a ride calling a taxi at `v_i`
//! travelled to cluster `j`. Probabilistic routing (Alg. 4) reuses these
//! vectors to score partitions.

use mtshare_road::NodeId;

/// One historical taxi trip (origin/destination already snapped to graph
/// vertices; this is all the mining needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trip {
    /// Pick-up vertex.
    pub origin: NodeId,
    /// Drop-off vertex.
    pub destination: NodeId,
}

/// Per-vertex transition-probability vectors over a cluster labelling.
#[derive(Debug, Clone)]
pub struct TransitionModel {
    kappa: usize,
    /// Row-major `N × κ` probabilities; rows sum to 1.
    rows: Vec<f32>,
    /// Observed trips per vertex (0 ⇒ uniform smoothing row).
    counts: Vec<u32>,
}

impl TransitionModel {
    /// Mines transition vectors from `trips`, destination-labelled by
    /// `cluster_of` (vertex → spatial-cluster index, values < `kappa`).
    ///
    /// Vertices with no observed trips receive a uniform row, which keeps
    /// downstream k-means well-defined everywhere.
    pub fn from_trips(n_nodes: usize, trips: &[Trip], cluster_of: &[u32], kappa: usize) -> Self {
        assert_eq!(cluster_of.len(), n_nodes, "cluster labelling must cover all vertices");
        assert!(kappa > 0, "kappa must be positive");
        let mut rows = vec![0.0f32; n_nodes * kappa];
        let mut counts = vec![0u32; n_nodes];
        for t in trips {
            let dest_cluster = cluster_of[t.destination.index()] as usize;
            debug_assert!(dest_cluster < kappa);
            rows[t.origin.index() * kappa + dest_cluster] += 1.0;
            counts[t.origin.index()] += 1;
        }
        for v in 0..n_nodes {
            let row = &mut rows[v * kappa..(v + 1) * kappa];
            let c = counts[v];
            if c == 0 {
                row.iter_mut().for_each(|p| *p = 1.0 / kappa as f32);
            } else {
                let inv = 1.0 / c as f32;
                row.iter_mut().for_each(|p| *p *= inv);
            }
        }
        Self { kappa, rows, counts }
    }

    /// Number of destination clusters κ.
    #[inline]
    pub fn kappa(&self) -> usize {
        self.kappa
    }

    /// Number of vertices covered.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.counts.len()
    }

    /// Probability row of vertex `v` (length κ, sums to 1).
    #[inline]
    pub fn row(&self, v: NodeId) -> &[f32] {
        &self.rows[v.index() * self.kappa..(v.index() + 1) * self.kappa]
    }

    /// `P(destination ∈ cluster | origin = v)`.
    #[inline]
    pub fn prob(&self, v: NodeId, cluster: usize) -> f32 {
        self.rows[v.index() * self.kappa + cluster]
    }

    /// Accumulated probability from `v` to any cluster in `clusters`.
    pub fn prob_to_any(&self, v: NodeId, clusters: &[bool]) -> f32 {
        debug_assert_eq!(clusters.len(), self.kappa);
        self.row(v).iter().zip(clusters).filter(|(_, &keep)| keep).map(|(p, _)| p).sum()
    }

    /// Number of trips observed departing from `v`.
    #[inline]
    pub fn observed(&self, v: NodeId) -> u32 {
        self.counts[v.index()]
    }

    /// All rows, flattened (`N × κ` as `f64` for k-means input).
    pub fn rows_f64(&self) -> Vec<f64> {
        self.rows.iter().map(|&p| p as f64).collect()
    }

    /// Approximate resident memory in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.rows.len() * 4 + self.counts.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TransitionModel {
        // 4 vertices, 2 clusters; cluster_of = [0, 0, 1, 1].
        let cluster_of = vec![0, 0, 1, 1];
        let trips = vec![
            Trip { origin: NodeId(0), destination: NodeId(2) }, // 0 -> c1
            Trip { origin: NodeId(0), destination: NodeId(3) }, // 0 -> c1
            Trip { origin: NodeId(0), destination: NodeId(1) }, // 0 -> c0
            Trip { origin: NodeId(1), destination: NodeId(0) }, // 1 -> c0
        ];
        TransitionModel::from_trips(4, &trips, &cluster_of, 2)
    }

    #[test]
    fn probabilities_reflect_counts() {
        let m = model();
        assert!((m.prob(NodeId(0), 1) - 2.0 / 3.0).abs() < 1e-6);
        assert!((m.prob(NodeId(0), 0) - 1.0 / 3.0).abs() < 1e-6);
        assert_eq!(m.prob(NodeId(1), 0), 1.0);
        assert_eq!(m.observed(NodeId(0)), 3);
    }

    #[test]
    fn rows_sum_to_one() {
        let m = model();
        for v in 0..4u32 {
            let s: f32 = m.row(NodeId(v)).iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "row {v} sums to {s}");
        }
    }

    #[test]
    fn unseen_vertex_gets_uniform_row() {
        let m = model();
        assert_eq!(m.observed(NodeId(3)), 0);
        assert_eq!(m.prob(NodeId(3), 0), 0.5);
        assert_eq!(m.prob(NodeId(3), 1), 0.5);
    }

    #[test]
    fn prob_to_any_accumulates() {
        let m = model();
        assert!((m.prob_to_any(NodeId(0), &[true, true]) - 1.0).abs() < 1e-6);
        assert!((m.prob_to_any(NodeId(0), &[false, true]) - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(m.prob_to_any(NodeId(0), &[false, false]), 0.0);
    }

    #[test]
    fn dimensions_and_memory() {
        let m = model();
        assert_eq!(m.kappa(), 2);
        assert_eq!(m.node_count(), 4);
        assert_eq!(m.rows_f64().len(), 8);
        assert!(m.memory_bytes() > 0);
    }
}
