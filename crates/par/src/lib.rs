//! Deterministic fork-join helpers for speculative batch dispatch.
//!
//! The batch-dispatch path scores many independent requests concurrently
//! and then commits the results sequentially, so the only primitive it
//! needs is an indexed map: run `f(0..n)` on a small worker pool and
//! return the results **in index order**, independent of which worker
//! computed what. Work is handed out through a shared atomic counter
//! (dynamic stealing — long items don't serialize behind a static split),
//! and each worker tags results with their index so the merge is a plain
//! sort-free scatter.
//!
//! Built on `std::thread::scope` only: no unsafe code, no extra
//! dependencies, and a `workers <= 1` call degrades to a plain inline
//! loop with zero thread overhead.

#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `f(i)` for `i in 0..n` on up to `workers` threads and returns the
/// results in index order.
pub fn par_map<T, F>(workers: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut units = vec![(); workers.max(1)];
    par_map_with(&mut units, n, |i, _| f(i))
}

/// Like [`par_map`], but each worker threads its own mutable state through
/// every item it processes (e.g. a per-worker routing scratch buffer).
/// `states` sizes the pool: `states.len()` workers, one state each.
///
/// Which state processes which item is scheduling-dependent; callers must
/// only rely on the *merged* effect over all states (e.g. additive
/// counters), never on per-state contents.
///
/// # Panics
///
/// Panics if `states` is empty, or if any `f` call panicked (the panic
/// surfaces on the calling thread after the pool drained). Callers that
/// must survive a panicking `f` use [`try_par_map_with`].
pub fn par_map_with<S, T, F>(states: &mut [S], n: usize, f: F) -> Vec<T>
where
    S: Send,
    T: Send,
    F: Fn(usize, &mut S) -> T + Sync,
{
    match try_par_map_with(states, n, f) {
        Ok(out) => out,
        Err(panicked) => panic!("{panicked} worker item(s) panicked"),
    }
}

/// Panic-isolating variant of [`par_map_with`]: every `f` call runs under
/// [`catch_unwind`], so one panicking item neither aborts the process nor
/// poisons the pool — the remaining items still execute. Returns
/// `Err(panicked_items)` if any call panicked (the partial results are
/// discarded; the caller is expected to degrade to its sequential path).
///
/// On `Err` the worker states may have been left mid-mutation by the
/// panicking call; callers must treat them as tainted scratch (additive
/// profiling counters are fine, correctness-bearing state is not).
///
/// # Panics
///
/// Panics if `states` is empty.
pub fn try_par_map_with<S, T, F>(states: &mut [S], n: usize, f: F) -> Result<Vec<T>, usize>
where
    S: Send,
    T: Send,
    F: Fn(usize, &mut S) -> T + Sync,
{
    assert!(!states.is_empty(), "par_map_with needs at least one worker state");
    if states.len() == 1 || n <= 1 {
        let state = &mut states[0];
        let mut out = Vec::with_capacity(n);
        let mut panicked = 0usize;
        for i in 0..n {
            match catch_unwind(AssertUnwindSafe(|| f(i, &mut *state))) {
                Ok(v) => out.push(v),
                Err(_) => panicked += 1,
            }
        }
        return if panicked == 0 { Ok(out) } else { Err(panicked) };
    }

    let next = AtomicUsize::new(0);
    let panicked = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let tagged: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = states
            .iter_mut()
            .map(|state| {
                let next = &next;
                let panicked = &panicked;
                let f = &f;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        match catch_unwind(AssertUnwindSafe(|| f(i, &mut *state))) {
                            Ok(v) => local.push((i, v)),
                            Err(_) => {
                                panicked.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker thread died")).collect()
    });
    let n_panicked = panicked.load(Ordering::Relaxed);
    if n_panicked > 0 {
        return Err(n_panicked);
    }
    for (i, v) in tagged.into_iter().flatten() {
        slots[i] = Some(v);
    }
    Ok(slots.into_iter().map(|s| s.expect("every index produced")).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_index_order() {
        for workers in [1, 2, 4, 8] {
            let out = par_map(workers, 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(par_map(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(4, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn worker_states_cover_all_items_exactly_once() {
        let mut counters = vec![0u64; 3];
        let out = par_map_with(&mut counters, 50, |i, c| {
            *c += 1;
            i
        });
        assert_eq!(out, (0..50).collect::<Vec<_>>());
        assert_eq!(counters.iter().sum::<u64>(), 50);
    }

    #[test]
    fn all_threads_observe_shared_reads() {
        let total = AtomicU64::new(0);
        let data: Vec<u64> = (0..1000).collect();
        let out = par_map(4, 1000, |i| {
            total.fetch_add(data[i], Ordering::Relaxed);
            data[i] * 2
        });
        assert_eq!(total.load(Ordering::Relaxed), 1000 * 999 / 2);
        assert_eq!(out[999], 1998);
    }

    #[test]
    #[should_panic(expected = "at least one worker state")]
    fn empty_pool_panics() {
        let mut states: Vec<()> = Vec::new();
        let _ = par_map_with(&mut states, 3, |i, _| i);
    }

    /// Silences the default panic hook for the duration of `body` so the
    /// intentionally panicking items don't spam test output. Serialized
    /// because the hook is process-global.
    fn with_quiet_panics(body: impl FnOnce()) {
        use std::sync::Mutex;
        static HOOK_LOCK: Mutex<()> = Mutex::new(());
        let _guard = HOOK_LOCK.lock().unwrap();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        body();
        std::panic::set_hook(prev);
    }

    #[test]
    fn try_variant_isolates_panicking_items() {
        with_quiet_panics(|| {
            for n_states in [1usize, 4] {
                let mut states = vec![0u64; n_states];
                let done = AtomicU64::new(0);
                let r = try_par_map_with(&mut states, 20, |i, _| {
                    if i == 7 {
                        panic!("injected");
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                    i
                });
                assert_eq!(r, Err(1), "states={n_states}");
                // The panic did not take down the other items.
                assert_eq!(done.load(Ordering::Relaxed), 19, "states={n_states}");
            }
        });
    }

    #[test]
    fn try_variant_succeeds_when_nothing_panics() {
        let mut states = vec![(); 3];
        let r = try_par_map_with(&mut states, 10, |i, _| i * 3);
        assert_eq!(r, Ok((0..10).map(|i| i * 3).collect::<Vec<_>>()));
    }

    #[test]
    fn par_map_with_still_panics_on_worker_panic() {
        with_quiet_panics(|| {
            let caught = std::panic::catch_unwind(|| {
                let mut states = vec![(); 2];
                par_map_with(&mut states, 8, |i, _| {
                    if i == 3 {
                        panic!("boom");
                    }
                    i
                })
            });
            assert!(caught.is_err());
        });
    }
}
