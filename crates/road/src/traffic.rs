//! Traffic conditions as edge-cost transforms.
//!
//! The paper assumes stable traffic ("the travel cost of each edge is
//! constant") but notes the system "could easily extend to run with
//! real-time traffic conditions" (Sec. III-A). This module provides that
//! extension point: an [`HourlyTrafficProfile`] of per-hour speed factors
//! and [`apply_traffic`], which derives a re-weighted [`RoadNetwork`] for
//! a time slice. Deriving a graph per slice keeps every downstream
//! component (caches, cost matrices, oracles) valid within the slice —
//! the same quasi-static model traffic-aware dispatch systems use in
//! practice.

use crate::graph::{EdgeSpec, GraphError, RoadNetwork};

/// Per-hour speed factors: effective speed = base speed × factor.
/// A factor below 1 models congestion, above 1 free flow.
#[derive(Debug, Clone, PartialEq)]
pub struct HourlyTrafficProfile {
    factors: [f64; 24],
}

impl Default for HourlyTrafficProfile {
    fn default() -> Self {
        Self::free_flow()
    }
}

impl HourlyTrafficProfile {
    /// No congestion at any hour.
    pub fn free_flow() -> Self {
        Self { factors: [1.0; 24] }
    }

    /// A workday shape: morning (7-9) and evening (17-19) rush hours slow
    /// traffic to ~60%, shoulders to ~80%, night free-flows slightly above
    /// nominal.
    pub fn workday() -> Self {
        let mut factors = [1.0f64; 24];
        for (h, f) in factors.iter_mut().enumerate() {
            *f = match h {
                7..=9 => 0.6,
                10..=16 => 0.85,
                17..=19 => 0.6,
                20..=22 => 0.9,
                _ => 1.1,
            };
        }
        Self { factors }
    }

    /// Builds a profile from explicit factors.
    ///
    /// # Panics
    /// Panics when any factor is non-positive or non-finite.
    pub fn from_factors(factors: [f64; 24]) -> Self {
        assert!(
            factors.iter().all(|f| f.is_finite() && *f > 0.0),
            "speed factors must be positive"
        );
        Self { factors }
    }

    /// The speed factor in effect at simulation time `t` seconds (hours
    /// wrap modulo 24).
    pub fn factor_at(&self, t_s: f64) -> f64 {
        let h = ((t_s / 3600.0).floor() as i64).rem_euclid(24) as usize;
        self.factors[h]
    }

    /// Slowest factor of the profile.
    pub fn worst(&self) -> f64 {
        self.factors.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// A localized, time-windowed travel-time shift: while active, travel
/// within `radius_m` of `center` takes `factor`× its base time (`factor`
/// above 1 models a sudden slowdown — an incident, closure-induced spill —
/// below 1 a clearing). Unlike [`HourlyTrafficProfile`], which re-weights
/// the whole network per slice, a shift perturbs committed routes in
/// place: the simulator stretches the affected span of each taxi's timed
/// route and then repairs the schedules the stretch invalidated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficShiftSpec {
    /// Center of the affected region.
    pub center: crate::ids::NodeId,
    /// Radius of the affected region in metres.
    pub radius_m: f64,
    /// Travel-time multiplier while active (must be positive).
    pub factor: f64,
    /// Activation time (simulation seconds).
    pub start_s: f64,
    /// How long the shift lasts.
    pub duration_s: f64,
}

impl TrafficShiftSpec {
    /// When the shift stops applying.
    #[inline]
    pub fn end_s(&self) -> f64 {
        self.start_s + self.duration_s
    }

    /// Whether the shift is active at time `t`.
    #[inline]
    pub fn active_at(&self, t: f64) -> bool {
        t >= self.start_s && t < self.end_s()
    }

    /// Whether `node` lies inside the affected region.
    pub fn covers(&self, graph: &RoadNetwork, node: crate::ids::NodeId) -> bool {
        graph.point(node).distance_m(&graph.point(self.center)) <= self.radius_m
    }
}

/// Derives a road network whose edge travel costs reflect `factor`
/// (effective speed = base speed × factor; costs scale by 1/factor).
/// Lengths and topology are unchanged.
pub fn apply_traffic(graph: &RoadNetwork, factor: f64) -> Result<RoadNetwork, GraphError> {
    assert!(factor.is_finite() && factor > 0.0, "speed factor must be positive");
    let mut edges = Vec::with_capacity(graph.edge_count());
    for u in graph.nodes() {
        for (v, cost_s, length_m, _) in graph.out_edges_full(u) {
            // Recover the base speed from cost & length, then scale it.
            let base_speed_mps = length_m as f64 / cost_s as f64;
            edges.push(EdgeSpec {
                from: u,
                to: v,
                length_m: length_m as f64,
                speed_kmh: base_speed_mps * factor * 3.6,
            });
        }
    }
    RoadNetwork::new(graph.points().to_vec(), &edges)
}

/// Derives a road network with every active [`TrafficShiftSpec`] applied
/// *regionally*: an edge's travel time is multiplied by `spec.factor`
/// when either endpoint lies inside the spec's region (matching the
/// node-coverage rule the simulator's `TimedRoute::stretch` repair
/// uses), and overlapping shifts compose multiplicatively. Note the
/// factor here is a **time** multiplier — the inverse sense of
/// [`apply_traffic`]'s speed factor. Lengths and topology are
/// unchanged; costs re-quantize through [`RoadNetwork::new`], so the
/// result obeys the same dyadic exactness contract as the base graph.
pub fn apply_traffic_shifts(
    graph: &RoadNetwork,
    shifts: &[TrafficShiftSpec],
) -> Result<RoadNetwork, GraphError> {
    // Precompute per-spec node coverage once: covers() is a distance
    // probe, and each edge would otherwise probe both endpoints per spec.
    let covered: Vec<Vec<bool>> = shifts
        .iter()
        .map(|spec| {
            assert!(spec.factor.is_finite() && spec.factor > 0.0, "time factor must be positive");
            graph.nodes().map(|v| spec.covers(graph, v)).collect()
        })
        .collect();
    let mut edges = Vec::with_capacity(graph.edge_count());
    for u in graph.nodes() {
        for (v, cost_s, length_m, _) in graph.out_edges_full(u) {
            let mut time_factor = 1.0;
            for (spec, cov) in shifts.iter().zip(&covered) {
                if cov[u.index()] || cov[v.index()] {
                    time_factor *= spec.factor;
                }
            }
            let base_speed_mps = length_m as f64 / cost_s as f64;
            edges.push(EdgeSpec {
                from: u,
                to: v,
                length_m: length_m as f64,
                speed_kmh: base_speed_mps / time_factor * 3.6,
            });
        }
    }
    RoadNetwork::new(graph.points().to_vec(), &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::synthetic::{grid_city, GridCityConfig};

    #[test]
    fn profile_factor_lookup_wraps() {
        let p = HourlyTrafficProfile::workday();
        assert_eq!(p.factor_at(8.0 * 3600.0), 0.6);
        assert_eq!(p.factor_at(3.0 * 3600.0), 1.1);
        // Hour 32 == hour 8 next day.
        assert_eq!(p.factor_at(32.0 * 3600.0), 0.6);
        assert_eq!(p.worst(), 0.6);
        assert_eq!(HourlyTrafficProfile::free_flow().factor_at(0.0), 1.0);
        assert_eq!(HourlyTrafficProfile::default(), HourlyTrafficProfile::free_flow());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_factor() {
        let mut f = [1.0; 24];
        f[3] = 0.0;
        let _ = HourlyTrafficProfile::from_factors(f);
    }

    #[test]
    fn congestion_scales_costs_inversely() {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        let slow = apply_traffic(&g, 0.5).unwrap();
        assert_eq!(slow.node_count(), g.node_count());
        assert_eq!(slow.edge_count(), g.edge_count());
        // Every direct edge cost doubles (speed halves).
        let mut checked = 0;
        for u in g.nodes().take(50) {
            for (v, base_cost) in g.out_edges(u) {
                let slow_cost = slow.direct_edge_cost(u, v).expect("same topology");
                assert!(
                    (slow_cost / base_cost - 2.0).abs() < 1e-3,
                    "{u}->{v}: {slow_cost} vs {base_cost}"
                );
                checked += 1;
            }
        }
        assert!(checked > 50);
    }

    #[test]
    fn free_flow_is_identity_on_costs() {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        let same = apply_traffic(&g, 1.0).unwrap();
        for u in g.nodes().take(30) {
            for (v, c) in g.out_edges(u) {
                let c2 = same.direct_edge_cost(u, v).unwrap();
                assert!((c2 - c).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn regional_shift_scales_only_covered_edges() {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        let center = NodeId(0);
        let spec = TrafficShiftSpec {
            center,
            radius_m: 300.0,
            factor: 2.0,
            start_s: 0.0,
            duration_s: 600.0,
        };
        let shifted = apply_traffic_shifts(&g, &[spec]).unwrap();
        assert_eq!(shifted.node_count(), g.node_count());
        assert_eq!(shifted.edge_count(), g.edge_count());
        let (mut touched, mut untouched) = (0, 0);
        for u in g.nodes() {
            for (v, base) in g.out_edges(u) {
                let got = shifted.direct_edge_cost(u, v).unwrap();
                if spec.covers(&g, u) || spec.covers(&g, v) {
                    assert!((got / base - 2.0).abs() < 1e-2, "{u}->{v}: {got} vs {base}");
                    touched += 1;
                } else {
                    assert!((got - base).abs() < 1e-3, "{u}->{v} changed outside region");
                    untouched += 1;
                }
            }
        }
        assert!(touched > 0, "region must cover some edges");
        assert!(untouched > touched, "region must not cover the whole city");
    }

    #[test]
    fn overlapping_shifts_compose_multiplicatively() {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        let spec = TrafficShiftSpec {
            center: NodeId(0),
            radius_m: 300.0,
            factor: 2.0,
            start_s: 0.0,
            duration_s: 600.0,
        };
        let twice = apply_traffic_shifts(&g, &[spec, spec]).unwrap();
        for u in g.nodes().take(60) {
            for (v, base) in g.out_edges(u) {
                let got = twice.direct_edge_cost(u, v).unwrap();
                let want = if spec.covers(&g, u) || spec.covers(&g, v) { 4.0 } else { 1.0 };
                assert!((got / base - want).abs() < 1e-2, "{u}->{v}");
            }
        }
        // No active shifts: costs are bit-identical to a plain rebuild —
        // re-quantization through RoadNetwork::new is idempotent.
        let same = apply_traffic_shifts(&g, &[]).unwrap();
        for u in g.nodes() {
            for (v, base) in g.out_edges(u) {
                assert_eq!(same.direct_edge_cost(u, v), Some(base), "{u}->{v}");
            }
        }
    }

    #[test]
    fn shortest_paths_scale_with_congestion() {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        let slow = apply_traffic(&g, 0.8).unwrap();
        let mut d1 = mtshare_routing_probe::shortest(&g, NodeId(0), NodeId(399));
        let mut d2 = mtshare_routing_probe::shortest(&slow, NodeId(0), NodeId(399));
        // Uniform scaling preserves the path, costs scale by 1/0.8.
        assert!((d2 / d1 - 1.25).abs() < 1e-3, "{d1} vs {d2}");
        std::mem::swap(&mut d1, &mut d2);
    }

    /// Minimal local Dijkstra so the road crate does not depend on the
    /// routing crate (which depends on road).
    mod mtshare_routing_probe {
        use crate::graph::RoadNetwork;
        use crate::ids::NodeId;
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        pub fn shortest(g: &RoadNetwork, s: NodeId, t: NodeId) -> f64 {
            let mut dist = vec![f64::INFINITY; g.node_count()];
            let mut heap = BinaryHeap::new();
            dist[s.index()] = 0.0;
            heap.push(Reverse((ordered_float(0.0), s.0)));
            while let Some(Reverse((d, u))) = heap.pop() {
                let d = d as f64 / 1e3;
                if u == t.0 {
                    return d;
                }
                if d > dist[u as usize] + 1e-9 {
                    continue;
                }
                for (v, w) in g.out_edges(NodeId(u)) {
                    let nd = d + w as f64;
                    if nd < dist[v.index()] {
                        dist[v.index()] = nd;
                        heap.push(Reverse((ordered_float(nd), v.0)));
                    }
                }
            }
            f64::INFINITY
        }

        fn ordered_float(v: f64) -> u64 {
            (v * 1e3) as u64
        }
    }
}
