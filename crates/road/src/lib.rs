//! Road-network substrate for mT-Share (Definition 1 of the paper).
//!
//! A road network is a directed graph `G(V, E)` whose vertices are
//! geolocations and whose edges are road segments weighted by travel cost.
//! This crate provides:
//!
//! - [`geo`]: geographic primitives (points, distances, direction cosines);
//! - [`ids`]: compact typed vertex/edge identifiers;
//! - [`graph`]: the CSR [`RoadNetwork`] with forward + reverse adjacency;
//! - [`spatial`]: a uniform-grid index for nearest-vertex and range queries;
//! - [`synthetic`]: deterministic city generators standing in for the
//!   paper's OpenStreetMap Chengdu graph (see DESIGN.md, substitutions).

#![warn(missing_docs)]

pub mod dissect;
pub mod geo;
pub mod graph;
pub mod ids;
pub mod io;
pub mod persist;
pub mod spatial;
pub mod synthetic;
pub mod traffic;

pub use dissect::nested_dissection_order;
pub use geo::{direction_cosine, BoundingBox, GeoPoint};
pub use graph::{quantize_cost_s, EdgeSpec, GraphError, RoadNetwork, COST_QUANTUM_S};
pub use ids::{EdgeId, NodeId};
pub use spatial::SpatialGrid;
pub use synthetic::{grid_city, ring_radial_city, GridCityConfig, RingRadialConfig};
pub use traffic::{apply_traffic, apply_traffic_shifts, HourlyTrafficProfile, TrafficShiftSpec};
