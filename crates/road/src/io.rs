//! Export helpers: GeoJSON for maps, CSV for spreadsheets.
//!
//! Visual inspection is how one sanity-checks a partitioning (the paper's
//! Fig. 3(b) colours Chengdu's partitions); these writers produce
//! FeatureCollections that drop straight into geojson.io / kepler.gl.

use crate::geo::GeoPoint;
use crate::graph::RoadNetwork;
use std::fmt::Write as _;

/// Serializes the road network as a GeoJSON `FeatureCollection` of
/// `LineString` features (one per directed edge) with `cost_s` properties.
pub fn network_to_geojson(graph: &RoadNetwork) -> String {
    let mut out = String::with_capacity(graph.edge_count() * 120);
    out.push_str("{\"type\":\"FeatureCollection\",\"features\":[");
    let mut first = true;
    for u in graph.nodes() {
        let pu = graph.point(u);
        for (v, cost) in graph.out_edges(u) {
            let pv = graph.point(v);
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"type\":\"Feature\",\"geometry\":{{\"type\":\"LineString\",\"coordinates\":[[{:.6},{:.6}],[{:.6},{:.6}]]}},\"properties\":{{\"from\":{},\"to\":{},\"cost_s\":{:.1}}}}}",
                pu.lng, pu.lat, pv.lng, pv.lat, u.0, v.0, cost
            );
        }
    }
    out.push_str("]}");
    out
}

/// Serializes labelled vertices (e.g. a map partitioning) as a GeoJSON
/// `FeatureCollection` of `Point` features with a `label` property —
/// colour by `label` to reproduce Fig. 3(b).
pub fn labelled_nodes_to_geojson(graph: &RoadNetwork, labels: &[u32]) -> String {
    assert_eq!(labels.len(), graph.node_count(), "one label per vertex");
    let mut out = String::with_capacity(graph.node_count() * 90);
    out.push_str("{\"type\":\"FeatureCollection\",\"features\":[");
    for (i, n) in graph.nodes().enumerate() {
        let p: GeoPoint = graph.point(n);
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"type\":\"Feature\",\"geometry\":{{\"type\":\"Point\",\"coordinates\":[{:.6},{:.6}]}},\"properties\":{{\"node\":{},\"label\":{}}}}}",
            p.lng, p.lat, n.0, labels[i]
        );
    }
    out.push_str("]}");
    out
}

/// Serializes the vertices as CSV: `node,lat,lng[,label]`.
pub fn nodes_to_csv(graph: &RoadNetwork, labels: Option<&[u32]>) -> String {
    if let Some(l) = labels {
        assert_eq!(l.len(), graph.node_count(), "one label per vertex");
    }
    let mut out = String::with_capacity(graph.node_count() * 32);
    out.push_str(if labels.is_some() { "node,lat,lng,label\n" } else { "node,lat,lng\n" });
    for (i, n) in graph.nodes().enumerate() {
        let p = graph.point(n);
        match labels {
            Some(l) => {
                let _ = writeln!(out, "{},{:.6},{:.6},{}", n.0, p.lat, p.lng, l[i]);
            }
            None => {
                let _ = writeln!(out, "{},{:.6},{:.6}", n.0, p.lat, p.lng);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{grid_city, GridCityConfig};

    fn tiny() -> RoadNetwork {
        grid_city(&GridCityConfig { rows: 3, cols: 3, ..Default::default() }).unwrap()
    }

    #[test]
    fn network_geojson_is_wellformed() {
        let g = tiny();
        let s = network_to_geojson(&g);
        assert!(s.starts_with("{\"type\":\"FeatureCollection\""));
        assert!(s.ends_with("]}"));
        assert_eq!(s.matches("LineString").count(), g.edge_count());
        // Balanced braces (cheap structural check).
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn labelled_geojson_has_one_point_per_vertex() {
        let g = tiny();
        let labels: Vec<u32> = (0..g.node_count() as u32).map(|i| i % 3).collect();
        let s = labelled_nodes_to_geojson(&g, &labels);
        assert_eq!(s.matches("Point").count(), g.node_count());
        assert!(s.contains("\"label\":2"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let g = tiny();
        let plain = nodes_to_csv(&g, None);
        assert_eq!(plain.lines().count(), g.node_count() + 1);
        assert!(plain.starts_with("node,lat,lng\n"));
        let labels = vec![7u32; g.node_count()];
        let labelled = nodes_to_csv(&g, Some(&labels));
        assert!(labelled.starts_with("node,lat,lng,label\n"));
        assert!(labelled.lines().nth(1).unwrap().ends_with(",7"));
    }

    #[test]
    #[should_panic(expected = "one label per vertex")]
    fn rejects_mismatched_labels() {
        let g = tiny();
        let _ = labelled_nodes_to_geojson(&g, &[1, 2]);
    }
}
