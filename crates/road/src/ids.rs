//! Compact typed identifiers for road-network entities.
//!
//! Node and edge ids are `u32` newtypes: the paper's largest graph has
//! ~214 k vertices, so 32 bits are ample and halve index memory relative to
//! `usize` (a Type-Sizes win the performance guide calls out).

/// Identifier of a road-network vertex (road intersection / geolocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of a directed road segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for EdgeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::from(42u32);
        assert_eq!(n.index(), 42);
        assert_eq!(n.to_string(), "v42");
        assert_eq!(EdgeId(7).to_string(), "e7");
        assert_eq!(EdgeId(7).index(), 7);
    }

    #[test]
    fn ids_are_small() {
        assert_eq!(std::mem::size_of::<NodeId>(), 4);
        assert_eq!(std::mem::size_of::<EdgeId>(), 4);
    }
}
