//! Nested-dissection vertex orders for customizable contraction.
//!
//! A customizable CH separates *what the hierarchy looks like* (pure
//! graph topology) from *what the edges cost* (the metric). The quality
//! of the topology-only phase hinges entirely on the elimination order:
//! contracting along a nested-dissection order keeps the chordal
//! fill-in (the shortcut skeleton) near-minimal on planar-ish road
//! networks, because every recursion level confines fill edges to a
//! small geometric separator.
//!
//! Road vertices carry coordinates, so we use the classic inertial
//! variant: recursively bisect the current vertex set along its wider
//! geographic axis at the median, take as separator the boundary
//! vertices of one half (every vertex of side A with an undirected
//! neighbor in side B), and emit `order(A \ C) ++ order(B) ++ sorted(C)`
//! so separators land *last* — i.e. highest in the hierarchy. The
//! recursion bottoms out on small cells, emitted in ascending vertex id.
//!
//! The order is a pure function of the graph (coordinates + adjacency):
//! no metric, no randomness, no parallelism — the same graph always
//! yields byte-identical orders, which the CCH artifact digest relies
//! on.

use crate::graph::RoadNetwork;
use crate::ids::NodeId;

/// Recursion stops when a cell has at most this many vertices; tiny
/// cells are cheaper to contract directly than to keep splitting.
const LEAF_SIZE: usize = 32;

/// Computes a nested-dissection elimination order for `graph`.
///
/// Returns a permutation of all vertex ids: `order[k]` is the vertex
/// eliminated (contracted) at position `k`, so later positions sit
/// higher in the hierarchy. Deterministic: depends only on the graph.
pub fn nested_dissection_order(graph: &RoadNetwork) -> Vec<u32> {
    let n = graph.node_count();
    let mut order = Vec::with_capacity(n);
    let mut cell: Vec<u32> = (0..n as u32).collect();
    // Side labels, indexed by vertex id: 0 = not in the current cell,
    // 1 = side A, 2 = side B. Reused across the whole recursion.
    let mut side = vec![0u8; n];
    dissect(graph, &mut cell, &mut side, &mut order);
    debug_assert_eq!(order.len(), n);
    order
}

/// Emits the elimination order of `cell` into `order` (recursive).
fn dissect(graph: &RoadNetwork, cell: &mut [u32], side: &mut [u8], order: &mut Vec<u32>) {
    if cell.len() <= LEAF_SIZE {
        cell.sort_unstable();
        order.extend_from_slice(cell);
        return;
    }

    // Split along the wider geographic axis at the median. Sorting by
    // (coordinate, id) pins the split when coordinates tie; an extra
    // pass handles fully degenerate geometry (all points coincident),
    // where the id order still yields a balanced — if arbitrary — cut.
    let bbox_wider_is_lat = {
        let (mut lat_min, mut lat_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut lng_min, mut lng_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in cell.iter() {
            let p = graph.point(NodeId(v));
            lat_min = lat_min.min(p.lat);
            lat_max = lat_max.max(p.lat);
            lng_min = lng_min.min(p.lng);
            lng_max = lng_max.max(p.lng);
        }
        (lat_max - lat_min) >= (lng_max - lng_min)
    };
    cell.sort_unstable_by(|&a, &b| {
        let (pa, pb) = (graph.point(NodeId(a)), graph.point(NodeId(b)));
        let (ka, kb) = if bbox_wider_is_lat { (pa.lat, pb.lat) } else { (pa.lng, pb.lng) };
        ka.partial_cmp(&kb).unwrap().then(a.cmp(&b))
    });
    let mid = cell.len() / 2;
    for &v in &cell[..mid] {
        side[v as usize] = 1;
    }
    for &v in &cell[mid..] {
        side[v as usize] = 2;
    }

    // Separator: vertices of side A adjacent (in either direction) to
    // side B. Removing C from A disconnects A\C from B, so the two
    // halves recurse independently and all cross fill-in lands in C.
    let mut a_minus_c = Vec::with_capacity(mid);
    let mut b_side = Vec::with_capacity(cell.len() - mid);
    let mut sep = Vec::new();
    for &v in cell.iter() {
        if side[v as usize] == 2 {
            b_side.push(v);
            continue;
        }
        let touches_b = graph
            .out_edges(NodeId(v))
            .map(|(u, _)| u)
            .chain(graph.in_edges(NodeId(v)).map(|(u, _)| u))
            .any(|u| side[u.0 as usize] == 2);
        if touches_b {
            sep.push(v);
        } else {
            a_minus_c.push(v);
        }
    }
    // Reset labels before recursing: subcells re-label their own span.
    // Both subcells are strictly smaller than the parent (`1 <= mid <
    // len`), so the recursion always terminates — even on degenerate
    // geometry where the whole of side A becomes the separator.
    for &v in cell.iter() {
        side[v as usize] = 0;
    }

    dissect(graph, &mut a_minus_c, side, order);
    dissect(graph, &mut b_side, side, order);
    sep.sort_unstable();
    order.extend_from_slice(&sep);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{grid_city, ring_radial_city, GridCityConfig, RingRadialConfig};

    #[test]
    fn order_is_a_permutation() {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        let ord = nested_dissection_order(&g);
        assert_eq!(ord.len(), g.node_count());
        let mut seen = vec![false; g.node_count()];
        for &v in &ord {
            assert!(!seen[v as usize], "duplicate vertex {v}");
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn order_is_deterministic_across_calls_and_shapes() {
        for g in [
            grid_city(&GridCityConfig::tiny()).unwrap(),
            ring_radial_city(&RingRadialConfig::default()).unwrap(),
        ] {
            assert_eq!(nested_dissection_order(&g), nested_dissection_order(&g));
        }
    }

    #[test]
    fn separators_land_late_in_the_order() {
        // On a grid the top-level separator is a median row/column; its
        // vertices must all sit in the last half of the order (they are
        // emitted after both halves recurse).
        let g = grid_city(&GridCityConfig { jitter_frac: 0.0, ..GridCityConfig::tiny() }).unwrap();
        let ord = nested_dissection_order(&g);
        let n = ord.len();
        let mut pos = vec![0usize; n];
        for (k, &v) in ord.iter().enumerate() {
            pos[v as usize] = k;
        }
        // The latest-eliminated vertex must be a top-level separator
        // member: it has neighbors eliminated much earlier on both sides.
        let top = ord[n - 1];
        let nbrs: Vec<_> = g.out_edges(NodeId(top)).map(|(u, _)| pos[u.0 as usize]).collect();
        assert!(nbrs.iter().any(|&p| p < n / 2), "top separator vertex must border early cells");
    }
}
