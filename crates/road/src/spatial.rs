//! Uniform-grid spatial index over road-network vertices.
//!
//! Supports the two queries matching needs: snap a geographic point to its
//! nearest vertex (requests arrive as coordinates) and enumerate vertices
//! within a radius (candidate searching range γ).

use crate::geo::GeoPoint;
use crate::graph::RoadNetwork;
use crate::ids::NodeId;

/// A bucketed grid over the graph's bounding box.
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    cells: Vec<Vec<NodeId>>,
    cols: usize,
    rows: usize,
    min_lat: f64,
    min_lng: f64,
    cell_lat: f64,
    cell_lng: f64,
}

impl SpatialGrid {
    /// Builds a grid whose cells are roughly `cell_m` metres on a side.
    pub fn build(graph: &RoadNetwork, cell_m: f64) -> Self {
        let bbox = graph.bbox();
        let width = bbox.width_m().max(1.0);
        let height = bbox.height_m().max(1.0);
        let cols = ((width / cell_m).ceil() as usize).clamp(1, 4096);
        let rows = ((height / cell_m).ceil() as usize).clamp(1, 4096);
        // Small epsilon so max-coordinate points land in the last cell.
        let cell_lat = (bbox.max_lat - bbox.min_lat).max(1e-9) / rows as f64 * (1.0 + 1e-12);
        let cell_lng = (bbox.max_lng - bbox.min_lng).max(1e-9) / cols as f64 * (1.0 + 1e-12);
        let mut cells = vec![Vec::new(); rows * cols];
        let mut grid = Self {
            cells: Vec::new(),
            cols,
            rows,
            min_lat: bbox.min_lat,
            min_lng: bbox.min_lng,
            cell_lat,
            cell_lng,
        };
        for node in graph.nodes() {
            let p = graph.point(node);
            let idx = grid.cell_of(&p);
            cells[idx].push(node);
        }
        grid.cells = cells;
        grid
    }

    #[inline]
    fn cell_coords(&self, p: &GeoPoint) -> (usize, usize) {
        let r = (((p.lat - self.min_lat) / self.cell_lat) as isize).clamp(0, self.rows as isize - 1)
            as usize;
        let c = (((p.lng - self.min_lng) / self.cell_lng) as isize).clamp(0, self.cols as isize - 1)
            as usize;
        (r, c)
    }

    #[inline]
    fn cell_of(&self, p: &GeoPoint) -> usize {
        let (r, c) = self.cell_coords(p);
        r * self.cols + c
    }

    /// The vertex closest to `p`, or `None` for an empty graph.
    ///
    /// Searches outward ring by ring; terminates once the closest found so
    /// far cannot be beaten by any unexplored ring.
    pub fn nearest_node(&self, graph: &RoadNetwork, p: &GeoPoint) -> Option<NodeId> {
        if graph.node_count() == 0 {
            return None;
        }
        let (r0, c0) = self.cell_coords(p);
        let mut best: Option<(f64, NodeId)> = None;
        // Approximate metres per cell, for the ring lower bound.
        let cell_m = (self.cell_lat.to_radians() * crate::geo::EARTH_RADIUS_M).min(
            self.cell_lng.to_radians()
                * crate::geo::EARTH_RADIUS_M
                * p.lat.to_radians().cos().abs().max(0.01),
        );
        let max_ring = self.rows.max(self.cols);
        for ring in 0..=max_ring {
            if let Some((d, _)) = best {
                // Every cell in ring `ring` is at least (ring-1) cells away.
                if ring >= 2 && (ring as f64 - 1.0) * cell_m > d {
                    break;
                }
            }
            let mut any_cell = false;
            self.for_ring(r0, c0, ring, |cell| {
                any_cell = true;
                for &node in &self.cells[cell] {
                    let d = graph.point(node).distance_m(p);
                    if best.is_none_or(|(bd, _)| d < bd) {
                        best = Some((d, node));
                    }
                }
            });
            if !any_cell && best.is_some() {
                break;
            }
        }
        best.map(|(_, n)| n)
    }

    /// All vertices within `radius_m` metres of `p`.
    pub fn nodes_within(&self, graph: &RoadNetwork, p: &GeoPoint, radius_m: f64) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.visit_nodes_within(graph, p, radius_m, |n| out.push(n));
        out
    }

    /// Visits every vertex within `radius_m` metres of `p` without
    /// allocating a result vector.
    pub fn visit_nodes_within<F: FnMut(NodeId)>(
        &self,
        graph: &RoadNetwork,
        p: &GeoPoint,
        radius_m: f64,
        mut f: F,
    ) {
        let (r0, c0) = self.cell_coords(p);
        let lat_span = (radius_m / (self.cell_lat.to_radians() * crate::geo::EARTH_RADIUS_M)).ceil()
            as usize
            + 1;
        let lng_m_per_cell = self.cell_lng.to_radians()
            * crate::geo::EARTH_RADIUS_M
            * p.lat.to_radians().cos().abs().max(0.01);
        let lng_span = (radius_m / lng_m_per_cell).ceil() as usize + 1;
        let r_lo = r0.saturating_sub(lat_span);
        let r_hi = (r0 + lat_span).min(self.rows - 1);
        let c_lo = c0.saturating_sub(lng_span);
        let c_hi = (c0 + lng_span).min(self.cols - 1);
        for r in r_lo..=r_hi {
            for c in c_lo..=c_hi {
                for &node in &self.cells[r * self.cols + c] {
                    if graph.point(node).distance_m(p) <= radius_m {
                        f(node);
                    }
                }
            }
        }
    }

    fn for_ring<F: FnMut(usize)>(&self, r0: usize, c0: usize, ring: usize, mut f: F) {
        let (r0, c0) = (r0 as isize, c0 as isize);
        let ring = ring as isize;
        let in_bounds = |r: isize, c: isize| {
            r >= 0 && r < self.rows as isize && c >= 0 && c < self.cols as isize
        };
        if ring == 0 {
            if in_bounds(r0, c0) {
                f((r0 * self.cols as isize + c0) as usize);
            }
            return;
        }
        for c in (c0 - ring)..=(c0 + ring) {
            for r in [r0 - ring, r0 + ring] {
                if in_bounds(r, c) {
                    f((r * self.cols as isize + c) as usize);
                }
            }
        }
        for r in (r0 - ring + 1)..=(r0 + ring - 1) {
            for c in [c0 - ring, c0 + ring] {
                if in_bounds(r, c) {
                    f((r * self.cols as isize + c) as usize);
                }
            }
        }
    }

    /// Approximate resident memory of the index in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.cells.iter().map(|c| c.len() * 4 + std::mem::size_of::<Vec<NodeId>>()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeSpec;

    fn line_graph(n: usize) -> RoadNetwork {
        let pts: Vec<_> = (0..n).map(|i| GeoPoint::new(30.0, 104.0 + 0.001 * i as f64)).collect();
        let mut edges = Vec::new();
        for i in 0..n - 1 {
            edges.push(EdgeSpec {
                from: NodeId(i as u32),
                to: NodeId(i as u32 + 1),
                length_m: 100.0,
                speed_kmh: 15.0,
            });
        }
        RoadNetwork::new(pts, &edges).unwrap()
    }

    #[test]
    fn nearest_node_exact_hit() {
        let g = line_graph(50);
        let grid = SpatialGrid::build(&g, 200.0);
        for i in [0usize, 10, 49] {
            let p = g.point(NodeId(i as u32));
            assert_eq!(grid.nearest_node(&g, &p), Some(NodeId(i as u32)));
        }
    }

    #[test]
    fn nearest_node_matches_linear_scan() {
        let g = line_graph(80);
        let grid = SpatialGrid::build(&g, 150.0);
        let probes = [
            GeoPoint::new(30.0004, 104.012),
            GeoPoint::new(29.9998, 104.0),
            GeoPoint::new(30.01, 104.09),
        ];
        for p in probes {
            let brute = g
                .nodes()
                .min_by(|a, b| g.point(*a).distance_m(&p).total_cmp(&g.point(*b).distance_m(&p)))
                .unwrap();
            assert_eq!(grid.nearest_node(&g, &p), Some(brute), "probe {p:?}");
        }
    }

    #[test]
    fn nodes_within_matches_linear_scan() {
        let g = line_graph(60);
        let grid = SpatialGrid::build(&g, 120.0);
        let p = GeoPoint::new(30.0, 104.02);
        for radius in [50.0, 300.0, 1500.0] {
            let mut got = grid.nodes_within(&g, &p, radius);
            got.sort();
            let mut want: Vec<_> =
                g.nodes().filter(|n| g.point(*n).distance_m(&p) <= radius).collect();
            want.sort();
            assert_eq!(got, want, "radius {radius}");
        }
    }

    #[test]
    fn empty_radius_returns_empty() {
        let g = line_graph(10);
        let grid = SpatialGrid::build(&g, 100.0);
        let far = GeoPoint::new(40.0, 110.0);
        assert!(grid.nodes_within(&g, &far, 10.0).is_empty());
    }

    #[test]
    fn memory_estimate_positive() {
        let g = line_graph(10);
        let grid = SpatialGrid::build(&g, 100.0);
        assert!(grid.memory_bytes() > 0);
    }
}
