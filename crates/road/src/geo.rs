//! Geographic primitives.
//!
//! mT-Share works on a city-scale road network, so we use the cheap
//! equirectangular approximation for distances (error < 0.1% over tens of
//! kilometres) and keep an exact haversine implementation as a test oracle.

/// Mean Earth radius in metres (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A WGS-84 geographic point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lng: f64,
}

impl GeoPoint {
    /// Creates a point from latitude/longitude degrees.
    #[inline]
    pub const fn new(lat: f64, lng: f64) -> Self {
        Self { lat, lng }
    }

    /// Fast equirectangular distance in metres.
    ///
    /// Accurate to well under a metre per kilometre at city scale, which is
    /// all the matching heuristics need.
    #[inline]
    pub fn distance_m(&self, other: &GeoPoint) -> f64 {
        let mean_lat = 0.5 * (self.lat + other.lat).to_radians();
        let dlat = (other.lat - self.lat).to_radians();
        let dlng = (other.lng - self.lng).to_radians() * mean_lat.cos();
        EARTH_RADIUS_M * (dlat * dlat + dlng * dlng).sqrt()
    }

    /// Exact haversine distance in metres. Used as a test oracle and for
    /// long-range queries where the equirectangular error would accumulate.
    pub fn haversine_m(&self, other: &GeoPoint) -> f64 {
        let (lat1, lat2) = (self.lat.to_radians(), other.lat.to_radians());
        let dlat = lat2 - lat1;
        let dlng = (other.lng - self.lng).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlng / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }

    /// Arithmetic midpoint in coordinate space (fine at city scale).
    #[inline]
    pub fn midpoint(&self, other: &GeoPoint) -> GeoPoint {
        GeoPoint::new(0.5 * (self.lat + other.lat), 0.5 * (self.lng + other.lng))
    }

    /// Planar displacement vector from `self` to `other` in metres
    /// (east, north). This is what travel-direction comparisons use.
    #[inline]
    pub fn displacement_m(&self, other: &GeoPoint) -> (f64, f64) {
        let mean_lat = 0.5 * (self.lat + other.lat).to_radians();
        let east = (other.lng - self.lng).to_radians() * mean_lat.cos() * EARTH_RADIUS_M;
        let north = (other.lat - self.lat).to_radians() * EARTH_RADIUS_M;
        (east, north)
    }
}

/// Axis-aligned bounding box over geographic points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    /// Minimum latitude.
    pub min_lat: f64,
    /// Minimum longitude.
    pub min_lng: f64,
    /// Maximum latitude.
    pub max_lat: f64,
    /// Maximum longitude.
    pub max_lng: f64,
}

impl BoundingBox {
    /// An empty (inverted) box; extend with [`BoundingBox::include`].
    pub const EMPTY: BoundingBox = BoundingBox {
        min_lat: f64::INFINITY,
        min_lng: f64::INFINITY,
        max_lat: f64::NEG_INFINITY,
        max_lng: f64::NEG_INFINITY,
    };

    /// Grows the box to contain `p`.
    #[inline]
    pub fn include(&mut self, p: &GeoPoint) {
        self.min_lat = self.min_lat.min(p.lat);
        self.min_lng = self.min_lng.min(p.lng);
        self.max_lat = self.max_lat.max(p.lat);
        self.max_lng = self.max_lng.max(p.lng);
    }

    /// Computes the bounding box of a point set. Returns `EMPTY` for an
    /// empty slice.
    pub fn of(points: &[GeoPoint]) -> BoundingBox {
        let mut b = BoundingBox::EMPTY;
        for p in points {
            b.include(p);
        }
        b
    }

    /// Whether the box contains `p` (inclusive).
    #[inline]
    pub fn contains(&self, p: &GeoPoint) -> bool {
        p.lat >= self.min_lat
            && p.lat <= self.max_lat
            && p.lng >= self.min_lng
            && p.lng <= self.max_lng
    }

    /// Centre point of the box.
    #[inline]
    pub fn center(&self) -> GeoPoint {
        GeoPoint::new(0.5 * (self.min_lat + self.max_lat), 0.5 * (self.min_lng + self.max_lng))
    }

    /// Width (east-west extent) in metres, measured at the box centre
    /// latitude.
    pub fn width_m(&self) -> f64 {
        let c = self.center();
        GeoPoint::new(c.lat, self.min_lng).distance_m(&GeoPoint::new(c.lat, self.max_lng))
    }

    /// Height (north-south extent) in metres.
    pub fn height_m(&self) -> f64 {
        GeoPoint::new(self.min_lat, self.min_lng)
            .distance_m(&GeoPoint::new(self.max_lat, self.min_lng))
    }
}

/// Cosine similarity between two planar direction vectors.
///
/// Returns 0.0 when either vector is (numerically) zero, i.e. a degenerate
/// trip whose origin equals its destination is "similar to nothing".
#[inline]
pub fn direction_cosine(a: (f64, f64), b: (f64, f64)) -> f64 {
    let na = (a.0 * a.0 + a.1 * a.1).sqrt();
    let nb = (b.0 * b.0 + b.1 * b.1).sqrt();
    if na < 1e-9 || nb < 1e-9 {
        return 0.0;
    }
    ((a.0 * b.0 + a.1 * b.1) / (na * nb)).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHENGDU: GeoPoint = GeoPoint::new(30.66, 104.06);

    #[test]
    fn distance_zero_for_same_point() {
        assert_eq!(CHENGDU.distance_m(&CHENGDU), 0.0);
        assert_eq!(CHENGDU.haversine_m(&CHENGDU), 0.0);
    }

    #[test]
    fn equirectangular_matches_haversine_at_city_scale() {
        let a = CHENGDU;
        let b = GeoPoint::new(30.70, 104.12);
        let fast = a.distance_m(&b);
        let exact = a.haversine_m(&b);
        assert!((fast - exact).abs() / exact < 1e-3, "fast={fast} exact={exact}");
    }

    #[test]
    fn one_degree_latitude_is_about_111_km() {
        let a = GeoPoint::new(30.0, 104.0);
        let b = GeoPoint::new(31.0, 104.0);
        let d = a.haversine_m(&b);
        assert!((d - 111_195.0).abs() < 200.0, "d={d}");
    }

    #[test]
    fn distance_is_symmetric() {
        let a = CHENGDU;
        let b = GeoPoint::new(30.71, 103.99);
        assert!((a.distance_m(&b) - b.distance_m(&a)).abs() < 1e-9);
    }

    #[test]
    fn midpoint_is_between() {
        let a = GeoPoint::new(30.0, 104.0);
        let b = GeoPoint::new(31.0, 105.0);
        let m = a.midpoint(&b);
        assert_eq!(m.lat, 30.5);
        assert_eq!(m.lng, 104.5);
    }

    #[test]
    fn displacement_points_north_east() {
        let a = CHENGDU;
        let b = GeoPoint::new(30.67, 104.07);
        let (e, n) = a.displacement_m(&b);
        assert!(e > 0.0 && n > 0.0);
        // Displacement magnitude should equal the distance.
        let mag = (e * e + n * n).sqrt();
        assert!((mag - a.distance_m(&b)).abs() < 1.0);
    }

    #[test]
    fn bounding_box_of_points() {
        let pts =
            [GeoPoint::new(30.0, 104.0), GeoPoint::new(30.5, 104.5), GeoPoint::new(29.9, 104.2)];
        let b = BoundingBox::of(&pts);
        assert_eq!(b.min_lat, 29.9);
        assert_eq!(b.max_lat, 30.5);
        assert_eq!(b.min_lng, 104.0);
        assert_eq!(b.max_lng, 104.5);
        assert!(b.contains(&GeoPoint::new(30.2, 104.3)));
        assert!(!b.contains(&GeoPoint::new(31.0, 104.3)));
        assert!(b.width_m() > 0.0 && b.height_m() > 0.0);
    }

    #[test]
    fn direction_cosine_basics() {
        assert!((direction_cosine((1.0, 0.0), (1.0, 0.0)) - 1.0).abs() < 1e-12);
        assert!((direction_cosine((1.0, 0.0), (-1.0, 0.0)) + 1.0).abs() < 1e-12);
        assert!(direction_cosine((1.0, 0.0), (0.0, 1.0)).abs() < 1e-12);
        assert_eq!(direction_cosine((0.0, 0.0), (1.0, 0.0)), 0.0);
    }

    #[test]
    fn direction_cosine_45_degrees() {
        let c = direction_cosine((1.0, 0.0), (1.0, 1.0));
        assert!((c - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
    }
}
