//! [`Persist`] impls for the road-network value types that appear inside
//! checkpointed dispatcher state. The graph itself is *not* persisted —
//! it is deterministic given the city config and is rebuilt cold on
//! recovery (see DESIGN.md, "Persistence & warm restart").

use crate::geo::GeoPoint;
use crate::ids::NodeId;
use crate::traffic::TrafficShiftSpec;
use mtshare_persist::{DecodeError, Decoder, Encoder, Persist};

impl Persist for NodeId {
    fn encode(&self, enc: &mut Encoder) {
        enc.u32(self.0);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(NodeId(dec.u32()?))
    }
}

impl Persist for GeoPoint {
    fn encode(&self, enc: &mut Encoder) {
        enc.f64(self.lat);
        enc.f64(self.lng);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(GeoPoint { lat: dec.f64()?, lng: dec.f64()? })
    }
}

impl Persist for TrafficShiftSpec {
    fn encode(&self, enc: &mut Encoder) {
        self.center.encode(enc);
        enc.f64(self.radius_m);
        enc.f64(self.factor);
        enc.f64(self.start_s);
        enc.f64(self.duration_s);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(TrafficShiftSpec {
            center: NodeId::decode(dec)?,
            radius_m: dec.f64()?,
            factor: dec.f64()?,
            start_s: dec.f64()?,
            duration_s: dec.f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn road_types_round_trip() {
        let node = NodeId(417);
        assert_eq!(NodeId::from_bytes(&node.to_bytes()).unwrap(), node);
        let pt = GeoPoint { lat: 30.67, lng: 104.06 };
        assert_eq!(GeoPoint::from_bytes(&pt.to_bytes()).unwrap(), pt);
        let spec = TrafficShiftSpec {
            center: NodeId(12),
            radius_m: 800.0,
            factor: 0.5,
            start_s: 1800.0,
            duration_s: 600.0,
        };
        assert_eq!(TrafficShiftSpec::from_bytes(&spec.to_bytes()).unwrap(), spec);
    }
}
