//! The road network: a directed graph in compressed sparse row form.
//!
//! Matches Definition 1 of the paper: vertices are geolocations, edges are
//! road segments weighted by a travel cost. We store both the physical
//! length (metres) and the travel cost (seconds) per edge; with the paper's
//! constant-speed assumption the two are proportional, but keeping both lets
//! experiments vary speed per road class.

use crate::geo::{BoundingBox, GeoPoint};
use crate::ids::{EdgeId, NodeId};
use mtshare_persist::Fnv64;

/// Edge travel costs are quantized to multiples of this step (2⁻⁶ s)
/// when the CSR arrays are built. Dyadic weights make `f32` addition
/// *exact* for any path sum below 2¹⁸ s (~3 days), so summation is
/// associative and every exact engine — unidirectional or bidirectional
/// Dijkstra, contraction-hierarchy queries whose shortcut weights are
/// sums of sums — returns bit-identical costs for the same pair. The
/// determinism contracts of the caches and the trace-equivalence suite
/// build on this. Costs round *up* so the geometric lower bound used by
/// A* (distance / max speed) stays admissible.
pub const COST_QUANTUM_S: f64 = 1.0 / 64.0;

/// Rounds a travel cost in seconds up to the dyadic grid (see
/// [`COST_QUANTUM_S`]). Values already within one part in 10⁹ of a grid
/// point snap to it instead of bumping a whole quantum: they are grid
/// values that picked up float error in upstream arithmetic (e.g. a
/// speed recovered from an already-quantized cost, as `apply_traffic`
/// does), and ceiling them would make cost transforms non-idempotent.
#[inline]
pub fn quantize_cost_s(cost_s: f64) -> f32 {
    let steps = cost_s / COST_QUANTUM_S;
    let snapped = steps.round();
    let cells =
        if (steps - snapped).abs() <= snapped.abs() * 1e-9 { snapped } else { steps.ceil() };
    (cells * COST_QUANTUM_S) as f32
}

/// Errors raised while assembling a [`RoadNetwork`].
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge referenced a vertex id that was never added.
    UnknownVertex {
        /// The offending vertex id.
        node: u32,
        /// Number of vertices actually present.
        node_count: usize,
    },
    /// An edge had a non-positive or non-finite length/cost.
    InvalidEdgeWeight {
        /// Source vertex.
        from: u32,
        /// Target vertex.
        to: u32,
    },
    /// More than `u32::MAX` vertices or edges.
    TooLarge,
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::UnknownVertex { node, node_count } => {
                write!(f, "edge references vertex {node} but only {node_count} vertices exist")
            }
            GraphError::InvalidEdgeWeight { from, to } => {
                write!(f, "edge {from}->{to} has non-positive or non-finite weight")
            }
            GraphError::TooLarge => write!(f, "graph exceeds u32 id space"),
        }
    }
}

impl std::error::Error for GraphError {}

/// One directed edge as supplied to the builder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeSpec {
    /// Source vertex.
    pub from: NodeId,
    /// Target vertex.
    pub to: NodeId,
    /// Physical length in metres.
    pub length_m: f64,
    /// Travel speed on this segment in km/h.
    pub speed_kmh: f64,
}

impl EdgeSpec {
    /// Travel cost of this segment in seconds.
    #[inline]
    pub fn cost_s(&self) -> f64 {
        self.length_m / (self.speed_kmh / 3.6)
    }
}

/// Directed road network in CSR form with both forward and reverse adjacency
/// (the reverse star powers bidirectional and backward searches).
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    points: Vec<GeoPoint>,
    // Forward CSR.
    out_offsets: Vec<u32>,
    out_targets: Vec<NodeId>,
    out_costs: Vec<f32>,
    out_lengths: Vec<f32>,
    out_edge_ids: Vec<EdgeId>,
    // Reverse CSR (costs duplicated for cache locality in backward search).
    in_offsets: Vec<u32>,
    in_sources: Vec<NodeId>,
    in_costs: Vec<f32>,
    // Edge endpoints in insertion order, addressable by EdgeId.
    edge_endpoints: Vec<(NodeId, NodeId)>,
    bbox: BoundingBox,
    max_speed_mps: f64,
}

impl RoadNetwork {
    /// Builds a network from vertex positions and directed edges.
    pub fn new(points: Vec<GeoPoint>, edges: &[EdgeSpec]) -> Result<Self, GraphError> {
        if points.len() > u32::MAX as usize || edges.len() > u32::MAX as usize {
            return Err(GraphError::TooLarge);
        }
        let n = points.len();
        for e in edges {
            if e.from.index() >= n {
                return Err(GraphError::UnknownVertex { node: e.from.0, node_count: n });
            }
            if e.to.index() >= n {
                return Err(GraphError::UnknownVertex { node: e.to.0, node_count: n });
            }
            if !(e.length_m.is_finite()
                && e.length_m > 0.0
                && e.speed_kmh.is_finite()
                && e.speed_kmh > 0.0)
            {
                return Err(GraphError::InvalidEdgeWeight { from: e.from.0, to: e.to.0 });
            }
        }

        // Forward CSR via counting sort on `from`.
        let mut out_offsets = vec![0u32; n + 1];
        for e in edges {
            out_offsets[e.from.index() + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let m = edges.len();
        let mut out_targets = vec![NodeId(0); m];
        let mut out_costs = vec![0.0f32; m];
        let mut out_lengths = vec![0.0f32; m];
        let mut out_edge_ids = vec![EdgeId(0); m];
        let mut cursor = out_offsets.clone();
        let mut edge_endpoints = Vec::with_capacity(m);
        for (idx, e) in edges.iter().enumerate() {
            let slot = cursor[e.from.index()] as usize;
            cursor[e.from.index()] += 1;
            out_targets[slot] = e.to;
            out_costs[slot] = quantize_cost_s(e.cost_s());
            out_lengths[slot] = e.length_m as f32;
            out_edge_ids[slot] = EdgeId(idx as u32);
            edge_endpoints.push((e.from, e.to));
        }

        // Reverse CSR.
        let mut in_offsets = vec![0u32; n + 1];
        for e in edges {
            in_offsets[e.to.index() + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut in_sources = vec![NodeId(0); m];
        let mut in_costs = vec![0.0f32; m];
        let mut cursor = in_offsets.clone();
        for e in edges {
            let slot = cursor[e.to.index()] as usize;
            cursor[e.to.index()] += 1;
            in_sources[slot] = e.from;
            in_costs[slot] = quantize_cost_s(e.cost_s());
        }

        let bbox = BoundingBox::of(&points);
        let max_speed_mps = edges.iter().map(|e| e.speed_kmh / 3.6).fold(0.0f64, f64::max);

        Ok(Self {
            points,
            out_offsets,
            out_targets,
            out_costs,
            out_lengths,
            out_edge_ids,
            in_offsets,
            in_sources,
            in_costs,
            edge_endpoints,
            bbox,
            max_speed_mps,
        })
    }

    /// Number of vertices.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.points.len()
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Geographic position of a vertex.
    #[inline]
    pub fn point(&self, node: NodeId) -> GeoPoint {
        self.points[node.index()]
    }

    /// All vertex positions, indexed by [`NodeId`].
    #[inline]
    pub fn points(&self) -> &[GeoPoint] {
        &self.points
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.points.len() as u32).map(NodeId)
    }

    /// Outgoing `(target, cost_s)` pairs of `node`.
    #[inline]
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = (NodeId, f32)> + '_ {
        let lo = self.out_offsets[node.index()] as usize;
        let hi = self.out_offsets[node.index() + 1] as usize;
        self.out_targets[lo..hi].iter().copied().zip(self.out_costs[lo..hi].iter().copied())
    }

    /// Outgoing `(target, cost_s, length_m, edge_id)` tuples of `node`.
    #[inline]
    pub fn out_edges_full(
        &self,
        node: NodeId,
    ) -> impl Iterator<Item = (NodeId, f32, f32, EdgeId)> + '_ {
        let lo = self.out_offsets[node.index()] as usize;
        let hi = self.out_offsets[node.index() + 1] as usize;
        (lo..hi).map(move |i| {
            (self.out_targets[i], self.out_costs[i], self.out_lengths[i], self.out_edge_ids[i])
        })
    }

    /// Incoming `(source, cost_s)` pairs of `node`.
    #[inline]
    pub fn in_edges(&self, node: NodeId) -> impl Iterator<Item = (NodeId, f32)> + '_ {
        let lo = self.in_offsets[node.index()] as usize;
        let hi = self.in_offsets[node.index() + 1] as usize;
        self.in_sources[lo..hi].iter().copied().zip(self.in_costs[lo..hi].iter().copied())
    }

    /// Out-degree of a vertex.
    #[inline]
    pub fn out_degree(&self, node: NodeId) -> usize {
        (self.out_offsets[node.index() + 1] - self.out_offsets[node.index()]) as usize
    }

    /// Endpoints `(from, to)` of an edge by id.
    #[inline]
    pub fn edge_endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        self.edge_endpoints[edge.index()]
    }

    /// Cost in seconds of the cheapest direct edge `from -> to`, if any.
    pub fn direct_edge_cost(&self, from: NodeId, to: NodeId) -> Option<f32> {
        self.out_edges(from).filter(|(t, _)| *t == to).map(|(_, c)| c).min_by(|a, b| a.total_cmp(b))
    }

    /// Bounding box of all vertices.
    #[inline]
    pub fn bbox(&self) -> BoundingBox {
        self.bbox
    }

    /// Highest edge speed in metres per second; used by A* as an admissible
    /// heuristic divisor.
    #[inline]
    pub fn max_speed_mps(&self) -> f64 {
        self.max_speed_mps
    }

    /// Whether the graph is strongly connected (every vertex reaches every
    /// other). Checked with one forward and one backward BFS.
    pub fn is_strongly_connected(&self) -> bool {
        let n = self.node_count();
        if n == 0 {
            return true;
        }
        let reach_fwd = self.bfs_reach(NodeId(0), false);
        let reach_bwd = self.bfs_reach(NodeId(0), true);
        reach_fwd == n && reach_bwd == n
    }

    fn bfs_reach(&self, start: NodeId, backward: bool) -> usize {
        let mut seen = vec![false; self.node_count()];
        let mut queue = std::collections::VecDeque::with_capacity(64);
        seen[start.index()] = true;
        queue.push_back(start);
        let mut count = 1usize;
        while let Some(u) = queue.pop_front() {
            let next: Box<dyn Iterator<Item = NodeId>> = if backward {
                Box::new(self.in_edges(u).map(|(s, _)| s))
            } else {
                Box::new(self.out_edges(u).map(|(t, _)| t))
            };
            for v in next {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        count
    }

    /// Order-sensitive FNV-1a fingerprint of the routing-relevant CSR
    /// arrays (topology + quantized costs). Two graphs with the same
    /// digest answer every shortest-path query identically, so derived
    /// artifacts (e.g. a persisted contraction hierarchy) key on it to
    /// detect staleness.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.node_count() as u64);
        h.write_u64(self.edge_count() as u64);
        for &o in &self.out_offsets {
            h.write(&o.to_le_bytes());
        }
        for (t, c) in self.out_targets.iter().zip(&self.out_costs) {
            h.write(&t.0.to_le_bytes());
            h.write(&c.to_bits().to_le_bytes());
        }
        h.digest()
    }

    /// Approximate resident memory of the CSR arrays in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.points.len() * std::mem::size_of::<GeoPoint>()
            + (self.out_offsets.len() + self.in_offsets.len()) * 4
            + self.out_targets.len() * (4 + 4 + 4 + 4)
            + self.in_sources.len() * (4 + 4)
            + self.edge_endpoints.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RoadNetwork {
        // 0 -> 1 -> 2, plus 2 -> 0 closing the cycle.
        let pts = vec![
            GeoPoint::new(30.0, 104.0),
            GeoPoint::new(30.001, 104.0),
            GeoPoint::new(30.002, 104.0),
        ];
        let edges = vec![
            EdgeSpec { from: NodeId(0), to: NodeId(1), length_m: 100.0, speed_kmh: 15.0 },
            EdgeSpec { from: NodeId(1), to: NodeId(2), length_m: 100.0, speed_kmh: 15.0 },
            EdgeSpec { from: NodeId(2), to: NodeId(0), length_m: 250.0, speed_kmh: 15.0 },
        ];
        RoadNetwork::new(pts, &edges).unwrap()
    }

    #[test]
    fn csr_adjacency() {
        let g = tiny();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        let out: Vec<_> = g.out_edges(NodeId(0)).collect();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, NodeId(1));
        // 100 m at 15 km/h = 24 s.
        assert!((out[0].1 - 24.0).abs() < 1e-3);
        let inn: Vec<_> = g.in_edges(NodeId(0)).collect();
        assert_eq!(inn.len(), 1);
        assert_eq!(inn[0].0, NodeId(2));
    }

    #[test]
    fn strongly_connected_cycle() {
        assert!(tiny().is_strongly_connected());
    }

    #[test]
    fn not_strongly_connected_without_back_edge() {
        let pts = vec![GeoPoint::new(30.0, 104.0), GeoPoint::new(30.001, 104.0)];
        let edges =
            vec![EdgeSpec { from: NodeId(0), to: NodeId(1), length_m: 10.0, speed_kmh: 15.0 }];
        let g = RoadNetwork::new(pts, &edges).unwrap();
        assert!(!g.is_strongly_connected());
    }

    #[test]
    fn rejects_unknown_vertex() {
        let pts = vec![GeoPoint::new(30.0, 104.0)];
        let edges =
            vec![EdgeSpec { from: NodeId(0), to: NodeId(5), length_m: 10.0, speed_kmh: 15.0 }];
        assert!(matches!(
            RoadNetwork::new(pts, &edges),
            Err(GraphError::UnknownVertex { node: 5, .. })
        ));
    }

    #[test]
    fn rejects_bad_weight() {
        let pts = vec![GeoPoint::new(30.0, 104.0), GeoPoint::new(30.001, 104.0)];
        for (len, speed) in [(0.0, 15.0), (-3.0, 15.0), (10.0, 0.0), (f64::NAN, 15.0)] {
            let edges =
                vec![EdgeSpec { from: NodeId(0), to: NodeId(1), length_m: len, speed_kmh: speed }];
            assert!(matches!(
                RoadNetwork::new(pts.clone(), &edges),
                Err(GraphError::InvalidEdgeWeight { .. })
            ));
        }
    }

    #[test]
    fn direct_edge_cost_picks_cheapest_parallel_edge() {
        let pts = vec![GeoPoint::new(30.0, 104.0), GeoPoint::new(30.001, 104.0)];
        let edges = vec![
            EdgeSpec { from: NodeId(0), to: NodeId(1), length_m: 200.0, speed_kmh: 15.0 },
            EdgeSpec { from: NodeId(0), to: NodeId(1), length_m: 100.0, speed_kmh: 15.0 },
        ];
        let g = RoadNetwork::new(pts, &edges).unwrap();
        assert!((g.direct_edge_cost(NodeId(0), NodeId(1)).unwrap() - 24.0).abs() < 1e-3);
        assert_eq!(g.direct_edge_cost(NodeId(1), NodeId(0)), None);
    }

    #[test]
    fn edge_endpoints_by_insertion_order() {
        let g = tiny();
        assert_eq!(g.edge_endpoints(EdgeId(0)), (NodeId(0), NodeId(1)));
        assert_eq!(g.edge_endpoints(EdgeId(2)), (NodeId(2), NodeId(0)));
    }

    #[test]
    fn memory_estimate_positive() {
        assert!(tiny().memory_bytes() > 0);
    }

    #[test]
    fn costs_are_dyadic_and_never_rounded_down() {
        let g = tiny();
        for v in g.nodes() {
            for (_, c) in g.out_edges(v) {
                let steps = c as f64 / COST_QUANTUM_S;
                assert_eq!(steps, steps.round(), "cost {c} is off the dyadic grid");
            }
        }
        // Rounding is upward: a cost strictly between grid points lands on
        // the next one, and exact multiples are unchanged.
        assert_eq!(quantize_cost_s(24.0), 24.0);
        assert!(quantize_cost_s(24.001) as f64 >= 24.001);
        assert_eq!(quantize_cost_s(24.001), 24.015625);
    }

    #[test]
    fn digest_is_stable_and_cost_sensitive() {
        let g = tiny();
        assert_eq!(g.digest(), tiny().digest());
        let pts = vec![
            GeoPoint::new(30.0, 104.0),
            GeoPoint::new(30.001, 104.0),
            GeoPoint::new(30.002, 104.0),
        ];
        let edges = vec![
            EdgeSpec { from: NodeId(0), to: NodeId(1), length_m: 100.0, speed_kmh: 15.0 },
            EdgeSpec { from: NodeId(1), to: NodeId(2), length_m: 100.0, speed_kmh: 15.0 },
            EdgeSpec { from: NodeId(2), to: NodeId(0), length_m: 251.0, speed_kmh: 15.0 },
        ];
        let g2 = RoadNetwork::new(pts, &edges).unwrap();
        assert_ne!(g.digest(), g2.digest(), "cost change must change the digest");
    }
}
