//! Synthetic city generators.
//!
//! The paper evaluates on the OpenStreetMap road network of Chengdu's 2nd
//! Ring Road area. That asset is not available offline, so these generators
//! produce road networks with the same qualitative structure the mT-Share
//! algorithms exploit: planar local connectivity, heterogeneous edge costs
//! (arterials vs. side streets), and geographically meaningful travel
//! directions. All generators are deterministic given a seed and always
//! return strongly connected graphs (every street is two-way).

use crate::geo::GeoPoint;
use crate::graph::{EdgeSpec, GraphError, RoadNetwork};
use crate::ids::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`grid_city`].
#[derive(Debug, Clone)]
pub struct GridCityConfig {
    /// Number of node rows.
    pub rows: usize,
    /// Number of node columns.
    pub cols: usize,
    /// Block edge length in metres.
    pub spacing_m: f64,
    /// Every `arterial_every`-th row/column is an arterial road.
    pub arterial_every: usize,
    /// Speed on arterial segments, km/h.
    pub arterial_speed_kmh: f64,
    /// Speed on ordinary segments, km/h.
    pub street_speed_kmh: f64,
    /// Positional jitter as a fraction of spacing (0.0..0.5).
    pub jitter_frac: f64,
    /// Fraction of diagonal shortcut edges to sprinkle in (0.0..1.0),
    /// relative to the number of grid cells.
    pub diagonal_frac: f64,
    /// City centre coordinate (defaults to Chengdu).
    pub center: GeoPoint,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GridCityConfig {
    fn default() -> Self {
        Self {
            rows: 100,
            cols: 100,
            spacing_m: 120.0,
            arterial_every: 8,
            arterial_speed_kmh: 15.0,
            street_speed_kmh: 15.0,
            jitter_frac: 0.15,
            diagonal_frac: 0.03,
            center: GeoPoint::new(30.66, 104.06),
            seed: 7,
        }
    }
}

impl GridCityConfig {
    /// A small graph for unit tests (~400 nodes).
    pub fn tiny() -> Self {
        Self { rows: 20, cols: 20, ..Self::default() }
    }

    /// The default experiment graph (~10 k nodes), the scaled stand-in for
    /// the paper's 214 k-vertex Chengdu network.
    pub fn chengdu_like() -> Self {
        Self::default()
    }

    /// A larger graph for scalability experiments.
    pub fn large() -> Self {
        Self { rows: 200, cols: 200, ..Self::default() }
    }

    /// The city-scale tier (160 k nodes) for preprocessing benchmarks.
    pub fn huge() -> Self {
        Self { rows: 400, cols: 400, ..Self::default() }
    }
}

/// Generates a perturbed Manhattan grid city.
///
/// All streets are two-way so the network is strongly connected by
/// construction; forward and backward directions get independently jittered
/// lengths so the graph is genuinely directed.
pub fn grid_city(cfg: &GridCityConfig) -> Result<RoadNetwork, GraphError> {
    assert!(cfg.rows >= 2 && cfg.cols >= 2, "grid must be at least 2x2");
    assert!((0.0..0.5).contains(&cfg.jitter_frac), "jitter_frac must be in [0, 0.5)");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    let meters_per_deg_lat = 111_195.0;
    let meters_per_deg_lng = 111_195.0 * cfg.center.lat.to_radians().cos();
    let dlat = cfg.spacing_m / meters_per_deg_lat;
    let dlng = cfg.spacing_m / meters_per_deg_lng;
    let lat0 = cfg.center.lat - dlat * (cfg.rows as f64 - 1.0) / 2.0;
    let lng0 = cfg.center.lng - dlng * (cfg.cols as f64 - 1.0) / 2.0;

    let node = |r: usize, c: usize| NodeId((r * cfg.cols + c) as u32);
    let mut points = Vec::with_capacity(cfg.rows * cfg.cols);
    for r in 0..cfg.rows {
        for c in 0..cfg.cols {
            let jl: f64 = rng.gen_range(-cfg.jitter_frac..=cfg.jitter_frac);
            let jg: f64 = rng.gen_range(-cfg.jitter_frac..=cfg.jitter_frac);
            points
                .push(GeoPoint::new(lat0 + (r as f64 + jl) * dlat, lng0 + (c as f64 + jg) * dlng));
        }
    }

    let is_arterial = |idx: usize| cfg.arterial_every > 0 && idx.is_multiple_of(cfg.arterial_every);
    let mut edges = Vec::with_capacity(cfg.rows * cfg.cols * 4);
    let mut add_two_way =
        |points: &[GeoPoint], rng: &mut SmallRng, a: NodeId, b: NodeId, speed: f64| {
            let base = points[a.index()].distance_m(&points[b.index()]).max(10.0);
            // Independent detour factors per direction make the graph directed.
            let fwd = base * rng.gen_range(1.0..1.15);
            let bwd = base * rng.gen_range(1.0..1.15);
            edges.push(EdgeSpec { from: a, to: b, length_m: fwd, speed_kmh: speed });
            edges.push(EdgeSpec { from: b, to: a, length_m: bwd, speed_kmh: speed });
        };

    for r in 0..cfg.rows {
        for c in 0..cfg.cols {
            if c + 1 < cfg.cols {
                let speed =
                    if is_arterial(r) { cfg.arterial_speed_kmh } else { cfg.street_speed_kmh };
                add_two_way(&points, &mut rng, node(r, c), node(r, c + 1), speed);
            }
            if r + 1 < cfg.rows {
                let speed =
                    if is_arterial(c) { cfg.arterial_speed_kmh } else { cfg.street_speed_kmh };
                add_two_way(&points, &mut rng, node(r, c), node(r + 1, c), speed);
            }
        }
    }

    // Diagonal shortcuts inside random cells.
    let n_diag = ((cfg.rows - 1) * (cfg.cols - 1)) as f64 * cfg.diagonal_frac;
    for _ in 0..n_diag as usize {
        let r = rng.gen_range(0..cfg.rows - 1);
        let c = rng.gen_range(0..cfg.cols - 1);
        let (a, b) = if rng.gen_bool(0.5) {
            (node(r, c), node(r + 1, c + 1))
        } else {
            (node(r, c + 1), node(r + 1, c))
        };
        add_two_way(&points, &mut rng, a, b, cfg.street_speed_kmh);
    }

    RoadNetwork::new(points, &edges)
}

/// Configuration for [`ring_radial_city`].
#[derive(Debug, Clone)]
pub struct RingRadialConfig {
    /// Number of concentric rings (≥ 1).
    pub rings: usize,
    /// Number of radial spokes (≥ 3).
    pub spokes: usize,
    /// Radial distance between rings in metres.
    pub ring_spacing_m: f64,
    /// Travel speed in km/h on every segment.
    pub speed_kmh: f64,
    /// City centre coordinate.
    pub center: GeoPoint,
    /// RNG seed for length perturbation.
    pub seed: u64,
}

impl Default for RingRadialConfig {
    fn default() -> Self {
        Self {
            rings: 8,
            spokes: 16,
            ring_spacing_m: 400.0,
            speed_kmh: 15.0,
            center: GeoPoint::new(30.66, 104.06),
            seed: 11,
        }
    }
}

/// Generates a ring-and-spoke city: a centre vertex, `rings` concentric
/// rings of `spokes` vertices each, ring edges between angular neighbours
/// and radial edges between consecutive rings. Strongly connected.
pub fn ring_radial_city(cfg: &RingRadialConfig) -> Result<RoadNetwork, GraphError> {
    assert!(cfg.rings >= 1 && cfg.spokes >= 3);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let meters_per_deg_lat = 111_195.0;
    let meters_per_deg_lng = 111_195.0 * cfg.center.lat.to_radians().cos();

    let mut points = vec![cfg.center];
    for ring in 1..=cfg.rings {
        let radius = ring as f64 * cfg.ring_spacing_m;
        for s in 0..cfg.spokes {
            let theta = std::f64::consts::TAU * s as f64 / cfg.spokes as f64;
            points.push(GeoPoint::new(
                cfg.center.lat + radius * theta.sin() / meters_per_deg_lat,
                cfg.center.lng + radius * theta.cos() / meters_per_deg_lng,
            ));
        }
    }
    let node = |ring: usize, s: usize| {
        if ring == 0 {
            NodeId(0)
        } else {
            NodeId((1 + (ring - 1) * cfg.spokes + s % cfg.spokes) as u32)
        }
    };

    let mut edges = Vec::new();
    let mut add_two_way = |points: &[GeoPoint], rng: &mut SmallRng, a: NodeId, b: NodeId| {
        let base = points[a.index()].distance_m(&points[b.index()]).max(10.0);
        edges.push(EdgeSpec {
            from: a,
            to: b,
            length_m: base * rng.gen_range(1.0..1.1),
            speed_kmh: cfg.speed_kmh,
        });
        edges.push(EdgeSpec {
            from: b,
            to: a,
            length_m: base * rng.gen_range(1.0..1.1),
            speed_kmh: cfg.speed_kmh,
        });
    };
    for s in 0..cfg.spokes {
        add_two_way(&points, &mut rng, node(0, 0), node(1, s));
        for ring in 1..cfg.rings {
            add_two_way(&points, &mut rng, node(ring, s), node(ring + 1, s));
        }
        for ring in 1..=cfg.rings {
            add_two_way(&points, &mut rng, node(ring, s), node(ring, s + 1));
        }
    }
    RoadNetwork::new(points, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_city_is_strongly_connected() {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        assert_eq!(g.node_count(), 400);
        assert!(g.edge_count() > 1500);
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn grid_city_is_deterministic() {
        let a = grid_city(&GridCityConfig::tiny()).unwrap();
        let b = grid_city(&GridCityConfig::tiny()).unwrap();
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for n in a.nodes().take(50) {
            assert_eq!(a.point(n), b.point(n));
        }
    }

    #[test]
    fn different_seed_different_city() {
        let a = grid_city(&GridCityConfig::tiny()).unwrap();
        let b = grid_city(&GridCityConfig { seed: 99, ..GridCityConfig::tiny() }).unwrap();
        let moved = a.nodes().take(100).filter(|n| a.point(*n) != b.point(*n)).count();
        assert!(moved > 50);
    }

    #[test]
    fn arterials_are_faster() {
        let cfg = GridCityConfig { arterial_speed_kmh: 40.0, ..GridCityConfig::tiny() };
        let g = grid_city(&cfg).unwrap();
        // At least one edge should be traversed at 40 km/h: cost = len / (40/3.6).
        let mut has_fast = false;
        for n in g.nodes() {
            for (t, cost, len, _) in g.out_edges_full(n) {
                let speed_kmh = len as f64 / cost as f64 * 3.6;
                if speed_kmh > 39.0 {
                    has_fast = true;
                }
                assert!(t != n, "no self loops");
            }
        }
        assert!(has_fast);
    }

    #[test]
    fn ring_radial_is_strongly_connected() {
        let g = ring_radial_city(&RingRadialConfig::default()).unwrap();
        assert_eq!(g.node_count(), 1 + 8 * 16);
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn grid_city_spans_expected_extent() {
        let cfg = GridCityConfig::tiny();
        let g = grid_city(&cfg).unwrap();
        let want = cfg.spacing_m * (cfg.cols - 1) as f64;
        let got = g.bbox().width_m();
        assert!((got - want).abs() / want < 0.25, "want≈{want} got={got}");
    }
}
