//! Rectangular linear assignment (LAP) solver: Kuhn–Munkres with the
//! Jonker–Volgenant shortest-augmenting-path search, zero dependencies.
//!
//! Given an `n_rows × n_cols` cost matrix, finds a matching of rows to
//! columns that **first** maximises the number of assigned rows over the
//! finite-cost entries and **then** minimises the total cost of the
//! assigned pairs. Entries set to [`f64::INFINITY`] are *forbidden*: they
//! are never assigned, no matter how that limits cardinality. Rows with
//! no finite entry (or crowded out by the matrix shape) come back
//! unassigned rather than failing the whole solve — exactly what a
//! rolling-horizon dispatcher needs, where an unmatched request simply
//! rolls into the next window.
//!
//! The implementation is the classic O(rows · cols²) successive
//! shortest-augmenting-path scheme with dual potentials: each row is
//! inserted by a Dijkstra-like scan over reduced costs, potentials are
//! updated so reduced costs stay non-negative, and the matching is
//! augmented along the predecessor chain. Two transformations make the
//! search exact on the relaxed problem:
//!
//! - Negative finite costs are shifted out before the search (a uniform
//!   shift moves every equal-cardinality matching by the same amount, so
//!   the argmin is unchanged); totals are reported from the *original*
//!   entries.
//! - "Leave this row unassigned" is modelled explicitly: the matrix is
//!   padded with one dummy column per row, usable only by that row, at a
//!   penalty `L` larger than any achievable real total. Every row is
//!   then assignable, which is the regime where shortest-augmenting-path
//!   insertion is provably optimal — a plain insertion loop that merely
//!   *skips* stuck rows keeps whatever early rows it happened to match
//!   and is not cost-optimal about **which** rows miss out when the
//!   matrix is row-heavy or riddled with forbidden entries.
//!
//! # Determinism
//!
//! The solve is a pure function of the matrix: no randomisation, no
//! iteration over hash containers. The tie-break rule is pinned and
//! relied on by the simulator's trace-equivalence guarantees:
//!
//! - rows are inserted in increasing row index,
//! - the scan visits columns in increasing column index and accepts a
//!   new minimum only on a strict `<`, so among equal-cost alternatives
//!   the lowest column index wins.
//!
//! The *total cost* is invariant under row/column permutation of the
//! input (up to the exact f64 summation order); the assignment itself is
//! only pinned relative to a fixed input layout.

/// Sentinel for "this row/column is unmatched" in the internal tables.
const UNASSIGNED: usize = usize::MAX;

/// Cheap operation counters from one solve, for profiling surfaces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LapStats {
    /// Successful augmentations — equals the number of assigned rows.
    pub augmentations: u64,
    /// Inner-loop edge relaxations performed by the Dijkstra scans.
    pub relaxations: u64,
    /// Rows left unassigned (no augmenting path over finite entries).
    pub skipped_rows: u64,
}

/// Result of [`solve`]: the matching, its cost and the solver counters.
#[derive(Debug, Clone, PartialEq)]
pub struct LapSolution {
    /// `row_to_col[i]` is the column assigned to row `i`, if any.
    pub row_to_col: Vec<Option<usize>>,
    /// Sum of the original matrix entries over the assigned pairs.
    pub total_cost: f64,
    /// Number of assigned rows (the matching cardinality).
    pub assigned: usize,
    /// Operation counters for profiling.
    pub stats: LapStats,
}

impl LapSolution {
    /// Inverse view: for each column, the row assigned to it (if any).
    pub fn col_to_row(&self, n_cols: usize) -> Vec<Option<usize>> {
        let mut out = vec![None; n_cols];
        for (i, j) in self.row_to_col.iter().enumerate() {
            if let Some(j) = j {
                out[*j] = Some(i);
            }
        }
        out
    }
}

/// Solves the rectangular assignment problem over `cost`, a row-major
/// `n_rows × n_cols` matrix. `f64::INFINITY` entries are forbidden;
/// every finite entry must be a non-NaN real.
///
/// Returns the maximum-cardinality, minimum-total-cost matching under
/// the pinned tie-break rule (see the crate docs).
///
/// # Panics
///
/// Panics if `cost.len() != n_rows * n_cols` or any entry is NaN.
pub fn solve(n_rows: usize, n_cols: usize, cost: &[f64]) -> LapSolution {
    assert_eq!(cost.len(), n_rows * n_cols, "cost matrix must be row-major {n_rows}x{n_cols}");
    assert!(!cost.iter().any(|c| c.is_nan()), "cost matrix entries must not be NaN");

    let mut stats = LapStats::default();
    if n_rows == 0 || n_cols == 0 {
        return LapSolution { row_to_col: vec![None; n_rows], total_cost: 0.0, assigned: 0, stats };
    }

    // Uniform shift so every finite reduced cost starts non-negative.
    // All equal-cardinality matchings move by the same amount, so the
    // optimal assignment is unchanged; totals use the original entries.
    let shift = cost.iter().copied().filter(|c| c.is_finite()).fold(0.0_f64, f64::min);
    // Dummy-column penalty: strictly more than any achievable real total
    // after the shift, so the solver drops a real assignment only when
    // it is genuinely infeasible (cardinality first, cost second).
    let mut penalty = 1.0_f64;
    for i in 0..n_rows {
        let row_max = cost[i * n_cols..(i + 1) * n_cols]
            .iter()
            .copied()
            .filter(|c| c.is_finite())
            .fold(0.0_f64, f64::max);
        penalty += row_max - shift;
    }
    // Padded width: real columns, then one private dummy column per row.
    let w = n_cols + n_rows;
    let at = |i: usize, j: usize| -> f64 {
        if j < n_cols {
            let c = cost[i * n_cols + j];
            if c.is_finite() {
                c - shift
            } else {
                f64::INFINITY
            }
        } else if j - n_cols == i {
            penalty
        } else {
            f64::INFINITY
        }
    };

    // Dual potentials. Index `w` is the virtual start column that
    // anchors the row currently being inserted.
    let mut u = vec![0.0_f64; n_rows];
    let mut v = vec![0.0_f64; w + 1];
    let mut col_row = vec![UNASSIGNED; w + 1];

    let mut minv = vec![0.0_f64; w];
    let mut way = vec![w; w];
    let mut used = vec![false; w + 1];

    for i in 0..n_rows {
        col_row[w] = i;
        minv.iter_mut().for_each(|m| *m = f64::INFINITY);
        way.iter_mut().for_each(|x| *x = w);
        used.iter_mut().for_each(|s| *s = false);

        let mut j0 = w;
        let free_col = loop {
            used[j0] = true;
            let i0 = col_row[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = w;
            for j in 0..w {
                if used[j] {
                    continue;
                }
                let c = at(i0, j);
                if c.is_finite() {
                    stats.relaxations += 1;
                    let cur = c - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            if !delta.is_finite() {
                // Unreachable thanks to the dummy columns (every row can
                // always fall back to its own), kept as a hard stop so a
                // future refactor cannot silently loop forever.
                break UNASSIGNED;
            }
            for j in 0..=w {
                if used[j] {
                    u[col_row[j]] += delta;
                    v[j] -= delta;
                } else if minv[j].is_finite() {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if col_row[j0] == UNASSIGNED {
                break j0;
            }
        };

        if free_col == UNASSIGNED {
            stats.skipped_rows += 1;
            continue;
        }
        let mut j = free_col;
        loop {
            let jp = way[j];
            col_row[j] = col_row[jp];
            j = jp;
            if j == w {
                break;
            }
        }
    }

    let mut row_to_col = vec![None; n_rows];
    let mut total = 0.0_f64;
    let mut assigned = 0usize;
    for (j, &r) in col_row.iter().take(n_cols).enumerate() {
        if r != UNASSIGNED {
            row_to_col[r] = Some(j);
            assigned += 1;
        }
    }
    for (i, j) in row_to_col.iter().enumerate() {
        if let Some(j) = j {
            total += cost[i * n_cols + j];
        }
    }
    stats.augmentations = assigned as u64;
    stats.skipped_rows += (n_rows - assigned) as u64;
    LapSolution { row_to_col, total_cost: total, assigned, stats }
}

/// Reference solver: enumerates every injective row→column map over the
/// finite entries and returns the (max-cardinality, then min-cost) best.
/// Exponential — meant for cross-checking [`solve`] on small instances
/// in tests, not for production use.
pub fn solve_brute_force(n_rows: usize, n_cols: usize, cost: &[f64]) -> (usize, f64) {
    assert_eq!(cost.len(), n_rows * n_cols);
    let mut best_card = 0usize;
    let mut best_cost = 0.0_f64;
    let mut taken = vec![false; n_cols];

    #[allow(clippy::too_many_arguments)]
    fn rec(
        i: usize,
        n_rows: usize,
        n_cols: usize,
        cost: &[f64],
        taken: &mut [bool],
        card: usize,
        acc: f64,
        best_card: &mut usize,
        best_cost: &mut f64,
    ) {
        if i == n_rows {
            if card > *best_card || (card == *best_card && acc < *best_cost) {
                *best_card = card;
                *best_cost = acc;
            }
            return;
        }
        // Row i left unassigned.
        rec(i + 1, n_rows, n_cols, cost, taken, card, acc, best_card, best_cost);
        for j in 0..n_cols {
            let c = cost[i * n_cols + j];
            if !taken[j] && c.is_finite() {
                taken[j] = true;
                rec(i + 1, n_rows, n_cols, cost, taken, card + 1, acc + c, best_card, best_cost);
                taken[j] = false;
            }
        }
    }
    rec(0, n_rows, n_cols, cost, &mut taken, 0, 0.0, &mut best_card, &mut best_cost);
    (best_card, best_cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix() {
        let s = solve(0, 0, &[]);
        assert_eq!(s.assigned, 0);
        assert_eq!(s.total_cost, 0.0);
        let s = solve(2, 0, &[]);
        assert_eq!(s.row_to_col, vec![None, None]);
    }

    #[test]
    fn identity_diagonal() {
        // Strong diagonal preference.
        let inf = f64::INFINITY;
        let c = [1.0, inf, inf, inf, 2.0, inf, inf, inf, 3.0];
        let s = solve(3, 3, &c);
        assert_eq!(s.row_to_col, vec![Some(0), Some(1), Some(2)]);
        assert_eq!(s.total_cost, 6.0);
        assert_eq!(s.assigned, 3);
    }

    #[test]
    fn classic_square() {
        // Known optimum 5 + 4 + 2 = 11 for this 3x3.
        let c = [8.0, 5.0, 9.0, 4.0, 3.0, 7.0, 6.0, 8.0, 2.0];
        let s = solve(3, 3, &c);
        assert_eq!(s.assigned, 3);
        assert_eq!(s.total_cost, 11.0);
        assert_eq!(s.row_to_col, vec![Some(1), Some(0), Some(2)]);
    }

    #[test]
    fn rectangular_more_rows_than_cols() {
        let c = [1.0, 10.0, 10.0, 1.0, 5.0, 5.0];
        let s = solve(3, 2, &c);
        assert_eq!(s.assigned, 2);
        assert_eq!(s.total_cost, 2.0);
        assert_eq!(s.row_to_col, vec![Some(0), Some(1), None]);
        assert_eq!(s.stats.skipped_rows, 1);
    }

    #[test]
    fn infeasible_row_is_skipped_not_fatal() {
        let inf = f64::INFINITY;
        let c = [inf, inf, 3.0, 4.0];
        let s = solve(2, 2, &c);
        assert_eq!(s.row_to_col, vec![None, Some(0)]);
        assert_eq!(s.total_cost, 3.0);
        assert_eq!(s.stats.skipped_rows, 1);
    }

    #[test]
    fn cardinality_beats_cost() {
        // Assigning both rows costs 100+100; assigning only row 0 would
        // cost 1. Max cardinality must win.
        let inf = f64::INFINITY;
        let c = [1.0, 100.0, inf, 100.0];
        let s = solve(2, 2, &c);
        assert_eq!(s.assigned, 2);
        assert_eq!(s.row_to_col, vec![Some(0), Some(1)]);
        assert_eq!(s.total_cost, 101.0);
    }

    #[test]
    fn negative_costs_are_exact() {
        let c = [-5.0, 0.0, 0.0, -5.0];
        let s = solve(2, 2, &c);
        assert_eq!(s.total_cost, -10.0);
        assert_eq!(s.row_to_col, vec![Some(0), Some(1)]);
    }

    #[test]
    fn tie_break_prefers_lower_column() {
        // Both columns cost the same for both rows: the pinned rule must
        // give row 0 the lower column index.
        let c = [7.0, 7.0, 7.0, 7.0];
        let s = solve(2, 2, &c);
        assert_eq!(s.row_to_col, vec![Some(0), Some(1)]);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_is_rejected() {
        solve(1, 1, &[f64::NAN]);
    }
}
