//! Property suite for the LAP solver: on random matrices up to 7×7 —
//! square, rectangular, with and without forbidden (∞) entries — the
//! augmenting-path solve must reproduce the brute-force optimum exactly
//! (max cardinality first, then min total cost), its total cost must be
//! invariant under row/column permutation, and repeat solves of the same
//! matrix must return the identical assignment (the pinned tie-break).

use mtshare_lap::{solve, solve_brute_force};
use proptest::prelude::*;

/// Draws a row-major matrix: entries are small integer-valued floats so
/// cost comparisons against brute force are exact, and `inf_pct` percent
/// of entries are forbidden.
fn matrix(rows: usize, cols: usize, cells: &[u32], inf_pct: u32) -> Vec<f64> {
    (0..rows * cols)
        .map(|k| {
            let cell = cells[k % cells.len()];
            if cell % 100 < inf_pct {
                f64::INFINITY
            } else {
                f64::from(cell / 100 % 64)
            }
        })
        .collect()
}

/// Applies a permutation to the rows and columns of a matrix. The
/// permutations are derived from seeds by repeated swaps, which reaches
/// every permutation and is deterministic per seed.
fn permuted(
    rows: usize,
    cols: usize,
    m: &[f64],
    row_seed: u64,
    col_seed: u64,
) -> (Vec<f64>, Vec<usize>, Vec<usize>) {
    let perm = |n: usize, mut seed: u64| -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (seed >> 33) as usize % (i + 1);
            p.swap(i, j);
        }
        p
    };
    let rp = perm(rows, row_seed);
    let cp = perm(cols, col_seed);
    let mut out = vec![0.0; rows * cols];
    for i in 0..rows {
        for j in 0..cols {
            out[i * cols + j] = m[rp[i] * cols + cp[j]];
        }
    }
    (out, rp, cp)
}

/// The assignment must be a valid matching: assigned columns in range
/// and pairwise distinct, and never on a forbidden entry.
fn assert_valid_matching(rows: usize, cols: usize, m: &[f64], sol: &mtshare_lap::LapSolution) {
    assert_eq!(sol.row_to_col.len(), rows);
    let mut seen = vec![false; cols];
    let mut total = 0.0;
    let mut assigned = 0;
    for (i, j) in sol.row_to_col.iter().enumerate() {
        if let Some(j) = *j {
            assert!(j < cols, "column {j} out of range");
            assert!(!seen[j], "column {j} assigned twice");
            seen[j] = true;
            let c = m[i * cols + j];
            assert!(c.is_finite(), "row {i} assigned to forbidden column {j}");
            total += c;
            assigned += 1;
        }
    }
    assert_eq!(assigned, sol.assigned, "assigned count disagrees with matching");
    assert_eq!(total, sol.total_cost, "total_cost disagrees with the matching entries");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Square and rectangular matrices with every entry finite: the
    /// solver must reach full-rank cardinality and the brute-force cost.
    #[test]
    fn optimal_on_fully_finite_matrices(
        rows in 1usize..=7,
        cols in 1usize..=7,
        cells in proptest::collection::vec(0u32..100_000, 49..50),
    ) {
        let m = matrix(rows, cols, &cells, 0);
        let sol = solve(rows, cols, &m);
        assert_valid_matching(rows, cols, &m, &sol);
        let (bf_card, bf_cost) = solve_brute_force(rows, cols, &m);
        prop_assert_eq!(sol.assigned, bf_card, "cardinality vs brute force");
        prop_assert_eq!(sol.assigned, rows.min(cols), "finite matrix must assign min(r,c)");
        prop_assert_eq!(sol.total_cost, bf_cost,
            "cost {} vs brute force {} on {}x{} {:?}", sol.total_cost, bf_cost, rows, cols, m);
    }

    /// With forbidden entries mixed in (up to ~60%), the solver must
    /// still find the max-cardinality matching and its minimum cost —
    /// including matrices where some rows are fully forbidden.
    #[test]
    fn optimal_with_forbidden_entries(
        rows in 1usize..=6,
        cols in 1usize..=6,
        inf_pct in 0u32..=60,
        cells in proptest::collection::vec(0u32..100_000, 36..37),
    ) {
        let m = matrix(rows, cols, &cells, inf_pct);
        let sol = solve(rows, cols, &m);
        assert_valid_matching(rows, cols, &m, &sol);
        let (bf_card, bf_cost) = solve_brute_force(rows, cols, &m);
        prop_assert_eq!(sol.assigned, bf_card,
            "cardinality {} vs brute force {} on {:?}", sol.assigned, bf_card, m);
        prop_assert_eq!(sol.total_cost, bf_cost,
            "cost {} vs brute force {} on {:?}", sol.total_cost, bf_cost, m);
    }

    /// Permuting rows and columns permutes the assignment but cannot
    /// change the optimal total cost or cardinality (integer-valued
    /// entries make the f64 totals exactly comparable).
    #[test]
    fn total_cost_invariant_under_permutation(
        rows in 1usize..=6,
        cols in 1usize..=6,
        inf_pct in 0u32..=40,
        row_seed in 0u64..1_000_000,
        col_seed in 0u64..1_000_000,
        cells in proptest::collection::vec(0u32..100_000, 36..37),
    ) {
        let m = matrix(rows, cols, &cells, inf_pct);
        let base = solve(rows, cols, &m);
        let (pm, _, _) = permuted(rows, cols, &m, row_seed, col_seed);
        let perm = solve(rows, cols, &pm);
        prop_assert_eq!(base.assigned, perm.assigned, "cardinality must survive permutation");
        prop_assert_eq!(base.total_cost, perm.total_cost,
            "cost must survive permutation: {} vs {} on {:?} / {:?}",
            base.total_cost, perm.total_cost, m, pm);
    }

    /// The pinned tie-break: solving the same matrix twice returns the
    /// byte-identical assignment, even when many optima exist (coarse
    /// cost quantisation forces frequent ties).
    #[test]
    fn assignment_is_deterministic(
        rows in 1usize..=7,
        cols in 1usize..=7,
        inf_pct in 0u32..=30,
        cells in proptest::collection::vec(0u32..800, 49..50),
    ) {
        let m = matrix(rows, cols, &cells, inf_pct);
        let a = solve(rows, cols, &m);
        let b = solve(rows, cols, &m);
        prop_assert_eq!(&a.row_to_col, &b.row_to_col, "assignment must be reproducible");
        prop_assert_eq!(a.total_cost, b.total_cost);
        prop_assert_eq!(a.stats, b.stats, "solver work must be reproducible");
    }
}
