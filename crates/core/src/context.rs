//! Precomputed mobility context shared by mT-Share instances.
//!
//! Bipartite partitioning, the landmark graph, and transition statistics
//! depend only on the road network and the historical trips, not on the
//! live scenario — the paper recomputes them "periodically ... e.g. one
//! year" (Sec. IV-B1). Building them once and sharing via `Arc` lets the
//! experiment harness sweep fleet sizes and thresholds cheaply.

use mtshare_mobility::{
    bipartite_partition, grid_partition, BipartiteConfig, LandmarkGraph, MapPartitioning,
    TransitionModel, Trip,
};
use mtshare_road::RoadNetwork;
use std::sync::Arc;

/// Which map-partitioning strategy to precompute (Table V ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// The paper's bipartite (geography + transition patterns) partitioning.
    Bipartite,
    /// The grid partitioning of prior work.
    Grid,
}

/// Immutable per-city context: partitions, landmarks, transition model and
/// partition-level transition aggregates.
#[derive(Debug)]
pub struct MobilityContext {
    /// The map partitioning `P`.
    pub partitioning: MapPartitioning,
    /// The landmark graph `G_ℓ` with exact cost tables.
    pub landmarks: LandmarkGraph,
    /// Per-vertex transition model over partition labels.
    pub transitions: TransitionModel,
    /// `partition_prob[p * κ + q]` = Σ_{v ∈ p} w_v · P(dest ∈ q | origin = v),
    /// with `w_v` the observed trip count at `v` — the partition-level
    /// aggregate Alg. 4 step ① sums, demand-weighted so it estimates the
    /// *expected number* of suitable requests originating in `p`.
    partition_prob: Vec<f32>,
    strategy: PartitionStrategy,
}

impl MobilityContext {
    /// Builds the full context for `graph` from historical `trips`.
    pub fn build(
        graph: &RoadNetwork,
        trips: &[Trip],
        kappa: usize,
        kt: usize,
        seed: u64,
        strategy: PartitionStrategy,
    ) -> Arc<Self> {
        let partitioning = match strategy {
            PartitionStrategy::Bipartite => bipartite_partition(
                graph,
                trips,
                &BipartiteConfig { kappa, kt, seed, ..Default::default() },
            ),
            PartitionStrategy::Grid => grid_partition(graph, kappa),
        };
        let landmarks = LandmarkGraph::build(graph, &partitioning);
        let labels = partitioning.labels_u32();
        let transitions =
            TransitionModel::from_trips(graph.node_count(), trips, &labels, partitioning.len());
        let k = partitioning.len();
        let mut partition_prob = vec![0.0f32; k * k];
        for v in graph.nodes() {
            let p = partitioning.partition_of(v).index();
            let w = transitions.observed(v) as f32;
            if w == 0.0 {
                continue; // unobserved vertices carry no expected demand
            }
            let row = transitions.row(v);
            for (q, &prob) in row.iter().enumerate() {
                partition_prob[p * k + q] += w * prob;
            }
        }
        Arc::new(Self { partitioning, landmarks, transitions, partition_prob, strategy })
    }

    /// Number of partitions κ.
    #[inline]
    pub fn kappa(&self) -> usize {
        self.partitioning.len()
    }

    /// The strategy this context was built with.
    #[inline]
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// Σ over vertices of partition `p` of their transition probability
    /// into partition `q`.
    #[inline]
    pub fn partition_prob(&self, p: usize, q: usize) -> f32 {
        self.partition_prob[p * self.kappa() + q]
    }

    /// Approximate resident memory of the context's index structures.
    pub fn memory_bytes(&self) -> usize {
        self.partitioning.memory_bytes()
            + self.landmarks.memory_bytes()
            + self.transitions.memory_bytes()
            + self.partition_prob.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtshare_road::{grid_city, GridCityConfig, NodeId};
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn trips(g: &RoadNetwork, n: usize) -> Vec<Trip> {
        let mut rng = SmallRng::seed_from_u64(2);
        (0..n)
            .map(|_| Trip {
                origin: NodeId(rng.gen_range(0..g.node_count() as u32)),
                destination: NodeId(rng.gen_range(0..g.node_count() as u32)),
            })
            .collect()
    }

    #[test]
    fn builds_both_strategies() {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        let t = trips(&g, 1000);
        for strategy in [PartitionStrategy::Bipartite, PartitionStrategy::Grid] {
            let ctx = MobilityContext::build(&g, &t, 12, 4, 5, strategy);
            assert!(ctx.kappa() >= 6);
            assert_eq!(ctx.strategy(), strategy);
            assert!(ctx.memory_bytes() > 0);
        }
    }

    #[test]
    fn partition_prob_sums_to_observed_trip_counts() {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        let t = trips(&g, 500);
        let ctx = MobilityContext::build(&g, &t, 9, 3, 5, PartitionStrategy::Grid);
        let k = ctx.kappa();
        let grand: f32 = ctx
            .partitioning
            .partitions()
            .map(|p| (0..k).map(|q| ctx.partition_prob(p.index(), q)).sum::<f32>())
            .sum();
        // Demand-weighted rows: the grand total equals the trip count.
        assert!((grand - t.len() as f32).abs() < 1.0, "grand total {grand}");
    }
}
