//! Configuration of the mT-Share scheme (Table II defaults).

use mtshare_model::SchedulerKind;

/// Tunables of mT-Share. Defaults follow Table II of the paper.
#[derive(Debug, Clone)]
pub struct MtShareConfig {
    /// Travel-direction threshold λ = cos θ (default 0.707, θ = 45°).
    pub lambda: f64,
    /// Partition-filter travel-cost slack ε (default 1.0).
    pub epsilon: f64,
    /// Constant taxi speed in km/h (default 15, Sec. V-A4).
    pub taxi_speed_kmh: f64,
    /// Cap on the candidate searching range γ in metres (paper default
    /// 2.5 km, equivalent to Δt = 10 min at 15 km/h).
    pub max_search_range_m: f64,
    /// Partition-index horizon `T_mp`: taxis are indexed in every partition
    /// they will reach within this many seconds (paper example: 1 h).
    pub tmp_horizon_s: f64,
    /// Enable probabilistic routing (mT-Share_pro).
    pub probabilistic: bool,
    /// A taxi plans probabilistic routes only when at least this fraction
    /// of its seats is idle (paper: half the capacity).
    pub prob_idle_fraction: f64,
    /// Retry attempts for a valid probabilistic leg (paper: 5).
    pub prob_attempts: usize,
    /// Cap on enumerated landmark paths per leg in Alg. 4 step ②.
    pub prob_max_paths: usize,
    /// Hop cap for the landmark-path enumeration (keeps the DFS bounded on
    /// adversarial partition shapes).
    pub prob_max_hops: usize,
    /// Per-vertex bias weight (seconds) of probabilistic routing: entering
    /// a zero-demand vertex costs this much extra in the weighted search,
    /// a demand-rich vertex close to nothing. Calibrated so biased routes
    /// detour 10-20% — strong enough to hug demand corridors, weak enough
    /// to stay within the deadline budget.
    pub prob_bias_weight_s: f64,
    /// Worker threads used to score a speculative dispatch batch
    /// (candidate generation + Algorithm 1 per request fan out across this
    /// many threads). `1` scores inline; results are identical either way.
    pub parallelism: usize,
    /// Rolling-horizon batch assignment (mT-Share_batch): requests are
    /// collected per window and matched jointly through a Kuhn–Munkres
    /// assignment solve instead of greedy per-arrival insertion.
    pub batch: bool,
    /// Which schedule-scoring engine serves insertion queries
    /// (`--scheduler dp|dtree`); results are bit-identical either way.
    pub scheduler: SchedulerKind,
}

impl Default for MtShareConfig {
    fn default() -> Self {
        Self {
            lambda: std::f64::consts::FRAC_1_SQRT_2,
            epsilon: 1.0,
            taxi_speed_kmh: 15.0,
            max_search_range_m: 2500.0,
            tmp_horizon_s: 3600.0,
            probabilistic: false,
            prob_idle_fraction: 0.5,
            prob_attempts: 5,
            prob_max_paths: 64,
            prob_max_hops: 12,
            prob_bias_weight_s: 6.0,
            parallelism: 1,
            batch: false,
            scheduler: SchedulerKind::default(),
        }
    }
}

impl MtShareConfig {
    /// Constant taxi speed in metres per second.
    #[inline]
    pub fn speed_mps(&self) -> f64 {
        self.taxi_speed_kmh / 3.6
    }

    /// The searching range γ for a waiting budget `Δt` (Eq. 2):
    /// `γ = speed × Δt`, capped at [`MtShareConfig::max_search_range_m`].
    #[inline]
    pub fn search_range_m(&self, wait_budget_s: f64) -> f64 {
        (self.speed_mps() * wait_budget_s.max(0.0)).min(self.max_search_range_m)
    }

    /// The mT-Share_pro variant of this configuration.
    pub fn with_probabilistic(mut self) -> Self {
        self.probabilistic = true;
        self
    }

    /// This configuration with `n` speculative-scoring worker threads
    /// (clamped to at least 1).
    pub fn with_parallelism(mut self, n: usize) -> Self {
        self.parallelism = n.max(1);
        self
    }

    /// The rolling-horizon batch-assignment variant (mT-Share_batch).
    pub fn with_batch(mut self) -> Self {
        self.batch = true;
        self
    }

    /// This configuration with the given schedule-scoring engine.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_ii() {
        let c = MtShareConfig::default();
        assert!((c.lambda - 0.707).abs() < 1e-3);
        assert_eq!(c.epsilon, 1.0);
        assert_eq!(c.taxi_speed_kmh, 15.0);
        assert_eq!(c.max_search_range_m, 2500.0);
        assert!(!c.probabilistic);
        assert_eq!(c.parallelism, 1);
        assert_eq!(c.clone().with_parallelism(0).parallelism, 1);
        assert_eq!(c.clone().with_parallelism(8).parallelism, 8);
        assert!(!c.batch);
        assert!(c.clone().with_batch().batch);
        assert_eq!(c.scheduler, SchedulerKind::Dp);
        assert_eq!(c.clone().with_scheduler(SchedulerKind::Dtree).scheduler, SchedulerKind::Dtree);
        assert!(c.with_probabilistic().probabilistic);
    }

    #[test]
    fn search_range_caps_at_gamma() {
        let c = MtShareConfig::default();
        // 10 min budget at 15 km/h = 2.5 km (the paper's default γ).
        assert!((c.search_range_m(600.0) - 2500.0).abs() < 1.0);
        // Larger budgets stay capped.
        assert_eq!(c.search_range_m(6000.0), 2500.0);
        // Negative budget clamps to zero.
        assert_eq!(c.search_range_m(-5.0), 0.0);
    }

    #[test]
    fn speed_conversion() {
        let c = MtShareConfig::default();
        assert!((c.speed_mps() - 4.1667).abs() < 1e-3);
    }
}
