//! Taxi scheduling (Algorithm 1).
//!
//! For every candidate taxi, enumerate all schedule instances obtained by
//! inserting the request's pick-up and drop-off into the existing schedule,
//! score feasible instances by detour cost (Eq. 4) against the O(1) cost
//! oracle, then materialize the best instance into actual routed legs
//! (basic or probabilistic mode) and re-verify before committing.

use crate::config::MtShareConfig;
use crate::context::MobilityContext;
use crate::routing::SegmentRouter;
use mtshare_model::{
    evaluate_schedule, Assignment, EvalContext, RideRequest, Schedule, ScheduleEngine, Taxi,
    TaxiId, Time, World,
};
use mtshare_road::NodeId;
use mtshare_routing::Path;

/// One scored insertion slot: where the request's pick-up (`i`) and
/// drop-off (`j`) land in the candidate's schedule, and at what detour.
/// The full [`Schedule`] is only materialized for the ranked winners —
/// slots live in a scratch buffer reused across `schedule_best` calls.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ScoredSlot {
    taxi: TaxiId,
    i: usize,
    j: usize,
    detour_s: f64,
}

/// One feasible schedule instance selected for materialization.
#[derive(Debug, Clone)]
struct Instance {
    taxi: TaxiId,
    schedule: Schedule,
}

/// How many ranked instances to try materializing before giving up (only
/// probabilistic routing can invalidate an instance at materialization).
const MATERIALIZE_TRIES: usize = 8;

/// Whether `taxi` plans probabilistic routes under `cfg` ("a taxi with half
/// of the capacity in idle will enable the probabilistic routing",
/// Sec. V-A1).
pub fn probabilistic_enabled(taxi: &Taxi, cfg: &MtShareConfig, world: &World<'_>) -> bool {
    cfg.probabilistic
        && taxi.idle_seats(world.requests) as f64 >= cfg.prob_idle_fraction * taxi.capacity as f64
}

/// Runs Algorithm 1: finds the candidate taxi and schedule instance with
/// the minimum detour cost that can serve `req`, returning the committed
/// assignment (or `None`), the number of candidates examined, and the
/// number of deadline-feasible schedule instances found.
#[allow(clippy::too_many_arguments)] // dispatch context threaded from the scheme
pub fn schedule_best(
    req: &RideRequest,
    candidates: &[TaxiId],
    now: Time,
    world: &World<'_>,
    ctx: &MobilityContext,
    cfg: &MtShareConfig,
    engine: &dyn ScheduleEngine,
    router: &mut SegmentRouter,
) -> (Option<Assignment>, usize, usize) {
    // Under the CH backend, batch every candidate's position→pickup cost
    // through the bucket many-to-one kernel so the materialization
    // probes below hit a primed memo (one downward sweep instead of one
    // search per candidate). The installed values are bit-identical to
    // per-pair queries, and the call is a no-op under the bidirectional
    // backend, so dispatch decisions cannot depend on the router.
    if !candidates.is_empty() {
        let positions: Vec<NodeId> =
            candidates.iter().map(|&t| world.taxi(t).position_at(now)).collect();
        world.cache.prime_many_to_one(&positions, req.origin);
    }

    // Per candidate, the optimal schedule instance via the configured
    // engine — the O(m²) slack DP or the incremental dynamic tree, with
    // bit-identical results either way (identical to brute-force
    // enumeration; property-tested). Slots go into a scratch buffer
    // reused across calls; the full `Schedule` is allocated only for the
    // few ranked winners materialized below.
    let mut slots = router.take_slots();
    {
        let _span = router.obs().stage(engine.stage());
        for &taxi_id in candidates {
            let taxi = world.taxi(taxi_id);
            if let Some(ins) =
                engine.best_insertion(taxi, req, now, world, &mut |a, b| world.oracle.cost(a, b))
            {
                slots.push(ScoredSlot { taxi: taxi_id, i: ins.i, j: ins.j, detour_s: ins.delta_s });
            }
        }
        router.obs().add_insertions(candidates.len() as u64, slots.len() as u64);
    }
    let feasible = slots.len();

    // Rank by (detour, taxi id) — the same total order as
    // `mtshare_model::assignment_cmp`. The explicit taxi-id tie-break
    // (rather than relying on stable sort over the sorted candidate list)
    // is what makes the winner reproducible for the speculative batch
    // path, whatever order candidates were scored in.
    slots.sort_by(|a, b| a.detour_s.total_cmp(&b.detour_s).then(a.taxi.cmp(&b.taxi)));

    // Materialization attempts within one dispatch share a basic-leg memo:
    // consecutive tries often rank the same taxi (re-routing its unchanged
    // schedule prefix) and always share the pickup→drop-off leg, and basic
    // legs are pure functions of (from, to).
    router.begin_leg_memo();
    let mut assignment = None;
    for slot in slots.iter().take(MATERIALIZE_TRIES) {
        let inst = Instance {
            taxi: slot.taxi,
            schedule: world.taxi(slot.taxi).schedule.with_insertion(req, slot.i, slot.j),
        };
        if let Some(a) = materialize(req, &inst, now, world, ctx, cfg, router) {
            assignment = Some(a);
            break;
        }
    }
    router.put_slots(slots);
    (assignment, candidates.len(), feasible)
}

/// Routes every leg of the instance (Algorithms 3/4) and re-verifies the
/// schedule against the *actual* leg costs.
fn materialize(
    _req: &RideRequest,
    inst: &Instance,
    now: Time,
    world: &World<'_>,
    ctx: &MobilityContext,
    cfg: &MtShareConfig,
    router: &mut SegmentRouter,
) -> Option<Assignment> {
    let taxi = world.taxi(inst.taxi);
    let pos = taxi.position_at(now);
    let probabilistic = probabilistic_enabled(taxi, cfg, world);

    // Travel direction of the (hypothetical) taxi serving this schedule:
    // from its position toward the centroid of all scheduled drop-offs.
    let taxi_dir = if probabilistic {
        let drops: Vec<NodeId> = inst
            .schedule
            .events()
            .iter()
            .filter(|e| e.kind == mtshare_model::EventKind::Dropoff)
            .map(|e| e.node)
            .collect();
        let (mut lat, mut lng) = (0.0, 0.0);
        for &d in &drops {
            let p = world.graph.point(d);
            lat += p.lat;
            lng += p.lng;
        }
        let n = drops.len().max(1) as f64;
        world.graph.point(pos).displacement_m(&mtshare_road::GeoPoint::new(lat / n, lng / n))
    } else {
        (0.0, 0.0)
    };

    // Shortest leg costs and deadline slack along the instance: the
    // probabilistic budget of each leg is the slack still unconsumed, so a
    // biased route can never invalidate the schedule it was planned for
    // (Alg. 4's validity requirement, enforced by construction).
    let requests = world.requests;
    let lookup = |id| requests.get(id);
    let ectx = EvalContext {
        start_node: pos,
        start_time: now,
        initial_load: taxi.onboard_load(world.requests),
        capacity: taxi.capacity as u32,
        requests: &lookup,
    };
    let mut legs: Vec<Path> = Vec::with_capacity(inst.schedule.len());
    if probabilistic {
        let base = evaluate_schedule(&inst.schedule, &ectx, |a, b| world.oracle.cost(a, b))?;
        let n = inst.schedule.len();
        // slack_suffix[k] = max delay injectable before event k without
        // missing any later drop-off deadline.
        let mut slack_suffix = vec![f64::INFINITY; n + 1];
        for k in (0..n).rev() {
            let ev = &inst.schedule.events()[k];
            let own = match ev.kind {
                mtshare_model::EventKind::Dropoff => {
                    world.requests.get(ev.request).deadline - base.arrival_times[k]
                }
                mtshare_model::EventKind::Pickup => f64::INFINITY,
            };
            slack_suffix[k] = own.min(slack_suffix[k + 1]);
        }
        let mut extra_used = 0.0f64;
        let mut from = pos;
        for (k, ev) in inst.schedule.events().iter().enumerate() {
            let shortest = world.oracle.cost(from, ev.node)?;
            let available = (slack_suffix[k] - extra_used).max(0.0);
            // Cap wandering even when slack is huge.
            let budget = shortest + available.min(shortest * (1.0 + cfg.epsilon));
            let leg = router.probabilistic_leg(
                world.graph,
                ctx,
                cfg,
                world.cache,
                from,
                ev.node,
                taxi_dir,
                budget,
            )?;
            extra_used += (leg.cost_s - shortest).max(0.0);
            from = ev.node;
            legs.push(leg);
        }
    } else {
        let mut from = pos;
        for ev in inst.schedule.events() {
            let leg = router.basic_leg_memo(world.graph, ctx, cfg, world.cache, from, ev.node)?;
            from = ev.node;
            legs.push(leg);
        }
    }

    // Re-verify with the actual leg costs; if a probabilistic plan still
    // misses a deadline (numerical edge), fall back to shortest legs,
    // which realize exactly the costs the enumeration proved feasible.
    let mut k = 0usize;
    let eval = match evaluate_schedule(&inst.schedule, &ectx, |_, _| {
        let c = legs.get(k).map(|l| l.cost_s);
        k += 1;
        c
    }) {
        Some(e) => e,
        None => {
            legs.clear();
            let mut from = pos;
            for ev in inst.schedule.events() {
                let leg =
                    router.basic_leg_memo(world.graph, ctx, cfg, world.cache, from, ev.node)?;
                from = ev.node;
                legs.push(leg);
            }
            let mut k = 0usize;
            evaluate_schedule(&inst.schedule, &ectx, |_, _| {
                let c = legs.get(k).map(|l| l.cost_s);
                k += 1;
                c
            })?
        }
    };

    let remaining = taxi.route.as_ref().map(|r| (r.end_time() - now).max(0.0)).unwrap_or(0.0);
    Some(Assignment {
        taxi: inst.taxi,
        schedule: inst.schedule.clone(),
        legs,
        detour_cost_s: eval.total_cost_s - remaining,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{MobilityContext, PartitionStrategy};
    use mtshare_mobility::Trip;
    use mtshare_model::{DpEngine, RequestId, RequestStore, TimedRoute};
    use mtshare_road::{grid_city, GridCityConfig, RoadNetwork};
    use mtshare_routing::{HotNodeOracle, PathCache};
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    use std::sync::Arc;

    struct Fixture {
        graph: Arc<RoadNetwork>,
        cache: PathCache,
        oracle: HotNodeOracle,
        ctx: Arc<MobilityContext>,
        taxis: Vec<Taxi>,
        requests: RequestStore,
        cfg: MtShareConfig,
    }

    impl Fixture {
        fn new() -> Self {
            let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
            let mut rng = SmallRng::seed_from_u64(6);
            let trips: Vec<_> = (0..600)
                .map(|_| Trip {
                    origin: NodeId(rng.gen_range(0..400)),
                    destination: NodeId(rng.gen_range(0..400)),
                })
                .collect();
            let ctx = MobilityContext::build(&graph, &trips, 16, 4, 7, PartitionStrategy::Grid);
            let cache = PathCache::new(graph.clone());
            let oracle = HotNodeOracle::new(graph.clone());
            Self {
                graph,
                cache,
                oracle,
                ctx,
                taxis: Vec::new(),
                requests: RequestStore::new(),
                cfg: MtShareConfig::default(),
            }
        }

        fn world(&self) -> World<'_> {
            World {
                graph: &self.graph,
                cache: &self.cache,
                oracle: &self.oracle,
                taxis: &self.taxis,
                requests: &self.requests,
            }
        }

        fn request(&mut self, origin: u32, dest: u32, release: f64, rho: f64) -> RideRequest {
            let direct = self.cache.cost(NodeId(origin), NodeId(dest)).unwrap();
            self.oracle.pin(NodeId(origin));
            self.oracle.pin(NodeId(dest));
            let req = RideRequest {
                id: RequestId(self.requests.len() as u32),
                release_time: release,
                origin: NodeId(origin),
                destination: NodeId(dest),
                passengers: 1,
                deadline: release + direct * rho,
                direct_cost_s: direct,
                offline: false,
            };
            self.requests.push(req.clone());
            req
        }
    }

    #[test]
    fn assigns_vacant_taxi_with_direct_route() {
        let mut f = Fixture::new();
        f.taxis.push(Taxi::new(TaxiId(0), 4, NodeId(0)));
        let req = f.request(21, 399, 0.0, 1.5);
        let mut router = SegmentRouter::new(&f.graph);
        let (a, examined, feasible) = schedule_best(
            &req,
            &[TaxiId(0)],
            0.0,
            &f.world(),
            &f.ctx,
            &f.cfg,
            &DpEngine,
            &mut router,
        );
        let a = a.expect("assignment");
        assert_eq!(examined, 1);
        assert_eq!(feasible, 1);
        assert_eq!(a.taxi, TaxiId(0));
        assert_eq!(a.schedule.len(), 2);
        assert_eq!(a.legs.len(), 2);
        // Detour for a vacant taxi = pickup leg + direct trip.
        let pickup = f.cache.cost(NodeId(0), NodeId(21)).unwrap();
        assert!((a.detour_cost_s - (pickup + req.direct_cost_s)).abs() < 1.0);
        // Legs connect position -> origin -> destination.
        assert_eq!(a.legs[0].start(), NodeId(0));
        assert_eq!(a.legs[0].end(), NodeId(21));
        assert_eq!(a.legs[1].end(), NodeId(399));
    }

    #[test]
    fn picks_minimum_detour_taxi() {
        let mut f = Fixture::new();
        f.taxis.push(Taxi::new(TaxiId(0), 4, NodeId(399))); // far
        f.taxis.push(Taxi::new(TaxiId(1), 4, NodeId(22))); // near
        let req = f.request(21, 200, 0.0, 10.0);
        let mut router = SegmentRouter::new(&f.graph);
        let (a, examined, _) = schedule_best(
            &req,
            &[TaxiId(0), TaxiId(1)],
            0.0,
            &f.world(),
            &f.ctx,
            &f.cfg,
            &DpEngine,
            &mut router,
        );
        assert_eq!(examined, 2);
        assert_eq!(a.unwrap().taxi, TaxiId(1));
    }

    #[test]
    fn respects_existing_passenger_deadline() {
        let mut f = Fixture::new();
        // Taxi serving an onboard passenger with a tight deadline.
        let onboard = f.request(0, 19, 0.0, 1.02); // east along row 0, almost no slack
        let mut taxi = Taxi::new(TaxiId(0), 4, NodeId(0));
        taxi.onboard.push(onboard.id);
        let mut sched = Schedule::new();
        sched.push(mtshare_model::ScheduleEvent {
            kind: mtshare_model::EventKind::Dropoff,
            request: onboard.id,
            node: NodeId(19),
        });
        let leg = f.cache.path(NodeId(0), NodeId(19)).unwrap();
        let route = TimedRoute::build(NodeId(0), 0.0, &[leg], &sched);
        taxi.set_plan(sched, route, 0.0);
        f.taxis.push(taxi);
        // A new request that would force a big detour north first.
        let req = f.request(380, 399, 0.0, 1.5);
        let mut router = SegmentRouter::new(&f.graph);
        let (a, _, _) = schedule_best(
            &req,
            &[TaxiId(0)],
            0.0,
            &f.world(),
            &f.ctx,
            &f.cfg,
            &DpEngine,
            &mut router,
        );
        // Any feasible instance must drop the onboard passenger first; if
        // an assignment exists, verify its ordering.
        if let Some(a) = a {
            assert_eq!(a.schedule.events()[0].request, onboard.id);
        }
    }

    #[test]
    fn rejects_when_no_feasible_instance() {
        let mut f = Fixture::new();
        f.taxis.push(Taxi::new(TaxiId(0), 4, NodeId(399)));
        // Deadline so tight not even a taxi at the origin could help if it
        // must first drive across the city.
        let req = f.request(0, 19, 0.0, 1.01);
        let mut router = SegmentRouter::new(&f.graph);
        let (a, examined, feasible) = schedule_best(
            &req,
            &[TaxiId(0)],
            0.0,
            &f.world(),
            &f.ctx,
            &f.cfg,
            &DpEngine,
            &mut router,
        );
        assert!(a.is_none());
        assert_eq!(examined, 1);
        assert_eq!(feasible, 0, "no instance can meet the deadline");
    }

    #[test]
    fn shares_ride_between_aligned_requests() {
        let mut f = Fixture::new();
        f.taxis.push(Taxi::new(TaxiId(0), 4, NodeId(0)));
        // First request: SW corner to NE corner.
        let r1 = f.request(0, 399, 0.0, 1.5);
        let mut router = SegmentRouter::new(&f.graph);
        let (a1, _, _) = schedule_best(
            &r1,
            &[TaxiId(0)],
            0.0,
            &f.world(),
            &f.ctx,
            &f.cfg,
            &DpEngine,
            &mut router,
        );
        let a1 = a1.unwrap();
        // Commit the plan.
        let route = TimedRoute::build(NodeId(0), 0.0, &a1.legs, &a1.schedule);
        f.taxis[0].assigned.push(r1.id);
        f.taxis[0].set_plan(a1.schedule, route, 0.0);
        // Second aligned request along the way.
        let r2 = f.request(42, 378, 10.0, 1.5);
        let (a2, _, _) = schedule_best(
            &r2,
            &[TaxiId(0)],
            10.0,
            &f.world(),
            &f.ctx,
            &f.cfg,
            &DpEngine,
            &mut router,
        );
        let a2 = a2.expect("aligned request should share");
        assert_eq!(a2.schedule.len(), 4);
        // Shared detour should be far below serving r2 from scratch.
        assert!(a2.detour_cost_s < r2.direct_cost_s * 2.0);
    }

    #[test]
    fn probabilistic_mode_gates_on_idle_seats() {
        let mut f = Fixture::new();
        f.cfg = f.cfg.clone().with_probabilistic();
        let mut taxi = Taxi::new(TaxiId(0), 4, NodeId(0));
        f.taxis.push(taxi.clone());
        assert!(probabilistic_enabled(&f.taxis[0], &f.cfg, &f.world()));
        // Fill 3 of 4 seats: less than half idle.
        let r = f.request(0, 399, 0.0, 1.5);
        taxi.onboard.push(r.id);
        let mut r2 = f.request(1, 398, 0.0, 1.5);
        r2.passengers = 2;
        // Overwrite store entry passengers by rebuilding fixture state:
        // simpler — push two single riders.
        let r3 = f.request(2, 397, 0.0, 1.5);
        taxi.onboard.push(r2.id);
        taxi.onboard.push(r3.id);
        f.taxis[0] = taxi;
        assert!(!probabilistic_enabled(&f.taxis[0], &f.cfg, &f.world()));
    }
}
