//! The dual taxi indexes of mT-Share (Sec. IV-B3).
//!
//! - **Partition index**: per map partition `P_z`, the list `P_z.L_t` of
//!   taxis that are in or will reach `P_z` within the horizon `T_mp`,
//!   sorted by arrival time.
//! - **Mobility-cluster index**: per mobility cluster `C_a`, the list
//!   `C_a.L_t` of busy taxis travelling in that direction.
//!
//! Memory complexity is O((x+1)·M + R) as analyzed in the paper: each taxi
//! appears in x partitions and at most one mobility cluster.

use crate::context::MobilityContext;
use mtshare_mobility::{ClusterId, MobilityClusterer, MobilityVector, PartitionId};
use mtshare_model::{RequestStore, Taxi, TaxiId, Time};
use mtshare_road::{GeoPoint, RoadNetwork};

/// Per-partition arrival-sorted taxi lists.
#[derive(Debug)]
pub struct PartitionTaxiIndex {
    /// `lists[p]` = (arrival_time, taxi), ascending by arrival.
    pub(crate) lists: Vec<Vec<(Time, TaxiId)>>,
    /// Partitions each taxi is currently indexed in (for O(x) removal).
    pub(crate) taxi_partitions: Vec<Vec<u16>>,
}

impl PartitionTaxiIndex {
    /// Creates an empty index for `kappa` partitions and `n_taxis` taxis.
    pub fn new(kappa: usize, n_taxis: usize) -> Self {
        Self { lists: vec![Vec::new(); kappa], taxi_partitions: vec![Vec::new(); n_taxis] }
    }

    /// Re-indexes `taxi` after its plan or position changed: removes stale
    /// entries, then records the partition arrival times along its current
    /// route within the `T_mp` horizon (idle taxis are indexed at their
    /// parked partition with arrival = `now`).
    pub fn update_taxi(&mut self, taxi: &Taxi, ctx: &MobilityContext, now: Time, horizon_s: f64) {
        self.remove_taxi(taxi.id);
        let id = taxi.id;
        match &taxi.route {
            None => {
                let p = ctx.partitioning.partition_of(taxi.location);
                self.push_entry(p, now, id);
            }
            Some(route) => {
                // Current partition first.
                let here = route.position_at(now);
                let p0 = ctx.partitioning.partition_of(here);
                self.push_entry(p0, now, id);
                let mut last = p0;
                for (node, at) in route.nodes_in_window(now, now + horizon_s) {
                    let p = ctx.partitioning.partition_of(node);
                    if p != last && !self.taxi_partitions[id.index()].contains(&p.0) {
                        self.push_entry(p, at, id);
                    }
                    last = p;
                }
            }
        }
    }

    fn push_entry(&mut self, p: PartitionId, at: Time, id: TaxiId) {
        let list = &mut self.lists[p.index()];
        let pos = list.partition_point(|&(t, _)| t <= at);
        list.insert(pos, (at, id));
        self.taxi_partitions[id.index()].push(p.0);
    }

    /// Removes every entry of `taxi`.
    pub fn remove_taxi(&mut self, taxi: TaxiId) {
        let touched = std::mem::take(&mut self.taxi_partitions[taxi.index()]);
        for p in touched {
            self.lists[p as usize].retain(|&(_, t)| t != taxi);
        }
    }

    /// The arrival-sorted taxi list of partition `p` (`P_z.L_t`).
    #[inline]
    pub fn taxis_in(&self, p: PartitionId) -> &[(Time, TaxiId)] {
        &self.lists[p.index()]
    }

    /// Earliest recorded arrival of `taxi` at partition `p`, if indexed.
    pub fn arrival_at(&self, p: PartitionId, taxi: TaxiId) -> Option<Time> {
        self.lists[p.index()].iter().find(|&&(_, t)| t == taxi).map(|&(at, _)| at)
    }

    /// Approximate resident memory in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.lists.iter().map(|l| l.len() * 12).sum::<usize>()
            + self.taxi_partitions.iter().map(|p| p.len() * 2).sum::<usize>()
    }

    /// Every taxi with at least one entry, sorted by id (for invariant
    /// checks: a removed taxi must not appear here).
    pub fn indexed_taxis(&self) -> Vec<TaxiId> {
        self.taxi_partitions
            .iter()
            .enumerate()
            .filter(|(_, ps)| !ps.is_empty())
            .map(|(i, _)| TaxiId(i as u32))
            .collect()
    }

    /// Number of partitions (`κ`) the index was built for.
    pub fn partition_count(&self) -> usize {
        self.lists.len()
    }

    /// Fleet size the index was built for.
    pub fn fleet_size(&self) -> usize {
        self.taxi_partitions.len()
    }
}

/// Mobility-cluster index over busy taxis.
#[derive(Debug)]
pub struct MobilityClusterIndex {
    pub(crate) clusterer: MobilityClusterer,
    /// `members[c]` = taxis currently in cluster `c` (slots align with the
    /// clusterer's slots and are recycled with them).
    pub(crate) members: Vec<Vec<TaxiId>>,
    /// Per taxi: the cluster and vector it is registered under.
    pub(crate) taxi_entry: Vec<Option<(ClusterId, MobilityVector)>>,
}

impl MobilityClusterIndex {
    /// Creates an empty index with direction threshold `lambda`.
    pub fn new(lambda: f64, n_taxis: usize) -> Self {
        Self {
            clusterer: MobilityClusterer::new(lambda),
            members: Vec::new(),
            taxi_entry: vec![None; n_taxis],
        }
    }

    /// The taxi's mobility vector per Def. 9: origin = current location,
    /// destination = centroid of the destinations of all passengers it
    /// serves (onboard + assigned). `None` for vacant taxis, which carry no
    /// travel direction.
    pub fn taxi_vector(
        taxi: &Taxi,
        graph: &RoadNetwork,
        requests: &RequestStore,
        now: Time,
    ) -> Option<MobilityVector> {
        let served = taxi.onboard.iter().chain(taxi.assigned.iter());
        let mut n = 0usize;
        let (mut lat, mut lng) = (0.0f64, 0.0f64);
        for &r in served {
            let d = graph.point(requests.get(r).destination);
            lat += d.lat;
            lng += d.lng;
            n += 1;
        }
        if n == 0 {
            return None;
        }
        let origin = graph.point(taxi.position_at(now));
        Some(MobilityVector::new(origin, GeoPoint::new(lat / n as f64, lng / n as f64)))
    }

    /// Re-registers `taxi` under its current mobility vector (or removes it
    /// when vacant).
    pub fn update_taxi(
        &mut self,
        taxi: &Taxi,
        graph: &RoadNetwork,
        requests: &RequestStore,
        now: Time,
    ) {
        self.remove_taxi(taxi.id);
        if let Some(v) = Self::taxi_vector(taxi, graph, requests, now) {
            let c = self.clusterer.insert(&v);
            if self.members.len() <= c.index() {
                self.members.resize_with(c.index() + 1, Vec::new);
            }
            self.members[c.index()].push(taxi.id);
            self.taxi_entry[taxi.id.index()] = Some((c, v));
        }
    }

    /// Removes `taxi` from its cluster, if registered.
    pub fn remove_taxi(&mut self, taxi: TaxiId) {
        if let Some((c, v)) = self.taxi_entry[taxi.index()].take() {
            self.clusterer.remove(c, &v);
            let m = &mut self.members[c.index()];
            if let Some(pos) = m.iter().position(|&t| t == taxi) {
                m.swap_remove(pos);
            }
        }
    }

    /// The cluster a request's mobility vector matches best (`C_a`), if any
    /// live cluster is within λ.
    pub fn cluster_for(&self, v: &MobilityVector) -> Option<ClusterId> {
        self.clusterer.best_match(v)
    }

    /// Every live cluster whose general vector is within λ of `v`.
    ///
    /// Incremental clustering can fragment one travel direction into
    /// several parallel clusters; restricting Eq. 3 to the single best
    /// match would then drop aligned taxis, so the candidate search unions
    /// all matching clusters.
    pub fn clusters_for(&self, v: &MobilityVector) -> Vec<ClusterId> {
        self.clusterer
            .live_clusters()
            .filter(|&c| {
                self.clusterer
                    .general_vector(c)
                    .is_some_and(|g| v.cos_to(&g) >= self.clusterer.lambda())
            })
            .collect()
    }

    /// Taxis registered in cluster `c` (`C_a.L_t`).
    pub fn taxis_in(&self, c: ClusterId) -> &[TaxiId] {
        self.members.get(c.index()).map_or(&[], |m| m.as_slice())
    }

    /// The cluster `taxi` is registered in, if busy.
    pub fn cluster_of(&self, taxi: TaxiId) -> Option<ClusterId> {
        self.taxi_entry[taxi.index()].map(|(c, _)| c)
    }

    /// Number of live clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusterer.len()
    }

    /// Direction threshold λ the index was built with.
    pub fn lambda(&self) -> f64 {
        self.clusterer.lambda()
    }

    /// Fleet size the index was built for.
    pub fn fleet_size(&self) -> usize {
        self.taxi_entry.len()
    }

    /// Every registered taxi, sorted by id (for invariant checks: a
    /// removed taxi must not appear here).
    pub fn indexed_taxis(&self) -> Vec<TaxiId> {
        self.taxi_entry
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_some())
            .map(|(i, _)| TaxiId(i as u32))
            .collect()
    }

    /// Approximate resident memory in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.clusterer.memory_bytes()
            + self.members.iter().map(|m| m.len() * 4).sum::<usize>()
            + self.taxi_entry.len() * std::mem::size_of::<Option<(ClusterId, MobilityVector)>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::PartitionStrategy;
    use mtshare_model::{RequestId, RideRequest, Schedule, TimedRoute};
    use mtshare_road::{grid_city, GridCityConfig, NodeId};
    use mtshare_routing::{Dijkstra, Path};
    use std::sync::Arc;

    fn setup() -> (Arc<RoadNetwork>, Arc<MobilityContext>) {
        let g = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let trips: Vec<_> = (0..300)
            .map(|i| mtshare_mobility::Trip {
                origin: NodeId(i % 400),
                destination: NodeId((i * 7 + 13) % 400),
            })
            .collect();
        let ctx = MobilityContext::build(&g, &trips, 9, 3, 5, PartitionStrategy::Grid);
        (g, ctx)
    }

    fn mkreq(id: u32, origin: u32, dest: u32) -> RideRequest {
        RideRequest {
            id: RequestId(id),
            release_time: 0.0,
            origin: NodeId(origin),
            destination: NodeId(dest),
            passengers: 1,
            deadline: 1e9,
            direct_cost_s: 100.0,
            offline: false,
        }
    }

    #[test]
    fn idle_taxi_indexed_in_home_partition() {
        let (_, ctx) = setup();
        let mut idx = PartitionTaxiIndex::new(ctx.kappa(), 2);
        let taxi = Taxi::new(TaxiId(0), 4, NodeId(42));
        idx.update_taxi(&taxi, &ctx, 10.0, 3600.0);
        let home = ctx.partitioning.partition_of(NodeId(42));
        assert_eq!(idx.arrival_at(home, TaxiId(0)), Some(10.0));
        assert_eq!(idx.taxis_in(home).len(), 1);
    }

    #[test]
    fn busy_taxi_indexed_along_route_in_arrival_order() {
        let (g, ctx) = setup();
        let mut idx = PartitionTaxiIndex::new(ctx.kappa(), 1);
        let mut taxi = Taxi::new(TaxiId(0), 4, NodeId(0));
        let r = mkreq(0, 399, 399);
        let mut d = Dijkstra::new(&g);
        let leg: Path = d.path(&g, NodeId(0), NodeId(399)).unwrap();
        let s = Schedule::new().with_insertion(&r, 0, 1);
        let legs = vec![leg, Path::trivial(NodeId(399))];
        let route = TimedRoute::build(NodeId(0), 0.0, &legs, &s);
        taxi.set_plan(s, route, 0.0);
        idx.update_taxi(&taxi, &ctx, 0.0, 1e9);
        // The taxi crosses several partitions; each list must stay sorted.
        let mut seen = 0;
        for p in ctx.partitioning.partitions() {
            let l = idx.taxis_in(p);
            seen += l.len();
            assert!(l.windows(2).all(|w| w[0].0 <= w[1].0));
        }
        assert!(seen >= 2, "route should cross ≥2 partitions, saw {seen}");
        // Destination partition must be indexed.
        let dest_p = ctx.partitioning.partition_of(NodeId(399));
        assert!(idx.arrival_at(dest_p, TaxiId(0)).is_some());
    }

    #[test]
    fn horizon_limits_indexing() {
        let (g, ctx) = setup();
        let mut idx = PartitionTaxiIndex::new(ctx.kappa(), 1);
        let mut taxi = Taxi::new(TaxiId(0), 4, NodeId(0));
        let r = mkreq(0, 399, 399);
        let mut d = Dijkstra::new(&g);
        let leg = d.path(&g, NodeId(0), NodeId(399)).unwrap();
        let s = Schedule::new().with_insertion(&r, 0, 1);
        let legs = vec![leg, Path::trivial(NodeId(399))];
        let route = TimedRoute::build(NodeId(0), 0.0, &legs, &s);
        taxi.set_plan(s, route, 0.0);
        // Tiny horizon: only the current partition (and perhaps one more).
        idx.update_taxi(&taxi, &ctx, 0.0, 1.0);
        let total: usize = ctx.partitioning.partitions().map(|p| idx.taxis_in(p).len()).sum();
        assert!(total <= 2, "horizon should limit entries, got {total}");
    }

    #[test]
    fn remove_taxi_clears_entries() {
        let (_, ctx) = setup();
        let mut idx = PartitionTaxiIndex::new(ctx.kappa(), 1);
        let taxi = Taxi::new(TaxiId(0), 4, NodeId(42));
        idx.update_taxi(&taxi, &ctx, 0.0, 3600.0);
        idx.remove_taxi(TaxiId(0));
        let total: usize = ctx.partitioning.partitions().map(|p| idx.taxis_in(p).len()).sum();
        assert_eq!(total, 0);
        assert!(idx.memory_bytes() < 64);
    }

    #[test]
    fn update_is_idempotent() {
        let (_, ctx) = setup();
        let mut idx = PartitionTaxiIndex::new(ctx.kappa(), 1);
        let taxi = Taxi::new(TaxiId(0), 4, NodeId(42));
        idx.update_taxi(&taxi, &ctx, 0.0, 3600.0);
        idx.update_taxi(&taxi, &ctx, 5.0, 3600.0);
        let home = ctx.partitioning.partition_of(NodeId(42));
        assert_eq!(idx.taxis_in(home).len(), 1);
        assert_eq!(idx.arrival_at(home, TaxiId(0)), Some(5.0));
    }

    #[test]
    fn cluster_index_tracks_busy_taxis_only() {
        let (g, _) = setup();
        let mut reqs = RequestStore::new();
        reqs.push(mkreq(0, 100, 399));
        let mut idx = MobilityClusterIndex::new(0.7, 2);
        let mut taxi = Taxi::new(TaxiId(0), 4, NodeId(0));
        // Vacant: not registered.
        idx.update_taxi(&taxi, &g, &reqs, 0.0);
        assert_eq!(idx.cluster_of(TaxiId(0)), None);
        assert_eq!(idx.cluster_count(), 0);
        // Busy: registered.
        taxi.assigned.push(RequestId(0));
        idx.update_taxi(&taxi, &g, &reqs, 0.0);
        let c = idx.cluster_of(TaxiId(0)).expect("registered");
        assert_eq!(idx.taxis_in(c), &[TaxiId(0)]);
        assert_eq!(idx.cluster_count(), 1);
        // Vacant again: removed and cluster recycled.
        taxi.assigned.clear();
        idx.update_taxi(&taxi, &g, &reqs, 0.0);
        assert_eq!(idx.cluster_of(TaxiId(0)), None);
        assert_eq!(idx.cluster_count(), 0);
    }

    #[test]
    fn similar_taxis_share_cluster_and_match_requests() {
        let (g, _) = setup();
        let mut reqs = RequestStore::new();
        // Both requests head from the SW corner to the NE corner.
        reqs.push(mkreq(0, 0, 399));
        reqs.push(mkreq(1, 21, 398));
        let mut idx = MobilityClusterIndex::new(0.7, 2);
        let mut t0 = Taxi::new(TaxiId(0), 4, NodeId(0));
        t0.assigned.push(RequestId(0));
        let mut t1 = Taxi::new(TaxiId(1), 4, NodeId(21));
        t1.assigned.push(RequestId(1));
        idx.update_taxi(&t0, &g, &reqs, 0.0);
        idx.update_taxi(&t1, &g, &reqs, 0.0);
        let c0 = idx.cluster_of(TaxiId(0)).unwrap();
        assert_eq!(idx.cluster_of(TaxiId(1)), Some(c0));
        // A request with the same direction finds this cluster.
        let v = MobilityVector::new(g.point(NodeId(1)), g.point(NodeId(399)));
        assert_eq!(idx.cluster_for(&v), Some(c0));
        // An opposite request does not.
        let v_opp = MobilityVector::new(g.point(NodeId(399)), g.point(NodeId(0)));
        assert_eq!(idx.cluster_for(&v_opp), None);
        assert!(idx.memory_bytes() > 0);
    }
}
