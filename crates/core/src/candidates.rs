//! Candidate taxi searching (Sec. IV-C1).
//!
//! For a request `r_i`, the searching range is `γ = speed × Δt` (Eq. 2).
//! The candidate set is the union of the partition taxi lists intersecting
//! the search circle, intersected with the mobility cluster sharing the
//! request's travel direction, plus vacant taxis in range (Eq. 3), refined
//! by the three filtering rules (capacity, reachability).
//!
//! Selection itself uses only O(1) landmark estimates; the *exact*
//! candidate-position → pickup costs the downstream scheduling pass needs
//! are batch-primed into the shared [`mtshare_routing::PathCache`] via the
//! contraction-hierarchy bucket kernel (see `scheduling::schedule_best`)
//! when the `ch` router is selected.

use crate::config::MtShareConfig;
use crate::context::MobilityContext;
use crate::index::{MobilityClusterIndex, PartitionTaxiIndex};
use mtshare_model::{RideRequest, TaxiId, Time, World};
use rustc_hash::FxHashSet;

/// Runs the candidate search for `req` at time `now`.
pub fn candidate_taxis(
    req: &RideRequest,
    now: Time,
    world: &World<'_>,
    ctx: &MobilityContext,
    cfg: &MtShareConfig,
    pindex: &PartitionTaxiIndex,
    mindex: &MobilityClusterIndex,
) -> Vec<TaxiId> {
    let gamma = cfg.search_range_m(req.wait_budget(now));
    if gamma <= 0.0 {
        return Vec::new();
    }
    let origin_pt = world.graph.point(req.origin);
    let in_range = ctx.partitioning.intersecting_circle(&origin_pt, gamma);

    // Union of the partition lists (the geographic side of Eq. 3).
    let mut base: FxHashSet<TaxiId> = FxHashSet::default();
    for &p in &in_range {
        for &(_, taxi) in pindex.taxis_in(p) {
            base.insert(taxi);
        }
    }
    if base.is_empty() {
        return Vec::new();
    }

    // Directional side: every mobility cluster aligned with the request.
    let mut cluster_members: FxHashSet<TaxiId> = FxHashSet::default();
    for c in mindex.clusters_for(&req.mobility_vector(world.graph)) {
        cluster_members.extend(mindex.taxis_in(c).iter().copied());
    }

    let home = ctx.partitioning.partition_of(req.origin);
    let pickup_deadline = req.pickup_deadline();
    // Slack: crossing the home partition from its landmark.
    let slack_s = ctx.partitioning.radius_m(home) / cfg.speed_mps();

    let mut out = Vec::with_capacity(base.len().min(64));
    for taxi_id in base {
        let taxi = world.taxi(taxi_id);
        // Defense in depth: broken-down taxis are reconciled out of the
        // indexes, but never propose one even if an entry leaks through.
        if !taxi.alive {
            continue;
        }
        // Rule 1 / Eq. 3: busy taxis must share the travel direction;
        // vacant taxis in range are always eligible.
        if !taxi.is_vacant() && !cluster_members.contains(&taxi_id) {
            continue;
        }
        // Rule 2: no idle capacity for this request's party.
        let committed: u32 = taxi
            .onboard
            .iter()
            .chain(taxi.assigned.iter())
            .map(|&r| world.requests.get(r).passengers as u32)
            .sum();
        if committed + req.passengers as u32 > taxi.capacity as u32 {
            continue;
        }
        // Rule 3: must be able to reach the request's partition before the
        // pick-up deadline. Prefer the recorded arrival time in `P_i.L_t`;
        // otherwise estimate via the landmark cost table.
        let reachable = match pindex.arrival_at(home, taxi_id) {
            Some(at) => at <= pickup_deadline + slack_s,
            None => {
                let pos = taxi.position_at(now);
                let to_landmark = ctx.landmarks.cost_to_landmark(pos, home) as f64;
                to_landmark.is_finite() && now + to_landmark - slack_s <= pickup_deadline
            }
        };
        if reachable {
            out.push(taxi_id);
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{MobilityContext, PartitionStrategy};
    use mtshare_mobility::Trip;
    use mtshare_model::{RequestId, RequestStore, RideRequest, Taxi};
    use mtshare_road::{grid_city, GridCityConfig, NodeId, RoadNetwork};
    use mtshare_routing::{HotNodeOracle, PathCache};
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    use std::sync::Arc;

    struct Fixture {
        graph: Arc<RoadNetwork>,
        cache: PathCache,
        oracle: HotNodeOracle,
        ctx: Arc<MobilityContext>,
        taxis: Vec<Taxi>,
        requests: RequestStore,
        cfg: MtShareConfig,
    }

    impl Fixture {
        fn new() -> Self {
            let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
            let mut rng = SmallRng::seed_from_u64(5);
            let trips: Vec<_> = (0..600)
                .map(|_| Trip {
                    origin: NodeId(rng.gen_range(0..400)),
                    destination: NodeId(rng.gen_range(0..400)),
                })
                .collect();
            let ctx = MobilityContext::build(&graph, &trips, 16, 4, 7, PartitionStrategy::Grid);
            let cache = PathCache::new(graph.clone());
            let oracle = HotNodeOracle::new(graph.clone());
            Self {
                graph,
                cache,
                oracle,
                ctx,
                taxis: Vec::new(),
                requests: RequestStore::new(),
                cfg: MtShareConfig::default(),
            }
        }

        fn world(&self) -> World<'_> {
            World {
                graph: &self.graph,
                cache: &self.cache,
                oracle: &self.oracle,
                taxis: &self.taxis,
                requests: &self.requests,
            }
        }

        fn request(&mut self, origin: u32, dest: u32, release: f64) -> RideRequest {
            let direct = self.cache.cost(NodeId(origin), NodeId(dest)).unwrap();
            let req = RideRequest {
                id: RequestId(self.requests.len() as u32),
                release_time: release,
                origin: NodeId(origin),
                destination: NodeId(dest),
                passengers: 1,
                deadline: release + direct * 1.3,
                direct_cost_s: direct,
                offline: false,
            };
            self.requests.push(req.clone());
            req
        }
    }

    fn indexes(f: &Fixture) -> (PartitionTaxiIndex, MobilityClusterIndex) {
        let mut p = PartitionTaxiIndex::new(f.ctx.kappa(), f.taxis.len());
        let mut m = MobilityClusterIndex::new(f.cfg.lambda, f.taxis.len());
        for t in &f.taxis {
            p.update_taxi(t, &f.ctx, 0.0, f.cfg.tmp_horizon_s);
            m.update_taxi(t, &f.graph, &f.requests, 0.0);
        }
        (p, m)
    }

    #[test]
    fn vacant_nearby_taxi_is_candidate() {
        let mut f = Fixture::new();
        f.taxis.push(Taxi::new(TaxiId(0), 4, NodeId(21))); // near origin 0
        let req = f.request(0, 399, 0.0);
        let (p, m) = indexes(&f);
        let c = candidate_taxis(&req, 0.0, &f.world(), &f.ctx, &f.cfg, &p, &m);
        assert_eq!(c, vec![TaxiId(0)]);
    }

    #[test]
    fn far_taxi_excluded_by_range() {
        let mut f = Fixture::new();
        // Grid spans ~2.3 km; shrink γ to isolate.
        f.cfg.max_search_range_m = 200.0;
        f.taxis.push(Taxi::new(TaxiId(0), 4, NodeId(399))); // opposite corner
        let req = f.request(0, 20, 0.0);
        let (p, m) = indexes(&f);
        let c = candidate_taxis(&req, 0.0, &f.world(), &f.ctx, &f.cfg, &p, &m);
        assert!(c.is_empty());
    }

    #[test]
    fn full_taxi_filtered_by_capacity_rule() {
        let mut f = Fixture::new();
        let mut t = Taxi::new(TaxiId(0), 1, NodeId(21));
        f.taxis.push(t.clone());
        // Give the taxi an onboard request that fills it.
        let onboard = f.request(22, 399, 0.0);
        t.onboard.push(onboard.id);
        f.taxis[0] = t;
        let req = f.request(0, 399, 0.0);
        let (mut p, mut m) = indexes(&f);
        p.update_taxi(&f.taxis[0], &f.ctx, 0.0, f.cfg.tmp_horizon_s);
        m.update_taxi(&f.taxis[0], &f.graph, &f.requests, 0.0);
        let c = candidate_taxis(&req, 0.0, &f.world(), &f.ctx, &f.cfg, &p, &m);
        assert!(c.is_empty());
    }

    #[test]
    fn busy_taxi_with_opposite_direction_excluded() {
        let mut f = Fixture::new();
        // Taxi near the NE corner heading SW.
        let mut t = Taxi::new(TaxiId(0), 4, NodeId(378));
        f.taxis.push(t.clone());
        let onboard = f.request(378, 0, 0.0); // heading SW
        t.onboard.push(onboard.id);
        f.taxis[0] = t;
        // Request near the taxi but heading NE (opposite).
        let req = f.request(357, 399, 0.0);
        let (mut p, mut m) = indexes(&f);
        p.update_taxi(&f.taxis[0], &f.ctx, 0.0, f.cfg.tmp_horizon_s);
        m.update_taxi(&f.taxis[0], &f.graph, &f.requests, 0.0);
        let c = candidate_taxis(&req, 0.0, &f.world(), &f.ctx, &f.cfg, &p, &m);
        assert!(c.is_empty(), "opposite-direction taxi must be filtered, got {c:?}");
    }

    #[test]
    fn busy_taxi_with_same_direction_included() {
        let mut f = Fixture::new();
        let mut t = Taxi::new(TaxiId(0), 4, NodeId(22));
        f.taxis.push(t.clone());
        let onboard = f.request(22, 399, 0.0); // heading NE
        t.onboard.push(onboard.id);
        f.taxis[0] = t;
        let req = f.request(0, 398, 0.0); // also NE
        let (mut p, mut m) = indexes(&f);
        p.update_taxi(&f.taxis[0], &f.ctx, 0.0, f.cfg.tmp_horizon_s);
        m.update_taxi(&f.taxis[0], &f.graph, &f.requests, 0.0);
        let c = candidate_taxis(&req, 0.0, &f.world(), &f.ctx, &f.cfg, &p, &m);
        assert_eq!(c, vec![TaxiId(0)]);
    }

    #[test]
    fn expired_wait_budget_returns_nothing() {
        let mut f = Fixture::new();
        f.taxis.push(Taxi::new(TaxiId(0), 4, NodeId(0)));
        let req = f.request(0, 399, 0.0);
        let (p, m) = indexes(&f);
        // Query long after the pickup deadline has passed.
        let late = req.deadline + 100.0;
        let c = candidate_taxis(&req, late, &f.world(), &f.ctx, &f.cfg, &p, &m);
        assert!(c.is_empty());
    }
}
