//! The mT-Share payment model (Sec. IV-D, Eqs. 5–8).
//!
//! The ridesharing benefit `B = Σ f^s_ri − F` (Eq. 5) — the fare the riders
//! would have paid separately minus the regular fare of the shared route —
//! is split between the driver (share `1−β`) and the riders (share `β`),
//! with each rider compensated in proportion to their detour rate
//! `σ_i = η + detour/shortest` (Eq. 6). Eq. 8 then prices each ride as
//! `f_ri = f^s_ri − β·B·σ_i/Σσ`.

use mtshare_model::{FareTable, RequestId};

/// Payment-model parameters (Table II: β = 0.8, η = 0.01).
#[derive(Debug, Clone, Copy)]
pub struct PaymentConfig {
    /// Riders' share of the benefit β.
    pub beta: f64,
    /// Base detour rate η guaranteeing zero-detour riders a discount.
    pub eta: f64,
    /// Regular taxi tariff.
    pub fare: FareTable,
    /// Constant taxi speed (converts travel seconds to metres).
    pub speed_mps: f64,
}

impl Default for PaymentConfig {
    fn default() -> Self {
        Self { beta: 0.8, eta: 0.01, fare: FareTable::default(), speed_mps: 15.0 / 3.6 }
    }
}

/// One completed passenger trip within a shared episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PassengerTrip {
    /// The ride request.
    pub request: RequestId,
    /// Travel cost the rider actually experienced on the shared route
    /// (pick-up to drop-off), seconds.
    pub shared_cost_s: f64,
    /// Shortest-path travel cost of the rider's own trip, seconds.
    pub direct_cost_s: f64,
}

impl PassengerTrip {
    /// Detour rate σ_i (Eq. 6). Clamped at η when rounding makes the
    /// shared cost marginally below the shortest.
    pub fn detour_rate(&self, eta: f64) -> f64 {
        let detour = (self.shared_cost_s - self.direct_cost_s).max(0.0);
        eta + if self.direct_cost_s > 0.0 { detour / self.direct_cost_s } else { 0.0 }
    }
}

/// Settled fares for one shared episode.
#[derive(Debug, Clone, PartialEq)]
pub struct Settlement {
    /// Final fare per rider (Eq. 8), aligned with the input trips.
    pub fares: Vec<(RequestId, f64)>,
    /// Driver income: `F + (1−β)·B` when no fare clamp binds (always
    /// equals Σ fares).
    pub driver_income: f64,
    /// The ridesharing benefit B (clamped at 0 — see note).
    pub benefit: f64,
    /// Σ f^s_ri: what the riders would have paid without ridesharing.
    pub no_share_total: f64,
    /// F: the regular fare of the shared route.
    pub shared_route_fare: f64,
}

/// Settles a shared episode: `trips` are all riders the taxi served during
/// the episode, `shared_route_cost_s` the total travel cost of the shared
/// route that served them.
///
/// When the shared route is *longer* than the sum of solo trips (possible
/// with aggressive probabilistic detours), B would be negative and Eq. 8
/// would charge riders more than solo fares; following the paper's "a
/// passenger will not pay more than the regular taxi service", we clamp B
/// at zero — riders pay solo fares and the driver keeps Σ f^s.
///
/// Conversely, Eq. 8 can drive an individual fare *negative* when one
/// rider's detour rate dominates σ while the pooled benefit is large
/// (their rebate then exceeds their own solo fare) — a corner the paper
/// does not address. We clamp each fare at zero; the unspent rebate stays
/// with the driver, so conservation (Σ fares = driver income) holds by
/// construction.
pub fn settle_episode(
    trips: &[PassengerTrip],
    shared_route_cost_s: f64,
    cfg: &PaymentConfig,
) -> Settlement {
    let no_share_total: f64 =
        trips.iter().map(|t| cfg.fare.fare_for_cost(t.direct_cost_s, cfg.speed_mps)).sum();
    let shared_route_fare = cfg.fare.fare_for_cost(shared_route_cost_s.max(0.0), cfg.speed_mps);
    let benefit = (no_share_total - shared_route_fare).max(0.0);

    let sigma: Vec<f64> = trips.iter().map(|t| t.detour_rate(cfg.eta)).collect();
    let sigma_sum: f64 = sigma.iter().sum();

    let fares: Vec<(RequestId, f64)> = trips
        .iter()
        .zip(&sigma)
        .map(|(t, &s)| {
            let solo = cfg.fare.fare_for_cost(t.direct_cost_s, cfg.speed_mps);
            let rebate = if sigma_sum > 0.0 { cfg.beta * benefit * s / sigma_sum } else { 0.0 };
            (t.request, (solo - rebate).max(0.0))
        })
        .collect();

    // Conservation by construction: the driver receives exactly what the
    // riders pay (= Σf^s − β·B when no fare clamps bind, more otherwise).
    let driver_income = fares.iter().map(|(_, f)| f).sum();
    Settlement { fares, driver_income, benefit, no_share_total, shared_route_fare }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trip(id: u32, shared: f64, direct: f64) -> PassengerTrip {
        PassengerTrip { request: RequestId(id), shared_cost_s: shared, direct_cost_s: direct }
    }

    fn cfg() -> PaymentConfig {
        PaymentConfig::default()
    }

    #[test]
    fn conservation_fares_plus_driver() {
        // Two riders sharing: each solo 4 km (960 s), shared route 6 km.
        let trips = [trip(0, 1100.0, 960.0), trip(1, 1000.0, 960.0)];
        let s = settle_episode(&trips, 1440.0, &cfg());
        let total_fares: f64 = s.fares.iter().map(|(_, f)| f).sum();
        // Σ fares = Σ f^s − β·B here (no clamp binds), equalling the
        // driver's income.
        assert!((total_fares - s.driver_income).abs() < 1e-9);
        assert!((s.driver_income - (s.no_share_total - 0.8 * s.benefit)).abs() < 1e-9);
        // Driver earns at least the shared-route fare.
        assert!(s.driver_income >= s.shared_route_fare - 1e-9);
    }

    #[test]
    fn no_rider_pays_more_than_solo() {
        let trips = [trip(0, 1400.0, 960.0), trip(1, 980.0, 960.0), trip(2, 2000.0, 1800.0)];
        let s = settle_episode(&trips, 2400.0, &cfg());
        let c = cfg();
        for (t, (_, fare)) in trips.iter().zip(&s.fares) {
            let solo = c.fare.fare_for_cost(t.direct_cost_s, c.speed_mps);
            assert!(*fare <= solo + 1e-9, "rider pays {fare} > solo {solo}");
            assert!(*fare > 0.0);
        }
    }

    #[test]
    fn larger_detour_gets_larger_rebate() {
        let trips = [trip(0, 1400.0, 960.0), trip(1, 980.0, 960.0)];
        let c = cfg();
        let s = settle_episode(&trips, 1700.0, &c);
        let solo0 = c.fare.fare_for_cost(960.0, c.speed_mps);
        let rebate0 = solo0 - s.fares[0].1;
        let rebate1 = solo0 - s.fares[1].1;
        assert!(rebate0 > rebate1, "rebates {rebate0} vs {rebate1}");
        assert!(rebate1 > 0.0, "η guarantees even near-zero detour earns a rebate");
    }

    #[test]
    fn driver_earns_more_than_shared_route_fare_when_beneficial() {
        let trips = [trip(0, 1100.0, 960.0), trip(1, 1000.0, 960.0)];
        let s = settle_episode(&trips, 1300.0, &cfg());
        assert!(s.benefit > 0.0);
        assert!(s.driver_income > s.shared_route_fare);
        assert!(s.driver_income < s.no_share_total);
    }

    #[test]
    fn negative_benefit_clamped() {
        // Shared route absurdly long: B would be negative.
        let trips = [trip(0, 5000.0, 960.0)];
        let c = cfg();
        let s = settle_episode(&trips, 20_000.0, &c);
        assert_eq!(s.benefit, 0.0);
        let solo = c.fare.fare_for_cost(960.0, c.speed_mps);
        assert!((s.fares[0].1 - solo).abs() < 1e-9);
        assert!((s.driver_income - s.no_share_total).abs() < 1e-9);
    }

    #[test]
    fn zero_detour_riders_still_benefit_via_eta() {
        // Identical pick-up/drop-off pairs: zero detour for both.
        let trips = [trip(0, 960.0, 960.0), trip(1, 960.0, 960.0)];
        let c = cfg();
        let s = settle_episode(&trips, 960.0, &c);
        assert!(s.benefit > 0.0, "two solo fares vs one route fare");
        let solo = c.fare.fare_for_cost(960.0, c.speed_mps);
        for (_, f) in &s.fares {
            assert!(*f < solo, "η must distribute the benefit");
        }
        // Equal σ → equal fares.
        assert!((s.fares[0].1 - s.fares[1].1).abs() < 1e-9);
    }

    #[test]
    fn empty_episode_is_neutral() {
        let s = settle_episode(&[], 0.0, &cfg());
        assert!(s.fares.is_empty());
        assert_eq!(s.no_share_total, 0.0);
        // Flag-fall for a zero-length route; benefit clamped at 0.
        assert_eq!(s.benefit, 0.0);
    }

    #[test]
    fn detour_rate_formula() {
        let t = trip(0, 1200.0, 1000.0);
        assert!((t.detour_rate(0.01) - 0.21).abs() < 1e-12);
        // Shared marginally below direct (numerical noise) clamps at η.
        let t2 = trip(0, 999.0, 1000.0);
        assert!((t2.detour_rate(0.01) - 0.01).abs() < 1e-12);
    }
}
