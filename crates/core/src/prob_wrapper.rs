//! Grafts probabilistic routing onto any dispatch scheme.
//!
//! Fig. 16 of the paper combines basic or probabilistic routing with each
//! of T-Share, pGreedyDP and mT-Share. This wrapper leaves the inner
//! scheme's matching untouched and re-routes the committed legs with
//! Algorithm 4 whenever the chosen taxi has enough idle seats, falling
//! back to the original legs when the biased route would break a deadline.

use crate::config::MtShareConfig;
use crate::context::MobilityContext;
use crate::routing::SegmentRouter;
use crate::scheduling::probabilistic_enabled;
use mtshare_model::{
    evaluate_schedule, Assignment, DispatchOutcome, DispatchScheme, EvalContext, RideRequest, Taxi,
    TaxiId, Time, World,
};
use mtshare_routing::Path;
use std::sync::Arc;

/// A dispatch scheme whose committed routes are re-planned
/// probabilistically.
pub struct WithProbabilisticRouting<S: DispatchScheme> {
    inner: S,
    ctx: Arc<MobilityContext>,
    cfg: MtShareConfig,
    router: SegmentRouter,
    name: String,
}

impl<S: DispatchScheme> WithProbabilisticRouting<S> {
    /// Wraps `inner`, planning probabilistic routes with `ctx`/`cfg`.
    pub fn new(
        inner: S,
        graph: &mtshare_road::RoadNetwork,
        ctx: Arc<MobilityContext>,
        cfg: MtShareConfig,
    ) -> Self {
        let name = format!("{}+prob", inner.name());
        Self { inner, ctx, cfg: cfg.with_probabilistic(), router: SegmentRouter::new(graph), name }
    }

    /// Access to the wrapped scheme.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn reroute(
        &mut self,
        req: &RideRequest,
        a: Assignment,
        now: Time,
        world: &World<'_>,
    ) -> Assignment {
        let taxi = world.taxi(a.taxi);
        if !probabilistic_enabled(taxi, &self.cfg, world) {
            return a;
        }
        let pos = taxi.position_at(now);
        // Taxi direction: toward the centroid of scheduled drop-offs.
        let drops: Vec<_> = a
            .schedule
            .events()
            .iter()
            .filter(|e| e.kind == mtshare_model::EventKind::Dropoff)
            .map(|e| world.graph.point(e.node))
            .collect();
        if drops.is_empty() {
            return a;
        }
        let centroid = mtshare_road::GeoPoint::new(
            drops.iter().map(|p| p.lat).sum::<f64>() / drops.len() as f64,
            drops.iter().map(|p| p.lng).sum::<f64>() / drops.len() as f64,
        );
        let dir = world.graph.point(pos).displacement_m(&centroid);

        let mut legs: Vec<Path> = Vec::with_capacity(a.schedule.len());
        let mut from = pos;
        for ev in a.schedule.events() {
            let Some(shortest) = world.oracle.cost(from, ev.node) else { return a };
            let budget = shortest * (1.0 + self.cfg.epsilon);
            let Some(leg) = self.router.probabilistic_leg(
                world.graph,
                &self.ctx,
                &self.cfg,
                world.cache,
                from,
                ev.node,
                dir,
                budget,
            ) else {
                return a;
            };
            from = ev.node;
            legs.push(leg);
        }
        // Verify deadlines with the biased legs; keep the original plan on
        // any violation.
        let requests = world.requests;
        let lookup = |id| requests.get(id);
        let ectx = EvalContext {
            start_node: pos,
            start_time: now,
            initial_load: taxi.onboard_load(world.requests),
            capacity: taxi.capacity as u32,
            requests: &lookup,
        };
        let mut k = 0usize;
        let Some(eval) = evaluate_schedule(&a.schedule, &ectx, |_, _| {
            let c = legs.get(k).map(|l| l.cost_s);
            k += 1;
            c
        }) else {
            return a;
        };
        let remaining = taxi.route.as_ref().map(|r| (r.end_time() - now).max(0.0)).unwrap_or(0.0);
        let _ = req;
        Assignment {
            taxi: a.taxi,
            schedule: a.schedule,
            legs,
            detour_cost_s: eval.total_cost_s - remaining,
        }
    }
}

impl<S: DispatchScheme> DispatchScheme for WithProbabilisticRouting<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn install(&mut self, world: &World<'_>) {
        self.inner.install(world);
    }

    fn set_obs(&mut self, obs: mtshare_obs::Obs) {
        self.router.set_obs(obs.clone());
        self.inner.set_obs(obs);
    }

    fn dispatch(&mut self, req: &RideRequest, now: Time, world: &World<'_>) -> DispatchOutcome {
        let mut out = self.inner.dispatch(req, now, world);
        if let Some(a) = out.assignment.take() {
            out.assignment = Some(self.reroute(req, a, now, world));
        }
        out
    }

    fn dispatch_offline(
        &mut self,
        req: &RideRequest,
        encountered_by: TaxiId,
        now: Time,
        world: &World<'_>,
    ) -> DispatchOutcome {
        let mut out = self.inner.dispatch_offline(req, encountered_by, now, world);
        if let Some(a) = out.assignment.take() {
            out.assignment = Some(self.reroute(req, a, now, world));
        }
        out
    }

    fn after_assign(&mut self, taxi: &Taxi, world: &World<'_>) {
        self.inner.after_assign(taxi, world);
    }

    fn on_taxi_progress(&mut self, taxi: &Taxi, now: Time, world: &World<'_>) {
        self.inner.on_taxi_progress(taxi, now, world);
    }

    fn on_taxi_removed(&mut self, taxi: &Taxi, world: &World<'_>) {
        self.inner.on_taxi_removed(taxi, world);
    }

    fn indexed_taxis(&self) -> Option<Vec<TaxiId>> {
        self.inner.indexed_taxis()
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        // The wrapper itself is stateless (its router is scratch); the
        // inner scheme's indexes are the only state worth a checkpoint.
        self.inner.snapshot_state()
    }

    fn restore_state(&mut self, bytes: &[u8], world: &World<'_>) -> Result<(), String> {
        self.inner.restore_state(bytes, world)
    }

    fn index_memory_bytes(&self) -> usize {
        self.inner.index_memory_bytes() + self.ctx.memory_bytes()
    }

    fn uses_probabilistic_routing(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::PartitionStrategy;
    use mtshare_mobility::Trip;
    use mtshare_model::{RequestId, RequestStore, Taxi};
    use mtshare_road::{grid_city, GridCityConfig, NodeId};
    use mtshare_routing::{HotNodeOracle, PathCache};
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    /// Minimal inner scheme: always assigns taxi 0 with a direct schedule.
    struct Direct;
    impl DispatchScheme for Direct {
        fn name(&self) -> &str {
            "direct"
        }
        fn install(&mut self, _world: &World<'_>) {}
        fn dispatch(&mut self, req: &RideRequest, now: Time, world: &World<'_>) -> DispatchOutcome {
            let taxi = world.taxi(TaxiId(0));
            let pos = taxi.position_at(now);
            let schedule = taxi.schedule.with_insertion(req, 0, 1);
            let mut legs = Vec::new();
            let mut from = pos;
            for ev in schedule.events() {
                legs.push(if from == ev.node {
                    Path::trivial(from)
                } else {
                    world.cache.path(from, ev.node).unwrap()
                });
                from = ev.node;
            }
            let total: f64 = legs.iter().map(|l| l.cost_s).sum();
            DispatchOutcome {
                assignment: Some(Assignment {
                    taxi: TaxiId(0),
                    schedule,
                    legs,
                    detour_cost_s: total,
                }),
                candidates_examined: 1,
                feasible_instances: 1,
            }
        }
    }

    #[test]
    fn wrapper_keeps_validity_and_may_lengthen_route() {
        let graph = std::sync::Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let mut rng = SmallRng::seed_from_u64(11);
        let trips: Vec<_> = (0..600)
            .map(|_| Trip {
                origin: NodeId(rng.gen_range(0..400)),
                destination: NodeId(300 + rng.gen_range(0u32..100)),
            })
            .collect();
        let ctx = MobilityContext::build(&graph, &trips, 16, 4, 7, PartitionStrategy::Bipartite);
        let mut wrapped =
            WithProbabilisticRouting::new(Direct, &graph, ctx, MtShareConfig::default());
        assert_eq!(wrapped.name(), "direct+prob");
        assert!(wrapped.uses_probabilistic_routing());

        let cache = PathCache::new(graph.clone());
        let oracle = HotNodeOracle::new(graph.clone());
        let taxis = vec![Taxi::new(TaxiId(0), 4, NodeId(0))];
        let mut requests = RequestStore::new();
        let direct_cost = cache.cost(NodeId(21), NodeId(399)).unwrap();
        oracle.pin(NodeId(21));
        oracle.pin(NodeId(399));
        let req = RideRequest {
            id: RequestId(0),
            release_time: 0.0,
            origin: NodeId(21),
            destination: NodeId(399),
            passengers: 1,
            deadline: 1e9,
            direct_cost_s: direct_cost,
            offline: false,
        };
        requests.push(req.clone());
        let world = World {
            graph: &graph,
            cache: &cache,
            oracle: &oracle,
            taxis: &taxis,
            requests: &requests,
        };
        let out = wrapped.dispatch(&req, 0.0, &world);
        let a = out.assignment.unwrap();
        // Legs still connect and total cost within the (1+ε) budget per leg.
        let mut from = NodeId(0);
        for (leg, ev) in a.legs.iter().zip(a.schedule.events()) {
            assert_eq!(leg.start(), from);
            assert_eq!(leg.end(), ev.node);
            let shortest = cache.cost(leg.start(), leg.end()).unwrap();
            assert!(leg.cost_s <= shortest * 2.0 + 1e-6);
            from = ev.node;
        }
        assert_eq!(wrapped.inner().name(), "direct");
    }
}
