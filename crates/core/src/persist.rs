//! [`Persist`] impls for the dual mT-Share taxi indexes.
//!
//! Both indexes are *history-dependent*: partition lists keep stable
//! insertion order among equal arrival times, and mobility-cluster slots
//! (plus the clusterer's recycled free list) depend on the exact
//! insert/remove sequence. That history leaks into candidate-set
//! composition and therefore into dispatch decisions, so a warm restart
//! snapshots the indexes faithfully instead of re-running `install` —
//! a rebuilt index could order candidates differently and diverge from
//! the uninterrupted run at the first post-resume dispatch.
//!
//! Decoding validates cross-structure invariants (a taxi appears in
//! `lists[p]` iff `p` is in its partition set; cluster member lists agree
//! with the clusterer's per-slot counts) so corrupted snapshot payloads
//! are rejected rather than mis-restored.

use crate::index::{MobilityClusterIndex, PartitionTaxiIndex};
use crate::payment::PassengerTrip;
use mtshare_mobility::{ClusterId, MobilityClusterer, MobilityVector};
use mtshare_model::{RequestId, TaxiId, Time};
use mtshare_persist::{DecodeError, Decoder, Encoder, Persist};

impl Persist for PassengerTrip {
    fn encode(&self, enc: &mut Encoder) {
        self.request.encode(enc);
        enc.f64(self.shared_cost_s);
        enc.f64(self.direct_cost_s);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(PassengerTrip {
            request: RequestId::decode(dec)?,
            shared_cost_s: dec.f64()?,
            direct_cost_s: dec.f64()?,
        })
    }
}

impl Persist for PartitionTaxiIndex {
    fn encode(&self, enc: &mut Encoder) {
        enc.usize(self.lists.len());
        for list in &self.lists {
            enc.seq(list);
        }
        enc.usize(self.taxi_partitions.len());
        for ps in &self.taxi_partitions {
            enc.seq(ps);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let kappa = dec.usize()?;
        if kappa > u16::MAX as usize + 1 {
            return Err(DecodeError::Invalid("partition count exceeds u16 id space"));
        }
        let mut lists: Vec<Vec<(Time, TaxiId)>> = Vec::with_capacity(kappa.min(1 << 16));
        for _ in 0..kappa {
            let list: Vec<(Time, TaxiId)> = dec.seq()?;
            if !list.windows(2).all(|w| w[0].0 <= w[1].0) {
                return Err(DecodeError::Invalid("partition list not arrival-sorted"));
            }
            lists.push(list);
        }
        let n_taxis = dec.usize()?;
        let mut taxi_partitions: Vec<Vec<u16>> = Vec::with_capacity(n_taxis.min(1 << 20));
        for _ in 0..n_taxis {
            let ps: Vec<u16> = dec.seq()?;
            if ps.iter().any(|&p| p as usize >= kappa) {
                return Err(DecodeError::Invalid("taxi indexed in out-of-range partition"));
            }
            let mut sorted = ps.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != ps.len() {
                return Err(DecodeError::Invalid("duplicate partition in taxi's partition set"));
            }
            taxi_partitions.push(ps);
        }

        // Cross-consistency: a taxi has an entry in `lists[p]` iff `p` is
        // in its partition set, exactly once each way.
        let list_entries: usize = lists.iter().map(|l| l.len()).sum();
        let set_entries: usize = taxi_partitions.iter().map(|ps| ps.len()).sum();
        if list_entries != set_entries {
            return Err(DecodeError::Invalid("partition lists and taxi sets disagree in size"));
        }
        for (p, list) in lists.iter().enumerate() {
            for &(_, t) in list {
                let ok = taxi_partitions.get(t.index()).is_some_and(|ps| ps.contains(&(p as u16)));
                if !ok {
                    return Err(DecodeError::Invalid("listed taxi lacks matching partition set"));
                }
            }
        }
        Ok(PartitionTaxiIndex { lists, taxi_partitions })
    }
}

impl Persist for MobilityClusterIndex {
    fn encode(&self, enc: &mut Encoder) {
        self.clusterer.encode(enc);
        enc.usize(self.members.len());
        for m in &self.members {
            enc.seq(m);
        }
        enc.usize(self.taxi_entry.len());
        for e in &self.taxi_entry {
            e.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let clusterer = MobilityClusterer::decode(dec)?;
        let n_members = dec.usize()?;
        let mut members: Vec<Vec<TaxiId>> = Vec::with_capacity(n_members.min(1 << 20));
        for _ in 0..n_members {
            members.push(dec.seq()?);
        }
        let n_taxis = dec.usize()?;
        let mut taxi_entry: Vec<Option<(ClusterId, MobilityVector)>> =
            Vec::with_capacity(n_taxis.min(1 << 20));
        for _ in 0..n_taxis {
            taxi_entry.push(Option::<(ClusterId, MobilityVector)>::decode(dec)?);
        }

        // Cross-consistency: every registered taxi sits in exactly the
        // member list of its cluster, and member lists agree with the
        // clusterer's per-slot counts.
        for (i, entry) in taxi_entry.iter().enumerate() {
            if let Some((c, _)) = entry {
                let hits = members
                    .get(c.index())
                    .map_or(0, |m| m.iter().filter(|&&t| t.index() == i).count());
                if hits != 1 {
                    return Err(DecodeError::Invalid("taxi not in its cluster's member list"));
                }
            }
        }
        for (ci, m) in members.iter().enumerate() {
            let id = ClusterId(ci as u32);
            if m.len() != clusterer.member_count(id) as usize {
                return Err(DecodeError::Invalid("member list disagrees with clusterer count"));
            }
            for &t in m {
                let ok = taxi_entry
                    .get(t.index())
                    .is_some_and(|e| e.as_ref().is_some_and(|(c, _)| c.index() == ci));
                if !ok {
                    return Err(DecodeError::Invalid("member taxi lacks matching entry"));
                }
            }
        }
        Ok(MobilityClusterIndex { clusterer, members, taxi_entry })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{MobilityContext, PartitionStrategy};
    use mtshare_model::{RequestId, RequestStore, RideRequest, Schedule, Taxi, TimedRoute};
    use mtshare_road::{grid_city, GridCityConfig, NodeId, RoadNetwork};
    use mtshare_routing::{Dijkstra, Path};
    use std::sync::Arc;

    fn setup() -> (Arc<RoadNetwork>, Arc<MobilityContext>) {
        let g = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let trips: Vec<_> = (0..300)
            .map(|i| mtshare_mobility::Trip {
                origin: NodeId(i % 400),
                destination: NodeId((i * 7 + 13) % 400),
            })
            .collect();
        let ctx = MobilityContext::build(&g, &trips, 9, 3, 5, PartitionStrategy::Grid);
        (g, ctx)
    }

    fn mkreq(id: u32, origin: u32, dest: u32) -> RideRequest {
        RideRequest {
            id: RequestId(id),
            release_time: 0.0,
            origin: NodeId(origin),
            destination: NodeId(dest),
            passengers: 1,
            deadline: 1e9,
            direct_cost_s: 100.0,
            offline: false,
        }
    }

    fn busy_taxi(g: &RoadNetwork, id: u32, from: u32, req: &RideRequest) -> Taxi {
        let mut taxi = Taxi::new(mtshare_model::TaxiId(id), 4, NodeId(from));
        let mut d = Dijkstra::new(g);
        let leg: Path = d.path(g, NodeId(from), req.destination).unwrap();
        let s = Schedule::new().with_insertion(req, 0, 1);
        let legs = vec![leg, Path::trivial(req.destination)];
        let route = TimedRoute::build(NodeId(from), 0.0, &legs, &s);
        taxi.assigned.push(req.id);
        taxi.set_plan(s, route, 0.0);
        taxi
    }

    #[test]
    fn partition_index_round_trips_canonically() {
        let (g, ctx) = setup();
        let mut idx = PartitionTaxiIndex::new(ctx.kappa(), 3);
        let r = mkreq(0, 399, 399);
        let taxis = [
            busy_taxi(&g, 0, 0, &r),
            Taxi::new(mtshare_model::TaxiId(1), 4, NodeId(42)),
            Taxi::new(mtshare_model::TaxiId(2), 4, NodeId(200)),
        ];
        for t in &taxis {
            idx.update_taxi(t, &ctx, 0.0, 3600.0);
        }
        // Remove one so a taxi with an empty set is covered too.
        idx.remove_taxi(mtshare_model::TaxiId(2));

        let bytes = idx.to_bytes();
        let back = PartitionTaxiIndex::from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bytes(), bytes, "canonical bytes round trip");
        assert_eq!(back.partition_count(), idx.partition_count());
        assert_eq!(back.fleet_size(), idx.fleet_size());
        assert_eq!(back.indexed_taxis(), idx.indexed_taxis());
        for p in 0..ctx.kappa() {
            let p = mtshare_mobility::PartitionId(p as u16);
            assert_eq!(back.taxis_in(p), idx.taxis_in(p));
        }
    }

    #[test]
    fn partition_index_rejects_inconsistent_payloads() {
        // A list entry whose taxi does not record the partition.
        let mut enc = Encoder::new();
        enc.usize(1); // kappa = 1
        enc.seq(&[(5.0f64, mtshare_model::TaxiId(0))]);
        enc.usize(1); // one taxi...
        enc.seq::<u16>(&[]); // ...with an empty partition set
        assert!(PartitionTaxiIndex::from_bytes(&enc.into_bytes()).is_err());

        // Unsorted arrival list.
        let mut enc = Encoder::new();
        enc.usize(1);
        enc.seq(&[(5.0f64, mtshare_model::TaxiId(0)), (1.0f64, mtshare_model::TaxiId(0))]);
        enc.usize(1);
        enc.seq::<u16>(&[0, 0]);
        assert!(PartitionTaxiIndex::from_bytes(&enc.into_bytes()).is_err());

        // Out-of-range partition id.
        let mut enc = Encoder::new();
        enc.usize(1);
        enc.seq::<(f64, mtshare_model::TaxiId)>(&[]);
        enc.usize(1);
        enc.seq::<u16>(&[7]);
        assert!(PartitionTaxiIndex::from_bytes(&enc.into_bytes()).is_err());
    }

    #[test]
    fn cluster_index_round_trips_with_recycled_slots() {
        let (g, _) = setup();
        let mut reqs = RequestStore::new();
        reqs.push(mkreq(0, 0, 399));
        reqs.push(mkreq(1, 21, 398));
        reqs.push(mkreq(2, 399, 0));
        let mut idx = MobilityClusterIndex::new(0.7, 3);
        let mut taxis = Vec::new();
        for (i, (o, r)) in [(0u32, 0u32), (21, 1), (399, 2)].iter().enumerate() {
            let mut t = Taxi::new(mtshare_model::TaxiId(i as u32), 4, NodeId(*o));
            t.assigned.push(RequestId(*r));
            taxis.push(t);
        }
        for t in &taxis {
            idx.update_taxi(t, &g, &reqs, 0.0);
        }
        // Recycle: taxi 2 goes vacant, freeing its cluster slot.
        taxis[2].assigned.clear();
        idx.update_taxi(&taxis[2], &g, &reqs, 0.0);

        let bytes = idx.to_bytes();
        let back = MobilityClusterIndex::from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bytes(), bytes, "canonical bytes round trip");
        assert_eq!(back.cluster_count(), idx.cluster_count());
        assert_eq!(back.lambda(), idx.lambda());
        assert_eq!(back.indexed_taxis(), idx.indexed_taxis());
        for t in &taxis {
            assert_eq!(back.cluster_of(t.id), idx.cluster_of(t.id));
        }
        // The recycled slot is reused identically after restore.
        let mut a = idx;
        let mut b = back;
        taxis[2].assigned.push(RequestId(2));
        a.update_taxi(&taxis[2], &g, &reqs, 0.0);
        b.update_taxi(&taxis[2], &g, &reqs, 0.0);
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn cluster_index_rejects_mismatched_member_lists() {
        let (g, _) = setup();
        let mut reqs = RequestStore::new();
        reqs.push(mkreq(0, 0, 399));
        let mut idx = MobilityClusterIndex::new(0.7, 1);
        let mut t = Taxi::new(mtshare_model::TaxiId(0), 4, NodeId(0));
        t.assigned.push(RequestId(0));
        idx.update_taxi(&t, &g, &reqs, 0.0);
        // Corrupt the member list: drop the taxi but keep its entry.
        idx.members[0].clear();
        assert!(MobilityClusterIndex::from_bytes(&idx.to_bytes()).is_err());
    }
}
