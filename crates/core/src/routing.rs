//! Two-phase segment-level routing: basic (Algorithm 3) and probabilistic
//! (Algorithm 4).
//!
//! Both modes route each leg on the subgraph induced by the partitions the
//! filter (Algorithm 2) retained. Basic routing returns the shortest path;
//! probabilistic routing biases the path through partitions with a high
//! probability of meeting *suitable* offline requests (those travelling in
//! the taxi's direction), trading detour for encounter probability.

use crate::config::MtShareConfig;
use crate::context::MobilityContext;
use crate::filter::filter_partitions_observed;
use mtshare_mobility::PartitionId;
use mtshare_obs::{Obs, Stage};
use mtshare_road::{direction_cosine, NodeId, RoadNetwork};
use mtshare_routing::{MaskedDijkstra, NodeMask, Path, PathCache};

/// Counters exposed for the routing ablation benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Basic legs answered by the filtered subgraph search.
    pub filtered_hits: u64,
    /// Basic legs that fell back to the full-graph search (filter cut the
    /// optimal corridor or disconnected the endpoints).
    pub filtered_fallbacks: u64,
    /// Probabilistic legs that returned a biased route.
    pub prob_legs: u64,
    /// Probabilistic legs that fell back to the shortest path.
    pub prob_fallbacks: u64,
}

/// Reusable per-leg router (scratch state sized to the graph).
pub struct SegmentRouter {
    masked: MaskedDijkstra,
    mask: NodeMask,
    stats: RouterStats,
    obs: Obs,
    /// Scratch: per-partition suitability flags for Alg. 4 step ①.
    dest_flags: Vec<bool>,
    weights: Vec<f32>,
    /// Scratch: scored insertion slots, reused across `schedule_best`
    /// calls so Algorithm 1 allocates nothing per candidate.
    slots: Vec<crate::scheduling::ScoredSlot>,
    /// Per-dispatch memo of routed basic legs: materialization attempts
    /// within one `schedule_best` re-route identical `(from, to)` legs
    /// (a losing candidate's schedule prefix, the pickup→drop-off leg),
    /// and a basic leg is a pure function of its endpoints.
    leg_memo: Vec<(NodeId, NodeId, Path)>,
}

impl SegmentRouter {
    /// Creates a router for `graph` with telemetry disabled.
    pub fn new(graph: &RoadNetwork) -> Self {
        Self {
            masked: MaskedDijkstra::new(graph),
            mask: NodeMask::new(graph),
            stats: RouterStats::default(),
            obs: Obs::disabled(),
            dest_flags: Vec::new(),
            weights: vec![0.0; graph.node_count()],
            slots: Vec::new(),
            leg_memo: Vec::new(),
        }
    }

    /// Moves the scored-slot scratch buffer out (empty, capacity kept).
    pub(crate) fn take_slots(&mut self) -> Vec<crate::scheduling::ScoredSlot> {
        let mut slots = std::mem::take(&mut self.slots);
        slots.clear();
        slots
    }

    /// Returns the scratch buffer for reuse by the next dispatch.
    pub(crate) fn put_slots(&mut self, slots: Vec<crate::scheduling::ScoredSlot>) {
        self.slots = slots;
    }

    /// Starts a fresh per-dispatch basic-leg memo.
    pub(crate) fn begin_leg_memo(&mut self) {
        self.leg_memo.clear();
    }

    /// [`SegmentRouter::basic_leg`] answered from the per-dispatch memo
    /// when the same `(from, to)` leg was already routed since the last
    /// [`SegmentRouter::begin_leg_memo`]. Only basic legs memoize:
    /// probabilistic legs consume deadline slack statefully, so equal
    /// endpoints do not imply equal routes there.
    pub(crate) fn basic_leg_memo(
        &mut self,
        graph: &RoadNetwork,
        ctx: &MobilityContext,
        cfg: &MtShareConfig,
        cache: &PathCache,
        from: NodeId,
        to: NodeId,
    ) -> Option<Path> {
        if let Some((_, _, leg)) = self.leg_memo.iter().find(|(a, b, _)| *a == from && *b == to) {
            return Some(leg.clone());
        }
        let leg = self.basic_leg(graph, ctx, cfg, cache, from, to)?;
        self.leg_memo.push((from, to, leg.clone()));
        Some(leg)
    }

    /// Attaches a telemetry bus (stage spans + filter counters).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The telemetry bus in use (disabled handle by default).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Drains this router's counters to zero, returning the snapshot.
    pub fn take_stats(&mut self) -> RouterStats {
        std::mem::take(&mut self.stats)
    }

    /// Folds another router's drained counters into this one (used to
    /// merge per-worker routers after a speculative batch; the totals are
    /// determined by the work set, not by which worker did what).
    pub fn absorb_stats(&mut self, s: RouterStats) {
        self.stats.filtered_hits += s.filtered_hits;
        self.stats.filtered_fallbacks += s.filtered_fallbacks;
        self.stats.prob_legs += s.prob_legs;
        self.stats.prob_fallbacks += s.prob_fallbacks;
    }

    fn allow_partitions(&mut self, ctx: &MobilityContext, partitions: &[PartitionId]) {
        self.mask.clear();
        for &p in partitions {
            for &v in ctx.partitioning.members(p) {
                self.mask.allow(v);
            }
        }
    }

    /// Basic routing for one leg (Algorithm 3 body): partition filter, then
    /// Dijkstra on the induced subgraph. Falls back to the exact full-graph
    /// shortest path when the filtered search misses the optimum (tracked
    /// in [`RouterStats`]); the returned leg therefore always realizes the
    /// true shortest cost the feasibility evaluation assumed.
    pub fn basic_leg(
        &mut self,
        graph: &RoadNetwork,
        ctx: &MobilityContext,
        cfg: &MtShareConfig,
        cache: &PathCache,
        from: NodeId,
        to: NodeId,
    ) -> Option<Path> {
        let _span = self.obs.stage(Stage::Routing);
        self.basic_leg_inner(graph, ctx, cfg, cache, from, to)
    }

    /// [`SegmentRouter::basic_leg`] without the stage span, so the
    /// probabilistic fallback path does not double-count routing time.
    fn basic_leg_inner(
        &mut self,
        graph: &RoadNetwork,
        ctx: &MobilityContext,
        cfg: &MtShareConfig,
        cache: &PathCache,
        from: NodeId,
        to: NodeId,
    ) -> Option<Path> {
        if from == to {
            return Some(Path::trivial(from));
        }
        let filtered =
            filter_partitions_observed(graph, ctx, from, to, cfg.lambda, cfg.epsilon, &self.obs);
        self.allow_partitions(ctx, &filtered.partitions);
        let sub = self.masked.path_masked(graph, from, to, &self.mask, None);
        let exact_cost = cache.cost(from, to)?;
        match sub {
            // Both engines search in f32, so an optimal filtered path can
            // sit up to ~1 ulp (≈1e-4 s at city scale) from the cached
            // cost; genuine suboptimality is whole seconds. Snap accepted
            // legs to the canonical cached cost so every consumer sees the
            // exact value the feasibility evaluation assumed.
            Some(mut p) if p.cost_s <= exact_cost + 1e-3 => {
                self.stats.filtered_hits += 1;
                p.cost_s = exact_cost;
                Some(p)
            }
            _ => {
                self.stats.filtered_fallbacks += 1;
                cache.path(from, to)
            }
        }
    }

    /// Probabilistic routing for one leg (Algorithm 4 body).
    ///
    /// `taxi_dir` is the taxi's mobility-vector direction; `budget_s` caps
    /// the acceptable leg cost (validity proxy for the deadline check the
    /// caller re-runs on the whole schedule). Returns the biased leg, or
    /// the basic leg when no valid biased route exists within
    /// `cfg.prob_attempts` partition paths.
    #[allow(clippy::too_many_arguments)]
    pub fn probabilistic_leg(
        &mut self,
        graph: &RoadNetwork,
        ctx: &MobilityContext,
        cfg: &MtShareConfig,
        cache: &PathCache,
        from: NodeId,
        to: NodeId,
        taxi_dir: (f64, f64),
        budget_s: f64,
    ) -> Option<Path> {
        if from == to {
            return Some(Path::trivial(from));
        }
        let _span = self.obs.stage(Stage::Routing);
        let filtered =
            filter_partitions_observed(graph, ctx, from, to, cfg.lambda, cfg.epsilon, &self.obs);

        // ① probability of meeting suitable requests per retained partition.
        let kappa = ctx.kappa();
        let mut pi_prob = vec![0.0f32; filtered.partitions.len()];
        for (idx, &p) in filtered.partitions.iter().enumerate() {
            self.dest_flags.clear();
            self.dest_flags.resize(kappa, false);
            let lp = graph.point(ctx.partitioning.landmark(p));
            for q in ctx.partitioning.partitions() {
                if q == p {
                    continue;
                }
                let lq = graph.point(ctx.partitioning.landmark(q));
                if direction_cosine(lp.displacement_m(&lq), taxi_dir) >= cfg.lambda {
                    self.dest_flags[q.index()] = true;
                }
            }
            let mut prob = 0.0f32;
            for q in 0..kappa {
                if self.dest_flags[q] {
                    prob += ctx.partition_prob(p.index(), q);
                }
            }
            pi_prob[idx] = prob;
        }

        // ② enumerate landmark paths (partition paths) ranked by
        // accumulated probability.
        let paths = enumerate_partition_paths(
            ctx,
            &filtered.partitions,
            &pi_prob,
            ctx.partitioning.partition_of(from),
            ctx.partitioning.partition_of(to),
            cfg.prob_max_hops,
            cfg.prob_max_paths,
        );

        // ③ fine-grained route over each partition path until one is valid.
        let bias = cfg.prob_bias_weight_s as f32;
        for partition_path in paths.iter().take(cfg.prob_attempts) {
            self.allow_partitions(ctx, partition_path);
            // Vertex weight 1/ψ_c, scaled into edge-cost units so the bias
            // steers without dwarfing travel costs.
            for &p in partition_path {
                self.dest_flags.clear();
                self.dest_flags.resize(kappa, false);
                let lp = graph.point(ctx.partitioning.landmark(p));
                for q in ctx.partitioning.partitions() {
                    if q != p {
                        let lq = graph.point(ctx.partitioning.landmark(q));
                        if direction_cosine(lp.displacement_m(&lq), taxi_dir) >= cfg.lambda {
                            self.dest_flags[q.index()] = true;
                        }
                    }
                }
                for &v in ctx.partitioning.members(p) {
                    // ψ_c demand-weighted: expected suitable requests at v.
                    let w = ctx.transitions.observed(v) as f32;
                    let psi = w * ctx.transitions.prob_to_any(v, &self.dest_flags);
                    self.weights[v.index()] = bias / (1.0 + psi);
                }
            }
            let weights = &self.weights;
            let weight_fn = |n: NodeId| weights[n.index()];
            if let Some(p) = self.masked.path_masked(graph, from, to, &self.mask, Some(&weight_fn))
            {
                if p.cost_s <= budget_s + 1e-6 {
                    self.stats.prob_legs += 1;
                    return Some(p);
                }
            }
        }
        // No valid probabilistic route: fall back to the basic leg.
        self.stats.prob_fallbacks += 1;
        self.basic_leg_inner(graph, ctx, cfg, cache, from, to)
    }
}

/// DFS enumeration of simple partition paths from `src` to `dst` over the
/// adjacency restricted to `allowed`, returning up to `max_paths` paths
/// sorted by accumulated probability (descending) — Alg. 4 step ②.
fn enumerate_partition_paths(
    ctx: &MobilityContext,
    allowed: &[PartitionId],
    probs: &[f32],
    src: PartitionId,
    dst: PartitionId,
    max_hops: usize,
    max_paths: usize,
) -> Vec<Vec<PartitionId>> {
    use rustc_hash::FxHashMap;
    let index_of: FxHashMap<PartitionId, usize> =
        allowed.iter().enumerate().map(|(i, &p)| (p, i)).collect();
    if !index_of.contains_key(&src) || !index_of.contains_key(&dst) {
        return Vec::new();
    }
    let mut out: Vec<(f32, Vec<PartitionId>)> = Vec::new();
    let mut stack = vec![src];
    let mut on_path = vec![false; allowed.len()];
    on_path[index_of[&src]] = true;

    #[allow(clippy::too_many_arguments)] // recursive helper threading search state
    fn dfs(
        ctx: &MobilityContext,
        index_of: &rustc_hash::FxHashMap<PartitionId, usize>,
        probs: &[f32],
        dst: PartitionId,
        max_hops: usize,
        max_paths: usize,
        stack: &mut Vec<PartitionId>,
        on_path: &mut Vec<bool>,
        acc: f32,
        out: &mut Vec<(f32, Vec<PartitionId>)>,
    ) {
        if out.len() >= max_paths * 4 {
            return; // enumeration cap (we keep the best max_paths below)
        }
        let cur = *stack.last().expect("non-empty");
        if cur == dst {
            out.push((acc, stack.clone()));
            return;
        }
        if stack.len() > max_hops {
            return;
        }
        for &next in ctx.landmarks.neighbors(cur) {
            if let Some(&i) = index_of.get(&next) {
                if !on_path[i] {
                    on_path[i] = true;
                    stack.push(next);
                    dfs(
                        ctx,
                        index_of,
                        probs,
                        dst,
                        max_hops,
                        max_paths,
                        stack,
                        on_path,
                        acc + probs[i],
                        out,
                    );
                    stack.pop();
                    on_path[i] = false;
                }
            }
        }
    }

    let acc0 = probs[index_of[&src]];
    dfs(ctx, &index_of, probs, dst, max_hops, max_paths, &mut stack, &mut on_path, acc0, &mut out);
    out.sort_by(|a, b| b.0.total_cmp(&a.0));
    out.truncate(max_paths);
    out.into_iter().map(|(_, p)| p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::PartitionStrategy;
    use crate::filter::filter_partitions;
    use mtshare_mobility::Trip;
    use mtshare_road::{grid_city, GridCityConfig};
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    use std::sync::Arc;

    fn setup() -> (Arc<RoadNetwork>, Arc<MobilityContext>, PathCache) {
        let g = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let mut rng = SmallRng::seed_from_u64(4);
        // Bias historical demand toward the NE corner so probabilistic
        // routing has structure to exploit.
        let trips: Vec<_> = (0..1500)
            .map(|_| Trip {
                origin: NodeId(rng.gen_range(0..400)),
                destination: NodeId(300 + rng.gen_range(0u32..100)),
            })
            .collect();
        let ctx = MobilityContext::build(&g, &trips, 16, 4, 7, PartitionStrategy::Bipartite);
        let cache = PathCache::new(g.clone());
        (g, ctx, cache)
    }

    #[test]
    fn basic_leg_is_exactly_shortest() {
        let (g, ctx, cache) = setup();
        let cfg = MtShareConfig::default();
        let mut r = SegmentRouter::new(&g);
        for (s, t) in [(0u32, 399u32), (20, 360), (111, 7), (5, 5)] {
            let leg = r.basic_leg(&g, &ctx, &cfg, &cache, NodeId(s), NodeId(t)).unwrap();
            let want = cache.cost(NodeId(s), NodeId(t)).unwrap();
            assert!((leg.cost_s - want).abs() < 1e-6, "{s}->{t}");
            assert_eq!(leg.start(), NodeId(s));
            assert_eq!(leg.end(), NodeId(t));
        }
        let st = r.stats();
        assert!(st.filtered_hits + st.filtered_fallbacks >= 3);
    }

    #[test]
    fn probabilistic_leg_respects_budget_and_is_connected() {
        let (g, ctx, cache) = setup();
        let cfg = MtShareConfig::default().with_probabilistic();
        let mut r = SegmentRouter::new(&g);
        let shortest = cache.cost(NodeId(0), NodeId(399)).unwrap();
        let budget = shortest * 2.0;
        let dir = g.point(NodeId(0)).displacement_m(&g.point(NodeId(399)));
        let leg = r
            .probabilistic_leg(&g, &ctx, &cfg, &cache, NodeId(0), NodeId(399), dir, budget)
            .unwrap();
        assert!(leg.cost_s <= budget + 1e-6);
        assert!(leg.cost_s >= shortest - 1e-6);
        // Valid walk.
        for w in leg.nodes.windows(2) {
            assert!(g.direct_edge_cost(w[0], w[1]).is_some());
        }
    }

    #[test]
    fn probabilistic_tight_budget_falls_back_to_shortest() {
        let (g, ctx, cache) = setup();
        let cfg = MtShareConfig::default().with_probabilistic();
        let mut r = SegmentRouter::new(&g);
        let shortest = cache.cost(NodeId(0), NodeId(399)).unwrap();
        let dir = g.point(NodeId(0)).displacement_m(&g.point(NodeId(399)));
        // Budget exactly the shortest cost: only the shortest path fits.
        let leg = r
            .probabilistic_leg(&g, &ctx, &cfg, &cache, NodeId(0), NodeId(399), dir, shortest)
            .unwrap();
        assert!((leg.cost_s - shortest).abs() < 1e-6);
    }

    #[test]
    fn partition_path_enumeration_connects_endpoints() {
        let (g, ctx, _) = setup();
        let filtered = filter_partitions(&g, &ctx, NodeId(0), NodeId(399), -1.0, 5.0);
        let probs = vec![1.0f32; filtered.partitions.len()];
        let paths = enumerate_partition_paths(
            &ctx,
            &filtered.partitions,
            &probs,
            ctx.partitioning.partition_of(NodeId(0)),
            ctx.partitioning.partition_of(NodeId(399)),
            12,
            16,
        );
        assert!(!paths.is_empty());
        for p in &paths {
            assert_eq!(*p.first().unwrap(), ctx.partitioning.partition_of(NodeId(0)));
            assert_eq!(*p.last().unwrap(), ctx.partitioning.partition_of(NodeId(399)));
            // Consecutive partitions adjacent.
            for w in p.windows(2) {
                assert!(ctx.landmarks.neighbors(w[0]).contains(&w[1]));
            }
            // Simple path.
            let set: std::collections::HashSet<_> = p.iter().collect();
            assert_eq!(set.len(), p.len());
        }
    }

    #[test]
    fn enumeration_ranks_by_probability() {
        let (g, ctx, _) = setup();
        let filtered = filter_partitions(&g, &ctx, NodeId(0), NodeId(399), -1.0, 5.0);
        // Give one mid partition huge probability.
        let mut probs = vec![0.01f32; filtered.partitions.len()];
        if probs.len() > 3 {
            probs[2] = 100.0;
        }
        let paths = enumerate_partition_paths(
            &ctx,
            &filtered.partitions,
            &probs,
            ctx.partitioning.partition_of(NodeId(0)),
            ctx.partitioning.partition_of(NodeId(399)),
            12,
            8,
        );
        if paths.len() >= 2 {
            let score = |p: &Vec<PartitionId>| -> f32 {
                p.iter()
                    .map(|q| {
                        let i = filtered.partitions.iter().position(|x| x == q).unwrap();
                        probs[i]
                    })
                    .sum()
            };
            assert!(score(&paths[0]) >= score(&paths[1]));
        }
    }
}
