//! The mT-Share dispatch scheme: dual indexing + mobility-aware matching.

use crate::candidates::candidate_taxis;
use crate::config::MtShareConfig;
use crate::context::MobilityContext;
use crate::index::{MobilityClusterIndex, PartitionTaxiIndex};
use crate::routing::{RouterStats, SegmentRouter};
use crate::scheduling::schedule_best;
use mtshare_model::{
    make_engine, DispatchOutcome, DispatchScheme, EngineStats, RideRequest, ScheduleEngine,
    SpeculativeOutcome, Taxi, TaxiId, Time, WindowRow, World,
};
use mtshare_obs::{Obs, Stage};
use mtshare_par::try_par_map_with;
use mtshare_persist::{Decoder, Encoder, Persist};
use mtshare_road::RoadNetwork;

/// One speculative batch worker: a private router plus the number of
/// requests this worker scored (reported as per-worker utilization).
struct SpecWorker {
    router: SegmentRouter,
    items: u64,
}

/// The mT-Share system (Sec. IV). Construct with a prebuilt
/// [`MobilityContext`] (partitions + landmarks + transition statistics) so
/// the offline artifacts can be shared across experiment runs.
pub struct MtShare {
    cfg: MtShareConfig,
    ctx: std::sync::Arc<MobilityContext>,
    pindex: PartitionTaxiIndex,
    mindex: MobilityClusterIndex,
    /// Insertion-scoring engine behind `--scheduler dp|dtree`. Shared
    /// (`Arc`) so speculative batch workers can score through it
    /// concurrently; results are bit-identical across engines.
    engine: std::sync::Arc<dyn ScheduleEngine>,
    router: SegmentRouter,
    /// Per-worker routers for speculative batch scoring, grown lazily to
    /// `cfg.parallelism`; their counters are folded into `router` after
    /// every batch.
    spec_workers: Vec<SpecWorker>,
    obs: Obs,
    name: &'static str,
}

impl MtShare {
    /// Creates an mT-Share instance for a fleet of `n_taxis`.
    pub fn new(
        graph: &RoadNetwork,
        ctx: std::sync::Arc<MobilityContext>,
        cfg: MtShareConfig,
        n_taxis: usize,
    ) -> Self {
        let name = if cfg.batch {
            "mT-Share_batch"
        } else if cfg.probabilistic {
            "mT-Share_pro"
        } else {
            "mT-Share"
        };
        Self {
            pindex: PartitionTaxiIndex::new(ctx.kappa(), n_taxis),
            mindex: MobilityClusterIndex::new(cfg.lambda, n_taxis),
            engine: make_engine(cfg.scheduler, n_taxis),
            router: SegmentRouter::new(graph),
            spec_workers: Vec::new(),
            obs: Obs::disabled(),
            cfg,
            ctx,
            name,
        }
    }

    /// The mobility context in use.
    pub fn context(&self) -> &MobilityContext {
        &self.ctx
    }

    /// The configuration in use.
    pub fn config(&self) -> &MtShareConfig {
        &self.cfg
    }

    /// Routing counters (filter hits/fallbacks, probabilistic legs).
    pub fn router_stats(&self) -> RouterStats {
        self.router.stats()
    }

    fn reindex(&mut self, taxi: &Taxi, now: Time, world: &World<'_>) {
        self.pindex.update_taxi(taxi, &self.ctx, now, self.cfg.tmp_horizon_s);
        self.mindex.update_taxi(taxi, world.graph, world.requests, now);
    }

    /// Scores one request against the snapshot exactly like
    /// [`MtShare::dispatch`] would, recording the candidate fingerprint
    /// for commit-time validation. Shared (immutable) state only, so batch
    /// workers can run it concurrently; the per-worker `router` carries
    /// all scratch state.
    fn speculate_one(
        &self,
        req: &RideRequest,
        world: &World<'_>,
        router: &mut SegmentRouter,
    ) -> SpeculativeOutcome {
        let now = req.release_time;
        let candidates = {
            let _span = self.obs.stage(Stage::CandidateSearch);
            candidate_taxis(req, now, world, &self.ctx, &self.cfg, &self.pindex, &self.mindex)
        };
        let candidate_versions = candidates.iter().map(|&t| world.taxi(t).route_version).collect();
        let (assignment, examined, feasible) = schedule_best(
            req,
            &candidates,
            now,
            world,
            &self.ctx,
            &self.cfg,
            &*self.engine,
            router,
        );
        SpeculativeOutcome {
            outcome: DispatchOutcome {
                assignment,
                candidates_examined: examined,
                feasible_instances: feasible,
            },
            candidates,
            candidate_versions,
        }
    }

    /// Scores one batch-window row: the request's candidate set at the
    /// flush time `now` with the marginal insertion detour per candidate
    /// (`∞` when no deadline-feasible instance exists). Pure with respect
    /// to `(req, now, world)` — no scratch state survives the call — so
    /// rows computed by parallel workers and by the sequential fallback
    /// are bit-identical. Taxi→pickup costs are primed through the CH
    /// bucket many-to-one kernel so the per-candidate DP probes (and the
    /// winner's later materialization) hit a warm memo.
    fn score_row(&self, req: &RideRequest, now: Time, world: &World<'_>) -> WindowRow {
        let candidates = {
            let _span = self.obs.stage(Stage::CandidateSearch);
            candidate_taxis(req, now, world, &self.ctx, &self.cfg, &self.pindex, &self.mindex)
        };
        let candidate_versions: Vec<u64> =
            candidates.iter().map(|&t| world.taxi(t).route_version).collect();
        if !candidates.is_empty() {
            let positions: Vec<_> =
                candidates.iter().map(|&t| world.taxi(t).position_at(now)).collect();
            world.cache.prime_many_to_one(&positions, req.origin);
        }
        let mut costs = Vec::with_capacity(candidates.len());
        let mut feasible = 0usize;
        {
            let _span = self.obs.stage(self.engine.stage());
            for &taxi_id in &candidates {
                let taxi = world.taxi(taxi_id);
                match self
                    .engine
                    .best_insertion(taxi, req, now, world, &mut |a, b| world.oracle.cost(a, b))
                {
                    Some(ins) => {
                        costs.push(ins.delta_s);
                        feasible += 1;
                    }
                    None => costs.push(f64::INFINITY),
                }
            }
            self.obs.add_insertions(candidates.len() as u64, feasible as u64);
        }
        WindowRow { candidates, candidate_versions, costs, feasible }
    }
}

impl DispatchScheme for MtShare {
    fn name(&self) -> &str {
        self.name
    }

    fn install(&mut self, world: &World<'_>) {
        for taxi in world.taxis {
            self.reindex(taxi, 0.0, world);
        }
    }

    fn set_obs(&mut self, obs: Obs) {
        self.router.set_obs(obs.clone());
        for w in &mut self.spec_workers {
            w.router.set_obs(obs.clone());
        }
        self.obs = obs;
    }

    fn dispatch(&mut self, req: &RideRequest, now: Time, world: &World<'_>) -> DispatchOutcome {
        let candidates = {
            let _span = self.obs.stage(Stage::CandidateSearch);
            candidate_taxis(req, now, world, &self.ctx, &self.cfg, &self.pindex, &self.mindex)
        };
        let (assignment, examined, feasible) = schedule_best(
            req,
            &candidates,
            now,
            world,
            &self.ctx,
            &self.cfg,
            &*self.engine,
            &mut self.router,
        );
        DispatchOutcome { assignment, candidates_examined: examined, feasible_instances: feasible }
    }

    fn dispatch_offline(
        &mut self,
        req: &RideRequest,
        encountered_by: TaxiId,
        now: Time,
        world: &World<'_>,
    ) -> DispatchOutcome {
        // Per Sec. IV-C2: the encountering taxi is examined first; only if
        // it cannot validly serve the request does the server dispatch
        // another taxi.
        let (direct, _, feasible) = schedule_best(
            req,
            &[encountered_by],
            now,
            world,
            &self.ctx,
            &self.cfg,
            &*self.engine,
            &mut self.router,
        );
        if let Some(a) = direct {
            return DispatchOutcome {
                assignment: Some(a),
                candidates_examined: 1,
                feasible_instances: feasible,
            };
        }
        let mut out = self.dispatch(req, now, world);
        out.candidates_examined += 1;
        out
    }

    fn after_assign(&mut self, taxi: &Taxi, world: &World<'_>) {
        self.engine.after_assign(taxi, world);
        self.reindex(taxi, taxi.location_time.max(0.0), world);
    }

    fn on_taxi_progress(&mut self, taxi: &Taxi, now: Time, world: &World<'_>) {
        self.engine.on_taxi_progress(taxi, world);
        self.reindex(taxi, now, world);
    }

    fn on_taxi_removed(&mut self, taxi: &Taxi, _world: &World<'_>) {
        // Reconcile the dead taxi out of both indexes (`P_z.L_t` and
        // `C_a.L_t`) so candidate search never proposes it again, and drop
        // its incremental scheduling state.
        self.engine.on_taxi_removed(taxi);
        self.pindex.remove_taxi(taxi.id);
        self.mindex.remove_taxi(taxi.id);
    }

    fn indexed_taxis(&self) -> Option<Vec<TaxiId>> {
        let mut ids = self.pindex.indexed_taxis();
        ids.extend(self.mindex.indexed_taxis());
        ids.sort_unstable();
        ids.dedup();
        Some(ids)
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        // Both indexes are history-dependent (insertion order among equal
        // arrivals, recycled cluster slots) and that history steers
        // candidate order, so a warm restart restores them byte-for-byte
        // instead of re-running `install`.
        let mut enc = Encoder::new();
        self.pindex.encode(&mut enc);
        self.mindex.encode(&mut enc);
        Some(enc.into_bytes())
    }

    fn restore_state(&mut self, bytes: &[u8], world: &World<'_>) -> Result<(), String> {
        let mut dec = Decoder::new(bytes);
        let pindex =
            PartitionTaxiIndex::decode(&mut dec).map_err(|e| format!("partition index: {e}"))?;
        let mindex =
            MobilityClusterIndex::decode(&mut dec).map_err(|e| format!("cluster index: {e}"))?;
        if !dec.is_done() {
            return Err("trailing bytes in mT-Share index snapshot".into());
        }
        if pindex.partition_count() != self.ctx.kappa() {
            return Err(format!(
                "snapshot has {} partitions, context has {}",
                pindex.partition_count(),
                self.ctx.kappa()
            ));
        }
        if pindex.fleet_size() != world.taxis.len() || mindex.fleet_size() != world.taxis.len() {
            return Err(format!(
                "snapshot fleet size {}/{} does not match world fleet {}",
                pindex.fleet_size(),
                mindex.fleet_size(),
                world.taxis.len()
            ));
        }
        if mindex.lambda().to_bits() != self.cfg.lambda.to_bits() {
            return Err(format!(
                "snapshot lambda {} does not match configured {}",
                mindex.lambda(),
                self.cfg.lambda
            ));
        }
        self.pindex = pindex;
        self.mindex = mindex;
        // The snapshot carries no engine state: incremental trees are
        // rebuilt lazily from the restored plans, so the on-disk format is
        // identical under either scheduler.
        self.engine.invalidate_all();
        Ok(())
    }

    fn index_memory_bytes(&self) -> usize {
        self.pindex.memory_bytes() + self.mindex.memory_bytes() + self.ctx.memory_bytes()
    }

    fn uses_probabilistic_routing(&self) -> bool {
        self.cfg.probabilistic
    }

    fn scheduler_stats(&self) -> EngineStats {
        self.engine.stats()
    }

    fn dispatch_batch_speculative(
        &mut self,
        reqs: &[RideRequest],
        world: &World<'_>,
    ) -> Option<Vec<SpeculativeOutcome>> {
        let workers = self.cfg.parallelism.max(1).min(reqs.len().max(1));
        while self.spec_workers.len() < workers {
            let mut router = SegmentRouter::new(world.graph);
            router.set_obs(self.obs.clone());
            self.spec_workers.push(SpecWorker { router, items: 0 });
        }
        // Move the worker pool out so the workers can share `&self`
        // read-only while each mutates its own router.
        let mut pool = std::mem::take(&mut self.spec_workers);
        let result = {
            let this = &*self;
            try_par_map_with(&mut pool[..workers], reqs.len(), |i, w| {
                w.items += 1;
                this.speculate_one(&reqs[i], world, &mut w.router)
            })
        };
        match result {
            Ok(outs) => {
                self.obs.record_batch(reqs.len() as u64);
                for (idx, w) in pool.iter_mut().enumerate() {
                    let s = w.router.take_stats();
                    self.router.absorb_stats(s);
                    self.obs.record_worker_items(idx, std::mem::take(&mut w.items));
                }
                self.spec_workers = pool;
                Some(outs)
            }
            Err(_) => {
                // A worker item panicked. The routers are scratch (rebuilt
                // per batch is fine) but may be mid-mutation: discard the
                // pool entirely and report `None` so the simulator degrades
                // this batch to its sequential arrival path. Recorded as a
                // profiling counter, never a trace event — the trace must
                // stay byte-identical across parallelism levels.
                self.obs.record_degraded_batch();
                self.spec_workers.clear();
                None
            }
        }
    }

    fn validate_speculative(
        &mut self,
        req: &RideRequest,
        now: Time,
        world: &World<'_>,
        spec: &SpeculativeOutcome,
    ) -> bool {
        // The speculative result depends only on the request, the frozen
        // offline artifacts, the canonical oracle/cache costs, and the
        // candidates' plans. So it still holds iff the candidate set is
        // unchanged (same taxis, same deterministic order) and no
        // candidate was re-planned since the snapshot: any commit touches
        // a taxi through `set_plan`, which bumps its `route_version`.
        let candidates =
            candidate_taxis(req, now, world, &self.ctx, &self.cfg, &self.pindex, &self.mindex);
        candidates == spec.candidates
            && spec
                .candidates
                .iter()
                .zip(&spec.candidate_versions)
                .all(|(&t, &v)| world.taxi(t).route_version == v)
    }

    fn score_window(
        &mut self,
        reqs: &[RideRequest],
        now: Time,
        world: &World<'_>,
    ) -> Option<Vec<WindowRow>> {
        if reqs.is_empty() {
            return Some(Vec::new());
        }
        let workers = self.cfg.parallelism.max(1).min(reqs.len());
        if workers > 1 {
            while self.spec_workers.len() < workers {
                let mut router = SegmentRouter::new(world.graph);
                router.set_obs(self.obs.clone());
                self.spec_workers.push(SpecWorker { router, items: 0 });
            }
            let mut pool = std::mem::take(&mut self.spec_workers);
            let result = {
                let this = &*self;
                try_par_map_with(&mut pool[..workers], reqs.len(), |i, w| {
                    w.items += 1;
                    this.score_row(&reqs[i], now, world)
                })
            };
            match result {
                Ok(rows) => {
                    self.obs.record_batch(reqs.len() as u64);
                    for (idx, w) in pool.iter_mut().enumerate() {
                        let s = w.router.take_stats();
                        self.router.absorb_stats(s);
                        self.obs.record_worker_items(idx, std::mem::take(&mut w.items));
                    }
                    self.spec_workers = pool;
                    return Some(rows);
                }
                Err(_) => {
                    // A worker item panicked; discard the pool and re-score
                    // the window sequentially below. `score_row` is a pure
                    // function of the frozen window, so the fallback rows
                    // are identical — recorded as a profiling counter only.
                    self.obs.record_degraded_batch();
                    self.spec_workers.clear();
                }
            }
        }
        Some(reqs.iter().map(|r| self.score_row(r, now, world)).collect())
    }

    fn dispatch_to(
        &mut self,
        req: &RideRequest,
        taxi: TaxiId,
        now: Time,
        world: &World<'_>,
    ) -> DispatchOutcome {
        // The assignment solver already chose the taxi; re-derive the best
        // insertion against the *current* world and materialize it — the
        // same revalidated-commit path Algorithm 1 uses, restricted to the
        // winner.
        let (assignment, examined, feasible) = schedule_best(
            req,
            &[taxi],
            now,
            world,
            &self.ctx,
            &self.cfg,
            &*self.engine,
            &mut self.router,
        );
        DispatchOutcome { assignment, candidates_examined: examined, feasible_instances: feasible }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::PartitionStrategy;
    use mtshare_mobility::Trip;
    use mtshare_model::{RequestId, RequestStore, RideRequest, TimedRoute};
    use mtshare_road::{grid_city, GridCityConfig, NodeId};
    use mtshare_routing::{HotNodeOracle, PathCache};
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    use std::sync::Arc;

    struct Sim {
        graph: Arc<RoadNetwork>,
        cache: PathCache,
        oracle: HotNodeOracle,
        taxis: Vec<Taxi>,
        requests: RequestStore,
        scheme: MtShare,
    }

    impl Sim {
        fn new(n_taxis: usize, probabilistic: bool) -> Self {
            let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
            let mut rng = SmallRng::seed_from_u64(7);
            let trips: Vec<_> = (0..800)
                .map(|_| Trip {
                    origin: NodeId(rng.gen_range(0..400)),
                    destination: NodeId(rng.gen_range(0..400)),
                })
                .collect();
            let ctx =
                MobilityContext::build(&graph, &trips, 16, 4, 7, PartitionStrategy::Bipartite);
            let cfg = if probabilistic {
                MtShareConfig::default().with_probabilistic()
            } else {
                MtShareConfig::default()
            };
            let scheme = MtShare::new(&graph, ctx, cfg, n_taxis);
            let mut taxis = Vec::new();
            for i in 0..n_taxis {
                taxis.push(Taxi::new(TaxiId(i as u32), 4, NodeId((i * 97 % 400) as u32)));
            }
            let cache = PathCache::new(graph.clone());
            let oracle = HotNodeOracle::new(graph.clone());
            Self { graph, cache, oracle, taxis, requests: RequestStore::new(), scheme }
        }

        fn make_request(&mut self, origin: u32, dest: u32, release: f64) -> RideRequest {
            let direct = self.cache.cost(NodeId(origin), NodeId(dest)).unwrap();
            self.oracle.pin(NodeId(origin));
            self.oracle.pin(NodeId(dest));
            let req = RideRequest {
                id: RequestId(self.requests.len() as u32),
                release_time: release,
                origin: NodeId(origin),
                destination: NodeId(dest),
                passengers: 1,
                deadline: release + direct * 1.3,
                direct_cost_s: direct,
                offline: false,
            };
            self.requests.push(req.clone());
            req
        }

        fn dispatch_and_commit(&mut self, req: &RideRequest, now: f64) -> bool {
            let out = {
                // Split borrows: World reads fleet state, scheme is mutated.
                let world = World {
                    graph: &self.graph,
                    cache: &self.cache,
                    oracle: &self.oracle,
                    taxis: &self.taxis,
                    requests: &self.requests,
                };
                self.scheme.dispatch(req, now, &world)
            };
            match out.assignment {
                None => false,
                Some(a) => {
                    let t = &mut self.taxis[a.taxi.index()];
                    let pos = t.position_at(now);
                    let route = TimedRoute::build_on(&self.graph, pos, now, &a.legs, &a.schedule);
                    t.assigned.push(req.id);
                    t.location = pos;
                    t.location_time = now;
                    t.set_plan(a.schedule, route, now);
                    let world = World {
                        graph: &self.graph,
                        cache: &self.cache,
                        oracle: &self.oracle,
                        taxis: &self.taxis,
                        requests: &self.requests,
                    };
                    let taxi = &self.taxis[a.taxi.index()];
                    self.scheme.after_assign(taxi, &world);
                    true
                }
            }
        }
    }

    #[test]
    fn install_indexes_the_fleet() {
        let mut sim = Sim::new(5, false);
        let world = World {
            graph: &sim.graph,
            cache: &sim.cache,
            oracle: &sim.oracle,
            taxis: &sim.taxis,
            requests: &sim.requests,
        };
        sim.scheme.install(&world);
        assert!(sim.scheme.index_memory_bytes() > 0);
        assert_eq!(sim.scheme.name(), "mT-Share");
    }

    #[test]
    fn end_to_end_dispatch_commit_cycle() {
        let mut sim = Sim::new(8, false);
        {
            let world = World {
                graph: &sim.graph,
                cache: &sim.cache,
                oracle: &sim.oracle,
                taxis: &sim.taxis,
                requests: &sim.requests,
            };
            sim.scheme.install(&world);
        }
        let mut served = 0;
        let specs = [(0u32, 399u32), (21, 380), (40, 350), (399, 0), (200, 10)];
        for (k, (o, d)) in specs.iter().enumerate() {
            let now = k as f64 * 30.0;
            let req = sim.make_request(*o, *d, now);
            if sim.dispatch_and_commit(&req, now) {
                served += 1;
            }
        }
        assert!(served >= 3, "only {served}/5 served");
        // Committed taxis must have consistent state.
        for t in &sim.taxis {
            if let Some(route) = &t.route {
                assert_eq!(route.event_node_idx.len(), t.schedule.len());
            }
            assert!(t.schedule.precedence_ok());
        }
    }

    #[test]
    fn removed_taxi_leaves_both_indexes_and_candidate_search() {
        let mut sim = Sim::new(5, false);
        {
            let world = World {
                graph: &sim.graph,
                cache: &sim.cache,
                oracle: &sim.oracle,
                taxis: &sim.taxis,
                requests: &sim.requests,
            };
            sim.scheme.install(&world);
        }
        let indexed = sim.scheme.indexed_taxis().unwrap();
        assert!(indexed.contains(&TaxiId(2)));
        // Break taxi 2 down and reconcile it out of the indexes.
        sim.taxis[2].fail(10.0);
        {
            let world = World {
                graph: &sim.graph,
                cache: &sim.cache,
                oracle: &sim.oracle,
                taxis: &sim.taxis,
                requests: &sim.requests,
            };
            let taxi = &sim.taxis[2];
            sim.scheme.on_taxi_removed(taxi, &world);
        }
        let indexed = sim.scheme.indexed_taxis().unwrap();
        assert!(!indexed.contains(&TaxiId(2)), "dead taxi still indexed");
        assert_eq!(indexed.len(), 4);
        // Dispatches after the breakdown never pick the dead taxi.
        for (k, (o, d)) in [(0u32, 399u32), (21, 380), (399, 0)].iter().enumerate() {
            let now = 20.0 + k as f64 * 30.0;
            let req = sim.make_request(*o, *d, now);
            let world = World {
                graph: &sim.graph,
                cache: &sim.cache,
                oracle: &sim.oracle,
                taxis: &sim.taxis,
                requests: &sim.requests,
            };
            let out = sim.scheme.dispatch(&req, now, &world);
            if let Some(a) = out.assignment {
                assert_ne!(a.taxi, TaxiId(2), "dead taxi assigned");
            }
        }
    }

    #[test]
    fn snapshot_restore_round_trips_on_a_fresh_scheme() {
        let mut sim = Sim::new(8, false);
        {
            let world = World {
                graph: &sim.graph,
                cache: &sim.cache,
                oracle: &sim.oracle,
                taxis: &sim.taxis,
                requests: &sim.requests,
            };
            sim.scheme.install(&world);
        }
        for (k, (o, d)) in [(0u32, 399u32), (21, 380), (40, 350)].iter().enumerate() {
            let now = k as f64 * 30.0;
            let req = sim.make_request(*o, *d, now);
            sim.dispatch_and_commit(&req, now);
        }
        let snap = sim.scheme.snapshot_state().expect("mT-Share snapshots its indexes");

        // A freshly constructed scheme (same deterministic context, no
        // `install`) restores to byte-identical index state.
        let mut sim2 = Sim::new(8, false);
        sim2.taxis = sim.taxis.clone();
        {
            let world = World {
                graph: &sim2.graph,
                cache: &sim2.cache,
                oracle: &sim2.oracle,
                taxis: &sim2.taxis,
                requests: &sim.requests,
            };
            sim2.scheme.restore_state(&snap, &world).expect("restore succeeds");
        }
        assert_eq!(sim2.scheme.snapshot_state().unwrap(), snap);
        assert_eq!(sim2.scheme.indexed_taxis(), sim.scheme.indexed_taxis());

        // A mismatched fleet is rejected, not mis-restored.
        let small = vec![Taxi::new(TaxiId(0), 4, NodeId(0))];
        let world = World {
            graph: &sim2.graph,
            cache: &sim2.cache,
            oracle: &sim2.oracle,
            taxis: &small,
            requests: &sim.requests,
        };
        assert!(sim2.scheme.restore_state(&snap, &world).is_err());
    }

    #[test]
    fn probabilistic_variant_reports_name_and_flag() {
        let sim = Sim::new(2, true);
        assert_eq!(sim.scheme.name(), "mT-Share_pro");
        assert!(sim.scheme.uses_probabilistic_routing());
    }
}
