//! mT-Share core: the paper's primary contribution (Sec. IV).
//!
//! - [`context`]: precomputed mobility artifacts (bipartite partitions,
//!   landmark graph, transition statistics);
//! - [`index`]: the dual taxi indexes (partition lists + mobility clusters);
//! - [`candidates`]: candidate taxi searching (Eq. 2–3 + refinement rules);
//! - [`scheduling`]: insertion-based taxi scheduling (Algorithm 1);
//! - [`filter`]: partition filtering (Algorithm 2);
//! - [`routing`]: basic + probabilistic segment routing (Algorithms 3–4);
//! - [`payment`]: the benefit-sharing payment model (Eqs. 5–8);
//! - [`scheme`]: [`MtShare`], the `DispatchScheme` implementation.

#![warn(missing_docs)]

pub mod candidates;
pub mod config;
pub mod context;
pub mod filter;
pub mod index;
pub mod payment;
pub mod persist;
pub mod prob_wrapper;
pub mod routing;
pub mod scheduling;
pub mod scheme;

pub use candidates::candidate_taxis;
pub use config::MtShareConfig;
pub use context::{MobilityContext, PartitionStrategy};
pub use filter::{filter_partitions, filter_partitions_observed, FilteredPartitions};
pub use index::{MobilityClusterIndex, PartitionTaxiIndex};
pub use payment::{settle_episode, PassengerTrip, PaymentConfig, Settlement};
pub use prob_wrapper::WithProbabilisticRouting;
pub use routing::{RouterStats, SegmentRouter};
pub use scheduling::{probabilistic_enabled, schedule_best};
pub use scheme::MtShare;
