//! Partition filtering (Algorithm 2, Sec. IV-C2 Phase 1).
//!
//! For a consecutive event pair `(s_z, s_{z+1})`, prune the κ map
//! partitions down to those plausibly on a good route between them, using
//! only O(1) landmark-table lookups per partition:
//!
//! - **travel-direction rule**: the vector `ℓ_z → ℓ_i` must be within
//!   `cos θ ≥ λ` of the leg direction `ℓ_z → ℓ_{z+1}`;
//! - **travel-cost rule**: `cost(ℓ_z, ℓ_i) + cost(ℓ_i, ℓ_{z+1}) ≤ (1+ε) ·
//!   cost(ℓ_z, ℓ_{z+1})`.

use crate::context::MobilityContext;
use mtshare_mobility::PartitionId;
use mtshare_obs::{Obs, Stage};
use mtshare_road::{direction_cosine, NodeId, RoadNetwork};

/// Output of one partition-filter invocation.
#[derive(Debug, Clone, Default)]
pub struct FilteredPartitions {
    /// Retained partitions (always includes both endpoints' partitions).
    pub partitions: Vec<PartitionId>,
    /// Landmark-estimated leg cost `cost(ℓ_z, ℓ_{z+1})`, seconds.
    pub landmark_cost_s: f64,
}

/// [`filter_partitions`] with telemetry: times the filter as a
/// [`Stage::PartitionFilter`] span and records how many of the κ
/// partitions survived the prune. Safe to call from batch workers (the
/// counters are sharded).
pub fn filter_partitions_observed(
    graph: &RoadNetwork,
    ctx: &MobilityContext,
    from: NodeId,
    to: NodeId,
    lambda: f64,
    epsilon: f64,
    obs: &Obs,
) -> FilteredPartitions {
    let _span = obs.stage(Stage::PartitionFilter);
    let out = filter_partitions(graph, ctx, from, to, lambda, epsilon);
    obs.add_filter_stats(ctx.kappa() as u64, out.partitions.len() as u64);
    out
}

/// Runs Algorithm 2 for the leg `from → to`.
pub fn filter_partitions(
    graph: &RoadNetwork,
    ctx: &MobilityContext,
    from: NodeId,
    to: NodeId,
    lambda: f64,
    epsilon: f64,
) -> FilteredPartitions {
    let pz = ctx.partitioning.partition_of(from);
    let pz1 = ctx.partitioning.partition_of(to);
    let lz = ctx.partitioning.landmark(pz);
    let lz1 = ctx.partitioning.landmark(pz1);
    let base = ctx.landmarks.cost_between(pz, pz1) as f64;
    let mut out = FilteredPartitions { partitions: Vec::new(), landmark_cost_s: base };

    if pz == pz1 || !base.is_finite() {
        // Same-partition leg (or disconnected landmarks): keep the
        // endpoints' partitions and their immediate neighbours so the
        // segment search has room to connect.
        out.partitions.push(pz);
        if pz1 != pz {
            out.partitions.push(pz1);
        }
        for &n in ctx.landmarks.neighbors(pz) {
            if !out.partitions.contains(&n) {
                out.partitions.push(n);
            }
        }
        return out;
    }

    let dir_z = graph.point(lz).displacement_m(&graph.point(lz1));
    for pi in ctx.partitioning.partitions() {
        if pi == pz || pi == pz1 {
            out.partitions.push(pi);
            continue;
        }
        // Travel-cost rule.
        let via =
            ctx.landmarks.cost_between(pz, pi) as f64 + ctx.landmarks.cost_between(pi, pz1) as f64;
        if !via.is_finite() || via > (1.0 + epsilon) * base {
            continue;
        }
        // Travel-direction rule. The angular error of a landmark as a proxy
        // for its partition scales with (partition radius / baseline), so
        // measure the leg direction on the longer baseline: the approach
        // `ℓ_z → ℓ_i` for partitions nearer the destination, the departure
        // `ℓ_i → ℓ_{z+1}` for partitions nearer the source.
        let li = ctx.partitioning.landmark(pi);
        let approach = graph.point(lz).displacement_m(&graph.point(li));
        let departure = graph.point(li).displacement_m(&graph.point(lz1));
        let longer = if approach.0 * approach.0 + approach.1 * approach.1
            >= departure.0 * departure.0 + departure.1 * departure.1
        {
            approach
        } else {
            departure
        };
        if direction_cosine(longer, dir_z) < lambda {
            continue;
        }
        out.partitions.push(pi);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::PartitionStrategy;
    use mtshare_mobility::Trip;
    use mtshare_road::{grid_city, GridCityConfig};
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    use std::sync::Arc;

    fn setup() -> (Arc<RoadNetwork>, Arc<MobilityContext>) {
        let g = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let mut rng = SmallRng::seed_from_u64(3);
        let trips: Vec<_> = (0..800)
            .map(|_| Trip {
                origin: NodeId(rng.gen_range(0..400)),
                destination: NodeId(rng.gen_range(0..400)),
            })
            .collect();
        let ctx = MobilityContext::build(&g, &trips, 16, 4, 7, PartitionStrategy::Grid);
        (g, ctx)
    }

    #[test]
    fn endpoints_always_retained() {
        let (g, ctx) = setup();
        let f = filter_partitions(&g, &ctx, NodeId(0), NodeId(399), 0.707, 1.0);
        assert!(f.partitions.contains(&ctx.partitioning.partition_of(NodeId(0))));
        assert!(f.partitions.contains(&ctx.partitioning.partition_of(NodeId(399))));
        assert!(f.landmark_cost_s > 0.0);
    }

    #[test]
    fn filter_prunes_most_partitions_for_long_legs() {
        let (g, ctx) = setup();
        // Opposite grid corners: partitions far off the diagonal corridor
        // must be dropped. λ = 0.9 sits in a gap of this grid's discrete
        // landmark-cosine spectrum ({≈0.98, ≈0.95, ≈0.89, ≈0.71}), so the
        // outcome is robust to landmark jitter; 0.707 would be degenerate
        // here because every grid-edge partition lies at exactly 45°.
        let f = filter_partitions(&g, &ctx, NodeId(0), NodeId(399), 0.9, 0.3);
        assert!(
            f.partitions.len() < ctx.kappa(),
            "kept {} of {} partitions",
            f.partitions.len(),
            ctx.kappa()
        );
    }

    #[test]
    fn epsilon_zero_keeps_a_thin_corridor() {
        let (g, ctx) = setup();
        let tight = filter_partitions(&g, &ctx, NodeId(0), NodeId(399), 0.707, 0.0);
        let loose = filter_partitions(&g, &ctx, NodeId(0), NodeId(399), 0.707, 2.0);
        assert!(tight.partitions.len() <= loose.partitions.len());
    }

    #[test]
    fn lambda_restricts_direction() {
        let (g, ctx) = setup();
        let loose = filter_partitions(&g, &ctx, NodeId(0), NodeId(399), -1.0, 1.0);
        let strict = filter_partitions(&g, &ctx, NodeId(0), NodeId(399), 0.95, 1.0);
        assert!(strict.partitions.len() <= loose.partitions.len());
    }

    #[test]
    fn same_partition_leg_keeps_neighbourhood() {
        let (g, ctx) = setup();
        // Two nodes in the same partition.
        let p0 = ctx.partitioning.partition_of(NodeId(0));
        let mate = *ctx
            .partitioning
            .members(p0)
            .iter()
            .find(|&&v| v != NodeId(0))
            .expect("partition has >1 member");
        let f = filter_partitions(&g, &ctx, NodeId(0), mate, 0.707, 1.0);
        assert!(f.partitions.contains(&p0));
        // Neighbourhood included.
        assert!(f.partitions.len() >= 2);
        assert_eq!(f.landmark_cost_s, 0.0);
    }

    #[test]
    fn retained_partitions_cover_the_true_shortest_path_mostly() {
        let (g, ctx) = setup();
        let mut d = mtshare_routing::Dijkstra::new(&g);
        let p = d.path(&g, NodeId(0), NodeId(399)).unwrap();
        let f = filter_partitions(&g, &ctx, NodeId(0), NodeId(399), 0.707, 1.0);
        let kept: std::collections::HashSet<_> = f.partitions.iter().copied().collect();
        let covered =
            p.nodes.iter().filter(|&&n| kept.contains(&ctx.partitioning.partition_of(n))).count();
        // ε = 1.0 is the paper's conservative setting: expect the vast
        // majority of true-shortest-path vertices inside the filter.
        assert!(
            covered as f64 / p.nodes.len() as f64 > 0.9,
            "only {covered}/{} shortest-path nodes covered",
            p.nodes.len()
        );
    }
}
