//! Incremental dynamic-tree scheduling (Yao & Bekhor-style) for the
//! per-vehicle stop-sequence search.
//!
//! The insertion DP (`mtshare-model::best_insertion`) re-derives every
//! committed-leg cost and re-issues Θ(m²) cost-oracle queries per
//! candidate taxi on every request. This crate maintains, per vehicle, a
//! pruned tree of feasible stop sequences:
//!
//! - the **spine** (tree root) is the committed stop sequence, annotated
//!   with cached leg costs that survive across dispatch rounds;
//! - **branches** are the candidate (pickup, dropoff) insertion points
//!   scored by [`DTree::score`]; per evaluation the distinct cost queries
//!   collapse from Θ(m²) to Θ(m) through lazy memo tables;
//! - [`DTree::commit`] promotes the winning branch by splicing the pair
//!   into the spine (pruning all sibling branches), [`DTree::remove`]
//!   splices a cancelled request back out, [`DTree::advance`] pops
//!   completed stops, and [`DTree::refresh_version`] re-keys the tree
//!   after a traffic-shift retime that left the stop sequence intact.
//!
//! **Determinism contract:** `score` replicates the insertion DP's exact
//! control flow and floating-point operation order — including the
//! "abort the whole evaluation on an unreachable leg" semantics of the
//! DP's `?` operator and its strict-`<`, earliest-(i, j) tie-break — so
//! a dtree-backed dispatcher produces byte-identical traces to the DP
//! (property-tested in `tests/dtree_equivalence.rs`). Cached values are
//! only ever *reused*, never recomputed differently: the cost oracle is
//! a pure function, so memoization cannot change any answer, only the
//! number of queries.
//!
//! The crate is dependency-free: vehicles, stops and the road network
//! appear only as opaque `u32` ids plus caller-supplied cost/deadline
//! closures (same layering as `mtshare-lap`).

/// One committed stop on a vehicle's spine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stop {
    /// Road-network node of the stop (opaque to this crate).
    pub node: u32,
    /// Request id the stop belongs to (opaque to this crate).
    pub request: u32,
    /// Pickup (`true`) or drop-off (`false`).
    pub pickup: bool,
    /// Party size boarding/alighting at this stop.
    pub riders: u32,
}

/// The request being probed for insertion, plus the vehicle context the
/// DP reads fresh on every call (position, time and onboard load move
/// between calls and are never cached).
#[derive(Debug, Clone, Copy)]
pub struct Probe {
    /// Pickup node.
    pub origin: u32,
    /// Drop-off node.
    pub destination: u32,
    /// Party size.
    pub passengers: u32,
    /// Drop-off deadline (absolute seconds).
    pub deadline: f64,
    /// Pickup deadline (absolute seconds).
    pub pickup_deadline: f64,
    /// Evaluation time.
    pub now: f64,
    /// Vehicle position node at `now`.
    pub pos: u32,
    /// Riders already onboard at `now`.
    pub initial_load: u32,
    /// Vehicle seat capacity.
    pub capacity: u32,
}

/// Winning branch of one [`DTree::score`] evaluation; field semantics
/// match `mtshare-model::BestInsertion` (and
/// `Schedule::with_insertion(req, i, j)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Insertion {
    /// Pickup index in the resulting stop sequence.
    pub i: usize,
    /// Drop-off index in the resulting stop sequence.
    pub j: usize,
    /// Added route cost in seconds.
    pub delta_s: f64,
}

/// Cumulative per-tree counters (profiling only; never affect results).
#[derive(Debug, Clone, Copy, Default)]
pub struct TreeStats {
    /// `score` evaluations.
    pub scores: u64,
    /// Committed-leg costs served from the spine cache.
    pub legs_reused: u64,
    /// Committed-leg costs filled by a fresh oracle query.
    pub legs_filled: u64,
    /// Per-evaluation memo-table hits (queries the DP would re-issue).
    pub memo_reuses: u64,
    /// Per-evaluation memo-table fills (distinct oracle queries).
    pub memo_fills: u64,
    /// Full spine rebuilds.
    pub rebuilds: u64,
    /// Completed-stop advances (front pops).
    pub advances: u64,
    /// Branch promotions (request splice-ins).
    pub commits: u64,
    /// Request splice-outs (cancel / breakdown repair).
    pub removes: u64,
    /// Version refreshes after retime with an unchanged stop sequence.
    pub retimes: u64,
}

impl TreeStats {
    /// Folds `other` into `self`.
    pub fn absorb(&mut self, other: &TreeStats) {
        self.scores += other.scores;
        self.legs_reused += other.legs_reused;
        self.legs_filled += other.legs_filled;
        self.memo_reuses += other.memo_reuses;
        self.memo_fills += other.memo_fills;
        self.rebuilds += other.rebuilds;
        self.advances += other.advances;
        self.commits += other.commits;
        self.removes += other.removes;
        self.retimes += other.retimes;
    }
}

/// Leg/memo cell encoding: `NaN` = not yet queried, `+∞` = queried and
/// unreachable, finite = cached cost.
const UNKNOWN: f64 = f64::NAN;

/// Per-evaluation scratch (allocation amortized across calls).
#[derive(Debug, Default)]
struct Scratch {
    arrivals: Vec<f64>,
    loads: Vec<u32>,
    slack: Vec<f64>,
    /// `to_origin[k]` = cost(nodes[k], origin); nodes[0] is the vehicle
    /// position, nodes[k ≥ 1] the spine stop k − 1.
    to_origin: Vec<f64>,
    /// `from_origin[k]` = cost(origin, nodes[k]).
    from_origin: Vec<f64>,
    /// `to_dest[k]` = cost(nodes[k], destination).
    to_dest: Vec<f64>,
    /// `from_dest[k]` = cost(destination, nodes[k]).
    from_dest: Vec<f64>,
    /// cost(origin, destination).
    leg_od: f64,
    /// cost(position, nodes[1]) — fresh every call, the position moves.
    pos_leg: f64,
}

impl Scratch {
    /// Resets the per-probe memo tables. The prefix arrays (`arrivals`,
    /// `loads`, `pos_leg`) are keyed by `DTree::prefix_key` and survive
    /// across evaluations; `slack` is fully rewritten each evaluation.
    fn reset_memo(&mut self, m: usize) {
        for v in
            [&mut self.to_origin, &mut self.from_origin, &mut self.to_dest, &mut self.from_dest]
        {
            v.clear();
            v.resize(m + 1, UNKNOWN);
        }
        self.leg_od = UNKNOWN;
    }
}

/// The per-vehicle dynamic tree: committed spine + cached leg costs +
/// scoring scratch.
#[derive(Debug, Default)]
pub struct DTree {
    built: bool,
    version: u64,
    spine: Vec<Stop>,
    /// `leg_cost[k]` = cost(spine[k].node, spine[k + 1].node); see
    /// [`UNKNOWN`] for the cell encoding.
    leg_cost: Vec<f64>,
    scratch: Scratch,
    /// Key of the cached arrival/load prefix in `scratch`:
    /// `(position, now bits, initial load)`. The prefix is a pure
    /// function of that key and the spine, so it is reused verbatim
    /// across evaluations with the same key (the common case inside one
    /// dispatch window) and dropped on any spine mutation. Deadlines
    /// are deliberately *not* part of it — the slack pass runs fresh
    /// every evaluation.
    prefix_key: Option<(u32, u64, u32)>,
    /// Whether the cached prefix proved every committed leg reachable.
    prefix_ok: bool,
    /// Counters (profiling only).
    pub stats: TreeStats,
}

impl DTree {
    /// An empty, unbuilt tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the tree mirrors exactly (`version`, `len`) of the
    /// vehicle's committed plan.
    pub fn is_synced(&self, version: u64, len: usize) -> bool {
        self.built && self.version == version && self.spine.len() == len
    }

    /// Plan version the tree was last synced to.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether the tree has ever been built since creation/clear.
    pub fn is_built(&self) -> bool {
        self.built
    }

    /// Number of spine stops.
    pub fn len(&self) -> usize {
        self.spine.len()
    }

    /// Whether the spine is empty.
    pub fn is_empty(&self) -> bool {
        self.spine.is_empty()
    }

    /// The committed spine.
    pub fn stops(&self) -> &[Stop] {
        &self.spine
    }

    /// Discards everything (vehicle removed, or state restored from a
    /// snapshot — the tree is rebuilt lazily from the restored plan).
    pub fn clear(&mut self) {
        self.built = false;
        self.version = 0;
        self.spine.clear();
        self.leg_cost.clear();
        self.prefix_key = None;
    }

    /// Rebuilds the spine from scratch; every leg cost is refilled
    /// lazily on the next evaluation.
    pub fn rebuild(&mut self, version: u64, stops: impl IntoIterator<Item = Stop>) {
        self.spine.clear();
        self.spine.extend(stops);
        self.leg_cost.clear();
        self.leg_cost.resize(self.spine.len().saturating_sub(1), UNKNOWN);
        self.prefix_key = None;
        self.version = version;
        self.built = true;
        self.stats.rebuilds += 1;
    }

    /// Pops the first `k` stops (vehicle completed them); the surviving
    /// leg costs keep their cached values.
    pub fn advance(&mut self, k: usize) {
        let k = k.min(self.spine.len());
        if k == 0 {
            return;
        }
        self.spine.drain(..k);
        let l = k.min(self.leg_cost.len());
        self.leg_cost.drain(..l);
        self.prefix_key = None;
        self.stats.advances += 1;
    }

    /// Re-keys the tree after a plan-version bump that left the stop
    /// sequence unchanged (route retiming under a traffic shift: the
    /// shortest-path metric is static, so cached leg costs stay valid).
    pub fn refresh_version(&mut self, version: u64) {
        self.version = version;
        self.stats.retimes += 1;
    }

    /// Promotes the winning branch: splices `(pickup, dropoff)` into the
    /// spine at the [`Insertion`] positions and re-keys to `version`.
    /// All sibling branches die with the pre-splice scratch. Untouched
    /// leg costs survive; the up-to-four legs around the new stops are
    /// refilled lazily.
    pub fn commit(&mut self, version: u64, ins: Insertion, pickup: Stop, dropoff: Stop) {
        debug_assert!(ins.i < ins.j && ins.j <= self.spine.len() + 1);
        self.insert_stop(ins.i, pickup);
        self.insert_stop(ins.j, dropoff);
        self.prefix_key = None;
        self.version = version;
        self.stats.commits += 1;
    }

    /// Splices every stop of `request` out of the spine (cancel or
    /// breakdown repair) and re-keys to `version`. Returns how many
    /// stops were removed.
    pub fn remove(&mut self, version: u64, request: u32) -> usize {
        let mut removed = 0;
        while let Some(idx) = self.spine.iter().position(|s| s.request == request) {
            self.remove_stop(idx);
            removed += 1;
        }
        self.prefix_key = None;
        self.version = version;
        if removed > 0 {
            self.stats.removes += 1;
        }
        removed
    }

    fn insert_stop(&mut self, idx: usize, stop: Stop) {
        self.spine.insert(idx, stop);
        let n = self.spine.len();
        if n == 1 {
            return;
        }
        if idx == 0 {
            self.leg_cost.insert(0, UNKNOWN);
        } else if idx == n - 1 {
            self.leg_cost.push(UNKNOWN);
        } else {
            // Old leg (idx−1 → old idx) is cut by the new stop.
            self.leg_cost[idx - 1] = UNKNOWN;
            self.leg_cost.insert(idx, UNKNOWN);
        }
    }

    fn remove_stop(&mut self, idx: usize) {
        self.spine.remove(idx);
        let n = self.spine.len();
        if n == 0 {
            self.leg_cost.clear();
            return;
        }
        if idx == 0 {
            self.leg_cost.remove(0);
        } else if idx == n {
            self.leg_cost.pop();
        } else {
            // Legs (idx−1 → idx) and (idx → idx+1) merge into a bridge.
            self.leg_cost.remove(idx);
            self.leg_cost[idx - 1] = UNKNOWN;
        }
    }

    /// Scores the cheapest feasible insertion of `probe` against the
    /// spine — the dynamic-tree replacement for the insertion DP.
    ///
    /// `dropoff_deadline` maps a request id to its (mutable, chaos-
    /// stretched) drop-off deadline and is consulted fresh on every
    /// call; `cost` is the shortest-path oracle (`None` = unreachable).
    ///
    /// This is a line-for-line transcription of
    /// `mtshare-model::best_insertion` over the cached spine: identical
    /// floating-point operation order, identical abort/skip semantics,
    /// identical tie-breaking. Only the *number* of oracle queries
    /// changes (Θ(m²) → Θ(m) distinct, each issued at most once).
    pub fn score(
        &mut self,
        probe: &Probe,
        dropoff_deadline: &mut dyn FnMut(u32) -> f64,
        cost: &mut dyn FnMut(u32, u32) -> Option<f64>,
    ) -> Option<Insertion> {
        self.stats.scores += 1;
        let Self { spine, leg_cost, scratch: s, stats, prefix_key, prefix_ok, .. } = self;
        let m = spine.len();
        let capacity = probe.capacity;
        let p = probe.passengers;
        s.reset_memo(m);

        // nodes[0] = vehicle position, nodes[k ≥ 1] = spine stop k − 1.
        let node = |k: usize| if k == 0 { probe.pos } else { spine[k - 1].node };

        // The arrival/load prefix is a pure function of the spine and
        // (position, now, initial load): when the key matches the
        // previous evaluation — consecutive candidates scored against
        // the same vehicle state inside one dispatch window — the
        // cached arrays are the bit-exact values recomputation would
        // produce, so the whole pass (and its oracle queries) is
        // skipped. Any spine mutation drops the key.
        let key = (probe.pos, probe.now.to_bits(), probe.initial_load);
        if *prefix_key == Some(key) {
            if !*prefix_ok {
                return None; // a committed leg is unreachable
            }
        } else {
            *prefix_key = Some(key);
            *prefix_ok = false;
            s.arrivals.clear();
            s.arrivals.resize(m + 2, 0.0);
            s.loads.clear();
            s.loads.resize(m + 1, 0);

            // Arrival times a_0..a_m, summed in the DP's sequential
            // order over per-leg costs (floating-point addition is
            // order-sensitive; never pre-aggregate). The position →
            // first-stop leg is queried fresh (the position moves
            // between windows); committed legs come from the spine
            // cache.
            s.arrivals[0] = probe.now;
            for k in 0..m {
                let c = if k == 0 {
                    let c = match cost(probe.pos, spine[0].node) {
                        Some(c) => c,
                        None => return None, // replicates the DP's `?` abort
                    };
                    s.pos_leg = c;
                    c
                } else {
                    let slot = &mut leg_cost[k - 1];
                    if slot.is_nan() {
                        stats.legs_filled += 1;
                        *slot = cost(spine[k - 1].node, spine[k].node).unwrap_or(f64::INFINITY);
                    } else {
                        stats.legs_reused += 1;
                    }
                    if !slot.is_finite() {
                        return None;
                    }
                    *slot
                };
                s.arrivals[k + 1] = s.arrivals[k] + c;
            }

            // Load after each prefix.
            s.loads[0] = probe.initial_load;
            for k in 0..m {
                let st = &spine[k];
                s.loads[k + 1] = if st.pickup {
                    s.loads[k] + st.riders
                } else {
                    s.loads[k].saturating_sub(st.riders)
                };
            }
            *prefix_ok = true;
        }

        // Committed leg cost cost(nodes[a], nodes[a+1]), known finite
        // after the arrivals pass.
        let committed_leg = |s: &Scratch, leg_cost: &[f64], a: usize| {
            if a == 0 {
                s.pos_leg
            } else {
                leg_cost[a - 1]
            }
        };

        if s.loads[0] + p > capacity && m == 0 {
            return None;
        }

        // Suffix slack over fresh deadlines (traffic shifts mutate them
        // in place, so they are never cached — unlike the prefix, the
        // slack pass runs every evaluation).
        s.slack.clear();
        s.slack.resize(m + 2, 0.0);
        s.slack[m + 1] = f64::INFINITY;
        for k in (1..=m).rev() {
            let st = &spine[k - 1];
            let own = if st.pickup {
                f64::INFINITY
            } else {
                dropoff_deadline(st.request) - s.arrivals[k]
            };
            s.slack[k] = own.min(s.slack[k + 1]);
            if s.slack[k] < 0.0 {
                return None;
            }
        }

        // Lazy memo lookup: fill a table cell with one oracle query on
        // first touch, reuse it afterwards. `None` exactly where the DP
        // sees `None`.
        macro_rules! memo {
            ($tbl:ident, $k:expr, $a:expr, $b:expr) => {{
                let slot = &mut s.$tbl[$k];
                if slot.is_nan() {
                    stats.memo_fills += 1;
                    *slot = cost($a, $b).unwrap_or(f64::INFINITY);
                } else {
                    stats.memo_reuses += 1;
                }
                if slot.is_finite() {
                    Some(*slot)
                } else {
                    None
                }
            }};
        }

        let mut best: Option<Insertion> = None;

        for i in 1..=m + 1 {
            if s.loads[i - 1] + p > capacity {
                continue;
            }
            // pickup_delta, clamped like the DP (a tiny negative means
            // the origin sits on the shortest path).
            let dp_opt = if i <= m {
                (|| {
                    Some(
                        memo!(to_origin, i - 1, node(i - 1), probe.origin)?
                            + memo!(from_origin, i, probe.origin, node(i))?
                            - committed_leg(s, leg_cost, i - 1),
                    )
                })()
            } else {
                memo!(to_origin, m, node(m), probe.origin)
            };
            let Some(dp) = dp_opt else { continue };
            let dp = dp.max(0.0);
            let arrival_pickup = if i <= m {
                s.arrivals[i - 1] + memo!(to_origin, i - 1, node(i - 1), probe.origin)?
            } else {
                s.arrivals[m] + memo!(to_origin, m, node(m), probe.origin)?
            };
            if arrival_pickup > probe.pickup_deadline + 1e-6 {
                continue;
            }

            // j == i: drop-off immediately after pickup.
            {
                if s.leg_od.is_nan() {
                    stats.memo_fills += 1;
                    s.leg_od = cost(probe.origin, probe.destination).unwrap_or(f64::INFINITY);
                } else {
                    stats.memo_reuses += 1;
                }
                if !s.leg_od.is_finite() {
                    return None; // the DP's `?` on cost(origin, dest)
                }
                let leg_od = s.leg_od;
                let (pair_delta, arrive_d) = if i <= m {
                    let d = memo!(to_origin, i - 1, node(i - 1), probe.origin)?
                        + leg_od
                        + memo!(from_dest, i, probe.destination, node(i))?
                        - committed_leg(s, leg_cost, i - 1);
                    (d, arrival_pickup + leg_od)
                } else {
                    (memo!(to_origin, m, node(m), probe.origin)? + leg_od, arrival_pickup + leg_od)
                };
                let ok = arrive_d <= probe.deadline + 1e-6 && pair_delta <= s.slack[i] + 1e-6;
                if ok && best.is_none_or(|b| pair_delta < b.delta_s) {
                    best = Some(Insertion { i: i - 1, j: i, delta_s: pair_delta });
                }
            }

            // j > i: drop-off later.
            if i <= m {
                let mut mid_slack_ok = dp <= s.slack[i] + 1e-6;
                for j in (i + 1)..=(m + 1) {
                    if s.loads[j - 1] + p > capacity {
                        break;
                    }
                    if !mid_slack_ok {
                        break;
                    }
                    let dd = if j <= m {
                        memo!(to_dest, j - 1, node(j - 1), probe.destination)?
                            + memo!(from_dest, j, probe.destination, node(j))?
                            - committed_leg(s, leg_cost, j - 1)
                    } else {
                        memo!(to_dest, m, node(m), probe.destination)?
                    };
                    let arrive_d = s.arrivals[j - 1]
                        + dp
                        + memo!(to_dest, j - 1, node(j - 1), probe.destination)?;
                    let total = dp + dd.max(0.0);
                    let ok = arrive_d <= probe.deadline + 1e-6 && total <= s.slack[j] + 1e-6;
                    if ok && best.is_none_or(|b| total < b.delta_s) {
                        best = Some(Insertion { i: i - 1, j, delta_s: total });
                    }
                    if j <= m {
                        let st = &spine[j - 1];
                        if !st.pickup {
                            let own = dropoff_deadline(st.request) - s.arrivals[j];
                            if dp > own + 1e-6 {
                                mid_slack_ok = false;
                            }
                        }
                    }
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1-D line metric: cost(a, b) = |a − b|, every pair reachable.
    fn line(a: u32, b: u32) -> Option<f64> {
        Some((a as f64 - b as f64).abs())
    }

    fn stop(node: u32, request: u32, pickup: bool) -> Stop {
        Stop { node, request, pickup, riders: 1 }
    }

    fn probe(origin: u32, destination: u32, pos: u32, deadline: f64) -> Probe {
        Probe {
            origin,
            destination,
            passengers: 1,
            deadline,
            pickup_deadline: deadline,
            now: 0.0,
            pos,
            initial_load: 0,
            capacity: 4,
        }
    }

    #[test]
    fn empty_spine_scores_direct_insertion() {
        let mut t = DTree::new();
        t.rebuild(1, []);
        let p = probe(10, 20, 0, 100.0);
        let ins = t.score(&p, &mut |_| unreachable!(), &mut |a, b| line(a, b)).unwrap();
        assert_eq!((ins.i, ins.j), (0, 1));
        assert!((ins.delta_s - 20.0).abs() < 1e-12);
    }

    #[test]
    fn commit_splices_and_preserves_cached_legs() {
        let mut t = DTree::new();
        t.rebuild(1, [stop(10, 0, true), stop(20, 0, false)]);
        // Prime the committed-leg cache.
        let p = probe(12, 18, 0, 1e9);
        let ins = t.score(&p, &mut |_| 1e9, &mut |a, b| line(a, b)).unwrap();
        assert_eq!(t.stats.legs_filled, 1);
        // Winning branch: pickup at 12 and drop at 18 between the stops.
        assert_eq!((ins.i, ins.j), (1, 2));
        t.commit(2, ins, stop(12, 1, true), stop(18, 1, false));
        assert_eq!(t.len(), 4);
        assert_eq!(t.stops().iter().map(|s| s.node).collect::<Vec<_>>(), vec![10, 12, 18, 20]);
        assert!(t.is_synced(2, 4));
        // The untouched legs would be reused; spliced ones are unknown.
        let filled_before = t.stats.legs_filled;
        let p2 = probe(11, 19, 0, 1e9);
        let _ = t.score(&p2, &mut |_| 1e9, &mut |a, b| line(a, b));
        // Three legs refilled (10→12, 12→18, 18→20): the splice cut the
        // only cached leg.
        assert_eq!(t.stats.legs_filled - filled_before, 3);
        let filled = t.stats.legs_filled;
        let _ = t.score(&p2, &mut |_| 1e9, &mut |a, b| line(a, b));
        assert_eq!(t.stats.legs_filled, filled, "second score reuses all legs");
    }

    #[test]
    fn remove_splices_out_both_stops() {
        let mut t = DTree::new();
        t.rebuild(
            1,
            [stop(10, 0, true), stop(12, 1, true), stop(18, 1, false), stop(20, 0, false)],
        );
        assert_eq!(t.remove(2, 1), 2);
        assert_eq!(t.stops().iter().map(|s| s.node).collect::<Vec<_>>(), vec![10, 20]);
        assert_eq!(t.remove(3, 7), 0, "unknown request removes nothing");
        assert!(t.is_synced(3, 2));
    }

    #[test]
    fn advance_pops_front_and_keeps_suffix_cache() {
        let mut t = DTree::new();
        t.rebuild(1, [stop(10, 0, true), stop(20, 0, false), stop(30, 1, false)]);
        let p = probe(5, 6, 0, 1e9);
        let _ = t.score(&p, &mut |_| 1e9, &mut |a, b| line(a, b));
        assert_eq!(t.stats.legs_filled, 2);
        t.advance(1);
        assert_eq!(t.len(), 2);
        let filled = t.stats.legs_filled;
        let _ = t.score(&p, &mut |_| 1e9, &mut |a, b| line(a, b));
        assert_eq!(t.stats.legs_filled, filled, "surviving leg stays cached");
        assert_eq!(t.stats.legs_reused >= 1, true);
    }

    #[test]
    fn unreachable_committed_leg_aborts_like_the_dp() {
        let mut t = DTree::new();
        t.rebuild(1, [stop(10, 0, true), stop(20, 0, false)]);
        let p = probe(12, 18, 0, 1e9);
        // 10 → 20 unreachable: the DP aborts during the arrivals pass.
        let mut cost = |a: u32, b: u32| if (a, b) == (10, 20) { None } else { line(a, b) };
        assert_eq!(t.score(&p, &mut |_| 1e9, &mut cost), None);
        // And the verdict is remembered (no flip after caching).
        assert_eq!(t.score(&p, &mut |_| 1e9, &mut cost), None);
    }

    #[test]
    fn capacity_gate_matches_dp_prefix_rule() {
        let mut t = DTree::new();
        t.rebuild(1, []);
        let mut p = probe(10, 20, 0, 1e9);
        p.initial_load = 4; // full vehicle, empty spine
        assert_eq!(t.score(&p, &mut |_| 1e9, &mut |a, b| line(a, b)), None);
    }

    #[test]
    fn deadline_gate_rejects_late_dropoff() {
        let mut t = DTree::new();
        t.rebuild(1, []);
        // Direct trip costs 20 + pickup leg 10, deadline 5: infeasible.
        let p = probe(10, 30, 0, 5.0);
        assert_eq!(t.score(&p, &mut |_| 1e9, &mut |a, b| line(a, b)), None);
    }

    #[test]
    fn retime_refresh_keeps_spine_and_cache() {
        let mut t = DTree::new();
        t.rebuild(3, [stop(10, 0, true), stop(20, 0, false)]);
        let p = probe(12, 18, 0, 1e9);
        let before = t.score(&p, &mut |_| 1e9, &mut |a, b| line(a, b));
        t.refresh_version(9);
        assert!(t.is_synced(9, 2));
        let filled = t.stats.legs_filled;
        let after = t.score(&p, &mut |_| 1e9, &mut |a, b| line(a, b));
        assert_eq!(before, after);
        assert_eq!(t.stats.legs_filled, filled);
        assert_eq!(t.stats.retimes, 1);
    }

    #[test]
    fn score_is_idempotent_and_bit_stable() {
        let mut t = DTree::new();
        t.rebuild(
            1,
            [stop(10, 0, true), stop(40, 1, true), stop(60, 1, false), stop(80, 0, false)],
        );
        let p = probe(25, 70, 5, 1e9);
        let a = t.score(&p, &mut |_| 1e9, &mut |x, y| line(x, y)).unwrap();
        let b = t.score(&p, &mut |_| 1e9, &mut |x, y| line(x, y)).unwrap();
        assert_eq!(a.delta_s.to_bits(), b.delta_s.to_bits());
        assert_eq!((a.i, a.j), (b.i, b.j));
    }
}
