//! Crash-consistent warm restart: kill a run at an arbitrary step,
//! resume from the state directory, and require the concatenation of the
//! two traces to be byte-identical to an uninterrupted run — across
//! every dispatch scheme and at any `parallelism`, including resuming at
//! a different worker count than the run that crashed.

use mtshare_chaos::{ChaosConfig, CrashPoint};
use mtshare_core::{MobilityContext, PartitionStrategy};
use mtshare_obs::{MemorySink, Obs};
use mtshare_road::{grid_city, GridCityConfig, RoadNetwork};
use mtshare_routing::PathCache;
use mtshare_sim::{
    build_context, PersistConfig, RunOutcome, Scenario, ScenarioConfig, SchemeKind, SimConfig,
    Simulator,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A scenario plus everything needed to instantiate identical fresh
/// simulators for it repeatedly.
struct TestWorld {
    graph: Arc<RoadNetwork>,
    scenario: Scenario,
    kind: SchemeKind,
    ctx: Option<Arc<MobilityContext>>,
}

impl TestWorld {
    fn build(kind: SchemeKind) -> Self {
        let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let cache = PathCache::new(graph.clone());
        let scenario = Scenario::generate(graph.clone(), &cache, ScenarioConfig::nonpeak(10));
        let ctx = kind
            .needs_context()
            .then(|| build_context(&graph, &scenario.historical, 12, PartitionStrategy::Bipartite));
        Self { graph, scenario, kind, ctx }
    }

    /// Runs a fresh simulator over the shared scenario, capturing the
    /// canonical JSONL trace.
    fn run(&self, cfg: SimConfig) -> (RunOutcome, String) {
        let obs = Obs::enabled();
        let (sink, buf) = MemorySink::new();
        obs.add_sink(Box::new(sink));
        let cache = PathCache::new(self.graph.clone());
        let mut scheme =
            self.kind.build(&self.graph, self.scenario.taxis.len(), self.ctx.clone(), None);
        let out = Simulator::new(self.graph.clone(), cache, &self.scenario, cfg)
            .with_obs(obs)
            .run_to_outcome(scheme.as_mut());
        let trace = buf.lock().unwrap().clone();
        (out, trace)
    }
}

/// Chaos + the invariant sweep armed, so recovery replays through
/// breakdowns, cancels, traffic shifts and validation steps too.
fn base_cfg(parallelism: usize) -> SimConfig {
    SimConfig {
        parallelism,
        chaos: Some(ChaosConfig::with_seed(7)),
        validate_every: Some(60.0),
        ..SimConfig::default()
    }
}

/// Fresh per-test state directory (the workspace target dir, so `cargo
/// clean` collects leftovers from killed test processes).
fn state_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("persist-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fresh_persist(dir: &Path, crash_step: u64) -> PersistConfig {
    PersistConfig {
        state_dir: dir.to_path_buf(),
        checkpoint_every: 16,
        resume: false,
        crash_at: Some(CrashPoint::return_at(crash_step)),
        ..PersistConfig::new(dir)
    }
}

fn resume_persist(dir: &Path) -> PersistConfig {
    PersistConfig {
        state_dir: dir.to_path_buf(),
        checkpoint_every: 16,
        resume: true,
        crash_at: None,
        ..PersistConfig::new(dir)
    }
}

/// Kills a run at `crash_step`, resumes it, and checks the concatenated
/// trace (and the final report) against an uninterrupted baseline run.
fn crash_and_resume(world: &TestWorld, name: &str, crash_par: usize, resume_par: usize) {
    let (base_out, base_trace) = world.run(base_cfg(crash_par));
    let RunOutcome::Finished(base_report) = base_out else {
        panic!("baseline run must finish");
    };

    let dir = state_dir(name);
    let mut cfg = base_cfg(crash_par);
    cfg.persist = Some(fresh_persist(&dir, 57));
    let (crash_out, head) = world.run(cfg);
    let RunOutcome::Crashed { step } = crash_out else {
        panic!("crash run must die at the planned point");
    };
    assert_eq!(step, 57);

    let mut cfg = base_cfg(resume_par);
    cfg.persist = Some(resume_persist(&dir));
    let (resume_out, tail) = world.run(cfg);
    let RunOutcome::Finished(report) = resume_out else {
        panic!("resumed run must finish");
    };

    assert_eq!(
        format!("{head}{tail}"),
        base_trace,
        "concatenated crash+resume trace must be byte-identical ({name})"
    );
    assert_eq!(report.served, base_report.served, "{name}");
    assert_eq!(report.rejected, base_report.rejected, "{name}");
    assert_eq!(report.cancelled, base_report.cancelled, "{name}");
    assert_eq!(report.redispatched, base_report.redispatched, "{name}");
    assert_eq!(report.invariant_violations, 0, "{name}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_resume_matrix_over_all_schemes() {
    for (kind, name) in [
        (SchemeKind::NoSharing, "no-sharing"),
        (SchemeKind::TShare, "t-share"),
        (SchemeKind::PGreedyDp, "pgreedy"),
        (SchemeKind::MtShare, "mt-share"),
    ] {
        let world = TestWorld::build(kind);
        crash_and_resume(&world, &format!("{name}-seq"), 1, 1);
    }
}

#[test]
fn crash_resume_is_parallelism_independent() {
    let world = TestWorld::build(SchemeKind::MtShare);
    // Crash a parallel run, resume it sequentially and vice versa: the
    // step counter (and hence the WAL) is parallelism-independent.
    crash_and_resume(&world, "mt-share-par", 4, 4);
    crash_and_resume(&world, "mt-share-par-to-seq", 4, 1);
    crash_and_resume(&world, "mt-share-seq-to-par", 1, 4);
}

#[test]
fn torn_wal_tail_is_truncated_on_recovery() {
    let world = TestWorld::build(SchemeKind::TShare);
    let (_, base_trace) = world.run(base_cfg(1));

    let dir = state_dir("torn-tail");
    let mut cfg = base_cfg(1);
    cfg.persist = Some(fresh_persist(&dir, 57));
    let (_, head) = world.run(cfg);

    // A crash torn mid-append leaves a partial record at the tail; the
    // recovery scan must drop it and resume from the last full record.
    use std::io::Write;
    let wal = dir.join("wal.mtwal");
    let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
    f.write_all(&[0xde, 0xad, 0xbe]).unwrap();
    drop(f);

    let mut cfg = base_cfg(1);
    cfg.persist = Some(resume_persist(&dir));
    let (out, tail) = world.run(cfg);
    assert!(matches!(out, RunOutcome::Finished(_)));
    assert_eq!(format!("{head}{tail}"), base_trace);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_snapshot_falls_back_to_previous_checkpoint() {
    let world = TestWorld::build(SchemeKind::MtShare);
    let (_, base_trace) = world.run(base_cfg(1));

    let dir = state_dir("corrupt-snap");
    let mut cfg = base_cfg(1);
    cfg.persist = Some(fresh_persist(&dir, 57));
    let (_, head) = world.run(cfg);

    // Flip a payload byte in the newest snapshot: its CRC fails, and
    // recovery must fall back to the previous valid one and replay a
    // longer WAL suffix — still byte-identical.
    let mut snaps: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "mtsnap"))
        .collect();
    snaps.sort();
    assert!(snaps.len() >= 2, "expected multiple checkpoints, got {snaps:?}");
    let newest = snaps.last().unwrap();
    let mut bytes = std::fs::read(newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(newest, bytes).unwrap();

    let mut cfg = base_cfg(1);
    cfg.persist = Some(resume_persist(&dir));
    let (out, tail) = world.run(cfg);
    assert!(matches!(out, RunOutcome::Finished(_)));
    assert_eq!(format!("{head}{tail}"), base_trace);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_meta_events_stay_out_of_the_canonical_trace() {
    let world = TestWorld::build(SchemeKind::NoSharing);
    let dir = state_dir("meta-events");

    let obs = Obs::enabled();
    let (sink, canonical) = MemorySink::new();
    let (meta_sink, meta) = MemorySink::new_with_meta();
    obs.add_sink(Box::new(sink));
    obs.add_sink(Box::new(meta_sink));
    let cache = PathCache::new(world.graph.clone());
    let mut scheme =
        world.kind.build(&world.graph, world.scenario.taxis.len(), world.ctx.clone(), None);
    let mut cfg = base_cfg(1);
    cfg.persist = Some(PersistConfig {
        state_dir: dir.clone(),
        checkpoint_every: 16,
        resume: false,
        crash_at: None,
        ..PersistConfig::new(&dir)
    });
    let out = Simulator::new(world.graph.clone(), cache, &world.scenario, cfg)
        .with_obs(obs)
        .run_to_outcome(scheme.as_mut());
    assert!(matches!(out, RunOutcome::Finished(_)));

    let canonical = canonical.lock().unwrap().clone();
    let meta = meta.lock().unwrap().clone();
    assert!(!canonical.contains(r#""ev":"checkpoint""#), "meta leaked into canonical trace");
    assert!(meta.contains(r#""ev":"checkpoint""#), "meta sink must see checkpoints:\n{meta}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[should_panic(expected = "snapshot was taken under scheme")]
fn resuming_under_a_different_scheme_refuses() {
    let mut world = TestWorld::build(SchemeKind::NoSharing);
    let dir = state_dir("wrong-scheme");
    let mut cfg = base_cfg(1);
    cfg.persist = Some(fresh_persist(&dir, 57));
    let _ = world.run(cfg);

    // Same scenario, different dispatcher: the manifest check must trip.
    world.kind = SchemeKind::TShare;
    world.ctx = None;
    let mut cfg = base_cfg(1);
    cfg.persist = Some(resume_persist(&dir));
    let _ = world.run(cfg);
}
