//! Event-driven ridesharing simulator.
//!
//! Owns the clock, the fleet and the request stream; a
//! [`DispatchScheme`] proposes assignments. Taxis move along their
//! committed [`TimedRoute`]s at constant speed, so positions and event
//! completions are read analytically — no ticking. Offline requests are
//! revealed only when a taxi *encounters* them: its route passes within
//! the encounter radius of the request origin while seats are idle
//! (Sec. IV-C2), upon which the driver reports the request to the server.

use crate::metrics::{Series, ServedRecord, SimReport};
use crate::scenario::Scenario;
use crate::telemetry::classify_rejection;
use mtshare_chaos::{check_taxi, ChaosConfig, Disruption, DisruptionPlan, RetryPolicy};
use mtshare_core::{settle_episode, PassengerTrip, PaymentConfig};
use mtshare_model::{
    DispatchScheme, EventKind, RequestId, RequestStore, RideRequest, Schedule, Taxi, TaxiId, Time,
    TimedRoute, World,
};
use mtshare_obs::{Event, ExternalStats, Obs, RejectReason, RunInfo, Stage};
use mtshare_road::{apply_traffic_shifts, NodeId, RoadNetwork, SpatialGrid, TrafficShiftSpec};
use mtshare_routing::{HotNodeOracle, Path, PathCache};
use rustc_hash::{FxHashMap, FxHashSet};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

#[path = "checkpoint.rs"]
mod checkpoint;
pub use checkpoint::{PersistConfig, RunOutcome};

/// Simulator knobs.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// A taxi perceives an offline request when its route passes within
    /// this distance of the request origin, metres.
    pub encounter_radius_m: f64,
    /// Payment-model parameters.
    pub payment: PaymentConfig,
    /// Dispatch worker threads. `1` runs the sequential reference path;
    /// `> 1` speculatively scores runs of consecutive online arrivals in
    /// parallel and commits them in arrival order, which by construction
    /// produces the same assignments as the sequential path (see
    /// DESIGN.md, "Parallel batch dispatch").
    pub parallelism: usize,
    /// Upper bound on arrivals speculated per batch (bounds wasted work
    /// when an early commit invalidates the rest of the window).
    pub max_batch: usize,
    /// Seeded disruption injection (breakdowns, cancellations, traffic
    /// shifts). `None` runs a fault-free simulation.
    pub chaos: Option<ChaosConfig>,
    /// Retry/backoff budget for re-dispatching orphaned riders.
    pub retry: RetryPolicy,
    /// Cadence (simulation seconds) of the runtime invariant checker;
    /// `None` disables it. Violations are reported through `mtshare-obs`
    /// and counted in the report.
    pub validate_every: Option<f64>,
    /// Checkpoint/WAL persistence (crash-consistent warm restart).
    /// `None` runs without any state directory.
    pub persist: Option<PersistConfig>,
    /// Rolling-horizon batch assignment: online arrivals are buffered
    /// per window and matched jointly through a Kuhn–Munkres solve at
    /// the window flush (see DESIGN.md, "Batch assignment"). `None`
    /// dispatches greedily per arrival. Mutually exclusive with
    /// speculative arrival batching: with a window open, `parallelism`
    /// fans out *window scoring* instead.
    pub batch: Option<BatchConfig>,
}

/// Rolling-horizon batch dispatch knobs ([`SimConfig::batch`]).
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Window length in simulated seconds: requests arriving within a
    /// window are matched together at its flush.
    pub window_s: f64,
    /// How many later windows an unmatched request re-enters before it
    /// is terminally rejected. `0` rejects at the first lost window.
    pub max_retries: u32,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self { window_s: 30.0, max_retries: 2 }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            encounter_radius_m: 60.0,
            payment: PaymentConfig::default(),
            parallelism: 1,
            max_batch: 64,
            chaos: None,
            retry: RetryPolicy::default(),
            validate_every: None,
            persist: None,
            batch: None,
        }
    }
}

/// Extra slack granted when an orphaned rider's deadline is renegotiated:
/// the new deadline is at least `now + RENEG_SLACK × direct`.
const RENEG_SLACK: f64 = 1.5;

/// What one [`Simulator::step_once`] call did. The service runtime
/// ([`crate::engine::SimEngine`]) paces its feed consumption off these;
/// the one-shot loop only ever sees `Progressed`, `Done` and `Crashed`
/// (its watermark is +∞, so it cannot go idle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// One unit of sequential work was consumed.
    Progressed,
    /// Nothing is processable below the watermark: ingest more of the
    /// feed (or close the stream) to make progress.
    Idle,
    /// Heap drained, arrival cursor exhausted, stream closed.
    Done,
    /// A planned in-process crash fired; the WAL is synced.
    Crashed {
        /// Steps fully processed before death.
        step: u64,
    },
    /// Strict durability stopped the run on a storage fault; the WAL
    /// was synced best-effort and the sinks flushed. The state dir is
    /// intact for `--resume`.
    StorageFault {
        /// Steps fully processed before the fault stopped the run.
        step: u64,
    },
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    /// The next schedule event of a taxi completes.
    Taxi { taxi: TaxiId, version: u64 },
    /// A taxi's route passes an offline request's origin.
    Encounter { taxi: TaxiId, request: RequestId, version: u64 },
    /// The `idx`-th planned disruption fires.
    Disruption { idx: usize },
    /// A bounded-retry re-dispatch attempt for an orphaned rider.
    Redispatch { request: RequestId, attempt: u32 },
    /// Runtime invariant sweep (`validate_every` cadence).
    Validate,
    /// The open batch window flushes: its members are matched jointly
    /// (batch mode only; exactly one is pending while the window holds
    /// any member).
    BatchFlush,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct QueuedEv {
    time: Time,
    seq: u64,
    ev: Ev,
}

impl Eq for QueuedEv {}
impl Ord for QueuedEv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.total_cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}
impl PartialOrd for QueuedEv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Default)]
struct Episode {
    trips: Vec<PassengerTrip>,
    onboard_since: Option<Time>,
    onboard_cost_s: f64,
}

/// The simulator. Construct once per run.
pub struct Simulator {
    graph: Arc<RoadNetwork>,
    cache: PathCache,
    oracle: HotNodeOracle,
    taxis: Vec<Taxi>,
    requests: RequestStore,
    cfg: SimConfig,
    // --- event machinery ---
    heap: BinaryHeap<Reverse<QueuedEv>>,
    seq: u64,
    /// Sequential-work counter: one per popped heap event, consumed
    /// arrival or validation sweep — the WAL's notion of position.
    /// Parallelism-independent by the batch-equivalence argument.
    step: u64,
    /// Cursor into the release-ordered request stream (a struct field,
    /// not a run-loop local, so snapshots capture it).
    next_arrival: usize,
    // --- streaming ingestion (service mode; see `crate::engine`) ---
    /// Largest release time the stream has revealed so far. The loop may
    /// only process work at times ≤ this bound: a later feed entry could
    /// still be released anywhere above it. One-shot runs pin it at +∞
    /// (the whole stream is known up front), which makes the gate
    /// vacuous and the loop byte-identical to the classic behavior.
    watermark: Time,
    /// Streaming construction: the request store starts empty and grows
    /// via [`Simulator::ingest_request`]. Snapshots tag the mode so
    /// service-mode state can never restore into a one-shot run.
    streaming: bool,
    /// Stream entries admitted only to be rejected at their arrival step
    /// (admission sheds, post-drain arrivals, unreachable ODs): the
    /// rejection is emitted at release time, not at the earlier decision
    /// time, which keeps the trace monotone in sim time.
    doomed: FxHashMap<RequestId, RejectReason>,
    /// Whether [`Simulator::begin`] restored a snapshot.
    was_resumed: bool,
    /// Armed by the strict durability policy when a storage operation
    /// fails mid-run: the step count at the fault. The run stops at the
    /// current step boundary with [`StepOutcome::StorageFault`].
    storage_fault: Option<u64>,
    // --- persistence ---
    /// Fingerprint of the immutable scenario inputs, taken at
    /// construction; snapshots refuse to load into a different scenario.
    scenario_digest: u64,
    /// Live checkpoint/WAL state (`None` without `SimConfig::persist`).
    persist: Option<checkpoint::PersistRt>,
    /// Future node→arrival map per taxi (rebuilt on commit).
    route_nodes: Vec<FxHashMap<u32, f64>>,
    // --- offline request machinery ---
    pending_offline: FxHashSet<RequestId>,
    /// node → offline requests watching it.
    offline_watch: FxHashMap<u32, Vec<RequestId>>,
    /// request → watched nodes (for cleanup).
    watched_nodes: FxHashMap<RequestId, Vec<u32>>,
    spatial: SpatialGrid,
    // --- disruption machinery ---
    /// The seeded disruption schedule (empty without chaos).
    plan: DisruptionPlan,
    /// Plan indices of the traffic shifts the routing metric currently
    /// reflects (sorted). Only non-empty under a re-customizable router
    /// (`--router cch`): [`Simulator::sync_metric`] keeps it equal to
    /// the set active at the processed work unit's time. Not persisted —
    /// it is a pure function of the plan and the clock, so a resumed run
    /// re-derives it at its first work unit.
    metric_shifts: Vec<usize>,
    /// Per-request terminal-state flag: true once served or rejected.
    /// Guards double accounting across cancels, retries and expiry.
    resolved: Vec<bool>,
    /// Requests cancelled before their release time: rejected on arrival.
    cancelled_pre_release: FxHashSet<RequestId>,
    /// Members of the open batch window, in buffering order, with the
    /// number of windows each already lost. Non-empty iff exactly one
    /// `Ev::BatchFlush` is pending (batch mode only).
    window: Vec<(RequestId, u32)>,
    cancelled: usize,
    redispatched: usize,
    invariant_violations: usize,
    // --- observability ---
    /// Telemetry bus; disabled by default. Events are emitted only from
    /// the sequential commit side, stamped with simulation time, so the
    /// stream is identical at any `parallelism` (see `mtshare-obs` docs).
    obs: Obs,
    /// Latest simulation time processed; stamps end-of-run events so the
    /// emitted stream stays monotone in sim time.
    clock: Time,
    // --- metrics ---
    pickup_time: FxHashMap<RequestId, Time>,
    episodes: Vec<Episode>,
    response_ms: Series,
    waiting_s: Series,
    detour_s: Series,
    candidates: Series,
    served_online: usize,
    served_offline: usize,
    rejected: usize,
    fares_paid: f64,
    fares_solo: f64,
    driver_income: f64,
    benefit: f64,
    served_records: Vec<ServedRecord>,
}

impl Simulator {
    /// Builds a simulator for a materialized scenario. `cache` should be
    /// the one the scenario was generated with so direct costs are warm.
    pub fn new(
        graph: Arc<RoadNetwork>,
        cache: PathCache,
        scenario: &Scenario,
        cfg: SimConfig,
    ) -> Self {
        let oracle = HotNodeOracle::new(graph.clone());
        let spatial = SpatialGrid::build(&graph, 250.0);
        let n_taxis = scenario.taxis.len();
        let requests = scenario.request_store();
        let n_requests = requests.len();
        // The disruption plan is a pure function of the chaos config and
        // the scenario shape, generated once up front — never during the
        // run — so injected faults are identical at any `parallelism`.
        let plan = match &cfg.chaos {
            Some(chaos) => {
                let horizon =
                    requests.iter().map(|r| r.release_time).fold(0.0_f64, f64::max).max(1.0);
                DisruptionPlan::generate(chaos, &graph, horizon, n_taxis, n_requests)
            }
            None => DisruptionPlan::default(),
        };
        let scenario_digest = checkpoint::scenario_digest(&scenario.taxis, &requests);
        Self {
            graph,
            cache,
            oracle,
            taxis: scenario.taxis.clone(),
            requests,
            cfg,
            heap: BinaryHeap::new(),
            seq: 0,
            step: 0,
            next_arrival: 0,
            watermark: f64::INFINITY,
            streaming: false,
            doomed: FxHashMap::default(),
            was_resumed: false,
            storage_fault: None,
            scenario_digest,
            persist: None,
            route_nodes: vec![FxHashMap::default(); n_taxis],
            pending_offline: FxHashSet::default(),
            offline_watch: FxHashMap::default(),
            watched_nodes: FxHashMap::default(),
            spatial,
            plan,
            metric_shifts: Vec::new(),
            resolved: vec![false; n_requests],
            cancelled_pre_release: FxHashSet::default(),
            window: Vec::new(),
            cancelled: 0,
            redispatched: 0,
            invariant_violations: 0,
            obs: Obs::disabled(),
            clock: 0.0,
            pickup_time: FxHashMap::default(),
            episodes: (0..n_taxis).map(|_| Episode::default()).collect(),
            response_ms: Series::default(),
            waiting_s: Series::default(),
            detour_s: Series::default(),
            candidates: Series::default(),
            served_online: 0,
            served_offline: 0,
            rejected: 0,
            fares_paid: 0.0,
            fares_solo: 0.0,
            driver_income: 0.0,
            benefit: 0.0,
            served_records: Vec::new(),
        }
    }

    /// Attaches a telemetry bus. Chainable; call before [`Simulator::run`].
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Replaces the disruption schedule with an explicit plan (targeted
    /// fault tests inject hand-built plans; `SimConfig::chaos` generates
    /// seeded ones). Chainable; call before [`Simulator::run`].
    pub fn with_disruptions(mut self, plan: DisruptionPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Switches to streaming construction for the service runtime
    /// ([`crate::engine::SimEngine`]): the request stream is unknown up
    /// front, so the loop must never advance past the watermark (the
    /// largest ingested release time) until
    /// [`Simulator::close_stream`] declares the feed exhausted.
    /// Construct with an empty-request scenario; chainable.
    pub fn with_streaming(mut self) -> Self {
        self.streaming = true;
        self.watermark = f64::NEG_INFINITY;
        self
    }

    fn world(&self) -> World<'_> {
        World {
            graph: &self.graph,
            cache: &self.cache,
            oracle: &self.oracle,
            taxis: &self.taxis,
            requests: &self.requests,
        }
    }

    fn push_ev(&mut self, time: Time, ev: Ev) {
        self.seq += 1;
        self.heap.push(Reverse(QueuedEv { time, seq: self.seq, ev }));
    }

    /// Runs the scenario to completion and reports the metrics. Panics
    /// if a planned in-process crash point fires; persistence-aware
    /// callers use [`Simulator::run_to_outcome`].
    pub fn run(self, scheme: &mut dyn DispatchScheme) -> SimReport {
        self.run_to_outcome(scheme).report()
    }

    /// Runs the scenario, resuming from a checkpoint and/or stopping at
    /// a planned crash point when `SimConfig::persist` says so.
    pub fn run_to_outcome(mut self, scheme: &mut dyn DispatchScheme) -> RunOutcome {
        let start = std::time::Instant::now();
        self.begin(scheme);
        loop {
            match self.step_once(scheme) {
                StepOutcome::Progressed => {}
                StepOutcome::Idle | StepOutcome::Done => break,
                StepOutcome::Crashed { step } => return RunOutcome::Crashed { step },
                StepOutcome::StorageFault { step } => return RunOutcome::StorageFault { step },
            }
        }
        RunOutcome::Finished(self.finish(scheme, start.elapsed().as_secs_f64()))
    }

    /// Run setup: attaches the obs bus to the scheme and either restores
    /// a snapshot (resume) or installs the scheme, seeds the planned
    /// disruptions and writes the step-0 checkpoint. Must be called
    /// exactly once, before the first [`Simulator::step_once`].
    pub(crate) fn begin(&mut self, scheme: &mut dyn DispatchScheme) {
        scheme.set_obs(self.obs.clone());
        let resumed = self.setup_persistence(scheme);
        self.was_resumed = resumed;
        if !resumed {
            scheme.install(&self.world());

            // Seed the planned disruptions before anything else enters the
            // heap: their low sequence numbers order them ahead of same-time
            // taxi events, deterministically. On resume the restored heap
            // already holds whatever seeding survived, so this (and the
            // install above) must not run again.
            for idx in 0..self.plan.events.len() {
                let at = self.plan.events[idx].at;
                self.push_ev(at, Ev::Disruption { idx });
            }
            if let Some(every) = self.cfg.validate_every {
                self.push_ev(every, Ev::Validate);
            }
            self.initial_checkpoint(scheme);
        }
    }

    /// Consumes one unit of sequential work — the earliest of the next
    /// queued event and the next pending arrival, both gated by the
    /// watermark — or reports why it could not.
    pub(crate) fn step_once(&mut self, scheme: &mut dyn DispatchScheme) -> StepOutcome {
        self.maybe_checkpoint(scheme);
        if let Some(step) = self.storage_fault {
            // The strict durability policy armed the flag (possibly in
            // the checkpoint just attempted): stop at this boundary.
            return StepOutcome::StorageFault { step };
        }
        let t_req = if self.next_arrival < self.requests.len() {
            self.requests.get(RequestId(self.next_arrival as u32)).release_time
        } else {
            f64::INFINITY
        };
        let t_ev = self.heap.peek().map(|Reverse(e)| e.time).unwrap_or(f64::INFINITY);
        if !t_req.is_finite() && !t_ev.is_finite() {
            // No pending work at all. In streaming mode that is merely
            // idle until the stream closes and lifts the watermark to +∞.
            return if self.watermark == f64::INFINITY {
                StepOutcome::Done
            } else {
                StepOutcome::Idle
            };
        }
        if t_ev <= t_req.min(self.watermark) {
            let Reverse(q) = self.heap.pop().expect("peeked");
            self.clock = self.clock.max(q.time);
            self.sync_metric(q.time);
            let kind = if q.ev == Ev::Validate {
                // Handled here rather than in `process_event`: the
                // re-arm decision needs to know whether any work
                // remains, or the sweep would keep the run alive
                // forever. A finite watermark counts as pending work:
                // the stream is still open and more can arrive.
                self.validate_world(q.time, &*scheme);
                if let Some(every) = self.cfg.validate_every {
                    if !self.heap.is_empty() || t_req.is_finite() || self.watermark.is_finite() {
                        self.push_ev(q.time + every, Ev::Validate);
                    }
                }
                checkpoint::KIND_VALIDATE
            } else {
                self.process_event(q, scheme);
                checkpoint::KIND_HEAP
            };
            if self.complete_step(kind, q.time) {
                return self.stop_outcome();
            }
        } else if t_req.is_finite() {
            // An ingested request's release never exceeds the watermark,
            // so this arrival is safe to process ahead of any event past
            // the gate.
            self.clock = self.clock.max(t_req);
            self.sync_metric(t_req);
            // In batch mode arrivals only enter the window buffer, so
            // there is nothing to speculate on; `parallelism` fans out
            // window *scoring* inside the flush instead.
            if self.cfg.parallelism > 1 && self.cfg.batch.is_none() {
                // A traffic-shift boundary (start *or* end) changes the
                // routing metric between arrivals; cut the speculative
                // run there so batch scoring never spans a metric the
                // sequential path would not have used. Shift starts are
                // heap events (already a cut via `t_ev`); shift *ends*
                // are not, hence the explicit boundary.
                let cut = t_ev.min(self.next_metric_boundary(t_req));
                let batch = self.gather_batch(self.next_arrival, cut);
                if batch.len() >= 2 {
                    return if self.process_batch(&batch, scheme) {
                        self.stop_outcome()
                    } else {
                        StepOutcome::Progressed
                    };
                }
            }
            let id = RequestId(self.next_arrival as u32);
            self.next_arrival += 1;
            self.process_arrival(id, scheme);
            if self.complete_step(checkpoint::KIND_ARRIVAL, t_req) {
                return self.stop_outcome();
            }
        } else {
            // The earliest queued event sits beyond the watermark and no
            // arrival is pending: a not-yet-ingested request could still
            // be released first, so the loop must wait for the stream.
            return StepOutcome::Idle;
        }
        StepOutcome::Progressed
    }

    /// The terminal outcome after [`Simulator::complete_step`] (or
    /// [`Simulator::process_batch`]) said the run must stop: a storage
    /// fault if the strict durability policy armed one, otherwise the
    /// planned crash.
    fn stop_outcome(&self) -> StepOutcome {
        match self.storage_fault {
            Some(step) => StepOutcome::StorageFault { step },
            None => StepOutcome::Crashed { step: self.step },
        }
    }

    /// The maximal run of consecutive *online* arrivals starting at
    /// `from` that the sequential loop would process before the earliest
    /// queued event: the `t_ev <= t_req` tie rule above means an arrival
    /// is only processed while its release strictly precedes `t_ev`. An
    /// offline arrival ends the run (registering a watch is cheap and
    /// mutates encounter state).
    fn gather_batch(&self, from: usize, t_ev: Time) -> Vec<RequestId> {
        let mut batch = Vec::new();
        let until = (from + self.cfg.max_batch.max(1)).min(self.requests.len());
        for i in from..until {
            let id = RequestId(i as u32);
            let req = self.requests.get(id);
            // A pre-release-cancelled (or stream-doomed) arrival is
            // rejected, not dispatched; end the run so the sequential
            // path handles it identically.
            if req.offline
                || t_ev <= req.release_time
                || self.cancelled_pre_release.contains(&id)
                || self.doomed.contains_key(&id)
            {
                break;
            }
            batch.push(id);
        }
        batch
    }

    /// Re-customizes the routing metric to the traffic shifts active at
    /// `t` when the router supports it (`--router cch`). Without a
    /// re-customizable backend this is a no-op and traffic shifts keep
    /// their stretch-only treatment, so existing `--router bidir|ch`
    /// traces are unchanged. Runs before the work unit at `t` is
    /// processed, so a shift-start disruption repairs routes against the
    /// already-shifted metric and the first work unit past a shift's end
    /// sees the restored one.
    fn sync_metric(&mut self, t: Time) {
        if self.cache.customizable().is_none() {
            return;
        }
        let active: Vec<usize> = self
            .plan
            .events
            .iter()
            .enumerate()
            .filter(|(_, e)| match e.disruption {
                Disruption::TrafficShift(spec) => spec.active_at(t),
                _ => false,
            })
            .map(|(i, _)| i)
            .collect();
        if active == self.metric_shifts {
            return;
        }
        let _span = self.obs.stage(Stage::Customize);
        let shifted = if active.is_empty() {
            self.graph.clone()
        } else {
            let specs: Vec<TrafficShiftSpec> = active
                .iter()
                .map(|&i| match self.plan.events[i].disruption {
                    Disruption::TrafficShift(spec) => spec,
                    _ => unreachable!("filtered to traffic shifts above"),
                })
                .collect();
            let g = apply_traffic_shifts(&self.graph, &specs)
                .expect("traffic shift preserves graph validity");
            Arc::new(g)
        };
        self.cache.recustomize(shifted.clone());
        self.oracle.retarget(shifted);
        self.metric_shifts = active;
    }

    /// The earliest traffic-shift start or end strictly after `t`, or
    /// +∞ when none remain or the router is not re-customizable. Used
    /// to cut speculative arrival batches at metric changes.
    fn next_metric_boundary(&self, t: Time) -> Time {
        if self.cache.customizable().is_none() {
            return f64::INFINITY;
        }
        let mut next = f64::INFINITY;
        for e in &self.plan.events {
            if let Disruption::TrafficShift(spec) = e.disruption {
                for b in [spec.start_s, spec.end_s()] {
                    if b > t && b < next {
                        next = b;
                    }
                }
            }
        }
        next
    }

    // --- streaming ingestion (service mode; see `crate::engine`) ---

    /// Appends one stream entry to the request store with the next dense
    /// id, recomputing its direct cost, and raises the watermark to its
    /// release time. `doom` marks the entry admission-rejected: it still
    /// consumes its arrival step, where the rejection is emitted. An
    /// unreachable (or zero-cost) OD dooms the entry on its own — the
    /// one-shot generator filters those out at materialization, but a
    /// live feed can carry anything.
    pub(crate) fn ingest_request(
        &mut self,
        entry: crate::engine::IngestEntry,
        doom: Option<RejectReason>,
    ) -> RequestId {
        debug_assert!(self.streaming, "ingest into a one-shot simulator");
        let id = RequestId(self.requests.len() as u32);
        let mut doom = doom;
        let direct_cost_s = match self.cache.cost(entry.origin, entry.destination) {
            Some(c) if c > 0.0 => c,
            _ => {
                doom = doom.or(Some(RejectReason::UnreachableOd));
                0.0
            }
        };
        self.requests.push(RideRequest {
            id,
            release_time: entry.release,
            origin: entry.origin,
            destination: entry.destination,
            passengers: entry.passengers,
            deadline: entry.deadline,
            direct_cost_s,
            offline: entry.offline,
        });
        self.resolved.push(false);
        if let Some(reason) = doom {
            self.doomed.insert(id, reason);
        }
        self.watermark = self.watermark.max(entry.release);
        id
    }

    /// Declares the stream exhausted: lifts the watermark to +∞ so the
    /// loop can run everything still pending down to [`StepOutcome::Done`].
    pub(crate) fn close_stream(&mut self) {
        self.watermark = f64::INFINITY;
    }

    /// Latest simulation time processed.
    pub(crate) fn clock(&self) -> Time {
        self.clock
    }

    /// Sequential-work step counter (the WAL position).
    pub(crate) fn step_count(&self) -> u64 {
        self.step
    }

    /// Step at which the strict durability policy stopped the run, if a
    /// storage fault fired.
    pub(crate) fn storage_fault(&self) -> Option<u64> {
        self.storage_fault
    }

    /// Requests in the store — in streaming mode, exactly the entries
    /// ingested so far (restored ones included after a resume).
    pub(crate) fn n_ingested(&self) -> usize {
        self.requests.len()
    }

    /// Whether [`Simulator::begin`] restored a snapshot.
    pub(crate) fn was_resumed(&self) -> bool {
        self.was_resumed
    }

    /// Speculatively scores `ids` against the current world in parallel,
    /// then commits the results sequentially in arrival order,
    /// revalidating each (and re-dispatching on conflict) so the outcome
    /// is identical to processing the arrivals one by one. Advances
    /// `next_arrival` per consumed arrival — a commit can queue an event
    /// that sequentially precedes a later arrival in the batch, at which
    /// point the remainder is abandoned and replayed through the main
    /// loop. Returns the crash flag: `true` when a planned in-process
    /// crash fired mid-batch and the run must stop.
    fn process_batch(&mut self, ids: &[RequestId], scheme: &mut dyn DispatchScheme) -> bool {
        let reqs: Vec<RideRequest> = ids.iter().map(|&id| self.requests.get(id).clone()).collect();
        // Pin every batch endpoint up front (infrastructure, untimed — as
        // in `try_dispatch`). The oracle's bwd-first canonical lookup
        // guarantees the extra pins cannot change any cost the sequential
        // path would read.
        for r in &reqs {
            self.oracle.pin(r.origin);
            self.oracle.pin(r.destination);
        }
        let specs = {
            let world = World {
                graph: &self.graph,
                cache: &self.cache,
                oracle: &self.oracle,
                taxis: &self.taxis,
                requests: &self.requests,
            };
            scheme.dispatch_batch_speculative(&reqs, &world)
        };
        let Some(specs) = specs else {
            // Scheme has no speculative path: hand the first arrival to
            // the sequential route (which re-pins; pins are refcounted).
            for r in &reqs {
                self.oracle.unpin(r.origin);
                self.oracle.unpin(r.destination);
            }
            self.next_arrival += 1;
            self.process_arrival(ids[0], scheme);
            return self.complete_step(checkpoint::KIND_ARRIVAL, reqs[0].release_time);
        };

        for (k, req) in reqs.iter().enumerate() {
            if k > 0 {
                let t_ev = self.heap.peek().map(|Reverse(e)| e.time).unwrap_or(f64::INFINITY);
                if t_ev <= req.release_time {
                    // An earlier commit queued an event the sequential
                    // loop would process before this arrival: abandon the
                    // rest of the batch.
                    for r in &reqs[k..] {
                        self.oracle.unpin(r.origin);
                        self.oracle.unpin(r.destination);
                    }
                    break;
                }
            }
            self.next_arrival += 1;
            let now = req.release_time;
            self.clock = self.clock.max(now);
            // Events replay exactly what the sequential loop would emit:
            // arrival, then the dispatch verdict, in arrival order.
            self.obs.emit(Event::Arrival { t: now, req: req.id.0, offline: false });
            let t0 = std::time::Instant::now();
            let outcome = {
                let world = World {
                    graph: &self.graph,
                    cache: &self.cache,
                    oracle: &self.oracle,
                    taxis: &self.taxis,
                    requests: &self.requests,
                };
                if scheme.validate_speculative(req, now, &world, &specs[k]) {
                    specs[k].outcome.clone()
                } else {
                    scheme.dispatch(req, now, &world)
                }
            };
            let elapsed = t0.elapsed().as_secs_f64();
            self.response_ms.push(elapsed * 1000.0);
            self.obs.record_response_s(elapsed);
            self.candidates.push(outcome.candidates_examined as f64);
            self.obs.emit(Event::Dispatch {
                t: now,
                req: req.id.0,
                candidates: outcome.candidates_examined as u32,
                feasible: outcome.feasible_instances as u32,
            });
            match outcome.assignment {
                Some(a) => self.commit(req, a, now, scheme),
                None => {
                    self.oracle.unpin(req.origin);
                    self.oracle.unpin(req.destination);
                    self.rejected += 1;
                    self.resolved[req.id.index()] = true;
                    self.emit_reject(req, now);
                }
            }
            // Each consumed arrival is one step, exactly as on the
            // sequential path — the WAL's positions (and digests, which
            // cover the arrival cursor) are parallelism-independent. A
            // mid-batch crash abandons the still-pinned remainder; the
            // world is discarded anyway.
            if self.complete_step(checkpoint::KIND_ARRIVAL, now) {
                return true;
            }
        }
        false
    }

    /// Classifies and emits a rejection event (enabled-telemetry only:
    /// classification probes the path cache, which the accept path never
    /// pays for).
    fn emit_reject(&self, req: &RideRequest, now: Time) {
        if !self.obs.is_enabled() {
            return;
        }
        let world = World {
            graph: &self.graph,
            cache: &self.cache,
            oracle: &self.oracle,
            taxis: &self.taxis,
            requests: &self.requests,
        };
        let reason = classify_rejection(req, &world);
        self.obs.emit(Event::Reject { t: now, req: req.id.0, reason });
    }

    fn process_arrival(&mut self, id: RequestId, scheme: &mut dyn DispatchScheme) {
        let req = self.requests.get(id).clone();
        self.obs.emit(Event::Arrival { t: req.release_time, req: req.id.0, offline: req.offline });
        if let Some(reason) = self.doomed.remove(&id) {
            // Admission-rejected stream entry: it consumed its arrival
            // step like any other request, and the rejection lands here —
            // at release time — so the trace stays monotone.
            self.reject_with(id, req.release_time, reason);
            return;
        }
        if self.cancelled_pre_release.remove(&id) {
            // Withdrawn before release: terminal on arrival, no dispatch.
            self.reject_with(id, req.release_time, RejectReason::CancelledByPassenger);
            return;
        }
        if req.offline {
            self.register_offline(&req);
        } else if let Some(window_s) = self.cfg.batch.as_ref().map(|b| b.window_s) {
            // Batch mode: buffer the arrival; the whole window is matched
            // at the flush. The first member of a window arms its flush —
            // the invariant is one pending flush iff the window is
            // non-empty, so an arrival can never arm a second one.
            if self.window.is_empty() {
                self.push_ev(req.release_time + window_s, Ev::BatchFlush);
            }
            self.window.push((id, 0));
        } else {
            self.try_dispatch(&req, req.release_time, None, true, scheme);
        }
    }

    /// Runs a (timed) dispatch and commits on success. Returns success.
    ///
    /// `account_reject` controls whether an online failure is terminal
    /// (counted + classified); recovery re-dispatch attempts pass `false`
    /// and do their own retry/exhaustion accounting.
    fn try_dispatch(
        &mut self,
        req: &RideRequest,
        now: Time,
        encountered_by: Option<TaxiId>,
        account_reject: bool,
        scheme: &mut dyn DispatchScheme,
    ) -> bool {
        // Pin before the timer starts: the paper's response times assume
        // the shortest-path cache is already resident (Sec. V-A4), so the
        // per-request vector precomputation is infrastructure, not
        // matching latency. The exclusion applies uniformly to all schemes.
        self.oracle.pin(req.origin);
        self.oracle.pin(req.destination);
        let t0 = std::time::Instant::now();
        let out = {
            let world = World {
                graph: &self.graph,
                cache: &self.cache,
                oracle: &self.oracle,
                taxis: &self.taxis,
                requests: &self.requests,
            };
            match encountered_by {
                Some(t) => scheme.dispatch_offline(req, t, now, &world),
                None => scheme.dispatch(req, now, &world),
            }
        };
        let elapsed = t0.elapsed().as_secs_f64();
        self.response_ms.push(elapsed * 1000.0);
        self.obs.record_response_s(elapsed);
        self.candidates.push(out.candidates_examined as f64);
        self.obs.emit(Event::Dispatch {
            t: now,
            req: req.id.0,
            candidates: out.candidates_examined as u32,
            feasible: out.feasible_instances as u32,
        });
        match out.assignment {
            Some(a) => {
                self.commit(req, a, now, scheme);
                true
            }
            None => {
                self.oracle.unpin(req.origin);
                self.oracle.unpin(req.destination);
                if encountered_by.is_none() && account_reject {
                    self.rejected += 1;
                    self.resolved[req.id.index()] = true;
                    self.emit_reject(req, now);
                }
                false
            }
        }
    }

    /// Terminally rejects `id` with an explicit (chaos-path) reason.
    fn reject_with(&mut self, id: RequestId, now: Time, reason: RejectReason) {
        self.rejected += 1;
        self.resolved[id.index()] = true;
        if reason == RejectReason::CancelledByPassenger {
            self.cancelled += 1;
        }
        self.obs.emit(Event::Reject { t: now, req: id.0, reason });
    }

    fn commit(
        &mut self,
        req: &RideRequest,
        a: mtshare_model::Assignment,
        now: Time,
        scheme: &mut dyn DispatchScheme,
    ) {
        let _span = self.obs.stage(Stage::Commit);
        self.obs.emit(Event::Commit {
            t: now,
            req: req.id.0,
            taxi: a.taxi.0,
            detour_s: a.detour_cost_s,
            schedule_len: a.schedule.len() as u32,
        });
        let taxi = &mut self.taxis[a.taxi.index()];
        let pos = taxi.position_at(now);
        taxi.location = pos;
        taxi.location_time = now;
        taxi.assigned.push(req.id);
        let route = TimedRoute::build_on(&self.graph, pos, now, &a.legs, &a.schedule);
        taxi.set_plan(a.schedule, route, now);
        let version = taxi.route_version;
        let next_event = taxi.next_event_time();
        let taxi_id = a.taxi;

        // Rebuild the future-node map for encounter detection.
        let map = &mut self.route_nodes[taxi_id.index()];
        map.clear();
        if let Some(route) = &self.taxis[taxi_id.index()].route {
            for (n, t) in route.nodes.iter().zip(&route.arrival_s) {
                map.entry(n.0).or_insert(*t);
            }
        }

        if let Some(t) = next_event {
            self.push_ev(t, Ev::Taxi { taxi: taxi_id, version });
        }
        {
            let world = World {
                graph: &self.graph,
                cache: &self.cache,
                oracle: &self.oracle,
                taxis: &self.taxis,
                requests: &self.requests,
            };
            scheme.after_assign(&self.taxis[taxi_id.index()], &world);
        }

        // New route may pass pending offline requests.
        self.scan_route_for_offline(taxi_id, now);
    }

    /// Pushes encounter events for pending offline requests on this
    /// taxi's future route.
    fn scan_route_for_offline(&mut self, taxi: TaxiId, now: Time) {
        if self.pending_offline.is_empty() {
            return;
        }
        let version = self.taxis[taxi.index()].route_version;
        let mut hits: Vec<(Time, RequestId)> = Vec::new();
        for (&node, reqs) in &self.offline_watch {
            if let Some(&t) = self.route_nodes[taxi.index()].get(&node) {
                if t >= now {
                    for &r in reqs {
                        if self.pending_offline.contains(&r) {
                            hits.push((t, r));
                        }
                    }
                }
            }
        }
        // The watch table iterates in hash order; sort before queueing so
        // the `seq` numbers handed out are a function of world state, not
        // of container history (a rebuilt-after-restore map would
        // otherwise order same-time encounters differently).
        hits.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        for (t, r) in hits {
            let req = self.requests.get(r);
            if t <= req.pickup_deadline() && t >= req.release_time {
                self.push_ev(t, Ev::Encounter { taxi, request: r, version });
            }
        }
    }

    fn register_offline(&mut self, req: &RideRequest) {
        let origin_pt = self.graph.point(req.origin);
        let nodes = self.spatial.nodes_within(&self.graph, &origin_pt, self.cfg.encounter_radius_m);
        self.pending_offline.insert(req.id);
        let mut watched = Vec::with_capacity(nodes.len());
        for n in nodes {
            self.offline_watch.entry(n.0).or_default().push(req.id);
            watched.push(n.0);
        }
        self.watched_nodes.insert(req.id, watched);

        // Current fleet: parked taxis at the spot and busy taxis whose
        // committed routes will pass by.
        let now = req.release_time;
        for i in 0..self.taxis.len() {
            let taxi = &self.taxis[i];
            if !taxi.alive {
                continue; // a dead taxi is parked but never encounters
            }
            let id = taxi.id;
            let version = taxi.route_version;
            if taxi.route.is_none() {
                let pos = taxi.position_at(now);
                if self.graph.point(pos).distance_m(&origin_pt) <= self.cfg.encounter_radius_m {
                    self.push_ev(now, Ev::Encounter { taxi: id, request: req.id, version });
                }
            } else {
                let mut earliest: Option<Time> = None;
                for n in self.watched_nodes[&req.id].iter() {
                    if let Some(&t) = self.route_nodes[i].get(n) {
                        if t >= now && earliest.is_none_or(|e| t < e) {
                            earliest = Some(t);
                        }
                    }
                }
                if let Some(t) = earliest {
                    if t <= req.pickup_deadline() {
                        self.push_ev(t, Ev::Encounter { taxi: id, request: req.id, version });
                    }
                }
            }
        }
    }

    fn drop_offline_watch(&mut self, id: RequestId) {
        self.pending_offline.remove(&id);
        if let Some(nodes) = self.watched_nodes.remove(&id) {
            for n in nodes {
                if let Some(v) = self.offline_watch.get_mut(&n) {
                    v.retain(|&r| r != id);
                    if v.is_empty() {
                        self.offline_watch.remove(&n);
                    }
                }
            }
        }
    }

    fn process_event(&mut self, q: QueuedEv, scheme: &mut dyn DispatchScheme) {
        match q.ev {
            Ev::Taxi { taxi, version } => self.process_taxi_event(q.time, taxi, version, scheme),
            Ev::Encounter { taxi, request, version } => {
                self.process_encounter(q.time, taxi, request, version, scheme)
            }
            Ev::Disruption { idx } => self.process_disruption(q.time, idx, scheme),
            Ev::Redispatch { request, attempt } => {
                self.process_redispatch(q.time, request, attempt, scheme)
            }
            Ev::BatchFlush => self.process_batch_flush(q.time, scheme),
            Ev::Validate => unreachable!("Validate is handled in the run loop"),
        }
    }

    fn process_taxi_event(
        &mut self,
        t: Time,
        taxi_id: TaxiId,
        version: u64,
        scheme: &mut dyn DispatchScheme,
    ) {
        {
            let taxi = &self.taxis[taxi_id.index()];
            if !taxi.alive || taxi.route_version != version || taxi.schedule.is_empty() {
                return; // superseded plan (or the taxi died: `fail` bumps
                        // the version, the alive check is belt and braces)
            }
        }
        let (ev, next_time) = {
            let taxi = &mut self.taxis[taxi_id.index()];
            let ev = taxi.complete_next_event(t);
            (ev, taxi.next_event_time())
        };
        let req = self.requests.get(ev.request).clone();
        match ev.kind {
            EventKind::Pickup => {
                self.waiting_s.push(t - req.release_time);
                self.obs.emit(Event::Pickup {
                    t,
                    req: req.id.0,
                    taxi: taxi_id.0,
                    wait_s: t - req.release_time,
                });
                self.pickup_time.insert(req.id, t);
                let ep = &mut self.episodes[taxi_id.index()];
                if ep.onboard_since.is_none() {
                    ep.onboard_since = Some(t);
                }
            }
            EventKind::Dropoff => {
                let picked = self.pickup_time.remove(&req.id).unwrap_or(req.release_time);
                let shared = t - picked;
                self.detour_s.push((shared - req.direct_cost_s).max(0.0));
                self.obs.emit(Event::Dropoff {
                    t,
                    req: req.id.0,
                    taxi: taxi_id.0,
                    detour_s: (shared - req.direct_cost_s).max(0.0),
                });
                if req.offline {
                    self.served_offline += 1;
                } else {
                    self.served_online += 1;
                }
                self.resolved[req.id.index()] = true;
                self.served_records.push(ServedRecord {
                    request: req.id.0,
                    taxi: taxi_id.0,
                    pickup_t: picked,
                    dropoff_t: t,
                });
                self.oracle.unpin(req.origin);
                self.oracle.unpin(req.destination);
                let taxi = &self.taxis[taxi_id.index()];
                let ep = &mut self.episodes[taxi_id.index()];
                ep.trips.push(PassengerTrip {
                    request: req.id,
                    shared_cost_s: shared,
                    direct_cost_s: req.direct_cost_s,
                });
                if taxi.onboard.is_empty() {
                    if let Some(since) = ep.onboard_since.take() {
                        ep.onboard_cost_s += t - since;
                    }
                    if taxi.is_vacant() {
                        self.settle_taxi(taxi_id);
                    }
                }
            }
        }
        if let Some(nt) = next_time {
            self.push_ev(nt, Ev::Taxi { taxi: taxi_id, version });
        }
        {
            let world = World {
                graph: &self.graph,
                cache: &self.cache,
                oracle: &self.oracle,
                taxis: &self.taxis,
                requests: &self.requests,
            };
            scheme.on_taxi_progress(&self.taxis[taxi_id.index()], t, &world);
        }
    }

    fn process_encounter(
        &mut self,
        t: Time,
        taxi_id: TaxiId,
        request: RequestId,
        version: u64,
        scheme: &mut dyn DispatchScheme,
    ) {
        if !self.pending_offline.contains(&request) {
            return;
        }
        let req = self.requests.get(request).clone();
        if t > req.pickup_deadline() {
            self.drop_offline_watch(request);
            self.rejected += 1;
            self.resolved[request.index()] = true;
            self.obs.emit(Event::Reject { t, req: req.id.0, reason: RejectReason::OfflineExpired });
            return;
        }
        {
            let taxi = &self.taxis[taxi_id.index()];
            if !taxi.alive || taxi.route_version != version {
                return; // route changed (or the taxi broke down); a rescan
                        // already queued any events that still apply
            }
            // The encountering taxi needs an idle seat to stop at all.
            if taxi.idle_seats(&self.requests) < req.passengers as u32 {
                return;
            }
        }
        // Driver reports the request; the server matches it (possibly to
        // another taxi).
        self.obs.emit(Event::Encounter { t, req: req.id.0, taxi: taxi_id.0 });
        self.pending_offline.remove(&request);
        if self.try_dispatch(&req, t, Some(taxi_id), true, scheme) {
            self.drop_offline_watch_only(request);
        } else {
            // Stays pending for future encounters.
            self.pending_offline.insert(request);
        }
    }

    fn drop_offline_watch_only(&mut self, id: RequestId) {
        if let Some(nodes) = self.watched_nodes.remove(&id) {
            for n in nodes {
                if let Some(v) = self.offline_watch.get_mut(&n) {
                    v.retain(|&r| r != id);
                    if v.is_empty() {
                        self.offline_watch.remove(&n);
                    }
                }
            }
        }
    }

    // --- disruption injection & recovery -------------------------------

    fn process_disruption(&mut self, t: Time, idx: usize, scheme: &mut dyn DispatchScheme) {
        match self.plan.events[idx].disruption {
            Disruption::Breakdown { taxi } => self.process_breakdown(t, taxi, scheme),
            Disruption::Cancel { request } => self.process_cancel(t, request, scheme),
            Disruption::TrafficShift(spec) => self.process_traffic_shift(t, spec, scheme),
        }
    }

    /// A taxi drops out of service: park it, settle its episode, reconcile
    /// it out of the scheme's indexes and re-enqueue its stranded riders.
    fn process_breakdown(&mut self, t: Time, taxi_id: TaxiId, scheme: &mut dyn DispatchScheme) {
        if !self.taxis[taxi_id.index()].alive {
            return;
        }
        // Close the running occupancy window before the plan is torn down
        // so the episode settles over the cost actually driven.
        if let Some(since) = self.episodes[taxi_id.index()].onboard_since.take() {
            self.episodes[taxi_id.index()].onboard_cost_s += t - since;
        }
        let (onboard, assigned) = self.taxis[taxi_id.index()].fail(t);
        self.route_nodes[taxi_id.index()].clear();
        self.settle_taxi(taxi_id);
        self.obs.emit(Event::Breakdown {
            t,
            taxi: taxi_id.0,
            orphans: (onboard.len() + assigned.len()) as u32,
        });
        {
            let world = World {
                graph: &self.graph,
                cache: &self.cache,
                oracle: &self.oracle,
                taxis: &self.taxis,
                requests: &self.requests,
            };
            scheme.on_taxi_removed(&self.taxis[taxi_id.index()], &world);
        }
        let fail_node = self.taxis[taxi_id.index()].location;
        for r in onboard {
            self.enqueue_orphan(r, t, Some(fail_node));
        }
        for r in assigned {
            self.enqueue_orphan(r, t, None);
        }
    }

    /// Detaches an orphaned rider from its (gone) plan and schedules the
    /// first bounded-retry re-dispatch attempt. Riders already picked up
    /// pass the node they are stranded at: the request re-enters the
    /// queue from there, with its deadline renegotiated to keep the
    /// remaining trip feasible.
    fn enqueue_orphan(&mut self, request: RequestId, now: Time, stranded_at: Option<NodeId>) {
        if self.resolved[request.index()] {
            return;
        }
        // Balance the commit-time pins; each retry attempt re-pins.
        {
            let req = self.requests.get(request);
            self.oracle.unpin(req.origin);
            self.oracle.unpin(req.destination);
        }
        self.pickup_time.remove(&request);
        let direct = {
            let req = self.requests.get(request);
            let origin = stranded_at.unwrap_or(req.origin);
            self.cache.cost(origin, req.destination)
        };
        let Some(direct) = direct else {
            // No road leads onward from the breakdown position.
            self.reject_with(request, now, RejectReason::TaxiFailed);
            return;
        };
        {
            let req = self.requests.get_mut(request);
            if let Some(node) = stranded_at {
                req.origin = node;
            }
            req.direct_cost_s = direct;
            req.deadline = req.deadline.max(now + RENEG_SLACK * direct);
        }
        if !self.taxis.iter().any(|x| x.alive) {
            // Nothing is left to retry against, and nothing will revive.
            self.reject_with(request, now, RejectReason::TaxiFailed);
            return;
        }
        self.push_ev(now + self.cfg.retry.delay_s(1), Ev::Redispatch { request, attempt: 1 });
    }

    /// A rider withdraws before pickup. The terminal accounting is a
    /// `CancelledByPassenger` rejection (so `served + rejected` still
    /// covers every request); an informational `cancel` event precedes it.
    fn process_cancel(&mut self, t: Time, request: RequestId, scheme: &mut dyn DispatchScheme) {
        if self.resolved[request.index()] || self.pickup_time.contains_key(&request) {
            return; // already terminal, or onboard: too late to cancel
        }
        let req = self.requests.get(request).clone();
        if req.release_time > t {
            // Not yet released: reject at arrival, keeping the event
            // stream in request order.
            self.cancelled_pre_release.insert(request);
            self.obs.emit(Event::Cancel { t, req: request.0, assigned: false });
            return;
        }
        if self.pending_offline.contains(&request) {
            self.drop_offline_watch(request);
            self.obs.emit(Event::Cancel { t, req: request.0, assigned: false });
            self.reject_with(request, t, RejectReason::CancelledByPassenger);
            return;
        }
        match self.taxis.iter().position(|x| x.assigned.contains(&request)) {
            Some(i) => {
                let taxi_id = TaxiId(i as u32);
                self.taxis[i].assigned.retain(|&r| r != request);
                let schedule = self.taxis[i].schedule.without_request(request);
                if !self.rebuild_plan(taxi_id, schedule, t, scheme) {
                    self.taxis[i].assigned.push(request);
                    return; // repair impossible; the committed plan stands
                }
                self.oracle.unpin(req.origin);
                self.oracle.unpin(req.destination);
                self.obs.emit(Event::Cancel { t, req: request.0, assigned: true });
                self.reject_with(request, t, RejectReason::CancelledByPassenger);
            }
            None => {
                // Waiting unassigned (an orphan between retry attempts):
                // terminal now, the pending retry no-ops via `resolved`.
                self.obs.emit(Event::Cancel { t, req: request.0, assigned: false });
                self.reject_with(request, t, RejectReason::CancelledByPassenger);
            }
        }
    }

    /// A localized slowdown: committed routes through the region stretch
    /// in place (quasi-static repair — window membership is judged on the
    /// pre-stretch timetable, and repaired or newly committed routes use
    /// base costs; see DESIGN.md, "Fault model & recovery"). Riders whose
    /// deadlines the delay breaks are renegotiated or re-enqueued.
    fn process_traffic_shift(
        &mut self,
        t: Time,
        spec: TrafficShiftSpec,
        scheme: &mut dyn DispatchScheme,
    ) {
        self.obs.emit(Event::TrafficShift {
            t,
            node: spec.center.0,
            radius_m: spec.radius_m,
            factor: spec.factor,
            duration_s: spec.duration_s,
        });
        for i in 0..self.taxis.len() {
            if !self.taxis[i].alive || self.taxis[i].route.is_none() {
                continue;
            }
            let taxi_id = TaxiId(i as u32);
            let delay = {
                let graph = &self.graph;
                let route = self.taxis[i].route.as_mut().expect("checked");
                route.stretch(t, spec.end_s(), spec.factor, |n| spec.covers(graph, n))
            };
            if delay <= 1e-9 {
                continue;
            }
            // Audit the stretched timetable: unpicked riders whose pickup
            // deadline is now missed get dropped and re-dispatched;
            // late-running onboard riders get their deadlines extended.
            let mut dropped: Vec<RequestId> = Vec::new();
            let mut late_dropoffs: Vec<(RequestId, Time)> = Vec::new();
            {
                let taxi = &self.taxis[i];
                let route = taxi.route.as_ref().expect("checked");
                for (k, ev) in taxi.schedule.events().iter().enumerate() {
                    let when = route.event_time(k);
                    match ev.kind {
                        EventKind::Pickup => {
                            if when > self.requests.get(ev.request).pickup_deadline() {
                                dropped.push(ev.request);
                            }
                        }
                        EventKind::Dropoff => {
                            if !dropped.contains(&ev.request)
                                && when > self.requests.get(ev.request).deadline
                            {
                                late_dropoffs.push((ev.request, when));
                            }
                        }
                    }
                }
            }
            let mut renegotiated = 0u32;
            for (r, when) in late_dropoffs {
                let req = self.requests.get_mut(r);
                if req.deadline < when + 1.0 {
                    req.deadline = when + 1.0;
                    renegotiated += 1;
                }
            }
            let n_dropped;
            if dropped.is_empty() {
                n_dropped = 0;
                self.rearm_stretched(taxi_id, t, scheme);
            } else {
                let mut schedule = self.taxis[i].schedule.clone();
                for &r in &dropped {
                    schedule = schedule.without_request(r);
                    self.taxis[i].assigned.retain(|&x| x != r);
                }
                if self.rebuild_plan(taxi_id, schedule, t, scheme) {
                    for &r in &dropped {
                        self.enqueue_orphan(r, t, None);
                    }
                    n_dropped = dropped.len() as u32;
                } else {
                    // Repair impossible: keep the stretched plan and
                    // extend the affected riders' deadlines instead.
                    let mut extend: Vec<(RequestId, Time)> = Vec::new();
                    {
                        let taxi = &mut self.taxis[i];
                        taxi.assigned.extend(dropped.iter().copied());
                        let route = taxi.route.as_ref().expect("checked");
                        for (k, ev) in taxi.schedule.events().iter().enumerate() {
                            if ev.kind == EventKind::Dropoff && dropped.contains(&ev.request) {
                                extend.push((ev.request, route.event_time(k)));
                            }
                        }
                    }
                    for (r, when) in extend {
                        let req = self.requests.get_mut(r);
                        if req.deadline < when + 1.0 {
                            req.deadline = when + 1.0;
                            renegotiated += 1;
                        }
                    }
                    n_dropped = 0;
                    self.rearm_stretched(taxi_id, t, scheme);
                }
            }
            self.obs.emit(Event::Reroute { t, taxi: taxi_id.0, renegotiated, dropped: n_dropped });
        }
    }

    /// Re-arms a taxi whose route timetable was stretched in place: bumps
    /// the version (queued events carry stale times), refreshes the
    /// encounter map and re-queues the next schedule event.
    fn rearm_stretched(&mut self, taxi_id: TaxiId, now: Time, scheme: &mut dyn DispatchScheme) {
        let i = taxi_id.index();
        self.taxis[i].route_version += 1;
        let version = self.taxis[i].route_version;
        let map = &mut self.route_nodes[i];
        map.clear();
        if let Some(route) = &self.taxis[i].route {
            for (n, tt) in route.nodes.iter().zip(&route.arrival_s) {
                map.entry(n.0).or_insert(*tt);
            }
        }
        if let Some(nt) = self.taxis[i].next_event_time() {
            self.push_ev(nt, Ev::Taxi { taxi: taxi_id, version });
        }
        let world = World {
            graph: &self.graph,
            cache: &self.cache,
            oracle: &self.oracle,
            taxis: &self.taxis,
            requests: &self.requests,
        };
        scheme.on_taxi_progress(&self.taxis[i], now, &world);
    }

    /// Replaces `taxi_id`'s plan with `schedule`, routing every leg from
    /// its position at `now` over base costs. Returns `false` — world
    /// untouched — when some leg cannot be routed.
    fn rebuild_plan(
        &mut self,
        taxi_id: TaxiId,
        schedule: Schedule,
        now: Time,
        scheme: &mut dyn DispatchScheme,
    ) -> bool {
        let i = taxi_id.index();
        let pos = self.taxis[i].position_at(now);
        let mut legs: Vec<Path> = Vec::with_capacity(schedule.len());
        let mut prev = pos;
        for ev in schedule.events() {
            match self.cache.path(prev, ev.node) {
                Some(p) => {
                    legs.push(p);
                    prev = ev.node;
                }
                None => return false,
            }
        }
        {
            let taxi = &mut self.taxis[i];
            taxi.location = pos;
            taxi.location_time = now;
            if schedule.is_empty() {
                taxi.schedule = Schedule::new();
                taxi.route = None;
                taxi.route_version += 1;
            } else {
                let route = TimedRoute::build_on(&self.graph, pos, now, &legs, &schedule);
                taxi.set_plan(schedule, route, now);
            }
        }
        let map = &mut self.route_nodes[i];
        map.clear();
        if let Some(route) = &self.taxis[i].route {
            for (n, tt) in route.nodes.iter().zip(&route.arrival_s) {
                map.entry(n.0).or_insert(*tt);
            }
        }
        let version = self.taxis[i].route_version;
        if let Some(nt) = self.taxis[i].next_event_time() {
            self.push_ev(nt, Ev::Taxi { taxi: taxi_id, version });
        }
        {
            let world = World {
                graph: &self.graph,
                cache: &self.cache,
                oracle: &self.oracle,
                taxis: &self.taxis,
                requests: &self.requests,
            };
            scheme.after_assign(&self.taxis[i], &world);
        }
        self.scan_route_for_offline(taxi_id, now);
        true
    }

    /// One bounded-retry re-dispatch attempt for an orphaned rider.
    fn process_redispatch(
        &mut self,
        t: Time,
        request: RequestId,
        attempt: u32,
        scheme: &mut dyn DispatchScheme,
    ) {
        if self.resolved[request.index()] {
            return; // cancelled (or otherwise settled) while waiting
        }
        let req = self.requests.get(request).clone();
        let ok = self.try_dispatch(&req, t, None, false, scheme);
        self.obs.emit(Event::Redispatch { t, req: request.0, attempt, ok });
        if ok {
            self.redispatched += 1;
        } else if self.cfg.retry.exhausted(attempt + 1) {
            self.reject_with(request, t, RejectReason::RetriesExhausted);
        } else {
            let next = attempt + 1;
            self.push_ev(
                t + self.cfg.retry.delay_s(next),
                Ev::Redispatch { request, attempt: next },
            );
        }
    }

    /// Drains the open batch window at its flush time `t`: scores one
    /// cost row per live member, solves the rectangular assignment with
    /// the Kuhn–Munkres solver (`mtshare-lap`) and commits each winner
    /// through the scheme's revalidated [`DispatchScheme::dispatch_to`]
    /// path. Losers re-enter the next window until their retry budget
    /// runs out. One heap step, like any other event — the whole flush
    /// is a pure function of the window contents and the frozen world,
    /// so the trace is byte-identical at any `parallelism`.
    fn process_batch_flush(&mut self, t: Time, scheme: &mut dyn DispatchScheme) {
        let window_s = self.cfg.batch.as_ref().expect("flush only queued in batch mode").window_s;
        let max_retries = self.cfg.batch.as_ref().expect("checked").max_retries;
        // A member can turn terminal while buffered (a chaos cancel
        // inside the open window): drop it here so it is matched — and
        // accounted — exactly zero more times.
        let members: Vec<(RequestId, u32)> = std::mem::take(&mut self.window)
            .into_iter()
            .filter(|&(id, _)| !self.resolved[id.index()])
            .collect();
        if members.is_empty() {
            return;
        }
        let reqs: Vec<RideRequest> =
            members.iter().map(|&(id, _)| self.requests.get(id).clone()).collect();
        // Pin every window endpoint before the solve (infrastructure,
        // untimed — the same contract as `try_dispatch`).
        for r in &reqs {
            self.oracle.pin(r.origin);
            self.oracle.pin(r.destination);
        }
        let t0 = std::time::Instant::now();
        let rows = {
            let world = World {
                graph: &self.graph,
                cache: &self.cache,
                oracle: &self.oracle,
                taxis: &self.taxis,
                requests: &self.requests,
            };
            scheme.score_window(&reqs, t, &world)
        };
        let Some(rows) = rows else {
            // Scheme has no batch-window path: dispatch the members
            // sequentially at the flush time (re-pins; pins refcount).
            for r in &reqs {
                self.oracle.unpin(r.origin);
                self.oracle.unpin(r.destination);
            }
            for r in &reqs {
                self.try_dispatch(r, t, None, true, scheme);
            }
            return;
        };
        debug_assert_eq!(rows.len(), reqs.len(), "one cost row per window member");

        // Columns: the sorted union of candidate taxis across rows. The
        // matrix entry is the marginal insertion detour, ∞ where a taxi
        // is not a (feasible) candidate of that row's request.
        let mut cols: Vec<TaxiId> =
            rows.iter().flat_map(|r| r.candidates.iter().copied()).collect();
        cols.sort_unstable();
        cols.dedup();
        let (n_rows, n_cols) = (rows.len(), cols.len());
        let mut cost = vec![f64::INFINITY; n_rows * n_cols];
        for (i, row) in rows.iter().enumerate() {
            for (c, taxi) in row.candidates.iter().enumerate() {
                let j = cols.binary_search(taxi).expect("columns built from candidates");
                cost[i * n_cols + j] = row.costs[c];
            }
        }
        let sol = {
            let _span = self.obs.stage(Stage::BatchSolve);
            mtshare_lap::solve(n_rows, n_cols, &cost)
        };
        self.obs.record_lap(
            n_rows as u64,
            n_cols as u64,
            sol.assigned as u64,
            sol.stats.augmentations,
            sol.stats.relaxations,
            sol.stats.skipped_rows,
        );
        let per_req_s = t0.elapsed().as_secs_f64() / n_rows as f64;

        for (i, (&(id, attempt), req)) in members.iter().zip(&reqs).enumerate() {
            self.response_ms.push(per_req_s * 1000.0);
            self.obs.record_response_s(per_req_s);
            self.candidates.push(rows[i].candidates.len() as f64);
            self.obs.emit(Event::Dispatch {
                t,
                req: id.0,
                candidates: rows[i].candidates.len() as u32,
                feasible: rows[i].feasible as u32,
            });
            // The LAP guarantees pairwise-distinct winners, so earlier
            // commits in this flush never touch a later winner's taxi —
            // each `dispatch_to` re-derives and re-verifies against the
            // current world anyway (materialization can still fail, which
            // demotes the row to a loser).
            let committed = sol.row_to_col[i].map(|j| cols[j]).is_some_and(|taxi| {
                let outcome = {
                    let world = World {
                        graph: &self.graph,
                        cache: &self.cache,
                        oracle: &self.oracle,
                        taxis: &self.taxis,
                        requests: &self.requests,
                    };
                    scheme.dispatch_to(req, taxi, t, &world)
                };
                match outcome.assignment {
                    Some(a) => {
                        self.commit(req, a, t, scheme);
                        true
                    }
                    None => false,
                }
            });
            if !committed {
                self.oracle.unpin(req.origin);
                self.oracle.unpin(req.destination);
                if attempt >= max_retries {
                    self.rejected += 1;
                    self.resolved[id.index()] = true;
                    self.emit_reject(req, t);
                } else {
                    self.window.push((id, attempt + 1));
                }
            }
        }
        // Losers re-queued above re-arm the next flush (the window was
        // drained at entry, so they are its only members right now).
        if !self.window.is_empty() {
            self.push_ev(t + window_s, Ev::BatchFlush);
        }
    }

    /// Runtime invariant sweep: per-taxi consistency (`mtshare-chaos`),
    /// passenger conservation across the fleet, and index/world
    /// agreement. Violations are emitted as events and counted; healthy
    /// runs emit none.
    fn validate_world(&mut self, t: Time, scheme: &dyn DispatchScheme) {
        let mut violations: Vec<String> = Vec::new();
        for taxi in &self.taxis {
            if let Err(e) = check_taxi(taxi, &self.requests) {
                violations.push(e);
            }
        }
        // Passenger conservation: an unresolved rider sits in at most one
        // taxi; a terminal one in none.
        let mut holders: FxHashMap<RequestId, u32> = FxHashMap::default();
        for taxi in &self.taxis {
            for &r in taxi.assigned.iter().chain(&taxi.onboard) {
                *holders.entry(r).or_insert(0) += 1;
            }
        }
        for req in self.requests.iter() {
            let n = holders.get(&req.id).copied().unwrap_or(0);
            if n > 1 {
                violations.push(format!("{} held by {n} taxis", req.id));
            } else if n > 0 && self.resolved[req.id.index()] {
                violations.push(format!("{} is terminal but still scheduled", req.id));
            }
        }
        // Index/world agreement: a dead taxi must never stay searchable.
        if let Some(indexed) = scheme.indexed_taxis() {
            for id in indexed {
                if !self.taxis[id.index()].alive {
                    violations.push(format!("dead {id} still indexed"));
                }
            }
        }
        for check in violations {
            self.invariant_violations += 1;
            self.obs.emit(Event::InvariantViolation { t, check });
        }
    }

    fn settle_taxi(&mut self, taxi: TaxiId) {
        let ep = std::mem::take(&mut self.episodes[taxi.index()]);
        if ep.trips.is_empty() {
            return;
        }
        let s = settle_episode(&ep.trips, ep.onboard_cost_s, &self.cfg.payment);
        self.fares_paid += s.fares.iter().map(|(_, f)| f).sum::<f64>();
        self.fares_solo += s.no_share_total;
        self.driver_income += s.driver_income;
        self.benefit += s.benefit;
    }

    pub(crate) fn finish(
        mut self,
        scheme: &mut dyn DispatchScheme,
        wall_clock_s: f64,
    ) -> SimReport {
        // Settle episodes still open at the horizon (all deliveries done —
        // the heap drained — so only bookkeeping remains).
        for i in 0..self.taxis.len() {
            self.settle_taxi(TaxiId(i as u32));
        }
        // Offline requests never served count as rejected. The pending
        // set iterates in hash order, so sort by id before emitting —
        // the event stream must not depend on FxHashSet iteration.
        let mut expired_ids: Vec<RequestId> = self.pending_offline.iter().copied().collect();
        expired_ids.sort_unstable();
        let expired = expired_ids.len();
        self.rejected += expired;
        // Stamp with the run horizon (never earlier than any emitted
        // event) so the stream stays monotone in sim time.
        let horizon = expired_ids
            .iter()
            .map(|&id| self.requests.get(id).pickup_deadline())
            .fold(self.clock, f64::max);
        for id in expired_ids {
            self.resolved[id.index()] = true;
            self.obs.emit(Event::Reject {
                t: horizon,
                req: id.0,
                reason: RejectReason::OfflineExpired,
            });
        }

        let n_offline = self.requests.iter().filter(|r| r.offline).count();

        if self.obs.is_enabled() {
            self.obs.set_run_info(RunInfo {
                scheme: scheme.name().to_string(),
                n_taxis: self.taxis.len(),
                n_requests: self.requests.len(),
                n_offline,
                parallelism: self.cfg.parallelism,
            });
            let cs = self.cache.stats();
            let os = self.oracle.stats();
            let ch = self.cache.ch_stats().unwrap_or_default();
            let ch_shortcuts =
                self.cache.hierarchy().map(|h| h.shortcut_count()).unwrap_or_default();
            let cch = self.cache.cch_stats().unwrap_or_default();
            let cch_fill_arcs =
                self.cache.customizable().map(|h| h.fill_arc_count()).unwrap_or_default();
            let es = scheme.scheduler_stats();
            self.obs.set_external_stats(ExternalStats {
                cache_hits: cs.hits,
                cache_misses: cs.misses,
                cache_evictions: cs.evictions,
                oracle_vector_hits: os.vector_hits,
                oracle_memo_hits: os.memo_hits,
                oracle_searches: os.searches,
                oracle_pin_computes: os.pin_computes,
                oracle_evictions: os.evictions,
                ch_p2p_queries: ch.p2p_queries,
                ch_bucket_sweeps: ch.bucket_sweeps,
                ch_bucket_sources: ch.bucket_sources,
                ch_shortcuts,
                cch_p2p_queries: cch.p2p_queries,
                cch_bucket_sweeps: cch.bucket_sweeps,
                cch_bucket_sources: cch.bucket_sources,
                cch_customizations: cch.customizations,
                cch_fill_arcs,
                dtree_scores: es.scores,
                dtree_rebuilds: es.rebuilds,
                dtree_advances: es.advances,
                dtree_commits: es.commits,
                dtree_removes: es.removes,
                dtree_retimes: es.retimes,
                dtree_legs_reused: es.legs_reused,
                dtree_legs_filled: es.legs_filled,
                dtree_memo_reuses: es.memo_reuses,
                dtree_memo_fills: es.memo_fills,
            });
            self.obs.flush();
        }

        SimReport {
            scheme: scheme.name().to_string(),
            n_taxis: self.taxis.len(),
            n_requests: self.requests.len(),
            n_offline,
            served: self.served_online + self.served_offline,
            served_online: self.served_online,
            served_offline: self.served_offline,
            rejected: self.rejected,
            cancelled: self.cancelled,
            redispatched: self.redispatched,
            invariant_violations: self.invariant_violations,
            avg_response_ms: self.response_ms.mean(),
            p95_response_ms: self.response_ms.quantile(0.95),
            avg_detour_min: self.detour_s.mean() / 60.0,
            avg_waiting_min: self.waiting_s.mean() / 60.0,
            p95_waiting_min: self.waiting_s.quantile(0.95) / 60.0,
            avg_candidates: self.candidates.mean(),
            total_passenger_fares: self.fares_paid,
            total_solo_fares: self.fares_solo,
            total_driver_income: self.driver_income,
            total_benefit: self.benefit,
            index_memory_bytes: scheme.index_memory_bytes(),
            shared_memory_bytes: self.oracle.memory_bytes()
                + self.cache.memory_bytes()
                + self.cache.hierarchy().map(|h| h.memory_bytes()).unwrap_or(0)
                + self.cache.customizable().map(|h| h.memory_bytes()).unwrap_or(0),
            wall_clock_s,
            served_records: self.served_records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{build_context, Scenario, ScenarioConfig, SchemeKind};
    use mtshare_core::PartitionStrategy;
    use mtshare_road::{grid_city, GridCityConfig};

    fn run_kind(kind: SchemeKind, scenario_cfg: ScenarioConfig) -> SimReport {
        let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let cache = PathCache::new(graph.clone());
        let scenario = Scenario::generate(graph.clone(), &cache, scenario_cfg);
        let ctx = kind
            .needs_context()
            .then(|| build_context(&graph, &scenario.historical, 12, PartitionStrategy::Bipartite));
        let mut scheme = kind.build(&graph, scenario.taxis.len(), ctx, None);
        let sim = Simulator::new(graph, cache, &scenario, SimConfig::default());
        sim.run(scheme.as_mut())
    }

    #[test]
    fn no_sharing_serves_and_accounts() {
        let r = run_kind(SchemeKind::NoSharing, ScenarioConfig::peak(12));
        assert!(r.served > 0, "{r:?}");
        assert_eq!(r.served + r.rejected, r.n_requests, "{r:?}");
        assert_eq!(r.served, r.served_online);
        // No sharing ⇒ no detour and no benefit.
        assert!(r.avg_detour_min < 0.2, "{r:?}");
        assert!(r.total_benefit.abs() < 1e-6);
        // Riders pay exactly solo fares.
        assert!((r.total_passenger_fares - r.total_solo_fares).abs() < 1e-6);
    }

    #[test]
    fn mtshare_serves_more_than_no_sharing_in_peak() {
        let ns = run_kind(SchemeKind::NoSharing, ScenarioConfig::peak(12));
        let mt = run_kind(SchemeKind::MtShare, ScenarioConfig::peak(12));
        assert!(mt.served > ns.served, "mT-Share {} vs No-Sharing {}", mt.served, ns.served);
    }

    #[test]
    fn deliveries_meet_deadlines() {
        // The accounting invariant: a served request implies its dropoff
        // occurred before its deadline; the simulator enforces this via
        // schedule feasibility. Spot-check by re-running with T-Share.
        let r = run_kind(SchemeKind::TShare, ScenarioConfig::peak(10));
        assert!(r.served > 0);
        assert!(r.avg_waiting_min >= 0.0 && r.avg_detour_min >= 0.0);
        assert!(r.avg_response_ms > 0.0);
    }

    #[test]
    fn nonpeak_offline_requests_get_served_by_mtshare_pro() {
        let r = run_kind(SchemeKind::MtSharePro, ScenarioConfig::nonpeak(16));
        assert!(r.n_offline > 0);
        assert!(r.served_offline > 0, "{r:?}");
        assert_eq!(r.served + r.rejected, r.n_requests, "{r:?}");
    }

    #[test]
    fn zero_slack_scenario_rejects_everything_gracefully() {
        let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let cache = PathCache::new(graph.clone());
        let mut cfg = ScenarioConfig::peak(6);
        cfg.rho = 1.0; // deadline == release + direct: nothing is servable
        let scenario = Scenario::generate(graph.clone(), &cache, cfg);
        let mut scheme = SchemeKind::NoSharing.build(&graph, scenario.taxis.len(), None, None);
        let sim = Simulator::new(graph, cache, &scenario, SimConfig::default());
        let r = sim.run(scheme.as_mut());
        assert_eq!(r.served, 0, "{r:?}");
        assert_eq!(r.rejected, r.n_requests);
        assert_eq!(r.avg_detour_min, 0.0);
    }

    #[test]
    fn replanning_midroute_preserves_first_passenger() {
        // With one taxi and two sequential aligned requests, the second
        // dispatch replans the route mid-flight; the audit must show both
        // riders delivered within their deadlines (version-guarded events
        // must not double-fire).
        let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let cache = PathCache::new(graph.clone());
        let mut cfg = ScenarioConfig::peak(1);
        cfg.n_requests = 6;
        cfg.rho = 2.0;
        let scenario = Scenario::generate(graph.clone(), &cache, cfg);
        let ctx = crate::scenario::build_context(
            &graph,
            &scenario.historical,
            8,
            mtshare_core::PartitionStrategy::Bipartite,
        );
        let mut scheme = SchemeKind::MtShare.build(&graph, 1, Some(ctx), None);
        let sim = Simulator::new(graph, cache, &scenario, SimConfig::default());
        let r = sim.run(scheme.as_mut());
        assert!(r.served >= 1);
        // No duplicate deliveries.
        let mut ids: Vec<u32> = r.served_records.iter().map(|s| s.request).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before);
        for rec in &r.served_records {
            let req = &scenario.requests[rec.request as usize];
            assert!(rec.dropoff_t <= req.deadline + 1e-3);
        }
    }

    #[test]
    fn payment_is_conservative() {
        let r = run_kind(SchemeKind::MtShare, ScenarioConfig::peak(12));
        // Riders collectively never pay more than solo.
        assert!(r.total_passenger_fares <= r.total_solo_fares + 1e-6, "{r:?}");
        // Conservation: rider payments equal driver income.
        assert!((r.total_passenger_fares - r.total_driver_income).abs() < 1e-6, "{r:?}");
        assert!(r.fare_saving_pct() >= 0.0);
    }

    // ---- disruption injection & recovery ----

    use mtshare_chaos::TimedDisruption;
    use mtshare_obs::MemorySink;

    fn tiny_city() -> (Arc<RoadNetwork>, PathCache) {
        let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let cache = PathCache::new(graph.clone());
        (graph, cache)
    }

    fn chaos_request(
        id: u32,
        od: (u32, u32),
        release: f64,
        direct: f64,
        deadline: f64,
    ) -> RideRequest {
        RideRequest {
            id: RequestId(id),
            release_time: release,
            origin: NodeId(od.0),
            destination: NodeId(od.1),
            passengers: 1,
            deadline,
            direct_cost_s: direct,
            offline: false,
        }
    }

    fn at(t: f64, disruption: Disruption) -> TimedDisruption {
        TimedDisruption { at: t, disruption }
    }

    /// Hand-built scenario + hand-built disruption plan under No-Sharing,
    /// with the invariant checker armed. Returns the report and the trace.
    fn run_with_plan(
        graph: Arc<RoadNetwork>,
        cache: PathCache,
        taxis: Vec<Taxi>,
        requests: Vec<RideRequest>,
        plan: DisruptionPlan,
    ) -> (SimReport, String) {
        let scenario = Scenario {
            config: ScenarioConfig::peak(taxis.len().max(1)),
            historical: Vec::new(),
            requests,
            taxis,
        };
        let mut scheme = SchemeKind::NoSharing.build(&graph, scenario.taxis.len(), None, None);
        let obs = Obs::enabled();
        let (sink, buf) = MemorySink::new();
        obs.add_sink(Box::new(sink));
        let cfg = SimConfig { validate_every: Some(30.0), ..SimConfig::default() };
        let report = Simulator::new(graph, cache, &scenario, cfg)
            .with_obs(obs.clone())
            .with_disruptions(plan)
            .run(scheme.as_mut());
        let trace = buf.lock().unwrap().clone();
        (report, trace)
    }

    #[test]
    fn cch_backend_recustomizes_and_stays_deterministic_across_parallelism() {
        use mtshare_routing::{CustomizableCh, RouterBackend};
        let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let base = PathCache::new(graph.clone());
        let direct_a = base.cost(NodeId(0), NodeId(399)).unwrap();
        let direct_b = base.cost(NodeId(19), NodeId(380)).unwrap();
        // A city-wide 3× slowdown opens at t=5 and closes at t=100.25,
        // *between* the two arrivals: the first must be scored on the
        // shifted metric, the second on the restored base one. The close
        // is not a heap event, so the speculative batch at parallelism>1
        // must be cut at the metric boundary to match the sequential run.
        let spec = TrafficShiftSpec {
            center: NodeId(210),
            radius_m: 1e7,
            factor: 3.0,
            start_s: 5.0,
            duration_s: 95.25,
        };
        let plan = DisruptionPlan { events: vec![at(5.0, Disruption::TrafficShift(spec))] };
        let run = |parallelism: usize| {
            let cch = Arc::new(CustomizableCh::build(&graph));
            let cache = PathCache::with_backend(graph.clone(), RouterBackend::Cch(cch.clone()));
            let scenario = Scenario {
                config: ScenarioConfig::peak(2),
                historical: Vec::new(),
                requests: vec![
                    chaos_request(0, (0, 399), 100.0, direct_a, 100.0 + direct_a * 8.0),
                    chaos_request(1, (19, 380), 100.5, direct_b, 100.5 + direct_b * 8.0),
                ],
                taxis: vec![
                    Taxi::new(TaxiId(0), 4, NodeId(0)),
                    Taxi::new(TaxiId(1), 4, NodeId(19)),
                ],
            };
            let mut scheme = SchemeKind::NoSharing.build(&graph, 2, None, None);
            let obs = Obs::enabled();
            let (sink, buf) = MemorySink::new();
            obs.add_sink(Box::new(sink));
            let cfg = SimConfig { parallelism, ..SimConfig::default() };
            let mut report = Simulator::new(graph.clone(), cache, &scenario, cfg)
                .with_obs(obs.clone())
                .with_disruptions(plan.clone())
                .run(scheme.as_mut());
            // Wall-clock fields are nondeterministic; blank them so the
            // report comparison covers only simulation outcomes.
            report.wall_clock_s = 0.0;
            report.avg_response_ms = 0.0;
            report.p95_response_ms = 0.0;
            let trace = buf.lock().unwrap().clone();
            (report, trace, cch)
        };
        let (r1, t1, cch1) = run(1);
        let (r4, t4, cch4) = run(4);
        assert_eq!((r1.served, r1.rejected, r1.invariant_violations), (2, 0, 0), "{t1}");
        // Base build + shift open + shift close (restore) = 3 customizations,
        // ending on metric generation 2 — identically at any parallelism.
        for cch in [&cch1, &cch4] {
            assert_eq!(cch.stats().customizations, 3);
            assert_eq!(cch.generation(), 2);
        }
        assert_eq!(format!("{r1:?}"), format!("{r4:?}"));
        let evs =
            |t: &str| t.lines().filter(|l| l.contains(r#""ev":"#)).collect::<Vec<_>>().join("\n");
        assert_eq!(evs(&t1), evs(&t4));
    }

    #[test]
    fn breakdown_without_survivors_rejects_rider_as_taxi_failed() {
        let (graph, cache) = tiny_city();
        let direct = cache.cost(NodeId(0), NodeId(399)).unwrap();
        let req = chaos_request(0, (0, 399), 0.0, direct, direct * 3.0);
        // The lone taxi starts at the origin, so the rider is onboard when
        // it breaks mid-trip; with nobody left alive the orphan must be
        // rejected as taxi_failed — never lost, never panicking.
        let plan = DisruptionPlan {
            events: vec![at(direct * 0.5, Disruption::Breakdown { taxi: TaxiId(0) })],
        };
        let taxis = vec![Taxi::new(TaxiId(0), 4, NodeId(0))];
        let (r, trace) = run_with_plan(graph, cache, taxis, vec![req], plan);
        assert_eq!((r.served, r.rejected), (0, 1), "{r:?}");
        assert_eq!(r.invariant_violations, 0, "{trace}");
        assert!(
            trace.contains(r#""ev":"breakdown""#) && trace.contains(r#""orphans":1"#),
            "{trace}"
        );
        assert!(trace.contains(r#""reason":"taxi_failed""#), "{trace}");
    }

    #[test]
    fn breakdown_orphan_is_redispatched_to_a_survivor() {
        let (graph, cache) = tiny_city();
        let direct = cache.cost(NodeId(0), NodeId(15)).unwrap();
        let req = chaos_request(0, (0, 15), 0.0, direct, direct * 3.0 + 600.0);
        // Taxi 0 (nearest, 1 hop out) wins the dispatch, then breaks down
        // before the ~29 s pickup leg completes; the orphaned-but-waiting
        // rider must be re-dispatched onto taxi 1 after the retry delay.
        let taxis = vec![Taxi::new(TaxiId(0), 4, NodeId(1)), Taxi::new(TaxiId(1), 4, NodeId(2))];
        let plan =
            DisruptionPlan { events: vec![at(1.0, Disruption::Breakdown { taxi: TaxiId(0) })] };
        let (r, trace) = run_with_plan(graph, cache, taxis, vec![req], plan);
        assert_eq!((r.served, r.rejected), (1, 0), "{r:?}\n{trace}");
        assert_eq!(r.redispatched, 1, "{trace}");
        assert_eq!(r.invariant_violations, 0, "{trace}");
        assert!(
            trace.contains(r#""ev":"redispatch""#) && trace.contains(r#""ok":true"#),
            "{trace}"
        );
    }

    #[test]
    fn cancel_of_an_assigned_rider_repairs_the_plan() {
        let (graph, cache) = tiny_city();
        let direct = cache.cost(NodeId(0), NodeId(15)).unwrap();
        let pickup_eta = cache.cost(NodeId(105), NodeId(0)).unwrap();
        let req = chaos_request(0, (0, 15), 0.0, direct, pickup_eta + direct + 600.0);
        // Pickup is ~10 hops away, so the t = 2 s cancel lands while the
        // rider is assigned but not yet picked up.
        let taxis = vec![Taxi::new(TaxiId(0), 4, NodeId(105))];
        let plan =
            DisruptionPlan { events: vec![at(2.0, Disruption::Cancel { request: RequestId(0) })] };
        let (r, trace) = run_with_plan(graph, cache, taxis, vec![req], plan);
        assert_eq!((r.served, r.rejected, r.cancelled), (0, 1, 1), "{r:?}");
        assert_eq!(r.invariant_violations, 0, "{trace}");
        assert!(
            trace.contains(r#""ev":"cancel""#) && trace.contains(r#""assigned":true"#),
            "{trace}"
        );
        assert!(trace.contains(r#""reason":"cancelled_by_passenger""#), "{trace}");
    }

    #[test]
    fn cancel_before_release_rejects_on_arrival() {
        let (graph, cache) = tiny_city();
        let direct = cache.cost(NodeId(0), NodeId(15)).unwrap();
        let req = chaos_request(0, (0, 15), 30.0, direct, 30.0 + direct * 4.0);
        let taxis = vec![Taxi::new(TaxiId(0), 4, NodeId(1))];
        // The cancel fires before the request is even released; on arrival
        // the request must terminate immediately without a dispatch.
        let plan =
            DisruptionPlan { events: vec![at(1.0, Disruption::Cancel { request: RequestId(0) })] };
        let (r, trace) = run_with_plan(graph, cache, taxis, vec![req], plan);
        assert_eq!((r.served, r.rejected, r.cancelled), (0, 1, 1), "{r:?}");
        assert!(
            trace.contains(r#""ev":"cancel""#) && trace.contains(r#""assigned":false"#),
            "{trace}"
        );
        assert!(!trace.contains(r#""ev":"commit""#), "no dispatch for a cancelled rider:\n{trace}");
        assert!(trace.contains(r#""reason":"cancelled_by_passenger""#), "{trace}");
    }

    #[test]
    fn traffic_shift_stretches_routes_and_renegotiates_deadlines() {
        let (graph, cache) = tiny_city();
        let direct = cache.cost(NodeId(0), NodeId(399)).unwrap();
        let req = chaos_request(0, (0, 399), 0.0, direct, direct * 1.2);
        let taxis = vec![Taxi::new(TaxiId(0), 4, NodeId(0))];
        // A city-wide 3× slowdown lands while the rider is onboard: the
        // committed route stretches far past the original deadline and the
        // dropoff must be renegotiated rather than stranded.
        let spec = TrafficShiftSpec {
            center: NodeId(210),
            radius_m: 1e7,
            factor: 3.0,
            start_s: 5.0,
            duration_s: 1e6,
        };
        let plan = DisruptionPlan { events: vec![at(5.0, Disruption::TrafficShift(spec))] };
        let (r, trace) = run_with_plan(graph, cache, taxis, vec![req], plan);
        assert_eq!((r.served, r.rejected), (1, 0), "{r:?}\n{trace}");
        assert_eq!(r.invariant_violations, 0, "{trace}");
        assert!(trace.contains(r#""ev":"traffic_shift""#), "{trace}");
        assert!(
            trace.contains(r#""ev":"reroute""#) && trace.contains(r#""renegotiated":1"#),
            "{trace}"
        );
        // The delivery really was delayed past the pre-shift deadline.
        assert!(r.served_records[0].dropoff_t > direct * 1.2, "{:?}", r.served_records);
    }

    #[test]
    fn seeded_chaos_on_generated_scenario_keeps_accounting() {
        // Satellite regression: a non-peak scenario exercises encounters
        // and offline watches against dead taxis; the accounting identity
        // and the runtime invariants must survive a full seeded mix.
        let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let cache = PathCache::new(graph.clone());
        let scenario = Scenario::generate(graph.clone(), &cache, ScenarioConfig::nonpeak(10));
        let mut scheme = SchemeKind::TShare.build(&graph, scenario.taxis.len(), None, None);
        let cfg = SimConfig {
            chaos: Some(ChaosConfig::with_seed(11)),
            validate_every: Some(60.0),
            ..SimConfig::default()
        };
        let r = Simulator::new(graph, cache, &scenario, cfg).run(scheme.as_mut());
        assert_eq!(r.served + r.rejected, r.n_requests, "{r:?}");
        assert_eq!(r.invariant_violations, 0, "{r:?}");
    }

    #[test]
    fn batch_window_survives_checkpoint_crash_and_resume() {
        // A window much wider than the peak inter-arrival gap keeps the
        // window non-empty through the early steps, so the checkpoint at
        // step 16 and the crash at step 20 land mid-window: the snapshot
        // must carry the buffered members and the pending flush event, and
        // the resumed run must finish with the same outcomes as an
        // uninterrupted one.
        let dir = std::env::temp_dir().join(format!("mtshare-batchwin-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let cache = PathCache::new(graph.clone());
        let mut sc = ScenarioConfig::peak(8);
        sc.n_requests = 60;
        let scenario = Scenario::generate(graph.clone(), &cache, sc);
        let ctx = build_context(&graph, &scenario.historical, 12, PartitionStrategy::Bipartite);
        let batch = Some(BatchConfig { window_s: 60.0, max_retries: 2 });
        let build = || {
            SchemeKind::MtShareBatch.build(&graph, scenario.taxis.len(), Some(ctx.clone()), None)
        };
        let run = |persist: Option<PersistConfig>| {
            let cfg = SimConfig { batch: batch.clone(), persist, ..SimConfig::default() };
            let mut scheme = build();
            Simulator::new(graph.clone(), cache.clone(), &scenario, cfg)
                .run_to_outcome(scheme.as_mut())
        };

        let RunOutcome::Finished(full) = run(None) else { panic!("baseline must finish") };
        assert!(full.served > 0, "{full:?}");

        let mut pc = PersistConfig::new(dir.to_str().unwrap());
        pc.checkpoint_every = 8;
        pc.crash_at = Some(mtshare_chaos::CrashPoint::return_at(20));
        let outcome = run(Some(pc));
        assert!(matches!(outcome, RunOutcome::Crashed { step: 20 }), "{outcome:?}");

        let mut pc = PersistConfig::new(dir.to_str().unwrap());
        pc.checkpoint_every = 8;
        pc.resume = true;
        let RunOutcome::Finished(resumed) = run(Some(pc)) else { panic!("resume must finish") };

        assert_eq!(full.served, resumed.served);
        assert_eq!(full.rejected, resumed.rejected);
        assert_eq!(full.avg_detour_min, resumed.avg_detour_min);
        assert_eq!(full.avg_waiting_min, resumed.avg_waiting_min);
        assert_eq!(full.total_driver_income, resumed.total_driver_income);
        assert_eq!(full.served_records.len(), resumed.served_records.len());
        for (a, b) in full.served_records.iter().zip(&resumed.served_records) {
            assert_eq!((a.request, a.taxi), (b.request, b.taxi));
            assert_eq!((a.pickup_t, a.dropoff_t), (b.pickup_t, b.dropoff_t));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
