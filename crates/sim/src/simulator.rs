//! Event-driven ridesharing simulator.
//!
//! Owns the clock, the fleet and the request stream; a
//! [`DispatchScheme`] proposes assignments. Taxis move along their
//! committed [`TimedRoute`]s at constant speed, so positions and event
//! completions are read analytically — no ticking. Offline requests are
//! revealed only when a taxi *encounters* them: its route passes within
//! the encounter radius of the request origin while seats are idle
//! (Sec. IV-C2), upon which the driver reports the request to the server.

use crate::metrics::{Series, ServedRecord, SimReport};
use crate::scenario::Scenario;
use crate::telemetry::classify_rejection;
use mtshare_core::{settle_episode, PassengerTrip, PaymentConfig};
use mtshare_model::{
    DispatchScheme, EventKind, RequestId, RequestStore, RideRequest, Taxi, TaxiId, Time,
    TimedRoute, World,
};
use mtshare_obs::{Event, ExternalStats, Obs, RejectReason, RunInfo, Stage};
use mtshare_road::{RoadNetwork, SpatialGrid};
use mtshare_routing::{HotNodeOracle, PathCache};
use rustc_hash::{FxHashMap, FxHashSet};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Simulator knobs.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// A taxi perceives an offline request when its route passes within
    /// this distance of the request origin, metres.
    pub encounter_radius_m: f64,
    /// Payment-model parameters.
    pub payment: PaymentConfig,
    /// Dispatch worker threads. `1` runs the sequential reference path;
    /// `> 1` speculatively scores runs of consecutive online arrivals in
    /// parallel and commits them in arrival order, which by construction
    /// produces the same assignments as the sequential path (see
    /// DESIGN.md, "Parallel batch dispatch").
    pub parallelism: usize,
    /// Upper bound on arrivals speculated per batch (bounds wasted work
    /// when an early commit invalidates the rest of the window).
    pub max_batch: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            encounter_radius_m: 60.0,
            payment: PaymentConfig::default(),
            parallelism: 1,
            max_batch: 64,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    /// The next schedule event of a taxi completes.
    Taxi { taxi: TaxiId, version: u64 },
    /// A taxi's route passes an offline request's origin.
    Encounter { taxi: TaxiId, request: RequestId, version: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct QueuedEv {
    time: Time,
    seq: u64,
    ev: Ev,
}

impl Eq for QueuedEv {}
impl Ord for QueuedEv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.total_cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}
impl PartialOrd for QueuedEv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Default)]
struct Episode {
    trips: Vec<PassengerTrip>,
    onboard_since: Option<Time>,
    onboard_cost_s: f64,
}

/// The simulator. Construct once per run.
pub struct Simulator {
    graph: Arc<RoadNetwork>,
    cache: PathCache,
    oracle: HotNodeOracle,
    taxis: Vec<Taxi>,
    requests: RequestStore,
    cfg: SimConfig,
    // --- event machinery ---
    heap: BinaryHeap<Reverse<QueuedEv>>,
    seq: u64,
    /// Future node→arrival map per taxi (rebuilt on commit).
    route_nodes: Vec<FxHashMap<u32, f64>>,
    // --- offline request machinery ---
    pending_offline: FxHashSet<RequestId>,
    /// node → offline requests watching it.
    offline_watch: FxHashMap<u32, Vec<RequestId>>,
    /// request → watched nodes (for cleanup).
    watched_nodes: FxHashMap<RequestId, Vec<u32>>,
    spatial: SpatialGrid,
    // --- observability ---
    /// Telemetry bus; disabled by default. Events are emitted only from
    /// the sequential commit side, stamped with simulation time, so the
    /// stream is identical at any `parallelism` (see `mtshare-obs` docs).
    obs: Obs,
    /// Latest simulation time processed; stamps end-of-run events so the
    /// emitted stream stays monotone in sim time.
    clock: Time,
    // --- metrics ---
    pickup_time: FxHashMap<RequestId, Time>,
    episodes: Vec<Episode>,
    response_ms: Series,
    waiting_s: Series,
    detour_s: Series,
    candidates: Series,
    served_online: usize,
    served_offline: usize,
    rejected: usize,
    fares_paid: f64,
    fares_solo: f64,
    driver_income: f64,
    benefit: f64,
    served_records: Vec<ServedRecord>,
}

impl Simulator {
    /// Builds a simulator for a materialized scenario. `cache` should be
    /// the one the scenario was generated with so direct costs are warm.
    pub fn new(
        graph: Arc<RoadNetwork>,
        cache: PathCache,
        scenario: &Scenario,
        cfg: SimConfig,
    ) -> Self {
        let oracle = HotNodeOracle::new(graph.clone());
        let spatial = SpatialGrid::build(&graph, 250.0);
        let n_taxis = scenario.taxis.len();
        Self {
            graph,
            cache,
            oracle,
            taxis: scenario.taxis.clone(),
            requests: scenario.request_store(),
            cfg,
            heap: BinaryHeap::new(),
            seq: 0,
            route_nodes: vec![FxHashMap::default(); n_taxis],
            pending_offline: FxHashSet::default(),
            offline_watch: FxHashMap::default(),
            watched_nodes: FxHashMap::default(),
            spatial,
            obs: Obs::disabled(),
            clock: 0.0,
            pickup_time: FxHashMap::default(),
            episodes: (0..n_taxis).map(|_| Episode::default()).collect(),
            response_ms: Series::default(),
            waiting_s: Series::default(),
            detour_s: Series::default(),
            candidates: Series::default(),
            served_online: 0,
            served_offline: 0,
            rejected: 0,
            fares_paid: 0.0,
            fares_solo: 0.0,
            driver_income: 0.0,
            benefit: 0.0,
            served_records: Vec::new(),
        }
    }

    /// Attaches a telemetry bus. Chainable; call before [`Simulator::run`].
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    fn world(&self) -> World<'_> {
        World {
            graph: &self.graph,
            cache: &self.cache,
            oracle: &self.oracle,
            taxis: &self.taxis,
            requests: &self.requests,
        }
    }

    fn push_ev(&mut self, time: Time, ev: Ev) {
        self.seq += 1;
        self.heap.push(Reverse(QueuedEv { time, seq: self.seq, ev }));
    }

    /// Runs the scenario to completion and reports the metrics.
    pub fn run(mut self, scheme: &mut dyn DispatchScheme) -> SimReport {
        let start = std::time::Instant::now();
        scheme.set_obs(self.obs.clone());
        scheme.install(&self.world());

        let order: Vec<RequestId> = self.requests.iter().map(|r| r.id).collect();
        let mut next_arrival = 0usize;

        loop {
            let t_req = order
                .get(next_arrival)
                .map(|&id| self.requests.get(id).release_time)
                .unwrap_or(f64::INFINITY);
            let t_ev = self.heap.peek().map(|Reverse(e)| e.time).unwrap_or(f64::INFINITY);
            if !t_req.is_finite() && !t_ev.is_finite() {
                break;
            }
            if t_ev <= t_req {
                let Reverse(q) = self.heap.pop().expect("peeked");
                self.clock = self.clock.max(q.time);
                self.process_event(q, scheme);
            } else {
                self.clock = self.clock.max(t_req);
                if self.cfg.parallelism > 1 {
                    let batch = self.gather_batch(&order, next_arrival, t_ev);
                    if batch.len() >= 2 {
                        next_arrival += self.process_batch(&batch, scheme);
                        continue;
                    }
                }
                let id = order[next_arrival];
                next_arrival += 1;
                self.process_arrival(id, scheme);
            }
        }

        self.finish(scheme, start.elapsed().as_secs_f64())
    }

    /// The maximal run of consecutive *online* arrivals starting at
    /// `from` that the sequential loop would process before the earliest
    /// queued event: the `t_ev <= t_req` tie rule above means an arrival
    /// is only processed while its release strictly precedes `t_ev`. An
    /// offline arrival ends the run (registering a watch is cheap and
    /// mutates encounter state).
    fn gather_batch(&self, order: &[RequestId], from: usize, t_ev: Time) -> Vec<RequestId> {
        let mut batch = Vec::new();
        for &id in order.iter().skip(from).take(self.cfg.max_batch.max(1)) {
            let req = self.requests.get(id);
            if req.offline || t_ev <= req.release_time {
                break;
            }
            batch.push(id);
        }
        batch
    }

    /// Speculatively scores `ids` against the current world in parallel,
    /// then commits the results sequentially in arrival order,
    /// revalidating each (and re-dispatching on conflict) so the outcome
    /// is identical to processing the arrivals one by one. Returns how
    /// many arrivals were consumed: a commit can queue an event that
    /// sequentially precedes a later arrival in the batch, at which point
    /// the remainder is abandoned and replayed through the main loop.
    fn process_batch(&mut self, ids: &[RequestId], scheme: &mut dyn DispatchScheme) -> usize {
        let reqs: Vec<RideRequest> = ids.iter().map(|&id| self.requests.get(id).clone()).collect();
        // Pin every batch endpoint up front (infrastructure, untimed — as
        // in `try_dispatch`). The oracle's bwd-first canonical lookup
        // guarantees the extra pins cannot change any cost the sequential
        // path would read.
        for r in &reqs {
            self.oracle.pin(r.origin);
            self.oracle.pin(r.destination);
        }
        let specs = {
            let world = World {
                graph: &self.graph,
                cache: &self.cache,
                oracle: &self.oracle,
                taxis: &self.taxis,
                requests: &self.requests,
            };
            scheme.dispatch_batch_speculative(&reqs, &world)
        };
        let Some(specs) = specs else {
            // Scheme has no speculative path: hand the first arrival to
            // the sequential route (which re-pins; pins are refcounted).
            for r in &reqs {
                self.oracle.unpin(r.origin);
                self.oracle.unpin(r.destination);
            }
            self.process_arrival(ids[0], scheme);
            return 1;
        };

        let mut consumed = 0usize;
        for (k, req) in reqs.iter().enumerate() {
            if k > 0 {
                let t_ev = self.heap.peek().map(|Reverse(e)| e.time).unwrap_or(f64::INFINITY);
                if t_ev <= req.release_time {
                    // An earlier commit queued an event the sequential
                    // loop would process before this arrival: abandon the
                    // rest of the batch.
                    for r in &reqs[k..] {
                        self.oracle.unpin(r.origin);
                        self.oracle.unpin(r.destination);
                    }
                    break;
                }
            }
            consumed += 1;
            let now = req.release_time;
            self.clock = self.clock.max(now);
            // Events replay exactly what the sequential loop would emit:
            // arrival, then the dispatch verdict, in arrival order.
            self.obs.emit(Event::Arrival { t: now, req: req.id.0, offline: false });
            let t0 = std::time::Instant::now();
            let outcome = {
                let world = World {
                    graph: &self.graph,
                    cache: &self.cache,
                    oracle: &self.oracle,
                    taxis: &self.taxis,
                    requests: &self.requests,
                };
                if scheme.validate_speculative(req, now, &world, &specs[k]) {
                    specs[k].outcome.clone()
                } else {
                    scheme.dispatch(req, now, &world)
                }
            };
            let elapsed = t0.elapsed().as_secs_f64();
            self.response_ms.push(elapsed * 1000.0);
            self.obs.record_response_s(elapsed);
            self.candidates.push(outcome.candidates_examined as f64);
            self.obs.emit(Event::Dispatch {
                t: now,
                req: req.id.0,
                candidates: outcome.candidates_examined as u32,
                feasible: outcome.feasible_instances as u32,
            });
            match outcome.assignment {
                Some(a) => self.commit(req, a, now, scheme),
                None => {
                    self.oracle.unpin(req.origin);
                    self.oracle.unpin(req.destination);
                    self.rejected += 1;
                    self.emit_reject(req, now);
                }
            }
        }
        consumed
    }

    /// Classifies and emits a rejection event (enabled-telemetry only:
    /// classification probes the path cache, which the accept path never
    /// pays for).
    fn emit_reject(&self, req: &RideRequest, now: Time) {
        if !self.obs.is_enabled() {
            return;
        }
        let world = World {
            graph: &self.graph,
            cache: &self.cache,
            oracle: &self.oracle,
            taxis: &self.taxis,
            requests: &self.requests,
        };
        let reason = classify_rejection(req, &world);
        self.obs.emit(Event::Reject { t: now, req: req.id.0, reason });
    }

    fn process_arrival(&mut self, id: RequestId, scheme: &mut dyn DispatchScheme) {
        let req = self.requests.get(id).clone();
        self.obs.emit(Event::Arrival { t: req.release_time, req: req.id.0, offline: req.offline });
        if req.offline {
            self.register_offline(&req);
        } else {
            self.try_dispatch(&req, req.release_time, None, scheme);
        }
    }

    /// Runs a (timed) dispatch and commits on success. Returns success.
    fn try_dispatch(
        &mut self,
        req: &RideRequest,
        now: Time,
        encountered_by: Option<TaxiId>,
        scheme: &mut dyn DispatchScheme,
    ) -> bool {
        // Pin before the timer starts: the paper's response times assume
        // the shortest-path cache is already resident (Sec. V-A4), so the
        // per-request vector precomputation is infrastructure, not
        // matching latency. The exclusion applies uniformly to all schemes.
        self.oracle.pin(req.origin);
        self.oracle.pin(req.destination);
        let t0 = std::time::Instant::now();
        let out = {
            let world = World {
                graph: &self.graph,
                cache: &self.cache,
                oracle: &self.oracle,
                taxis: &self.taxis,
                requests: &self.requests,
            };
            match encountered_by {
                Some(t) => scheme.dispatch_offline(req, t, now, &world),
                None => scheme.dispatch(req, now, &world),
            }
        };
        let elapsed = t0.elapsed().as_secs_f64();
        self.response_ms.push(elapsed * 1000.0);
        self.obs.record_response_s(elapsed);
        self.candidates.push(out.candidates_examined as f64);
        self.obs.emit(Event::Dispatch {
            t: now,
            req: req.id.0,
            candidates: out.candidates_examined as u32,
            feasible: out.feasible_instances as u32,
        });
        match out.assignment {
            Some(a) => {
                self.commit(req, a, now, scheme);
                true
            }
            None => {
                self.oracle.unpin(req.origin);
                self.oracle.unpin(req.destination);
                if encountered_by.is_none() {
                    self.rejected += 1;
                    self.emit_reject(req, now);
                }
                false
            }
        }
    }

    fn commit(
        &mut self,
        req: &RideRequest,
        a: mtshare_model::Assignment,
        now: Time,
        scheme: &mut dyn DispatchScheme,
    ) {
        let _span = self.obs.stage(Stage::Commit);
        self.obs.emit(Event::Commit {
            t: now,
            req: req.id.0,
            taxi: a.taxi.0,
            detour_s: a.detour_cost_s,
            schedule_len: a.schedule.len() as u32,
        });
        let taxi = &mut self.taxis[a.taxi.index()];
        let pos = taxi.position_at(now);
        taxi.location = pos;
        taxi.location_time = now;
        taxi.assigned.push(req.id);
        let route = TimedRoute::build_on(&self.graph, pos, now, &a.legs, &a.schedule);
        taxi.set_plan(a.schedule, route, now);
        let version = taxi.route_version;
        let next_event = taxi.next_event_time();
        let taxi_id = a.taxi;

        // Rebuild the future-node map for encounter detection.
        let map = &mut self.route_nodes[taxi_id.index()];
        map.clear();
        if let Some(route) = &self.taxis[taxi_id.index()].route {
            for (n, t) in route.nodes.iter().zip(&route.arrival_s) {
                map.entry(n.0).or_insert(*t);
            }
        }

        if let Some(t) = next_event {
            self.push_ev(t, Ev::Taxi { taxi: taxi_id, version });
        }
        {
            let world = World {
                graph: &self.graph,
                cache: &self.cache,
                oracle: &self.oracle,
                taxis: &self.taxis,
                requests: &self.requests,
            };
            scheme.after_assign(&self.taxis[taxi_id.index()], &world);
        }

        // New route may pass pending offline requests.
        self.scan_route_for_offline(taxi_id, now);
    }

    /// Pushes encounter events for pending offline requests on this
    /// taxi's future route.
    fn scan_route_for_offline(&mut self, taxi: TaxiId, now: Time) {
        if self.pending_offline.is_empty() {
            return;
        }
        let version = self.taxis[taxi.index()].route_version;
        let mut hits: Vec<(Time, RequestId)> = Vec::new();
        for (&node, reqs) in &self.offline_watch {
            if let Some(&t) = self.route_nodes[taxi.index()].get(&node) {
                if t >= now {
                    for &r in reqs {
                        if self.pending_offline.contains(&r) {
                            hits.push((t, r));
                        }
                    }
                }
            }
        }
        for (t, r) in hits {
            let req = self.requests.get(r);
            if t <= req.pickup_deadline() && t >= req.release_time {
                self.push_ev(t, Ev::Encounter { taxi, request: r, version });
            }
        }
    }

    fn register_offline(&mut self, req: &RideRequest) {
        let origin_pt = self.graph.point(req.origin);
        let nodes = self.spatial.nodes_within(&self.graph, &origin_pt, self.cfg.encounter_radius_m);
        self.pending_offline.insert(req.id);
        let mut watched = Vec::with_capacity(nodes.len());
        for n in nodes {
            self.offline_watch.entry(n.0).or_default().push(req.id);
            watched.push(n.0);
        }
        self.watched_nodes.insert(req.id, watched);

        // Current fleet: parked taxis at the spot and busy taxis whose
        // committed routes will pass by.
        let now = req.release_time;
        for i in 0..self.taxis.len() {
            let taxi = &self.taxis[i];
            let id = taxi.id;
            let version = taxi.route_version;
            if taxi.route.is_none() {
                let pos = taxi.position_at(now);
                if self.graph.point(pos).distance_m(&origin_pt) <= self.cfg.encounter_radius_m {
                    self.push_ev(now, Ev::Encounter { taxi: id, request: req.id, version });
                }
            } else {
                let mut earliest: Option<Time> = None;
                for n in self.watched_nodes[&req.id].iter() {
                    if let Some(&t) = self.route_nodes[i].get(n) {
                        if t >= now && earliest.is_none_or(|e| t < e) {
                            earliest = Some(t);
                        }
                    }
                }
                if let Some(t) = earliest {
                    if t <= req.pickup_deadline() {
                        self.push_ev(t, Ev::Encounter { taxi: id, request: req.id, version });
                    }
                }
            }
        }
    }

    fn drop_offline_watch(&mut self, id: RequestId) {
        self.pending_offline.remove(&id);
        if let Some(nodes) = self.watched_nodes.remove(&id) {
            for n in nodes {
                if let Some(v) = self.offline_watch.get_mut(&n) {
                    v.retain(|&r| r != id);
                    if v.is_empty() {
                        self.offline_watch.remove(&n);
                    }
                }
            }
        }
    }

    fn process_event(&mut self, q: QueuedEv, scheme: &mut dyn DispatchScheme) {
        match q.ev {
            Ev::Taxi { taxi, version } => self.process_taxi_event(q.time, taxi, version, scheme),
            Ev::Encounter { taxi, request, version } => {
                self.process_encounter(q.time, taxi, request, version, scheme)
            }
        }
    }

    fn process_taxi_event(
        &mut self,
        t: Time,
        taxi_id: TaxiId,
        version: u64,
        scheme: &mut dyn DispatchScheme,
    ) {
        {
            let taxi = &self.taxis[taxi_id.index()];
            if taxi.route_version != version || taxi.schedule.is_empty() {
                return; // superseded plan
            }
        }
        let (ev, next_time) = {
            let taxi = &mut self.taxis[taxi_id.index()];
            let ev = taxi.complete_next_event(t);
            (ev, taxi.next_event_time())
        };
        let req = self.requests.get(ev.request).clone();
        match ev.kind {
            EventKind::Pickup => {
                self.waiting_s.push(t - req.release_time);
                self.obs.emit(Event::Pickup {
                    t,
                    req: req.id.0,
                    taxi: taxi_id.0,
                    wait_s: t - req.release_time,
                });
                self.pickup_time.insert(req.id, t);
                let ep = &mut self.episodes[taxi_id.index()];
                if ep.onboard_since.is_none() {
                    ep.onboard_since = Some(t);
                }
            }
            EventKind::Dropoff => {
                let picked = self.pickup_time.remove(&req.id).unwrap_or(req.release_time);
                let shared = t - picked;
                self.detour_s.push((shared - req.direct_cost_s).max(0.0));
                self.obs.emit(Event::Dropoff {
                    t,
                    req: req.id.0,
                    taxi: taxi_id.0,
                    detour_s: (shared - req.direct_cost_s).max(0.0),
                });
                if req.offline {
                    self.served_offline += 1;
                } else {
                    self.served_online += 1;
                }
                self.served_records.push(ServedRecord {
                    request: req.id.0,
                    taxi: taxi_id.0,
                    pickup_t: picked,
                    dropoff_t: t,
                });
                self.oracle.unpin(req.origin);
                self.oracle.unpin(req.destination);
                let taxi = &self.taxis[taxi_id.index()];
                let ep = &mut self.episodes[taxi_id.index()];
                ep.trips.push(PassengerTrip {
                    request: req.id,
                    shared_cost_s: shared,
                    direct_cost_s: req.direct_cost_s,
                });
                if taxi.onboard.is_empty() {
                    if let Some(since) = ep.onboard_since.take() {
                        ep.onboard_cost_s += t - since;
                    }
                    if taxi.is_vacant() {
                        self.settle_taxi(taxi_id);
                    }
                }
            }
        }
        if let Some(nt) = next_time {
            self.push_ev(nt, Ev::Taxi { taxi: taxi_id, version });
        }
        {
            let world = World {
                graph: &self.graph,
                cache: &self.cache,
                oracle: &self.oracle,
                taxis: &self.taxis,
                requests: &self.requests,
            };
            scheme.on_taxi_progress(&self.taxis[taxi_id.index()], t, &world);
        }
    }

    fn process_encounter(
        &mut self,
        t: Time,
        taxi_id: TaxiId,
        request: RequestId,
        version: u64,
        scheme: &mut dyn DispatchScheme,
    ) {
        if !self.pending_offline.contains(&request) {
            return;
        }
        let req = self.requests.get(request).clone();
        if t > req.pickup_deadline() {
            self.drop_offline_watch(request);
            self.rejected += 1;
            self.obs.emit(Event::Reject { t, req: req.id.0, reason: RejectReason::OfflineExpired });
            return;
        }
        {
            let taxi = &self.taxis[taxi_id.index()];
            if taxi.route_version != version {
                return; // route changed; a rescan already queued new events
            }
            // The encountering taxi needs an idle seat to stop at all.
            if taxi.idle_seats(&self.requests) < req.passengers as u32 {
                return;
            }
        }
        // Driver reports the request; the server matches it (possibly to
        // another taxi).
        self.obs.emit(Event::Encounter { t, req: req.id.0, taxi: taxi_id.0 });
        self.pending_offline.remove(&request);
        if self.try_dispatch(&req, t, Some(taxi_id), scheme) {
            self.drop_offline_watch_only(request);
        } else {
            // Stays pending for future encounters.
            self.pending_offline.insert(request);
        }
    }

    fn drop_offline_watch_only(&mut self, id: RequestId) {
        if let Some(nodes) = self.watched_nodes.remove(&id) {
            for n in nodes {
                if let Some(v) = self.offline_watch.get_mut(&n) {
                    v.retain(|&r| r != id);
                    if v.is_empty() {
                        self.offline_watch.remove(&n);
                    }
                }
            }
        }
    }

    fn settle_taxi(&mut self, taxi: TaxiId) {
        let ep = std::mem::take(&mut self.episodes[taxi.index()]);
        if ep.trips.is_empty() {
            return;
        }
        let s = settle_episode(&ep.trips, ep.onboard_cost_s, &self.cfg.payment);
        self.fares_paid += s.fares.iter().map(|(_, f)| f).sum::<f64>();
        self.fares_solo += s.no_share_total;
        self.driver_income += s.driver_income;
        self.benefit += s.benefit;
    }

    fn finish(mut self, scheme: &mut dyn DispatchScheme, wall_clock_s: f64) -> SimReport {
        // Settle episodes still open at the horizon (all deliveries done —
        // the heap drained — so only bookkeeping remains).
        for i in 0..self.taxis.len() {
            self.settle_taxi(TaxiId(i as u32));
        }
        // Offline requests never served count as rejected. The pending
        // set iterates in hash order, so sort by id before emitting —
        // the event stream must not depend on FxHashSet iteration.
        let mut expired_ids: Vec<RequestId> = self.pending_offline.iter().copied().collect();
        expired_ids.sort_unstable();
        let expired = expired_ids.len();
        self.rejected += expired;
        // Stamp with the run horizon (never earlier than any emitted
        // event) so the stream stays monotone in sim time.
        let horizon = expired_ids
            .iter()
            .map(|&id| self.requests.get(id).pickup_deadline())
            .fold(self.clock, f64::max);
        for id in expired_ids {
            self.obs.emit(Event::Reject {
                t: horizon,
                req: id.0,
                reason: RejectReason::OfflineExpired,
            });
        }

        let n_offline = self.requests.iter().filter(|r| r.offline).count();

        if self.obs.is_enabled() {
            self.obs.set_run_info(RunInfo {
                scheme: scheme.name().to_string(),
                n_taxis: self.taxis.len(),
                n_requests: self.requests.len(),
                n_offline,
                parallelism: self.cfg.parallelism,
            });
            let cs = self.cache.stats();
            let os = self.oracle.stats();
            self.obs.set_external_stats(ExternalStats {
                cache_hits: cs.hits,
                cache_misses: cs.misses,
                cache_evictions: cs.evictions,
                oracle_vector_hits: os.vector_hits,
                oracle_memo_hits: os.memo_hits,
                oracle_searches: os.searches,
                oracle_pin_computes: os.pin_computes,
                oracle_evictions: os.evictions,
            });
            self.obs.flush();
        }

        SimReport {
            scheme: scheme.name().to_string(),
            n_taxis: self.taxis.len(),
            n_requests: self.requests.len(),
            n_offline,
            served: self.served_online + self.served_offline,
            served_online: self.served_online,
            served_offline: self.served_offline,
            rejected: self.rejected,
            avg_response_ms: self.response_ms.mean(),
            p95_response_ms: self.response_ms.quantile(0.95),
            avg_detour_min: self.detour_s.mean() / 60.0,
            avg_waiting_min: self.waiting_s.mean() / 60.0,
            avg_candidates: self.candidates.mean(),
            total_passenger_fares: self.fares_paid,
            total_solo_fares: self.fares_solo,
            total_driver_income: self.driver_income,
            total_benefit: self.benefit,
            index_memory_bytes: scheme.index_memory_bytes(),
            shared_memory_bytes: self.oracle.memory_bytes() + self.cache.memory_bytes(),
            wall_clock_s,
            served_records: self.served_records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{build_context, Scenario, ScenarioConfig, SchemeKind};
    use mtshare_core::PartitionStrategy;
    use mtshare_road::{grid_city, GridCityConfig};

    fn run_kind(kind: SchemeKind, scenario_cfg: ScenarioConfig) -> SimReport {
        let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let cache = PathCache::new(graph.clone());
        let scenario = Scenario::generate(graph.clone(), &cache, scenario_cfg);
        let ctx = kind
            .needs_context()
            .then(|| build_context(&graph, &scenario.historical, 12, PartitionStrategy::Bipartite));
        let mut scheme = kind.build(&graph, scenario.taxis.len(), ctx, None);
        let sim = Simulator::new(graph, cache, &scenario, SimConfig::default());
        sim.run(scheme.as_mut())
    }

    #[test]
    fn no_sharing_serves_and_accounts() {
        let r = run_kind(SchemeKind::NoSharing, ScenarioConfig::peak(12));
        assert!(r.served > 0, "{r:?}");
        assert_eq!(r.served + r.rejected, r.n_requests, "{r:?}");
        assert_eq!(r.served, r.served_online);
        // No sharing ⇒ no detour and no benefit.
        assert!(r.avg_detour_min < 0.2, "{r:?}");
        assert!(r.total_benefit.abs() < 1e-6);
        // Riders pay exactly solo fares.
        assert!((r.total_passenger_fares - r.total_solo_fares).abs() < 1e-6);
    }

    #[test]
    fn mtshare_serves_more_than_no_sharing_in_peak() {
        let ns = run_kind(SchemeKind::NoSharing, ScenarioConfig::peak(12));
        let mt = run_kind(SchemeKind::MtShare, ScenarioConfig::peak(12));
        assert!(mt.served > ns.served, "mT-Share {} vs No-Sharing {}", mt.served, ns.served);
    }

    #[test]
    fn deliveries_meet_deadlines() {
        // The accounting invariant: a served request implies its dropoff
        // occurred before its deadline; the simulator enforces this via
        // schedule feasibility. Spot-check by re-running with T-Share.
        let r = run_kind(SchemeKind::TShare, ScenarioConfig::peak(10));
        assert!(r.served > 0);
        assert!(r.avg_waiting_min >= 0.0 && r.avg_detour_min >= 0.0);
        assert!(r.avg_response_ms > 0.0);
    }

    #[test]
    fn nonpeak_offline_requests_get_served_by_mtshare_pro() {
        let r = run_kind(SchemeKind::MtSharePro, ScenarioConfig::nonpeak(16));
        assert!(r.n_offline > 0);
        assert!(r.served_offline > 0, "{r:?}");
        assert_eq!(r.served + r.rejected, r.n_requests, "{r:?}");
    }

    #[test]
    fn zero_slack_scenario_rejects_everything_gracefully() {
        let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let cache = PathCache::new(graph.clone());
        let mut cfg = ScenarioConfig::peak(6);
        cfg.rho = 1.0; // deadline == release + direct: nothing is servable
        let scenario = Scenario::generate(graph.clone(), &cache, cfg);
        let mut scheme = SchemeKind::NoSharing.build(&graph, scenario.taxis.len(), None, None);
        let sim = Simulator::new(graph, cache, &scenario, SimConfig::default());
        let r = sim.run(scheme.as_mut());
        assert_eq!(r.served, 0, "{r:?}");
        assert_eq!(r.rejected, r.n_requests);
        assert_eq!(r.avg_detour_min, 0.0);
    }

    #[test]
    fn replanning_midroute_preserves_first_passenger() {
        // With one taxi and two sequential aligned requests, the second
        // dispatch replans the route mid-flight; the audit must show both
        // riders delivered within their deadlines (version-guarded events
        // must not double-fire).
        let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let cache = PathCache::new(graph.clone());
        let mut cfg = ScenarioConfig::peak(1);
        cfg.n_requests = 6;
        cfg.rho = 2.0;
        let scenario = Scenario::generate(graph.clone(), &cache, cfg);
        let ctx = crate::scenario::build_context(
            &graph,
            &scenario.historical,
            8,
            mtshare_core::PartitionStrategy::Bipartite,
        );
        let mut scheme = SchemeKind::MtShare.build(&graph, 1, Some(ctx), None);
        let sim = Simulator::new(graph, cache, &scenario, SimConfig::default());
        let r = sim.run(scheme.as_mut());
        assert!(r.served >= 1);
        // No duplicate deliveries.
        let mut ids: Vec<u32> = r.served_records.iter().map(|s| s.request).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before);
        for rec in &r.served_records {
            let req = &scenario.requests[rec.request as usize];
            assert!(rec.dropoff_t <= req.deadline + 1e-3);
        }
    }

    #[test]
    fn payment_is_conservative() {
        let r = run_kind(SchemeKind::MtShare, ScenarioConfig::peak(12));
        // Riders collectively never pay more than solo.
        assert!(r.total_passenger_fares <= r.total_solo_fares + 1e-6, "{r:?}");
        // Conservation: rider payments equal driver income.
        assert!((r.total_passenger_fares - r.total_driver_income).abs() < 1e-6, "{r:?}");
        assert!(r.fare_saving_pct() >= 0.0);
    }
}
