//! Reusable stepper API over the simulator for long-lived service mode.
//!
//! The one-shot runner owns its whole request store up front and runs
//! [`crate::Simulator::run_to_outcome`] to completion. A service process
//! instead interleaves *ingestion* (feed entries arriving over a socket
//! or stdin) with *stepping* (draining everything processable below the
//! ingestion watermark). [`SimEngine`] packages that protocol:
//!
//! 1. [`SimEngine::new`] runs begin-of-run setup (scheme install or
//!    snapshot restore, disruption seeding, step-0 checkpoint);
//! 2. the caller alternates [`SimEngine::ingest`] /
//!    [`SimEngine::run_until_idle`] as feed entries arrive;
//! 3. on drain, [`SimEngine::close_stream`] lifts the watermark to +∞,
//!    one final [`SimEngine::run_until_idle`] reaches
//!    [`StepOutcome::Done`], and [`SimEngine::finalize`] writes the
//!    final checkpoint and builds the [`SimReport`].
//!
//! Determinism contract: the engine's event trace depends only on the
//! ingested entries and their order — never on *when* they were
//! ingested. The watermark gate guarantees an event is processed only
//! once no future ingestion could precede it, so a recorded feed
//! replayed through the engine is byte-identical to the one-shot run.

use crate::metrics::SimReport;
use crate::simulator::{Simulator, StepOutcome};
use mtshare_model::{DispatchScheme, Time};
use mtshare_obs::RejectReason;
use mtshare_road::NodeId;
use std::time::Instant;

/// One feed entry, before it is assigned a dense [`RequestId`]
/// (`mtshare_model::RequestId`) by ingestion. Mirrors the fields of a
/// ride request minus the id and the derived direct cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestEntry {
    /// Release (request) time in seconds of virtual time. Feeds must be
    /// non-decreasing in this field; the engine's watermark is the max
    /// release seen so far.
    pub release: Time,
    /// Pickup node.
    pub origin: NodeId,
    /// Drop-off node.
    pub destination: NodeId,
    /// Party size.
    pub passengers: u8,
    /// Latest acceptable drop-off time.
    pub deadline: Time,
    /// Offline request (matched by encounter, not dispatch).
    pub offline: bool,
}

/// Incremental driver over a streaming [`Simulator`].
///
/// Construct the simulator with [`Simulator::with_streaming`] over an
/// empty-request scenario; `SimEngine::new` takes it from there.
pub struct SimEngine {
    sim: Simulator,
    start: Instant,
}

impl SimEngine {
    /// Wraps `sim` and performs begin-of-run setup (or snapshot restore
    /// when the simulator is configured to resume).
    pub fn new(mut sim: Simulator, scheme: &mut dyn DispatchScheme) -> Self {
        let start = Instant::now();
        sim.begin(scheme);
        Self { sim, start }
    }

    /// Ingests one admitted feed entry; returns its dense request id
    /// index. Entries must arrive in non-decreasing `release` order.
    pub fn ingest(&mut self, entry: IngestEntry) -> u32 {
        self.sim.ingest_request(entry, None).0
    }

    /// Ingests an admission-rejected entry (shed, rejected at the queue,
    /// or past the drain point). It still consumes an arrival step at
    /// its release time, where `reason` is emitted as the rejection —
    /// this keeps the trace monotone and replay-stable.
    pub fn ingest_doomed(&mut self, entry: IngestEntry, reason: RejectReason) -> u32 {
        self.sim.ingest_request(entry, Some(reason)).0
    }

    /// Declares the feed exhausted: everything still pending becomes
    /// processable and the next [`SimEngine::run_until_idle`] runs to
    /// [`StepOutcome::Done`].
    pub fn close_stream(&mut self) {
        self.sim.close_stream();
    }

    /// Consumes one unit of sequential work, if any is processable.
    pub fn step(&mut self, scheme: &mut dyn DispatchScheme) -> StepOutcome {
        self.sim.step_once(scheme)
    }

    /// Steps until the engine goes idle (needs more feed), completes, or
    /// crashes; returns the terminal (non-`Progressed`) outcome.
    pub fn run_until_idle(&mut self, scheme: &mut dyn DispatchScheme) -> StepOutcome {
        loop {
            match self.sim.step_once(scheme) {
                StepOutcome::Progressed => {}
                terminal => return terminal,
            }
        }
    }

    /// Ends the run: writes the final checkpoint (when persistence is
    /// configured) and builds the report. Call only after
    /// [`SimEngine::run_until_idle`] returned [`StepOutcome::Done`].
    /// `Err(step)` means the final checkpoint hit a storage fault under
    /// strict durability: the WAL is synced, the sinks are flushed and
    /// the state dir is resumable, but no report exists.
    pub fn finalize(mut self, scheme: &mut dyn DispatchScheme) -> Result<SimReport, u64> {
        self.sim.final_checkpoint(&*scheme);
        if let Some(step) = self.sim.storage_fault() {
            return Err(step);
        }
        Ok(self.sim.finish(scheme, self.start.elapsed().as_secs_f64()))
    }

    /// Best-effort durability point for abnormal exits (feed faults):
    /// syncs the WAL and flushes the obs sinks so a typed exit is
    /// crash-consistent and a later `--resume` continues the trace.
    pub fn sync_persistence(&mut self) {
        self.sim.sync_persistence();
    }

    /// Latest simulation time processed.
    pub fn clock(&self) -> Time {
        self.sim.clock()
    }

    /// Sequential-work step counter (the WAL position).
    pub fn step_count(&self) -> u64 {
        self.sim.step_count()
    }

    /// Entries ingested so far, restored ones included — a resumed serve
    /// loop skips this many leading feed entries before continuing.
    pub fn ingested(&self) -> usize {
        self.sim.n_ingested()
    }

    /// Whether construction restored a snapshot instead of starting
    /// fresh.
    pub fn resumed(&self) -> bool {
        self.sim.was_resumed()
    }

    /// Whether the engine is still replaying its WAL suffix after a
    /// restore (obs sinks are muted until replay completes).
    pub fn is_replaying(&self) -> bool {
        self.sim.is_replaying()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{build_context, Scenario, ScenarioConfig, SchemeKind};
    use crate::simulator::{SimConfig, Simulator};
    use mtshare_core::PartitionStrategy;
    use mtshare_model::RideRequest;
    use mtshare_obs::Obs;
    use mtshare_road::{grid_city, GridCityConfig, RoadNetwork};
    use mtshare_routing::PathCache;
    use std::sync::Arc;

    fn setup() -> (Arc<RoadNetwork>, Scenario) {
        let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let cache = PathCache::new(graph.clone());
        let scenario = Scenario::generate(graph.clone(), &cache, ScenarioConfig::peak(8));
        (graph, scenario)
    }

    /// The same scenario with an empty request store — the shape a
    /// streaming run is constructed with (requests come from the feed).
    fn emptied(scenario: &Scenario) -> Scenario {
        Scenario {
            config: scenario.config.clone(),
            historical: scenario.historical.clone(),
            requests: Vec::new(),
            taxis: scenario.taxis.clone(),
        }
    }

    fn scheme_for(graph: &Arc<RoadNetwork>, scenario: &Scenario) -> Box<dyn DispatchScheme> {
        let ctx = build_context(graph, &scenario.historical, 12, PartitionStrategy::Bipartite);
        SchemeKind::MtShare.build(graph, scenario.taxis.len(), Some(ctx), None)
    }

    fn entry_of(r: &RideRequest) -> IngestEntry {
        IngestEntry {
            release: r.release_time,
            origin: r.origin,
            destination: r.destination,
            passengers: r.passengers,
            deadline: r.deadline,
            offline: r.offline,
        }
    }

    fn streamed_report(graph: &Arc<RoadNetwork>, scenario: &Scenario, chunk: usize) -> SimReport {
        let empty = emptied(scenario);
        let mut scheme = scheme_for(graph, scenario);
        let cache = PathCache::new(graph.clone());
        let sim =
            Simulator::new(graph.clone(), cache, &empty, SimConfig::default()).with_streaming();
        let mut engine = SimEngine::new(sim, scheme.as_mut());
        for batch in scenario.requests.chunks(chunk.max(1)) {
            for r in batch {
                engine.ingest(entry_of(r));
            }
            assert_eq!(engine.run_until_idle(scheme.as_mut()), StepOutcome::Idle);
        }
        engine.close_stream();
        assert_eq!(engine.run_until_idle(scheme.as_mut()), StepOutcome::Done);
        engine.finalize(scheme.as_mut()).expect("no persistence, no storage faults")
    }

    #[test]
    fn streamed_run_matches_one_shot() {
        let (graph, scenario) = setup();
        let mut scheme = scheme_for(&graph, &scenario);
        let cache = PathCache::new(graph.clone());
        let one_shot = Simulator::new(graph.clone(), cache, &scenario, SimConfig::default())
            .run(scheme.as_mut());
        for chunk in [1, 7, usize::MAX] {
            let streamed = streamed_report(&graph, &scenario, chunk);
            assert_eq!(streamed.served, one_shot.served, "chunk {chunk}");
            assert_eq!(streamed.rejected, one_shot.rejected, "chunk {chunk}");
            assert_eq!(
                streamed.total_passenger_fares, one_shot.total_passenger_fares,
                "chunk {chunk}"
            );
        }
    }

    #[test]
    fn empty_stream_completes_immediately() {
        let (graph, scenario) = setup();
        let empty = emptied(&scenario);
        let mut scheme = scheme_for(&graph, &scenario);
        let cache = PathCache::new(graph.clone());
        let sim =
            Simulator::new(graph.clone(), cache, &empty, SimConfig::default()).with_streaming();
        let mut engine = SimEngine::new(sim, scheme.as_mut());
        // Open stream, nothing ingested yet: idle, not done.
        assert_eq!(engine.run_until_idle(scheme.as_mut()), StepOutcome::Idle);
        assert_eq!(engine.ingested(), 0);
        engine.close_stream();
        assert_eq!(engine.run_until_idle(scheme.as_mut()), StepOutcome::Done);
        let report = engine.finalize(scheme.as_mut()).expect("no persistence, no storage faults");
        assert_eq!(report.served, 0);
    }

    #[test]
    fn doomed_entries_are_rejected_at_release_time() {
        let (graph, scenario) = setup();
        let empty = emptied(&scenario);
        let mut scheme = scheme_for(&graph, &scenario);
        let obs = Obs::enabled();
        let cache = PathCache::new(graph.clone());
        let sim = Simulator::new(graph.clone(), cache, &empty, SimConfig::default())
            .with_streaming()
            .with_obs(obs.clone());
        let mut engine = SimEngine::new(sim, scheme.as_mut());
        for (i, r) in scenario.requests.iter().take(10).enumerate() {
            if i % 2 == 0 {
                engine.ingest_doomed(entry_of(r), RejectReason::QueueShed);
            } else {
                engine.ingest(entry_of(r));
            }
        }
        engine.close_stream();
        assert_eq!(engine.run_until_idle(scheme.as_mut()), StepOutcome::Done);
        assert_eq!(obs.reject_count(RejectReason::QueueShed), 5);
        engine.finalize(scheme.as_mut()).expect("no persistence, no storage faults");
    }
}
