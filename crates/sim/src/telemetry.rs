//! Rejection-reason classification for the observability event stream.
//!
//! The dispatcher itself only reports *that* a request could not be placed
//! (an empty [`mtshare_model::DispatchOutcome`]); the reason taxonomy the
//! summary JSON breaks rejections down by is recovered here from the world
//! state the decision was made against. Classification is a pure function
//! of the request and the world snapshot, so it is deterministic at any
//! `--parallelism` and adds zero cost on the accept path.

use mtshare_model::{RideRequest, World};
use mtshare_obs::RejectReason;

/// Explains why `req` was rejected, given the world it was dispatched
/// against.
///
/// Checks run from the most structural cause to the most situational one,
/// and the first match wins:
///
/// 1. [`RejectReason::EmptyFleet`] — there are no taxis at all;
/// 2. [`RejectReason::UnreachableOd`] — no path connects origin to
///    destination, so no taxi could ever serve it;
/// 3. [`RejectReason::InfeasibleDeadline`] — the deadline is violated even
///    by a taxi standing on the origin at release time;
/// 4. [`RejectReason::ZeroCapacity`] — no taxi in the fleet has enough
///    seats for the rider group, regardless of schedules;
/// 5. [`RejectReason::NoFeasibleInsertion`] — the request was serviceable
///    in principle but no current schedule admitted it (the "honest"
///    rejection the paper's Sec. V measures).
///
/// [`RejectReason::OfflineExpired`] is never returned here: expiry is
/// detected by the simulator clock, not by a dispatch attempt.
pub fn classify_rejection(req: &RideRequest, world: &World<'_>) -> RejectReason {
    if world.taxis.is_empty() {
        return RejectReason::EmptyFleet;
    }
    if world.cache.cost(req.origin, req.destination).is_none() {
        return RejectReason::UnreachableOd;
    }
    if !req.is_feasible() {
        return RejectReason::InfeasibleDeadline;
    }
    if world.taxis.iter().all(|t| t.capacity < req.passengers) {
        return RejectReason::ZeroCapacity;
    }
    RejectReason::NoFeasibleInsertion
}

/// A known external cause for a rejection, carried by the disruption /
/// recovery layer. Unlike the classified reasons, these are facts about
/// what *happened* to the request, not inferences from the world state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectCause {
    /// The rider withdrew the request before pickup.
    Cancelled,
    /// The assigned taxi failed and recovery was impossible.
    TaxiFailed,
    /// The bounded re-dispatch retry budget ran out.
    RetriesExhausted,
}

/// Like [`classify_rejection`], but a known cause short-circuits the
/// world-state inference: a cancelled rider is `cancelled_by_passenger`
/// even if its deadline also happened to be infeasible.
pub fn classify_rejection_with_cause(
    req: &RideRequest,
    world: &World<'_>,
    cause: Option<RejectCause>,
) -> RejectReason {
    match cause {
        Some(RejectCause::Cancelled) => RejectReason::CancelledByPassenger,
        Some(RejectCause::TaxiFailed) => RejectReason::TaxiFailed,
        Some(RejectCause::RetriesExhausted) => RejectReason::RetriesExhausted,
        None => classify_rejection(req, world),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtshare_model::{RequestId, RequestStore, Taxi, TaxiId};
    use mtshare_road::{grid_city, EdgeSpec, GeoPoint, GridCityConfig, NodeId, RoadNetwork};
    use mtshare_routing::{HotNodeOracle, PathCache};
    use std::sync::Arc;

    fn req(origin: u32, destination: u32, direct: f64, slack: f64) -> RideRequest {
        RideRequest {
            id: RequestId(0),
            release_time: 0.0,
            origin: NodeId(origin),
            destination: NodeId(destination),
            passengers: 1,
            deadline: direct + slack,
            direct_cost_s: direct,
            offline: false,
        }
    }

    fn world_over<'a>(
        graph: &'a Arc<RoadNetwork>,
        cache: &'a PathCache,
        oracle: &'a HotNodeOracle,
        taxis: &'a [Taxi],
        requests: &'a RequestStore,
    ) -> World<'a> {
        World { graph, cache, oracle, taxis, requests }
    }

    #[test]
    fn empty_fleet_wins_over_everything() {
        let g = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let cache = PathCache::new(g.clone());
        let oracle = HotNodeOracle::new(g.clone());
        let requests = RequestStore::new();
        let w = world_over(&g, &cache, &oracle, &[], &requests);
        // Even an outright infeasible request classifies as empty-fleet.
        let r = req(0, 399, f64::INFINITY, -1e9);
        assert_eq!(classify_rejection(&r, &w), RejectReason::EmptyFleet);
    }

    #[test]
    fn unreachable_od_detected_from_the_cache() {
        // One-way pair: 0 → 1 exists, 1 → 0 does not.
        let pts = vec![GeoPoint::new(30.0, 104.0), GeoPoint::new(30.001, 104.0)];
        let edges =
            vec![EdgeSpec { from: NodeId(0), to: NodeId(1), length_m: 10.0, speed_kmh: 15.0 }];
        let g = Arc::new(RoadNetwork::new(pts, &edges).unwrap());
        let cache = PathCache::new(g.clone());
        let oracle = HotNodeOracle::new(g.clone());
        let taxis = vec![Taxi::new(TaxiId(0), 4, NodeId(0))];
        let requests = RequestStore::new();
        let w = world_over(&g, &cache, &oracle, &taxis, &requests);
        let r = req(1, 0, f64::INFINITY, 1e9);
        assert_eq!(classify_rejection(&r, &w), RejectReason::UnreachableOd);
    }

    #[test]
    fn deadline_capacity_and_fallback_in_order() {
        let g = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let cache = PathCache::new(g.clone());
        let oracle = HotNodeOracle::new(g.clone());
        let taxis = vec![Taxi::new(TaxiId(0), 2, NodeId(0))];
        let requests = RequestStore::new();
        let w = world_over(&g, &cache, &oracle, &taxis, &requests);
        let direct = cache.cost(NodeId(0), NodeId(399)).unwrap();

        let late = req(0, 399, direct, -1.0);
        assert_eq!(classify_rejection(&late, &w), RejectReason::InfeasibleDeadline);

        let mut bus = req(0, 399, direct, 600.0);
        bus.passengers = 5; // larger than any taxi's capacity
        assert_eq!(classify_rejection(&bus, &w), RejectReason::ZeroCapacity);

        let plain = req(0, 399, direct, 600.0);
        assert_eq!(classify_rejection(&plain, &w), RejectReason::NoFeasibleInsertion);
    }

    #[test]
    fn known_cause_short_circuits_classification() {
        let g = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let cache = PathCache::new(g.clone());
        let oracle = HotNodeOracle::new(g.clone());
        let requests = RequestStore::new();
        // Empty fleet: the strongest structural reason — a known cause
        // must still win over it.
        let w = world_over(&g, &cache, &oracle, &[], &requests);
        let r = req(0, 399, 100.0, -5.0);
        assert_eq!(
            classify_rejection_with_cause(&r, &w, Some(RejectCause::Cancelled)),
            RejectReason::CancelledByPassenger
        );
        assert_eq!(
            classify_rejection_with_cause(&r, &w, Some(RejectCause::TaxiFailed)),
            RejectReason::TaxiFailed
        );
        assert_eq!(
            classify_rejection_with_cause(&r, &w, Some(RejectCause::RetriesExhausted)),
            RejectReason::RetriesExhausted
        );
        assert_eq!(classify_rejection_with_cause(&r, &w, None), RejectReason::EmptyFleet);
    }
}
