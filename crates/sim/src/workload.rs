//! Synthetic Chengdu-like workload generation.
//!
//! Stands in for the Didi GAIA trace (see DESIGN.md substitutions): demand
//! is a mixture of K spatial hotspots plus a uniform background, with a
//! gravity-style OD structure (trips flow between hotspots with
//! attraction-weighted probabilities). The generator produces both the
//! *historical* trips that train the bipartite partitioner and the *live*
//! request streams of the peak / non-peak scenarios. Fully deterministic
//! given a seed.

use mtshare_mobility::Trip;
use mtshare_road::{GeoPoint, NodeId, RoadNetwork, SpatialGrid};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A generated request before deadline materialization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawRequest {
    /// Release time, seconds from scenario start.
    pub release_time: f64,
    /// Origin vertex.
    pub origin: NodeId,
    /// Destination vertex.
    pub destination: NodeId,
    /// Riders travelling together.
    pub passengers: u8,
    /// Whether this request hails at the roadside (offline).
    pub offline: bool,
}

/// Configuration of the demand model.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of demand hotspots.
    pub hotspots: usize,
    /// Gaussian-ish spread of demand around a hotspot, metres.
    pub hotspot_spread_m: f64,
    /// Fraction of trips drawn uniformly instead of from hotspots.
    pub uniform_fraction: f64,
    /// Minimum straight-line trip length, metres (re-sampled below).
    pub min_trip_m: f64,
    /// Probability that a party has 2 riders (else 1).
    pub two_rider_fraction: f64,
    /// Probability that a trip's destination is drawn from the two
    /// heaviest hotspots (the "CBD pull" of a commute peak). The remainder
    /// follows the general gravity mixture.
    pub dest_concentration: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            hotspots: 8,
            hotspot_spread_m: 700.0,
            uniform_fraction: 0.2,
            // Keeps the trip-length distribution near the paper's Fig. 5(b)
            // (median ≈ 15 min at 15 km/h) on the default 7.2 km city.
            min_trip_m: 1800.0,
            two_rider_fraction: 0.15,
            dest_concentration: 0.5,
            seed: 42,
        }
    }
}

/// Hotspot-mixture demand generator over a road network.
pub struct WorkloadGenerator {
    graph: Arc<RoadNetwork>,
    grid: SpatialGrid,
    hotspot_centers: Vec<GeoPoint>,
    hotspot_weights: Vec<f64>,
    cfg: WorkloadConfig,
    rng: SmallRng,
}

impl WorkloadGenerator {
    /// Creates a generator; hotspot locations are sampled from the graph.
    pub fn new(graph: Arc<RoadNetwork>, cfg: WorkloadConfig) -> Self {
        assert!(cfg.hotspots >= 1);
        assert!((0.0..=1.0).contains(&cfg.uniform_fraction));
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let grid = SpatialGrid::build(&graph, 300.0);
        let n = graph.node_count() as u32;
        let mut hotspot_centers = Vec::with_capacity(cfg.hotspots);
        let mut hotspot_weights = Vec::with_capacity(cfg.hotspots);
        for _ in 0..cfg.hotspots {
            hotspot_centers.push(graph.point(NodeId(rng.gen_range(0..n))));
            // Zipf-ish attraction weights.
            hotspot_weights.push(1.0 / (1.0 + hotspot_weights.len() as f64).sqrt());
        }
        Self { graph, grid, hotspot_centers, hotspot_weights, cfg, rng }
    }

    fn sample_hotspot(&mut self) -> usize {
        let total: f64 = self.hotspot_weights.iter().sum();
        let mut x = self.rng.gen_range(0.0..total);
        for (i, w) in self.hotspot_weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return i;
            }
        }
        self.hotspot_weights.len() - 1
    }

    /// Samples a vertex near a point (uniform disc of the configured
    /// spread), falling back to the nearest vertex.
    fn sample_near(&mut self, center: GeoPoint) -> NodeId {
        let r = self.cfg.hotspot_spread_m * self.rng.gen_range(0.0f64..1.0).sqrt();
        let theta = self.rng.gen_range(0.0..std::f64::consts::TAU);
        let meters_per_deg = 111_195.0;
        let p = GeoPoint::new(
            center.lat + r * theta.sin() / meters_per_deg,
            center.lng + r * theta.cos() / (meters_per_deg * center.lat.to_radians().cos()),
        );
        self.grid.nearest_node(&self.graph, &p).expect("non-empty graph")
    }

    fn sample_uniform(&mut self) -> NodeId {
        NodeId(self.rng.gen_range(0..self.graph.node_count() as u32))
    }

    /// Samples one origin-destination pair under the gravity mixture.
    pub fn sample_od(&mut self) -> (NodeId, NodeId) {
        for _ in 0..32 {
            let origin = if self.rng.gen_bool(self.cfg.uniform_fraction) {
                self.sample_uniform()
            } else {
                let h = self.sample_hotspot();
                let c = self.hotspot_centers[h];
                self.sample_near(c)
            };
            let destination = if self.rng.gen_bool(self.cfg.dest_concentration) {
                // Commute pull: the two heaviest hotspots absorb a fixed
                // share of all trips (Chengdu-style CBD flow).
                let h = self.rng.gen_range(0..2.min(self.hotspot_centers.len()));
                let c = self.hotspot_centers[h];
                self.sample_near(c)
            } else if self.rng.gen_bool(self.cfg.uniform_fraction) {
                self.sample_uniform()
            } else {
                // Gravity: destinations pull toward (another) hotspot.
                let h = self.sample_hotspot();
                let c = self.hotspot_centers[h];
                self.sample_near(c)
            };
            if origin != destination
                && self.graph.point(origin).distance_m(&self.graph.point(destination))
                    >= self.cfg.min_trip_m
            {
                return (origin, destination);
            }
        }
        // Degenerate tiny graphs: accept whatever differs.
        let a = self.sample_uniform();
        let mut b = self.sample_uniform();
        while b == a {
            b = self.sample_uniform();
        }
        (a, b)
    }

    /// Generates `n` historical trips for training the partitioner.
    pub fn historical_trips(&mut self, n: usize) -> Vec<Trip> {
        (0..n)
            .map(|_| {
                let (origin, destination) = self.sample_od();
                Trip { origin, destination }
            })
            .collect()
    }

    /// Generates `n` live requests uniformly spread over
    /// `[start, start + duration_s)` (a Poisson stream conditioned on its
    /// count), with the given fraction marked offline. Sorted by release
    /// time.
    pub fn requests(
        &mut self,
        n: usize,
        start: f64,
        duration_s: f64,
        offline_fraction: f64,
    ) -> Vec<RawRequest> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let (origin, destination) = self.sample_od();
            let passengers = if self.rng.gen_bool(self.cfg.two_rider_fraction) { 2 } else { 1 };
            out.push(RawRequest {
                release_time: start + self.rng.gen_range(0.0..duration_s.max(1e-9)),
                origin,
                destination,
                passengers,
                offline: self.rng.gen_bool(offline_fraction),
            });
        }
        out.sort_by(|a, b| a.release_time.total_cmp(&b.release_time));
        out
    }

    /// Generates a multi-hour stream following an hourly demand profile
    /// (`counts[h]` requests in hour `h`). Used by the Fig. 5 / Fig. 21
    /// experiments.
    pub fn day_stream(&mut self, counts: &[usize], offline_fraction: f64) -> Vec<RawRequest> {
        let mut out = Vec::new();
        for (h, &c) in counts.iter().enumerate() {
            out.extend(self.requests(c, h as f64 * 3600.0, 3600.0, offline_fraction));
        }
        out.sort_by(|a, b| a.release_time.total_cmp(&b.release_time));
        out
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Arc<RoadNetwork> {
        &self.graph
    }
}

/// An hourly demand profile shaped like the paper's Fig. 5(a): morning and
/// evening workday peaks, scaled so the busiest hour has `peak` requests.
pub fn workday_profile(peak: usize) -> Vec<usize> {
    // Relative utilization by hour 0..23 (Fig. 5a workday shape).
    const SHAPE: [f64; 24] = [
        0.18, 0.12, 0.08, 0.06, 0.06, 0.10, 0.25, 0.55, 1.00, 0.90, 0.75, 0.72, 0.70, 0.72, 0.75,
        0.78, 0.82, 0.95, 0.92, 0.80, 0.65, 0.50, 0.38, 0.25,
    ];
    SHAPE.iter().map(|s| (s * peak as f64).round() as usize).collect()
}

/// Weekend profile: flatter, later rise (Fig. 5a weekend shape).
pub fn weekend_profile(peak: usize) -> Vec<usize> {
    const SHAPE: [f64; 24] = [
        0.30, 0.22, 0.15, 0.10, 0.08, 0.08, 0.12, 0.25, 0.45, 0.60, 0.70, 0.75, 0.78, 0.80, 0.80,
        0.80, 0.82, 0.85, 0.88, 1.00, 0.95, 0.85, 0.65, 0.45,
    ];
    SHAPE.iter().map(|s| (s * peak as f64).round() as usize).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtshare_road::{grid_city, GridCityConfig};

    fn generator(seed: u64) -> WorkloadGenerator {
        let g = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        WorkloadGenerator::new(g, WorkloadConfig { seed, ..Default::default() })
    }

    #[test]
    fn requests_sorted_and_in_window() {
        let mut w = generator(1);
        let reqs = w.requests(200, 100.0, 3600.0, 0.3);
        assert_eq!(reqs.len(), 200);
        assert!(reqs.windows(2).all(|p| p[0].release_time <= p[1].release_time));
        assert!(reqs.iter().all(|r| r.release_time >= 100.0 && r.release_time < 3700.0));
        let offline = reqs.iter().filter(|r| r.offline).count();
        assert!(offline > 20 && offline < 120, "offline count {offline}");
    }

    #[test]
    fn trips_have_min_length_and_distinct_endpoints() {
        let mut w = generator(2);
        let g = w.graph().clone();
        for t in w.historical_trips(300) {
            assert_ne!(t.origin, t.destination);
            let d = g.point(t.origin).distance_m(&g.point(t.destination));
            assert!(d >= 700.0, "trip too short: {d}");
        }
    }

    #[test]
    fn demand_is_spatially_concentrated() {
        let mut w = generator(3);
        let g = w.graph().clone();
        let trips = w.historical_trips(2000);
        // Count trips per node; hotspot structure ⇒ the top decile of
        // origin nodes carries a disproportionate share.
        let mut counts = vec![0u32; g.node_count()];
        for t in &trips {
            counts[t.origin.index()] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top: u32 = counts.iter().take(g.node_count() / 10).sum();
        assert!(
            top as f64 / trips.len() as f64 > 0.2,
            "top-decile share {}",
            top as f64 / trips.len() as f64
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generator(7).requests(50, 0.0, 100.0, 0.5);
        let b = generator(7).requests(50, 0.0, 100.0, 0.5);
        assert_eq!(a, b);
    }

    #[test]
    fn day_profiles_have_expected_shape() {
        let wd = workday_profile(1000);
        let we = weekend_profile(1000);
        assert_eq!(wd.len(), 24);
        assert_eq!(*wd.iter().max().unwrap(), 1000);
        assert_eq!(wd[8], 1000, "workday peaks at 8am");
        assert_eq!(we[19], 1000, "weekend peaks in the evening");
        assert!(wd[3] < wd[8] / 5);
    }

    #[test]
    fn day_stream_follows_profile() {
        let mut w = generator(9);
        let stream = w.day_stream(&[10, 0, 30], 0.0);
        assert_eq!(stream.len(), 40);
        let hour0 = stream.iter().filter(|r| r.release_time < 3600.0).count();
        let hour2 = stream.iter().filter(|r| r.release_time >= 7200.0).count();
        assert_eq!(hour0, 10);
        assert_eq!(hour2, 30);
    }
}
