//! Scenario presets mirroring Sec. V-A1 and request materialization.

use crate::workload::{RawRequest, WorkloadConfig, WorkloadGenerator};
use mtshare_baselines::{NoSharing, PGreedyDp, TShare};
use mtshare_core::{MobilityContext, MtShare, MtShareConfig, PartitionStrategy};
use mtshare_mobility::Trip;
use mtshare_model::{DispatchScheme, RequestId, RequestStore, RideRequest, Taxi, TaxiId};
use mtshare_road::{NodeId, RoadNetwork};
use mtshare_routing::PathCache;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Which scenario of Sec. V-A1 to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Workday rush hour: many online requests, no offline requests.
    Peak,
    /// Weekend mid-morning: fewer requests, a third of them offline.
    NonPeak,
}

/// Full scenario description (defaults scale Table II to the synthetic
/// city — see DESIGN.md).
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Scenario kind.
    pub kind: ScenarioKind,
    /// Fleet size.
    pub n_taxis: usize,
    /// Seats per taxi.
    pub capacity: u8,
    /// Deadline flexibility factor ρ (Eq. 9).
    pub rho: f64,
    /// Number of live requests.
    pub n_requests: usize,
    /// Scenario duration in seconds.
    pub duration_s: f64,
    /// Fraction of requests that are offline.
    pub offline_fraction: f64,
    /// Historical trips used to train the partitioner.
    pub n_historical: usize,
    /// Demand-model configuration.
    pub workload: WorkloadConfig,
    /// RNG seed for taxi placement.
    pub seed: u64,
}

impl ScenarioConfig {
    /// The peak scenario at the default scaled fleet size.
    pub fn peak(n_taxis: usize) -> Self {
        Self {
            kind: ScenarioKind::Peak,
            n_taxis,
            capacity: 4,
            rho: 1.3,
            // Scaled from 29 534 requests / 3000 taxis ≈ 10 requests per
            // taxi per hour.
            n_requests: n_taxis * 10,
            duration_s: 3600.0,
            offline_fraction: 0.0,
            n_historical: 6000,
            workload: WorkloadConfig::default(),
            seed: 99,
        }
    }

    /// The non-peak scenario: weekend demand with a third offline
    /// (5000 of 15 480 in the paper).
    pub fn nonpeak(n_taxis: usize) -> Self {
        Self {
            kind: ScenarioKind::NonPeak,
            n_taxis,
            capacity: 4,
            rho: 1.3,
            // Scaled from 15 480 requests / 3000 taxis ≈ 5 per taxi-hour.
            n_requests: n_taxis * 5,
            duration_s: 3600.0,
            offline_fraction: 5000.0 / 15480.0,
            n_historical: 6000,
            workload: WorkloadConfig { seed: 43, ..Default::default() },
            seed: 100,
        }
    }

    /// Places the fleet at random vertices (Sec. V-A4).
    pub fn make_fleet(&self, graph: &RoadNetwork) -> Vec<Taxi> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        (0..self.n_taxis)
            .map(|i| {
                Taxi::new(
                    TaxiId(i as u32),
                    self.capacity,
                    NodeId(rng.gen_range(0..graph.node_count() as u32)),
                )
            })
            .collect()
    }
}

/// A fully materialized scenario ready to simulate.
pub struct Scenario {
    /// Configuration it was built from.
    pub config: ScenarioConfig,
    /// Historical trips (partitioner training data).
    pub historical: Vec<Trip>,
    /// Live requests with deadlines, sorted by release time.
    pub requests: Vec<RideRequest>,
    /// Initial fleet.
    pub taxis: Vec<Taxi>,
}

impl Scenario {
    /// Generates the scenario over `graph`, using `cache` to compute the
    /// direct trip costs that define deadlines (Eq. 9:
    /// `e = t + cost(o, d) × ρ`). Requests with unreachable ODs are
    /// discarded (and logged in the count difference).
    pub fn generate(graph: Arc<RoadNetwork>, cache: &PathCache, config: ScenarioConfig) -> Self {
        let mut gen = WorkloadGenerator::new(graph.clone(), config.workload.clone());
        let historical = gen.historical_trips(config.n_historical);
        let raw = gen.requests(config.n_requests, 0.0, config.duration_s, config.offline_fraction);
        let requests = materialize(&raw, cache, config.rho);
        let taxis = config.make_fleet(&graph);
        Self { config, historical, requests, taxis }
    }

    /// Request store preloaded with every request (the simulator reveals
    /// them by release time).
    pub fn request_store(&self) -> RequestStore {
        let mut store = RequestStore::new();
        for r in &self.requests {
            store.push(r.clone());
        }
        store
    }
}

/// Converts raw requests into deadline-stamped ride requests, dropping
/// unreachable OD pairs.
pub fn materialize(raw: &[RawRequest], cache: &PathCache, rho: f64) -> Vec<RideRequest> {
    let mut out = Vec::with_capacity(raw.len());
    for r in raw {
        let Some(direct) = cache.cost(r.origin, r.destination) else { continue };
        if direct <= 0.0 {
            continue;
        }
        out.push(RideRequest {
            id: RequestId(out.len() as u32),
            release_time: r.release_time,
            origin: r.origin,
            destination: r.destination,
            passengers: r.passengers,
            deadline: r.release_time + direct * rho,
            direct_cost_s: direct,
            offline: r.offline,
        });
    }
    out
}

/// Every scheme of the Sec. V comparison, constructed uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeKind {
    /// Regular taxi service.
    NoSharing,
    /// T-Share baseline.
    TShare,
    /// pGreedyDP baseline.
    PGreedyDp,
    /// mT-Share with basic routing.
    MtShare,
    /// mT-Share with probabilistic routing enabled.
    MtSharePro,
    /// mT-Share scoring under rolling-horizon batch (LAP) dispatch.
    MtShareBatch,
}

impl SchemeKind {
    /// All schemes compared in the peak scenario.
    pub const PEAK_SET: [SchemeKind; 4] =
        [SchemeKind::NoSharing, SchemeKind::TShare, SchemeKind::PGreedyDp, SchemeKind::MtShare];

    /// All schemes compared in the non-peak scenario.
    pub const NONPEAK_SET: [SchemeKind; 5] = [
        SchemeKind::NoSharing,
        SchemeKind::TShare,
        SchemeKind::PGreedyDp,
        SchemeKind::MtShare,
        SchemeKind::MtSharePro,
    ];

    /// Display name used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            SchemeKind::NoSharing => "No-Sharing",
            SchemeKind::TShare => "T-Share",
            SchemeKind::PGreedyDp => "pGreedyDP",
            SchemeKind::MtShare => "mT-Share",
            SchemeKind::MtSharePro => "mT-Share_pro",
            SchemeKind::MtShareBatch => "mT-Share_batch",
        }
    }

    /// Whether this scheme needs the mobility context.
    pub fn needs_context(&self) -> bool {
        matches!(self, SchemeKind::MtShare | SchemeKind::MtSharePro | SchemeKind::MtShareBatch)
    }

    /// Instantiates the scheme for a fleet of `n_taxis` over `graph`.
    /// `ctx` must be `Some` for the mT-Share variants; `mt_cfg` overrides
    /// the mT-Share configuration (γ and λ sweeps).
    pub fn build(
        &self,
        graph: &RoadNetwork,
        n_taxis: usize,
        ctx: Option<Arc<MobilityContext>>,
        mt_cfg: Option<MtShareConfig>,
    ) -> Box<dyn DispatchScheme> {
        let base_cfg = mt_cfg.unwrap_or_default();
        // All four schemes score insertions through the same engine
        // (`--scheduler dp|dtree`); mT-Share builds its own from the
        // config, the grid baselines take it explicitly.
        let engine = || mtshare_model::make_engine(base_cfg.scheduler, n_taxis);
        match self {
            SchemeKind::NoSharing => Box::new(
                NoSharing::with_params(
                    graph,
                    n_taxis,
                    base_cfg.max_search_range_m,
                    base_cfg.speed_mps(),
                )
                .with_engine(engine()),
            ),
            SchemeKind::TShare => Box::new(
                TShare::with_params(
                    graph,
                    n_taxis,
                    base_cfg.max_search_range_m,
                    base_cfg.speed_mps(),
                )
                .with_engine(engine()),
            ),
            SchemeKind::PGreedyDp => Box::new(
                PGreedyDp::with_params(
                    graph,
                    n_taxis,
                    base_cfg.max_search_range_m,
                    base_cfg.speed_mps(),
                )
                .with_engine(engine()),
            ),
            SchemeKind::MtShare => {
                let ctx = ctx.expect("mT-Share needs a mobility context");
                let mut cfg = base_cfg;
                cfg.probabilistic = false;
                Box::new(MtShare::new(graph, ctx, cfg, n_taxis))
            }
            SchemeKind::MtSharePro => {
                let ctx = ctx.expect("mT-Share_pro needs a mobility context");
                let cfg = base_cfg.with_probabilistic();
                Box::new(MtShare::new(graph, ctx, cfg, n_taxis))
            }
            SchemeKind::MtShareBatch => {
                let ctx = ctx.expect("mT-Share_batch needs a mobility context");
                let mut cfg = base_cfg.with_batch();
                cfg.probabilistic = false;
                Box::new(MtShare::new(graph, ctx, cfg, n_taxis))
            }
        }
    }
}

/// Builds the mobility context for a scenario (bipartite by default).
pub fn build_context(
    graph: &RoadNetwork,
    historical: &[Trip],
    kappa: usize,
    strategy: PartitionStrategy,
) -> Arc<MobilityContext> {
    let kt = (kappa / 8).max(2);
    MobilityContext::build(graph, historical, kappa, kt, 17, strategy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtshare_road::{grid_city, GridCityConfig};

    #[test]
    fn generate_peak_scenario() {
        let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let cache = PathCache::new(graph.clone());
        let s = Scenario::generate(graph, &cache, ScenarioConfig::peak(10));
        assert_eq!(s.taxis.len(), 10);
        assert!(s.requests.len() >= 95, "kept {}", s.requests.len());
        assert!(s.requests.iter().all(|r| !r.offline));
        // Deadlines follow Eq. 9.
        for r in &s.requests {
            assert!((r.deadline - (r.release_time + r.direct_cost_s * 1.3)).abs() < 1e-6);
            assert!(r.is_feasible());
        }
        let store = s.request_store();
        assert_eq!(store.len(), s.requests.len());
    }

    #[test]
    fn nonpeak_has_offline_share() {
        let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let cache = PathCache::new(graph.clone());
        let s = Scenario::generate(graph, &cache, ScenarioConfig::nonpeak(20));
        let offline = s.requests.iter().filter(|r| r.offline).count();
        let frac = offline as f64 / s.requests.len() as f64;
        assert!((0.2..0.45).contains(&frac), "offline fraction {frac}");
    }

    #[test]
    fn scheme_factory_builds_all() {
        let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let cache = PathCache::new(graph.clone());
        let s = Scenario::generate(graph.clone(), &cache, ScenarioConfig::peak(5));
        let ctx = build_context(&graph, &s.historical, 12, PartitionStrategy::Bipartite);
        for kind in SchemeKind::NONPEAK_SET {
            let scheme = kind.build(&graph, 5, Some(ctx.clone()), None);
            assert_eq!(scheme.name(), kind.label());
        }
        let batch = SchemeKind::MtShareBatch.build(&graph, 5, Some(ctx.clone()), None);
        assert_eq!(batch.name(), "mT-Share_batch");
        assert!(!SchemeKind::TShare.needs_context());
        assert!(SchemeKind::MtShare.needs_context());
        assert!(SchemeKind::MtShareBatch.needs_context());
    }
}
