//! Loader for real taxi-transaction traces (Didi GAIA order format).
//!
//! The paper's evaluation uses the GAIA Chengdu order dataset; this module
//! lets a user who has obtained it run the full pipeline on the real
//! trace. Each CSV line is one transaction:
//!
//! ```text
//! order_id,taxi_id,release_unix_ts,pickup_lng,pickup_lat,dropoff_lng,dropoff_lat
//! ```
//!
//! (Extra trailing columns are ignored; lines that fail to parse are
//! collected, not fatal.) Coordinates are snapped to the nearest
//! road-network vertex, exactly as Sec. V-A4 pre-maps requests.

use crate::workload::RawRequest;
use mtshare_mobility::Trip;
use mtshare_road::{GeoPoint, NodeId, RoadNetwork, SpatialGrid};
use std::io::BufRead;

/// One parsed transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Order identifier (kept as text; GAIA ids are opaque hashes).
    pub order_id: String,
    /// Taxi/driver identifier.
    pub taxi_id: String,
    /// Release time, unix seconds.
    pub release_unix_s: f64,
    /// Pick-up coordinate.
    pub pickup: GeoPoint,
    /// Drop-off coordinate.
    pub dropoff: GeoPoint,
}

/// Retained rejected lines per parse: a multi-gigabyte dump with a
/// systematically wrong column layout must not balloon memory with
/// millions of identical error strings; the first few plus the total
/// count diagnose the problem just as well.
pub const MAX_TRACE_ERRORS: usize = 32;

/// Parse outcome: records plus per-line errors (line number, message).
#[derive(Debug, Default)]
pub struct TraceParse {
    /// Successfully parsed records, in file order.
    pub records: Vec<TraceRecord>,
    /// The first [`MAX_TRACE_ERRORS`] rejected lines.
    pub errors: Vec<(usize, String)>,
    /// Total rejected lines, including those past the retention cap.
    pub total_errors: usize,
}

/// Parses a GAIA-format CSV from any reader.
pub fn parse_trace<R: BufRead>(reader: R) -> std::io::Result<TraceParse> {
    let mut out = TraceParse::default();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_line(line) {
            Ok(rec) => out.records.push(rec),
            Err(e) => {
                out.total_errors += 1;
                if out.errors.len() < MAX_TRACE_ERRORS {
                    out.errors.push((lineno + 1, e));
                }
            }
        }
    }
    Ok(out)
}

fn parse_line(line: &str) -> Result<TraceRecord, String> {
    let mut f = line.split(',');
    let order_id = f.next().ok_or("missing order_id")?.trim().to_string();
    let taxi_id = f.next().ok_or("missing taxi_id")?.trim().to_string();
    let ts: f64 = f
        .next()
        .ok_or("missing timestamp")?
        .trim()
        .parse()
        .map_err(|e| format!("bad timestamp: {e}"))?;
    let mut coord = |name: &str| -> Result<f64, String> {
        f.next()
            .ok_or_else(|| format!("missing {name}"))?
            .trim()
            .parse()
            .map_err(|e| format!("bad {name}: {e}"))
    };
    let plng = coord("pickup_lng")?;
    let plat = coord("pickup_lat")?;
    let dlng = coord("dropoff_lng")?;
    let dlat = coord("dropoff_lat")?;
    for (v, name) in [(plat, "pickup_lat"), (dlat, "dropoff_lat")] {
        if !(-90.0..=90.0).contains(&v) {
            return Err(format!("{name} out of range: {v}"));
        }
    }
    for (v, name) in [(plng, "pickup_lng"), (dlng, "dropoff_lng")] {
        if !(-180.0..=180.0).contains(&v) {
            return Err(format!("{name} out of range: {v}"));
        }
    }
    if order_id.is_empty() {
        return Err("empty order_id".into());
    }
    Ok(TraceRecord {
        order_id,
        taxi_id,
        release_unix_s: ts,
        pickup: GeoPoint::new(plat, plng),
        dropoff: GeoPoint::new(dlat, dlng),
    })
}

/// Snapped view of a trace over a road network.
pub struct SnappedTrace {
    /// `(record index, origin vertex, destination vertex)`; records whose
    /// endpoints snapped to the same vertex are dropped.
    pub trips: Vec<(usize, NodeId, NodeId)>,
    /// Records dropped by snapping.
    pub dropped: usize,
}

/// Snaps every record to the nearest road-network vertices.
pub fn snap_trace(
    records: &[TraceRecord],
    graph: &RoadNetwork,
    grid: &SpatialGrid,
) -> SnappedTrace {
    let mut trips = Vec::with_capacity(records.len());
    let mut dropped = 0;
    for (i, r) in records.iter().enumerate() {
        let (Some(o), Some(d)) =
            (grid.nearest_node(graph, &r.pickup), grid.nearest_node(graph, &r.dropoff))
        else {
            dropped += 1;
            continue;
        };
        if o == d {
            dropped += 1;
            continue;
        }
        trips.push((i, o, d));
    }
    SnappedTrace { trips, dropped }
}

impl SnappedTrace {
    /// Historical trips for training the partitioner.
    pub fn as_trips(&self) -> Vec<Trip> {
        self.trips.iter().map(|&(_, o, d)| Trip { origin: o, destination: d }).collect()
    }

    /// Live requests relative to the earliest release in the window,
    /// with the given offline fraction assigned deterministically (every
    /// `k`-th request hails offline). Sorted by release time.
    pub fn as_requests(&self, records: &[TraceRecord], offline_fraction: f64) -> Vec<RawRequest> {
        if self.trips.is_empty() {
            return Vec::new();
        }
        let t0 = self
            .trips
            .iter()
            .map(|&(i, _, _)| records[i].release_unix_s)
            .fold(f64::INFINITY, f64::min);
        let every =
            if offline_fraction > 0.0 { (1.0 / offline_fraction).round() as usize } else { 0 };
        let mut out: Vec<RawRequest> = self
            .trips
            .iter()
            .enumerate()
            .map(|(k, &(i, o, d))| RawRequest {
                release_time: records[i].release_unix_s - t0,
                origin: o,
                destination: d,
                passengers: 1,
                offline: every > 0 && (k + 1) % every == 0,
            })
            .collect();
        out.sort_by(|a, b| a.release_time.total_cmp(&b.release_time));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtshare_road::{grid_city, GridCityConfig};
    use std::io::Cursor;

    fn sample_csv(g: &RoadNetwork) -> String {
        let a = g.point(NodeId(0));
        let b = g.point(NodeId(399));
        let c = g.point(NodeId(200));
        format!(
            "# GAIA-format sample\n\
             o1,t1,1500000000,{},{},{},{}\n\
             o2,t2,1500000060,{},{},{},{}\n\
             badline,only,three\n\
             o3,t1,1500000120,{},{},{},{}\n",
            a.lng, a.lat, b.lng, b.lat, b.lng, b.lat, c.lng, c.lat, c.lng, c.lat, a.lng, a.lat,
        )
    }

    #[test]
    fn parses_and_reports_errors() {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        let csv = sample_csv(&g);
        let p = parse_trace(Cursor::new(csv)).unwrap();
        assert_eq!(p.records.len(), 3);
        assert_eq!(p.errors.len(), 1);
        assert_eq!(p.total_errors, 1);
        assert_eq!(p.errors[0].0, 4, "1-based line number of the bad line");
        assert_eq!(p.records[0].order_id, "o1");
        assert_eq!(p.records[0].taxi_id, "t1");
    }

    #[test]
    fn rejects_out_of_range_coordinates() {
        let p = parse_trace(Cursor::new("o,t,0,200.0,30.0,104.0,30.0\n")).unwrap();
        assert!(p.records.is_empty());
        assert!(p.errors[0].1.contains("out of range"));
        // Each out-of-range field is named individually.
        let p = parse_trace(Cursor::new("o,t,0,104.0,95.0,104.0,30.0\n")).unwrap();
        assert!(p.errors[0].1.contains("pickup_lat"));
        let p = parse_trace(Cursor::new("o,t,0,104.0,30.0,104.0,-95.0\n")).unwrap();
        assert!(p.errors[0].1.contains("dropoff_lat"));
        let p = parse_trace(Cursor::new("o,t,0,104.0,30.0,-200.0,30.0\n")).unwrap();
        assert!(p.errors[0].1.contains("dropoff_lng"));
    }

    #[test]
    fn malformed_lines_are_collected_never_fatal() {
        // One valid line surrounded by every malformation class: short
        // lines, non-numeric fields, an empty order id. All land in
        // `errors` with 1-based line numbers; parsing always succeeds.
        let csv = "o1,t1,notatime,104.0,30.0,104.1,30.1\n\
                   o2,t2,0,east,30.0,104.1,30.1\n\
                   o3,t3,0,104.0,north,104.1,30.1\n\
                   o4,t4,0,104.0,30.0\n\
                   ,t5,0,104.0,30.0,104.1,30.1\n\
                   ok,t6,42,104.0,30.0,104.1,30.1\n";
        let p = parse_trace(Cursor::new(csv)).unwrap();
        assert_eq!(p.records.len(), 1);
        assert_eq!(p.records[0].order_id, "ok");
        assert_eq!(p.errors.len(), 5);
        assert_eq!(p.total_errors, 5);
        let lines: Vec<usize> = p.errors.iter().map(|(n, _)| *n).collect();
        assert_eq!(lines, vec![1, 2, 3, 4, 5]);
        assert!(p.errors[0].1.contains("bad timestamp"));
        assert!(p.errors[1].1.contains("bad pickup_lng"));
        assert!(p.errors[2].1.contains("bad pickup_lat"));
        assert!(p.errors[3].1.contains("missing dropoff_lng"));
        assert!(p.errors[4].1.contains("empty order_id"));
    }

    #[test]
    fn error_retention_is_capped_but_counting_is_not() {
        // A systematically malformed dump: every line bad except one valid
        // record *after* the cap is reached — retention stops at the cap,
        // counting and record parsing keep going.
        let mut csv = String::new();
        for i in 0..100 {
            csv.push_str(&format!("bad-{i}\n"));
        }
        csv.push_str("ok,t1,42,104.0,30.0,104.1,30.1\n");
        csv.push_str("trailing,junk\n");
        let p = parse_trace(Cursor::new(csv)).unwrap();
        assert_eq!(p.errors.len(), MAX_TRACE_ERRORS);
        assert_eq!(p.total_errors, 101);
        assert_eq!(p.records.len(), 1);
        assert_eq!(p.records[0].order_id, "ok");
        // The retained prefix is the *first* N, with line numbers intact.
        assert_eq!(p.errors[0].0, 1);
        assert_eq!(p.errors[MAX_TRACE_ERRORS - 1].0, MAX_TRACE_ERRORS);
    }

    #[test]
    fn extra_trailing_columns_are_ignored() {
        // GAIA dumps sometimes carry extra columns (fares, status codes);
        // the documented contract is to ignore them.
        let csv = "o1,t1,10,104.0,30.0,104.1,30.1,extra,columns,9.5\n";
        let p = parse_trace(Cursor::new(csv)).unwrap();
        assert_eq!(p.records.len(), 1);
        assert!(p.errors.is_empty());
        assert_eq!(p.records[0].release_unix_s, 10.0);
        assert_eq!(p.records[0].dropoff, GeoPoint::new(30.1, 104.1));
    }

    #[test]
    fn comments_blanks_and_whitespace_are_tolerated() {
        let csv = "# header comment\n\n   \n  o1 , t1 , 5 , 104.0 , 30.0 , 104.1 , 30.1  \n";
        let p = parse_trace(Cursor::new(csv)).unwrap();
        assert_eq!(p.records.len(), 1);
        assert!(p.errors.is_empty());
        assert_eq!(p.records[0].order_id, "o1");
        assert_eq!(p.records[0].taxi_id, "t1");
    }

    #[test]
    fn snapping_recovers_vertices_and_drops_degenerate() {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        let grid = SpatialGrid::build(&g, 200.0);
        let csv = sample_csv(&g);
        let p = parse_trace(Cursor::new(csv)).unwrap();
        let snapped = snap_trace(&p.records, &g, &grid);
        assert_eq!(snapped.trips.len(), 3);
        assert_eq!(snapped.dropped, 0);
        assert_eq!(snapped.trips[0].1, NodeId(0));
        assert_eq!(snapped.trips[0].2, NodeId(399));
        let trips = snapped.as_trips();
        assert_eq!(trips.len(), 3);
    }

    #[test]
    fn requests_are_relative_sorted_and_offline_tagged() {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        let grid = SpatialGrid::build(&g, 200.0);
        let p = parse_trace(Cursor::new(sample_csv(&g))).unwrap();
        let snapped = snap_trace(&p.records, &g, &grid);
        let reqs = snapped.as_requests(&p.records, 1.0 / 3.0);
        assert_eq!(reqs.len(), 3);
        assert_eq!(reqs[0].release_time, 0.0);
        assert_eq!(reqs[1].release_time, 60.0);
        assert!(reqs.windows(2).all(|w| w[0].release_time <= w[1].release_time));
        assert_eq!(reqs.iter().filter(|r| r.offline).count(), 1);
    }

    #[test]
    fn empty_trace_is_fine() {
        let p = parse_trace(Cursor::new("")).unwrap();
        assert!(p.records.is_empty());
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        let grid = SpatialGrid::build(&g, 200.0);
        let snapped = snap_trace(&p.records, &g, &grid);
        assert!(snapped.as_requests(&p.records, 0.5).is_empty());
    }
}
