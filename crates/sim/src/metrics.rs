//! Metric collection matching Sec. V-A3.
//!
//! The scalar accumulator lives in `mtshare-obs` now (it backs the summary
//! statistics there too); it is re-exported here so existing call sites and
//! downstream users keep compiling unchanged. The obs version fixes the
//! quadratic clone-and-sort that the old in-crate `Series::quantile` paid on
//! every call by keeping a lazily rebuilt sorted cache.

pub use mtshare_obs::Series;

/// One delivered request, for external invariant auditing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServedRecord {
    /// The request (index into the scenario's request list).
    pub request: u32,
    /// Taxi that served it.
    pub taxi: u32,
    /// Pick-up completion time, seconds.
    pub pickup_t: f64,
    /// Drop-off completion time, seconds.
    pub dropoff_t: f64,
}

/// Everything one simulation run reports (the rows of the Sec. V figures).
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Scheme label.
    pub scheme: String,
    /// Fleet size.
    pub n_taxis: usize,
    /// Requests materialized (online + offline).
    pub n_requests: usize,
    /// Offline requests among them.
    pub n_offline: usize,
    /// Requests delivered before their deadlines.
    pub served: usize,
    /// Served split: online.
    pub served_online: usize,
    /// Served split: offline.
    pub served_offline: usize,
    /// Requests the dispatcher could not place.
    pub rejected: usize,
    /// Rejections that were passenger withdrawals (a subset of
    /// `rejected`; only injected disruption runs produce them).
    pub cancelled: usize,
    /// Orphaned riders (taxi breakdowns, traffic-shift plan drops)
    /// successfully placed again by the recovery layer.
    pub redispatched: usize,
    /// Invariant violations detected by the `validate_every` runtime
    /// checker (healthy runs report zero).
    pub invariant_violations: usize,
    /// Mean dispatcher latency per request, milliseconds (Fig. 7/11).
    pub avg_response_ms: f64,
    /// 95th-percentile dispatcher latency, milliseconds.
    pub p95_response_ms: f64,
    /// Mean detour time of served requests, minutes (Fig. 8/12).
    pub avg_detour_min: f64,
    /// Mean waiting time of served requests, minutes (Fig. 9/13).
    pub avg_waiting_min: f64,
    /// 95th-percentile waiting time of served requests, minutes.
    pub p95_waiting_min: f64,
    /// Mean candidate-set size per request (Table III).
    pub avg_candidates: f64,
    /// Σ fares actually paid by riders.
    pub total_passenger_fares: f64,
    /// Σ regular (solo) fares of the served trips.
    pub total_solo_fares: f64,
    /// Σ driver incomes.
    pub total_driver_income: f64,
    /// Σ ridesharing benefit B.
    pub total_benefit: f64,
    /// Scheme-private index memory, bytes (Table IV).
    pub index_memory_bytes: usize,
    /// Shared oracle + cache memory, bytes.
    pub shared_memory_bytes: usize,
    /// Wall-clock of the whole run, seconds (Fig. 21a).
    pub wall_clock_s: f64,
    /// Per-request delivery audit trail.
    pub served_records: Vec<ServedRecord>,
}

impl SimReport {
    /// Percentage of taxi fare saved by riders vs. the regular service.
    pub fn fare_saving_pct(&self) -> f64 {
        if self.total_solo_fares <= 0.0 {
            0.0
        } else {
            (1.0 - self.total_passenger_fares / self.total_solo_fares) * 100.0
        }
    }

    /// Served ratio over all materialized requests.
    pub fn served_ratio(&self) -> f64 {
        if self.n_requests == 0 {
            0.0
        } else {
            self.served as f64 / self.n_requests as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_statistics() {
        let mut s = Series::default();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0.0);
        for v in [4.0, 1.0, 3.0, 2.0, 5.0] {
            s.push(v);
        }
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.quantile(0.5), 3.0);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 5.0);
        assert_eq!(s.sum(), 15.0);
    }

    #[test]
    fn report_ratios() {
        let r = SimReport {
            scheme: "x".into(),
            n_taxis: 10,
            n_requests: 100,
            n_offline: 0,
            served: 80,
            served_online: 80,
            served_offline: 0,
            rejected: 20,
            cancelled: 0,
            redispatched: 0,
            invariant_violations: 0,
            avg_response_ms: 1.0,
            p95_response_ms: 2.0,
            avg_detour_min: 1.5,
            avg_waiting_min: 2.5,
            p95_waiting_min: 4.0,
            avg_candidates: 7.0,
            total_passenger_fares: 900.0,
            total_solo_fares: 1000.0,
            total_driver_income: 950.0,
            total_benefit: 100.0,
            index_memory_bytes: 1,
            shared_memory_bytes: 2,
            wall_clock_s: 0.5,
            served_records: Vec::new(),
        };
        assert!((r.fare_saving_pct() - 10.0).abs() < 1e-9);
        assert!((r.served_ratio() - 0.8).abs() < 1e-9);
    }
}
