//! Dataset statistics (Fig. 5): hourly taxi-utilization profile and the
//! trip travel-time distribution of the generated workload.

use crate::metrics::Series;
use crate::workload::RawRequest;
use mtshare_routing::PathCache;

/// Fig. 5(a): estimated average taxi-utilization ratio per hour — the
/// proportion of fleet time spent serving requests, assuming each request
/// occupies one taxi for its direct travel time.
pub fn hourly_utilization(
    stream: &[RawRequest],
    cache: &PathCache,
    n_taxis: usize,
    hours: usize,
) -> Vec<f64> {
    let mut busy = vec![0.0f64; hours];
    for r in stream {
        let h = (r.release_time / 3600.0) as usize;
        if h >= hours {
            continue;
        }
        if let Some(c) = cache.cost(r.origin, r.destination) {
            busy[h] += c;
        }
    }
    let fleet_capacity = (n_taxis as f64) * 3600.0;
    busy.iter().map(|b| (b / fleet_capacity).min(1.0)).collect()
}

/// Fig. 5(b): quantiles of the trip travel-time distribution in minutes.
/// Returns `(quantile, minutes)` pairs for the requested quantiles.
pub fn travel_time_distribution(
    stream: &[RawRequest],
    cache: &PathCache,
    quantiles: &[f64],
) -> Vec<(f64, f64)> {
    let mut s = Series::default();
    for r in stream {
        if let Some(c) = cache.cost(r.origin, r.destination) {
            s.push(c / 60.0);
        }
    }
    quantiles.iter().map(|&q| (q, s.quantile(q))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{workday_profile, WorkloadConfig, WorkloadGenerator};
    use mtshare_road::{grid_city, GridCityConfig};
    use std::sync::Arc;

    #[test]
    fn utilization_tracks_demand_shape() {
        let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let cache = PathCache::new(graph.clone());
        let mut gen = WorkloadGenerator::new(graph, WorkloadConfig::default());
        let profile = workday_profile(60);
        let stream = gen.day_stream(&profile, 0.0);
        let util = hourly_utilization(&stream, &cache, 20, 24);
        assert_eq!(util.len(), 24);
        assert!(util.iter().all(|&u| (0.0..=1.0).contains(&u)));
        // Peak hour (8am) busier than 3am.
        assert!(util[8] > util[3]);
    }

    #[test]
    fn travel_time_quantiles_monotone() {
        let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let cache = PathCache::new(graph.clone());
        let mut gen = WorkloadGenerator::new(graph, WorkloadConfig::default());
        let stream = gen.requests(200, 0.0, 3600.0, 0.0);
        let q = travel_time_distribution(&stream, &cache, &[0.1, 0.5, 0.9]);
        assert_eq!(q.len(), 3);
        assert!(q[0].1 <= q[1].1 && q[1].1 <= q[2].1);
        assert!(q[1].1 > 0.0);
    }
}
