//! Event-driven ridesharing simulator and synthetic workload substrate
//! (the Sec. V evaluation harness).
//!
//! - [`workload`]: hotspot-mixture demand generator standing in for the
//!   Didi GAIA Chengdu trace;
//! - [`scenario`]: peak / non-peak scenario presets (Sec. V-A1) and the
//!   scheme factory;
//! - [`simulator`]: the analytic-motion, event-driven simulator with
//!   offline-request encounter detection;
//! - [`metrics`]: per-run reports (served / response / detour / waiting /
//!   fares / memory);
//! - [`stats`]: dataset statistics (Fig. 5);
//! - [`trace`]: loader for real GAIA-format transaction traces;
//! - [`telemetry`]: rejection-reason classification for the `mtshare-obs`
//!   event stream.

#![warn(missing_docs)]

pub mod engine;
pub mod metrics;
pub mod scenario;
pub mod simulator;
pub mod stats;
pub mod telemetry;
pub mod trace;
pub mod workload;

pub use engine::{IngestEntry, SimEngine};
pub use metrics::{Series, SimReport};
pub use mtshare_persist::Durability;
pub use scenario::{
    build_context, materialize, Scenario, ScenarioConfig, ScenarioKind, SchemeKind,
};
pub use simulator::{BatchConfig, PersistConfig, RunOutcome, SimConfig, Simulator, StepOutcome};
pub use telemetry::{classify_rejection, classify_rejection_with_cause, RejectCause};
pub use trace::{parse_trace, snap_trace, SnappedTrace, TraceParse, TraceRecord, MAX_TRACE_ERRORS};
pub use workload::{
    weekend_profile, workday_profile, RawRequest, WorkloadConfig, WorkloadGenerator,
};
