//! Checkpoint/WAL persistence for the simulator: crash-consistent warm
//! restart (see DESIGN.md, "Persistence & warm restart").
//!
//! The simulator's position in a run is its **step counter**: one step
//! per committed unit of sequential work — a popped heap event, a
//! consumed arrival (each arrival inside a speculative batch counts
//! individually, in commit order), or a validation sweep. Steps are
//! parallelism-independent by the batch-dispatch equivalence argument,
//! so a step index names the same world state at any worker count.
//!
//! Three artifacts live in the state directory:
//!
//! - `snap-{step}.mtsnap`: a full snapshot of the dispatcher state at a
//!   step boundary — taxis with their plans, the mutable request store,
//!   the pending event queue, the disruption plan, money/metric
//!   accumulators, the scheme's index snapshot and the obs aggregates.
//!   Derived structures (route-node maps, offline watches, the path
//!   cache, the hot-node oracle, the spatial grid) are rebuilt cold on
//!   restore; costs are canonical so cold caches cannot change decisions.
//! - `wal.mtwal`: one record per completed step — `step | kind | sim
//!   time | state digest` — spanning the whole run. Recovery replays the
//!   records past the newest valid snapshot by *re-executing* the run
//!   loop with sinks muted, verifying each digest, which re-derives the
//!   exact pre-crash state (aggregates included) without duplicating
//!   trace output.
//! - Nothing else: the trace itself is the caller's sink.
//!
//! A planned crash ([`mtshare_chaos::CrashPoint`]) syncs the WAL and
//! flushes sinks, then dies *without* a final snapshot — recovery must
//! come from the last checkpoint plus the log, which is exactly what the
//! crash-restart CI job exercises.

use super::{Episode, Ev, QueuedEv, Simulator};
use crate::metrics::{Series, ServedRecord, SimReport};
use mtshare_chaos::{ChaosConfig, CrashMode, CrashPoint, DisruptionPlan, CRASH_EXIT_CODE};
use mtshare_core::PassengerTrip;
use mtshare_model::{DispatchScheme, RequestId, RequestStore, Taxi, TaxiId, Time};
use mtshare_obs::{Event, RejectReason};
use mtshare_persist::{
    fnv1a_64, DecodeError, Decoder, Durability, Encoder, FaultInjector, Fnv64, Persist,
    PersistError, StateDir, WalWriter,
};
use std::cmp::Reverse;
use std::path::PathBuf;
use std::sync::Arc;

/// WAL record kind: a popped heap event.
pub(super) const KIND_HEAP: u8 = 0;
/// WAL record kind: a consumed request arrival.
pub(super) const KIND_ARRIVAL: u8 = 1;
/// WAL record kind: a runtime-invariant validation sweep.
pub(super) const KIND_VALIDATE: u8 = 2;

/// Persistence knobs carried in [`super::SimConfig`].
#[derive(Debug, Clone)]
pub struct PersistConfig {
    /// Directory holding the WAL and snapshots. Created if missing;
    /// wiped on a fresh (non-resume) run.
    pub state_dir: PathBuf,
    /// Write a snapshot every this many steps (checked at run-loop
    /// boundaries). `0` writes only the initial step-0 snapshot.
    pub checkpoint_every: u64,
    /// Recover from the newest valid snapshot + WAL instead of starting
    /// fresh. Panics if the state directory holds no valid snapshot.
    pub resume: bool,
    /// Planned dispatcher death for crash-restart testing.
    pub crash_at: Option<CrashPoint>,
    /// What to do when a storage operation fails *mid-run* (startup
    /// failures are config errors and always fatal): `Strict` stops the
    /// run with a typed outcome, `Degrade` quarantines the state dir and
    /// keeps serving from memory.
    pub durability: Durability,
    /// Deterministic fault injection seam consulted by every WAL and
    /// snapshot operation (`--failpoints`); `None` in production.
    pub fault_injector: Option<Arc<dyn FaultInjector>>,
}

impl PersistConfig {
    /// Persistence into `state_dir` with a default checkpoint cadence,
    /// no resume, no planned crash, strict durability, no fault
    /// injection.
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        Self {
            state_dir: state_dir.into(),
            checkpoint_every: 256,
            resume: false,
            crash_at: None,
            durability: Durability::Strict,
            fault_injector: None,
        }
    }
}

/// How a [`Simulator::run_to_outcome`] call ended.
// One value exists per run and it is consumed immediately; boxing the
// report would buy nothing but indirection at every call site.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum RunOutcome {
    /// The scenario ran to completion.
    Finished(SimReport),
    /// A planned crash ([`PersistConfig::crash_at`], `CrashMode::Return`)
    /// stopped the run after this many steps. The WAL is synced and the
    /// sinks flushed; resume with [`PersistConfig::resume`].
    Crashed {
        /// Steps fully processed before death.
        step: u64,
    },
    /// Strict durability ([`Durability::Strict`]) stopped the run after
    /// a storage fault. The WAL was synced best-effort and the sinks
    /// flushed; the state dir was left in place for `--resume`.
    StorageFault {
        /// Steps fully processed before the fault stopped the run.
        step: u64,
    },
}

impl RunOutcome {
    /// Unwraps the report of a completed run; panics on a crash or a
    /// storage fault.
    pub fn report(self) -> SimReport {
        match self {
            RunOutcome::Finished(r) => r,
            RunOutcome::Crashed { step } => {
                panic!("simulation died at planned crash point (step {step})")
            }
            RunOutcome::StorageFault { step } => {
                panic!("simulation stopped on a storage fault (step {step})")
            }
        }
    }
}

/// One WAL record: the position and a cheap state digest of a completed
/// step, enough for replay to verify it re-derived the same state.
struct WalRecord {
    step: u64,
    kind: u8,
    t: Time,
    digest: u64,
}

impl Persist for WalRecord {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.step);
        enc.u8(self.kind);
        enc.f64(self.t);
        enc.u64(self.digest);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(WalRecord { step: dec.u64()?, kind: dec.u8()?, t: dec.f64()?, digest: dec.u64()? })
    }
}

/// WAL records still to be re-executed after a snapshot restore.
struct ReplayPlan {
    records: Vec<WalRecord>,
    idx: usize,
    snapshot_step: u64,
}

/// Live persistence state of a running simulator (not itself persisted).
pub(super) struct PersistRt {
    dir: StateDir,
    wal: WalWriter,
    every: u64,
    crash_at: Option<CrashPoint>,
    last_checkpoint_step: u64,
    replay: Option<ReplayPlan>,
}

// ---- Persist impls for the simulator's private event/metric types ----

impl Persist for Ev {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Ev::Taxi { taxi, version } => {
                enc.u8(0);
                taxi.encode(enc);
                enc.u64(*version);
            }
            Ev::Encounter { taxi, request, version } => {
                enc.u8(1);
                taxi.encode(enc);
                request.encode(enc);
                enc.u64(*version);
            }
            Ev::Disruption { idx } => {
                enc.u8(2);
                enc.usize(*idx);
            }
            Ev::Redispatch { request, attempt } => {
                enc.u8(3);
                request.encode(enc);
                enc.u32(*attempt);
            }
            Ev::Validate => enc.u8(4),
            Ev::BatchFlush => enc.u8(5),
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.u8()? {
            0 => Ok(Ev::Taxi { taxi: TaxiId::decode(dec)?, version: dec.u64()? }),
            1 => Ok(Ev::Encounter {
                taxi: TaxiId::decode(dec)?,
                request: RequestId::decode(dec)?,
                version: dec.u64()?,
            }),
            2 => Ok(Ev::Disruption { idx: dec.usize()? }),
            3 => Ok(Ev::Redispatch { request: RequestId::decode(dec)?, attempt: dec.u32()? }),
            4 => Ok(Ev::Validate),
            5 => Ok(Ev::BatchFlush),
            _ => Err(DecodeError::Invalid("unknown Ev tag")),
        }
    }
}

impl Persist for QueuedEv {
    fn encode(&self, enc: &mut Encoder) {
        enc.f64(self.time);
        enc.u64(self.seq);
        self.ev.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(QueuedEv { time: dec.f64()?, seq: dec.u64()?, ev: Ev::decode(dec)? })
    }
}

impl Persist for Episode {
    fn encode(&self, enc: &mut Encoder) {
        enc.seq(&self.trips);
        self.onboard_since.encode(enc);
        enc.f64(self.onboard_cost_s);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Episode {
            trips: dec.seq::<PassengerTrip>()?,
            onboard_since: Option::<f64>::decode(dec)?,
            onboard_cost_s: dec.f64()?,
        })
    }
}

impl Persist for ServedRecord {
    fn encode(&self, enc: &mut Encoder) {
        enc.u32(self.request);
        enc.u32(self.taxi);
        enc.f64(self.pickup_t);
        enc.f64(self.dropoff_t);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(ServedRecord {
            request: dec.u32()?,
            taxi: dec.u32()?,
            pickup_t: dec.f64()?,
            dropoff_t: dec.f64()?,
        })
    }
}

/// Fingerprint of the immutable scenario inputs, computed at
/// construction *before* the run mutates requests (recovery renegotiates
/// deadlines), so a snapshot can refuse to load into the wrong scenario.
pub(super) fn scenario_digest(taxis: &[Taxi], requests: &RequestStore) -> u64 {
    let mut enc = Encoder::new();
    enc.seq(taxis);
    requests.encode(&mut enc);
    fnv1a_64(&enc.into_bytes())
}

impl Simulator {
    /// Opens/resets the state directory and, on resume, restores the
    /// newest valid snapshot and arms WAL replay. Returns whether the
    /// run is resuming (in which case install/seeding must be skipped —
    /// the restored heap already holds the seeded events).
    pub(super) fn setup_persistence(&mut self, scheme: &mut dyn DispatchScheme) -> bool {
        let Some(pc) = self.cfg.persist.clone() else { return false };
        let mut dir = StateDir::create(&pc.state_dir)
            .unwrap_or_else(|e| panic!("persist: cannot open state dir: {e}"));
        if let Some(inj) = &pc.fault_injector {
            dir = dir.with_fault_injector(inj.clone());
        }
        if !pc.resume {
            dir.reset().unwrap_or_else(|e| panic!("persist: cannot reset state dir: {e}"));
            let mut wal = WalWriter::create(&dir.wal_path())
                .unwrap_or_else(|e| panic!("persist: cannot create wal: {e}"));
            if let Some(inj) = &pc.fault_injector {
                wal.set_fault_injector(inj.clone());
            }
            self.persist = Some(PersistRt {
                dir,
                wal,
                every: pc.checkpoint_every,
                crash_at: pc.crash_at,
                last_checkpoint_step: 0,
                replay: None,
            });
            return false;
        }

        let (snap_step, payload) = dir
            .load_newest_valid()
            .unwrap_or_else(|e| panic!("persist: snapshot scan failed: {e}"))
            .unwrap_or_else(|| panic!("--resume: no valid snapshot in {}", pc.state_dir.display()));
        let (recovery, mut wal) = WalWriter::open_recover(&dir.wal_path())
            .unwrap_or_else(|e| panic!("persist: wal recovery failed: {e}"));
        if let Some(inj) = &pc.fault_injector {
            wal.set_fault_injector(inj.clone());
        }
        self.apply_snapshot(&payload, snap_step, scheme)
            .unwrap_or_else(|e| panic!("--resume: {e}"));
        self.rebuild_derived();

        let records: Vec<WalRecord> = recovery
            .records
            .iter()
            .map(|raw| {
                WalRecord::from_bytes(raw)
                    .unwrap_or_else(|e| panic!("persist: undecodable wal record: {e}"))
            })
            .filter(|r| r.step > snap_step)
            .collect();
        for (i, r) in records.iter().enumerate() {
            let expected = snap_step + 1 + i as u64;
            if r.step != expected {
                panic!("persist: wal gap after snapshot {snap_step}: expected step {expected}, found {}", r.step);
            }
        }

        let replay = if records.is_empty() {
            // The snapshot already is the newest state: no re-execution.
            self.obs.record_restore();
            self.obs.emit_meta(Event::Restore {
                t: self.clock,
                step: self.step,
                snapshot_step: snap_step,
                wal_replayed: 0,
            });
            None
        } else {
            // Mute sinks for the replayed span: the pre-crash run already
            // wrote those trace lines. Aggregates keep accumulating so
            // they re-derive the exact pre-crash totals.
            self.obs.set_muted(true);
            Some(ReplayPlan { records, idx: 0, snapshot_step: snap_step })
        };
        self.persist = Some(PersistRt {
            dir,
            wal,
            every: pc.checkpoint_every,
            crash_at: pc.crash_at,
            last_checkpoint_step: snap_step,
            replay,
        });
        true
    }

    /// Writes the step-0 snapshot of a fresh persist-enabled run (after
    /// install and disruption seeding, so the heap contents are in it).
    pub(super) fn initial_checkpoint(&mut self, scheme: &dyn DispatchScheme) {
        if self.persist.is_some() {
            self.write_checkpoint(scheme);
        }
    }

    /// Writes the drain-time final snapshot of a service-mode run, so a
    /// later `--resume` warm-restarts from the fully drained state
    /// instead of replaying the tail of the WAL.
    pub(crate) fn final_checkpoint(&mut self, scheme: &dyn DispatchScheme) {
        if self.persist.is_some() {
            self.write_checkpoint(scheme);
        }
    }

    /// Whether WAL replay after a warm restart is still re-executing
    /// (trace sinks are muted until it completes).
    pub(crate) fn is_replaying(&self) -> bool {
        self.persist.as_ref().is_some_and(|rt| rt.replay.is_some())
    }

    /// Writes a snapshot at a run-loop boundary when the cadence is due
    /// (live mode only — replay never re-snapshots ground it already has).
    pub(super) fn maybe_checkpoint(&mut self, scheme: &dyn DispatchScheme) {
        let due = match &self.persist {
            Some(rt) => {
                rt.replay.is_none()
                    && rt.every > 0
                    && self.step - rt.last_checkpoint_step >= rt.every
            }
            None => false,
        };
        if due {
            self.write_checkpoint(scheme);
        }
    }

    /// Marks one unit of sequential work complete: bumps the step
    /// counter, appends (or, during replay, verifies) the WAL record and
    /// triggers a planned crash when due. Returns `true` when the run
    /// must stop (crash with `CrashMode::Return`).
    pub(super) fn complete_step(&mut self, kind: u8, t: Time) -> bool {
        self.step += 1;
        if self.persist.is_none() {
            return false;
        }
        let digest = self.state_digest();
        let step = self.step;
        let clock = self.clock;

        let rt = self.persist.as_mut().expect("checked above");
        let mut finished_replay = None;
        if let Some(rp) = rt.replay.as_mut() {
            let rec = &rp.records[rp.idx];
            if rec.step != step
                || rec.kind != kind
                || rec.t.to_bits() != t.to_bits()
                || rec.digest != digest
            {
                panic!(
                    "persist: replay diverged at step {step}: wal has (step {}, kind {}, \
                     t {}, digest {:#018x}), re-execution produced (kind {kind}, t {t}, \
                     digest {digest:#018x})",
                    rec.step, rec.kind, rec.t, rec.digest
                );
            }
            rp.idx += 1;
            if rp.idx == rp.records.len() {
                finished_replay = Some((rp.snapshot_step, rp.records.len() as u64));
                rt.replay = None;
            }
        } else {
            let mut enc = Encoder::new();
            WalRecord { step, kind, t, digest }.encode(&mut enc);
            let rec = enc.into_bytes();
            match rt.wal.append(&rec) {
                Ok(()) => self.obs.record_wal_append(rec.len() as u64),
                Err(e) => {
                    // Mid-step fault: the step's effects are already in
                    // the trace but its WAL record is not, so a strict
                    // resume may re-emit up to one step (documented in
                    // DESIGN.md). Degrade keeps running without the WAL.
                    self.handle_persist_error("wal_append", e);
                    return self.storage_fault.is_some();
                }
            }
        }
        if let Some((snapshot_step, wal_replayed)) = finished_replay {
            self.obs.set_muted(false);
            self.obs.record_restore();
            self.obs.emit_meta(Event::Restore { t: clock, step, snapshot_step, wal_replayed });
        }

        let crash_due =
            self.persist.as_ref().and_then(|rt| rt.crash_at).filter(|cp| cp.at_step == step);
        if let Some(cp) = crash_due {
            let sync_res = self.persist.as_mut().expect("crash point needs persistence").wal.sync();
            if let Err(e) = sync_res {
                self.handle_persist_error("wal_sync", e);
                if self.storage_fault.is_some() {
                    return true;
                }
            }
            self.obs.flush();
            match cp.mode {
                CrashMode::ExitProcess => std::process::exit(CRASH_EXIT_CODE),
                CrashMode::Return => return true,
            }
        }
        false
    }

    /// Routes a mid-run storage failure through the durability policy.
    /// Every fault is surfaced (obs counter + meta event) and ends in a
    /// documented terminal state — never a panic or silent corruption:
    ///
    /// - [`Durability::Strict`]: best-effort WAL sync and sink flush,
    ///   then arm the storage-fault flag so the run stops at the current
    ///   step boundary with a typed outcome (exit code 44 at the CLI).
    /// - [`Durability::Degrade`]: quarantine the state-dir generation
    ///   for post-mortem, drop persistence, keep serving from memory.
    pub(super) fn handle_persist_error(&mut self, op: &'static str, err: PersistError) {
        let class = err.class().label();
        self.obs.record_storage_fault(op);
        self.obs.emit_meta(Event::StorageFault { t: self.clock, step: self.step, op, class });
        let durability = self.cfg.persist.as_ref().map(|pc| pc.durability).unwrap_or_default();
        match durability {
            Durability::Degrade => {
                // Close the WAL handle before renaming the directory out
                // from under it.
                let quarantined = match self.persist.take() {
                    Some(rt) => {
                        drop(rt.wal);
                        rt.dir.quarantine().is_ok()
                    }
                    None => false,
                };
                if quarantined {
                    self.obs.record_quarantine();
                }
                self.obs.emit_meta(Event::DurabilityDegraded {
                    t: self.clock,
                    step: self.step,
                    quarantined,
                });
            }
            Durability::Strict => {
                if let Some(rt) = self.persist.as_mut() {
                    let _ = rt.wal.sync();
                }
                self.persist = None;
                self.obs.flush();
                self.storage_fault = Some(self.step);
            }
        }
    }

    /// Best-effort durability point for abnormal exits (feed faults,
    /// supervisor-requested stops): syncs the WAL and flushes the obs
    /// sinks so the typed exit is crash-consistent and a later
    /// `--resume` continues byte-identically.
    pub(crate) fn sync_persistence(&mut self) {
        if let Some(rt) = self.persist.as_mut() {
            let _ = rt.wal.sync();
        }
        self.obs.flush();
    }

    /// FNV digest over the cheap state counters — enough to catch a
    /// divergent replay at the first bad step without hashing the world.
    fn state_digest(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.seq);
        h.write_f64(self.clock);
        // Constant +∞ in one-shot runs; in streaming runs it ties the
        // WAL position to the ingestion progress, so a resumed serve
        // loop must re-ingest the feed at the same step boundaries.
        h.write_f64(self.watermark);
        h.write_u64(self.served_online as u64);
        h.write_u64(self.served_offline as u64);
        h.write_u64(self.rejected as u64);
        h.write_u64(self.cancelled as u64);
        h.write_u64(self.redispatched as u64);
        h.write_u64(self.heap.len() as u64);
        h.write_u64(self.next_arrival as u64);
        h.write_u64(self.window.len() as u64);
        h.digest()
    }

    /// Writes a snapshot of the current state, syncing the WAL first so
    /// every record up to this boundary is durable before the snapshot
    /// that supersedes them exists. Failures route through the
    /// durability policy instead of panicking — since this runs at a
    /// step boundary (no half-traced step), a strict stop here resumes
    /// byte-identically.
    fn write_checkpoint(&mut self, scheme: &dyn DispatchScheme) {
        let t0 = std::time::Instant::now();
        let payload = self.encode_snapshot(scheme);
        let step = self.step;
        let sync_err =
            self.persist.as_mut().expect("write_checkpoint without persist").wal.sync().err();
        if let Some(e) = sync_err {
            self.handle_persist_error("wal_sync", e);
            return;
        }
        let write_res =
            self.persist.as_mut().expect("synced above").dir.write_snapshot(step, &payload);
        match write_res {
            Ok(stats) => {
                self.persist.as_mut().expect("synced above").last_checkpoint_step = step;
                if stats.dir_sync_unsupported {
                    self.obs.record_dir_sync_unsupported();
                }
                self.obs.record_checkpoint(stats.bytes, t0.elapsed().as_secs_f64());
                self.obs.emit_meta(Event::Checkpoint { t: self.clock, step, bytes: stats.bytes });
            }
            Err(e) => self.handle_persist_error("snapshot_write", e),
        }
    }

    /// Serializes the full dispatcher state. Hash-ordered containers are
    /// sorted first so the payload is canonical: the same world state
    /// always produces the same bytes.
    fn encode_snapshot(&self, scheme: &dyn DispatchScheme) -> Vec<u8> {
        let mut enc = Encoder::new();
        // Manifest: refuse to restore into the wrong run.
        enc.str(scheme.name());
        enc.u64(self.taxis.len() as u64);
        enc.u64(self.requests.len() as u64);
        self.cfg.chaos.encode(&mut enc);
        enc.u64(self.scenario_digest);
        enc.bool(self.streaming);
        // Position.
        enc.u64(self.step);
        enc.f64(self.clock);
        enc.u64(self.seq);
        enc.usize(self.next_arrival);
        enc.f64(self.watermark);
        // World.
        enc.seq(&self.taxis);
        self.requests.encode(&mut enc);
        let mut heap: Vec<QueuedEv> = self.heap.iter().map(|Reverse(q)| *q).collect();
        heap.sort_unstable();
        enc.seq(&heap);
        let mut pending: Vec<RequestId> = self.pending_offline.iter().copied().collect();
        pending.sort_unstable();
        enc.seq(&pending);
        enc.seq(&self.resolved);
        let mut cancelled_pre: Vec<RequestId> =
            self.cancelled_pre_release.iter().copied().collect();
        cancelled_pre.sort_unstable();
        enc.seq(&cancelled_pre);
        let mut doomed: Vec<(RequestId, u8)> =
            self.doomed.iter().map(|(&r, &reason)| (r, reason.index() as u8)).collect();
        doomed.sort_unstable_by_key(|&(r, _)| r);
        enc.seq(&doomed);
        enc.usize(self.cancelled);
        enc.usize(self.redispatched);
        enc.usize(self.invariant_violations);
        let mut pickups: Vec<(RequestId, f64)> =
            self.pickup_time.iter().map(|(&r, &t)| (r, t)).collect();
        pickups.sort_by_key(|&(r, _)| r);
        enc.seq(&pickups);
        enc.seq(&self.episodes);
        enc.f64(self.fares_paid);
        enc.f64(self.fares_solo);
        enc.f64(self.driver_income);
        enc.f64(self.benefit);
        enc.seq(self.response_ms.values());
        enc.seq(self.waiting_s.values());
        enc.seq(self.detour_s.values());
        enc.seq(self.candidates.values());
        enc.usize(self.served_online);
        enc.usize(self.served_offline);
        enc.usize(self.rejected);
        enc.seq(&self.served_records);
        self.plan.encode(&mut enc);
        // The open batch window (buffering order is semantic: it is the
        // matrix row order at the next flush).
        enc.seq(&self.window);
        // Scheme index state and obs aggregates, as opaque sub-payloads.
        match scheme.snapshot_state() {
            Some(b) => {
                enc.bool(true);
                enc.bytes(&b);
            }
            None => enc.bool(false),
        }
        match self.obs.snapshot_aggregates() {
            Some(b) => {
                enc.bool(true);
                enc.bytes(&b);
            }
            None => enc.bool(false),
        }
        enc.into_bytes()
    }

    /// Restores a snapshot payload into a freshly constructed simulator
    /// for the *same* scenario. Validates the manifest before touching
    /// anything; derived structures still need [`Self::rebuild_derived`].
    fn apply_snapshot(
        &mut self,
        payload: &[u8],
        snap_step: u64,
        scheme: &mut dyn DispatchScheme,
    ) -> Result<(), String> {
        let e = |e: DecodeError| format!("snapshot payload: {e}");
        let mut dec = Decoder::new(payload);
        let name = dec.str().map_err(e)?;
        if name != scheme.name() {
            return Err(format!(
                "snapshot was taken under scheme `{name}`, resuming with `{}`",
                scheme.name()
            ));
        }
        let n_taxis = dec.u64().map_err(e)? as usize;
        let n_requests = dec.u64().map_err(e)? as usize;
        // A streaming run is constructed with an empty store (the feed
        // is re-consumed after restore), so only one-shot runs can check
        // the request count before decoding.
        if n_taxis != self.taxis.len() || (!self.streaming && n_requests != self.requests.len()) {
            return Err(format!(
                "snapshot world is {n_taxis} taxis / {n_requests} requests, this scenario is {} / {}",
                self.taxis.len(),
                self.requests.len()
            ));
        }
        let chaos = Option::<ChaosConfig>::decode(&mut dec).map_err(e)?;
        if chaos != self.cfg.chaos {
            return Err("snapshot chaos configuration differs from this run's".into());
        }
        let digest = dec.u64().map_err(e)?;
        if digest != self.scenario_digest {
            return Err("snapshot belongs to a different scenario".into());
        }
        let streaming = dec.bool().map_err(e)?;
        if streaming != self.streaming {
            return Err(if streaming {
                "snapshot was taken by a streaming (serve) run, this run is one-shot".into()
            } else {
                "snapshot was taken by a one-shot run, this run is streaming (serve)".into()
            });
        }
        let step = dec.u64().map_err(e)?;
        if step != snap_step {
            return Err(format!("snapshot file for step {snap_step} claims step {step} inside"));
        }
        self.step = step;
        self.clock = dec.f64().map_err(e)?;
        self.seq = dec.u64().map_err(e)?;
        self.next_arrival = dec.usize().map_err(e)?;
        self.watermark = dec.f64().map_err(e)?;
        if self.next_arrival > n_requests {
            return Err("snapshot arrival cursor past the request stream".into());
        }
        let taxis: Vec<Taxi> = dec.seq().map_err(e)?;
        if taxis.len() != n_taxis {
            return Err("snapshot fleet length disagrees with its manifest".into());
        }
        self.taxis = taxis;
        self.requests = RequestStore::decode(&mut dec).map_err(e)?;
        if self.requests.len() != n_requests {
            return Err("snapshot request store disagrees with its manifest".into());
        }
        let heap: Vec<QueuedEv> = dec.seq().map_err(e)?;
        self.heap = heap.into_iter().map(Reverse).collect();
        self.pending_offline = dec.seq::<RequestId>().map_err(e)?.into_iter().collect();
        self.resolved = dec.seq().map_err(e)?;
        if self.resolved.len() != n_requests {
            return Err("snapshot resolved-flag vector has the wrong length".into());
        }
        self.cancelled_pre_release = dec.seq::<RequestId>().map_err(e)?.into_iter().collect();
        self.doomed = dec
            .seq::<(RequestId, u8)>()
            .map_err(e)?
            .into_iter()
            .map(|(r, idx)| {
                RejectReason::ALL
                    .get(idx as usize)
                    .map(|&reason| (r, reason))
                    .ok_or("snapshot doomed entry has an unknown reject reason")
            })
            .collect::<Result<_, _>>()?;
        self.cancelled = dec.usize().map_err(e)?;
        self.redispatched = dec.usize().map_err(e)?;
        self.invariant_violations = dec.usize().map_err(e)?;
        self.pickup_time = dec.seq::<(RequestId, f64)>().map_err(e)?.into_iter().collect();
        let episodes: Vec<Episode> = dec.seq().map_err(e)?;
        if episodes.len() != n_taxis {
            return Err("snapshot episode vector has the wrong length".into());
        }
        self.episodes = episodes;
        self.fares_paid = dec.f64().map_err(e)?;
        self.fares_solo = dec.f64().map_err(e)?;
        self.driver_income = dec.f64().map_err(e)?;
        self.benefit = dec.f64().map_err(e)?;
        self.response_ms = Series::from_values(dec.seq().map_err(e)?);
        self.waiting_s = Series::from_values(dec.seq().map_err(e)?);
        self.detour_s = Series::from_values(dec.seq().map_err(e)?);
        self.candidates = Series::from_values(dec.seq().map_err(e)?);
        self.served_online = dec.usize().map_err(e)?;
        self.served_offline = dec.usize().map_err(e)?;
        self.rejected = dec.usize().map_err(e)?;
        self.served_records = dec.seq().map_err(e)?;
        self.plan = DisruptionPlan::decode(&mut dec).map_err(e)?;
        self.window = dec.seq::<(RequestId, u32)>().map_err(e)?;
        let scheme_state =
            if dec.bool().map_err(e)? { Some(dec.bytes().map_err(e)?.to_vec()) } else { None };
        let obs_state =
            if dec.bool().map_err(e)? { Some(dec.bytes().map_err(e)?.to_vec()) } else { None };
        if !dec.is_done() {
            return Err("trailing bytes in snapshot payload".into());
        }
        if let Some(bytes) = scheme_state {
            let world = self.world();
            scheme.restore_state(&bytes, &world).map_err(|err| format!("scheme state: {err}"))?;
        }
        if let Some(bytes) = obs_state {
            self.obs.restore_aggregates(&bytes).map_err(|err| format!("obs aggregates: {err}"))?;
        }
        Ok(())
    }

    /// Rebuilds every derived structure a snapshot deliberately omits:
    /// per-taxi route-node maps and the offline watch tables. (The path
    /// cache, hot-node oracle and spatial grid restart cold — refcount
    /// pins are advisory and costs are canonical, so cold lookups return
    /// the same answers the warm run saw.)
    fn rebuild_derived(&mut self) {
        for i in 0..self.taxis.len() {
            let map = &mut self.route_nodes[i];
            map.clear();
            if let Some(route) = &self.taxis[i].route {
                for (n, t) in route.nodes.iter().zip(&route.arrival_s) {
                    map.entry(n.0).or_insert(*t);
                }
            }
        }
        self.offline_watch.clear();
        self.watched_nodes.clear();
        let mut pending: Vec<RequestId> = self.pending_offline.iter().copied().collect();
        pending.sort_unstable();
        for id in pending {
            let origin_pt = self.graph.point(self.requests.get(id).origin);
            let nodes =
                self.spatial.nodes_within(&self.graph, &origin_pt, self.cfg.encounter_radius_m);
            let mut watched = Vec::with_capacity(nodes.len());
            for n in nodes {
                self.offline_watch.entry(n.0).or_default().push(id);
                watched.push(n.0);
            }
            self.watched_nodes.insert(id, watched);
        }
    }
}
