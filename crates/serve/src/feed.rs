//! The request feed wire format and the burst reader.
//!
//! One JSON object per line. A request entry:
//!
//! ```text
//! {"t":12.5,"origin":31,"dest":904,"passengers":1,"deadline":310.75,"offline":false}
//! ```
//!
//! `passengers` (default 1) and `offline` (default false) are optional;
//! everything else is required. Times are seconds of virtual time and
//! must be non-decreasing across the feed — the engine's watermark gate
//! relies on it. Numbers are serialized shortest-round-trip
//! ([`mtshare_obs::json::fmt_f64`]), so a recorded feed re-parses to
//! bit-identical `f64`s and replays byte-identically.
//!
//! The only control line is the drain command:
//!
//! ```text
//! {"cmd":"drain"}
//! ```
//!
//! which stops admission; entries after it are still ingested, but
//! doomed with [`RejectReason::DrainRejected`] so they appear in the
//! trace deterministically.

use mtshare_chaos::failpoint::{FeedFaultPlan, STALL_MS};
use mtshare_obs::json::{self, Value};
use mtshare_obs::RejectReason;
use mtshare_road::NodeId;
use mtshare_sim::IngestEntry;
use std::io::BufRead;

/// Hard cap on one feed line, bytes. A line that reaches the cap
/// without a newline is a protocol fault (`oversized_line`), not
/// something to buffer unboundedly — a garbage or hostile peer must not
/// balloon the resident set.
pub const MAX_LINE_BYTES: u64 = 64 * 1024;

/// Coarse classification of a feed error message, for the
/// `feed_fault` meta event and the fault counters: `disconnect`
/// (injected or real connection loss), `oversized_line`, `io`
/// (transport read errors), `protocol` (malformed framing/content).
pub fn classify_feed_error(msg: &str) -> &'static str {
    if msg.contains("injected disconnect") || msg.contains("connection reset") {
        "disconnect"
    } else if msg.contains("exceeds the") {
        "oversized_line"
    } else if msg.contains("feed read:") {
        "io"
    } else {
        "protocol"
    }
}

/// One parsed feed line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FeedItem {
    /// A ride request.
    Request(IngestEntry),
    /// The drain command: stop admitting, finish in-flight work, exit.
    Drain,
}

/// Serializes one request as a feed line (no trailing newline).
pub fn entry_line(e: &IngestEntry) -> String {
    format!(
        r#"{{"t":{},"origin":{},"dest":{},"passengers":{},"deadline":{},"offline":{}}}"#,
        json::fmt_f64(e.release),
        e.origin.0,
        e.destination.0,
        e.passengers,
        json::fmt_f64(e.deadline),
        e.offline,
    )
}

/// Dumps a scenario's arrival stream in the feed format (the
/// `feed-record` mode of the one-shot runner). Requests must already be
/// sorted by release time, which [`mtshare_sim::Scenario`] guarantees.
pub fn record_feed(requests: &[mtshare_model::RideRequest]) -> String {
    let mut out = String::with_capacity(requests.len() * 80);
    for r in requests {
        let e = IngestEntry {
            release: r.release_time,
            origin: r.origin,
            destination: r.destination,
            passengers: r.passengers,
            deadline: r.deadline,
            offline: r.offline,
        };
        out.push_str(&entry_line(&e));
        out.push('\n');
    }
    out
}

/// Parses one feed line. `n_nodes` bounds the node ids a request may
/// name: an out-of-range id is a protocol error (like malformed JSON),
/// not a reject — the routing layer has no vertex to even fail on.
pub fn parse_line(line: &str, n_nodes: u32) -> Result<FeedItem, String> {
    let v = json::parse(line)?;
    let fields = v.as_obj().ok_or("feed line is not a JSON object")?;
    if let Some(cmd) = v.get("cmd") {
        let Some(name) = cmd.as_str() else { return Err("\"cmd\" must be a string".into()) };
        if name != "drain" {
            return Err(format!("unknown feed command `{name}` (only \"drain\" is defined)"));
        }
        if fields.len() != 1 {
            return Err("a command line must carry only the \"cmd\" key".into());
        }
        return Ok(FeedItem::Drain);
    }
    for (key, _) in fields {
        if !matches!(key.as_str(), "t" | "origin" | "dest" | "passengers" | "deadline" | "offline")
        {
            return Err(format!("unknown feed key `{key}`"));
        }
    }
    let num = |key: &str| -> Result<f64, String> {
        v.get(key)
            .ok_or_else(|| format!("missing required key `{key}`"))?
            .as_num()
            .ok_or_else(|| format!("`{key}` must be a number"))
    };
    let node = |key: &str| -> Result<NodeId, String> {
        let raw = num(key)?;
        if raw < 0.0 || raw.fract() != 0.0 || raw >= n_nodes as f64 {
            return Err(format!("`{key}` = {raw} is not a node id below {n_nodes}"));
        }
        Ok(NodeId(raw as u32))
    };
    let release = num("t")?;
    let deadline = num("deadline")?;
    if !release.is_finite() || !deadline.is_finite() {
        return Err("`t` and `deadline` must be finite".into());
    }
    let passengers = match v.get("passengers") {
        None => 1,
        Some(p) => {
            let raw = p.as_num().ok_or("`passengers` must be a number")?;
            if raw < 1.0 || raw.fract() != 0.0 || raw > u8::MAX as f64 {
                return Err(format!("`passengers` = {raw} is not in 1..=255"));
            }
            raw as u8
        }
    };
    let offline = match v.get("offline") {
        None => false,
        Some(Value::Bool(b)) => *b,
        Some(_) => return Err("`offline` must be a boolean".into()),
    };
    Ok(FeedItem::Request(IngestEntry {
        release,
        origin: node("origin")?,
        destination: node("dest")?,
        passengers,
        deadline,
        offline,
    }))
}

/// How the serve loop paces feed consumption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pace {
    /// Free-running: one entry per burst, the engine catches up after
    /// each. The admission queue never holds more than one entry, so
    /// nothing is ever shed.
    Free,
    /// Virtual-time pacing: entries whose release times share an
    /// absolute quantum bucket (`floor(t / quantum_s)`) arrive as one
    /// burst, contending for the admission queue. Absolute buckets make
    /// the grouping a pure function of the feed — a resumed run
    /// re-derives the exact bursts of the original.
    Virtual {
        /// Bucket width in virtual seconds; must be positive.
        quantum_s: f64,
    },
}

impl Pace {
    fn bucket(&self, t: f64) -> Option<i64> {
        match self {
            Pace::Free => None,
            Pace::Virtual { quantum_s } => Some((t / quantum_s).floor() as i64),
        }
    }
}

/// Reads a feed line-by-line and yields admission bursts.
///
/// `skip` request entries are consumed and discarded up front (drain
/// commands among them still take effect): a resumed serve loop passes
/// the restored ingestion count so the feed cursor lands exactly where
/// the crashed run left off. Bursts are only ever ingested whole before
/// the engine steps, so the restored count is always a burst boundary
/// and the re-derived grouping matches the original run's.
pub struct FeedReader<R: BufRead> {
    input: R,
    pace: Pace,
    n_nodes: u32,
    /// First entry of the next bucket, held back by burst lookahead.
    pending: Option<IngestEntry>,
    /// Request entries still to discard (resume catch-up).
    skip: usize,
    drain_seen: bool,
    eof: bool,
    last_t: f64,
    line_no: u64,
    /// Seeded feed faults (`--failpoints feed-*`); empty in production.
    faults: FeedFaultPlan,
}

impl<R: BufRead> FeedReader<R> {
    /// Wraps `input`; see the type docs for `skip`.
    pub fn new(input: R, pace: Pace, n_nodes: u32, skip: usize) -> Self {
        Self {
            input,
            pace,
            n_nodes,
            pending: None,
            skip,
            drain_seen: false,
            eof: false,
            last_t: f64::NEG_INFINITY,
            line_no: 0,
            faults: FeedFaultPlan::default(),
        }
    }

    /// Installs a seeded feed-fault plan: a deterministic mid-stream
    /// disconnect and/or a slow-consumer stall at planned line numbers.
    pub fn with_faults(mut self, faults: FeedFaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Whether the stream ended with an explicit drain command (as
    /// opposed to plain EOF).
    pub fn drain_commanded(&self) -> bool {
        self.drain_seen
    }

    /// 1-based number of the last feed line consumed (0 before the
    /// first) — error reporting context for the serve loop.
    pub fn line(&self) -> u64 {
        self.line_no
    }

    /// Next admissible entry straight off the wire, or `None` at EOF /
    /// drain. Validates ordering and applies the resume skip.
    fn next_entry(&mut self) -> Result<Option<IngestEntry>, String> {
        loop {
            if self.eof || self.drain_seen {
                return Ok(None);
            }
            let next_line = self.line_no + 1;
            if self.faults.disconnect_at_line == Some(next_line) {
                // A dropped peer surfaces exactly like a mid-line read
                // error; deterministic because the line index is a pure
                // function of the feed consumed so far.
                return Err(format!(
                    "feed line {next_line}: connection reset by failpoint (injected disconnect)"
                ));
            }
            if let Some((line, stall_ms)) = self.faults.stall {
                if line == next_line {
                    // Slow-consumer stall: wall-clock only, the virtual
                    // clock and the trace are untouched.
                    std::thread::sleep(std::time::Duration::from_millis(stall_ms.min(STALL_MS)));
                }
            }
            let mut line = String::new();
            let n = std::io::Read::take(&mut self.input, MAX_LINE_BYTES)
                .read_line(&mut line)
                .map_err(|e| format!("feed read: {e}"))?;
            if n == 0 {
                self.eof = true;
                return Ok(None);
            }
            if n as u64 == MAX_LINE_BYTES && !line.ends_with('\n') {
                return Err(format!(
                    "feed line {next_line}: exceeds the {MAX_LINE_BYTES}-byte line cap"
                ));
            }
            self.line_no += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let item = parse_line(trimmed, self.n_nodes)
                .map_err(|e| format!("feed line {}: {e}", self.line_no))?;
            match item {
                FeedItem::Drain => {
                    self.drain_seen = true;
                    return Ok(None);
                }
                FeedItem::Request(entry) => {
                    if entry.release < self.last_t {
                        return Err(format!(
                            "feed line {}: release {} goes back in time (previous was {})",
                            self.line_no,
                            json::fmt_f64(entry.release),
                            json::fmt_f64(self.last_t)
                        ));
                    }
                    self.last_t = entry.release;
                    if self.skip > 0 {
                        self.skip -= 1;
                        continue;
                    }
                    return Ok(Some(entry));
                }
            }
        }
    }

    /// Yields the next burst of simultaneous arrivals, or `None` once
    /// the feed hit EOF or the drain command.
    pub fn next_burst(&mut self) -> Result<Option<Vec<IngestEntry>>, String> {
        let first = match self.pending.take() {
            Some(e) => e,
            None => match self.next_entry()? {
                Some(e) => e,
                None => return Ok(None),
            },
        };
        let mut burst = vec![first];
        if let Some(bucket) = self.pace.bucket(first.release) {
            while let Some(e) = self.next_entry()? {
                if self.pace.bucket(e.release) == Some(bucket) {
                    burst.push(e);
                } else {
                    self.pending = Some(e);
                    break;
                }
            }
        }
        Ok(Some(burst))
    }

    /// After [`FeedReader::next_burst`] returned `None` on a drain
    /// command: the entries still on the wire, to be ingested doomed
    /// with [`RejectReason::DrainRejected`]. Empty at plain EOF.
    pub fn leftovers(&mut self) -> Result<Vec<(IngestEntry, RejectReason)>, String> {
        let mut out = Vec::new();
        if !self.drain_seen {
            return Ok(out);
        }
        // Re-open the entry loop past the drain marker: ordering is
        // still enforced, the resume skip still applies (a resumed run
        // may land past the drain point).
        self.drain_seen = false;
        while let Some(e) = self.next_entry()? {
            out.push((e, RejectReason::DrainRejected));
        }
        self.drain_seen = true;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn entry(t: f64) -> IngestEntry {
        IngestEntry {
            release: t,
            origin: NodeId(1),
            destination: NodeId(2),
            passengers: 1,
            deadline: t + 100.0,
            offline: false,
        }
    }

    #[test]
    fn lines_round_trip_exactly() {
        let e = IngestEntry {
            release: 0.1 + 0.2, // classic non-representable sum
            origin: NodeId(31),
            destination: NodeId(904),
            passengers: 3,
            deadline: 1234.5678901234567,
            offline: true,
        };
        let line = entry_line(&e);
        match parse_line(&line, 1000).unwrap() {
            FeedItem::Request(back) => assert_eq!(back, e),
            FeedItem::Drain => panic!("parsed as drain"),
        }
    }

    #[test]
    fn optional_fields_have_defaults() {
        let item = parse_line(r#"{"t":1,"origin":0,"dest":5,"deadline":9}"#, 10).unwrap();
        match item {
            FeedItem::Request(e) => {
                assert_eq!(e.passengers, 1);
                assert!(!e.offline);
            }
            FeedItem::Drain => panic!(),
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        let cases = [
            ("not json", "invalid literal"),
            (r#"{"cmd":"stop"}"#, "unknown feed command"),
            (r#"{"cmd":"drain","t":1}"#, "only the \"cmd\" key"),
            (r#"{"t":1,"origin":0,"dest":5}"#, "missing required key `deadline`"),
            (r#"{"t":1,"origin":99,"dest":5,"deadline":9}"#, "not a node id below 10"),
            (r#"{"t":1,"origin":-1,"dest":5,"deadline":9}"#, "not a node id"),
            (r#"{"t":1,"origin":0.5,"dest":5,"deadline":9}"#, "not a node id"),
            (r#"{"t":1,"origin":0,"dest":5,"deadline":9,"bogus":1}"#, "unknown feed key"),
            (r#"{"t":1,"origin":0,"dest":5,"deadline":9,"passengers":0}"#, "not in 1..=255"),
            (r#"{"t":1,"origin":0,"dest":5,"deadline":9,"offline":1}"#, "must be a boolean"),
        ];
        for (line, needle) in cases {
            let err = parse_line(line, 10).unwrap_err();
            assert!(err.contains(needle), "`{line}` → `{err}` (wanted `{needle}`)");
        }
    }

    fn feed_of(entries: &[IngestEntry], tail: &str) -> String {
        let mut s: String = entries.iter().map(|e| entry_line(e) + "\n").collect();
        s.push_str(tail);
        s
    }

    #[test]
    fn free_pace_yields_single_entry_bursts() {
        let feed = feed_of(&[entry(1.0), entry(1.0), entry(2.0)], "");
        let mut r = FeedReader::new(Cursor::new(feed), Pace::Free, 10, 0);
        assert_eq!(r.next_burst().unwrap().unwrap().len(), 1);
        assert_eq!(r.next_burst().unwrap().unwrap().len(), 1);
        assert_eq!(r.next_burst().unwrap().unwrap().len(), 1);
        assert!(r.next_burst().unwrap().is_none());
        assert!(!r.drain_commanded());
    }

    #[test]
    fn virtual_pace_groups_by_absolute_bucket() {
        // Quantum 10: [0,10) and [10,20) are distinct buckets even for
        // back-to-back entries.
        let feed = feed_of(&[entry(1.0), entry(9.9), entry(10.0), entry(19.0), entry(25.0)], "");
        let pace = Pace::Virtual { quantum_s: 10.0 };
        let mut r = FeedReader::new(Cursor::new(feed), pace, 10, 0);
        let sizes: Vec<usize> =
            std::iter::from_fn(|| r.next_burst().unwrap()).map(|b| b.len()).collect();
        assert_eq!(sizes, [2, 2, 1]);
    }

    #[test]
    fn resume_skip_lands_on_the_same_burst_grouping() {
        let entries = [entry(1.0), entry(9.9), entry(10.0), entry(19.0), entry(25.0)];
        let pace = Pace::Virtual { quantum_s: 10.0 };
        // The original run ingested the first burst (2 entries) before
        // dying; the resumed reader must yield exactly the remaining
        // bursts, identically grouped.
        let feed = feed_of(&entries, "");
        let mut r = FeedReader::new(Cursor::new(feed), pace, 10, 2);
        let sizes: Vec<usize> =
            std::iter::from_fn(|| r.next_burst().unwrap()).map(|b| b.len()).collect();
        assert_eq!(sizes, [2, 1]);
    }

    #[test]
    fn drain_stops_admission_and_collects_leftovers() {
        let feed = format!(
            "{}\n{{\"cmd\":\"drain\"}}\n{}\n{}\n",
            entry_line(&entry(1.0)),
            entry_line(&entry(2.0)),
            entry_line(&entry(3.0))
        );
        let mut r = FeedReader::new(Cursor::new(feed), Pace::Free, 10, 0);
        assert_eq!(r.next_burst().unwrap().unwrap().len(), 1);
        assert!(r.next_burst().unwrap().is_none());
        assert!(r.drain_commanded());
        let left = r.leftovers().unwrap();
        assert_eq!(left.len(), 2);
        assert!(left.iter().all(|(_, r)| *r == RejectReason::DrainRejected));
    }

    #[test]
    fn time_going_backwards_is_an_error() {
        let feed = feed_of(&[entry(5.0), entry(4.0)], "");
        let mut r = FeedReader::new(Cursor::new(feed), Pace::Free, 10, 0);
        assert_eq!(r.next_burst().unwrap().unwrap().len(), 1);
        let err = r.next_burst().unwrap_err();
        assert!(err.contains("goes back in time"), "{err}");
    }

    #[test]
    fn oversized_line_is_a_typed_fault_not_a_buffer() {
        // One valid entry, then a line that never terminates within the
        // cap — the reader must fail with the oversized classification
        // instead of buffering it.
        let mut feed = feed_of(&[entry(1.0)], "");
        feed.push_str(&"x".repeat(MAX_LINE_BYTES as usize + 10));
        let mut r = FeedReader::new(Cursor::new(feed), Pace::Free, 10, 0);
        assert_eq!(r.next_burst().unwrap().unwrap().len(), 1);
        let err = r.next_burst().unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert_eq!(classify_feed_error(&err), "oversized_line");
    }

    #[test]
    fn injected_disconnect_fires_at_the_planned_line() {
        let feed = feed_of(&[entry(1.0), entry(2.0), entry(3.0)], "");
        let plan = FeedFaultPlan { disconnect_at_line: Some(2), stall: None };
        let mut r = FeedReader::new(Cursor::new(feed), Pace::Free, 10, 0).with_faults(plan);
        assert_eq!(r.next_burst().unwrap().unwrap().len(), 1);
        assert_eq!(r.line(), 1);
        let err = r.next_burst().unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert_eq!(classify_feed_error(&err), "disconnect");
    }

    #[test]
    fn injected_stall_delays_but_preserves_the_stream() {
        let feed = feed_of(&[entry(1.0), entry(2.0)], "");
        let plan = FeedFaultPlan { disconnect_at_line: None, stall: Some((2, STALL_MS)) };
        let mut r = FeedReader::new(Cursor::new(feed), Pace::Free, 10, 0).with_faults(plan);
        let start = std::time::Instant::now();
        assert_eq!(r.next_burst().unwrap().unwrap().len(), 1);
        assert_eq!(r.next_burst().unwrap().unwrap().len(), 1);
        assert!(r.next_burst().unwrap().is_none());
        assert!(start.elapsed() >= std::time::Duration::from_millis(STALL_MS));
    }

    #[test]
    fn feed_error_classification_covers_the_fault_table() {
        let cases = [
            ("feed line 7: connection reset by failpoint (injected disconnect)", "disconnect"),
            ("feed line 3: exceeds the 65536-byte line cap", "oversized_line"),
            ("feed read: unexpected EOF", "io"),
            ("feed line 2: missing required key `deadline`", "protocol"),
        ];
        for (msg, want) in cases {
            assert_eq!(classify_feed_error(msg), want, "{msg}");
        }
    }

    #[test]
    fn recorded_feed_is_one_line_per_request() {
        let reqs = vec![mtshare_model::RideRequest {
            id: mtshare_model::RequestId(0),
            release_time: 3.5,
            origin: NodeId(1),
            destination: NodeId(2),
            passengers: 2,
            deadline: 99.0,
            direct_cost_s: 10.0,
            offline: false,
        }];
        let text = record_feed(&reqs);
        assert_eq!(text.lines().count(), 1);
        assert!(matches!(parse_line(text.trim(), 10), Ok(FeedItem::Request(_))));
    }
}
