//! Bounded admission queue with explicit load-shedding policies.
//!
//! Entries of one burst arrive "simultaneously" — faster than the
//! engine drains them — so they contend for a queue of fixed capacity.
//! Between bursts the engine always catches up ([`run_until_idle`]
//! returns `Idle` before the next burst is read), so every burst starts
//! against an empty queue. That makes admission *memoryless*: the
//! decisions are a pure function of the burst and the configuration,
//! which is what lets a resumed run re-derive the original run's
//! decisions without persisting any queue state.
//!
//! [`run_until_idle`]: mtshare_sim::SimEngine::run_until_idle

use mtshare_obs::RejectReason;
use std::collections::VecDeque;

/// What to do when a burst overruns the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Lossless: the producer blocks until the consumer frees a slot.
    /// Every entry is admitted; requires capacity ≥ 1.
    Block,
    /// Shed the oldest queued entry to make room for the newcomer
    /// (newest-wins). Sheds emit [`RejectReason::QueueShed`].
    ShedOldest,
    /// Drop the newcomer when the queue is full (oldest-wins). Drops
    /// emit [`RejectReason::QueueRejected`].
    RejectNew,
}

impl AdmissionPolicy {
    /// Parses the CLI spelling (`block` / `shed-oldest` / `reject-new`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "block" => Ok(AdmissionPolicy::Block),
            "shed-oldest" => Ok(AdmissionPolicy::ShedOldest),
            "reject-new" => Ok(AdmissionPolicy::RejectNew),
            other => {
                Err(format!("unknown admission policy `{other}` (block|shed-oldest|reject-new)"))
            }
        }
    }
}

/// A bounded admission queue configuration.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionQueue {
    /// Queue capacity in entries. Zero is legal for the shedding
    /// policies (everything overruns) and rejected for `block`.
    pub capacity: usize,
    /// Overrun policy.
    pub policy: AdmissionPolicy,
}

/// The outcome of pushing one burst through the queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BurstAdmission {
    /// Per entry, in feed order: `None` = admitted, `Some(reason)` =
    /// load-shed with that reject reason.
    pub decisions: Vec<Option<RejectReason>>,
    /// Peak queue depth the burst reached.
    pub queue_peak: usize,
}

impl AdmissionQueue {
    /// Validates the configuration (a blocking producer in front of a
    /// zero-capacity queue deadlocks by construction).
    pub fn validate(&self) -> Result<(), String> {
        if self.policy == AdmissionPolicy::Block && self.capacity == 0 {
            return Err("--admission block with --queue-capacity 0 can never admit anything".into());
        }
        Ok(())
    }

    /// Runs one burst of `n` simultaneous arrivals through the queue
    /// and returns the per-entry decisions.
    pub fn admit_burst(&self, n: usize) -> BurstAdmission {
        let mut decisions: Vec<Option<RejectReason>> = vec![None; n];
        match self.policy {
            // The producer blocks while the consumer drains: everything
            // gets through, and the queue itself never exceeds capacity.
            AdmissionPolicy::Block => {
                BurstAdmission { decisions, queue_peak: n.min(self.capacity) }
            }
            AdmissionPolicy::ShedOldest | AdmissionPolicy::RejectNew => {
                let mut queued: VecDeque<usize> = VecDeque::new();
                let mut peak = 0;
                for i in 0..n {
                    if queued.len() == self.capacity {
                        match self.policy {
                            AdmissionPolicy::ShedOldest => {
                                match queued.pop_front() {
                                    Some(oldest) => {
                                        decisions[oldest] = Some(RejectReason::QueueShed);
                                        queued.push_back(i);
                                    }
                                    // Capacity 0: there is no queued
                                    // entry to evict, the newcomer
                                    // itself is the shed.
                                    None => decisions[i] = Some(RejectReason::QueueShed),
                                }
                            }
                            AdmissionPolicy::RejectNew => {
                                decisions[i] = Some(RejectReason::QueueRejected)
                            }
                            AdmissionPolicy::Block => unreachable!(),
                        }
                    } else {
                        queued.push_back(i);
                    }
                    peak = peak.max(queued.len());
                }
                BurstAdmission { decisions, queue_peak: peak }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shed_indices(adm: &BurstAdmission) -> Vec<usize> {
        adm.decisions.iter().enumerate().filter_map(|(i, d)| d.is_some().then_some(i)).collect()
    }

    #[test]
    fn block_admits_everything() {
        let q = AdmissionQueue { capacity: 2, policy: AdmissionPolicy::Block };
        let adm = q.admit_burst(7);
        assert!(adm.decisions.iter().all(Option::is_none));
        assert_eq!(adm.queue_peak, 2);
    }

    #[test]
    fn shed_oldest_keeps_the_newest_entries() {
        let q = AdmissionQueue { capacity: 3, policy: AdmissionPolicy::ShedOldest };
        let adm = q.admit_burst(8);
        // The last `capacity` entries survive; everything older was
        // evicted to make room.
        assert_eq!(shed_indices(&adm), [0, 1, 2, 3, 4]);
        assert!(adm.decisions[..5].iter().all(|d| *d == Some(RejectReason::QueueShed)));
        assert_eq!(adm.queue_peak, 3);
    }

    #[test]
    fn reject_new_keeps_the_oldest_entries() {
        let q = AdmissionQueue { capacity: 3, policy: AdmissionPolicy::RejectNew };
        let adm = q.admit_burst(8);
        assert_eq!(shed_indices(&adm), [3, 4, 5, 6, 7]);
        assert!(adm.decisions[3..].iter().all(|d| *d == Some(RejectReason::QueueRejected)));
        assert_eq!(adm.queue_peak, 3);
    }

    #[test]
    fn burst_within_capacity_is_untouched() {
        for policy in
            [AdmissionPolicy::Block, AdmissionPolicy::ShedOldest, AdmissionPolicy::RejectNew]
        {
            let q = AdmissionQueue { capacity: 4, policy };
            let adm = q.admit_burst(4);
            assert!(adm.decisions.iter().all(Option::is_none), "{policy:?}");
        }
    }

    #[test]
    fn zero_capacity_sheds_every_entry() {
        let shed = AdmissionQueue { capacity: 0, policy: AdmissionPolicy::ShedOldest };
        let adm = shed.admit_burst(3);
        assert!(adm.decisions.iter().all(|d| *d == Some(RejectReason::QueueShed)));
        assert_eq!(adm.queue_peak, 0);

        let rej = AdmissionQueue { capacity: 0, policy: AdmissionPolicy::RejectNew };
        let adm = rej.admit_burst(3);
        assert!(adm.decisions.iter().all(|d| *d == Some(RejectReason::QueueRejected)));

        let block = AdmissionQueue { capacity: 0, policy: AdmissionPolicy::Block };
        assert!(block.validate().is_err());
        assert!(shed.validate().is_ok());
    }

    #[test]
    fn decisions_are_deterministic() {
        let q = AdmissionQueue { capacity: 2, policy: AdmissionPolicy::ShedOldest };
        assert_eq!(q.admit_burst(6), q.admit_burst(6));
    }
}
