//! The serve loop: admit → step → report, then drain and finalize.

use crate::admission::AdmissionQueue;
use crate::feed::{FeedReader, Pace};
use mtshare_model::DispatchScheme;
use mtshare_obs::{Obs, SteadyExtra, SteadyTracker};
use mtshare_sim::{SimEngine, SimReport, StepOutcome};
use std::io::{BufRead, BufReader, Write};

/// Serve-loop configuration (the CLI validates flag combinations and
/// builds this).
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Bounded admission queue in front of the engine.
    pub queue: AdmissionQueue,
    /// Feed pacing: free-running or virtual-time bursts.
    pub pace: Pace,
    /// Steady-state report cadence in virtual seconds (`None` = off).
    pub report_every_s: Option<f64>,
    /// Node count of the road network, bounding feed node ids.
    pub n_nodes: u32,
}

/// How a serve run ended.
pub enum ServeOutcome {
    /// Graceful drain completed: WAL flushed, final checkpoint written,
    /// report built.
    Finished(Box<SimReport>),
    /// A planned in-process crash point fired mid-stream (restart
    /// tests); state is crash-consistent but nothing was finalized.
    Crashed {
        /// Steps fully processed before death.
        step: u64,
    },
}

/// Opens a feed source: `-` for stdin, `tcp:ADDR` to bind `ADDR` and
/// serve one connection, anything else as a file path.
pub fn open_feed(spec: &str) -> Result<Box<dyn BufRead>, String> {
    if spec == "-" {
        return Ok(Box::new(BufReader::new(std::io::stdin())));
    }
    if let Some(addr) = spec.strip_prefix("tcp:") {
        let listener = std::net::TcpListener::bind(addr)
            .map_err(|e| format!("cannot bind feed socket {addr}: {e}"))?;
        let (stream, peer) =
            listener.accept().map_err(|e| format!("accepting feed connection: {e}"))?;
        eprintln!("feed connection from {peer}");
        return Ok(Box::new(BufReader::new(stream)));
    }
    let f = std::fs::File::open(spec).map_err(|e| format!("cannot open feed {spec}: {e}"))?;
    Ok(Box::new(BufReader::new(f)))
}

/// Drives `engine` over the feed until EOF or a drain command, then
/// drains gracefully: admission stops, in-flight work finishes or
/// expires, the final checkpoint and obs summary are flushed.
///
/// Steady-state lines land on `report_out` every
/// [`ServeOptions::report_every_s`] virtual seconds. They are
/// suppressed while `obs` is muted (WAL replay after a resume): the
/// replayed interval's counters were already reported by the crashed
/// run, and profiling-grade numbers are not replayable anyway.
pub fn serve<R: BufRead>(
    mut engine: SimEngine,
    scheme: &mut dyn DispatchScheme,
    feed: R,
    opts: ServeOptions,
    obs: &Obs,
    mut report_out: Option<&mut dyn Write>,
) -> Result<ServeOutcome, String> {
    opts.queue.validate()?;
    // The restored ingestion count is the feed cursor: everything the
    // crashed run ingested (admitted or doomed) is skipped, and the
    // skip lands on a burst boundary because bursts are ingested whole
    // before the engine steps.
    let skip = if engine.resumed() { engine.ingested() } else { 0 };
    let mut reader = FeedReader::new(feed, opts.pace, opts.n_nodes, skip);

    let mut steady = SteadyState::new(&opts);
    // Catch up before touching the feed. A fresh run goes idle
    // immediately, but a restored run must first re-execute the steps
    // the crashed run processed *before* it ingested its next burst —
    // the WAL digests pin each step to the watermark it ran under, so
    // raising the watermark early would make replay diverge. (`Done`
    // means the crash fell inside the final drain: the whole feed is
    // behind the restored cursor already.)
    match engine.run_until_idle(scheme) {
        StepOutcome::Idle | StepOutcome::Done => {}
        StepOutcome::Crashed { step } => return Ok(ServeOutcome::Crashed { step }),
        StepOutcome::Progressed => unreachable!("run_until_idle only returns terminal outcomes"),
    }
    while let Some(burst) = reader.next_burst()? {
        let adm = opts.queue.admit_burst(burst.len());
        steady.queue_peak = steady.queue_peak.max(adm.queue_peak);
        for (entry, decision) in burst.into_iter().zip(adm.decisions) {
            match decision {
                None => {
                    engine.ingest(entry);
                }
                Some(reason) => {
                    engine.ingest_doomed(entry, reason);
                }
            }
        }
        match engine.run_until_idle(scheme) {
            StepOutcome::Idle => {}
            StepOutcome::Crashed { step } => return Ok(ServeOutcome::Crashed { step }),
            outcome => unreachable!("open stream cannot reach {outcome:?}"),
        }
        steady.boundary_reports(&engine, obs, &mut report_out)?;
    }

    // Drain: entries past the drain command still enter the trace, as
    // deterministic rejections at their release times.
    for (entry, reason) in reader.leftovers()? {
        engine.ingest_doomed(entry, reason);
    }
    engine.close_stream();
    match engine.run_until_idle(scheme) {
        StepOutcome::Done => {}
        StepOutcome::Crashed { step } => return Ok(ServeOutcome::Crashed { step }),
        outcome => unreachable!("closed stream cannot reach {outcome:?}"),
    }
    steady.final_report(&engine, obs, &mut report_out)?;
    Ok(ServeOutcome::Finished(Box::new(engine.finalize(scheme))))
}

/// Steady-report bookkeeping for one serve run.
struct SteadyState {
    tracker: Option<SteadyTracker>,
    next_t: f64,
    every: f64,
    /// Peak admission-queue depth since the last report.
    queue_peak: usize,
}

impl SteadyState {
    fn new(opts: &ServeOptions) -> Self {
        let every = opts.report_every_s.unwrap_or(f64::INFINITY);
        Self { tracker: None, next_t: every, every, queue_peak: 0 }
    }

    /// Emits one line per report boundary the virtual clock has crossed.
    fn boundary_reports(
        &mut self,
        engine: &SimEngine,
        obs: &Obs,
        out: &mut Option<&mut dyn Write>,
    ) -> Result<(), String> {
        while engine.clock() >= self.next_t {
            self.emit(engine, obs, self.next_t, out)?;
            self.next_t += self.every;
        }
        Ok(())
    }

    /// One last line at the drain clock, so short runs still produce a
    /// report and the final interval is never silently dropped.
    fn final_report(
        &mut self,
        engine: &SimEngine,
        obs: &Obs,
        out: &mut Option<&mut dyn Write>,
    ) -> Result<(), String> {
        if self.every.is_finite() {
            // The final line's timestamp must not go backwards relative
            // to the last boundary line.
            let t = engine.clock().max(self.next_t - self.every);
            self.emit(engine, obs, t, out)?;
        }
        Ok(())
    }

    fn emit(
        &mut self,
        engine: &SimEngine,
        obs: &Obs,
        t: f64,
        out: &mut Option<&mut dyn Write>,
    ) -> Result<(), String> {
        if obs.is_muted() {
            // Mid-replay: drop the baseline so the first post-replay
            // interval starts from the restored counters, not from a
            // half-replayed state.
            self.tracker = None;
            return Ok(());
        }
        let tracker = self.tracker.get_or_insert_with(|| SteadyTracker::new(obs));
        let extra = SteadyExtra {
            queue_peak: self.queue_peak,
            ingested: engine.ingested() as u64,
            steps: engine.step_count(),
        };
        if let Some(line) = tracker.report_line(obs, t, &extra) {
            if let Some(w) = out.as_deref_mut() {
                writeln!(w, "{line}").map_err(|e| format!("writing steady report: {e}"))?;
            }
        }
        self.queue_peak = 0;
        Ok(())
    }
}
