//! The serve loop: admit → step → report, then drain and finalize.

use crate::admission::AdmissionQueue;
use crate::feed::{classify_feed_error, FeedReader, Pace};
use mtshare_chaos::failpoint::FeedFaultPlan;
use mtshare_model::DispatchScheme;
use mtshare_obs::{Event, Obs, SteadyExtra, SteadyTracker};
use mtshare_sim::{SimEngine, SimReport, StepOutcome};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;

/// Serve-loop configuration (the CLI validates flag combinations and
/// builds this).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bounded admission queue in front of the engine.
    pub queue: AdmissionQueue,
    /// Feed pacing: free-running or virtual-time bursts.
    pub pace: Pace,
    /// Steady-state report cadence in virtual seconds (`None` = off).
    pub report_every_s: Option<f64>,
    /// Node count of the road network, bounding feed node ids.
    pub n_nodes: u32,
    /// Liveness file for the supervisor: the step count is rewritten
    /// after every burst, so a stale mtime means a wedged engine.
    pub heartbeat: Option<PathBuf>,
    /// Seeded feed faults to inject into the reader (`--failpoints`).
    pub feed_faults: Option<FeedFaultPlan>,
}

/// How a serve run failed. `Feed` is a typed feed fault (disconnect,
/// oversized line, transport error, protocol violation) after the WAL
/// was synced — the state dir stays resumable and the CLI maps it to
/// its own exit code so a supervisor can tell it from a config error.
#[derive(Debug)]
pub enum ServeError {
    /// The feed failed mid-stream.
    Feed {
        /// 1-based feed line at/after which the fault hit.
        line: u64,
        /// Classification (see [`classify_feed_error`]).
        kind: &'static str,
        /// Human-readable cause.
        msg: String,
    },
    /// Anything else: config validation, report-sink I/O.
    Other(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Feed { line, kind, msg } => {
                write!(f, "feed fault ({kind}) at line {line}: {msg}")
            }
            ServeError::Other(msg) => f.write_str(msg),
        }
    }
}

impl From<String> for ServeError {
    fn from(msg: String) -> Self {
        ServeError::Other(msg)
    }
}

/// How a serve run ended.
pub enum ServeOutcome {
    /// Graceful drain completed: WAL flushed, final checkpoint written,
    /// report built.
    Finished(Box<SimReport>),
    /// A planned in-process crash point fired mid-stream (restart
    /// tests); state is crash-consistent but nothing was finalized.
    Crashed {
        /// Steps fully processed before death.
        step: u64,
    },
    /// Strict durability stopped the run on a storage fault: the WAL
    /// was synced best-effort, sinks are flushed, and the CLI exits
    /// with the storage-fault code.
    StorageFault {
        /// Steps processed when the fault stopped the run.
        step: u64,
    },
}

/// Opens a feed source: `-` for stdin, `tcp:ADDR` to bind `ADDR` and
/// serve one connection, anything else as a file path.
pub fn open_feed(spec: &str) -> Result<Box<dyn BufRead>, String> {
    if spec == "-" {
        return Ok(Box::new(BufReader::new(std::io::stdin())));
    }
    if let Some(addr) = spec.strip_prefix("tcp:") {
        let listener = std::net::TcpListener::bind(addr)
            .map_err(|e| format!("cannot bind feed socket {addr}: {e}"))?;
        let (stream, peer) =
            listener.accept().map_err(|e| format!("accepting feed connection: {e}"))?;
        eprintln!("feed connection from {peer}");
        return Ok(Box::new(BufReader::new(stream)));
    }
    let f = std::fs::File::open(spec).map_err(|e| format!("cannot open feed {spec}: {e}"))?;
    Ok(Box::new(BufReader::new(f)))
}

/// Drives `engine` over the feed until EOF or a drain command, then
/// drains gracefully: admission stops, in-flight work finishes or
/// expires, the final checkpoint and obs summary are flushed.
///
/// Steady-state lines land on `report_out` every
/// [`ServeOptions::report_every_s`] virtual seconds. They are
/// suppressed while `obs` is muted (WAL replay after a resume): the
/// replayed interval's counters were already reported by the crashed
/// run, and profiling-grade numbers are not replayable anyway.
pub fn serve<R: BufRead>(
    mut engine: SimEngine,
    scheme: &mut dyn DispatchScheme,
    feed: R,
    opts: ServeOptions,
    obs: &Obs,
    mut report_out: Option<&mut dyn Write>,
) -> Result<ServeOutcome, ServeError> {
    opts.queue.validate()?;
    // The restored ingestion count is the feed cursor: everything the
    // crashed run ingested (admitted or doomed) is skipped, and the
    // skip lands on a burst boundary because bursts are ingested whole
    // before the engine steps.
    let skip = if engine.resumed() { engine.ingested() } else { 0 };
    let mut reader = FeedReader::new(feed, opts.pace, opts.n_nodes, skip);
    if let Some(plan) = opts.feed_faults {
        reader = reader.with_faults(plan);
    }

    let mut steady = SteadyState::new(&opts);
    beat(&opts.heartbeat, &engine);
    // Catch up before touching the feed. A fresh run goes idle
    // immediately, but a restored run must first re-execute the steps
    // the crashed run processed *before* it ingested its next burst —
    // the WAL digests pin each step to the watermark it ran under, so
    // raising the watermark early would make replay diverge. (`Done`
    // means the crash fell inside the final drain: the whole feed is
    // behind the restored cursor already.)
    match engine.run_until_idle(scheme) {
        StepOutcome::Idle | StepOutcome::Done => {}
        StepOutcome::Crashed { step } => return Ok(ServeOutcome::Crashed { step }),
        StepOutcome::StorageFault { step } => return Ok(ServeOutcome::StorageFault { step }),
        StepOutcome::Progressed => unreachable!("run_until_idle only returns terminal outcomes"),
    }
    loop {
        let burst = match reader.next_burst() {
            Ok(Some(burst)) => burst,
            Ok(None) => break,
            Err(msg) => return Err(feed_fault(&mut engine, obs, reader.line(), msg)),
        };
        let adm = opts.queue.admit_burst(burst.len());
        steady.queue_peak = steady.queue_peak.max(adm.queue_peak);
        for (entry, decision) in burst.into_iter().zip(adm.decisions) {
            match decision {
                None => {
                    engine.ingest(entry);
                }
                Some(reason) => {
                    engine.ingest_doomed(entry, reason);
                }
            }
        }
        match engine.run_until_idle(scheme) {
            StepOutcome::Idle => {}
            StepOutcome::Crashed { step } => return Ok(ServeOutcome::Crashed { step }),
            StepOutcome::StorageFault { step } => return Ok(ServeOutcome::StorageFault { step }),
            outcome => unreachable!("open stream cannot reach {outcome:?}"),
        }
        beat(&opts.heartbeat, &engine);
        steady.boundary_reports(&engine, obs, &mut report_out)?;
    }

    // Drain: entries past the drain command still enter the trace, as
    // deterministic rejections at their release times.
    let leftovers = match reader.leftovers() {
        Ok(entries) => entries,
        Err(msg) => return Err(feed_fault(&mut engine, obs, reader.line(), msg)),
    };
    for (entry, reason) in leftovers {
        engine.ingest_doomed(entry, reason);
    }
    engine.close_stream();
    match engine.run_until_idle(scheme) {
        StepOutcome::Done => {}
        StepOutcome::Crashed { step } => return Ok(ServeOutcome::Crashed { step }),
        StepOutcome::StorageFault { step } => return Ok(ServeOutcome::StorageFault { step }),
        outcome => unreachable!("closed stream cannot reach {outcome:?}"),
    }
    beat(&opts.heartbeat, &engine);
    steady.final_report(&engine, obs, &mut report_out)?;
    match engine.finalize(scheme) {
        Ok(report) => Ok(ServeOutcome::Finished(Box::new(report))),
        Err(step) => Ok(ServeOutcome::StorageFault { step }),
    }
}

/// Records a feed fault (counter + meta event), syncs persistence so
/// the state dir is crash-consistent, and builds the typed error.
fn feed_fault(engine: &mut SimEngine, obs: &Obs, line: u64, msg: String) -> ServeError {
    let kind = classify_feed_error(&msg);
    obs.record_feed_fault();
    obs.emit_meta(Event::FeedFault { t: engine.clock(), line, kind });
    engine.sync_persistence();
    ServeError::Feed { line, kind, msg }
}

/// Best-effort heartbeat write: the supervisor watches this file's
/// mtime, so content only needs to change the inode's timestamp.
fn beat(path: &Option<PathBuf>, engine: &SimEngine) {
    if let Some(p) = path {
        let _ = std::fs::write(p, format!("{}\n", engine.step_count()));
    }
}

/// Steady-report bookkeeping for one serve run.
struct SteadyState {
    tracker: Option<SteadyTracker>,
    next_t: f64,
    every: f64,
    /// Peak admission-queue depth since the last report.
    queue_peak: usize,
}

impl SteadyState {
    fn new(opts: &ServeOptions) -> Self {
        let every = opts.report_every_s.unwrap_or(f64::INFINITY);
        Self { tracker: None, next_t: every, every, queue_peak: 0 }
    }

    /// Emits one line per report boundary the virtual clock has crossed.
    fn boundary_reports(
        &mut self,
        engine: &SimEngine,
        obs: &Obs,
        out: &mut Option<&mut dyn Write>,
    ) -> Result<(), String> {
        while engine.clock() >= self.next_t {
            self.emit(engine, obs, self.next_t, out)?;
            self.next_t += self.every;
        }
        Ok(())
    }

    /// One last line at the drain clock, so short runs still produce a
    /// report and the final interval is never silently dropped.
    fn final_report(
        &mut self,
        engine: &SimEngine,
        obs: &Obs,
        out: &mut Option<&mut dyn Write>,
    ) -> Result<(), String> {
        if self.every.is_finite() {
            // The final line's timestamp must not go backwards relative
            // to the last boundary line.
            let t = engine.clock().max(self.next_t - self.every);
            self.emit(engine, obs, t, out)?;
        }
        Ok(())
    }

    fn emit(
        &mut self,
        engine: &SimEngine,
        obs: &Obs,
        t: f64,
        out: &mut Option<&mut dyn Write>,
    ) -> Result<(), String> {
        if obs.is_muted() {
            // Mid-replay: drop the baseline so the first post-replay
            // interval starts from the restored counters, not from a
            // half-replayed state.
            self.tracker = None;
            return Ok(());
        }
        let tracker = self.tracker.get_or_insert_with(|| SteadyTracker::new(obs));
        let extra = SteadyExtra {
            queue_peak: self.queue_peak,
            ingested: engine.ingested() as u64,
            steps: engine.step_count(),
        };
        if let Some(line) = tracker.report_line(obs, t, &extra) {
            if let Some(w) = out.as_deref_mut() {
                writeln!(w, "{line}").map_err(|e| format!("writing steady report: {e}"))?;
            }
        }
        self.queue_peak = 0;
        Ok(())
    }
}
