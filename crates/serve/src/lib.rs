//! Long-lived service runtime over the streaming simulator.
//!
//! `mtshare serve` turns the one-shot evaluation harness into an engine
//! that consumes ride requests from a line-delimited JSON feed (stdin, a
//! file replay, or a TCP socket), pushes them through a bounded
//! admission queue with an explicit load-shedding policy, and drives
//! [`mtshare_sim::SimEngine`] as a virtual-time-paced stream:
//!
//! - [`feed`]: the feed wire format, the burst reader that groups
//!   entries into virtual-time quanta, and the `feed-record` writer;
//! - [`admission`]: the bounded queue and its `block` / `shed-oldest` /
//!   `reject-new` policies;
//! - [`runtime`]: the serve loop — admit, step, report, drain, finalize;
//! - [`supervise`]: the `--supervise` watchdog — restart on transient
//!   deaths (planned crashes, feed/storage faults, stalls) with bounded
//!   exponential backoff, resuming through the state dir.
//!
//! Determinism contract: the event trace of a serve run over a recorded
//! feed is byte-identical to the one-shot run of the same scenario, at
//! any `--parallelism`, including across a kill-and-resume. Everything
//! that could differ run-to-run (stage latencies, RSS, queue depth)
//! lives in the steady-state report stream, which is explicitly
//! profiling-grade and outside the contract.

#![warn(missing_docs)]

pub mod admission;
pub mod feed;
pub mod runtime;
pub mod supervise;

pub use admission::{AdmissionPolicy, AdmissionQueue, BurstAdmission};
pub use feed::{
    classify_feed_error, entry_line, parse_line, record_feed, FeedItem, FeedReader, Pace,
    MAX_LINE_BYTES,
};
pub use runtime::{open_feed, serve, ServeError, ServeOptions, ServeOutcome};
pub use supervise::{
    restart_args, supervise, SuperviseConfig, FEED_FAULT_EXIT, STORAGE_FAULT_EXIT,
    SUPERVISE_EXHAUSTED_EXIT,
};
