//! Supervised restart loop for `mtshare serve --supervise`.
//!
//! The supervisor re-executes the serve command as a child process and
//! watches two liveness signals: the exit status and (optionally) the
//! heartbeat file's mtime. Transient deaths — a planned crash point, a
//! feed fault, a storage fault under strict durability, a signal, or a
//! detected stall — trigger a restart with bounded exponential backoff
//! ([`RetryPolicy`]); the restart resumes through the existing
//! `--resume` path, so the child's trace continues byte-identically
//! from its last durable step. Genuine configuration or runtime errors
//! (exit 1/2) propagate immediately: restarting cannot fix those.
//!
//! Restarts strip one-shot flags from the argv: `--crash-at` and
//! `--failpoints` schedules already fired (replaying them would
//! re-crash forever), and the `--supervise*` family must not nest.

use mtshare_chaos::RetryPolicy;
use std::path::PathBuf;
use std::process::{Child, Command};
use std::time::{Duration, Instant};

/// Exit code for a typed feed fault (disconnect, oversized line,
/// transport error): the state dir is crash-consistent and resumable.
pub const FEED_FAULT_EXIT: i32 = 43;
/// Exit code for a storage fault under `--durability strict`: the WAL
/// is synced up to the faulted step and the run is resumable.
pub const STORAGE_FAULT_EXIT: i32 = 44;
/// Exit code when the supervisor's restart budget is exhausted.
pub const SUPERVISE_EXHAUSTED_EXIT: i32 = 45;

/// Supervisor configuration, built by the CLI from `--supervise-*`.
#[derive(Debug, Clone)]
pub struct SuperviseConfig {
    /// Restart budget and backoff curve. `max_attempts` restarts are
    /// allowed; `delay_s(attempt)` is slept before each one.
    pub retry: RetryPolicy,
    /// Kill and restart the child when its heartbeat file goes stale
    /// for this long (`None` disables the watchdog).
    pub stall_timeout: Option<Duration>,
    /// Heartbeat file the child rewrites each burst (`--heartbeat-file`,
    /// forwarded to the child untouched).
    pub heartbeat: Option<PathBuf>,
}

/// How one child incarnation ended.
#[derive(Debug, PartialEq, Eq)]
enum ChildEnd {
    /// Normal exit with a code.
    Exited(i32),
    /// Killed by a signal (or unreadable status).
    Signaled,
    /// Watchdog killed it after the heartbeat went stale.
    Stalled,
}

impl ChildEnd {
    fn describe(&self) -> String {
        match self {
            ChildEnd::Exited(c) => format!("exit code {c}"),
            ChildEnd::Signaled => "killed by signal".into(),
            ChildEnd::Stalled => "stalled heartbeat".into(),
        }
    }
}

/// Flags whose value (the following argv element, or the `=` suffix)
/// must be stripped along with the flag on restart.
const STRIP_WITH_VALUE: &[&str] = &[
    "--crash-at",
    "--failpoints",
    "--supervise-max-restarts",
    "--supervise-backoff-ms",
    "--supervise-stall-ms",
];
/// Bare flags stripped on restart.
const STRIP_BARE: &[&str] = &["--supervise"];

/// Argv for a restarted child: one-shot fault/crash schedules and the
/// `--supervise*` family removed, `--resume` guaranteed present.
pub fn restart_args(args: &[String]) -> Vec<String> {
    let mut out = Vec::with_capacity(args.len() + 1);
    let mut skip_value = false;
    for arg in args {
        if skip_value {
            skip_value = false;
            continue;
        }
        if STRIP_BARE.contains(&arg.as_str()) {
            continue;
        }
        if STRIP_WITH_VALUE.contains(&arg.as_str()) {
            skip_value = true;
            continue;
        }
        if STRIP_WITH_VALUE
            .iter()
            .any(|f| arg.starts_with(f) && arg.as_bytes().get(f.len()) == Some(&b'='))
        {
            continue;
        }
        out.push(arg.clone());
    }
    if !out.iter().any(|a| a == "--resume") {
        out.push("--resume".into());
    }
    out
}

/// Runs `exe args` under supervision; returns the exit code the
/// supervisor process should terminate with.
///
/// Exit 0 passes through. Exit 1 and 2 (runtime/flag errors) are fatal
/// and pass through — they are deterministic, so a restart would only
/// loop. Everything else (planned crash 42, feed fault 43, storage
/// fault 44, signals, stalls) is transient: restart with backoff until
/// [`RetryPolicy::max_attempts`] is spent, then
/// [`SUPERVISE_EXHAUSTED_EXIT`].
pub fn supervise(exe: &std::ffi::OsStr, args: &[String], cfg: &SuperviseConfig) -> i32 {
    let mut argv: Vec<String> = args.to_vec();
    let mut attempt: u32 = 0;
    loop {
        let mut child = match Command::new(exe).args(&argv).spawn() {
            Ok(c) => c,
            Err(e) => {
                eprintln!("supervise: cannot spawn engine: {e}");
                return 1;
            }
        };
        let end = wait_watched(&mut child, cfg);
        match end {
            ChildEnd::Exited(0) => return 0,
            ChildEnd::Exited(c @ (1 | 2)) => return c,
            _ => {}
        }
        attempt += 1;
        if cfg.retry.exhausted(attempt) {
            eprintln!(
                "supervise: giving up after {} restarts (last end: {})",
                attempt - 1,
                end.describe()
            );
            return SUPERVISE_EXHAUSTED_EXIT;
        }
        let delay = Duration::from_secs_f64(cfg.retry.delay_s(attempt).max(0.0));
        eprintln!(
            "supervise: engine ended ({}); restart {attempt}/{} in {:.1}s",
            end.describe(),
            cfg.retry.max_attempts,
            delay.as_secs_f64()
        );
        std::thread::sleep(delay);
        argv = restart_args(&argv);
    }
}

/// Waits for the child, polling the heartbeat watchdog; kills the child
/// on a stale heartbeat. Before the child's first beat the spawn time
/// stands in for the file mtime, so slow startup gets the same budget.
fn wait_watched(child: &mut Child, cfg: &SuperviseConfig) -> ChildEnd {
    let spawned = Instant::now();
    loop {
        match child.try_wait() {
            Ok(Some(status)) => {
                return match status.code() {
                    Some(c) => ChildEnd::Exited(c),
                    None => ChildEnd::Signaled,
                }
            }
            Ok(None) => {}
            Err(_) => {
                let _ = child.kill();
                let _ = child.wait();
                return ChildEnd::Signaled;
            }
        }
        if let (Some(timeout), Some(hb)) = (cfg.stall_timeout, cfg.heartbeat.as_ref()) {
            let age = std::fs::metadata(hb)
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| t.elapsed().ok())
                .unwrap_or_else(|| spawned.elapsed());
            // Spawn grace: a restarted child inherits its predecessor's
            // stale heartbeat file, so staleness only counts once the
            // child has had a full timeout to produce its first beat.
            if age > timeout && spawned.elapsed() > timeout {
                let _ = child.kill();
                let _ = child.wait();
                return ChildEnd::Stalled;
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(max_attempts: u32) -> SuperviseConfig {
        SuperviseConfig {
            retry: RetryPolicy { max_attempts, base_delay_s: 0.01, backoff_factor: 1.0 },
            stall_timeout: None,
            heartbeat: None,
        }
    }

    /// A shell one-liner that exits 42 until a counter file has been
    /// touched `n` times, then exits 0 — the shape of a planned crash
    /// that a resume fixes.
    fn flaky_script(counter: &std::path::Path, failures: u32) -> Vec<String> {
        let script = format!(
            "c=0; [ -f {p} ] && c=$(cat {p}); c=$((c+1)); echo $c > {p}; \
             [ $c -le {failures} ] && exit 42; exit 0",
            p = counter.display()
        );
        vec!["-c".into(), script]
    }

    fn temp_counter(name: &str) -> PathBuf {
        let p =
            std::env::temp_dir().join(format!("mtshare-supervise-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn restart_args_strip_one_shot_flags_and_force_resume() {
        let args: Vec<String> = [
            "serve",
            "--scenario",
            "s.json",
            "--state-dir",
            "d",
            "--supervise",
            "--supervise-max-restarts",
            "5",
            "--crash-at",
            "120",
            "--failpoints",
            "wal-sync-fail=1",
            "--heartbeat-file",
            "hb",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let restarted = restart_args(&args);
        assert_eq!(
            restarted,
            [
                "serve",
                "--scenario",
                "s.json",
                "--state-dir",
                "d",
                "--heartbeat-file",
                "hb",
                "--resume"
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
        );
        // Already-resuming argv is left with exactly one --resume.
        let again = restart_args(&restarted);
        assert_eq!(again.iter().filter(|a| *a == "--resume").count(), 1);
    }

    #[test]
    fn transient_exits_are_retried_until_success() {
        let counter = temp_counter("retry");
        let code = supervise(std::ffi::OsStr::new("/bin/sh"), &flaky_script(&counter, 2), &cfg(5));
        assert_eq!(code, 0);
        let runs: u32 = std::fs::read_to_string(&counter).unwrap().trim().parse().unwrap();
        assert_eq!(runs, 3, "two crashes plus the successful run");
        let _ = std::fs::remove_file(&counter);
    }

    #[test]
    fn exhausted_budget_yields_typed_exit() {
        let counter = temp_counter("exhaust");
        let code =
            supervise(std::ffi::OsStr::new("/bin/sh"), &flaky_script(&counter, 100), &cfg(2));
        assert_eq!(code, SUPERVISE_EXHAUSTED_EXIT);
        let _ = std::fs::remove_file(&counter);
    }

    #[test]
    fn fatal_exit_codes_pass_through_without_restart() {
        let counter = temp_counter("fatal");
        let script = format!(
            "c=0; [ -f {p} ] && c=$(cat {p}); c=$((c+1)); echo $c > {p}; exit 2",
            p = counter.display()
        );
        let code = supervise(std::ffi::OsStr::new("/bin/sh"), &["-c".into(), script], &cfg(5));
        assert_eq!(code, 2);
        let runs: u32 = std::fs::read_to_string(&counter).unwrap().trim().parse().unwrap();
        assert_eq!(runs, 1, "a flag error must not be retried");
        let _ = std::fs::remove_file(&counter);
    }

    #[test]
    fn stalled_heartbeat_triggers_kill_and_restart() {
        let counter = temp_counter("stall");
        let hb = temp_counter("stall-hb");
        std::fs::write(&hb, "0\n").unwrap();
        // First run sleeps forever (heartbeat never refreshed); the
        // watchdog kills it. Second run exits 0.
        let script = format!(
            "c=0; [ -f {p} ] && c=$(cat {p}); c=$((c+1)); echo $c > {p}; \
             [ $c -le 1 ] && sleep 30; exit 0",
            p = counter.display()
        );
        let mut config = cfg(3);
        config.stall_timeout = Some(Duration::from_millis(300));
        config.heartbeat = Some(hb.clone());
        let start = Instant::now();
        let code = supervise(std::ffi::OsStr::new("/bin/sh"), &["-c".into(), script], &config);
        assert_eq!(code, 0);
        assert!(start.elapsed() < Duration::from_secs(10), "watchdog must not wait out the sleep");
        let _ = std::fs::remove_file(&counter);
        let _ = std::fs::remove_file(&hb);
    }
}
