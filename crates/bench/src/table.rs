//! Minimal aligned-table formatter for experiment output.

/// A simple text table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.header.len())));
        for r in &self.rows {
            out.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        out
    }

    /// Renders as aligned plain text.
    pub fn to_text(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = width[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `d` decimals.
pub fn fmt(v: f64, d: usize) -> String {
    format!("{v:.d$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_text_and_markdown() {
        let mut t = Table::new(vec!["scheme", "served"]);
        t.row(vec!["mT-Share".to_string(), fmt(123.0, 0)]);
        t.row(vec!["T-Share".to_string(), "88".to_string()]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let text = t.to_text();
        assert!(text.contains("mT-Share"));
        assert!(text.lines().count() == 4);
        let md = t.to_markdown();
        assert!(md.starts_with("| scheme | served |"));
        assert!(md.contains("| T-Share | 88 |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".to_string(), "2".to_string()]);
    }
}
