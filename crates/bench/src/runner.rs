//! Shared experiment harness: one city, one cache, many runs.

use crate::scale::Scale;
use mtshare_core::{MobilityContext, MtShareConfig, PartitionStrategy, WithProbabilisticRouting};
use mtshare_mobility::Trip;
use mtshare_model::DispatchScheme;
use mtshare_road::{grid_city, RoadNetwork};
use mtshare_routing::PathCache;
use mtshare_sim::{Scenario, ScenarioConfig, SchemeKind, SimConfig, SimReport, Simulator};
use std::sync::Arc;

/// Long-lived experiment environment.
pub struct Env {
    /// The synthetic city.
    pub graph: Arc<RoadNetwork>,
    /// Shared shortest-path cache (request materialization etc.).
    pub cache: PathCache,
    /// Scale preset in force.
    pub scale: Scale,
}

impl Env {
    /// Builds the environment for `scale`.
    pub fn new(scale: Scale) -> Self {
        let graph = Arc::new(grid_city(&scale.city).expect("valid city config"));
        let cache = PathCache::new(graph.clone());
        Self { graph, cache, scale }
    }

    /// Scaled peak scenario config for a fleet size. Demand is *fixed*
    /// across the fleet sweep, as in the paper (29 534 requests regardless
    /// of fleet size).
    pub fn peak(&self, fleet: usize) -> ScenarioConfig {
        let mut c = ScenarioConfig::peak(fleet);
        c.n_requests = self.scale.peak_requests;
        c.n_historical = self.scale.n_historical;
        c
    }

    /// Scaled non-peak scenario config for a fleet size (fixed demand,
    /// paper: 15 480 requests, 5000 of them offline).
    pub fn nonpeak(&self, fleet: usize) -> ScenarioConfig {
        let mut c = ScenarioConfig::nonpeak(fleet);
        c.n_requests = self.scale.nonpeak_requests;
        c.n_historical = self.scale.n_historical;
        c
    }

    /// Materializes a scenario.
    pub fn scenario(&self, cfg: ScenarioConfig) -> Scenario {
        Scenario::generate(self.graph.clone(), &self.cache, cfg)
    }

    /// Builds a mobility context from a scenario's historical trips.
    pub fn context(
        &self,
        historical: &[Trip],
        kappa: usize,
        strategy: PartitionStrategy,
    ) -> Arc<MobilityContext> {
        mtshare_sim::build_context(&self.graph, historical, kappa, strategy)
    }

    /// Runs one scheme over one scenario.
    pub fn run(
        &self,
        scenario: &Scenario,
        kind: SchemeKind,
        ctx: Option<Arc<MobilityContext>>,
        mt_cfg: Option<MtShareConfig>,
    ) -> SimReport {
        let mut scheme = kind.build(&self.graph, scenario.taxis.len(), ctx, mt_cfg);
        self.run_scheme(scenario, scheme.as_mut())
    }

    /// Runs an arbitrary scheme instance over one scenario.
    pub fn run_scheme(&self, scenario: &Scenario, scheme: &mut dyn DispatchScheme) -> SimReport {
        self.run_scheme_with(scenario, scheme, SimConfig::default())
    }

    /// Runs an arbitrary scheme instance under an explicit sim config
    /// (rolling-horizon batch windows etc.).
    pub fn run_scheme_with(
        &self,
        scenario: &Scenario,
        scheme: &mut dyn DispatchScheme,
        sim_cfg: SimConfig,
    ) -> SimReport {
        let sim = Simulator::new(self.graph.clone(), self.cache.clone(), scenario, sim_cfg);
        sim.run(scheme)
    }

    /// Runs a baseline scheme wrapped with probabilistic routing (Fig. 16b).
    pub fn run_wrapped(
        &self,
        scenario: &Scenario,
        kind: SchemeKind,
        ctx: Arc<MobilityContext>,
    ) -> SimReport {
        let inner = kind.build(&self.graph, scenario.taxis.len(), Some(ctx.clone()), None);
        let mut wrapped =
            WithProbabilisticRouting::new(inner, &self.graph, ctx, MtShareConfig::default());
        self.run_scheme(scenario, &mut wrapped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapped_baseline_runs_nonpeak() {
        let mut scale = Scale::small();
        scale.nonpeak_requests = 40;
        scale.n_historical = 800;
        let env = Env::new(scale);
        let scenario = env.scenario(env.nonpeak(10));
        let ctx = env.context(&scenario.historical, 8, PartitionStrategy::Bipartite);
        let r = env.run_wrapped(&scenario, mtshare_sim::SchemeKind::TShare, ctx);
        assert_eq!(r.scheme, "T-Share+prob");
        assert_eq!(r.served + r.rejected, r.n_requests);
    }

    #[test]
    fn env_runs_a_tiny_peak_comparison() {
        let env = Env::new(Scale::small());
        let scenario = env.scenario(env.peak(12));
        let ctx = env.context(&scenario.historical, env.scale.kappa, PartitionStrategy::Bipartite);
        let ns = env.run(&scenario, SchemeKind::NoSharing, None, None);
        let mt = env.run(&scenario, SchemeKind::MtShare, Some(ctx), None);
        assert!(ns.served > 0);
        assert!(mt.served >= ns.served);
        assert_eq!(ns.n_requests, mt.n_requests);
    }
}
