//! Parameter sweeps: Fig. 14(b) capacity, Fig. 15 γ, Figs. 17–19 ρ,
//! Fig. 20 θ/λ.

use super::ExperimentResult;
use crate::runner::Env;
use crate::table::{fmt, Table};
use mtshare_core::{MtShareConfig, PartitionStrategy};
use mtshare_sim::{SchemeKind, SimReport};

/// Fig. 14(b): taxi capacity 2..6, peak, mT-Share.
pub fn run_capacity(env: &Env) -> ExperimentResult {
    let fleet = env.scale.default_fleet;
    let mut table = Table::new(vec!["capacity", "served", "detour min"]);
    let mut served = Vec::new();
    for capacity in [2u8, 3, 4, 5, 6] {
        let mut cfg = env.peak(fleet);
        cfg.capacity = capacity;
        let scenario = env.scenario(cfg);
        let ctx = env.context(&scenario.historical, env.scale.kappa, PartitionStrategy::Bipartite);
        let r = env.run(&scenario, SchemeKind::MtShare, Some(ctx), None);
        eprintln!("[fig14b] capacity {capacity}: served {}", r.served);
        served.push(r.served);
        table.row(vec![capacity.to_string(), r.served.to_string(), fmt(r.avg_detour_min, 2)]);
    }
    ExperimentResult {
        id: "fig14b",
        title: "impact of taxi capacity (peak, mT-Share)".into(),
        paper_expectation: "larger capacity ⇒ more served requests (+12% from capacity 2 to 6)"
            .into(),
        table,
        notes: vec![format!(
            "served capacity-6 / capacity-2 = {:.2} (paper ≈ 1.12)",
            *served.last().unwrap() as f64 / served[0].max(1) as f64
        )],
    }
}

/// Fig. 15: searching range γ sweep — detour and waiting time, peak.
pub fn run_gamma(env: &Env) -> ExperimentResult {
    let fleet = env.scale.default_fleet;
    let scenario = env.scenario(env.peak(fleet));
    let ctx = env.context(&scenario.historical, env.scale.kappa, PartitionStrategy::Bipartite);
    let schemes =
        [SchemeKind::NoSharing, SchemeKind::TShare, SchemeKind::PGreedyDp, SchemeKind::MtShare];
    let mut table = Table::new(vec!["gamma km", "scheme", "detour min", "waiting min", "served"]);
    let mut notes = Vec::new();
    // Scaled from the paper's 1.0-3.0 km: our trips are ~2x shorter and the
    // fleet denser, so the cap must reach down to a few blocks to bind.
    let gammas = [250.0, 500.0, 1000.0, 1500.0];
    let mut mt_detours = Vec::new();
    for gamma in gammas {
        for kind in schemes {
            let cfg = MtShareConfig { max_search_range_m: gamma, ..Default::default() };
            let c = kind.needs_context().then(|| ctx.clone());
            let r = env.run(&scenario, kind, c, Some(cfg));
            if kind == SchemeKind::MtShare {
                mt_detours.push(r.avg_detour_min);
                eprintln!("[fig15] gamma {gamma}: mT-Share served {}", r.served);
            }
            table.row(vec![
                fmt(gamma / 1000.0, 1),
                r.scheme.clone(),
                fmt(r.avg_detour_min, 2),
                fmt(r.avg_waiting_min, 2),
                r.served.to_string(),
            ]);
        }
    }
    notes.push(format!(
        "mT-Share detour across γ: {} (paper: grows with γ)",
        mt_detours.iter().map(|d| fmt(*d, 2)).collect::<Vec<_>>().join(" → ")
    ));
    ExperimentResult {
        id: "fig15",
        title: "impact of searching range γ on detour and waiting time (peak)".into(),
        paper_expectation:
            "larger γ ⇒ more detour and waiting for all sharing schemes; No-Sharing has no detour; T-Share best service quality, mT-Share better than pGreedyDP"
                .into(),
        table,
        notes,
    }
}

/// Figs. 17–19: the deadline flexibility factor ρ, peak scenario.
pub fn run_rho(env: &Env) -> Vec<ExperimentResult> {
    let fleet = env.scale.default_fleet;
    let rhos = [1.2, 1.3, 1.4, 1.5, 1.6];
    let sharing = [SchemeKind::TShare, SchemeKind::PGreedyDp, SchemeKind::MtShare];

    // One run per (ρ, scheme) plus a No-Sharing run per ρ for the payment
    // comparison of Fig. 19.
    let mut runs: Vec<(f64, Vec<SimReport>, SimReport)> = Vec::new();
    let mut ctx = None;
    for &rho in &rhos {
        let mut cfg = env.peak(fleet);
        cfg.rho = rho;
        let scenario = env.scenario(cfg);
        let ctx_ref = ctx
            .get_or_insert_with(|| {
                env.context(&scenario.historical, env.scale.kappa, PartitionStrategy::Bipartite)
            })
            .clone();
        let mut reports = Vec::new();
        for kind in sharing {
            let c = kind.needs_context().then(|| ctx_ref.clone());
            reports.push(env.run(&scenario, kind, c, None));
        }
        let ns = env.run(&scenario, SchemeKind::NoSharing, None, None);
        eprintln!("[rho] {rho}: mT served {}", reports.last().map(|r| r.served).unwrap_or(0));
        runs.push((rho, reports, ns));
    }

    // Fig. 17: waiting time per scheme.
    let mut t17 = Table::new(vec!["rho", "T-Share", "pGreedyDP", "mT-Share"]);
    for (rho, reports, _) in &runs {
        let mut row = vec![fmt(*rho, 1)];
        row.extend(reports.iter().map(|r| fmt(r.avg_waiting_min, 2)));
        t17.row(row);
    }

    // Fig. 18: mT-Share detour + served.
    let mut t18 = Table::new(vec!["rho", "served", "detour min"]);
    let mut served_series = Vec::new();
    for (rho, reports, _) in &runs {
        let mt = reports.iter().find(|r| r.scheme == "mT-Share").expect("ran");
        served_series.push(mt.served);
        t18.row(vec![fmt(*rho, 1), mt.served.to_string(), fmt(mt.avg_detour_min, 2)]);
    }

    // Fig. 19: fare saving (passengers) and income increase (drivers),
    // mT-Share vs. the No-Sharing run on the same workload.
    let mut t19 = Table::new(vec!["rho", "fare saving %", "driver income +%"]);
    let mut at_13 = (0.0, 0.0);
    for (rho, reports, ns) in &runs {
        let mt = reports.iter().find(|r| r.scheme == "mT-Share").expect("ran");
        let saving = mt.fare_saving_pct();
        let income_incr = if ns.total_driver_income > 0.0 {
            (mt.total_driver_income / ns.total_driver_income - 1.0) * 100.0
        } else {
            0.0
        };
        if (*rho - 1.3).abs() < 1e-9 {
            at_13 = (saving, income_incr);
        }
        t19.row(vec![fmt(*rho, 1), fmt(saving, 1), fmt(income_incr, 1)]);
    }

    vec![
        ExperimentResult {
            id: "fig17",
            title: "impact of ρ on passenger waiting time (peak)".into(),
            paper_expectation:
                "larger ρ ⇒ longer waiting for every sharing scheme; T-Share shortest; mT-Share within 1.2 min of pGreedyDP"
                    .into(),
            table: t17,
            notes: vec![],
        },
        ExperimentResult {
            id: "fig18",
            title: "impact of ρ on served requests and detour time (mT-Share, peak)".into(),
            paper_expectation:
                "detour grows with ρ; served grows but saturates beyond ρ=1.3 (paper: +4% served costs +48% detour from 1.3→1.4)"
                    .into(),
            table: t18,
            notes: vec![format!(
                "served series: {}",
                served_series.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(" → ")
            )],
        },
        ExperimentResult {
            id: "fig19",
            title: "impact of ρ on fare savings and driver income (mT-Share vs No-Sharing)".into(),
            paper_expectation:
                "ridesharing saves fares and raises driver income; at ρ=1.3 passengers save ≈8.6% and drivers earn ≈+7.8%; larger ρ saves riders more but erodes driver profit"
                    .into(),
            table: t19,
            notes: vec![format!(
                "at ρ=1.3: fare saving {:.1}% (paper 8.6), driver income {:+.1}% (paper +7.8)",
                at_13.0, at_13.1
            )],
        },
    ]
}

/// Fig. 20: direction threshold θ (λ = cos θ) sweep, peak, mT-Share.
pub fn run_lambda(env: &Env) -> ExperimentResult {
    let fleet = env.scale.default_fleet;
    let scenario = env.scenario(env.peak(fleet));
    let ctx = env.context(&scenario.historical, env.scale.kappa, PartitionStrategy::Bipartite);
    let mut table = Table::new(vec!["theta deg", "lambda", "served", "resp ms", "candidates"]);
    let mut series = Vec::new();
    for theta_deg in [30.0f64, 45.0, 60.0, 75.0] {
        let lambda = theta_deg.to_radians().cos();
        let cfg = MtShareConfig { lambda, ..Default::default() };
        let r = env.run(&scenario, SchemeKind::MtShare, Some(ctx.clone()), Some(cfg));
        eprintln!("[fig20] theta {theta_deg}: served {} resp {:.2}ms", r.served, r.avg_response_ms);
        series.push((r.served, r.avg_response_ms, r.avg_candidates));
        table.row(vec![
            fmt(theta_deg, 0),
            fmt(lambda, 3),
            r.served.to_string(),
            fmt(r.avg_response_ms, 2),
            fmt(r.avg_candidates, 1),
        ]);
    }
    ExperimentResult {
        id: "fig20",
        title: "impact of the travel-direction threshold θ (peak, mT-Share)".into(),
        paper_expectation:
            "larger θ (smaller λ) ⇒ slightly more served requests but sharply higher response time; θ=45° balances both"
                .into(),
        table,
        notes: vec![format!(
            "served 30°→75°: {} → {}; response {:.2} → {:.2} ms",
            series[0].0,
            series[3].0,
            series[0].1,
            series[3].1
        )],
    }
}
