//! Fig. 16 — basic vs. probabilistic routing: online/offline composition
//! of the served requests for T-Share, pGreedyDP and mT-Share (non-peak).

use super::ExperimentResult;
use crate::runner::Env;
use crate::table::Table;
use mtshare_core::PartitionStrategy;
use mtshare_sim::{SchemeKind, SimReport};

/// Runs the six combinations of Fig. 16.
pub fn run(env: &Env) -> ExperimentResult {
    let fleet = env.scale.default_fleet;
    let scenario = env.scenario(env.nonpeak(fleet));
    let ctx = env.context(&scenario.historical, env.scale.kappa, PartitionStrategy::Bipartite);

    let mut table = Table::new(vec!["routing", "scheme", "online", "offline", "total"]);
    let mut basic: Vec<SimReport> = Vec::new();
    let mut prob: Vec<SimReport> = Vec::new();

    for kind in [SchemeKind::TShare, SchemeKind::PGreedyDp, SchemeKind::MtShare] {
        let c = kind.needs_context().then(|| ctx.clone());
        let r = env.run(&scenario, kind, c, None);
        table.row(vec![
            "basic".to_string(),
            r.scheme.clone(),
            r.served_online.to_string(),
            r.served_offline.to_string(),
            r.served.to_string(),
        ]);
        eprintln!(
            "[fig16] basic/{}: {} online + {} offline",
            r.scheme, r.served_online, r.served_offline
        );
        basic.push(r);
    }
    // Probabilistic: baselines wrapped with Alg. 4 re-routing, mT-Share_pro
    // natively.
    for kind in [SchemeKind::TShare, SchemeKind::PGreedyDp] {
        let r = env.run_wrapped(&scenario, kind, ctx.clone());
        table.row(vec![
            "probabilistic".to_string(),
            r.scheme.clone(),
            r.served_online.to_string(),
            r.served_offline.to_string(),
            r.served.to_string(),
        ]);
        eprintln!(
            "[fig16] {}: {} online + {} offline",
            r.scheme, r.served_online, r.served_offline
        );
        prob.push(r);
    }
    {
        let r = env.run(&scenario, SchemeKind::MtSharePro, Some(ctx), None);
        table.row(vec![
            "probabilistic".to_string(),
            r.scheme.clone(),
            r.served_online.to_string(),
            r.served_offline.to_string(),
            r.served.to_string(),
        ]);
        eprintln!(
            "[fig16] {}: {} online + {} offline",
            r.scheme, r.served_online, r.served_offline
        );
        prob.push(r);
    }

    let notes = basic
        .iter()
        .zip(&prob)
        .map(|(b, p)| {
            format!(
                "{}: offline {} → {} ({:+.0}%), total {} → {} ({:+.0}%)",
                b.scheme,
                b.served_offline,
                p.served_offline,
                (p.served_offline as f64 / b.served_offline.max(1) as f64 - 1.0) * 100.0,
                b.served,
                p.served,
                (p.served as f64 / b.served.max(1) as f64 - 1.0) * 100.0,
            )
        })
        .collect();

    ExperimentResult {
        id: "fig16",
        title: "basic vs. probabilistic routing: served-request composition (non-peak)".into(),
        paper_expectation:
            "probabilistic routing serves strictly more offline requests for every scheme (+89% T-Share, +46% pGreedyDP, +34% mT-Share offline; +26/17/14% total)"
                .into(),
        table,
        notes,
    }
}
