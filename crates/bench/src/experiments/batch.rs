//! Rolling-horizon batch (Kuhn–Munkres) dispatch vs. insertion-greedy
//! mT-Share, with a `--batch-window` sweep. Not a figure from the paper —
//! this documents the repo's batch-assignment extension against the
//! paper's greedy per-request dispatcher on the standard peak scenario.

use super::ExperimentResult;
use crate::runner::Env;
use crate::table::{fmt, Table};
use mtshare_core::PartitionStrategy;
use mtshare_sim::{BatchConfig, SchemeKind, SimConfig, SimReport};

/// Window widths swept, in simulated seconds.
const WINDOWS_S: [f64; 5] = [5.0, 10.0, 20.0, 30.0, 60.0];

/// Runs the greedy baseline and the batch window sweep at max fleet.
pub fn run(env: &Env) -> ExperimentResult {
    let fleet = *env.scale.fleets.last().expect("non-empty fleet list");
    let scenario = env.scenario(env.peak(fleet));
    let ctx = env.context(&scenario.historical, env.scale.kappa, PartitionStrategy::Bipartite);

    let greedy = env.run(&scenario, SchemeKind::MtShare, Some(ctx.clone()), None);
    let mut batches: Vec<(f64, SimReport)> = Vec::new();
    for window_s in WINDOWS_S {
        let mut scheme = SchemeKind::MtShareBatch.build(
            &env.graph,
            scenario.taxis.len(),
            Some(ctx.clone()),
            None,
        );
        let sim_cfg = SimConfig {
            batch: Some(BatchConfig { window_s, max_retries: 2 }),
            ..SimConfig::default()
        };
        let r = env.run_scheme_with(&scenario, scheme.as_mut(), sim_cfg);
        eprintln!("[batch] window {window_s}s: served {} (greedy {})", r.served, greedy.served);
        batches.push((window_s, r));
    }

    let mut t = Table::new(vec![
        "dispatch",
        "served",
        "service rate %",
        "detour min",
        "wait min (avg)",
        "wait min (p95)",
        "resp ms",
    ]);
    let row = |label: String, r: &SimReport| {
        vec![
            label,
            r.served.to_string(),
            fmt(r.served_ratio() * 100.0, 1),
            fmt(r.avg_detour_min, 2),
            fmt(r.avg_waiting_min, 2),
            fmt(r.p95_waiting_min, 2),
            fmt(r.avg_response_ms, 3),
        ]
    };
    t.row(row("greedy (insertion)".into(), &greedy));
    for (w, r) in &batches {
        t.row(row(format!("batch, {w:.0} s window"), r));
    }

    let best = batches.iter().max_by_key(|(_, r)| r.served).expect("non-empty window sweep");
    ExperimentResult {
        id: "batch",
        title: "rolling-horizon batch (LAP) vs. insertion-greedy dispatch (peak, max fleet)".into(),
        paper_expectation: "not in the paper — extension; window-optimal batching should \
                            serve at least as many requests as greedy per-request insertion, \
                            trading response latency (requests wait out their window) for \
                            globally cheaper assignments"
            .into(),
        table: t,
        notes: vec![
            format!(
                "best window {:.0} s serves {} vs greedy {} ({:+.1}%)",
                best.0,
                best.1.served,
                greedy.served,
                (best.1.served as f64 / greedy.served as f64 - 1.0) * 100.0
            ),
            "short windows converge to greedy (singleton LAPs); long windows burn deadline \
             slack while requests sit in the buffer — service degrades past ~30 s here"
                .into(),
            "batch response time measures the per-row share of the window's scoring + LAP \
             solve, not the rider-perceived wait for a match (that is bounded by the window)"
                .into(),
        ],
    }
}
