//! One runner per table and figure of the paper's evaluation (Sec. V).
//!
//! Every experiment returns an [`ExperimentResult`] whose table holds the
//! same rows/series the paper reports; `run_all` regenerates
//! `EXPERIMENTS.md`. Absolute numbers differ from the paper (synthetic
//! city, scaled fleet — see DESIGN.md), the *shapes* are what must hold.

pub mod batch;
pub mod fig05;
pub mod fig16;
pub mod fig21;
pub mod memory;
pub mod nonpeak;
pub mod partition_ablation;
pub mod peak;
pub mod sweeps;
#[cfg(test)]
mod tests;

use crate::runner::Env;
use crate::table::Table;

/// Output of one experiment runner.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment id (e.g. `fig6`, `tab3`).
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// What the paper reports (the shape to check against).
    pub paper_expectation: String,
    /// The regenerated rows.
    pub table: Table,
    /// Observations about the measured shape.
    pub notes: Vec<String>,
}

impl std::fmt::Display for ExperimentResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        writeln!(f, "paper: {}", self.paper_expectation)?;
        writeln!(f, "{}", self.table.to_text())?;
        for n in &self.notes {
            writeln!(f, "note: {n}")?;
        }
        Ok(())
    }
}

/// All experiment ids in paper order.
pub const ALL_IDS: &[&str] = &[
    "fig5", "fig6", "fig7", "tab3", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "tab4",
    "fig14a", "fig14b", "tab5", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
    "batch",
];

/// Runs the experiment(s) behind `id`. Group runners (the peak/non-peak
/// sweeps) return several figures at once; requesting any member id
/// returns the full group.
pub fn run_experiment(env: &Env, id: &str) -> Vec<ExperimentResult> {
    match id {
        "fig5" => vec![fig05::run(env)],
        "fig6" | "fig7" | "tab3" | "fig8" | "fig9" | "peak" => peak::run(env),
        "fig10" | "fig11" | "fig12" | "fig13" | "nonpeak" => nonpeak::run(env),
        "tab4" => vec![memory::run(env)],
        "fig14a" => vec![partition_ablation::run_kappa(env)],
        "fig14b" => vec![sweeps::run_capacity(env)],
        "tab5" => vec![partition_ablation::run_strategies(env)],
        "fig15" => vec![sweeps::run_gamma(env)],
        "fig16" => vec![fig16::run(env)],
        "fig17" | "fig18" | "fig19" | "rho" => sweeps::run_rho(env),
        "fig20" => vec![sweeps::run_lambda(env)],
        "fig21" => vec![fig21::run(env)],
        "batch" => vec![batch::run(env)],
        other => panic!("unknown experiment id: {other} (known: {ALL_IDS:?})"),
    }
}

/// Runs every experiment once (group runners are executed a single time).
pub fn run_all(env: &Env) -> Vec<ExperimentResult> {
    let mut out = Vec::new();
    out.push(fig05::run(env));
    out.extend(peak::run(env));
    out.extend(nonpeak::run(env));
    out.push(memory::run(env));
    out.push(partition_ablation::run_kappa(env));
    out.push(sweeps::run_capacity(env));
    out.push(partition_ablation::run_strategies(env));
    out.push(sweeps::run_gamma(env));
    out.push(fig16::run(env));
    out.extend(sweeps::run_rho(env));
    out.push(sweeps::run_lambda(env));
    out.push(fig21::run(env));
    out.push(batch::run(env));
    out
}

/// Standing assessment of which paper claims reproduce at this scale,
/// written into every EXPERIMENTS.md regeneration.
const REPRODUCTION_STATUS: &str = "\
## Reproduction status (summary)

**Reproduces (shape and rough factor):**

- Table III — candidate-set ordering and magnitudes: No-Sharing < T-Share
  < mT-Share < pGreedyDP, in the paper's numeric range.
- Figs. 6/10 macro shape — ridesharing serves ~1.8-2.1x No-Sharing; served
  counts grow concavely with fleet under fixed demand; mT-Share ties or
  leads the sharing baselines.
- Figs. 8/12 — detour ordering: T-Share ≲ mT-Share < pGreedyDP.
- Figs. 9/13 — waiting: decreasing in fleet; |mT-Share − pGreedyDP| < 0.5 min.
- Fig. 11 — mT-Share_pro responds ~2-3x slower than mT-Share (paper 2.5-4.5x).
- Fig. 14(b) — capacity ⇒ served, monotone (stronger than the paper's +12%).
- Figs. 17/18 — waiting and detour grow with ρ; served saturates.
- Fig. 19 — ridesharing saves rider fares and raises driver income; the
  driver side (~+13%) is near the paper's +7.8%, the rider side overshoots
  (flag-fall tariff amplifies pooled benefit at our shorter trip lengths).
- Fig. 21 — execution time scales linearly in data volume; response time flat.
- Fig. 5 — trip travel-time distribution (p50 ≈ 16 min vs paper's 15).

**Partially reproduces / documented gaps:**

- Figs. 6/10 margins: the paper's mT-Share serves +36-62% over the
  baselines; here it ties or wins by ~1-3%. Our baselines share the same
  exact insertion operator, fresh position indexes, and O(1) cost oracle,
  which closes most of the implementation gap the paper measured. The
  candidate-quality advantages (future-arrival indexing, direction
  filtering) survive in Table III but no longer translate into served-count
  dominance once every scheme matches near the feasibility ceiling.
- Fig. 7 — response ordering: with the shared O(1) oracle, per-request cost
  tracks candidate-set size times insertion cost for every scheme, so
  pGreedyDP is no longer 4-10x slower than mT-Share (all schemes answer in
  well under a millisecond at this scale).
- Fig. 16 / Fig. 10 (mT-Share_pro): probabilistic routing's offline gain
  is mechanical in the paper's sparse-coverage regime but our ~30x smaller
  map is route-saturated — basic routes already pass the demand corridors,
  so extra encounters are not the binding constraint. The gain appears
  weakly (+5-8%) only at the smallest fleets.
- Table V / Fig. 14(a): bipartite-vs-grid and the κ optimum are nearly flat
  here; candidate search via partition-circle intersection over-covers at
  small κ, masking the paper's interior optimum.

";

/// Renders all results into the EXPERIMENTS.md body.
pub fn render_markdown(scale_name: &str, results: &[ExperimentResult]) -> String {
    let mut md = String::new();
    md.push_str("# EXPERIMENTS — paper vs. measured\n\n");
    md.push_str(&format!(
        "Regenerated by `cargo run --release -p mtshare-bench --bin experiments -- all`\n\
         at scale `{scale_name}` (see DESIGN.md for the scaling substitutions).\n\n"
    ));
    md.push_str(REPRODUCTION_STATUS);
    for r in results {
        md.push_str(&format!("## {} — {}\n\n", r.id, r.title));
        md.push_str(&format!("**Paper:** {}\n\n", r.paper_expectation));
        md.push_str(&r.table.to_markdown());
        md.push('\n');
        for n in &r.notes {
            md.push_str(&format!("- {n}\n"));
        }
        md.push('\n');
    }
    md
}
