//! Fig. 21 — scalability with the amount of taxi data: total execution
//! time (a) and response time (b) vs. hours of simulated demand.

use super::ExperimentResult;
use crate::runner::Env;
use crate::table::{fmt, Table};
use mtshare_core::PartitionStrategy;
use mtshare_sim::{materialize, Scenario, SchemeKind, WorkloadConfig, WorkloadGenerator};

/// Builds an `hours`-long scenario from a demand profile and runs the
/// given scheme, returning (wall-clock s, response ms, served).
fn run_hours(
    env: &Env,
    kind: SchemeKind,
    hours: usize,
    profile: &[usize],
    offline_fraction: f64,
    seed: u64,
) -> (f64, f64, usize) {
    let fleet = env.scale.default_fleet;
    let mut cfg = env.peak(fleet);
    cfg.offline_fraction = offline_fraction;
    cfg.duration_s = hours as f64 * 3600.0;
    let mut gen =
        WorkloadGenerator::new(env.graph.clone(), WorkloadConfig { seed, ..Default::default() });
    let historical = gen.historical_trips(cfg.n_historical);
    let raw = gen.day_stream(&profile[..hours], offline_fraction);
    let requests = materialize(&raw, &env.cache, cfg.rho);
    let taxis = cfg.make_fleet(&env.graph);
    let scenario = Scenario { config: cfg, historical, requests, taxis };
    let ctx = env.context(&scenario.historical, env.scale.kappa, PartitionStrategy::Bipartite);
    let r = env.run(&scenario, kind, Some(ctx), None);
    (r.wall_clock_s, r.avg_response_ms, r.served)
}

/// Runs the data-amount sweep for mT-Share (workday) and mT-Share_pro
/// (weekend with 1/3 offline, as Sec. V-C8 assumes).
pub fn run(env: &Env) -> ExperimentResult {
    let fleet = env.scale.default_fleet;
    // Hourly demand ≈ 6 requests per taxi-hour keeps day-long runs tractable.
    let hourly = fleet * 6;
    let profile = vec![hourly; 13];
    let hour_steps: &[usize] =
        if env.scale.name == "small" { &[1, 2, 3] } else { &[1, 4, 7, 10, 13] };

    let mut table = Table::new(vec![
        "hours",
        "mT-Share exec s",
        "mT-Share resp ms",
        "pro exec s",
        "pro resp ms",
    ]);
    let mut execs = Vec::new();
    let mut resp_last = (0.0, 0.0);
    for &h in hour_steps {
        let (wd_exec, wd_resp, _) = run_hours(env, SchemeKind::MtShare, h, &profile, 0.0, 77);
        let (we_exec, we_resp, _) =
            run_hours(env, SchemeKind::MtSharePro, h, &profile, 1.0 / 3.0, 78);
        eprintln!(
            "[fig21] {h}h: mT {wd_exec:.1}s/{wd_resp:.2}ms, pro {we_exec:.1}s/{we_resp:.2}ms"
        );
        execs.push((h, wd_exec));
        resp_last = (wd_resp, we_resp);
        table.row(vec![
            h.to_string(),
            fmt(wd_exec, 2),
            fmt(wd_resp, 3),
            fmt(we_exec, 2),
            fmt(we_resp, 3),
        ]);
    }
    let (h0, e0) = execs[0];
    let (h1, e1) = *execs.last().unwrap();
    ExperimentResult {
        id: "fig21",
        title: "scalability with the amount of taxi data (hours of demand)".into(),
        paper_expectation:
            "total execution time grows linearly with hours of data; response time stays flat (paper: 110 ms workday, 420 ms weekend)"
                .into(),
        table,
        notes: vec![format!(
            "execution-time growth {:.2}x over a {:.1}x data increase (linear ⇒ ratios match); final response times {:.2} / {:.2} ms",
            e1 / e0.max(1e-9),
            h1 as f64 / h0 as f64,
            resp_last.0,
            resp_last.1
        )],
    }
}
