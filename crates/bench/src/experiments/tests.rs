//! Smoke tests for the experiment harness at the CI scale.

use super::*;
use crate::runner::Env;
use crate::scale::Scale;

fn tiny_env() -> Env {
    let mut scale = Scale::small();
    // Shrink further: smoke tests only check plumbing, not shapes.
    scale.fleets = vec![8];
    scale.default_fleet = 8;
    scale.peak_requests = 60;
    scale.nonpeak_requests = 40;
    scale.n_historical = 800;
    scale.kappa = 8;
    scale.kappa_sweep = vec![4, 8];
    Env::new(scale)
}

#[test]
fn fig5_produces_24_hour_profile() {
    let env = tiny_env();
    let r = fig05::run(&env);
    assert_eq!(r.id, "fig5");
    assert_eq!(r.table.len(), 24);
    assert!(!r.notes.is_empty());
    // Renders in both formats.
    assert!(r.to_string().contains("fig5"));
    assert!(r.table.to_markdown().contains("| hour |"));
}

#[test]
fn peak_group_emits_all_five_results() {
    let env = tiny_env();
    let results = peak::run(&env);
    let ids: Vec<&str> = results.iter().map(|r| r.id).collect();
    assert_eq!(ids, vec!["fig6", "fig7", "tab3", "fig8", "fig9"]);
    for r in &results {
        assert_eq!(r.table.len(), env.scale.fleets.len(), "{}", r.id);
    }
}

#[test]
fn run_experiment_dispatches_group_members() {
    let env = tiny_env();
    // Any member id returns the whole group.
    let via_member = run_experiment(&env, "tab3");
    assert_eq!(via_member.len(), 5);
}

#[test]
#[should_panic(expected = "unknown experiment id")]
fn unknown_id_panics_with_catalogue() {
    let env = tiny_env();
    let _ = run_experiment(&env, "fig99");
}

#[test]
fn markdown_rendering_includes_status_and_tables() {
    let env = tiny_env();
    let results = vec![fig05::run(&env)];
    let md = render_markdown("small", &results);
    assert!(md.starts_with("# EXPERIMENTS"));
    assert!(md.contains("Reproduction status"));
    assert!(md.contains("## fig5"));
    assert!(md.contains("**Paper:**"));
}

#[test]
fn all_ids_are_covered_by_the_registry() {
    // Every advertised id must dispatch without panicking on lookup
    // (we only execute the cheapest one above; here we just check the
    // match arms exist by probing the catalogue).
    for id in ALL_IDS {
        assert!(
            matches!(
                *id,
                "fig5"
                    | "fig6"
                    | "fig7"
                    | "tab3"
                    | "fig8"
                    | "fig9"
                    | "fig10"
                    | "fig11"
                    | "fig12"
                    | "fig13"
                    | "tab4"
                    | "fig14a"
                    | "fig14b"
                    | "tab5"
                    | "fig15"
                    | "fig16"
                    | "fig17"
                    | "fig18"
                    | "fig19"
                    | "fig20"
                    | "fig21"
                    | "batch"
            ),
            "unknown id in catalogue: {id}"
        );
    }
}
