//! Fig. 14(a) — impact of the partition count κ — and Table V — bipartite
//! vs. grid map partitioning.

use super::ExperimentResult;
use crate::runner::Env;
use crate::table::{fmt, Table};
use mtshare_core::PartitionStrategy;
use mtshare_sim::SchemeKind;

/// Fig. 14(a): κ sweep with mT-Share in the peak scenario.
pub fn run_kappa(env: &Env) -> ExperimentResult {
    let fleet = env.scale.default_fleet;
    let scenario = env.scenario(env.peak(fleet));
    let mut table = Table::new(vec!["kappa", "served", "avg candidates", "resp ms"]);
    let mut served_by_kappa = Vec::new();
    for &kappa in &env.scale.kappa_sweep {
        let ctx = env.context(&scenario.historical, kappa, PartitionStrategy::Bipartite);
        let r = env.run(&scenario, SchemeKind::MtShare, Some(ctx), None);
        eprintln!("[fig14a] kappa {kappa}: served {}", r.served);
        served_by_kappa.push((kappa, r.served));
        table.row(vec![
            kappa.to_string(),
            r.served.to_string(),
            fmt(r.avg_candidates, 1),
            fmt(r.avg_response_ms, 2),
        ]);
    }
    let best = served_by_kappa.iter().max_by_key(|(_, s)| *s).copied().unwrap_or((0, 0));
    let first = served_by_kappa.first().copied().unwrap_or((0, 0));
    let last = served_by_kappa.last().copied().unwrap_or((0, 0));
    ExperimentResult {
        id: "fig14a",
        title: "impact of the partition count κ (peak, mT-Share)".into(),
        paper_expectation:
            "served requests rise then fall with κ (interior optimum around κ=150 on the full map); too-small or too-large κ shrinks the candidate sets"
                .into(),
        table,
        notes: vec![format!(
            "optimum at κ={} ({} served); endpoints κ={} ⇒ {}, κ={} ⇒ {}",
            best.0, best.1, first.0, first.1, last.0, last.1
        )],
    }
}

/// Table V: bipartite vs. grid partitioning, both scenarios.
pub fn run_strategies(env: &Env) -> ExperimentResult {
    let fleet = env.scale.default_fleet;
    let mut table =
        Table::new(vec!["scenario", "strategy", "served", "detour min", "served offline"]);
    let mut notes = Vec::new();
    for (label, cfg, kind) in [
        ("peak", env.peak(fleet), SchemeKind::MtShare),
        ("nonpeak", env.nonpeak(fleet), SchemeKind::MtSharePro),
    ] {
        let scenario = env.scenario(cfg);
        let mut served = [0usize; 2];
        for (i, strategy) in
            [PartitionStrategy::Bipartite, PartitionStrategy::Grid].into_iter().enumerate()
        {
            let ctx = env.context(&scenario.historical, env.scale.kappa, strategy);
            let r = env.run(&scenario, kind, Some(ctx), None);
            served[i] = r.served;
            table.row(vec![
                label.to_string(),
                format!("{strategy:?}"),
                r.served.to_string(),
                fmt(r.avg_detour_min, 2),
                r.served_offline.to_string(),
            ]);
            eprintln!("[tab5] {label}/{strategy:?}: served {}", r.served);
        }
        notes.push(format!(
            "{label}: bipartite/grid served ratio = {:.3} (paper ≥ 1.06)",
            served[0] as f64 / served[1].max(1) as f64
        ));
    }
    ExperimentResult {
        id: "tab5",
        title: "bipartite vs. grid map partitioning (Table V)".into(),
        paper_expectation:
            "bipartite partitioning serves ≥6% more requests and cuts detour by 3-7% in both scenarios"
                .into(),
        table,
        notes,
    }
}
