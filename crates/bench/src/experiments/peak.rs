//! Peak-scenario sweep: Figs. 6–9 and Table III from one fleet sweep.

use super::ExperimentResult;
use crate::runner::Env;
use crate::table::{fmt, Table};
use mtshare_core::PartitionStrategy;
use mtshare_sim::{SchemeKind, SimReport};

/// Runs the peak fleet sweep once and derives all five results.
pub fn run(env: &Env) -> Vec<ExperimentResult> {
    let mut matrix: Vec<(usize, Vec<SimReport>)> = Vec::new();
    let mut ctx = None;
    for &fleet in &env.scale.fleets {
        let scenario = env.scenario(env.peak(fleet));
        let ctx_ref = ctx
            .get_or_insert_with(|| {
                env.context(&scenario.historical, env.scale.kappa, PartitionStrategy::Bipartite)
            })
            .clone();
        let mut reports = Vec::new();
        for kind in SchemeKind::PEAK_SET {
            let c = kind.needs_context().then(|| ctx_ref.clone());
            reports.push(env.run(&scenario, kind, c, None));
        }
        eprintln!(
            "[peak] fleet {fleet}: {}",
            reports
                .iter()
                .map(|r| format!("{}={}", r.scheme, r.served))
                .collect::<Vec<_>>()
                .join(" ")
        );
        matrix.push((fleet, reports));
    }

    let labels: Vec<&str> = SchemeKind::PEAK_SET.iter().map(|k| k.label()).collect();
    let header = |metric: &str| {
        let mut h = vec![format!("taxis \\ {metric}")];
        h.extend(labels.iter().map(|s| s.to_string()));
        h
    };
    let mk_table = |metric: &str, f: &dyn Fn(&SimReport) -> String| {
        let mut t = Table::new(header(metric));
        for (fleet, reports) in &matrix {
            let mut row = vec![fleet.to_string()];
            row.extend(reports.iter().map(f));
            t.row(row);
        }
        t
    };

    let last = &matrix.last().expect("non-empty sweep").1;
    let get = |name: &str| last.iter().find(|r| r.scheme == name).expect("scheme ran");
    let mt = get("mT-Share");
    let ts = get("T-Share");
    let pg = get("pGreedyDP");
    let ns = get("No-Sharing");

    vec![
        ExperimentResult {
            id: "fig6",
            title: "served requests in the peak scenario vs. fleet size".into(),
            paper_expectation: "all grow with fleet; mT-Share serves the most (+42% vs T-Share, +36% vs pGreedyDP at max fleet); ridesharing ≫ No-Sharing".into(),
            table: mk_table("served", &|r| r.served.to_string()),
            notes: vec![format!(
                "at max fleet: mT-Share/T-Share = {:.2} (paper 1.42), mT-Share/pGreedyDP = {:.2} (paper 1.36), mT-Share/No-Sharing = {:.2}",
                mt.served as f64 / ts.served as f64,
                mt.served as f64 / pg.served as f64,
                mt.served as f64 / ns.served as f64,
            )],
        },
        ExperimentResult {
            id: "fig7",
            title: "response time in the peak scenario (ms)".into(),
            paper_expectation: "No-Sharing < T-Share < mT-Share ≪ pGreedyDP (mT-Share 4-10x faster than pGreedyDP); grows with fleet".into(),
            table: mk_table("resp ms", &|r| fmt(r.avg_response_ms, 2)),
            notes: vec![format!(
                "at max fleet: pGreedyDP/mT-Share response ratio = {:.2} (paper 4-10)",
                pg.avg_response_ms / mt.avg_response_ms.max(1e-9)
            )],
        },
        ExperimentResult {
            id: "tab3",
            title: "average number of candidate taxis per request (peak)".into(),
            paper_expectation: "No-Sharing < T-Share < mT-Share < pGreedyDP at every fleet size".into(),
            table: mk_table("candidates", &|r| fmt(r.avg_candidates, 1)),
            notes: vec![format!(
                "at max fleet: NS {:.1} < TS {:.1} ? mT {:.1} < pG {:.1}",
                ns.avg_candidates, ts.avg_candidates, mt.avg_candidates, pg.avg_candidates
            )],
        },
        ExperimentResult {
            id: "fig8",
            title: "detour time in the peak scenario (min)".into(),
            paper_expectation: "No-Sharing ≈ 0; T-Share smallest among sharing; mT-Share close second; pGreedyDP ≈ 2× T-Share; decreases with fleet".into(),
            table: mk_table("detour min", &|r| fmt(r.avg_detour_min, 2)),
            notes: vec![format!(
                "at max fleet: T-Share {:.2} ≤ mT-Share {:.2} ≤ pGreedyDP {:.2} min",
                ts.avg_detour_min, mt.avg_detour_min, pg.avg_detour_min
            )],
        },
        ExperimentResult {
            id: "fig9",
            title: "waiting time in the peak scenario (min)".into(),
            paper_expectation: "decreases with fleet; T-Share smallest; mT-Share slightly above pGreedyDP (< 0.5 min gap); No-Sharing ~1 min".into(),
            table: mk_table("waiting min", &|r| fmt(r.avg_waiting_min, 2)),
            notes: vec![format!(
                "at max fleet: gap mT-Share − pGreedyDP = {:.2} min (paper < 0.5)",
                mt.avg_waiting_min - pg.avg_waiting_min
            )],
        },
    ]
}
