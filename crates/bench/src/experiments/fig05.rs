//! Fig. 5 — statistics of the (synthetic) taxi data set.

use super::ExperimentResult;
use crate::runner::Env;
use crate::table::{fmt, Table};
use mtshare_sim::{stats, weekend_profile, workday_profile, WorkloadConfig, WorkloadGenerator};

/// Regenerates Fig. 5: (a) hourly taxi-utilization profile for a workday
/// and a weekend; (b) the trip travel-time distribution.
pub fn run(env: &Env) -> ExperimentResult {
    // Fig. 5(a) describes the *dataset's* fleet, which is several times the
    // simulated one (the GAIA trace covers far more taxis than any sweep
    // point); with ~10 requests per simulated taxi-hour and ~16-minute
    // trips, a 5x fleet lands utilization near the paper's 0.56.
    let fleet = env.scale.default_fleet * 5;
    let hourly_peak = env.scale.default_fleet * 10;

    let mut table = Table::new(vec!["hour", "workday util", "weekend util"]);
    let mut gen_wd = WorkloadGenerator::new(
        env.graph.clone(),
        WorkloadConfig { seed: 42, ..Default::default() },
    );
    let wd_stream = gen_wd.day_stream(&workday_profile(hourly_peak), 0.0);
    let mut gen_we = WorkloadGenerator::new(
        env.graph.clone(),
        WorkloadConfig { seed: 43, ..Default::default() },
    );
    let we_stream = gen_we.day_stream(&weekend_profile(hourly_peak * 2 / 3), 0.0);

    let util_wd = stats::hourly_utilization(&wd_stream, &env.cache, fleet, 24);
    let util_we = stats::hourly_utilization(&we_stream, &env.cache, fleet, 24);
    for h in 0..24 {
        table.row(vec![format!("{h:02}"), fmt(util_wd[h], 3), fmt(util_we[h], 3)]);
    }

    let q = stats::travel_time_distribution(&wd_stream, &env.cache, &[0.1, 0.25, 0.5, 0.75, 0.9]);
    let mut notes = vec![format!(
        "travel-time quantiles (min): {}",
        q.iter().map(|(p, m)| format!("p{:.0}={:.1}", p * 100.0, m)).collect::<Vec<_>>().join(" ")
    )];
    let p50 = q[2].1;
    let p90 = q[4].1;
    notes.push(format!(
        "paper Fig. 5(b): p50 ≈ 15 min, p90 ≈ 30 min — measured p50 = {p50:.1}, p90 = {p90:.1} \
         (p90/p50 ratio {:.2} vs paper's 2.0)",
        p90 / p50.max(1e-9)
    ));
    notes.push(format!(
        "workday 8-9am utilization {:.2} vs weekend 10-11am {:.2} (paper: 0.56 vs 0.41)",
        util_wd[8], util_we[10]
    ));

    ExperimentResult {
        id: "fig5",
        title: "dataset statistics: hourly utilization (a), travel-time distribution (b)".into(),
        paper_expectation:
            "workday peaks ~8-9am (util 0.56), weekend flatter (10-11am util 0.41); trip times p50 ≈ 15 min, p90 ≈ 30 min"
                .into(),
        table,
        notes,
    }
}
