//! Table IV — memory overhead of the ridesharing indexes.

use super::ExperimentResult;
use crate::runner::Env;
use crate::table::{fmt, Table};
use mtshare_core::PartitionStrategy;
use mtshare_sim::SchemeKind;

/// Runs the peak scenario at the maximum fleet (the paper's upper-bound
/// setting) and reports per-scheme index memory.
pub fn run(env: &Env) -> ExperimentResult {
    let fleet = *env.scale.fleets.last().expect("non-empty fleets");
    let scenario = env.scenario(env.peak(fleet));
    let ctx = env.context(&scenario.historical, env.scale.kappa, PartitionStrategy::Bipartite);

    let mut table = Table::new(vec!["scheme", "index KiB", "shared KiB", "total KiB"]);
    let mut mt_kib = (0.0, 0.0);
    let mut ts_kib = (0.0, 0.0);
    let mut pg_kib = (0.0, 0.0);
    for kind in SchemeKind::PEAK_SET {
        let c = kind.needs_context().then(|| ctx.clone());
        let r = env.run(&scenario, kind, c, None);
        let idx = r.index_memory_bytes as f64 / 1024.0;
        let shared = r.shared_memory_bytes as f64 / 1024.0;
        match r.scheme.as_str() {
            "mT-Share" => mt_kib = (idx, idx + shared),
            "T-Share" => ts_kib = (idx, idx + shared),
            "pGreedyDP" => pg_kib = (idx, idx + shared),
            _ => {}
        }
        table.row(vec![r.scheme.clone(), fmt(idx, 1), fmt(shared, 1), fmt(idx + shared, 1)]);
    }

    ExperimentResult {
        id: "tab4",
        title: "memory overhead of the ridesharing indexes (peak, max fleet)".into(),
        paper_expectation:
            "mT-Share's dual index (partitions + mobility clusters + transition tables) is ~16-40% larger than T-Share/pGreedyDP's grid index; absolute overhead negligible"
                .into(),
        table,
        notes: vec![
            format!(
                "total memory: mT-Share / T-Share = {:.2}, / pGreedyDP = {:.2} (paper 1.16 / 1.41 on totals incl. the shared shortest-path store)",
                mt_kib.1 / ts_kib.1.max(1e-9),
                mt_kib.1 / pg_kib.1.max(1e-9)
            ),
            format!(
                "index-only ratio is far larger here ({:.0}x) because mT-Share's context (transition tables + landmark cost matrices) is counted against tiny grid buckets, while the paper amortizes it into the precomputed-paths store",
                mt_kib.0 / ts_kib.0.max(1e-9)
            ),
        ],
    }
}
