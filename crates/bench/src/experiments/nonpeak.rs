//! Non-peak-scenario sweep: Figs. 10–13 from one fleet sweep.

use super::ExperimentResult;
use crate::runner::Env;
use crate::table::{fmt, Table};
use mtshare_core::PartitionStrategy;
use mtshare_sim::{SchemeKind, SimReport};

/// Runs the non-peak fleet sweep once and derives Figs. 10–13.
pub fn run(env: &Env) -> Vec<ExperimentResult> {
    let mut matrix: Vec<(usize, Vec<SimReport>)> = Vec::new();
    let mut ctx = None;
    for &fleet in &env.scale.fleets {
        let scenario = env.scenario(env.nonpeak(fleet));
        let ctx_ref = ctx
            .get_or_insert_with(|| {
                env.context(&scenario.historical, env.scale.kappa, PartitionStrategy::Bipartite)
            })
            .clone();
        let mut reports = Vec::new();
        for kind in SchemeKind::NONPEAK_SET {
            let c = kind.needs_context().then(|| ctx_ref.clone());
            reports.push(env.run(&scenario, kind, c, None));
        }
        eprintln!(
            "[nonpeak] fleet {fleet}: {}",
            reports
                .iter()
                .map(|r| format!(
                    "{}={}({}on+{}off)",
                    r.scheme, r.served, r.served_online, r.served_offline
                ))
                .collect::<Vec<_>>()
                .join(" ")
        );
        matrix.push((fleet, reports));
    }

    let labels: Vec<&str> = SchemeKind::NONPEAK_SET.iter().map(|k| k.label()).collect();
    let header = |metric: &str| {
        let mut h = vec![format!("taxis \\ {metric}")];
        h.extend(labels.iter().map(|s| s.to_string()));
        h
    };
    let mk_table = |metric: &str, f: &dyn Fn(&SimReport) -> String| {
        let mut t = Table::new(header(metric));
        for (fleet, reports) in &matrix {
            let mut row = vec![fleet.to_string()];
            row.extend(reports.iter().map(f));
            t.row(row);
        }
        t
    };

    let last = &matrix.last().expect("non-empty sweep").1;
    let get = |name: &str| last.iter().find(|r| r.scheme == name).expect("scheme ran");
    let mt = get("mT-Share");
    let pro = get("mT-Share_pro");
    let ts = get("T-Share");
    let pg = get("pGreedyDP");

    vec![
        ExperimentResult {
            id: "fig10",
            title: "served requests in the non-peak scenario vs. fleet size".into(),
            paper_expectation: "sharing advantage over No-Sharing shrinks; mT-Share_pro serves the most (+13-24% over mT-Share; +62% vs T-Share, +58% vs pGreedyDP)".into(),
            table: mk_table("served", &|r| r.served.to_string()),
            notes: vec![format!(
                "at max fleet: pro/mT = {:.2} (paper 1.13-1.24), pro/T-Share = {:.2} (paper 1.62), pro/pGreedyDP = {:.2} (paper 1.58)",
                pro.served as f64 / mt.served as f64,
                pro.served as f64 / ts.served as f64,
                pro.served as f64 / pg.served as f64,
            )],
        },
        ExperimentResult {
            id: "fig11",
            title: "response time in the non-peak scenario (ms)".into(),
            paper_expectation: "similar to peak for the four basic schemes; mT-Share_pro is 2.5-4.5x slower than mT-Share but still faster than pGreedyDP".into(),
            table: mk_table("resp ms", &|r| fmt(r.avg_response_ms, 2)),
            notes: vec![format!(
                "at max fleet: pro/mT response ratio = {:.2} (paper 2.5-4.5); pGreedyDP/pro = {:.2} (paper >1)",
                pro.avg_response_ms / mt.avg_response_ms.max(1e-9),
                pg.avg_response_ms / pro.avg_response_ms.max(1e-9)
            )],
        },
        ExperimentResult {
            id: "fig12",
            title: "detour time in the non-peak scenario (min)".into(),
            paper_expectation: "like the peak scenario for basic schemes; mT-Share_pro largest, but within ~0.5 min of pGreedyDP".into(),
            table: mk_table("detour min", &|r| fmt(r.avg_detour_min, 2)),
            notes: vec![format!(
                "at max fleet: pro − pGreedyDP detour gap = {:.2} min (paper ≤ 0.5)",
                pro.avg_detour_min - pg.avg_detour_min
            )],
        },
        ExperimentResult {
            id: "fig13",
            title: "waiting time in the non-peak scenario (min)".into(),
            paper_expectation: "larger than peak (fewer requests, longer pickups); decreases with fleet; mT-Share_pro largest (~2 min above pGreedyDP)".into(),
            table: mk_table("waiting min", &|r| fmt(r.avg_waiting_min, 2)),
            notes: vec![format!(
                "at max fleet: pro waiting {:.2} vs pGreedyDP {:.2} min",
                pro.avg_waiting_min, pg.avg_waiting_min
            )],
        },
    ]
}
