//! Dispatch scoring bench: per-query latency of the per-request
//! insertion DP (`insertion_dp`) vs the incremental dynamic-tree engine
//! (`dtree_update`) on a busy fleet, written to `BENCH_dispatch.json`.
//!
//! The fixture mirrors the simulator's steady state at high load:
//! capacity-4 taxis with 14-stop committed schedules and two riders
//! already onboard (mean occupancy ≥ 2), scored through the pinned
//! [`HotNodeOracle`] exactly as Algorithm 1 runs in production. The DP
//! re-issues Θ(m²) oracle queries per probe; the tree serves committed
//! legs from its spine cache and repeated probe legs from the
//! per-evaluation memo, so only Θ(m) distinct queries hit the oracle.
//! Headline target: ≥ 3× p95 speedup for `dtree_update`.
//!
//! Usage: `dispatch_bench [OUT.json]` (default: `BENCH_dispatch.json` at
//! the workspace root). `MTSHARE_BENCH_RUNS` overrides the repetition
//! count (default 15; per-call elementwise minimum is reported).

use mtshare_model::{
    DpEngine, DtreeEngine, RequestId, RequestStore, RideRequest, ScheduleEngine, Taxi, TaxiId,
    World,
};
use mtshare_road::{grid_city, GridCityConfig, NodeId};
use mtshare_routing::{HotNodeOracle, PathCache};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

const FLEET: usize = 24;
const PROBES: usize = 48;
const COMMITTED_PER_TAXI: usize = 8;
const ONBOARD_PER_TAXI: usize = 2;
const TARGET_SPEEDUP: f64 = 3.0;

struct Fixture {
    graph: Arc<mtshare_road::RoadNetwork>,
    cache: PathCache,
    oracle: HotNodeOracle,
    requests: RequestStore,
    taxis: Vec<Taxi>,
    probes: Vec<RideRequest>,
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(default_out);
    let runs: usize =
        std::env::var("MTSHARE_BENCH_RUNS").ok().and_then(|v| v.parse().ok()).unwrap_or(15).max(1);

    let f = build_fixture();
    let occupancy = mean_occupancy(&f);
    let mean_stops =
        f.taxis.iter().map(|t| t.schedule.len()).sum::<usize>() as f64 / f.taxis.len() as f64;
    assert!(occupancy >= 2.0, "fixture occupancy {occupancy} below the ≥2 bench regime");

    let dp = DpEngine;
    let dtree = DtreeEngine::new(f.taxis.len());

    // Warm every cache layer (oracle pins are precomputed; this syncs
    // the trees and faults in the spine leg costs) and prove the two
    // engines agree bit for bit on every sample this bench will time.
    let world = f.world();
    for taxi in &f.taxis {
        dtree.after_assign(taxi, &world);
    }
    let mut feasible = 0usize;
    for probe in &f.probes {
        for taxi in &f.taxis {
            let a =
                dp.best_insertion(taxi, probe, 0.0, &world, &mut |x, y| world.oracle.cost(x, y));
            let b =
                dtree.best_insertion(taxi, probe, 0.0, &world, &mut |x, y| world.oracle.cost(x, y));
            assert_eq!(
                a.map(|v| (v.i, v.j, v.delta_s.to_bits())),
                b.map(|v| (v.i, v.j, v.delta_s.to_bits())),
                "engines disagree on probe {:?} taxi {:?}",
                probe.id,
                taxi.id
            );
            feasible += a.is_some() as usize;
        }
    }

    let (dp_p95, dp_median) = best_latency(runs, &f, &dp);
    let (dt_p95, dt_median) = best_latency(runs, &f, &dtree);
    let speedup_p95 = dp_p95 / dt_p95;
    let speedup_median = dp_median / dt_median;
    let within_target = speedup_p95 >= TARGET_SPEEDUP;

    let stats = dtree.stats();
    let json = format!(
        concat!(
            r#"{{"schema":"mtshare-bench-dispatch/v1","#,
            r#""fleet":{{"taxis":{},"committed_per_taxi":{},"mean_occupancy":{:.2},"mean_stops":{:.1},"probes":{},"feasible_scores":{}}},"#,
            r#""p95_us":{{"insertion_dp":{:.2},"dtree_update":{:.2}}},"#,
            r#""median_us":{{"insertion_dp":{:.2},"dtree_update":{:.2}}},"#,
            r#""speedup_p95":{:.2},"speedup_median":{:.2},"#,
            r#""dtree":{{"legs_reused":{},"legs_filled":{},"memo_reuses":{},"memo_fills":{}}},"#,
            r#""target_speedup":{},"within_target":{}}}"#,
            "\n"
        ),
        FLEET,
        COMMITTED_PER_TAXI,
        occupancy,
        mean_stops,
        PROBES,
        feasible,
        dp_p95,
        dt_p95,
        dp_median,
        dt_median,
        speedup_p95,
        speedup_median,
        stats.legs_reused,
        stats.legs_filled,
        stats.memo_reuses,
        stats.memo_fills,
        TARGET_SPEEDUP,
        within_target,
    );
    std::fs::write(&out_path, &json).expect("write bench output");
    eprintln!(
        "[dispatch_bench] occupancy {occupancy:.1}, {mean_stops:.0} stops: p95 \
         insertion_dp {dp_p95:.1}µs vs dtree_update {dt_p95:.1}µs — {speedup_p95:.1}× \
         (target ≥{TARGET_SPEEDUP}×, median {speedup_median:.1}×)"
    );
    eprintln!("[dispatch_bench] wrote {out_path}");
    if !within_target {
        eprintln!("[dispatch_bench] WARNING: below target");
    }
}

/// Busy steady-state fleet: every taxi carries two onboard parties
/// (pickups already completed) plus six still-scheduled requests —
/// fourteen committed stops, occupancy 2 — on the 100×100 bench grid.
fn build_fixture() -> Fixture {
    let graph = Arc::new(grid_city(&GridCityConfig::default()).unwrap());
    let cache = PathCache::new(graph.clone());
    let mut oracle = HotNodeOracle::new(graph.clone());
    let mut requests = RequestStore::new();
    let mut rng = SmallRng::seed_from_u64(11);
    let n = graph.node_count() as u32;

    let add_request = |requests: &mut RequestStore,
                       oracle: &mut HotNodeOracle,
                       cache: &PathCache,
                       o: NodeId,
                       d: NodeId,
                       deadline: f64|
     -> RideRequest {
        let direct = cache.cost(o, d).expect("grid is connected");
        let req = RideRequest {
            id: RequestId(requests.len() as u32),
            release_time: 0.0,
            origin: o,
            destination: d,
            passengers: 1,
            deadline: if deadline > 0.0 { deadline } else { direct * 2.5 },
            direct_cost_s: direct,
            offline: false,
        };
        requests.push(req.clone());
        // Active requests keep their endpoints pinned, as in the
        // simulator.
        oracle.pin(o);
        oracle.pin(d);
        req
    };

    let mut taxis = Vec::with_capacity(FLEET);
    for t in 0..FLEET {
        let pos = NodeId(rng.gen_range(0..n));
        let mut taxi = Taxi::new(TaxiId(t as u32), 4, pos);
        oracle.pin(pos);
        // The first `ONBOARD_PER_TAXI` requests nest around the rest
        // (their dropoffs close the route), later ones ride as adjacent
        // pairs — so completing the leading pickups leaves the riders
        // onboard while the running load stays below capacity and every
        // probe still has feasible slots. Committed deadlines are
        // loose: the DP must do its full Θ(m²) sweep, not bail on a
        // violated plan.
        for k in 0..COMMITTED_PER_TAXI {
            let o = NodeId(rng.gen_range(0..n));
            let d = NodeId(rng.gen_range(0..n));
            let req = add_request(&mut requests, &mut oracle, &cache, o, d, 1e7);
            let (i, j) = if k < ONBOARD_PER_TAXI {
                (k, k + 1)
            } else {
                (2 * k - ONBOARD_PER_TAXI, 2 * k - ONBOARD_PER_TAXI + 1)
            };
            taxi.schedule = taxi.schedule.with_insertion(&req, i, j);
            taxi.assigned.push(req.id);
        }
        for _ in 0..ONBOARD_PER_TAXI {
            // Complete the first pickups: those riders are now onboard.
            taxi.complete_next_event(0.0);
        }
        taxi.route_version = 1;
        taxis.push(taxi);
    }

    let probes: Vec<RideRequest> = (0..PROBES)
        .map(|_| {
            let o = NodeId(rng.gen_range(0..n));
            let d = NodeId(rng.gen_range(0..n));
            add_request(&mut requests, &mut oracle, &cache, o, d, 0.0)
        })
        .collect();

    Fixture { graph, cache, oracle, requests, taxis, probes }
}

impl Fixture {
    fn world(&self) -> World<'_> {
        World {
            graph: &self.graph,
            cache: &self.cache,
            oracle: &self.oracle,
            taxis: &self.taxis,
            requests: &self.requests,
        }
    }
}

fn mean_occupancy(f: &Fixture) -> f64 {
    f.taxis.iter().map(|t| t.onboard_load(&f.requests) as f64).sum::<f64>() / f.taxis.len() as f64
}

/// Times every (probe, taxi) scoring call through `engine` and reports
/// (p95, median) in µs across calls — the same per-call span the
/// simulator records under the engine's stage. Each call's latency is
/// the elementwise minimum over `runs` repetitions: the code is
/// deterministic, so the minimum is the latency with scheduler and
/// cache noise stripped, and the p95 tail reflects the workload (long
/// schedules, many feasible slots), not the host.
fn best_latency(runs: usize, f: &Fixture, engine: &dyn ScheduleEngine) -> (f64, f64) {
    let world = f.world();
    let n = f.probes.len() * f.taxis.len();
    let mut mins = vec![f64::INFINITY; n];
    for _ in 0..runs {
        let mut idx = 0;
        for probe in &f.probes {
            for taxi in &f.taxis {
                let t0 = Instant::now();
                let r = engine
                    .best_insertion(taxi, probe, 0.0, &world, &mut |x, y| world.oracle.cost(x, y));
                let dt = t0.elapsed().as_secs_f64() * 1e6;
                std::hint::black_box(r);
                mins[idx] = mins[idx].min(dt);
                idx += 1;
            }
        }
    }
    mins.sort_by(f64::total_cmp);
    (mins[(n as f64 * 0.95) as usize - 1], mins[n / 2])
}

fn default_out() -> String {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("BENCH_dispatch.json")
        .to_string_lossy()
        .into_owned()
}
