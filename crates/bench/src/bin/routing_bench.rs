//! Routing engine bench: exact point-to-point latency for Dijkstra,
//! bidirectional Dijkstra, the contraction-hierarchy query and the
//! customizable-hierarchy (CCH) query, plus CH preprocessing seq-vs-par
//! scaling, CCH metric customization latency, and the bucket
//! many-to-many kernel vs per-pair queries, written to
//! `BENCH_routing.json`.
//!
//! Headline targets (all reflected in `within_target`):
//! - ≥ 5× median point-to-point speedup for CH over bidirectional
//!   Dijkstra on the largest default graph;
//! - parallel CH preprocessing ≥ 3× over the sequential build on a
//!   multicore host (on a single-core host the fork-join framing must
//!   cost ≤ 10% instead — there is nothing to scale onto);
//! - CCH re-customization of the 200×200 metric in ≤ 250 ms, the bar
//!   for millisecond-class traffic-shift response;
//! - one bucket sweep beating the same 64-source batch issued as
//!   individual point-to-point queries.
//!
//! Usage: `routing_bench [OUT.json]` (default: `BENCH_routing.json` at
//! the workspace root). `MTSHARE_BENCH_RUNS` overrides the repetition
//! count (default 3; best-of is reported). `MTSHARE_BENCH_SCALE=1` adds
//! the 400×400 (160 k node) tier, which is too slow for the default
//! debug-mode invocation.

use mtshare_road::{
    grid_city, ring_radial_city, GridCityConfig, NodeId, RingRadialConfig, RoadNetwork,
};
use mtshare_routing::{
    BidirDijkstra, ChBuckets, ChQuery, ContractionHierarchy, CustomizableCh, Dijkstra, PathCache,
    RouterBackend,
};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

const PAIRS: usize = 64;
const MM_SOURCES: usize = 64;
const WORKERS: usize = 4;
const TARGET_SPEEDUP: f64 = 5.0;
const TARGET_PAR_SPEEDUP: f64 = 3.0;
/// Max fork-join overhead tolerated when there is only one core.
const SINGLE_CORE_OVERHEAD: f64 = 1.10;
/// The parallel-preprocess gate only binds when the sequential build
/// takes at least this long: below it the measurement is dominated by
/// per-round fork-join setup and timer noise, not contraction work.
const PAR_GATE_MIN_SEQ_S: f64 = 0.5;
/// Customization latency bar, applied to the 200×200 tier.
const TARGET_CUSTOMIZE_MS: f64 = 250.0;

struct GraphReport {
    name: &'static str,
    nodes: usize,
    preprocess_s: f64,
    preprocess_par_s: f64,
    shortcuts: u64,
    customize_ms: f64,
    fill_arcs: u64,
    dijkstra_us: f64,
    bidir_us: f64,
    ch_us: f64,
    cch_us: f64,
    /// Whether the customize bar applies to this tier.
    gate_customize: bool,
}

impl GraphReport {
    fn speedup(&self) -> f64 {
        self.bidir_us / self.ch_us
    }

    fn par_speedup(&self) -> f64 {
        self.preprocess_s / self.preprocess_par_s
    }

    /// Per-tier gate: preprocessing must scale (or at least not regress)
    /// and — where the bar applies — customization must be fast enough.
    fn within_target(&self, multicore: bool) -> bool {
        let par_ok = if self.preprocess_s < PAR_GATE_MIN_SEQ_S {
            true // too little contraction work for the ratio to mean anything
        } else if multicore {
            self.par_speedup() >= TARGET_PAR_SPEEDUP
        } else {
            self.preprocess_par_s <= self.preprocess_s * SINGLE_CORE_OVERHEAD
        };
        let customize_ok = !self.gate_customize || self.customize_ms <= TARGET_CUSTOMIZE_MS;
        par_ok && customize_ok
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(default_out);
    let runs: usize =
        std::env::var("MTSHARE_BENCH_RUNS").ok().and_then(|v| v.parse().ok()).unwrap_or(3).max(1);
    let scale = std::env::var("MTSHARE_BENCH_SCALE").map(|v| v == "1").unwrap_or(false);
    let multicore = std::thread::available_parallelism().map(|p| p.get() > 1).unwrap_or(false);

    let medium =
        Arc::new(grid_city(&GridCityConfig { rows: 60, cols: 60, ..Default::default() }).unwrap());
    let chengdu = Arc::new(grid_city(&GridCityConfig::default()).unwrap());
    // The largest default graph: the scaled stand-in for the paper's
    // 214 k vertex Chengdu network, where the asymptotic gap shows.
    let large = Arc::new(grid_city(&GridCityConfig::large()).unwrap());

    // Non-grid synthetic shape: rings + radials stress the ordering
    // heuristics differently from the lattice tiers.
    let ring = Arc::new(ring_radial_city(&RingRadialConfig::default()).unwrap());

    let mut reports = vec![
        bench_graph("ring_radial", &ring, runs, false).0,
        bench_graph("grid_60x60", &medium, runs, false).0,
        bench_graph("grid_100x100", &chengdu, runs, false).0,
    ];
    let (r_large, ch_large) = bench_graph("grid_200x200", &large, runs, true);
    let large_speedup = r_large.speedup();
    reports.push(r_large);
    if scale {
        let huge = Arc::new(grid_city(&GridCityConfig::huge()).unwrap());
        reports.push(bench_graph("grid_400x400", &huge, runs, false).0);
    }
    let (bucket_ms, per_pair_ms) = bench_many_to_many(&large, ch_large, runs);
    let mm_speedup = per_pair_ms / bucket_ms;

    let within_target = large_speedup >= TARGET_SPEEDUP
        && mm_speedup > 1.0
        && reports.iter().all(|r| r.within_target(multicore));

    let mut json = String::new();
    json.push_str(r#"{"schema":"mtshare-bench-routing/v2","graphs":["#);
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            r#"{{"name":"{}","nodes":{},"preprocess_s":{:.3},"preprocess_par_s":{:.3},"par_workers":{WORKERS},"par_speedup":{:.2},"shortcuts":{},"customize_ms":{:.3},"cch_fill_arcs":{},"p2p_median_us":{{"dijkstra":{:.2},"bidirectional":{:.2},"ch":{:.2},"cch":{:.2}}},"ch_speedup_vs_bidir":{:.2},"within_target":{}}}"#,
            r.name,
            r.nodes,
            r.preprocess_s,
            r.preprocess_par_s,
            r.par_speedup(),
            r.shortcuts,
            r.customize_ms,
            r.fill_arcs,
            r.dijkstra_us,
            r.bidir_us,
            r.ch_us,
            r.cch_us,
            r.speedup(),
            r.within_target(multicore),
        );
    }
    let _ = write!(
        json,
        r#"],"many_to_many":{{"sources":{MM_SOURCES},"targets":1,"bucket_sweep_ms":{bucket_ms:.3},"per_pair_cached_ms":{per_pair_ms:.3},"speedup":{mm_speedup:.2}}},"target_speedup":{TARGET_SPEEDUP},"target_par_speedup":{TARGET_PAR_SPEEDUP},"target_customize_ms":{TARGET_CUSTOMIZE_MS},"multicore":{multicore},"within_target":{within_target}}}"#,
    );
    json.push('\n');
    std::fs::write(&out_path, &json).expect("write bench output");
    eprintln!(
        "[routing_bench] large-graph CH speedup {large_speedup:.1}× vs bidirectional \
         (target ≥{TARGET_SPEEDUP}×), many-to-many {mm_speedup:.1}×"
    );
    eprintln!("[routing_bench] wrote {out_path}");
    if !within_target {
        eprintln!("[routing_bench] WARNING: below target");
    }
}

/// Median per-query latency (µs) for each engine over the same random
/// pairs; best-of-`runs` medians are reported so scheduler noise only
/// helps, never hurts, the comparison. Preprocessing is built twice —
/// sequentially and with `WORKERS` workers — and the two artifacts are
/// asserted byte-identical, so the scaling numbers always describe the
/// same output.
fn bench_graph(
    name: &'static str,
    graph: &Arc<RoadNetwork>,
    runs: usize,
    gate_customize: bool,
) -> (GraphReport, Arc<ContractionHierarchy>) {
    let pairs = random_pairs(graph.node_count(), PAIRS, 1);

    let t0 = Instant::now();
    let ch_seq = ContractionHierarchy::build(graph, 1);
    let preprocess_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let ch = Arc::new(ContractionHierarchy::build(graph, WORKERS));
    let preprocess_par_s = t0.elapsed().as_secs_f64();
    assert_eq!(
        ch_seq.artifact_digest(),
        ch.artifact_digest(),
        "{name}: parallel build must be byte-identical to sequential"
    );
    let shortcuts = ch.shortcut_count();

    let cch = Arc::new(CustomizableCh::build(graph));
    let fill_arcs = cch.fill_arc_count();
    // Re-customization latency: the chaos-recovery path rebuilds the
    // whole metric from the (possibly traffic-shifted) graph.
    let mut customize_ms = f64::INFINITY;
    for _ in 0..runs {
        let t0 = Instant::now();
        cch.customize(graph);
        customize_ms = customize_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }

    let mut d = Dijkstra::new(graph);
    let dijkstra_us = best_median(runs, &pairs, |(s, t)| {
        let _ = d.cost(graph, s, t);
    });
    let mut bi = BidirDijkstra::new(graph);
    let bidir_us = best_median(runs, &pairs, |(s, t)| {
        let _ = bi.cost(graph, s, t);
    });
    let mut q = ChQuery::new(ch.clone());
    let ch_us = best_median(runs, &pairs, |(s, t)| {
        let _ = q.cost(s, t);
    });
    let mut cq = mtshare_routing::CchQuery::new(cch.clone());
    let cch_us = best_median(runs, &pairs, |(s, t)| {
        let _ = cq.cost(s, t);
    });
    let settled: usize = pairs
        .iter()
        .map(|&(s, t)| {
            let _ = q.cost(s, t);
            q.last_settled()
        })
        .sum::<usize>()
        / pairs.len();

    eprintln!(
        "[routing_bench] {name}: preprocess seq {preprocess_s:.2}s / par {preprocess_par_s:.2}s \
         ({shortcuts} shortcuts), customize {customize_ms:.1}ms ({fill_arcs} fill arcs), \
         p2p median dijkstra {dijkstra_us:.1}µs / bidir {bidir_us:.1}µs / ch {ch_us:.1}µs / \
         cch {cch_us:.1}µs (~{settled} settled)"
    );
    let report = GraphReport {
        name,
        nodes: graph.node_count(),
        preprocess_s,
        preprocess_par_s,
        shortcuts,
        customize_ms,
        fill_arcs,
        dijkstra_us,
        bidir_us,
        ch_us,
        cch_us,
        gate_customize,
    };
    (report, ch)
}

/// One bucket sweep answering `MM_SOURCES` → 1 target, vs the same batch
/// issued as individual CH-backed cache queries (ms). Both arms share
/// the warm hierarchy and run one untimed warm-up pass, so the
/// comparison is sweep-vs-queries — not first-touch allocation noise
/// (the v1 bench's per-pair arm paid cold bidirectional-Dijkstra misses,
/// overstating the bucket win).
fn bench_many_to_many(
    graph: &Arc<RoadNetwork>,
    ch: Arc<ContractionHierarchy>,
    runs: usize,
) -> (f64, f64) {
    let mut rng = SmallRng::seed_from_u64(7);
    let n = graph.node_count() as u32;
    let sources: Vec<NodeId> = (0..MM_SOURCES).map(|_| NodeId(rng.gen_range(0..n))).collect();
    let target = NodeId(rng.gen_range(0..n));

    let mut buckets = ChBuckets::new(ch.clone());
    let _ = buckets.many_to_one(&sources, target); // warm-up, untimed
    let mut bucket_ms = f64::INFINITY;
    for _ in 0..runs {
        let t0 = Instant::now();
        let costs = buckets.many_to_one(&sources, target);
        assert_eq!(costs.len(), sources.len());
        bucket_ms = bucket_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }

    let make_cache = || PathCache::with_backend(graph.clone(), RouterBackend::Ch(ch.clone()));
    let warm = make_cache(); // warm-up, untimed
    for &s in &sources {
        let _ = warm.cost(s, target);
    }
    let mut per_pair_ms = f64::INFINITY;
    for _ in 0..runs {
        let cache = make_cache(); // cold memo per run; the engine is warm
        let t0 = Instant::now();
        for &s in &sources {
            let _ = cache.cost(s, target);
        }
        per_pair_ms = per_pair_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    eprintln!(
        "[routing_bench] many-to-many {MM_SOURCES}×1: bucket sweep {bucket_ms:.2}ms, \
         per-pair cached {per_pair_ms:.2}ms"
    );
    (bucket_ms, per_pair_ms)
}

fn best_median(
    runs: usize,
    pairs: &[(NodeId, NodeId)],
    mut f: impl FnMut((NodeId, NodeId)),
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let mut samples: Vec<f64> = pairs
            .iter()
            .map(|&p| {
                let t0 = Instant::now();
                f(p);
                t0.elapsed().as_secs_f64() * 1e6
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        best = best.min(samples[samples.len() / 2]);
    }
    best
}

fn random_pairs(n_nodes: usize, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (NodeId(rng.gen_range(0..n_nodes as u32)), NodeId(rng.gen_range(0..n_nodes as u32)))
        })
        .collect()
}

fn default_out() -> String {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("BENCH_routing.json")
        .to_string_lossy()
        .into_owned()
}
