//! Routing engine bench: exact point-to-point latency for Dijkstra,
//! bidirectional Dijkstra, and the contraction-hierarchy query, plus the
//! bucket many-to-many kernel vs per-pair cached queries, written to
//! `BENCH_routing.json`.
//!
//! The headline target is a ≥ 5× median point-to-point speedup for CH
//! over bidirectional Dijkstra on the largest bench graph, and a win for
//! one `ChBuckets` sweep over issuing the same 64-source batch as
//! individual cold-cache queries.
//!
//! Usage: `routing_bench [OUT.json]` (default: `BENCH_routing.json` at
//! the workspace root). `MTSHARE_BENCH_RUNS` overrides the repetition
//! count (default 3; best-of is reported).

use mtshare_road::{grid_city, GridCityConfig, NodeId, RoadNetwork};
use mtshare_routing::{
    BidirDijkstra, ChBuckets, ChQuery, ContractionHierarchy, Dijkstra, PathCache,
};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

const PAIRS: usize = 64;
const MM_SOURCES: usize = 64;
const WORKERS: usize = 4;
const TARGET_SPEEDUP: f64 = 5.0;

struct GraphReport {
    name: &'static str,
    nodes: usize,
    preprocess_s: f64,
    shortcuts: u64,
    dijkstra_us: f64,
    bidir_us: f64,
    ch_us: f64,
}

impl GraphReport {
    fn speedup(&self) -> f64 {
        self.bidir_us / self.ch_us
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(default_out);
    let runs: usize =
        std::env::var("MTSHARE_BENCH_RUNS").ok().and_then(|v| v.parse().ok()).unwrap_or(3).max(1);

    let medium =
        Arc::new(grid_city(&GridCityConfig { rows: 60, cols: 60, ..Default::default() }).unwrap());
    let chengdu = Arc::new(grid_city(&GridCityConfig::default()).unwrap());
    // The largest bench graph: the scaled stand-in for the paper's 214 k
    // vertex Chengdu network, where the asymptotic gap actually shows.
    let large = Arc::new(grid_city(&GridCityConfig::large()).unwrap());

    let (r_medium, _) = bench_graph("grid_60x60", medium, runs);
    let (r_chengdu, _) = bench_graph("grid_100x100", chengdu, runs);
    let (r_large, ch_large) = bench_graph("grid_200x200", large.clone(), runs);
    let (bucket_ms, per_pair_ms) = bench_many_to_many(&large, ch_large, runs);
    let mm_speedup = per_pair_ms / bucket_ms;
    let reports = [r_medium, r_chengdu, r_large];

    let large_speedup = reports[2].speedup();
    let within_target = large_speedup >= TARGET_SPEEDUP && mm_speedup > 1.0;

    let mut json = String::new();
    json.push_str(r#"{"schema":"mtshare-bench-routing/v1","graphs":["#);
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            r#"{{"name":"{}","nodes":{},"preprocess_s":{:.3},"shortcuts":{},"p2p_median_us":{{"dijkstra":{:.2},"bidirectional":{:.2},"ch":{:.2}}},"ch_speedup_vs_bidir":{:.2}}}"#,
            r.name,
            r.nodes,
            r.preprocess_s,
            r.shortcuts,
            r.dijkstra_us,
            r.bidir_us,
            r.ch_us,
            r.speedup(),
        );
    }
    let _ = write!(
        json,
        r#"],"many_to_many":{{"sources":{MM_SOURCES},"targets":1,"bucket_sweep_ms":{bucket_ms:.3},"per_pair_cached_ms":{per_pair_ms:.3},"speedup":{mm_speedup:.2}}},"target_speedup":{TARGET_SPEEDUP},"within_target":{within_target}}}"#,
    );
    json.push('\n');
    std::fs::write(&out_path, &json).expect("write bench output");
    eprintln!(
        "[routing_bench] large-graph CH speedup {large_speedup:.1}× vs bidirectional \
         (target ≥{TARGET_SPEEDUP}×), many-to-many {mm_speedup:.1}×"
    );
    eprintln!("[routing_bench] wrote {out_path}");
    if !within_target {
        eprintln!("[routing_bench] WARNING: below target");
    }
}

/// Median per-query latency (µs) for each engine over the same random
/// pairs; best-of-`runs` medians are reported so scheduler noise only
/// helps, never hurts, the comparison.
fn bench_graph(
    name: &'static str,
    graph: Arc<RoadNetwork>,
    runs: usize,
) -> (GraphReport, Arc<ContractionHierarchy>) {
    let pairs = random_pairs(graph.node_count(), PAIRS, 1);

    let t0 = Instant::now();
    let ch = Arc::new(ContractionHierarchy::build(&graph, WORKERS));
    let preprocess_s = t0.elapsed().as_secs_f64();
    let shortcuts = ch.shortcut_count();

    let mut d = Dijkstra::new(&graph);
    let dijkstra_us = best_median(runs, &pairs, |(s, t)| {
        let _ = d.cost(&graph, s, t);
    });
    let mut bi = BidirDijkstra::new(&graph);
    let bidir_us = best_median(runs, &pairs, |(s, t)| {
        let _ = bi.cost(&graph, s, t);
    });
    let mut q = ChQuery::new(ch.clone());
    let ch_us = best_median(runs, &pairs, |(s, t)| {
        let _ = q.cost(s, t);
    });
    let settled: usize = pairs
        .iter()
        .map(|&(s, t)| {
            let _ = q.cost(s, t);
            q.last_settled()
        })
        .sum::<usize>()
        / pairs.len();

    eprintln!(
        "[routing_bench] {name}: preprocess {preprocess_s:.2}s ({shortcuts} shortcuts), \
         p2p median dijkstra {dijkstra_us:.1}µs / bidir {bidir_us:.1}µs / ch {ch_us:.1}µs \
         (~{settled} settled)"
    );
    let report = GraphReport {
        name,
        nodes: graph.node_count(),
        preprocess_s,
        shortcuts,
        dijkstra_us,
        bidir_us,
        ch_us,
    };
    (report, ch)
}

/// One bucket sweep answering `MM_SOURCES` → 1 target, vs the same batch
/// issued as individual cold-cache point-to-point queries (ms).
fn bench_many_to_many(
    graph: &Arc<RoadNetwork>,
    ch: Arc<ContractionHierarchy>,
    runs: usize,
) -> (f64, f64) {
    let mut rng = SmallRng::seed_from_u64(7);
    let n = graph.node_count() as u32;
    let sources: Vec<NodeId> = (0..MM_SOURCES).map(|_| NodeId(rng.gen_range(0..n))).collect();
    let target = NodeId(rng.gen_range(0..n));

    let mut buckets = ChBuckets::new(ch);
    let mut bucket_ms = f64::INFINITY;
    for _ in 0..runs {
        let t0 = Instant::now();
        let costs = buckets.many_to_one(&sources, target);
        assert_eq!(costs.len(), sources.len());
        bucket_ms = bucket_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }

    let mut per_pair_ms = f64::INFINITY;
    for _ in 0..runs {
        let cache = PathCache::new(graph.clone()); // cold per run
        let t0 = Instant::now();
        for &s in &sources {
            let _ = cache.cost(s, target);
        }
        per_pair_ms = per_pair_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    eprintln!(
        "[routing_bench] many-to-many {MM_SOURCES}×1: bucket sweep {bucket_ms:.2}ms, \
         per-pair cached {per_pair_ms:.2}ms"
    );
    (bucket_ms, per_pair_ms)
}

fn best_median(
    runs: usize,
    pairs: &[(NodeId, NodeId)],
    mut f: impl FnMut((NodeId, NodeId)),
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let mut samples: Vec<f64> = pairs
            .iter()
            .map(|&p| {
                let t0 = Instant::now();
                f(p);
                t0.elapsed().as_secs_f64() * 1e6
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        best = best.min(samples[samples.len() / 2]);
    }
    best
}

fn random_pairs(n_nodes: usize, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (NodeId(rng.gen_range(0..n_nodes as u32)), NodeId(rng.gen_range(0..n_nodes as u32)))
        })
        .collect()
}

fn default_out() -> String {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("BENCH_routing.json")
        .to_string_lossy()
        .into_owned()
}
