//! Persistence overhead bench: the batch-dispatch scenario with and
//! without checkpoint/WAL persistence, written to `BENCH_persist.json`.
//!
//! Reports checkpoint write latency (from the obs persistence
//! histograms), snapshot sizes, WAL volume, and the steady-state wall
//! clock overhead of running with `--checkpoint-every` at a realistic
//! cadence — the budget is ≤ 5%.
//!
//! Usage: `persist_bench [OUT.json]` (default: `BENCH_persist.json` at
//! the workspace root). `MTSHARE_BENCH_RUNS` overrides the per-config
//! repetition count (default 3; best-of is reported).

use mtshare_core::{MtShareConfig, PartitionStrategy};
use mtshare_obs::Obs;
use mtshare_road::{grid_city, GridCityConfig};
use mtshare_routing::PathCache;
use mtshare_sim::{
    build_context, PersistConfig, Scenario, ScenarioConfig, SchemeKind, SimConfig, Simulator,
};
use std::fmt::Write as _;
use std::sync::Arc;

const TAXIS: usize = 60;
const PARALLELISM: usize = 4;
const CHECKPOINT_EVERY: u64 = 256;
const TARGET_OVERHEAD_PCT: f64 = 5.0;

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(default_out);
    let runs: usize =
        std::env::var("MTSHARE_BENCH_RUNS").ok().and_then(|v| v.parse().ok()).unwrap_or(3).max(1);

    let graph = Arc::new(grid_city(&GridCityConfig::default()).expect("city"));
    let warm = PathCache::new(graph.clone());
    let scenario = Scenario::generate(graph.clone(), &warm, ScenarioConfig::peak(TAXIS));
    let ctx = build_context(&graph, &scenario.historical, 24, PartitionStrategy::Bipartite);

    let state_dir =
        std::env::temp_dir().join(format!("mtshare-persist-bench-{}", std::process::id()));

    eprintln!(
        "[persist_bench] {} runs per config, {TAXIS} taxis, {} requests",
        runs,
        scenario.requests.len()
    );
    let mut base_wall = f64::INFINITY;
    for _ in 0..runs {
        let (wall, _) = run_once(&graph, &scenario, &ctx, None);
        base_wall = base_wall.min(wall);
    }
    let mut persist_wall = f64::INFINITY;
    let mut summary = String::new();
    for _ in 0..runs {
        let pc =
            PersistConfig { checkpoint_every: CHECKPOINT_EVERY, ..PersistConfig::new(&state_dir) };
        let (wall, s) = run_once(&graph, &scenario, &ctx, Some(pc));
        if wall < persist_wall {
            persist_wall = wall;
            summary = s.expect("telemetry enabled");
        }
    }
    let _ = std::fs::remove_dir_all(&state_dir);

    let overhead_pct = (persist_wall - base_wall) / base_wall * 100.0;
    let persistence = section(&summary, "\"persistence\":");
    let checkpoints = field(persistence, "\"checkpoints\":");
    let wal_records = field(persistence, "\"wal_records\":");
    let wal_bytes = field(persistence, "\"wal_bytes\":");
    let bytes_block = section(persistence, "\"checkpoint_bytes\":");
    let write_block = section(persistence, "\"checkpoint_write_ms\":");

    let mut json = String::new();
    let _ = write!(
        json,
        r#"{{"schema":"mtshare-bench-persist/v1","scenario":{{"taxis":{TAXIS},"requests":{},"parallelism":{PARALLELISM},"checkpoint_every":{CHECKPOINT_EVERY}}},"baseline_wall_s":{base_wall:.4},"persist_wall_s":{persist_wall:.4},"overhead_pct":{overhead_pct:.2},"target_overhead_pct":{TARGET_OVERHEAD_PCT},"within_target":{},"checkpoints":{checkpoints},"wal_records":{wal_records},"wal_bytes":{wal_bytes},"checkpoint_bytes":{{"p50":{},"max":{}}},"checkpoint_write_ms":{{"p50":{},"p95":{},"max":{}}}}}"#,
        scenario.requests.len(),
        overhead_pct <= TARGET_OVERHEAD_PCT,
        field(bytes_block, "\"p50_b\":"),
        field(bytes_block, "\"max_b\":"),
        field(write_block, "\"p50_ms\":"),
        field(write_block, "\"p95_ms\":"),
        field(write_block, "\"max_ms\":"),
    );
    json.push('\n');
    std::fs::write(&out_path, &json).expect("write bench output");
    eprintln!(
        "[persist_bench] baseline {base_wall:.3}s, with persistence {persist_wall:.3}s \
         ({overhead_pct:+.2}% vs ≤{TARGET_OVERHEAD_PCT}% target)"
    );
    eprintln!("[persist_bench] wrote {out_path}");
}

/// One full simulation; telemetry aggregates are enabled in *both*
/// configurations (no sinks) so the comparison is apples-to-apples.
fn run_once(
    graph: &Arc<mtshare_road::RoadNetwork>,
    scenario: &Scenario,
    ctx: &Arc<mtshare_core::MobilityContext>,
    persist: Option<PersistConfig>,
) -> (f64, Option<String>) {
    let obs = Obs::enabled();
    let cache = PathCache::new(graph.clone());
    let mt_cfg = MtShareConfig::default().with_parallelism(PARALLELISM);
    let mut scheme =
        SchemeKind::MtShare.build(graph, scenario.taxis.len(), Some(ctx.clone()), Some(mt_cfg));
    let cfg = SimConfig { parallelism: PARALLELISM, persist, ..SimConfig::default() };
    let report = Simulator::new(graph.clone(), cache, scenario, cfg)
        .with_obs(obs.clone())
        .run(scheme.as_mut());
    (report.wall_clock_s, obs.summary_json())
}

/// Slice of `json` starting right after `key` (panics if absent: the
/// summary schema is ours, and silence would hide a broken extraction).
fn section<'a>(json: &'a str, key: &str) -> &'a str {
    let i = json.find(key).unwrap_or_else(|| panic!("summary lacks {key}"));
    &json[i + key.len()..]
}

/// The numeric literal following `key` (digits, sign, dot, exponent).
fn field(json: &str, key: &str) -> f64 {
    let s = section(json, key);
    let end = s
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(s.len());
    s[..end].parse().unwrap_or_else(|e| panic!("bad number after {key}: {e}"))
}

fn default_out() -> String {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("BENCH_persist.json")
        .to_string_lossy()
        .into_owned()
}
