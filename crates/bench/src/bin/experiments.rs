//! CLI: regenerate the paper's tables and figures.
//!
//! Usage:
//!   experiments `<id>`...    run specific experiments (fig6, tab3, ...)
//!   experiments all          run everything and rewrite EXPERIMENTS.md
//!   experiments list         list known ids
//!
//! `MTSHARE_SCALE=small` selects the CI scale.

use mtshare_bench::experiments::{render_markdown, run_all, run_experiment, ALL_IDS};
use mtshare_bench::{Env, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "list" {
        eprintln!("known experiments: {ALL_IDS:?} (or `all`)");
        if args.is_empty() {
            std::process::exit(2);
        }
        return;
    }
    let scale = Scale::from_env();
    eprintln!(
        "[experiments] scale={} city={}x{} fleets={:?}",
        scale.name, scale.city.rows, scale.city.cols, scale.fleets
    );
    let env = Env::new(scale.clone());

    if args.iter().any(|a| a == "all") {
        let t0 = std::time::Instant::now();
        let results = run_all(&env);
        for r in &results {
            println!("{r}");
        }
        let md = render_markdown(scale.name, &results);
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .join("EXPERIMENTS.md");
        std::fs::write(&path, md).expect("write EXPERIMENTS.md");
        eprintln!(
            "[experiments] wrote {} ({} results) in {:.1}s",
            path.display(),
            results.len(),
            t0.elapsed().as_secs_f64()
        );
        return;
    }

    let mut seen = std::collections::HashSet::new();
    for id in &args {
        for r in run_experiment(&env, id) {
            if seen.insert(r.id) {
                println!("{r}");
            }
        }
    }
}
