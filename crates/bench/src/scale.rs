//! Experiment scale presets.
//!
//! The paper runs on a 214 k-vertex map with fleets of 500–3000 taxis and
//! ~30 k requests/hour. The default scale shrinks everything by ~8× so the
//! full figure sweep runs on one machine while preserving the
//! demand-to-supply ratios that shape every result (see DESIGN.md).
//! `MTSHARE_SCALE=small` selects a CI-sized scale for smoke runs.

use mtshare_road::GridCityConfig;

/// One experiment scale.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Name shown in experiment headers.
    pub name: &'static str,
    /// Synthetic city.
    pub city: GridCityConfig,
    /// Fleet sizes for the sweeps (paper: 500..3000 step 500).
    pub fleets: Vec<usize>,
    /// Default fleet for the single-point experiments (paper: 2000).
    pub default_fleet: usize,
    /// Fixed request count for the peak scenario (the paper fixes demand
    /// at 29 534 requests and sweeps the fleet).
    pub peak_requests: usize,
    /// Fixed request count for the non-peak scenario (paper: 15 480).
    pub nonpeak_requests: usize,
    /// Partition count κ (paper default 150 on the full map).
    pub kappa: usize,
    /// κ sweep for Fig. 14(a) (paper: 50..250).
    pub kappa_sweep: Vec<usize>,
    /// Historical trips for the partitioner.
    pub n_historical: usize,
    /// Repetitions per experimental setting (paper: 10; scaled down).
    pub repeats: usize,
}

impl Scale {
    /// The default scale (~3.6 k vertices, 7.2 km × 7.2 km; calibrated so
    /// the taxi density (taxis/km²) at the sweep's upper end matches the
    /// paper's 3000 taxis on ~70 km² — candidate-set sizes then land in
    /// the paper's range and the schemes separate).
    pub fn default_scale() -> Self {
        Self {
            name: "default",
            city: GridCityConfig { rows: 60, cols: 60, ..GridCityConfig::default() },
            fleets: vec![100, 200, 300, 400, 500, 600],
            default_fleet: 400,
            peak_requests: 4500,
            nonpeak_requests: 2400,
            kappa: 64,
            kappa_sweep: vec![16, 32, 64, 96, 128],
            n_historical: 20_000,
            repeats: 1,
        }
    }

    /// A CI-sized scale (~1.6 k vertices; seconds per sweep).
    pub fn small() -> Self {
        Self {
            name: "small",
            city: GridCityConfig { rows: 40, cols: 40, ..GridCityConfig::default() },
            fleets: vec![12, 24, 36],
            default_fleet: 24,
            peak_requests: 360,
            nonpeak_requests: 180,
            kappa: 24,
            kappa_sweep: vec![12, 24, 48],
            n_historical: 4000,
            repeats: 1,
        }
    }

    /// Reads `MTSHARE_SCALE` (`small` | `default`). `MTSHARE_FLEETS`
    /// (comma-separated) overrides the fleet sweep for quick probes.
    pub fn from_env() -> Self {
        let mut scale = match std::env::var("MTSHARE_SCALE").as_deref() {
            Ok("small") => Self::small(),
            _ => Self::default_scale(),
        };
        if let Ok(fleets) = std::env::var("MTSHARE_FLEETS") {
            let parsed: Vec<usize> =
                fleets.split(',').filter_map(|f| f.trim().parse().ok()).collect();
            if !parsed.is_empty() {
                scale.default_fleet = parsed[parsed.len() / 2];
                scale.fleets = parsed;
            }
        }
        scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleets_env_override_parses() {
        std::env::set_var("MTSHARE_FLEETS", "10, 20,30");
        let s = Scale::from_env();
        std::env::remove_var("MTSHARE_FLEETS");
        assert_eq!(s.fleets, vec![10, 20, 30]);
        assert_eq!(s.default_fleet, 20);
    }

    #[test]
    fn scales_are_ordered() {
        let s = Scale::small();
        let d = Scale::default_scale();
        assert!(s.city.rows < d.city.rows);
        assert!(s.fleets.last().unwrap() < d.fleets.last().unwrap());
        assert!(s.kappa < d.kappa);
        assert!(d.fleets.contains(&d.default_fleet));
        assert!(s.fleets.contains(&s.default_fleet));
    }
}
