//! Experiment harness for the mT-Share reproduction.
//!
//! - [`scale`]: experiment scale presets (paper-scale shrunk ~8×);
//! - [`runner`]: the shared environment (city, cache, scheme matrix);
//! - [`experiments`]: one runner per table/figure of Sec. V;
//! - [`table`]: plain-text / markdown table rendering.
//!
//! The `experiments` binary drives everything:
//! `cargo run --release -p mtshare-bench --bin experiments -- all`.

#![warn(missing_docs)]

pub mod experiments;
pub mod runner;
pub mod scale;
pub mod table;

pub use runner::Env;
pub use scale::Scale;
