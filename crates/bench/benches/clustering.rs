//! Mobility-clustering microbenches (DESIGN.md decision #3): the paper
//! claims incremental cluster maintenance has "negligible computation
//! overheads" — measure insert/remove/match against k-means rebuilds.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mtshare_mobility::{kmeans, MobilityClusterer, MobilityVector};
use mtshare_road::GeoPoint;
use rand::{rngs::SmallRng, Rng, SeedableRng};

fn random_vectors(n: usize, seed: u64) -> Vec<MobilityVector> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let o = GeoPoint::new(30.6 + rng.gen_range(0.0..0.1), 104.0 + rng.gen_range(0.0..0.1));
            let d = GeoPoint::new(30.6 + rng.gen_range(0.0..0.1), 104.0 + rng.gen_range(0.0..0.1));
            MobilityVector::new(o, d)
        })
        .collect()
}

fn bench_incremental(c: &mut Criterion) {
    let vectors = random_vectors(2000, 1);
    let mut group = c.benchmark_group("mobility_clustering");

    group.bench_function("insert_2000", |b| {
        b.iter_batched(
            || MobilityClusterer::new(std::f64::consts::FRAC_1_SQRT_2),
            |mut cl| {
                for v in &vectors {
                    cl.insert(v);
                }
                cl.len()
            },
            BatchSize::SmallInput,
        )
    });

    // Steady-state single insert+remove against a populated clusterer.
    // Re-insertion may land in a different cluster as the means drift, so
    // track each vector's current cluster id.
    let mut steady = MobilityClusterer::new(std::f64::consts::FRAC_1_SQRT_2);
    let mut ids: Vec<_> = vectors.iter().map(|v| steady.insert(v)).collect();
    group.bench_function("steady_state_update", |b| {
        let mut i = 0;
        b.iter(|| {
            let k = i % vectors.len();
            i += 1;
            steady.remove(ids[k], &vectors[k]);
            ids[k] = steady.insert(&vectors[k]);
            ids[k]
        })
    });

    group.bench_function("best_match", |b| {
        let mut i = 0;
        b.iter(|| {
            let k = i % vectors.len();
            i += 1;
            steady.best_match(&vectors[k])
        })
    });
    group.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(2);
    let data: Vec<f64> = (0..2000 * 2).map(|_| rng.gen_range(0.0..100.0)).collect();
    c.bench_function("kmeans_2000x2_k20", |b| b.iter(|| kmeans(&data, 2, 20, 7, 20)));
}

criterion_group!(benches, bench_incremental, bench_kmeans);
criterion_main!(benches);
