//! Routing microbenches + the partition-filtering ablation (DESIGN.md
//! decision #2): full-graph Dijkstra vs bidirectional vs A* vs the
//! filtered-subgraph search, and cold-vs-warm cache behaviour.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mtshare_core::{MobilityContext, MtShareConfig, PartitionStrategy, SegmentRouter};
use mtshare_mobility::Trip;
use mtshare_road::{grid_city, GridCityConfig, NodeId};
use mtshare_routing::{
    AStar, Alt, BidirDijkstra, ChQuery, ContractionHierarchy, Dijkstra, PathCache,
};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::sync::Arc;

fn random_pairs(n_nodes: usize, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (NodeId(rng.gen_range(0..n_nodes as u32)), NodeId(rng.gen_range(0..n_nodes as u32)))
        })
        .collect()
}

fn bench_point_to_point(c: &mut Criterion) {
    let graph =
        Arc::new(grid_city(&GridCityConfig { rows: 60, cols: 60, ..Default::default() }).unwrap());
    let pairs = random_pairs(graph.node_count(), 64, 1);
    let mut group = c.benchmark_group("point_to_point");

    let mut d = Dijkstra::new(&graph);
    group.bench_function("dijkstra", |b| {
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            d.cost(&graph, s, t)
        })
    });

    let mut bi = BidirDijkstra::new(&graph);
    group.bench_function("bidirectional", |b| {
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            bi.cost(&graph, s, t)
        })
    });

    let mut a = AStar::new(&graph);
    group.bench_function("astar", |b| {
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            a.cost(&graph, s, t)
        })
    });

    // ALT with a 16-landmark grid spread (precompute excluded from timing).
    let n = graph.node_count() as u32;
    let landmarks: Vec<NodeId> = (0..16u32).map(|k| NodeId(k * (n / 16) + n / 32)).collect();
    let mut alt = Alt::with_landmarks(&graph, &landmarks);
    group.bench_function("alt_16_landmarks", |b| {
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            alt.cost(&graph, s, t)
        })
    });

    // Contraction hierarchy (preprocessing excluded from timing).
    let ch = Arc::new(ContractionHierarchy::build(&graph, 4));
    let mut chq = ChQuery::new(ch);
    group.bench_function("contraction_hierarchy", |b| {
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            chq.cost(s, t)
        })
    });
    group.finish();
}

fn bench_filtered_vs_full(c: &mut Criterion) {
    let graph =
        Arc::new(grid_city(&GridCityConfig { rows: 60, cols: 60, ..Default::default() }).unwrap());
    let mut rng = SmallRng::seed_from_u64(2);
    let trips: Vec<_> = (0..4000)
        .map(|_| Trip {
            origin: NodeId(rng.gen_range(0..graph.node_count() as u32)),
            destination: NodeId(rng.gen_range(0..graph.node_count() as u32)),
        })
        .collect();
    let ctx = MobilityContext::build(&graph, &trips, 48, 8, 7, PartitionStrategy::Bipartite);
    let cfg = MtShareConfig::default();
    let cache = PathCache::new(graph.clone());
    let pairs = random_pairs(graph.node_count(), 64, 3);

    let mut group = c.benchmark_group("segment_routing");
    let mut router = SegmentRouter::new(&graph);
    group.bench_function("filtered_basic_leg", |b| {
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            router.basic_leg(&graph, &ctx, &cfg, &cache, s, t)
        })
    });
    let mut full = BidirDijkstra::new(&graph);
    group.bench_function("full_graph_leg", |b| {
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            full.path(&graph, s, t)
        })
    });
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let graph =
        Arc::new(grid_city(&GridCityConfig { rows: 60, cols: 60, ..Default::default() }).unwrap());
    let pairs = random_pairs(graph.node_count(), 256, 4);
    let mut group = c.benchmark_group("path_cache");

    group.bench_function("cold", |b| {
        b.iter_batched(
            || PathCache::new(graph.clone()),
            |cache| {
                for &(s, t) in pairs.iter().take(16) {
                    let _ = cache.cost(s, t);
                }
            },
            BatchSize::SmallInput,
        )
    });

    let warm = PathCache::new(graph.clone());
    for &(s, t) in &pairs {
        let _ = warm.cost(s, t);
    }
    group.bench_function("warm", |b| {
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            warm.cost(s, t)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_point_to_point, bench_filtered_vs_full, bench_cache);
criterion_main!(benches);
