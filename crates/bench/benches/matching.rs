//! Per-request matching latency (the Fig. 7/11 metric as a microbench):
//! candidate searching + taxi scheduling for each scheme against the same
//! fleet snapshot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtshare_core::{MtShareConfig, PartitionStrategy};
use mtshare_model::{DispatchScheme, RequestStore, RideRequest, World};
use mtshare_road::grid_city;
use mtshare_routing::{HotNodeOracle, PathCache};
use mtshare_sim::{build_context, Scenario, ScenarioConfig, SchemeKind};
use std::sync::Arc;

fn bench_dispatch(c: &mut Criterion) {
    let cfg = ScenarioConfig::peak(60);
    let graph = Arc::new(
        grid_city(&mtshare_road::GridCityConfig { rows: 60, cols: 60, ..Default::default() })
            .unwrap(),
    );
    let cache = PathCache::new(graph.clone());
    let scenario = Scenario::generate(graph.clone(), &cache, cfg);
    let ctx = build_context(&graph, &scenario.historical, 48, PartitionStrategy::Bipartite);
    let oracle = HotNodeOracle::new(graph.clone());

    // Pin every request endpoint so leg-cost probes are O(1), as in the
    // simulator.
    let mut requests = RequestStore::new();
    for r in &scenario.requests {
        oracle.pin(r.origin);
        oracle.pin(r.destination);
        requests.push(r.clone());
    }
    let taxis = scenario.taxis.clone();

    let mut group = c.benchmark_group("dispatch_per_request");
    for kind in SchemeKind::NONPEAK_SET {
        let mut scheme =
            kind.build(&graph, taxis.len(), kind.needs_context().then(|| ctx.clone()), None);
        {
            let world = World {
                graph: &graph,
                cache: &cache,
                oracle: &oracle,
                taxis: &taxis,
                requests: &requests,
            };
            scheme.install(&world);
        }
        group.bench_function(kind.label(), |b| {
            let mut i = 0usize;
            b.iter(|| {
                let req = &scenario.requests[i % scenario.requests.len()];
                i += 1;
                let world = World {
                    graph: &graph,
                    cache: &cache,
                    oracle: &oracle,
                    taxis: &taxis,
                    requests: &requests,
                };
                scheme.dispatch(req, req.release_time, &world)
            })
        });
    }
    group.finish();
}

/// Speculative batch scoring, sequential vs parallel workers, over one
/// fixed window of online requests (the tentpole of the parallel batch
/// dispatcher: identical outputs, wall-clock scaling with threads).
fn bench_batch_dispatch(c: &mut Criterion) {
    let cfg = ScenarioConfig::peak(60);
    let graph = Arc::new(
        grid_city(&mtshare_road::GridCityConfig { rows: 60, cols: 60, ..Default::default() })
            .unwrap(),
    );
    let cache = PathCache::new(graph.clone());
    let scenario = Scenario::generate(graph.clone(), &cache, cfg);
    let ctx = build_context(&graph, &scenario.historical, 48, PartitionStrategy::Bipartite);
    let oracle = HotNodeOracle::new(graph.clone());

    let mut requests = RequestStore::new();
    for r in &scenario.requests {
        oracle.pin(r.origin);
        oracle.pin(r.destination);
        requests.push(r.clone());
    }
    let taxis = scenario.taxis.clone();
    let batch: Vec<RideRequest> =
        scenario.requests.iter().filter(|r| !r.offline).take(64).cloned().collect();

    let mut group = c.benchmark_group("batch_dispatch_64");
    for workers in [1usize, 2, 4, 8] {
        let mt_cfg = MtShareConfig::default().with_parallelism(workers);
        let mut scheme =
            SchemeKind::MtShare.build(&graph, taxis.len(), Some(ctx.clone()), Some(mt_cfg));
        {
            let world = World {
                graph: &graph,
                cache: &cache,
                oracle: &oracle,
                taxis: &taxis,
                requests: &requests,
            };
            scheme.install(&world);
        }
        let id = if workers == 1 { "seq".to_string() } else { format!("par{workers}") };
        group.bench_function(BenchmarkId::from_parameter(id), |b| {
            b.iter(|| {
                let world = World {
                    graph: &graph,
                    cache: &cache,
                    oracle: &oracle,
                    taxis: &taxis,
                    requests: &requests,
                };
                scheme.dispatch_batch_speculative(&batch, &world)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch, bench_batch_dispatch);
criterion_main!(benches);
