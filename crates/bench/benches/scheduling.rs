//! Scheduling ablation (DESIGN.md decision #4): the O(m²) insertion DP vs
//! brute-force enumeration vs exhaustive reordering, as schedule depth
//! grows — quantifying what the paper's insertion heuristic buys and
//! costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtshare_model::{
    best_insertion, best_reordering, evaluate_schedule, EvalContext, RequestId, RequestStore,
    RideRequest, Taxi, TaxiId, World,
};
use mtshare_road::{grid_city, GridCityConfig, NodeId};
use mtshare_routing::{HotNodeOracle, PathCache};
use std::sync::Arc;

struct Fx {
    graph: Arc<mtshare_road::RoadNetwork>,
    cache: PathCache,
    oracle: HotNodeOracle,
    requests: RequestStore,
}

impl Fx {
    fn new() -> Self {
        let graph = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let cache = PathCache::new(graph.clone());
        let oracle = HotNodeOracle::new(graph.clone());
        Self { graph, cache, oracle, requests: RequestStore::new() }
    }

    fn req(&mut self, o: u32, d: u32, rho: f64) -> RideRequest {
        let direct = self.cache.cost(NodeId(o), NodeId(d)).unwrap();
        self.oracle.pin(NodeId(o));
        self.oracle.pin(NodeId(d));
        let r = RideRequest {
            id: RequestId(self.requests.len() as u32),
            release_time: 0.0,
            origin: NodeId(o),
            destination: NodeId(d),
            passengers: 1,
            deadline: direct * rho,
            direct_cost_s: direct,
            offline: false,
        };
        self.requests.push(r.clone());
        r
    }
}

fn busy_taxi(f: &mut Fx, depth: usize) -> Taxi {
    let mut taxi = Taxi::new(TaxiId(0), 8, NodeId(0));
    let chain = [(20u32, 340u32), (42, 320), (64, 300)];
    for &(o, d) in chain.iter().take(depth) {
        let r = f.req(o, d, 10.0);
        let m = taxi.schedule.len();
        taxi.schedule = taxi.schedule.with_insertion(&r, m, m + 1);
        taxi.assigned.push(r.id);
    }
    taxi
}

fn brute_force(taxi: &Taxi, req: &RideRequest, world: &World<'_>) -> Option<f64> {
    let requests = world.requests;
    let lookup = |r| requests.get(r);
    let ectx = EvalContext {
        start_node: taxi.position_at(0.0),
        start_time: 0.0,
        initial_load: 0,
        capacity: taxi.capacity as u32,
        requests: &lookup,
    };
    let m = taxi.schedule.len();
    let mut best = None;
    for i in 0..=m {
        for j in (i + 1)..=(m + 1) {
            let s = taxi.schedule.with_insertion(req, i, j);
            if let Some(e) = evaluate_schedule(&s, &ectx, |a, b| world.oracle.cost(a, b)) {
                if best.is_none_or(|b| e.total_cost_s < b) {
                    best = Some(e.total_cost_s);
                }
            }
        }
    }
    best
}

fn bench_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("insertion_operator");
    for depth in [0usize, 1, 2, 3] {
        let mut f = Fx::new();
        let taxi = busy_taxi(&mut f, depth);
        let probe = f.req(86, 280, 10.0);
        let taxis = [taxi];

        group.bench_with_input(BenchmarkId::new("slack_dp", depth), &depth, |b, _| {
            let world = World {
                graph: &f.graph,
                cache: &f.cache,
                oracle: &f.oracle,
                taxis: &taxis,
                requests: &f.requests,
            };
            b.iter(|| {
                best_insertion(&taxis[0], &probe, 0.0, &world, |x, y| world.oracle.cost(x, y))
            })
        });
        group.bench_with_input(BenchmarkId::new("brute_force", depth), &depth, |b, _| {
            let world = World {
                graph: &f.graph,
                cache: &f.cache,
                oracle: &f.oracle,
                taxis: &taxis,
                requests: &f.requests,
            };
            b.iter(|| brute_force(&taxis[0], &probe, &world))
        });
        group.bench_with_input(BenchmarkId::new("exhaustive_reorder", depth), &depth, |b, _| {
            let world = World {
                graph: &f.graph,
                cache: &f.cache,
                oracle: &f.oracle,
                taxis: &taxis,
                requests: &f.requests,
            };
            b.iter(|| {
                best_reordering(&taxis[0], &probe, 0.0, &world, |x, y| world.oracle.cost(x, y))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scheduling);
criterion_main!(benches);
