//! Map-partitioning build costs: the bipartite partitioner vs the grid
//! baseline (both are offline/periodic per Sec. IV-B1, but build cost
//! matters for the Fig. 14(a) κ sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use mtshare_mobility::{bipartite_partition, grid_partition, BipartiteConfig, Trip};
use mtshare_road::{grid_city, GridCityConfig, NodeId};
use rand::{rngs::SmallRng, Rng, SeedableRng};

fn bench_partitioners(c: &mut Criterion) {
    let graph = grid_city(&GridCityConfig { rows: 50, cols: 50, ..Default::default() }).unwrap();
    let mut rng = SmallRng::seed_from_u64(1);
    let trips: Vec<_> = (0..5000)
        .map(|_| Trip {
            origin: NodeId(rng.gen_range(0..graph.node_count() as u32)),
            destination: NodeId(rng.gen_range(0..graph.node_count() as u32)),
        })
        .collect();

    let mut group = c.benchmark_group("map_partitioning");
    group.sample_size(10);
    group.bench_function("bipartite_k32", |b| {
        b.iter(|| {
            bipartite_partition(
                &graph,
                &trips,
                &BipartiteConfig { kappa: 32, kt: 6, ..Default::default() },
            )
        })
    });
    group.bench_function("grid_k32", |b| b.iter(|| grid_partition(&graph, 32)));
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
