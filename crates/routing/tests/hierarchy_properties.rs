//! Property suite for the hierarchy builders: on random synthetic
//! graphs, the parallel contraction-hierarchy build must emit an
//! artifact byte-identical to the sequential one at any worker count,
//! and the customizable hierarchy must answer bit-identical to a plain
//! Dijkstra on the *current* metric after any sequence of random
//! traffic-shift windows (apply → query → restore → query).

use mtshare_road::{apply_traffic_shifts, grid_city, GridCityConfig, NodeId, TrafficShiftSpec};
use mtshare_routing::{CchQuery, ContractionHierarchy, CustomizableCh, Dijkstra};
use proptest::prelude::*;
use std::sync::Arc;

/// A small random grid: shape and seed both vary so the contraction
/// order, the tie-breaks, and the independent-set rounds all differ
/// between cases.
fn small_grid(rows: usize, cols: usize, seed: u64) -> GridCityConfig {
    GridCityConfig { rows, cols, seed, ..GridCityConfig::tiny() }
}

/// Random query pairs from a deterministic LCG so failures replay.
fn pairs(n: u32, mut seed: u64, count: usize) -> Vec<(NodeId, NodeId)> {
    (0..count)
        .map(|_| {
            let mut next = || {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (seed >> 33) as u32 % n
            };
            (NodeId(next()), NodeId(next()))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The determinism contract of the level-synchronous parallel build:
    /// the persisted artifact (and hence its digest) must not depend on
    /// the worker count.
    #[test]
    fn parallel_ch_artifacts_are_byte_identical_to_sequential(
        rows in 3usize..=8,
        cols in 3usize..=8,
        seed in 0u64..10_000,
    ) {
        let graph = grid_city(&small_grid(rows, cols, seed)).unwrap();
        let reference = ContractionHierarchy::build(&graph, 1);
        for workers in [2usize, 4] {
            let par = ContractionHierarchy::build(&graph, workers);
            prop_assert_eq!(
                par.artifact_digest(),
                reference.artifact_digest(),
                "workers={} diverges on {}x{} seed {}",
                workers, rows, cols, seed
            );
        }
    }

    /// CCH exactness under re-customization: after applying a random
    /// traffic-shift window the customized hierarchy must agree with
    /// Dijkstra on the shifted graph bit for bit, and restoring the base
    /// metric must bring it back to base-Dijkstra agreement.
    #[test]
    fn cch_matches_dijkstra_across_random_traffic_shifts(
        rows in 3usize..=7,
        cols in 3usize..=7,
        seed in 0u64..10_000,
        center in 0u32..10_000,
        radius_m in 150.0f64..2500.0,
        factor_x100 in 110u32..=500,
        pair_seed in 0u64..10_000,
    ) {
        let base = Arc::new(grid_city(&small_grid(rows, cols, seed)).unwrap());
        let n = base.node_count() as u32;
        let spec = TrafficShiftSpec {
            center: NodeId(center % n),
            radius_m,
            factor: f64::from(factor_x100) / 100.0,
            start_s: 0.0,
            duration_s: 1.0,
        };
        let shifted = Arc::new(apply_traffic_shifts(&base, &[spec]).unwrap());

        let cch = Arc::new(CustomizableCh::build(&base));
        let mut q = CchQuery::new(cch.clone());
        let mut d = Dijkstra::new(&base);
        let queries = pairs(n, pair_seed, 12);

        cch.customize(&shifted);
        for &(s, t) in &queries {
            prop_assert_eq!(
                q.cost(s, t),
                d.cost(&shifted, s, t),
                "shifted metric diverges {}->{} (factor {}, radius {})",
                s, t, spec.factor, spec.radius_m
            );
        }

        cch.customize(&base);
        for &(s, t) in &queries {
            prop_assert_eq!(
                q.cost(s, t),
                d.cost(&base, s, t),
                "restored base metric diverges {}->{}", s, t
            );
        }
    }
}
