//! Shortest-path engines for mT-Share.
//!
//! Route planning "usually bottlenecks the efficiency of taxi scheduling"
//! (Sec. IV-C2), so this crate provides a family of engines tuned for the
//! query mix the system issues:
//!
//! - [`Dijkstra`]: single-source engine with one-to-all / all-to-one modes;
//! - [`BidirDijkstra`]: point-to-point queries (backs the shared cache);
//! - [`AStar`]: goal-directed exact queries with a geographic heuristic;
//! - [`Alt`]: A* with landmark (triangle-inequality) lower bounds reusing
//!   the partition landmark tables;
//! - [`MaskedDijkstra`] + [`NodeMask`]: subgraph search for the paper's
//!   two-phase (partition-filtered) routing, with optional vertex weights
//!   for probabilistic routing;
//! - [`ContractionHierarchy`] + [`ChQuery`] + [`ChBuckets`]: preprocessed
//!   exact engine with bucket many-to-many batch queries, persistable as a
//!   CRC-framed artifact (see the [`ch`] module docs);
//! - [`PathCache`]: the memoizing oracle standing in for the paper's cached
//!   all-pairs table, with a pluggable exact backend ([`RouterBackend`]);
//! - [`CostMatrix`]: dense landmark-to-everything cost tables.

#![warn(missing_docs)]

pub mod alt;
pub mod astar;
pub mod bidirectional;
pub mod cache;
pub mod cch;
pub mod ch;
pub mod dijkstra;
pub mod masked;
pub mod matrix;
pub mod oracle;
pub mod order;
pub mod path;

pub use alt::Alt;
pub use astar::AStar;
pub use bidirectional::BidirDijkstra;
pub use cache::{CacheStats, PathCache, RouterBackend};
pub use cch::{CchBuckets, CchMetric, CchQuery, CchStats, CustomizableCh};
pub use ch::{ChBuckets, ChQuery, ChStats, ContractionHierarchy};
pub use dijkstra::{bellman_ford_cost, Dijkstra};
pub use masked::{MaskedDijkstra, NodeMask};
pub use matrix::CostMatrix;
pub use oracle::{HotNodeOracle, OracleStats, PinnedReader};
pub use order::NodeOrder;
pub use path::Path;
