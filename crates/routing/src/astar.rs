//! A* search with a straight-line admissible heuristic.
//!
//! The heuristic is `geo_distance / max_edge_speed`, which never
//! overestimates travel time, so A* returns exact shortest paths while
//! settling far fewer vertices than Dijkstra on goal-directed queries.

use crate::dijkstra::HeapEntry;
use crate::path::Path;
use mtshare_road::{GeoPoint, NodeId, RoadNetwork};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reusable A* engine.
#[derive(Debug)]
pub struct AStar {
    g_cost: Vec<f32>,
    parent: Vec<NodeId>,
    epoch_of: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<Reverse<HeapEntry>>,
}

impl AStar {
    /// Creates an engine sized for `graph`.
    pub fn new(graph: &RoadNetwork) -> Self {
        let n = graph.node_count();
        Self {
            g_cost: vec![f32::INFINITY; n],
            parent: vec![NodeId(u32::MAX); n],
            epoch_of: vec![0; n],
            epoch: 0,
            heap: BinaryHeap::new(),
        }
    }

    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.epoch_of.iter_mut().for_each(|e| *e = 0);
            self.epoch = 1;
        }
        self.heap.clear();
    }

    #[inline]
    fn g(&self, node: NodeId) -> f32 {
        if self.epoch_of[node.index()] == self.epoch {
            self.g_cost[node.index()]
        } else {
            f32::INFINITY
        }
    }

    /// Exact shortest-path cost via A*, or `None` when unreachable.
    pub fn cost(&mut self, graph: &RoadNetwork, source: NodeId, target: NodeId) -> Option<f64> {
        self.run(graph, source, target)?;
        Some(self.g(target) as f64)
    }

    /// Exact shortest path via A*, or `None` when unreachable.
    pub fn path(&mut self, graph: &RoadNetwork, source: NodeId, target: NodeId) -> Option<Path> {
        self.run(graph, source, target)?;
        let mut nodes = vec![target];
        let mut cur = target;
        while cur != source {
            cur = self.parent[cur.index()];
            nodes.push(cur);
        }
        nodes.reverse();
        Some(Path { nodes, cost_s: self.g(target) as f64 })
    }

    fn run(&mut self, graph: &RoadNetwork, source: NodeId, target: NodeId) -> Option<()> {
        if source == target {
            self.begin();
            self.epoch_of[source.index()] = self.epoch;
            self.g_cost[source.index()] = 0.0;
            self.parent[source.index()] = source;
            return Some(());
        }
        let goal: GeoPoint = graph.point(target);
        let inv_speed = 1.0 / graph.max_speed_mps().max(0.1);
        let h = |p: GeoPoint| (p.distance_m(&goal) * inv_speed) as f32;

        self.begin();
        self.epoch_of[source.index()] = self.epoch;
        self.g_cost[source.index()] = 0.0;
        self.parent[source.index()] = source;
        self.heap.push(Reverse(HeapEntry { cost: h(graph.point(source)), node: source }));

        while let Some(Reverse(HeapEntry { cost: f, node })) = self.heap.pop() {
            if node == target {
                return Some(());
            }
            let gn = self.g(node);
            // Stale entry check: the stored f must match g + h.
            if f > gn + h(graph.point(node)) + 1e-3 {
                continue;
            }
            for (next, w) in graph.out_edges(node) {
                let tentative = gn + w;
                if tentative < self.g(next) {
                    self.epoch_of[next.index()] = self.epoch;
                    self.g_cost[next.index()] = tentative;
                    self.parent[next.index()] = node;
                    self.heap.push(Reverse(HeapEntry {
                        cost: tentative + h(graph.point(next)),
                        node: next,
                    }));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::Dijkstra;
    use mtshare_road::{grid_city, GridCityConfig};
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    #[test]
    fn matches_dijkstra_on_random_pairs() {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        let mut d = Dijkstra::new(&g);
        let mut a = AStar::new(&g);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..60 {
            let s = NodeId(rng.gen_range(0..g.node_count() as u32));
            let t = NodeId(rng.gen_range(0..g.node_count() as u32));
            let want = d.cost(&g, s, t).unwrap();
            let got = a.cost(&g, s, t).unwrap();
            assert!((want - got).abs() < 1e-2, "{s}->{t}: dijkstra {want}, astar {got}");
        }
    }

    #[test]
    fn path_is_valid() {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        let mut a = AStar::new(&g);
        let p = a.path(&g, NodeId(0), NodeId(399)).unwrap();
        assert_eq!(p.start(), NodeId(0));
        assert_eq!(p.end(), NodeId(399));
        let mut total = 0.0f64;
        for w in p.nodes.windows(2) {
            total += g.direct_edge_cost(w[0], w[1]).expect("adjacent") as f64;
        }
        assert!((total - p.cost_s).abs() < 1e-2);
    }

    #[test]
    fn self_query() {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        let mut a = AStar::new(&g);
        assert_eq!(a.cost(&g, NodeId(3), NodeId(3)), Some(0.0));
    }
}
