//! Dense cost matrices for small source sets.
//!
//! The landmark graph needs exact travel costs between every pair of
//! landmarks (Sec. IV-B1) and from each landmark to every vertex
//! (partition filtering, Alg. 2). With κ ≈ 10²–10³ landmarks these are
//! cheap to precompute: one forward and one backward one-to-all Dijkstra
//! per landmark.

use crate::dijkstra::Dijkstra;
use mtshare_road::{NodeId, RoadNetwork};
use rustc_hash::FxHashMap;

/// Precomputed costs from a fixed source set to all vertices, and from all
/// vertices back to each source.
#[derive(Debug, Clone)]
pub struct CostMatrix {
    sources: Vec<NodeId>,
    index_of: FxHashMap<NodeId, u32>,
    /// `from_rows[i][v]` = cost from `sources[i]` to vertex `v`.
    from_rows: Vec<Vec<f32>>,
    /// `to_rows[i][v]` = cost from vertex `v` to `sources[i]`.
    to_rows: Vec<Vec<f32>>,
}

impl CostMatrix {
    /// Runs 2·|sources| one-to-all searches to build the matrix. Duplicate
    /// sources are collapsed to one row (first occurrence keeps its
    /// position), so repeated landmarks don't pay for repeated searches.
    pub fn compute(graph: &RoadNetwork, sources: &[NodeId]) -> Self {
        let mut index_of: FxHashMap<NodeId, u32> = FxHashMap::default();
        let mut unique: Vec<NodeId> = Vec::with_capacity(sources.len());
        for &s in sources {
            index_of.entry(s).or_insert_with(|| {
                unique.push(s);
                unique.len() as u32 - 1
            });
        }
        let mut engine = Dijkstra::new(graph);
        let mut from_rows = Vec::with_capacity(unique.len());
        let mut to_rows = Vec::with_capacity(unique.len());
        for &s in &unique {
            let mut fwd = Vec::new();
            engine.one_to_all(graph, s, &mut fwd);
            from_rows.push(fwd);
            let mut bwd = Vec::new();
            engine.all_to_one(graph, s, &mut bwd);
            to_rows.push(bwd);
        }
        Self { sources: unique, index_of, from_rows, to_rows }
    }

    /// The source set in construction order.
    #[inline]
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// Row index of a source vertex, if it is in the set.
    #[inline]
    pub fn source_index(&self, s: NodeId) -> Option<usize> {
        self.index_of.get(&s).map(|&i| i as usize)
    }

    /// Cost from source `s` (must be in the set) to any vertex `v`.
    /// `f32::INFINITY` when unreachable.
    #[inline]
    pub fn cost_from(&self, s: NodeId, v: NodeId) -> f32 {
        self.from_rows[self.index_of[&s] as usize][v.index()]
    }

    /// Cost from any vertex `v` to source `s` (must be in the set).
    #[inline]
    pub fn cost_to(&self, v: NodeId, s: NodeId) -> f32 {
        self.to_rows[self.index_of[&s] as usize][v.index()]
    }

    /// Cost between two sources.
    #[inline]
    pub fn between(&self, a: NodeId, b: NodeId) -> f32 {
        self.cost_from(a, b)
    }

    /// Cost from source row `i` to vertex `v` (index-based fast path).
    #[inline]
    pub fn cost_from_idx(&self, i: usize, v: NodeId) -> f32 {
        self.from_rows[i][v.index()]
    }

    /// Cost from vertex `v` to source row `i` (index-based fast path).
    #[inline]
    pub fn cost_to_idx(&self, v: NodeId, i: usize) -> f32 {
        self.to_rows[i][v.index()]
    }

    /// Approximate resident memory in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.from_rows.iter().chain(self.to_rows.iter()).map(|r| r.len() * 4).sum::<usize>()
            + self.sources.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtshare_road::{grid_city, GridCityConfig};

    #[test]
    fn matrix_matches_point_queries() {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        let sources = vec![NodeId(0), NodeId(200), NodeId(399)];
        let m = CostMatrix::compute(&g, &sources);
        let mut d = Dijkstra::new(&g);
        for &s in &sources {
            for t in [NodeId(5), NodeId(123), NodeId(398)] {
                let want = d.cost(&g, s, t).unwrap();
                assert!((m.cost_from(s, t) as f64 - want).abs() < 1e-2);
                let back = d.cost(&g, t, s).unwrap();
                assert!((m.cost_to(t, s) as f64 - back).abs() < 1e-2);
            }
        }
    }

    #[test]
    fn duplicate_sources_collapse_to_one_row() {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        let dup = vec![NodeId(0), NodeId(200), NodeId(0), NodeId(200), NodeId(399)];
        let m = CostMatrix::compute(&g, &dup);
        let clean = CostMatrix::compute(&g, &[NodeId(0), NodeId(200), NodeId(399)]);
        assert_eq!(m.sources(), clean.sources());
        assert_eq!(m.memory_bytes(), clean.memory_bytes());
        assert_eq!(m.source_index(NodeId(200)), Some(1));
        assert_eq!(m.source_index(NodeId(399)), Some(2));
        for t in [NodeId(5), NodeId(123), NodeId(398)] {
            assert_eq!(m.cost_from(NodeId(0), t), clean.cost_from(NodeId(0), t));
            assert_eq!(m.cost_to(t, NodeId(399)), clean.cost_to(t, NodeId(399)));
        }
    }

    #[test]
    fn between_is_symmetric_with_rows() {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        let sources = vec![NodeId(10), NodeId(350)];
        let m = CostMatrix::compute(&g, &sources);
        assert_eq!(m.between(NodeId(10), NodeId(350)), m.cost_from(NodeId(10), NodeId(350)));
        assert_eq!(m.between(NodeId(10), NodeId(10)), 0.0);
        assert_eq!(m.source_index(NodeId(350)), Some(1));
        assert_eq!(m.source_index(NodeId(11)), None);
        assert!(m.memory_bytes() > 0);
        assert_eq!(m.sources().len(), 2);
    }
}
