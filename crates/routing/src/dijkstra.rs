//! Dijkstra's algorithm (the paper's routing workhorse, its ref. \[14\]) with reusable
//! search state.
//!
//! The engine keeps its distance/parent arrays between queries and clears
//! them lazily via an epoch counter, so a query allocates nothing after the
//! first call — important because taxi scheduling issues thousands of
//! shortest-path queries per ride request.

use crate::path::Path;
use mtshare_road::{NodeId, RoadNetwork};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Heap entry ordered by cost (min-heap via `Reverse`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct HeapEntry {
    pub cost: f32,
    pub node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.cost.total_cmp(&other.cost).then_with(|| self.node.0.cmp(&other.node.0))
    }
}

impl PartialOrd for HeapEntry {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable single-source shortest-path engine.
#[derive(Debug)]
pub struct Dijkstra {
    dist: Vec<f32>,
    parent: Vec<NodeId>,
    epoch_of: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<Reverse<HeapEntry>>,
}

impl Dijkstra {
    /// Creates an engine sized for `graph`.
    pub fn new(graph: &RoadNetwork) -> Self {
        let n = graph.node_count();
        Self {
            dist: vec![f32::INFINITY; n],
            parent: vec![NodeId(u32::MAX); n],
            epoch_of: vec![0; n],
            epoch: 0,
            heap: BinaryHeap::new(),
        }
    }

    #[inline]
    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wrap: hard-reset so stale marks cannot alias.
            self.epoch_of.iter_mut().for_each(|e| *e = 0);
            self.epoch = 1;
        }
        self.heap.clear();
    }

    #[inline]
    fn settle(&mut self, node: NodeId, cost: f32, parent: NodeId) -> bool {
        let i = node.index();
        if self.epoch_of[i] == self.epoch && self.dist[i] <= cost {
            return false;
        }
        self.epoch_of[i] = self.epoch;
        self.dist[i] = cost;
        self.parent[i] = parent;
        true
    }

    #[inline]
    fn dist_of(&self, node: NodeId) -> f32 {
        if self.epoch_of[node.index()] == self.epoch {
            self.dist[node.index()]
        } else {
            f32::INFINITY
        }
    }

    /// Cost in seconds of the shortest path `source -> target`, or `None`
    /// when unreachable. Terminates as soon as `target` is settled.
    pub fn cost(&mut self, graph: &RoadNetwork, source: NodeId, target: NodeId) -> Option<f64> {
        if source == target {
            return Some(0.0);
        }
        self.begin();
        self.settle(source, 0.0, source);
        self.heap.push(Reverse(HeapEntry { cost: 0.0, node: source }));
        while let Some(Reverse(HeapEntry { cost, node })) = self.heap.pop() {
            if cost > self.dist_of(node) {
                continue;
            }
            if node == target {
                return Some(cost as f64);
            }
            for (next, w) in graph.out_edges(node) {
                let nc = cost + w;
                if self.settle(next, nc, node) {
                    self.heap.push(Reverse(HeapEntry { cost: nc, node: next }));
                }
            }
        }
        None
    }

    /// Shortest path with its vertex sequence, or `None` when unreachable.
    pub fn path(&mut self, graph: &RoadNetwork, source: NodeId, target: NodeId) -> Option<Path> {
        let cost = self.cost(graph, source, target)?;
        Some(Path { nodes: self.unwind(source, target), cost_s: cost })
    }

    fn unwind(&self, source: NodeId, target: NodeId) -> Vec<NodeId> {
        let mut nodes = vec![target];
        let mut cur = target;
        while cur != source {
            cur = self.parent[cur.index()];
            nodes.push(cur);
        }
        nodes.reverse();
        nodes
    }

    /// Distances from `source` to every vertex (INFINITY = unreachable).
    ///
    /// The result is written into `out`, which is resized to the node count.
    pub fn one_to_all(&mut self, graph: &RoadNetwork, source: NodeId, out: &mut Vec<f32>) {
        out.clear();
        out.resize(graph.node_count(), f32::INFINITY);
        self.begin();
        self.settle(source, 0.0, source);
        self.heap.push(Reverse(HeapEntry { cost: 0.0, node: source }));
        while let Some(Reverse(HeapEntry { cost, node })) = self.heap.pop() {
            if cost > self.dist_of(node) {
                continue;
            }
            out[node.index()] = cost;
            for (next, w) in graph.out_edges(node) {
                let nc = cost + w;
                if self.settle(next, nc, node) {
                    self.heap.push(Reverse(HeapEntry { cost: nc, node: next }));
                }
            }
        }
    }

    /// Backward distances: cost from every vertex *to* `target`.
    pub fn all_to_one(&mut self, graph: &RoadNetwork, target: NodeId, out: &mut Vec<f32>) {
        out.clear();
        out.resize(graph.node_count(), f32::INFINITY);
        self.begin();
        self.settle(target, 0.0, target);
        self.heap.push(Reverse(HeapEntry { cost: 0.0, node: target }));
        while let Some(Reverse(HeapEntry { cost, node })) = self.heap.pop() {
            if cost > self.dist_of(node) {
                continue;
            }
            out[node.index()] = cost;
            for (prev, w) in graph.in_edges(node) {
                let nc = cost + w;
                if self.settle(prev, nc, node) {
                    self.heap.push(Reverse(HeapEntry { cost: nc, node: prev }));
                }
            }
        }
    }
}

/// Reference Bellman-Ford used only as a property-test oracle.
pub fn bellman_ford_cost(graph: &RoadNetwork, source: NodeId, target: NodeId) -> Option<f64> {
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    dist[source.index()] = 0.0;
    for _ in 0..n {
        let mut changed = false;
        for u in graph.nodes() {
            let du = dist[u.index()];
            if !du.is_finite() {
                continue;
            }
            for (v, w) in graph.out_edges(u) {
                let cand = du + w as f64;
                if cand < dist[v.index()] {
                    dist[v.index()] = cand;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    dist[target.index()].is_finite().then_some(dist[target.index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtshare_road::{grid_city, GridCityConfig};

    fn city() -> RoadNetwork {
        grid_city(&GridCityConfig::tiny()).unwrap()
    }

    #[test]
    fn zero_cost_to_self() {
        let g = city();
        let mut d = Dijkstra::new(&g);
        assert_eq!(d.cost(&g, NodeId(5), NodeId(5)), Some(0.0));
    }

    #[test]
    fn cost_matches_bellman_ford() {
        let g = city();
        let mut d = Dijkstra::new(&g);
        for (s, t) in [(0u32, 399u32), (17, 230), (399, 0), (55, 56)] {
            let got = d.cost(&g, NodeId(s), NodeId(t)).unwrap();
            let want = bellman_ford_cost(&g, NodeId(s), NodeId(t)).unwrap();
            assert!((got - want).abs() < 1e-2, "{s}->{t}: got {got}, want {want}");
        }
    }

    #[test]
    fn path_is_a_valid_walk_with_matching_cost() {
        let g = city();
        let mut d = Dijkstra::new(&g);
        let p = d.path(&g, NodeId(0), NodeId(399)).unwrap();
        assert_eq!(p.start(), NodeId(0));
        assert_eq!(p.end(), NodeId(399));
        let mut total = 0.0f64;
        for w in p.nodes.windows(2) {
            let c = g.direct_edge_cost(w[0], w[1]).expect("consecutive nodes must be adjacent");
            total += c as f64;
        }
        assert!((total - p.cost_s).abs() < 1e-2);
    }

    #[test]
    fn engine_is_reusable_across_queries() {
        let g = city();
        let mut d = Dijkstra::new(&g);
        let a1 = d.cost(&g, NodeId(0), NodeId(399)).unwrap();
        let _ = d.cost(&g, NodeId(399), NodeId(0)).unwrap();
        let a2 = d.cost(&g, NodeId(0), NodeId(399)).unwrap();
        assert_eq!(a1, a2);
    }

    #[test]
    fn one_to_all_consistent_with_point_queries() {
        let g = city();
        let mut d = Dijkstra::new(&g);
        let mut all = Vec::new();
        d.one_to_all(&g, NodeId(7), &mut all);
        for t in [0u32, 100, 250, 399] {
            let pt = d.cost(&g, NodeId(7), NodeId(t)).unwrap();
            assert!((pt - all[t as usize] as f64).abs() < 1e-2);
        }
    }

    #[test]
    fn all_to_one_is_backward_cost() {
        let g = city();
        let mut d = Dijkstra::new(&g);
        let mut back = Vec::new();
        d.all_to_one(&g, NodeId(250), &mut back);
        for s in [0u32, 31, 399] {
            let fwd = d.cost(&g, NodeId(s), NodeId(250)).unwrap();
            assert!((fwd - back[s as usize] as f64).abs() < 1e-2);
        }
    }

    #[test]
    fn unreachable_returns_none() {
        use mtshare_road::{EdgeSpec, GeoPoint};
        let pts = vec![GeoPoint::new(30.0, 104.0), GeoPoint::new(30.001, 104.0)];
        let edges =
            vec![EdgeSpec { from: NodeId(0), to: NodeId(1), length_m: 10.0, speed_kmh: 15.0 }];
        let g = RoadNetwork::new(pts, &edges).unwrap();
        let mut d = Dijkstra::new(&g);
        assert_eq!(d.cost(&g, NodeId(1), NodeId(0)), None);
        assert!(d.path(&g, NodeId(1), NodeId(0)).is_none());
    }
}
