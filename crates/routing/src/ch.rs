//! Contraction hierarchies: preprocessed exact routing (Geisberger et al.).
//!
//! Preprocessing contracts vertices one by one in increasing "importance",
//! inserting shortcut edges that preserve all shortest-path costs among the
//! not-yet-contracted rest. A point-to-point query is then a pair of tiny
//! Dijkstra searches that only ever relax edges toward *more* important
//! vertices: forward from the source over the upward graph, backward from
//! the target over the downward graph, joined at the best meeting vertex.
//! On city grids this settles a few hundred vertices where bidirectional
//! Dijkstra settles tens of thousands.
//!
//! # Node ordering and parallel construction
//!
//! Edge-difference ordering: a vertex's key is dominated by the number of
//! shortcuts its contraction inserts minus the edges it removes,
//! tie-broken by the shortcut/removed quotient, the unpacked hop count of
//! the needed shortcuts, and the number of already-contracted neighbours
//! (uniformity); node id breaks exact key ties.
//!
//! Construction is **level-synchronous**: each round (a) recomputes keys
//! of vertices whose neighbourhood changed, (b) selects the deterministic
//! independent set of *locally minimal* vertices — `v` is selected iff
//! `(key[v], v)` beats `(key[u], u)` for every uncontracted overlay
//! neighbour `u` — and (c) simulates all selected contractions against
//! the frozen overlay. Selection, key recompute, and simulation fan out
//! over `mtshare-par` workers (read-only, results joined in index order);
//! contractions are then *applied* sequentially in ascending vertex id,
//! which also assigns ranks. No two selected vertices are adjacent, so a
//! simulation never sees a peer's edits: the applied shortcuts — and
//! therefore the artifact bytes — are identical at any worker count.
//! Witness searches simulated one round stale can at worst miss a newly
//! cheaper witness, costing a redundant shortcut, never correctness.
//! Small tails (≤ `SEQ_TAIL` vertices) contract one-by-one — the exact
//! same rule with a singleton set — to skip per-round overhead where
//! parallelism has nothing left to win.
//!
//! # Exactness
//!
//! Shortcut weights are `f32` sums of `f32` edge weights. Because
//! [`RoadNetwork`] quantizes every edge cost to the dyadic grid
//! (`mtshare_road::COST_QUANTUM_S`), those sums are *exact*, so a CH query
//! returns bit-identical costs to plain Dijkstra — asserted with `==` in
//! the equivalence suite, no tolerance.
//!
//! # Persistence
//!
//! The preprocessed hierarchy serializes into a CRC-framed
//! `mtshare-persist` snapshot keyed by [`RoadNetwork::digest`], so warm
//! restarts and repeat benchmarks skip preprocessing; a digest mismatch or
//! a corrupt frame triggers a rebuild instead of trusting a stale file.

use crate::dijkstra::HeapEntry;
use crate::path::Path;
use mtshare_persist::{fnv1a_64, read_snapshot, write_snapshot, Decoder, Encoder, PersistError};
use mtshare_road::{NodeId, RoadNetwork};
use rustc_hash::FxHashMap;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// `via` marker for original (non-shortcut) edges.
const NO_VIA: u32 = u32::MAX;

/// Witness searches stop after settling this many vertices; an undetected
/// witness only costs a redundant shortcut, never correctness. The budget
/// trades preprocessing time for hierarchy sparsity (and thus query
/// speed); 4096 keeps grid hierarchies close to witness-complete (the
/// through-cost cap bounds the search long before the settle limit on
/// low-rank contractions, so the budget mostly matters near the top).
const WITNESS_SETTLE_LIMIT: usize = 4096;

/// Inner payload tag of the persisted artifact.
const ARTIFACT_TAG: &[u8; 4] = b"MTCH";

/// Inner payload version of the persisted artifact. v2 added the metric
/// generation counter (always 0 for a plain CH, which bakes the metric
/// into the hierarchy; customizable hierarchies count customizations).
const ARTIFACT_VERSION: u32 = 2;

/// Below this many remaining vertices, contraction proceeds one vertex
/// per round: per-round fan-out overhead exceeds the win on tiny tails.
const SEQ_TAIL: usize = 64;

/// Query counters of a [`ContractionHierarchy`] (profiling only — they are
/// excluded from determinism comparisons like every other wall-clock or
/// scheduling-dependent statistic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChStats {
    /// Point-to-point searches answered.
    pub p2p_queries: u64,
    /// Bucket many-to-one sweeps performed.
    pub bucket_sweeps: u64,
    /// Total sources across all bucket sweeps.
    pub bucket_sources: u64,
}

#[derive(Debug, Default)]
struct AtomicChStats {
    p2p_queries: AtomicU64,
    bucket_sweeps: AtomicU64,
    bucket_sources: AtomicU64,
}

/// One edge of the preprocessing overlay graph.
#[derive(Debug, Clone, Copy)]
struct OverlayEdge {
    node: u32,
    w: f32,
    via: u32,
    hops: u32,
}

/// A shortcut `(from, to)` scheduled by a contraction simulation.
struct Shortcut {
    from: u32,
    to: u32,
    w: f32,
    hops: u32,
}

/// The preprocessed hierarchy: ranks plus upward/downward search graphs in
/// CSR form. Immutable after construction; share it with `Arc`.
#[derive(Debug)]
pub struct ContractionHierarchy {
    graph_digest: u64,
    /// Contraction order per vertex (0 = contracted first = least
    /// important).
    rank: Vec<u32>,
    // Upward graph: original-direction edges u -> v with rank[v] > rank[u].
    up_offsets: Vec<u32>,
    up_targets: Vec<u32>,
    up_weights: Vec<f32>,
    up_via: Vec<u32>,
    // Downward graph, indexed by the *lower* endpoint v: incoming edges
    // u -> v with rank[u] > rank[v] (the backward search relaxes these).
    down_offsets: Vec<u32>,
    down_sources: Vec<u32>,
    down_weights: Vec<f32>,
    down_via: Vec<u32>,
    shortcuts: u64,
    stats: AtomicChStats,
}

/// Scratch state of one bounded witness search.
#[derive(Default)]
struct WitnessScratch {
    dist: FxHashMap<u32, f32>,
    heap: BinaryHeap<Reverse<HeapEntry>>,
}

/// Mutable preprocessing state: the overlay graph of uncontracted
/// vertices.
struct Builder {
    fwd: Vec<Vec<OverlayEdge>>,
    bwd: Vec<Vec<OverlayEdge>>,
    deleted_neighbors: Vec<u32>,
}

impl Builder {
    fn new(graph: &RoadNetwork) -> Self {
        let n = graph.node_count();
        let mut fwd: Vec<Vec<OverlayEdge>> = vec![Vec::new(); n];
        let mut bwd: Vec<Vec<OverlayEdge>> = vec![Vec::new(); n];
        // Parallel edges collapse to their minimum: only the cheapest can
        // carry a shortest path, and one entry per neighbour keeps the
        // upsert logic linear.
        for u in graph.nodes() {
            let mut best: FxHashMap<u32, f32> = FxHashMap::default();
            for (v, w) in graph.out_edges(u) {
                if v == u {
                    continue;
                }
                let e = best.entry(v.0).or_insert(f32::INFINITY);
                if w < *e {
                    *e = w;
                }
            }
            let mut edges: Vec<(u32, f32)> = best.into_iter().collect();
            edges.sort_by_key(|&(v, _)| v);
            for (v, w) in edges {
                fwd[u.index()].push(OverlayEdge { node: v, w, via: NO_VIA, hops: 1 });
                bwd[v as usize].push(OverlayEdge { node: u.0, w, via: NO_VIA, hops: 1 });
            }
        }
        Self { fwd, bwd, deleted_neighbors: vec![0; n] }
    }

    /// Bounded Dijkstra from `from` on the overlay, skipping `avoid`,
    /// pruned at `cap`. Populates `scratch.dist`.
    fn witness_search(&self, from: u32, avoid: u32, cap: f32, scratch: &mut WitnessScratch) {
        scratch.dist.clear();
        scratch.heap.clear();
        scratch.dist.insert(from, 0.0);
        scratch.heap.push(Reverse(HeapEntry { cost: 0.0, node: NodeId(from) }));
        let mut settled = 0usize;
        while let Some(Reverse(HeapEntry { cost, node })) = scratch.heap.pop() {
            if cost > scratch.dist.get(&node.0).copied().unwrap_or(f32::INFINITY) {
                continue;
            }
            if cost > cap {
                break;
            }
            settled += 1;
            if settled > WITNESS_SETTLE_LIMIT {
                break;
            }
            for e in &self.fwd[node.index()] {
                if e.node == avoid {
                    continue;
                }
                let nc = cost + e.w;
                if nc <= cap && nc < scratch.dist.get(&e.node).copied().unwrap_or(f32::INFINITY) {
                    scratch.dist.insert(e.node, nc);
                    scratch.heap.push(Reverse(HeapEntry { cost: nc, node: NodeId(e.node) }));
                }
            }
        }
    }

    /// Simulates contracting `v`: the shortcuts that must be inserted and
    /// the number of overlay edges removed.
    fn shortcuts_for(&self, v: u32, scratch: &mut WitnessScratch) -> (Vec<Shortcut>, usize) {
        let ins = &self.bwd[v as usize];
        let outs = &self.fwd[v as usize];
        let removed = ins.len() + outs.len();
        if ins.is_empty() || outs.is_empty() {
            return (Vec::new(), removed);
        }
        let mut shortcuts = Vec::new();
        for ein in ins {
            let cap = outs
                .iter()
                .filter(|e| e.node != ein.node)
                .map(|e| ein.w + e.w)
                .fold(0.0f32, f32::max);
            self.witness_search(ein.node, v, cap, scratch);
            for eout in outs {
                if eout.node == ein.node {
                    continue;
                }
                let through = ein.w + eout.w;
                let witness = scratch.dist.get(&eout.node).copied().unwrap_or(f32::INFINITY);
                if witness > through {
                    shortcuts.push(Shortcut {
                        from: ein.node,
                        to: eout.node,
                        w: through,
                        hops: ein.hops + eout.hops,
                    });
                }
            }
        }
        (shortcuts, removed)
    }

    /// Ordering key of `v` (smaller contracts earlier): edge difference,
    /// then the shortcut/removed quotient, unpacked hop volume, and
    /// contracted-neighbour count as tie-breaks. Node id breaks exact
    /// ties in the heap ordering.
    fn key(&self, v: u32, scratch: &mut WitnessScratch) -> f32 {
        let (shortcuts, removed) = self.shortcuts_for(v, scratch);
        let added = shortcuts.len() as f32;
        let removed_f = removed.max(1) as f32;
        let hops: u32 = shortcuts.iter().map(|s| s.hops).sum();
        4.0 * (added - removed as f32)
            + added / removed_f
            + 0.25 * hops as f32
            + self.deleted_neighbors[v as usize] as f32
    }

    /// Applies the contraction of `v`: removes it from the overlay and
    /// inserts `shortcuts`.
    fn contract(&mut self, v: u32, shortcuts: Vec<Shortcut>) {
        let ins = std::mem::take(&mut self.bwd[v as usize]);
        let outs = std::mem::take(&mut self.fwd[v as usize]);
        for e in &ins {
            self.fwd[e.node as usize].retain(|x| x.node != v);
            self.deleted_neighbors[e.node as usize] += 1;
        }
        for e in &outs {
            self.bwd[e.node as usize].retain(|x| x.node != v);
            self.deleted_neighbors[e.node as usize] += 1;
        }
        for s in shortcuts {
            upsert(&mut self.fwd[s.from as usize], s.to, s.w, v, s.hops);
            upsert(&mut self.bwd[s.to as usize], s.from, s.w, v, s.hops);
        }
        // Keep the removed adjacency for the CSR build.
        self.bwd[v as usize] = ins;
        self.fwd[v as usize] = outs;
    }
}

/// Inserts or min-replaces the overlay edge toward `node`.
fn upsert(adj: &mut Vec<OverlayEdge>, node: u32, w: f32, via: u32, hops: u32) {
    if let Some(e) = adj.iter_mut().find(|e| e.node == node) {
        if w < e.w {
            e.w = w;
            e.via = via;
            e.hops = hops;
        }
    } else {
        adj.push(OverlayEdge { node, w, via, hops });
    }
}

impl ContractionHierarchy {
    /// Preprocesses `graph` into a hierarchy using level-synchronous
    /// parallel contraction over `workers` fork-join workers (see the
    /// module docs). The node order — and the artifact byte layout — is
    /// a pure function of the graph, byte-identical at any worker count.
    pub fn build(graph: &RoadNetwork, workers: usize) -> Self {
        let n = graph.node_count();
        let mut builder = Builder::new(graph);
        let original_edges: u64 = builder.fwd.iter().map(|a| a.len() as u64).sum();

        let mut states: Vec<WitnessScratch> =
            (0..workers.max(1)).map(|_| WitnessScratch::default()).collect();

        // Initial keys: one independent, read-only simulation per vertex.
        let mut keys = {
            let b = &builder;
            mtshare_par::par_map_with(&mut states, n, |i, scratch| b.key(i as u32, scratch))
        };

        let mut rank = vec![0u32; n];
        let mut contracted = vec![false; n];
        let mut next_rank = 0u32;
        let mut remaining: Vec<u32> = (0..n as u32).collect();
        // Dirty marks: vertices whose key must be refreshed next round.
        let mut dirty = vec![false; n];
        let mut marked: Vec<u32> = Vec::new();

        while !remaining.is_empty() {
            // Select the independent set of locally minimal vertices.
            // Read-only scan; `remaining` stays sorted ascending, so the
            // selected set comes out in ascending id order too.
            let selected: Vec<u32> = if remaining.len() <= SEQ_TAIL {
                // Tail: one vertex per round (the global minimum) — same
                // rule, singleton set, no fan-out overhead.
                let &v = remaining
                    .iter()
                    .min_by(|&&a, &&b| {
                        keys[a as usize].total_cmp(&keys[b as usize]).then(a.cmp(&b))
                    })
                    .expect("remaining is non-empty");
                vec![v]
            } else {
                let flags = {
                    let b = &builder;
                    let keys = &keys;
                    let rem = &remaining;
                    mtshare_par::par_map_with(&mut states, rem.len(), |i, _| {
                        let v = rem[i];
                        let kv = keys[v as usize];
                        b.fwd[v as usize].iter().chain(b.bwd[v as usize].iter()).all(|e| {
                            let ku = keys[e.node as usize];
                            kv.total_cmp(&ku).then(v.cmp(&e.node)).is_lt()
                        })
                    })
                };
                remaining.iter().zip(&flags).filter_map(|(&v, &s)| s.then_some(v)).collect()
            };
            debug_assert!(!selected.is_empty(), "the global minimum is always selected");

            // Simulate every selected contraction against the frozen
            // overlay (read-only, parallel). Selected vertices are
            // pairwise non-adjacent, so no simulation can observe another
            // selected vertex's edits.
            let sims: Vec<Vec<Shortcut>> = {
                let b = &builder;
                let sel = &selected;
                mtshare_par::par_map_with(&mut states, sel.len(), |i, scratch| {
                    b.shortcuts_for(sel[i], scratch).0
                })
            };

            // Apply sequentially in ascending vertex id; ranks follow the
            // application order. Mark the star dirty first: those
            // vertices lose edges, gain a contracted neighbour, and are
            // the endpoints of every inserted shortcut.
            for (&v, shortcuts) in selected.iter().zip(sims) {
                for e in builder.fwd[v as usize].iter().chain(builder.bwd[v as usize].iter()) {
                    if !dirty[e.node as usize] {
                        dirty[e.node as usize] = true;
                        marked.push(e.node);
                    }
                }
                builder.contract(v, shortcuts);
                rank[v as usize] = next_rank;
                contracted[v as usize] = true;
                next_rank += 1;
            }

            // Drop the contracted vertices from the remaining set, then
            // refresh the keys of dirty survivors (read-only, parallel).
            let mut sel_it = selected.iter().peekable();
            remaining.retain(|&v| {
                if sel_it.peek() == Some(&&v) {
                    sel_it.next();
                    false
                } else {
                    true
                }
            });
            marked.sort_unstable();
            let refresh: Vec<u32> =
                marked.iter().copied().filter(|&v| !contracted[v as usize]).collect();
            let fresh = {
                let b = &builder;
                let list = &refresh;
                mtshare_par::par_map_with(&mut states, list.len(), |i, scratch| {
                    b.key(list[i], scratch)
                })
            };
            for (&v, k) in refresh.iter().zip(fresh) {
                keys[v as usize] = k;
            }
            for &v in &marked {
                dirty[v as usize] = false;
            }
            marked.clear();
        }

        // CSR assembly: at contraction time every remaining neighbour of a
        // vertex outranks it, so its frozen adjacency is exactly its
        // upward (out) and downward (in) star. Sorted by neighbour id for
        // a canonical byte layout.
        let mut up_offsets = Vec::with_capacity(n + 1);
        let mut up_targets = Vec::new();
        let mut up_weights = Vec::new();
        let mut up_via = Vec::new();
        let mut down_offsets = Vec::with_capacity(n + 1);
        let mut down_sources = Vec::new();
        let mut down_weights = Vec::new();
        let mut down_via = Vec::new();
        up_offsets.push(0u32);
        down_offsets.push(0u32);
        for v in 0..n {
            let mut ups = std::mem::take(&mut builder.fwd[v]);
            ups.sort_by_key(|e| e.node);
            for e in ups {
                up_targets.push(e.node);
                up_weights.push(e.w);
                up_via.push(e.via);
            }
            up_offsets.push(up_targets.len() as u32);
            let mut downs = std::mem::take(&mut builder.bwd[v]);
            downs.sort_by_key(|e| e.node);
            for e in downs {
                down_sources.push(e.node);
                down_weights.push(e.w);
                down_via.push(e.via);
            }
            down_offsets.push(down_sources.len() as u32);
        }
        let total_edges = up_targets.len() as u64;
        Self {
            graph_digest: graph.digest(),
            rank,
            up_offsets,
            up_targets,
            up_weights,
            up_via,
            down_offsets,
            down_sources,
            down_weights,
            down_via,
            shortcuts: total_edges.saturating_sub(original_edges),
            stats: AtomicChStats::default(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.rank.len()
    }

    /// Number of shortcut edges the preprocessing inserted.
    #[inline]
    pub fn shortcut_count(&self) -> u64 {
        self.shortcuts
    }

    /// Digest of the road network this hierarchy was built from.
    #[inline]
    pub fn graph_digest(&self) -> u64 {
        self.graph_digest
    }

    /// Snapshot of the query counters.
    pub fn stats(&self) -> ChStats {
        ChStats {
            p2p_queries: self.stats.p2p_queries.load(Relaxed),
            bucket_sweeps: self.stats.bucket_sweeps.load(Relaxed),
            bucket_sources: self.stats.bucket_sources.load(Relaxed),
        }
    }

    /// Approximate resident memory of the search graphs in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.rank.len() * 4
            + (self.up_offsets.len() + self.down_offsets.len()) * 4
            + self.up_targets.len() * 12
            + self.down_sources.len() * 12
    }

    #[inline]
    fn up_range(&self, v: u32) -> std::ops::Range<usize> {
        self.up_offsets[v as usize] as usize..self.up_offsets[v as usize + 1] as usize
    }

    #[inline]
    fn down_range(&self, v: u32) -> std::ops::Range<usize> {
        self.down_offsets[v as usize] as usize..self.down_offsets[v as usize + 1] as usize
    }

    /// `via` of the hierarchy edge `source -> lower` (a downward edge of
    /// `lower`). Panics if absent: unpacking only asks for edges the
    /// preprocessing inserted.
    fn down_via_of(&self, lower: u32, source: u32) -> u32 {
        let r = self.down_range(lower);
        let i = self.down_sources[r.clone()]
            .iter()
            .position(|&s| s == source)
            .expect("constituent downward edge exists");
        self.down_via[r.start + i]
    }

    /// `via` of the hierarchy edge `lower -> target` (an upward edge of
    /// `lower`).
    fn up_via_of(&self, lower: u32, target: u32) -> u32 {
        let r = self.up_range(lower);
        let i = self.up_targets[r.clone()]
            .iter()
            .position(|&t| t == target)
            .expect("constituent upward edge exists");
        self.up_via[r.start + i]
    }

    /// Appends the original vertices of hierarchy edge `u -> v` (strictly
    /// after `u`, through `v`) to `out`, expanding shortcuts recursively.
    fn unpack_append(&self, u: u32, v: u32, via: u32, out: &mut Vec<NodeId>) {
        if via == NO_VIA {
            out.push(NodeId(v));
            return;
        }
        // u -> via descends in rank, via -> v ascends; both live in the
        // adjacency of the contracted middle vertex.
        self.unpack_append(u, via, self.down_via_of(via, u), out);
        self.unpack_append(via, v, self.up_via_of(via, v), out);
    }

    // ---- persistence ----------------------------------------------------

    /// Canonical artifact payload (v2): tag, version, graph digest,
    /// metric generation, then every array with an explicit length.
    fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.bytes(ARTIFACT_TAG);
        enc.u32(ARTIFACT_VERSION);
        enc.u64(self.graph_digest);
        enc.u64(0); // metric generation: a plain CH bakes the base metric in
        enc.u32(self.rank.len() as u32);
        for chunk in [&self.rank, &self.up_offsets, &self.up_targets, &self.up_via] {
            enc.u64(chunk.len() as u64);
            for &x in chunk.iter() {
                enc.u32(x);
            }
        }
        enc.u64(self.up_weights.len() as u64);
        for &w in &self.up_weights {
            enc.u32(w.to_bits());
        }
        for chunk in [&self.down_offsets, &self.down_sources, &self.down_via] {
            enc.u64(chunk.len() as u64);
            for &x in chunk.iter() {
                enc.u32(x);
            }
        }
        enc.u64(self.down_weights.len() as u64);
        for &w in &self.down_weights {
            enc.u32(w.to_bits());
        }
        enc.u64(self.shortcuts);
        enc.into_bytes()
    }

    /// FNV-1a digest of the canonical artifact payload. Two hierarchies
    /// with equal digests are byte-identical on disk — the property the
    /// any-worker-count determinism suite asserts.
    pub fn artifact_digest(&self) -> u64 {
        fnv1a_64(&self.encode())
    }

    /// Serializes the hierarchy into a CRC-framed snapshot at `path`.
    /// Returns the file size in bytes.
    pub fn save(&self, path: &std::path::Path) -> Result<u64, PersistError> {
        write_snapshot(path, &self.encode()).map(|stats| stats.bytes)
    }

    /// Loads a hierarchy from `path`, validating the CRC frame and that it
    /// was built from exactly this `graph` (digest match).
    pub fn load(path: &std::path::Path, graph: &RoadNetwork) -> Result<Self, PersistError> {
        let payload = read_snapshot(path)?;
        let mut dec = Decoder::new(&payload);
        if dec.bytes()? != ARTIFACT_TAG {
            return Err(PersistError::Corrupt(format!(
                "{}: not a contraction-hierarchy artifact",
                path.display()
            )));
        }
        let version = dec.u32()?;
        if version != ARTIFACT_VERSION {
            return Err(PersistError::UnsupportedVersion {
                found: version,
                expected: ARTIFACT_VERSION,
            });
        }
        let digest = dec.u64()?;
        if digest != graph.digest() {
            return Err(PersistError::Mismatch(format!(
                "{}: built for graph {digest:#018x}, current graph is {:#018x}",
                path.display(),
                graph.digest()
            )));
        }
        let generation = dec.u64()?;
        if generation != 0 {
            return Err(PersistError::Mismatch(format!(
                "{}: customized artifact (metric generation {generation}), a plain CH \
                 artifact must be generation 0",
                path.display()
            )));
        }
        let n = dec.u32()? as usize;
        if n != graph.node_count() {
            return Err(PersistError::Mismatch(format!(
                "{}: {n} vertices, graph has {}",
                path.display(),
                graph.node_count()
            )));
        }
        fn read_u32s(dec: &mut Decoder<'_>) -> Result<Vec<u32>, PersistError> {
            let len = dec.u64()? as usize;
            let mut v = Vec::with_capacity(len.min(1 << 24));
            for _ in 0..len {
                v.push(dec.u32()?);
            }
            Ok(v)
        }
        let rank = read_u32s(&mut dec)?;
        let up_offsets = read_u32s(&mut dec)?;
        let up_targets = read_u32s(&mut dec)?;
        let up_via = read_u32s(&mut dec)?;
        let up_weights: Vec<f32> = read_u32s(&mut dec)?.into_iter().map(f32::from_bits).collect();
        let down_offsets = read_u32s(&mut dec)?;
        let down_sources = read_u32s(&mut dec)?;
        let down_via = read_u32s(&mut dec)?;
        let down_weights: Vec<f32> = read_u32s(&mut dec)?.into_iter().map(f32::from_bits).collect();
        let shortcuts = dec.u64()?;
        if rank.len() != n || up_offsets.len() != n + 1 || down_offsets.len() != n + 1 {
            return Err(PersistError::Corrupt(format!(
                "{}: inconsistent array arities",
                path.display()
            )));
        }
        Ok(Self {
            graph_digest: digest,
            rank,
            up_offsets,
            up_targets,
            up_weights,
            up_via,
            down_offsets,
            down_sources,
            down_weights,
            down_via,
            shortcuts,
            stats: AtomicChStats::default(),
        })
    }

    /// Loads the artifact at `path` if it is valid for `graph`; a missing,
    /// corrupt, or wrong-graph artifact triggers a rebuild from scratch
    /// and a (best-effort) rewrite. A *version* mismatch is different: the
    /// file is a healthy artifact from an incompatible build, so silently
    /// clobbering it would be destructive — it propagates as
    /// [`PersistError::UnsupportedVersion`] for the caller to surface.
    /// Returns the hierarchy and whether it was rebuilt.
    pub fn load_or_build(
        path: &std::path::Path,
        graph: &RoadNetwork,
        workers: usize,
    ) -> Result<(Self, bool), PersistError> {
        match Self::load(path, graph) {
            Ok(ch) => Ok((ch, false)),
            Err(e @ PersistError::UnsupportedVersion { .. }) => Err(e),
            Err(_) => {
                let ch = Self::build(graph, workers);
                let _ = ch.save(path);
                Ok((ch, true))
            }
        }
    }
}

/// Reusable point-to-point query state over a shared hierarchy.
#[derive(Debug)]
pub struct ChQuery {
    ch: Arc<ContractionHierarchy>,
    dist_f: Vec<f32>,
    dist_b: Vec<f32>,
    parent_f: Vec<u32>,
    parent_b: Vec<u32>,
    via_f: Vec<u32>,
    via_b: Vec<u32>,
    epoch_of_f: Vec<u32>,
    epoch_of_b: Vec<u32>,
    epoch: u32,
    heap_f: BinaryHeap<Reverse<HeapEntry>>,
    heap_b: BinaryHeap<Reverse<HeapEntry>>,
    settled_f: Vec<u32>,
    settled_b: Vec<u32>,
}

impl ChQuery {
    /// Creates query scratch sized for `ch`.
    pub fn new(ch: Arc<ContractionHierarchy>) -> Self {
        let n = ch.node_count();
        Self {
            ch,
            dist_f: vec![f32::INFINITY; n],
            dist_b: vec![f32::INFINITY; n],
            parent_f: vec![NO_VIA; n],
            parent_b: vec![NO_VIA; n],
            via_f: vec![NO_VIA; n],
            via_b: vec![NO_VIA; n],
            epoch_of_f: vec![0; n],
            epoch_of_b: vec![0; n],
            epoch: 0,
            heap_f: BinaryHeap::new(),
            heap_b: BinaryHeap::new(),
            settled_f: Vec::new(),
            settled_b: Vec::new(),
        }
    }

    /// The shared hierarchy.
    #[inline]
    pub fn hierarchy(&self) -> &Arc<ContractionHierarchy> {
        &self.ch
    }

    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.epoch_of_f.iter_mut().for_each(|e| *e = 0);
            self.epoch_of_b.iter_mut().for_each(|e| *e = 0);
            self.epoch = 1;
        }
        self.settled_f.clear();
        self.settled_b.clear();
    }

    #[inline]
    fn dist(&self, forward: bool, v: u32) -> f32 {
        let (epochs, dist) = if forward {
            (&self.epoch_of_f, &self.dist_f)
        } else {
            (&self.epoch_of_b, &self.dist_b)
        };
        if epochs[v as usize] == self.epoch {
            dist[v as usize]
        } else {
            f32::INFINITY
        }
    }

    /// One settle step of the `forward` (up-graph) or backward (down-graph)
    /// search, with stall-on-demand and μ-pruning: relaxations that cannot
    /// beat the best meeting cost found so far are skipped entirely.
    fn step(&mut self, forward: bool, best: &mut f32, meet: &mut u32) {
        let popped = if forward { self.heap_f.pop() } else { self.heap_b.pop() };
        let Some(Reverse(HeapEntry { cost, node })) = popped else { return };
        let v = node.0;
        if cost > self.dist(forward, v) {
            return;
        }
        // Stall-on-demand: a strictly cheaper entry via an edge from a
        // higher-ranked vertex proves v is off every shortest up-down
        // path through this direction.
        let stalled = if forward {
            let r = self.ch.down_range(v);
            self.ch.down_sources[r.clone()]
                .iter()
                .zip(&self.ch.down_weights[r])
                .any(|(&u, &w)| self.dist(true, u) + w < cost)
        } else {
            let r = self.ch.up_range(v);
            self.ch.up_targets[r.clone()]
                .iter()
                .zip(&self.ch.up_weights[r])
                .any(|(&u, &w)| self.dist(false, u) + w < cost)
        };
        if stalled {
            return;
        }
        // Meeting update on settle. The smallest-id tie-break keeps the
        // chosen meet (and hence the unpacked path) a pure function of the
        // hierarchy, independent of heap internals.
        let other = self.dist(!forward, v);
        if other.is_finite() {
            let cand = cost + other;
            if cand < *best || (cand == *best && v < *meet) {
                *best = cand;
                *meet = v;
            }
        }
        if forward {
            self.settled_f.push(v);
            let r = self.ch.up_range(v);
            for i in r {
                let t = self.ch.up_targets[i];
                let nc = cost + self.ch.up_weights[i];
                // nc ≥ μ ⇒ any meet through t costs ≥ μ: prune the push.
                if nc < self.dist(true, t) && nc < *best {
                    self.epoch_of_f[t as usize] = self.epoch;
                    self.dist_f[t as usize] = nc;
                    self.parent_f[t as usize] = v;
                    self.via_f[t as usize] = self.ch.up_via[i];
                    self.heap_f.push(Reverse(HeapEntry { cost: nc, node: NodeId(t) }));
                }
            }
        } else {
            self.settled_b.push(v);
            let r = self.ch.down_range(v);
            for i in r {
                let s = self.ch.down_sources[i];
                let nc = cost + self.ch.down_weights[i];
                if nc < self.dist(false, s) && nc < *best {
                    self.epoch_of_b[s as usize] = self.epoch;
                    self.dist_b[s as usize] = nc;
                    self.parent_b[s as usize] = v;
                    self.via_b[s as usize] = self.ch.down_via[i];
                    self.heap_b.push(Reverse(HeapEntry { cost: nc, node: NodeId(s) }));
                }
            }
        }
    }

    /// Runs the two upward searches interleaved (cheaper frontier first)
    /// and joins them online, returning `(cost, meet)`. Unlike plain
    /// bidirectional Dijkstra a CH search cannot stop at the first meeting
    /// vertex, but each direction *can* stop once its heap minimum reaches
    /// the best meeting cost μ — no later settle can improve on μ.
    fn search(&mut self, source: NodeId, target: NodeId) -> Option<(f32, u32)> {
        self.ch.stats.p2p_queries.fetch_add(1, Relaxed);
        if source == target {
            return Some((0.0, source.0));
        }
        self.begin();
        self.heap_f.clear();
        self.heap_b.clear();
        self.epoch_of_f[source.index()] = self.epoch;
        self.dist_f[source.index()] = 0.0;
        self.parent_f[source.index()] = source.0;
        self.heap_f.push(Reverse(HeapEntry { cost: 0.0, node: source }));
        self.epoch_of_b[target.index()] = self.epoch;
        self.dist_b[target.index()] = 0.0;
        self.parent_b[target.index()] = target.0;
        self.heap_b.push(Reverse(HeapEntry { cost: 0.0, node: target }));

        let mut best = f32::INFINITY;
        let mut meet = NO_VIA;
        loop {
            let f_top = self.heap_f.peek().map(|e| e.0.cost);
            let b_top = self.heap_b.peek().map(|e| e.0.cost);
            let f_live = f_top.is_some_and(|c| c < best);
            let b_live = b_top.is_some_and(|c| c < best);
            let forward = match (f_live, b_live) {
                (false, false) => break,
                (true, false) => true,
                (false, true) => false,
                // Both live: advance the cheaper frontier, forward on ties.
                (true, true) => f_top <= b_top,
            };
            self.step(forward, &mut best, &mut meet);
        }
        (meet != NO_VIA).then_some((best, meet))
    }

    /// Exact shortest-path cost, or `None` when unreachable. Bit-identical
    /// to Dijkstra on the same [`RoadNetwork`].
    pub fn cost(&mut self, source: NodeId, target: NodeId) -> Option<f64> {
        self.search(source, target).map(|(c, _)| c as f64)
    }

    /// Exact shortest path with shortcuts unpacked to original vertices.
    pub fn path(&mut self, source: NodeId, target: NodeId) -> Option<Path> {
        let (cost, meet) = self.search(source, target)?;
        if source == target {
            return Some(Path::trivial(source));
        }
        // Upward half: source .. meet (hops recorded child-to-parent).
        let mut hops: Vec<(u32, u32, u32)> = Vec::new();
        let mut cur = meet;
        while cur != source.0 {
            let p = self.parent_f[cur as usize];
            hops.push((p, cur, self.via_f[cur as usize]));
            cur = p;
        }
        hops.reverse();
        let mut nodes = vec![source];
        for (u, v, via) in hops {
            self.ch.unpack_append(u, v, via, &mut nodes);
        }
        // Downward half: meet .. target (parents point toward target).
        let mut cur = meet;
        while cur != target.0 {
            let nxt = self.parent_b[cur as usize];
            let via = self.via_b[cur as usize];
            self.ch.unpack_append(cur, nxt, via, &mut nodes);
            cur = nxt;
        }
        Some(Path { nodes, cost_s: cost as f64 })
    }

    /// Vertices settled by the last query (for the speedup benches).
    pub fn last_settled(&self) -> usize {
        self.settled_f.len() + self.settled_b.len()
    }
}

/// Bucket-based many-to-one kernel: exact costs from K sources to one
/// target in K upward sweeps plus a *single* downward sweep, instead of K
/// independent bidirectional searches (Knopp et al.'s many-to-many
/// algorithm, specialized to the dispatcher's "candidate taxis → pickup"
/// batch shape).
#[derive(Debug)]
pub struct ChBuckets {
    ch: Arc<ContractionHierarchy>,
    buckets: Vec<Vec<(u32, f32)>>,
    touched: Vec<u32>,
    dist: Vec<f32>,
    epoch_of: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<Reverse<HeapEntry>>,
    settled: Vec<u32>,
}

impl ChBuckets {
    /// Creates bucket scratch sized for `ch`.
    pub fn new(ch: Arc<ContractionHierarchy>) -> Self {
        let n = ch.node_count();
        Self {
            ch,
            buckets: vec![Vec::new(); n],
            touched: Vec::new(),
            dist: vec![f32::INFINITY; n],
            epoch_of: vec![0; n],
            epoch: 0,
            heap: BinaryHeap::new(),
            settled: Vec::new(),
        }
    }

    /// The shared hierarchy.
    #[inline]
    pub fn hierarchy(&self) -> &Arc<ContractionHierarchy> {
        &self.ch
    }

    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.epoch_of.iter_mut().for_each(|e| *e = 0);
            self.epoch = 1;
        }
        self.heap.clear();
        self.settled.clear();
    }

    #[inline]
    fn dist_at(&self, v: u32) -> f32 {
        if self.epoch_of[v as usize] == self.epoch {
            self.dist[v as usize]
        } else {
            f32::INFINITY
        }
    }

    /// One stalled upward sweep from `start`; `forward` picks the edge
    /// set. Settled vertices land in `self.settled`.
    fn sweep(&mut self, forward: bool, start: u32) {
        self.begin();
        self.epoch_of[start as usize] = self.epoch;
        self.dist[start as usize] = 0.0;
        self.heap.push(Reverse(HeapEntry { cost: 0.0, node: NodeId(start) }));
        while let Some(Reverse(HeapEntry { cost, node })) = self.heap.pop() {
            let v = node.0;
            if cost > self.dist_at(v) {
                continue;
            }
            let stalled = if forward {
                let r = self.ch.down_range(v);
                self.ch.down_sources[r.clone()]
                    .iter()
                    .zip(&self.ch.down_weights[r])
                    .any(|(&u, &w)| self.dist_at(u) + w < cost)
            } else {
                let r = self.ch.up_range(v);
                self.ch.up_targets[r.clone()]
                    .iter()
                    .zip(&self.ch.up_weights[r])
                    .any(|(&u, &w)| self.dist_at(u) + w < cost)
            };
            if stalled {
                continue;
            }
            self.settled.push(v);
            let r = if forward { self.ch.up_range(v) } else { self.ch.down_range(v) };
            for i in r {
                let t = if forward { self.ch.up_targets[i] } else { self.ch.down_sources[i] };
                let w = if forward { self.ch.up_weights[i] } else { self.ch.down_weights[i] };
                let nc = cost + w;
                if nc < self.dist_at(t) {
                    self.epoch_of[t as usize] = self.epoch;
                    self.dist[t as usize] = nc;
                    self.heap.push(Reverse(HeapEntry { cost: nc, node: NodeId(t) }));
                }
            }
        }
    }

    /// Exact shortest-path costs from every source to `target`
    /// (`None` = unreachable). Bit-identical to per-pair Dijkstra.
    pub fn many_to_one(&mut self, sources: &[NodeId], target: NodeId) -> Vec<Option<f64>> {
        self.ch.stats.bucket_sweeps.fetch_add(1, Relaxed);
        self.ch.stats.bucket_sources.fetch_add(sources.len() as u64, Relaxed);
        // Drop stale buckets from the previous batch.
        for &v in &self.touched {
            self.buckets[v as usize].clear();
        }
        self.touched.clear();

        // Upward sweeps: each source deposits (index, dist) at every
        // vertex of its search space.
        for (i, &s) in sources.iter().enumerate() {
            self.sweep(true, s.0);
            for k in 0..self.settled.len() {
                let v = self.settled[k];
                if self.buckets[v as usize].is_empty() {
                    self.touched.push(v);
                }
                self.buckets[v as usize].push((i as u32, self.dist[v as usize]));
            }
        }

        // One downward sweep from the target scans the buckets it meets.
        let mut best = vec![f32::INFINITY; sources.len()];
        self.sweep(false, target.0);
        for k in 0..self.settled.len() {
            let v = self.settled[k];
            let dt = self.dist[v as usize];
            for &(i, ds) in &self.buckets[v as usize] {
                let cand = ds + dt;
                if cand < best[i as usize] {
                    best[i as usize] = cand;
                }
            }
        }
        sources
            .iter()
            .zip(best)
            .map(|(&s, b)| if s == target { Some(0.0) } else { b.is_finite().then_some(b as f64) })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bidirectional::BidirDijkstra;
    use crate::dijkstra::Dijkstra;
    use mtshare_road::{grid_city, ring_radial_city, GridCityConfig, RingRadialConfig};
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn tiny() -> RoadNetwork {
        grid_city(&GridCityConfig::tiny()).unwrap()
    }

    #[test]
    fn costs_bit_identical_to_dijkstra_on_grid() {
        let g = tiny();
        let ch = Arc::new(ContractionHierarchy::build(&g, 2));
        let mut q = ChQuery::new(ch);
        let mut d = Dijkstra::new(&g);
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..200 {
            let s = NodeId(rng.gen_range(0..g.node_count() as u32));
            let t = NodeId(rng.gen_range(0..g.node_count() as u32));
            assert_eq!(q.cost(s, t), d.cost(&g, s, t), "{s}->{t}");
        }
    }

    #[test]
    fn costs_bit_identical_on_ring_radial() {
        let g = ring_radial_city(&RingRadialConfig::default()).unwrap();
        let ch = Arc::new(ContractionHierarchy::build(&g, 1));
        let mut q = ChQuery::new(ch);
        let mut d = Dijkstra::new(&g);
        let mut rng = SmallRng::seed_from_u64(12);
        for _ in 0..120 {
            let s = NodeId(rng.gen_range(0..g.node_count() as u32));
            let t = NodeId(rng.gen_range(0..g.node_count() as u32));
            assert_eq!(q.cost(s, t), d.cost(&g, s, t), "{s}->{t}");
        }
    }

    #[test]
    fn build_is_independent_of_worker_count() {
        let g = tiny();
        let a = ContractionHierarchy::build(&g, 1);
        let b = ContractionHierarchy::build(&g, 4);
        assert_eq!(a.rank, b.rank);
        assert_eq!(a.up_targets, b.up_targets);
        assert_eq!(a.down_sources, b.down_sources);
        assert_eq!(a.shortcut_count(), b.shortcut_count());
        // The full byte-identity contract: equal artifact digests.
        assert_eq!(a.artifact_digest(), b.artifact_digest());
        assert_eq!(a.artifact_digest(), ContractionHierarchy::build(&g, 2).artifact_digest());
    }

    #[test]
    fn unpacked_paths_are_valid_walks_with_exact_cost() {
        let g = tiny();
        let ch = Arc::new(ContractionHierarchy::build(&g, 2));
        let mut q = ChQuery::new(ch);
        let mut d = Dijkstra::new(&g);
        let mut rng = SmallRng::seed_from_u64(13);
        for _ in 0..60 {
            let s = NodeId(rng.gen_range(0..g.node_count() as u32));
            let t = NodeId(rng.gen_range(0..g.node_count() as u32));
            let p = q.path(s, t).unwrap();
            assert_eq!(p.start(), s);
            assert_eq!(p.end(), t);
            // Edge-by-edge f32 re-summation reproduces the query cost
            // exactly (dyadic weights ⇒ associative addition).
            let mut total = 0.0f32;
            for w in p.nodes.windows(2) {
                total += g.direct_edge_cost(w[0], w[1]).expect("adjacent");
            }
            assert_eq!(total as f64, p.cost_s, "{s}->{t}");
            assert_eq!(p.cost_s, d.cost(&g, s, t).unwrap());
        }
    }

    #[test]
    fn self_and_unreachable_queries() {
        use mtshare_road::{EdgeSpec, GeoPoint};
        let pts = vec![GeoPoint::new(30.0, 104.0), GeoPoint::new(30.001, 104.0)];
        let edges =
            vec![EdgeSpec { from: NodeId(0), to: NodeId(1), length_m: 10.0, speed_kmh: 15.0 }];
        let g = RoadNetwork::new(pts, &edges).unwrap();
        let ch = Arc::new(ContractionHierarchy::build(&g, 1));
        let mut q = ChQuery::new(ch.clone());
        assert_eq!(q.cost(NodeId(0), NodeId(0)), Some(0.0));
        assert_eq!(q.cost(NodeId(1), NodeId(0)), None);
        assert!(q.path(NodeId(1), NodeId(0)).is_none());
        assert_eq!(q.path(NodeId(1), NodeId(1)).unwrap().nodes, vec![NodeId(1)]);
        let mut b = ChBuckets::new(ch);
        let out = b.many_to_one(&[NodeId(0), NodeId(1)], NodeId(0));
        assert_eq!(out, vec![Some(0.0), None]);
    }

    #[test]
    fn buckets_match_per_pair_dijkstra_exactly() {
        let g = tiny();
        let ch = Arc::new(ContractionHierarchy::build(&g, 2));
        let mut b = ChBuckets::new(ch);
        let mut d = Dijkstra::new(&g);
        let mut rng = SmallRng::seed_from_u64(14);
        for _ in 0..6 {
            let target = NodeId(rng.gen_range(0..g.node_count() as u32));
            let sources: Vec<NodeId> =
                (0..24).map(|_| NodeId(rng.gen_range(0..g.node_count() as u32))).collect();
            let got = b.many_to_one(&sources, target);
            for (i, &s) in sources.iter().enumerate() {
                assert_eq!(got[i], d.cost(&g, s, target), "{s}->{target}");
            }
        }
        let st = b.hierarchy().stats();
        assert_eq!(st.bucket_sweeps, 6);
        assert_eq!(st.bucket_sources, 6 * 24);
    }

    #[test]
    fn queries_settle_far_fewer_vertices_than_bidirectional() {
        let g = grid_city(&GridCityConfig { rows: 40, cols: 40, ..Default::default() }).unwrap();
        let ch = Arc::new(ContractionHierarchy::build(&g, 2));
        let mut q = ChQuery::new(ch);
        let mut bi = BidirDijkstra::new(&g);
        let (s, t) = (NodeId(0), NodeId(g.node_count() as u32 - 1));
        assert_eq!(q.cost(s, t).unwrap(), bi.cost(&g, s, t).unwrap());
        assert!(
            q.last_settled() < g.node_count() / 4,
            "CH settled {} of {} vertices",
            q.last_settled(),
            g.node_count()
        );
    }

    #[test]
    fn artifact_round_trips_and_rejects_wrong_graph() {
        let dir = std::env::temp_dir().join(format!("mtshare-ch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ch.mtsnap");

        let g = tiny();
        let built = ContractionHierarchy::build(&g, 2);
        built.save(&path).unwrap();
        let loaded = ContractionHierarchy::load(&path, &g).unwrap();
        assert_eq!(built.rank, loaded.rank);
        assert_eq!(built.up_weights, loaded.up_weights);
        assert_eq!(built.shortcut_count(), loaded.shortcut_count());
        // Identical query results after the round trip.
        let mut q1 = ChQuery::new(Arc::new(built));
        let mut q2 = ChQuery::new(Arc::new(loaded));
        let mut rng = SmallRng::seed_from_u64(15);
        for _ in 0..40 {
            let s = NodeId(rng.gen_range(0..g.node_count() as u32));
            let t = NodeId(rng.gen_range(0..g.node_count() as u32));
            assert_eq!(q1.cost(s, t), q2.cost(s, t));
        }

        // A different graph (different seed ⇒ different jitter) must be
        // rejected with a digest mismatch, and load_or_build must rebuild.
        let other = grid_city(&GridCityConfig { seed: 99, ..GridCityConfig::tiny() }).unwrap();
        assert!(matches!(
            ContractionHierarchy::load(&path, &other),
            Err(PersistError::Mismatch(_))
        ));
        let (rebuilt, was_rebuilt) = ContractionHierarchy::load_or_build(&path, &other, 2).unwrap();
        assert!(was_rebuilt);
        assert_eq!(rebuilt.graph_digest(), other.digest());
        // The rewritten artifact now loads for the new graph.
        let (_, rebuilt_again) = ContractionHierarchy::load_or_build(&path, &other, 2).unwrap();
        assert!(!rebuilt_again);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_artifact_is_rebuilt_not_trusted() {
        let dir = std::env::temp_dir().join(format!("mtshare-ch-trunc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ch.mtsnap");
        let g = tiny();
        ContractionHierarchy::build(&g, 1).save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(ContractionHierarchy::load(&path, &g), Err(PersistError::Corrupt(_))));
        let (ch, rebuilt) = ContractionHierarchy::load_or_build(&path, &g, 1).unwrap();
        assert!(rebuilt);
        assert_eq!(ch.graph_digest(), g.digest());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatched_artifact_is_rejected_not_clobbered() {
        let dir = std::env::temp_dir().join(format!("mtshare-ch-ver-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ch.mtsnap");
        let g = tiny();

        // A healthy frame from a *previous* format version: correct tag,
        // matching graph digest, but version 1. The loader must fail with
        // the typed version error — not a decode panic — and
        // load_or_build must refuse to overwrite the file.
        let mut enc = Encoder::new();
        enc.bytes(ARTIFACT_TAG);
        enc.u32(1);
        enc.u64(g.digest());
        enc.u32(g.node_count() as u32);
        write_snapshot(&path, &enc.into_bytes()).unwrap();
        let before = std::fs::read(&path).unwrap();

        assert!(matches!(
            ContractionHierarchy::load(&path, &g),
            Err(PersistError::UnsupportedVersion { found: 1, expected: ARTIFACT_VERSION })
        ));
        assert!(matches!(
            ContractionHierarchy::load_or_build(&path, &g, 1),
            Err(PersistError::UnsupportedVersion { .. })
        ));
        assert_eq!(std::fs::read(&path).unwrap(), before, "stale artifact must stay intact");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
