//! Dijkstra restricted to an allowed vertex subset.
//!
//! This is the "segment-level routing" half of the paper's two-phase route
//! planning (Sec. IV-C2): after partition filtering selects a set of map
//! partitions, the shortest path is computed on the subgraph induced by
//! their vertices. Instead of materializing a subgraph we run Dijkstra with
//! a node mask, which costs one extra branch per relaxed edge and zero
//! allocation.
//!
//! The mask also supports per-vertex additive weights, which Algorithm 4
//! (probabilistic routing) uses to bias routes through vertices with high
//! probability of meeting suitable offline requests (weight `1/ψc`).

use crate::dijkstra::HeapEntry;
use crate::path::Path;
use mtshare_road::{NodeId, RoadNetwork};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Epoch-tagged vertex allow-list, reusable across queries.
#[derive(Debug)]
pub struct NodeMask {
    epoch_of: Vec<u32>,
    epoch: u32,
}

impl NodeMask {
    /// Creates a mask sized for `graph` with no vertices allowed.
    pub fn new(graph: &RoadNetwork) -> Self {
        Self { epoch_of: vec![0; graph.node_count()], epoch: 0 }
    }

    /// Clears the mask (O(1) amortized).
    pub fn clear(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.epoch_of.iter_mut().for_each(|e| *e = 0);
            self.epoch = 1;
        }
    }

    /// Allows `node`.
    #[inline]
    pub fn allow(&mut self, node: NodeId) {
        self.epoch_of[node.index()] = self.epoch;
    }

    /// Whether `node` is allowed.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        self.epoch_of[node.index()] == self.epoch
    }
}

/// Reusable Dijkstra over a masked subgraph with optional vertex weights.
#[derive(Debug)]
pub struct MaskedDijkstra {
    dist: Vec<f32>,
    parent: Vec<NodeId>,
    epoch_of: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<Reverse<HeapEntry>>,
}

impl MaskedDijkstra {
    /// Creates an engine sized for `graph`.
    pub fn new(graph: &RoadNetwork) -> Self {
        let n = graph.node_count();
        Self {
            dist: vec![f32::INFINITY; n],
            parent: vec![NodeId(u32::MAX); n],
            epoch_of: vec![0; n],
            epoch: 0,
            heap: BinaryHeap::new(),
        }
    }

    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.epoch_of.iter_mut().for_each(|e| *e = 0);
            self.epoch = 1;
        }
        self.heap.clear();
    }

    #[inline]
    fn dist_of(&self, node: NodeId) -> f32 {
        if self.epoch_of[node.index()] == self.epoch {
            self.dist[node.index()]
        } else {
            f32::INFINITY
        }
    }

    /// Shortest path from `source` to `target` visiting only vertices
    /// allowed by `mask`. Both endpoints must be allowed.
    ///
    /// When `vertex_weight` is provided, entering vertex `v` additionally
    /// costs `vertex_weight(v)`; the reported `cost_s` of the returned path
    /// is the *pure travel cost* (weights steer the search but do not count
    /// toward the deadline checks, matching Algorithm 4 step 3).
    pub fn path_masked(
        &mut self,
        graph: &RoadNetwork,
        source: NodeId,
        target: NodeId,
        mask: &NodeMask,
        vertex_weight: Option<&dyn Fn(NodeId) -> f32>,
    ) -> Option<Path> {
        if !mask.contains(source) || !mask.contains(target) {
            return None;
        }
        if source == target {
            return Some(Path::trivial(source));
        }
        self.begin();
        self.epoch_of[source.index()] = self.epoch;
        self.dist[source.index()] = 0.0;
        self.parent[source.index()] = source;
        self.heap.push(Reverse(HeapEntry { cost: 0.0, node: source }));
        while let Some(Reverse(HeapEntry { cost, node })) = self.heap.pop() {
            if cost > self.dist_of(node) {
                continue;
            }
            if node == target {
                break;
            }
            for (next, w) in graph.out_edges(node) {
                if !mask.contains(next) {
                    continue;
                }
                let extra = vertex_weight.map_or(0.0, |f| f(next).max(0.0));
                let nc = cost + w + extra;
                if nc < self.dist_of(next) {
                    self.epoch_of[next.index()] = self.epoch;
                    self.dist[next.index()] = nc;
                    self.parent[next.index()] = node;
                    self.heap.push(Reverse(HeapEntry { cost: nc, node: next }));
                }
            }
        }
        if self.dist_of(target).is_infinite() {
            return None;
        }
        // Unwind and recompute the pure travel cost along the walk.
        let mut nodes = vec![target];
        let mut cur = target;
        while cur != source {
            cur = self.parent[cur.index()];
            nodes.push(cur);
        }
        nodes.reverse();
        let mut travel = 0.0f64;
        for w in nodes.windows(2) {
            travel +=
                graph.direct_edge_cost(w[0], w[1]).expect("path edges exist in the graph") as f64;
        }
        Some(Path { nodes, cost_s: travel })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::Dijkstra;
    use mtshare_road::{grid_city, GridCityConfig};

    fn full_mask(g: &RoadNetwork) -> NodeMask {
        let mut m = NodeMask::new(g);
        m.clear();
        for n in g.nodes() {
            m.allow(n);
        }
        m
    }

    #[test]
    fn full_mask_matches_dijkstra() {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        let mask = full_mask(&g);
        let mut md = MaskedDijkstra::new(&g);
        let mut d = Dijkstra::new(&g);
        for (s, t) in [(0u32, 399u32), (20, 380), (111, 7)] {
            let got = md.path_masked(&g, NodeId(s), NodeId(t), &mask, None).unwrap();
            let want = d.cost(&g, NodeId(s), NodeId(t)).unwrap();
            assert!((got.cost_s - want).abs() < 1e-2);
        }
    }

    #[test]
    fn restricted_mask_blocks_or_detours() {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        // Allow only the first two rows (40 nodes of the 20x20 grid).
        let mut mask = NodeMask::new(&g);
        mask.clear();
        for i in 0..40u32 {
            mask.allow(NodeId(i));
        }
        let mut md = MaskedDijkstra::new(&g);
        // Path within the allowed strip must exist and only touch it.
        let p = md.path_masked(&g, NodeId(0), NodeId(39), &mask, None).unwrap();
        assert!(p.nodes.iter().all(|n| n.0 < 40));
        // Target outside the mask: no path.
        assert!(md.path_masked(&g, NodeId(0), NodeId(399), &mask, None).is_none());
    }

    #[test]
    fn masked_cost_is_at_least_unmasked() {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        let mut mask = NodeMask::new(&g);
        mask.clear();
        // Allow a thin L-shaped corridor from 0 to 399.
        for c in 0..20u32 {
            mask.allow(NodeId(c)); // row 0
            mask.allow(NodeId(19 + 20 * c)); // column 19
        }
        let mut md = MaskedDijkstra::new(&g);
        let mut d = Dijkstra::new(&g);
        if let Some(p) = md.path_masked(&g, NodeId(0), NodeId(399), &mask, None) {
            let free = d.cost(&g, NodeId(0), NodeId(399)).unwrap();
            assert!(p.cost_s >= free - 1e-2);
        }
    }

    #[test]
    fn vertex_weights_steer_but_do_not_count() {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        let mask = full_mask(&g);
        let mut md = MaskedDijkstra::new(&g);
        // Penalize the direct row so the path prefers another corridor.
        let weight = |n: NodeId| if n.0 < 20 { 1000.0 } else { 0.0 };
        let p = md.path_masked(&g, NodeId(0), NodeId(19), &mask, Some(&weight)).unwrap();
        // Travel cost reported must equal the actual walk cost.
        let mut total = 0.0f64;
        for w in p.nodes.windows(2) {
            total += g.direct_edge_cost(w[0], w[1]).unwrap() as f64;
        }
        assert!((total - p.cost_s).abs() < 1e-2);
        // The weighted search should leave row 0 at some point.
        assert!(p.nodes.iter().any(|n| n.0 >= 20));
    }

    #[test]
    fn endpoints_must_be_allowed() {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        let mut mask = NodeMask::new(&g);
        mask.clear();
        mask.allow(NodeId(0));
        let mut md = MaskedDijkstra::new(&g);
        assert!(md.path_masked(&g, NodeId(0), NodeId(1), &mask, None).is_none());
        assert!(md.path_masked(&g, NodeId(1), NodeId(0), &mask, None).is_none());
    }
}
