//! Customizable contraction hierarchies: metric-independent preprocessing
//! plus millisecond re-customization (Dibbelt, Strasser & Wagner's CCH).
//!
//! A plain [`crate::ContractionHierarchy`] bakes the metric into its node
//! order and shortcut weights, so a traffic change means seconds of
//! re-preprocessing. A CCH splits the work in three phases:
//!
//! 1. **Order + skeleton** (metric-independent, slow-but-rare): a
//!    nested-dissection order from the road geometry
//!    ([`crate::order::NodeOrder::nested_dissection`]), then the chordal
//!    *shortcut skeleton* obtained by simulating elimination in that
//!    order — when a vertex is eliminated, its higher-ranked neighbours
//!    become a clique. The skeleton depends only on topology.
//! 2. **Customization** (per metric, milliseconds): every skeleton arc
//!    `(v, w)` (with `rank v < rank w`) carries an upward weight (cost
//!    `v → w`) and a downward weight (cost `w → v`), seeded from the
//!    original edge costs (`∞` where no edge exists) and then tightened
//!    by one bottom-up *triangle relaxation* sweep: for each lower
//!    triangle `{u, v, w}` with `u` lowest, `up(v,w) ← min(up(v,w),
//!    down(u,v) + up(u,w))` and `down(v,w) ← min(down(v,w), down(u,w) +
//!    up(u,v))`, processing `u` in ascending rank order.
//! 3. **Query** (per pair, microseconds): a bidirectional *upward*
//!    search over the fixed skeleton — forward relaxes upward weights,
//!    backward relaxes downward weights — joined at the cheapest
//!    meeting vertex with μ-pruning and a smallest-id tie-break.
//!    Stall-on-demand is deliberately **omitted**: its classic proof
//!    needs shortcut weights that equal exact distances, which basic
//!    customization does not guarantee (weights are upper bounds that
//!    respect lower triangles — sufficient for search exactness, not
//!    for stalling).
//!
//! # Exactness and determinism
//!
//! Arc weights are f32 min-of-sums of dyadically quantized edge costs
//! ([`mtshare_road::COST_QUANTUM_S`]), so every sum is exact and a CCH
//! query is bit-identical to Dijkstra *on the customized graph* — the
//! equivalence suites assert `==`, no tolerance. Order, skeleton, and
//! customization are pure functions of their inputs with no parallelism
//! or randomness, so artifacts are byte-identical across runs.
//!
//! # Concurrency
//!
//! The skeleton is immutable after construction. The metric lives
//! behind an `RwLock<Arc<CchMetric>>` with a generation counter:
//! re-customization installs a fresh `Arc` (readers keep their pinned
//! snapshot), and query scratch refreshes its snapshot when the
//! generation moves. The simulator re-customizes only between events,
//! so all concurrent dispatch probes within one event batch read one
//! consistent generation.

use crate::dijkstra::HeapEntry;
use crate::order::NodeOrder;
use mtshare_persist::{fnv1a_64, read_snapshot, write_snapshot, Decoder, Encoder, PersistError};
use mtshare_road::{NodeId, RoadNetwork};
use parking_lot::RwLock;
use rustc_hash::FxHashSet;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Inner payload tag of the persisted artifact.
const ARTIFACT_TAG: &[u8; 4] = b"MTCC";

/// Inner payload version of the persisted artifact (in lockstep with the
/// plain-CH artifact family: v2 carries the metric generation counter).
const ARTIFACT_VERSION: u32 = 2;

/// Query/customization counters of a [`CustomizableCh`] (profiling only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CchStats {
    /// Point-to-point searches answered.
    pub p2p_queries: u64,
    /// Bucket many-to-one sweeps performed.
    pub bucket_sweeps: u64,
    /// Total sources across all bucket sweeps.
    pub bucket_sources: u64,
    /// Metric customizations performed (including the base one).
    pub customizations: u64,
}

#[derive(Debug, Default)]
struct AtomicCchStats {
    p2p_queries: AtomicU64,
    bucket_sweeps: AtomicU64,
    bucket_sources: AtomicU64,
    customizations: AtomicU64,
}

/// One customized metric over the fixed skeleton. Immutable; swapped in
/// wholesale by [`CustomizableCh::customize`].
#[derive(Debug)]
pub struct CchMetric {
    /// Monotone customization counter (0 = the base metric).
    generation: u64,
    /// Digest of the [`RoadNetwork`] this metric was customized from.
    graph_digest: u64,
    /// Per-arc cost in the low→high direction (`∞` = no such road).
    up_w: Vec<f32>,
    /// Per-arc cost in the high→low direction.
    down_w: Vec<f32>,
}

impl CchMetric {
    /// Monotone customization counter (0 = the base metric).
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Digest of the road network this metric was customized from.
    #[inline]
    pub fn graph_digest(&self) -> u64 {
        self.graph_digest
    }
}

/// The metric-independent hierarchy: nested-dissection order plus the
/// chordal shortcut skeleton, with the current metric swapped in behind
/// a lock. Share it with `Arc`; queries keep their own scratch.
#[derive(Debug)]
pub struct CustomizableCh {
    /// Digest of the road network the *skeleton* was built from (the
    /// base topology). Customized metrics may carry other digests.
    base_digest: u64,
    /// Vertices in elimination sequence (`order[k]` eliminated at `k`).
    order: Vec<u32>,
    /// Elimination position per vertex id.
    rank: Vec<u32>,
    // Skeleton in CSR form, indexed by the *lower*-ranked endpoint;
    // targets sorted by vertex id within each row.
    up_offsets: Vec<u32>,
    up_targets: Vec<u32>,
    /// Arcs the elimination added beyond the original undirected edges.
    fill_arcs: u64,
    /// Lower-triangle sweep schedule: one `(via_down, via_up, target)`
    /// arc-index triple per lower triangle, in bottom-up elimination
    /// order. Metric-independent, so it is computed once per skeleton
    /// (never persisted — rebuilt on load) and turns each customization
    /// into a flat linear sweep with no per-triangle index search.
    triangles: Vec<(u32, u32, u32)>,
    metric: RwLock<Arc<CchMetric>>,
    next_generation: AtomicU64,
    stats: AtomicCchStats,
}

impl CustomizableCh {
    /// Builds the hierarchy for `graph` and customizes it with the
    /// graph's own (base) metric — generation 0.
    pub fn build(graph: &RoadNetwork) -> Self {
        let (order, rank) = NodeOrder::nested_dissection(graph).into_parts();
        let (up_offsets, up_targets, fill_arcs) = skeleton(graph, &order);
        let triangles = triangle_schedule(&order, &rank, &up_offsets, &up_targets);
        let cch = Self {
            base_digest: graph.digest(),
            order,
            rank,
            up_offsets,
            up_targets,
            fill_arcs,
            triangles,
            metric: RwLock::new(Arc::new(CchMetric {
                generation: 0,
                graph_digest: 0,
                up_w: Vec::new(),
                down_w: Vec::new(),
            })),
            next_generation: AtomicU64::new(0),
            stats: AtomicCchStats::default(),
        };
        cch.customize(graph);
        cch
    }

    /// Re-customizes the hierarchy with the metric of `graph` (same
    /// topology as the base graph, possibly different edge costs — e.g.
    /// a regionally shifted copy from
    /// [`mtshare_road::apply_traffic_shifts`]). Returns the new metric
    /// generation. Milliseconds on city-scale graphs; see the module
    /// docs for the algorithm.
    ///
    /// # Panics
    /// Panics when `graph` has a different vertex count or contains an
    /// edge the skeleton does not cover (i.e. a different topology).
    pub fn customize(&self, graph: &RoadNetwork) -> u64 {
        assert_eq!(
            graph.node_count(),
            self.rank.len(),
            "customization graph must share the skeleton's topology"
        );
        let m = self.up_targets.len();
        let mut up_w = vec![f32::INFINITY; m];
        let mut down_w = vec![f32::INFINITY; m];
        // Seed from the original edges (parallel edges collapse to min).
        for u in graph.nodes() {
            for (v, w) in graph.out_edges(u) {
                if v == u {
                    continue;
                }
                let upward = self.rank[u.index()] < self.rank[v.index()];
                let (lo, hi) = if upward { (u.0, v.0) } else { (v.0, u.0) };
                let i = self.arc_index(lo, hi).expect("edge is covered by the skeleton");
                let slot = if upward { &mut up_w[i] } else { &mut down_w[i] };
                if w < *slot {
                    *slot = w;
                }
            }
        }
        // Bottom-up triangle relaxation: the precomputed schedule lists
        // every lower triangle in elimination order of its lowest
        // vertex, so by the time a triple targeting arc `t` runs, both
        // via-arcs are final. Same relaxations in the same order as the
        // naive nested loop — the resulting metric is bit-identical.
        for &(va, wa, t) in &self.triangles {
            let (va, wa, t) = (va as usize, wa as usize, t as usize);
            let via_up = down_w[va] + up_w[wa];
            if via_up < up_w[t] {
                up_w[t] = via_up;
            }
            let via_down = down_w[wa] + up_w[va];
            if via_down < down_w[t] {
                down_w[t] = via_down;
            }
        }
        let generation = self.next_generation.fetch_add(1, Relaxed);
        *self.metric.write() =
            Arc::new(CchMetric { generation, graph_digest: graph.digest(), up_w, down_w });
        self.stats.customizations.fetch_add(1, Relaxed);
        generation
    }

    /// The current metric snapshot (readers keep it consistent across a
    /// concurrent re-customization).
    pub fn metric(&self) -> Arc<CchMetric> {
        self.metric.read().clone()
    }

    /// Generation of the current metric (0 = base).
    pub fn generation(&self) -> u64 {
        self.metric.read().generation
    }

    /// Digest of the road network the current metric was customized from.
    pub fn metric_graph_digest(&self) -> u64 {
        self.metric.read().graph_digest
    }

    /// Digest of the base road network the skeleton was built from.
    #[inline]
    pub fn graph_digest(&self) -> u64 {
        self.base_digest
    }

    /// Number of vertices.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.rank.len()
    }

    /// Number of skeleton arcs (each carries an up and a down weight).
    #[inline]
    pub fn arc_count(&self) -> u64 {
        self.up_targets.len() as u64
    }

    /// Arcs the elimination added beyond the original undirected edges —
    /// the CCH analog of a plain CH's shortcut count.
    #[inline]
    pub fn fill_arc_count(&self) -> u64 {
        self.fill_arcs
    }

    /// Snapshot of the query/customization counters.
    pub fn stats(&self) -> CchStats {
        CchStats {
            p2p_queries: self.stats.p2p_queries.load(Relaxed),
            bucket_sweeps: self.stats.bucket_sweeps.load(Relaxed),
            bucket_sources: self.stats.bucket_sources.load(Relaxed),
            customizations: self.stats.customizations.load(Relaxed),
        }
    }

    /// Approximate resident memory of skeleton + metric in bytes.
    pub fn memory_bytes(&self) -> usize {
        (self.order.len() + self.rank.len() + self.up_offsets.len()) * 4
            + self.up_targets.len() * 4
            + self.triangles.len() * std::mem::size_of::<(u32, u32, u32)>()
            + self.metric.read().up_w.len() * 8
    }

    #[inline]
    fn up_range(&self, v: u32) -> std::ops::Range<usize> {
        self.up_offsets[v as usize] as usize..self.up_offsets[v as usize + 1] as usize
    }

    /// Index of arc `(lo, hi)` in the weight arrays, `None` if absent.
    #[inline]
    fn arc_index(&self, lo: u32, hi: u32) -> Option<usize> {
        let r = self.up_range(lo);
        self.up_targets[r.clone()].binary_search(&hi).ok().map(|i| r.start + i)
    }

    // ---- persistence ----------------------------------------------------

    /// Canonical artifact payload: tag, version, base digest, metric
    /// generation + digest, order, skeleton CSR, weight bit patterns.
    fn encode(&self) -> Vec<u8> {
        let metric = self.metric.read();
        let mut enc = Encoder::new();
        enc.bytes(ARTIFACT_TAG);
        enc.u32(ARTIFACT_VERSION);
        enc.u64(self.base_digest);
        enc.u64(metric.generation);
        enc.u64(metric.graph_digest);
        enc.u32(self.rank.len() as u32);
        for chunk in [&self.order, &self.up_offsets, &self.up_targets] {
            enc.u64(chunk.len() as u64);
            for &x in chunk.iter() {
                enc.u32(x);
            }
        }
        for chunk in [&metric.up_w, &metric.down_w] {
            enc.u64(chunk.len() as u64);
            for &w in chunk.iter() {
                enc.u32(w.to_bits());
            }
        }
        enc.u64(self.fill_arcs);
        enc.into_bytes()
    }

    /// FNV-1a digest of the canonical artifact payload: equal digests
    /// mean byte-identical artifacts.
    pub fn artifact_digest(&self) -> u64 {
        fnv1a_64(&self.encode())
    }

    /// Serializes order, skeleton, and the *current* metric into a
    /// CRC-framed snapshot at `path`. Returns the file size in bytes.
    pub fn save(&self, path: &std::path::Path) -> Result<u64, PersistError> {
        write_snapshot(path, &self.encode()).map(|stats| stats.bytes)
    }

    /// Loads a hierarchy from `path`, validating the CRC frame, format
    /// version, and that its skeleton was built from exactly this
    /// `graph` (base digest match).
    pub fn load(path: &std::path::Path, graph: &RoadNetwork) -> Result<Self, PersistError> {
        let payload = read_snapshot(path)?;
        let mut dec = Decoder::new(&payload);
        if dec.bytes()? != ARTIFACT_TAG {
            return Err(PersistError::Corrupt(format!(
                "{}: not a customizable-hierarchy artifact",
                path.display()
            )));
        }
        let version = dec.u32()?;
        if version != ARTIFACT_VERSION {
            return Err(PersistError::UnsupportedVersion {
                found: version,
                expected: ARTIFACT_VERSION,
            });
        }
        let base_digest = dec.u64()?;
        if base_digest != graph.digest() {
            return Err(PersistError::Mismatch(format!(
                "{}: built for graph {base_digest:#018x}, current graph is {:#018x}",
                path.display(),
                graph.digest()
            )));
        }
        let generation = dec.u64()?;
        let metric_digest = dec.u64()?;
        let n = dec.u32()? as usize;
        if n != graph.node_count() {
            return Err(PersistError::Mismatch(format!(
                "{}: {n} vertices, graph has {}",
                path.display(),
                graph.node_count()
            )));
        }
        fn read_u32s(dec: &mut Decoder<'_>) -> Result<Vec<u32>, PersistError> {
            let len = dec.u64()? as usize;
            let mut v = Vec::with_capacity(len.min(1 << 24));
            for _ in 0..len {
                v.push(dec.u32()?);
            }
            Ok(v)
        }
        let order = read_u32s(&mut dec)?;
        let up_offsets = read_u32s(&mut dec)?;
        let up_targets = read_u32s(&mut dec)?;
        let up_w: Vec<f32> = read_u32s(&mut dec)?.into_iter().map(f32::from_bits).collect();
        let down_w: Vec<f32> = read_u32s(&mut dec)?.into_iter().map(f32::from_bits).collect();
        let fill_arcs = dec.u64()?;
        if order.len() != n
            || up_offsets.len() != n + 1
            || up_w.len() != up_targets.len()
            || down_w.len() != up_targets.len()
        {
            return Err(PersistError::Corrupt(format!(
                "{}: inconsistent array arities",
                path.display()
            )));
        }
        let mut rank = vec![u32::MAX; n];
        for (k, &v) in order.iter().enumerate() {
            if (v as usize) >= n || rank[v as usize] != u32::MAX {
                return Err(PersistError::Corrupt(format!(
                    "{}: order is not a permutation",
                    path.display()
                )));
            }
            rank[v as usize] = k as u32;
        }
        let triangles = triangle_schedule(&order, &rank, &up_offsets, &up_targets);
        Ok(Self {
            base_digest,
            order,
            rank,
            up_offsets,
            up_targets,
            fill_arcs,
            triangles,
            metric: RwLock::new(Arc::new(CchMetric {
                generation,
                graph_digest: metric_digest,
                up_w,
                down_w,
            })),
            next_generation: AtomicU64::new(generation + 1),
            stats: AtomicCchStats::default(),
        })
    }

    /// Loads the artifact at `path` if it is valid for `graph`; a
    /// missing, corrupt, or wrong-graph artifact triggers a rebuild and
    /// a (best-effort) rewrite. A *version* mismatch propagates as
    /// [`PersistError::UnsupportedVersion`] instead of clobbering a
    /// healthy artifact from an incompatible build. Returns the
    /// hierarchy and whether it was rebuilt.
    pub fn load_or_build(
        path: &std::path::Path,
        graph: &RoadNetwork,
    ) -> Result<(Self, bool), PersistError> {
        match Self::load(path, graph) {
            Ok(cch) => Ok((cch, false)),
            Err(e @ PersistError::UnsupportedVersion { .. }) => Err(e),
            Err(_) => {
                let cch = Self::build(graph);
                let _ = cch.save(path);
                Ok((cch, true))
            }
        }
    }
}

/// Enumerates the lower triangles of the chordal skeleton in bottom-up
/// elimination order: for each vertex `u` (lowest corner) and each pair
/// of up-neighbours `{v, w}` with `rank(v) < rank(w)`, emits the arc
/// indices `(u→v, u→w, v→w)` — the two via-arcs and the relaxation
/// target. The skeleton is chordal, so the `v→w` arc always exists.
fn triangle_schedule(
    order: &[u32],
    rank: &[u32],
    up_offsets: &[u32],
    up_targets: &[u32],
) -> Vec<(u32, u32, u32)> {
    let row = |v: u32| up_offsets[v as usize] as usize..up_offsets[v as usize + 1] as usize;
    let arc_index = |lo: u32, hi: u32| {
        let r = row(lo);
        r.start + up_targets[r].binary_search(&hi).expect("clique arc exists")
    };
    let mut triangles = Vec::new();
    for &u in order {
        let r = row(u);
        for i in r.clone() {
            for j in i + 1..r.end {
                let (a, b) = (up_targets[i], up_targets[j]);
                let (va, wa, v, w) =
                    if rank[a as usize] < rank[b as usize] { (i, j, a, b) } else { (j, i, b, a) };
                triangles.push((va as u32, wa as u32, arc_index(v, w) as u32));
            }
        }
    }
    triangles
}

/// Simulates elimination in `order` over the undirected adjacency of
/// `graph`: when a vertex is eliminated its higher-ranked neighbours
/// become a clique. Returns the up-CSR (indexed by the lower endpoint,
/// targets sorted by id) and the fill-arc count.
fn skeleton(graph: &RoadNetwork, order: &[u32]) -> (Vec<u32>, Vec<u32>, u64) {
    let n = graph.node_count();
    let mut nbrs: Vec<FxHashSet<u32>> = vec![FxHashSet::default(); n];
    for u in graph.nodes() {
        for (v, _) in graph.out_edges(u) {
            if v != u {
                nbrs[u.index()].insert(v.0);
                nbrs[v.index()].insert(u.0);
            }
        }
    }
    let original: u64 = nbrs.iter().map(|s| s.len() as u64).sum::<u64>() / 2;

    let mut up: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &u in order {
        // Lower-ranked neighbours removed themselves on elimination, so
        // the residual set is exactly the higher-ranked neighbourhood.
        let mut hi: Vec<u32> = nbrs[u as usize].iter().copied().collect();
        hi.sort_unstable();
        for (i, &a) in hi.iter().enumerate() {
            nbrs[a as usize].remove(&u);
            for &b in &hi[i + 1..] {
                nbrs[a as usize].insert(b);
                nbrs[b as usize].insert(a);
            }
        }
        up[u as usize] = hi;
    }

    let mut up_offsets = Vec::with_capacity(n + 1);
    let mut up_targets = Vec::new();
    up_offsets.push(0u32);
    for adj in &up {
        up_targets.extend_from_slice(adj);
        up_offsets.push(up_targets.len() as u32);
    }
    let fill = (up_targets.len() as u64).saturating_sub(original);
    (up_offsets, up_targets, fill)
}

/// Reusable point-to-point query scratch over a shared [`CustomizableCh`].
///
/// Cost-only: paths come from the cache's bidirectional engine like
/// every other backend. The scratch pins a metric snapshot and refreshes
/// it when the hierarchy's generation moves.
#[derive(Debug)]
pub struct CchQuery {
    cch: Arc<CustomizableCh>,
    metric: Arc<CchMetric>,
    dist_f: Vec<f32>,
    dist_b: Vec<f32>,
    epoch_of_f: Vec<u32>,
    epoch_of_b: Vec<u32>,
    epoch: u32,
    heap_f: BinaryHeap<Reverse<HeapEntry>>,
    heap_b: BinaryHeap<Reverse<HeapEntry>>,
    settled: usize,
}

impl CchQuery {
    /// Creates query scratch sized for `cch`.
    pub fn new(cch: Arc<CustomizableCh>) -> Self {
        let n = cch.node_count();
        let metric = cch.metric();
        Self {
            cch,
            metric,
            dist_f: vec![f32::INFINITY; n],
            dist_b: vec![f32::INFINITY; n],
            epoch_of_f: vec![0; n],
            epoch_of_b: vec![0; n],
            epoch: 0,
            heap_f: BinaryHeap::new(),
            heap_b: BinaryHeap::new(),
            settled: 0,
        }
    }

    /// The shared hierarchy.
    #[inline]
    pub fn hierarchy(&self) -> &Arc<CustomizableCh> {
        &self.cch
    }

    fn begin(&mut self) {
        if self.metric.generation != self.cch.generation() {
            self.metric = self.cch.metric();
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.epoch_of_f.iter_mut().for_each(|e| *e = 0);
            self.epoch_of_b.iter_mut().for_each(|e| *e = 0);
            self.epoch = 1;
        }
        self.settled = 0;
    }

    #[inline]
    fn dist(&self, forward: bool, v: u32) -> f32 {
        let (epochs, dist) = if forward {
            (&self.epoch_of_f, &self.dist_f)
        } else {
            (&self.epoch_of_b, &self.dist_b)
        };
        if epochs[v as usize] == self.epoch {
            dist[v as usize]
        } else {
            f32::INFINITY
        }
    }

    /// One settle step of the upward search in `forward` direction, with
    /// μ-pruning (always safe: a push at cost ≥ μ can never improve the
    /// meeting). See the module docs for why there is no stalling.
    fn step(&mut self, forward: bool, best: &mut f32, meet: &mut u32) {
        let popped = if forward { self.heap_f.pop() } else { self.heap_b.pop() };
        let Some(Reverse(HeapEntry { cost, node })) = popped else { return };
        let v = node.0;
        if cost > self.dist(forward, v) {
            return;
        }
        let other = self.dist(!forward, v);
        if other.is_finite() {
            let cand = cost + other;
            if cand < *best || (cand == *best && v < *meet) {
                *best = cand;
                *meet = v;
            }
        }
        self.settled += 1;
        let r = self.cch.up_range(v);
        for i in r {
            let w = if forward { self.metric.up_w[i] } else { self.metric.down_w[i] };
            if !w.is_finite() {
                continue;
            }
            let t = self.cch.up_targets[i];
            let nc = cost + w;
            if nc < self.dist(forward, t) && nc < *best {
                if forward {
                    self.epoch_of_f[t as usize] = self.epoch;
                    self.dist_f[t as usize] = nc;
                    self.heap_f.push(Reverse(HeapEntry { cost: nc, node: NodeId(t) }));
                } else {
                    self.epoch_of_b[t as usize] = self.epoch;
                    self.dist_b[t as usize] = nc;
                    self.heap_b.push(Reverse(HeapEntry { cost: nc, node: NodeId(t) }));
                }
            }
        }
    }

    /// Exact shortest-path cost on the *customized* graph, or `None`
    /// when unreachable. Bit-identical to Dijkstra on that graph.
    pub fn cost(&mut self, source: NodeId, target: NodeId) -> Option<f64> {
        self.cch.stats.p2p_queries.fetch_add(1, Relaxed);
        if source == target {
            return Some(0.0);
        }
        self.begin();
        self.heap_f.clear();
        self.heap_b.clear();
        self.epoch_of_f[source.index()] = self.epoch;
        self.dist_f[source.index()] = 0.0;
        self.heap_f.push(Reverse(HeapEntry { cost: 0.0, node: source }));
        self.epoch_of_b[target.index()] = self.epoch;
        self.dist_b[target.index()] = 0.0;
        self.heap_b.push(Reverse(HeapEntry { cost: 0.0, node: target }));

        let mut best = f32::INFINITY;
        let mut meet = u32::MAX;
        loop {
            let f_top = self.heap_f.peek().map(|e| e.0.cost);
            let b_top = self.heap_b.peek().map(|e| e.0.cost);
            let f_live = f_top.is_some_and(|c| c < best);
            let b_live = b_top.is_some_and(|c| c < best);
            let forward = match (f_live, b_live) {
                (false, false) => break,
                (true, false) => true,
                (false, true) => false,
                (true, true) => f_top <= b_top,
            };
            self.step(forward, &mut best, &mut meet);
        }
        (meet != u32::MAX).then_some(best as f64)
    }

    /// Vertices settled by the last query (for the speedup benches).
    pub fn last_settled(&self) -> usize {
        self.settled
    }
}

/// Bucket-based many-to-one kernel over the CCH skeleton: the analog of
/// [`crate::ChBuckets`] on the customized metric — K upward sweeps
/// deposit `(source, dist)` buckets, one downward-direction sweep from
/// the target scans them.
#[derive(Debug)]
pub struct CchBuckets {
    cch: Arc<CustomizableCh>,
    metric: Arc<CchMetric>,
    buckets: Vec<Vec<(u32, f32)>>,
    touched: Vec<u32>,
    dist: Vec<f32>,
    epoch_of: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<Reverse<HeapEntry>>,
    settled: Vec<u32>,
}

impl CchBuckets {
    /// Creates bucket scratch sized for `cch`.
    pub fn new(cch: Arc<CustomizableCh>) -> Self {
        let n = cch.node_count();
        let metric = cch.metric();
        Self {
            cch,
            metric,
            buckets: vec![Vec::new(); n],
            touched: Vec::new(),
            dist: vec![f32::INFINITY; n],
            epoch_of: vec![0; n],
            epoch: 0,
            heap: BinaryHeap::new(),
            settled: Vec::new(),
        }
    }

    /// The shared hierarchy.
    #[inline]
    pub fn hierarchy(&self) -> &Arc<CustomizableCh> {
        &self.cch
    }

    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.epoch_of.iter_mut().for_each(|e| *e = 0);
            self.epoch = 1;
        }
        self.heap.clear();
        self.settled.clear();
    }

    #[inline]
    fn dist_at(&self, v: u32) -> f32 {
        if self.epoch_of[v as usize] == self.epoch {
            self.dist[v as usize]
        } else {
            f32::INFINITY
        }
    }

    /// One upward sweep from `start`; `forward` picks the weight array.
    fn sweep(&mut self, forward: bool, start: u32) {
        self.begin();
        self.epoch_of[start as usize] = self.epoch;
        self.dist[start as usize] = 0.0;
        self.heap.push(Reverse(HeapEntry { cost: 0.0, node: NodeId(start) }));
        while let Some(Reverse(HeapEntry { cost, node })) = self.heap.pop() {
            let v = node.0;
            if cost > self.dist_at(v) {
                continue;
            }
            self.settled.push(v);
            let r = self.cch.up_range(v);
            for i in r {
                let w = if forward { self.metric.up_w[i] } else { self.metric.down_w[i] };
                if !w.is_finite() {
                    continue;
                }
                let t = self.cch.up_targets[i];
                let nc = cost + w;
                if nc < self.dist_at(t) {
                    self.epoch_of[t as usize] = self.epoch;
                    self.dist[t as usize] = nc;
                    self.heap.push(Reverse(HeapEntry { cost: nc, node: NodeId(t) }));
                }
            }
        }
    }

    /// Exact shortest-path costs from every source to `target` on the
    /// customized graph (`None` = unreachable). Bit-identical to
    /// per-pair Dijkstra on that graph.
    pub fn many_to_one(&mut self, sources: &[NodeId], target: NodeId) -> Vec<Option<f64>> {
        if self.metric.generation != self.cch.generation() {
            self.metric = self.cch.metric();
        }
        self.cch.stats.bucket_sweeps.fetch_add(1, Relaxed);
        self.cch.stats.bucket_sources.fetch_add(sources.len() as u64, Relaxed);
        for &v in &self.touched {
            self.buckets[v as usize].clear();
        }
        self.touched.clear();

        for (i, &s) in sources.iter().enumerate() {
            self.sweep(true, s.0);
            for k in 0..self.settled.len() {
                let v = self.settled[k];
                if self.buckets[v as usize].is_empty() {
                    self.touched.push(v);
                }
                self.buckets[v as usize].push((i as u32, self.dist[v as usize]));
            }
        }

        let mut best = vec![f32::INFINITY; sources.len()];
        self.sweep(false, target.0);
        for k in 0..self.settled.len() {
            let v = self.settled[k];
            let dt = self.dist[v as usize];
            for &(i, ds) in &self.buckets[v as usize] {
                let cand = ds + dt;
                if cand < best[i as usize] {
                    best[i as usize] = cand;
                }
            }
        }
        sources
            .iter()
            .zip(best)
            .map(|(&s, b)| if s == target { Some(0.0) } else { b.is_finite().then_some(b as f64) })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::Dijkstra;
    use mtshare_road::{
        apply_traffic_shifts, grid_city, ring_radial_city, GridCityConfig, RingRadialConfig,
        TrafficShiftSpec,
    };
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn tiny() -> RoadNetwork {
        grid_city(&GridCityConfig::tiny()).unwrap()
    }

    fn shift(center: u32, radius_m: f64, factor: f64) -> TrafficShiftSpec {
        TrafficShiftSpec { center: NodeId(center), radius_m, factor, start_s: 0.0, duration_s: 1.0 }
    }

    #[test]
    fn base_costs_bit_identical_to_dijkstra_on_grid_and_ring() {
        for g in [tiny(), ring_radial_city(&RingRadialConfig::default()).unwrap()] {
            let cch = Arc::new(CustomizableCh::build(&g));
            let mut q = CchQuery::new(cch);
            let mut d = Dijkstra::new(&g);
            let mut rng = SmallRng::seed_from_u64(21);
            for _ in 0..150 {
                let s = NodeId(rng.gen_range(0..g.node_count() as u32));
                let t = NodeId(rng.gen_range(0..g.node_count() as u32));
                assert_eq!(q.cost(s, t), d.cost(&g, s, t), "{s}->{t}");
            }
        }
    }

    #[test]
    fn recustomized_costs_match_dijkstra_on_shifted_graph() {
        let g = tiny();
        let cch = Arc::new(CustomizableCh::build(&g));
        assert_eq!(cch.generation(), 0);
        let shifted = apply_traffic_shifts(&g, &[shift(0, 500.0, 2.5)]).unwrap();
        assert_eq!(cch.customize(&shifted), 1);
        assert_eq!(cch.metric_graph_digest(), shifted.digest());

        let mut q = CchQuery::new(cch.clone());
        let mut d = Dijkstra::new(&shifted);
        let mut rng = SmallRng::seed_from_u64(22);
        for _ in 0..150 {
            let s = NodeId(rng.gen_range(0..g.node_count() as u32));
            let t = NodeId(rng.gen_range(0..g.node_count() as u32));
            assert_eq!(q.cost(s, t), d.cost(&shifted, s, t), "{s}->{t}");
        }

        // Restoring the base metric restores base answers exactly.
        assert_eq!(cch.customize(&g), 2);
        let mut db = Dijkstra::new(&g);
        for _ in 0..60 {
            let s = NodeId(rng.gen_range(0..g.node_count() as u32));
            let t = NodeId(rng.gen_range(0..g.node_count() as u32));
            assert_eq!(q.cost(s, t), db.cost(&g, s, t), "{s}->{t}");
        }
        assert_eq!(cch.stats().customizations, 3);
    }

    #[test]
    fn buckets_match_per_pair_dijkstra_across_customizations() {
        let g = tiny();
        let cch = Arc::new(CustomizableCh::build(&g));
        let mut b = CchBuckets::new(cch.clone());
        let mut rng = SmallRng::seed_from_u64(23);
        for round in 0..4 {
            let graph = if round % 2 == 0 {
                g.clone()
            } else {
                apply_traffic_shifts(&g, &[shift(round * 37, 400.0, 1.8)]).unwrap()
            };
            cch.customize(&graph);
            let mut d = Dijkstra::new(&graph);
            let target = NodeId(rng.gen_range(0..g.node_count() as u32));
            let sources: Vec<NodeId> =
                (0..16).map(|_| NodeId(rng.gen_range(0..g.node_count() as u32))).collect();
            let got = b.many_to_one(&sources, target);
            for (i, &s) in sources.iter().enumerate() {
                assert_eq!(got[i], d.cost(&graph, s, target), "round {round}: {s}->{target}");
            }
        }
    }

    #[test]
    fn self_and_unreachable_queries() {
        use mtshare_road::{EdgeSpec, GeoPoint};
        let pts = vec![GeoPoint::new(30.0, 104.0), GeoPoint::new(30.001, 104.0)];
        let edges =
            vec![EdgeSpec { from: NodeId(0), to: NodeId(1), length_m: 10.0, speed_kmh: 15.0 }];
        let g = RoadNetwork::new(pts, &edges).unwrap();
        let cch = Arc::new(CustomizableCh::build(&g));
        let mut q = CchQuery::new(cch.clone());
        assert_eq!(q.cost(NodeId(0), NodeId(0)), Some(0.0));
        assert!(q.cost(NodeId(0), NodeId(1)).is_some());
        assert_eq!(q.cost(NodeId(1), NodeId(0)), None);
        let mut b = CchBuckets::new(cch);
        assert_eq!(b.many_to_one(&[NodeId(0), NodeId(1)], NodeId(0)), vec![Some(0.0), None]);
    }

    #[test]
    fn build_is_deterministic() {
        let g = tiny();
        let a = CustomizableCh::build(&g);
        let b = CustomizableCh::build(&g);
        assert_eq!(a.artifact_digest(), b.artifact_digest());
        assert!(a.arc_count() > 0);
        assert!(a.fill_arc_count() > 0);
        assert!(a.memory_bytes() > 0);
    }

    #[test]
    fn artifact_round_trips_and_rejects_stale_or_wrong_version() {
        let dir = std::env::temp_dir().join(format!("mtshare-cch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cch.mtsnap");
        let g = tiny();

        let built = CustomizableCh::build(&g);
        built.save(&path).unwrap();
        let loaded = CustomizableCh::load(&path, &g).unwrap();
        assert_eq!(loaded.artifact_digest(), built.artifact_digest());
        assert_eq!(loaded.generation(), 0);
        // Loaded hierarchies keep customizing from where the file left off.
        assert_eq!(loaded.customize(&g), 1);

        // Wrong graph: digest mismatch, load_or_build rebuilds.
        let other = grid_city(&GridCityConfig { seed: 99, ..GridCityConfig::tiny() }).unwrap();
        assert!(matches!(CustomizableCh::load(&path, &other), Err(PersistError::Mismatch(_))));
        let (rebuilt, was_rebuilt) = CustomizableCh::load_or_build(&path, &other).unwrap();
        assert!(was_rebuilt);
        assert_eq!(rebuilt.graph_digest(), other.digest());

        // Wrong version: typed error, artifact left intact.
        let mut enc = Encoder::new();
        enc.bytes(ARTIFACT_TAG);
        enc.u32(1);
        enc.u64(other.digest());
        write_snapshot(&path, &enc.into_bytes()).unwrap();
        let before = std::fs::read(&path).unwrap();
        assert!(matches!(
            CustomizableCh::load(&path, &other),
            Err(PersistError::UnsupportedVersion { found: 1, expected: ARTIFACT_VERSION })
        ));
        assert!(matches!(
            CustomizableCh::load_or_build(&path, &other),
            Err(PersistError::UnsupportedVersion { .. })
        ));
        assert_eq!(std::fs::read(&path).unwrap(), before);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
