//! ALT: A* with landmark lower bounds (Goldberg & Harrelson).
//!
//! mT-Share already precomputes exact travel costs between every partition
//! landmark and every vertex (the [`CostMatrix`] behind partition
//! filtering). ALT reuses those tables as admissible A* heuristics via the
//! triangle inequality:
//!
//! ```text
//! d(v, t) ≥ d(ℓ, t) − d(ℓ, v)      (forward table of landmark ℓ)
//! d(v, t) ≥ d(v, ℓ) − d(t, ℓ)      (backward table of landmark ℓ)
//! ```
//!
//! The heuristic is exact along corridors aligned with a landmark, so ALT
//! typically settles far fewer vertices than geometric A* on city grids —
//! the engine the paper's "speedup route planning with landmarks"
//! aspiration maps to.

use crate::dijkstra::HeapEntry;
use crate::matrix::CostMatrix;
use crate::path::Path;
use mtshare_road::{NodeId, RoadNetwork};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reusable ALT engine over a fixed landmark set.
pub struct Alt {
    /// Landmark cost tables (forward + backward rows per landmark).
    matrix: CostMatrix,
    /// Indices of the landmarks used per query (active set).
    active: Vec<usize>,
    g_cost: Vec<f32>,
    parent: Vec<NodeId>,
    epoch_of: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<Reverse<HeapEntry>>,
}

impl Alt {
    /// How many landmarks participate per query (more = tighter bounds,
    /// higher per-vertex heuristic cost).
    const ACTIVE_LANDMARKS: usize = 6;

    /// Builds an engine from precomputed landmark tables.
    pub fn new(graph: &RoadNetwork, matrix: CostMatrix) -> Self {
        let n = graph.node_count();
        Self {
            matrix,
            active: Vec::new(),
            g_cost: vec![f32::INFINITY; n],
            parent: vec![NodeId(u32::MAX); n],
            epoch_of: vec![0; n],
            epoch: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// Convenience constructor: computes tables for `landmarks` first.
    pub fn with_landmarks(graph: &RoadNetwork, landmarks: &[NodeId]) -> Self {
        Self::new(graph, CostMatrix::compute(graph, landmarks))
    }

    /// Number of landmarks available.
    pub fn landmark_count(&self) -> usize {
        self.matrix.sources().len()
    }

    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.epoch_of.iter_mut().for_each(|e| *e = 0);
            self.epoch = 1;
        }
        self.heap.clear();
    }

    /// Picks the landmarks giving the tightest bound at the source —
    /// cheap and effective per-query landmark selection.
    fn select_landmarks(&mut self, source: NodeId, target: NodeId) {
        let m = self.matrix.sources().len();
        let mut scored: Vec<(f32, usize)> = (0..m)
            .map(|i| {
                let fwd =
                    self.matrix.cost_from_idx(i, target) - self.matrix.cost_from_idx(i, source);
                let bwd = self.matrix.cost_to_idx(source, i) - self.matrix.cost_to_idx(target, i);
                (fwd.max(bwd).max(0.0), i)
            })
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        self.active.clear();
        self.active.extend(scored.iter().take(Self::ACTIVE_LANDMARKS).map(|&(_, i)| i));
    }

    /// Admissible lower bound on `d(v, target)` from the active landmarks.
    #[inline]
    fn h(&self, v: NodeId, target: NodeId) -> f32 {
        let mut best = 0.0f32;
        for &i in &self.active {
            let fwd = self.matrix.cost_from_idx(i, target) - self.matrix.cost_from_idx(i, v);
            let bwd = self.matrix.cost_to_idx(v, i) - self.matrix.cost_to_idx(target, i);
            let b = fwd.max(bwd);
            if b.is_finite() && b > best {
                best = b;
            }
        }
        best
    }

    /// The admissible landmark lower bound on `d(source, target)` the
    /// search would seed with — never exceeds the true shortest-path
    /// cost (triangle inequality over exact landmark tables). Exposed
    /// for property tests and coarse feasibility pre-checks.
    pub fn lower_bound(&mut self, source: NodeId, target: NodeId) -> f64 {
        self.select_landmarks(source, target);
        self.h(source, target) as f64
    }

    #[inline]
    fn g(&self, node: NodeId) -> f32 {
        if self.epoch_of[node.index()] == self.epoch {
            self.g_cost[node.index()]
        } else {
            f32::INFINITY
        }
    }

    /// Exact shortest-path cost, or `None` when unreachable.
    pub fn cost(&mut self, graph: &RoadNetwork, source: NodeId, target: NodeId) -> Option<f64> {
        self.run(graph, source, target)?;
        Some(self.g(target) as f64)
    }

    /// Exact shortest path, or `None` when unreachable.
    pub fn path(&mut self, graph: &RoadNetwork, source: NodeId, target: NodeId) -> Option<Path> {
        self.run(graph, source, target)?;
        let mut nodes = vec![target];
        let mut cur = target;
        while cur != source {
            cur = self.parent[cur.index()];
            nodes.push(cur);
        }
        nodes.reverse();
        Some(Path { nodes, cost_s: self.g(target) as f64 })
    }

    /// Number of vertices settled by the last query (for the speedup
    /// benches).
    pub fn last_settled(&self) -> usize {
        self.epoch_of.iter().filter(|&&e| e == self.epoch).count()
    }

    fn run(&mut self, graph: &RoadNetwork, source: NodeId, target: NodeId) -> Option<()> {
        self.begin();
        self.epoch_of[source.index()] = self.epoch;
        self.g_cost[source.index()] = 0.0;
        self.parent[source.index()] = source;
        if source == target {
            return Some(());
        }
        self.select_landmarks(source, target);
        let h0 = self.h(source, target);
        self.heap.push(Reverse(HeapEntry { cost: h0, node: source }));

        while let Some(Reverse(HeapEntry { cost: f, node })) = self.heap.pop() {
            if node == target {
                return Some(());
            }
            let gn = self.g(node);
            if f > gn + self.h(node, target) + 1e-3 {
                continue; // stale entry
            }
            for (next, w) in graph.out_edges(node) {
                let tentative = gn + w;
                if tentative < self.g(next) {
                    self.epoch_of[next.index()] = self.epoch;
                    self.g_cost[next.index()] = tentative;
                    self.parent[next.index()] = node;
                    self.heap.push(Reverse(HeapEntry {
                        cost: tentative + self.h(next, target),
                        node: next,
                    }));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::Dijkstra;
    use mtshare_road::{grid_city, GridCityConfig};
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn setup() -> (RoadNetwork, Alt) {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        // A spread of landmarks: corners, centre, mid-edges.
        let lms =
            [0u32, 19, 380, 399, 210, 9, 190, 209].into_iter().map(NodeId).collect::<Vec<_>>();
        let alt = Alt::with_landmarks(&g, &lms);
        (g, alt)
    }

    #[test]
    fn matches_dijkstra_on_random_pairs() {
        let (g, mut alt) = setup();
        let mut d = Dijkstra::new(&g);
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..80 {
            let s = NodeId(rng.gen_range(0..g.node_count() as u32));
            let t = NodeId(rng.gen_range(0..g.node_count() as u32));
            let want = d.cost(&g, s, t).unwrap();
            let got = alt.cost(&g, s, t).unwrap();
            assert!((want - got).abs() < 1e-2, "{s}->{t}: dijkstra {want}, alt {got}");
        }
    }

    #[test]
    fn heuristic_is_admissible_everywhere() {
        let (g, mut alt) = setup();
        let mut d = Dijkstra::new(&g);
        let target = NodeId(399);
        let mut back = Vec::new();
        d.all_to_one(&g, target, &mut back);
        alt.begin();
        alt.select_landmarks(NodeId(0), target);
        for v in g.nodes() {
            let h = alt.h(v, target);
            assert!(
                h as f64 <= back[v.index()] as f64 + 1e-2,
                "h({v}) = {h} > d = {}",
                back[v.index()]
            );
        }
    }

    #[test]
    fn settles_fewer_vertices_than_dijkstra_settles_total() {
        let (g, mut alt) = setup();
        let _ = alt.cost(&g, NodeId(0), NodeId(399)).unwrap();
        // Corner-to-corner: ALT with corner landmarks has near-exact
        // bounds and should settle well under the full vertex count.
        assert!(alt.last_settled() < g.node_count() / 2, "settled {}", alt.last_settled());
    }

    #[test]
    fn path_is_valid_walk() {
        let (g, mut alt) = setup();
        let p = alt.path(&g, NodeId(3), NodeId(396)).unwrap();
        assert_eq!(p.start(), NodeId(3));
        assert_eq!(p.end(), NodeId(396));
        let mut total = 0.0f64;
        for w in p.nodes.windows(2) {
            total += g.direct_edge_cost(w[0], w[1]).expect("adjacent") as f64;
        }
        assert!((total - p.cost_s).abs() < 1e-2);
    }

    #[test]
    fn self_query_and_landmark_count() {
        let (g, mut alt) = setup();
        assert_eq!(alt.cost(&g, NodeId(5), NodeId(5)), Some(0.0));
        assert_eq!(alt.landmark_count(), 8);
    }
}
