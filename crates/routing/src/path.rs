//! Path representation shared by all search engines.

use mtshare_road::NodeId;

/// A walk through the road network with its total travel cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Visited vertices in order, including both endpoints. A trivial path
    /// from a vertex to itself contains that vertex once.
    pub nodes: Vec<NodeId>,
    /// Total travel cost in seconds.
    pub cost_s: f64,
}

impl Path {
    /// A zero-cost path staying at `node`.
    pub fn trivial(node: NodeId) -> Self {
        Self { nodes: vec![node], cost_s: 0.0 }
    }

    /// First vertex of the path.
    #[inline]
    pub fn start(&self) -> NodeId {
        *self.nodes.first().expect("paths are never empty")
    }

    /// Last vertex of the path.
    #[inline]
    pub fn end(&self) -> NodeId {
        *self.nodes.last().expect("paths are never empty")
    }

    /// Number of edges traversed.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// Appends `other` onto this path. `other` must start where this path
    /// ends (the paper's `⊎` concatenation in Algorithms 3–4).
    pub fn concat(&mut self, other: &Path) {
        assert_eq!(self.end(), other.start(), "concatenated paths must share an endpoint");
        self.nodes.extend_from_slice(&other.nodes[1..]);
        self.cost_s += other.cost_s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_path() {
        let p = Path::trivial(NodeId(3));
        assert_eq!(p.start(), NodeId(3));
        assert_eq!(p.end(), NodeId(3));
        assert_eq!(p.edge_count(), 0);
        assert_eq!(p.cost_s, 0.0);
    }

    #[test]
    fn concat_joins_and_sums() {
        let mut a = Path { nodes: vec![NodeId(0), NodeId(1)], cost_s: 5.0 };
        let b = Path { nodes: vec![NodeId(1), NodeId(2), NodeId(3)], cost_s: 7.0 };
        a.concat(&b);
        assert_eq!(a.nodes, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(a.cost_s, 12.0);
    }

    #[test]
    #[should_panic(expected = "share an endpoint")]
    fn concat_rejects_disjoint() {
        let mut a = Path::trivial(NodeId(0));
        a.concat(&Path::trivial(NodeId(1)));
    }
}
