//! Hot-node cost oracle: O(1) leg-cost probes for active request endpoints.
//!
//! The paper assumes every shortest-path query costs O(1) because the
//! all-pairs table is precomputed and cached in memory (Sec. IV-C, V-A4).
//! Storing all pairs is infeasible, but the query mix of insertion-based
//! scheduling only ever touches a small hot set: legs run *from* a taxi
//! position or a scheduled event node *to* another event node, and event
//! nodes are exactly the origins/destinations of active requests.
//!
//! So we pin, per hot node, one forward and one backward one-to-all
//! distance vector (two Dijkstras). While a request is active, every leg
//! cost involving its endpoints is a single array read — the amortized
//! equivalent of the paper's cache, shared by all schemes for fairness.

use crate::bidirectional::BidirDijkstra;
use crate::dijkstra::Dijkstra;
use mtshare_road::{NodeId, RoadNetwork};
use parking_lot::Mutex;
use rustc_hash::FxHashMap;
use std::sync::Arc;

#[derive(Debug)]
struct PinnedEntry {
    refs: u32,
    /// Forward: cost from the pinned node to every vertex.
    fwd: Vec<f32>,
    /// Backward: cost from every vertex to the pinned node.
    bwd: Vec<f32>,
}

#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
/// Query counters of the oracle.
pub struct OracleStats {
    /// Queries answered from a pinned vector.
    pub vector_hits: u64,
    /// Queries answered from the point memo.
    pub memo_hits: u64,
    /// Queries that ran a bidirectional search.
    pub searches: u64,
    /// One-to-all computations performed for pins.
    pub pin_computes: u64,
}

#[derive(Debug)]
struct Inner {
    pinned: FxHashMap<u32, PinnedEntry>,
    point_memo: FxHashMap<u64, f32>,
    engine: Dijkstra,
    bidi: BidirDijkstra,
    stats: OracleStats,
}

/// Thread-safe cost oracle with pinnable hot nodes.
#[derive(Debug, Clone)]
pub struct HotNodeOracle {
    graph: Arc<RoadNetwork>,
    inner: Arc<Mutex<Inner>>,
}

impl HotNodeOracle {
    /// Creates an empty oracle over `graph`.
    pub fn new(graph: Arc<RoadNetwork>) -> Self {
        let engine = Dijkstra::new(&graph);
        let bidi = BidirDijkstra::new(&graph);
        Self {
            graph,
            inner: Arc::new(Mutex::new(Inner {
                pinned: FxHashMap::default(),
                point_memo: FxHashMap::default(),
                engine,
                bidi,
                stats: OracleStats::default(),
            })),
        }
    }

    /// The underlying road network.
    #[inline]
    pub fn graph(&self) -> &Arc<RoadNetwork> {
        &self.graph
    }

    /// Pins `node`, computing its forward + backward distance vectors if
    /// not already resident. Pins are reference-counted.
    pub fn pin(&self, node: NodeId) {
        let mut inner = self.inner.lock();
        if let Some(e) = inner.pinned.get_mut(&node.0) {
            e.refs += 1;
            return;
        }
        let mut fwd = Vec::new();
        let mut bwd = Vec::new();
        inner.engine.one_to_all(&self.graph, node, &mut fwd);
        inner.engine.all_to_one(&self.graph, node, &mut bwd);
        inner.stats.pin_computes += 2;
        inner.pinned.insert(node.0, PinnedEntry { refs: 1, fwd, bwd });
    }

    /// Releases one pin of `node`; vectors are freed when the count drops
    /// to zero. Unpinning an unpinned node is a no-op.
    pub fn unpin(&self, node: NodeId) {
        let mut inner = self.inner.lock();
        if let Some(e) = inner.pinned.get_mut(&node.0) {
            e.refs -= 1;
            if e.refs == 0 {
                inner.pinned.remove(&node.0);
            }
        }
    }

    /// Shortest-path cost from `a` to `b` in seconds, `None` if
    /// unreachable. O(1) when either endpoint is pinned; otherwise a
    /// memoized bidirectional search.
    pub fn cost(&self, a: NodeId, b: NodeId) -> Option<f64> {
        if a == b {
            return Some(0.0);
        }
        let mut inner = self.inner.lock();
        if let Some(e) = inner.pinned.get(&a.0) {
            let c = e.fwd[b.index()];
            inner.stats.vector_hits += 1;
            return c.is_finite().then_some(c as f64);
        }
        if let Some(e) = inner.pinned.get(&b.0) {
            let c = e.bwd[a.index()];
            inner.stats.vector_hits += 1;
            return c.is_finite().then_some(c as f64);
        }
        let key = ((a.0 as u64) << 32) | b.0 as u64;
        if let Some(&c) = inner.point_memo.get(&key) {
            inner.stats.memo_hits += 1;
            return c.is_finite().then_some(c as f64);
        }
        inner.stats.searches += 1;
        let c = inner.bidi.cost(&self.graph, a, b);
        inner.point_memo.insert(key, c.map_or(f32::INFINITY, |c| c as f32));
        c
    }

    /// Snapshot of the query counters.
    pub fn stats(&self) -> OracleStats {
        self.inner.lock().stats
    }

    /// Number of currently pinned nodes.
    pub fn pinned_count(&self) -> usize {
        self.inner.lock().pinned.len()
    }

    /// Approximate resident memory in bytes (pinned vectors + memo).
    pub fn memory_bytes(&self) -> usize {
        let inner = self.inner.lock();
        inner.pinned.len() * (2 * self.graph.node_count() * 4 + 16)
            + inner.point_memo.capacity() * 14
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtshare_road::{grid_city, GridCityConfig};

    fn oracle() -> HotNodeOracle {
        HotNodeOracle::new(Arc::new(grid_city(&GridCityConfig::tiny()).unwrap()))
    }

    #[test]
    fn pinned_costs_match_searches() {
        let o = oracle();
        let free = o.cost(NodeId(0), NodeId(399)).unwrap();
        o.pin(NodeId(0));
        let pinned = o.cost(NodeId(0), NodeId(399)).unwrap();
        assert!((free - pinned).abs() < 1e-2);
        let s = o.stats();
        assert_eq!(s.searches, 1);
        assert!(s.vector_hits >= 1);
    }

    #[test]
    fn backward_vector_answers_into_pinned_node() {
        let o = oracle();
        o.pin(NodeId(399));
        let got = o.cost(NodeId(0), NodeId(399)).unwrap();
        assert_eq!(o.stats().searches, 0);
        // Cross-check against an unpinned fresh oracle.
        let o2 = oracle();
        let want = o2.cost(NodeId(0), NodeId(399)).unwrap();
        assert!((got - want).abs() < 1e-2);
    }

    #[test]
    fn refcounted_pinning() {
        let o = oracle();
        o.pin(NodeId(7));
        o.pin(NodeId(7));
        assert_eq!(o.pinned_count(), 1);
        let computes = o.stats().pin_computes;
        assert_eq!(computes, 2); // one fwd + one bwd, second pin free
        o.unpin(NodeId(7));
        assert_eq!(o.pinned_count(), 1);
        o.unpin(NodeId(7));
        assert_eq!(o.pinned_count(), 0);
        o.unpin(NodeId(7)); // no-op
        assert_eq!(o.pinned_count(), 0);
    }

    #[test]
    fn self_cost_zero_and_memoization() {
        let o = oracle();
        assert_eq!(o.cost(NodeId(5), NodeId(5)), Some(0.0));
        let _ = o.cost(NodeId(1), NodeId(2));
        let _ = o.cost(NodeId(1), NodeId(2));
        let s = o.stats();
        assert_eq!(s.searches, 1);
        assert_eq!(s.memo_hits, 1);
        assert!(o.memory_bytes() > 0);
    }
}
