//! Hot-node cost oracle: O(1) leg-cost probes for active request endpoints.
//!
//! The paper assumes every shortest-path query costs O(1) because the
//! all-pairs table is precomputed and cached in memory (Sec. IV-C, V-A4).
//! Storing all pairs is infeasible, but the query mix of insertion-based
//! scheduling only ever touches a small hot set: legs run *from* a taxi
//! position or a scheduled event node *to* another event node, and event
//! nodes are exactly the origins/destinations of active requests.
//!
//! So we pin, per hot node, one forward and one backward one-to-all
//! distance vector (two Dijkstras). While a request is active, every leg
//! cost involving its endpoints is a single array read — the amortized
//! equivalent of the paper's cache, shared by all schemes for fairness.
//!
//! # Concurrency and determinism
//!
//! Speculative batch dispatch probes the oracle from several workers at
//! once, so reads must be concurrent *and* every query must return one
//! canonical value regardless of which nodes happen to be pinned. The
//! pinned map sits behind an `RwLock` (reads share, pins/unpins are rare
//! and exclusive), counters are atomics, and the search memo is
//! lock-striped by source node like [`crate::PathCache`].
//!
//! Canonical lookup order: the **backward vector of `b` is consulted
//! before the forward vector of `a`**. The two vectors come from
//! independent f32 Dijkstra runs and may disagree by an ulp; scheduling
//! queries always have their *target* pinned (it is a schedule event
//! node), while the source may be an arbitrary taxi position that only
//! coincidentally matches some other request's pinned endpoint. bwd-first
//! therefore makes the answer a function of `(a, b)` alone — pinning
//! extra nodes (as the batch path does) can never change a result.

use crate::bidirectional::BidirDijkstra;
use crate::dijkstra::Dijkstra;
use mtshare_road::{NodeId, RoadNetwork};
use parking_lot::{Mutex, RwLock};
use rustc_hash::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Lock stripes of the point memo (power of two, mask-selected).
const MEMO_SHARDS: usize = 16;

#[derive(Debug)]
struct PinnedEntry {
    refs: u32,
    /// Forward: cost from the pinned node to every vertex.
    fwd: Vec<f32>,
    /// Backward: cost from every vertex to the pinned node.
    bwd: Vec<f32>,
}

#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
/// Query counters of the oracle.
pub struct OracleStats {
    /// Queries answered from a pinned vector.
    pub vector_hits: u64,
    /// Queries answered from the point memo.
    pub memo_hits: u64,
    /// Queries that ran a bidirectional search.
    pub searches: u64,
    /// One-to-all computations performed for pins.
    pub pin_computes: u64,
    /// Pinned vectors freed because their refcount dropped to zero.
    pub evictions: u64,
}

#[derive(Debug, Default)]
struct AtomicStats {
    vector_hits: AtomicU64,
    memo_hits: AtomicU64,
    searches: AtomicU64,
    pin_computes: AtomicU64,
    evictions: AtomicU64,
}

#[derive(Debug)]
struct MemoShard {
    memo: FxHashMap<u64, f32>,
    bidi: BidirDijkstra,
}

/// Thread-safe cost oracle with pinnable hot nodes.
#[derive(Debug, Clone)]
pub struct HotNodeOracle {
    graph: Arc<RoadNetwork>,
    pinned: Arc<RwLock<FxHashMap<u32, PinnedEntry>>>,
    /// Scratch engine for pin computations (pins are serialized anyway).
    pin_engine: Arc<Mutex<Dijkstra>>,
    memo: Arc<[Mutex<MemoShard>; MEMO_SHARDS]>,
    stats: Arc<AtomicStats>,
}

impl HotNodeOracle {
    /// Creates an empty oracle over `graph`.
    pub fn new(graph: Arc<RoadNetwork>) -> Self {
        let memo = std::array::from_fn(|_| {
            Mutex::new(MemoShard { memo: FxHashMap::default(), bidi: BidirDijkstra::new(&graph) })
        });
        Self {
            pin_engine: Arc::new(Mutex::new(Dijkstra::new(&graph))),
            memo: Arc::new(memo),
            pinned: Arc::new(RwLock::new(FxHashMap::default())),
            stats: Arc::new(AtomicStats::default()),
            graph,
        }
    }

    /// The underlying road network.
    #[inline]
    pub fn graph(&self) -> &Arc<RoadNetwork> {
        &self.graph
    }

    /// Points the oracle at a re-weighted copy of its road network (same
    /// topology, e.g. from [`mtshare_road::apply_traffic_shifts`]): the
    /// point memo is dropped and every pinned vector is recomputed
    /// eagerly, in ascending node-id order, so answers are exact on the
    /// new metric and deterministic regardless of pin history. Refcounts
    /// survive — active requests keep their O(1) fast path.
    ///
    /// Takes `&mut self` so re-targeting is exclusive by construction;
    /// the simulator owns its oracle and re-customizes between events.
    pub fn retarget(&mut self, graph: Arc<RoadNetwork>) {
        assert_eq!(
            graph.node_count(),
            self.graph.node_count(),
            "re-target graph must share the topology"
        );
        self.graph = graph;
        for shard in self.memo.iter() {
            shard.lock().memo.clear();
        }
        let mut pinned = self.pinned.write();
        let mut nodes: Vec<u32> = pinned.keys().copied().collect();
        nodes.sort_unstable();
        let mut engine = self.pin_engine.lock();
        for v in nodes {
            let e = pinned.get_mut(&v).expect("key collected above");
            engine.one_to_all(&self.graph, NodeId(v), &mut e.fwd);
            engine.all_to_one(&self.graph, NodeId(v), &mut e.bwd);
            self.stats.pin_computes.fetch_add(2, Relaxed);
        }
    }

    /// Pins `node`, computing its forward + backward distance vectors if
    /// not already resident. Pins are reference-counted.
    pub fn pin(&self, node: NodeId) {
        let mut pinned = self.pinned.write();
        if let Some(e) = pinned.get_mut(&node.0) {
            e.refs += 1;
            return;
        }
        let mut fwd = Vec::new();
        let mut bwd = Vec::new();
        {
            let mut engine = self.pin_engine.lock();
            engine.one_to_all(&self.graph, node, &mut fwd);
            engine.all_to_one(&self.graph, node, &mut bwd);
        }
        self.stats.pin_computes.fetch_add(2, Relaxed);
        pinned.insert(node.0, PinnedEntry { refs: 1, fwd, bwd });
    }

    /// Releases one pin of `node`; vectors are freed when the count drops
    /// to zero. Unpinning an unpinned node is a no-op.
    pub fn unpin(&self, node: NodeId) {
        let mut pinned = self.pinned.write();
        if let Some(e) = pinned.get_mut(&node.0) {
            e.refs -= 1;
            if e.refs == 0 {
                pinned.remove(&node.0);
                self.stats.evictions.fetch_add(1, Relaxed);
            }
        }
    }

    /// Shortest-path cost from `a` to `b` in seconds, `None` if
    /// unreachable. O(1) when either endpoint is pinned; otherwise a
    /// memoized bidirectional search. All stored values are f32-quantized,
    /// and the pinned lookup is bwd-first (see the module docs), so the
    /// answer for a pair is canonical: independent of pin state, lookup
    /// history, and thread interleaving.
    pub fn cost(&self, a: NodeId, b: NodeId) -> Option<f64> {
        if a == b {
            return Some(0.0);
        }
        {
            let pinned = self.pinned.read();
            if let Some(e) = pinned.get(&b.0) {
                let c = e.bwd[a.index()];
                self.stats.vector_hits.fetch_add(1, Relaxed);
                return c.is_finite().then_some(c as f64);
            }
            if let Some(e) = pinned.get(&a.0) {
                let c = e.fwd[b.index()];
                self.stats.vector_hits.fetch_add(1, Relaxed);
                return c.is_finite().then_some(c as f64);
            }
        }
        let key = ((a.0 as u64) << 32) | b.0 as u64;
        let mut shard = self.memo[a.0 as usize & (MEMO_SHARDS - 1)].lock();
        if let Some(&c) = shard.memo.get(&key) {
            self.stats.memo_hits.fetch_add(1, Relaxed);
            return c.is_finite().then_some(c as f64);
        }
        self.stats.searches.fetch_add(1, Relaxed);
        let c = shard.bidi.cost(&self.graph, a, b);
        shard.memo.insert(key, c.map_or(f32::INFINITY, |c| c as f32));
        c
    }

    /// Runs `f` with a [`PinnedReader`]: a borrowed view of the pinned
    /// vectors that answers the `cost()` fast path without re-acquiring
    /// the `RwLock` or touching an atomic per query. Vector hits are
    /// counted locally and folded into the stats once at the end.
    ///
    /// Intended for query bursts that probe many legs against the same
    /// pin set — e.g. scoring one insertion candidate. The read lock is
    /// held for the whole closure, recursion-tolerant, so `f` may fall
    /// back to `cost()` for unpinned pairs; callers must not
    /// `pin`/`unpin` from inside `f` or concurrently with it (dispatch
    /// already orders all pinning before scoring).
    pub fn batch<R>(&self, f: impl FnOnce(&mut PinnedReader<'_>) -> R) -> R {
        let mut reader = PinnedReader { pinned: self.pinned.read_recursive(), hits: 0 };
        let r = f(&mut reader);
        if reader.hits > 0 {
            self.stats.vector_hits.fetch_add(reader.hits, Relaxed);
        }
        r
    }

    /// Snapshot of the query counters.
    pub fn stats(&self) -> OracleStats {
        OracleStats {
            vector_hits: self.stats.vector_hits.load(Relaxed),
            memo_hits: self.stats.memo_hits.load(Relaxed),
            searches: self.stats.searches.load(Relaxed),
            pin_computes: self.stats.pin_computes.load(Relaxed),
            evictions: self.stats.evictions.load(Relaxed),
        }
    }

    /// Number of currently pinned nodes.
    pub fn pinned_count(&self) -> usize {
        self.pinned.read().len()
    }

    /// Approximate resident memory in bytes (pinned vectors + memo).
    pub fn memory_bytes(&self) -> usize {
        self.pinned.read().len() * (2 * self.graph.node_count() * 4 + 16)
            + self.memo.iter().map(|s| s.lock().memo.capacity() * 14).sum::<usize>()
    }
}

/// Borrowed fast-path view of the oracle's pinned vectors — see
/// [`HotNodeOracle::batch`].
pub struct PinnedReader<'a> {
    pinned: parking_lot::RwLockReadGuard<'a, FxHashMap<u32, PinnedEntry>>,
    hits: u64,
}

impl PinnedReader<'_> {
    /// The `cost()` fast path: `Some(answer)` when `a == b` or either
    /// endpoint is pinned, reading the exact same vector entry in the
    /// exact same bwd-first order as [`HotNodeOracle::cost`] — the
    /// answer is bit-identical. Returns `None` when the pair would need
    /// the memo/search path; the caller falls back to its full cost
    /// function (nested `cost()` reads are safe — see [`HotNodeOracle::batch`]).
    #[inline]
    pub fn pinned_cost(&mut self, a: NodeId, b: NodeId) -> Option<Option<f64>> {
        if a == b {
            return Some(Some(0.0));
        }
        if let Some(e) = self.pinned.get(&b.0) {
            self.hits += 1;
            let c = e.bwd[a.index()];
            return Some(c.is_finite().then_some(c as f64));
        }
        if let Some(e) = self.pinned.get(&a.0) {
            self.hits += 1;
            let c = e.fwd[b.index()];
            return Some(c.is_finite().then_some(c as f64));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtshare_road::{grid_city, GridCityConfig};

    fn oracle() -> HotNodeOracle {
        HotNodeOracle::new(Arc::new(grid_city(&GridCityConfig::tiny()).unwrap()))
    }

    #[test]
    fn pinned_costs_match_searches() {
        let o = oracle();
        let free = o.cost(NodeId(0), NodeId(399)).unwrap();
        o.pin(NodeId(0));
        let pinned = o.cost(NodeId(0), NodeId(399)).unwrap();
        assert!((free - pinned).abs() < 1e-2);
        let s = o.stats();
        assert_eq!(s.searches, 1);
        assert!(s.vector_hits >= 1);
    }

    #[test]
    fn backward_vector_answers_into_pinned_node() {
        let o = oracle();
        o.pin(NodeId(399));
        let got = o.cost(NodeId(0), NodeId(399)).unwrap();
        assert_eq!(o.stats().searches, 0);
        // Cross-check against an unpinned fresh oracle.
        let o2 = oracle();
        let want = o2.cost(NodeId(0), NodeId(399)).unwrap();
        assert!((got - want).abs() < 1e-2);
    }

    #[test]
    fn pinning_extra_nodes_never_changes_an_answer() {
        // The determinism contract of speculative dispatch: the batch path
        // pins whole batches of endpoints up front, the sequential path
        // pins one request at a time, and both must read identical costs.
        let o = oracle();
        o.pin(NodeId(399));
        let canonical = o.cost(NodeId(17), NodeId(399));
        o.pin(NodeId(17)); // source becomes pinned too: bwd-first must win
        assert_eq!(o.cost(NodeId(17), NodeId(399)), canonical);
        o.pin(NodeId(250)); // unrelated pin
        assert_eq!(o.cost(NodeId(17), NodeId(399)), canonical);
    }

    #[test]
    fn refcounted_pinning() {
        let o = oracle();
        o.pin(NodeId(7));
        o.pin(NodeId(7));
        assert_eq!(o.pinned_count(), 1);
        let computes = o.stats().pin_computes;
        assert_eq!(computes, 2); // one fwd + one bwd, second pin free
        o.unpin(NodeId(7));
        assert_eq!(o.pinned_count(), 1);
        assert_eq!(o.stats().evictions, 0);
        o.unpin(NodeId(7));
        assert_eq!(o.pinned_count(), 0);
        assert_eq!(o.stats().evictions, 1);
        o.unpin(NodeId(7)); // no-op
        assert_eq!(o.pinned_count(), 0);
        assert_eq!(o.stats().evictions, 1);
    }

    #[test]
    fn batch_reader_matches_cost_bit_for_bit() {
        let o = oracle();
        o.pin(NodeId(0));
        o.pin(NodeId(399));
        let pairs = [(NodeId(5), NodeId(5)), (NodeId(17), NodeId(399)), (NodeId(0), NodeId(250))];
        for (a, b) in pairs {
            let want = o.cost(a, b);
            let got = o.batch(|r| r.pinned_cost(a, b)).expect("either endpoint pinned or a == b");
            assert_eq!(got.map(f64::to_bits), want.map(f64::to_bits), "{a:?}->{b:?}");
        }
        // Neither endpoint pinned: the reader defers to the full path.
        assert!(o.batch(|r| r.pinned_cost(NodeId(40), NodeId(41))).is_none());
        // Hits were folded into the shared stats exactly once per answer.
        assert_eq!(o.stats().vector_hits, 2 * 2); // (17,399) and (0,250), via cost + batch
    }

    #[test]
    fn retarget_recomputes_pins_and_drops_the_memo() {
        use mtshare_road::{apply_traffic_shifts, TrafficShiftSpec};
        let g = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let mut o = HotNodeOracle::new(g.clone());
        o.pin(NodeId(399));
        let _ = o.cost(NodeId(40), NodeId(41)); // memoized search
        let before = o.cost(NodeId(0), NodeId(399)).unwrap();

        let spec = TrafficShiftSpec {
            center: NodeId(0),
            radius_m: 800.0,
            factor: 3.0,
            start_s: 0.0,
            duration_s: 1.0,
        };
        let shifted = Arc::new(apply_traffic_shifts(&g, &[spec]).unwrap());
        o.retarget(shifted.clone());
        assert_eq!(o.graph().digest(), shifted.digest());
        assert_eq!(o.pinned_count(), 1);

        // Pinned fast path and memo/search path both answer on the new
        // metric, bit-identical to a fresh oracle over the shifted graph.
        let fresh = HotNodeOracle::new(shifted);
        let after = o.cost(NodeId(0), NodeId(399)).unwrap();
        assert!(after > before, "slowdown region must lengthen the trip");
        assert_eq!(Some(after), fresh.cost(NodeId(0), NodeId(399)));
        assert_eq!(o.cost(NodeId(40), NodeId(41)), fresh.cost(NodeId(40), NodeId(41)));
    }

    #[test]
    fn self_cost_zero_and_memoization() {
        let o = oracle();
        assert_eq!(o.cost(NodeId(5), NodeId(5)), Some(0.0));
        let _ = o.cost(NodeId(1), NodeId(2));
        let _ = o.cost(NodeId(1), NodeId(2));
        let s = o.stats();
        assert_eq!(s.searches, 1);
        assert_eq!(s.memo_hits, 1);
        assert!(o.memory_bytes() > 0);
    }
}
