//! Metric-independent contraction orders for customizable hierarchies.
//!
//! A plain CH picks its order from the *metric* (edge-difference keys),
//! which is what makes re-weighting expensive: change a cost, rebuild
//! the world. A customizable CH instead fixes the order from graph
//! *topology* alone — here a nested-dissection order computed from the
//! road geometry ([`mtshare_road::nested_dissection_order`]) — so the
//! shortcut skeleton survives any metric change and only the weights
//! need recomputing. This module holds the order/rank bookkeeping shared
//! by skeleton construction, customization, and queries.

use mtshare_road::RoadNetwork;

/// A contraction order: a permutation of vertex ids plus its inverse.
///
/// `order[k]` is the vertex contracted at position `k` (so later
/// positions are *more* important); `rank[v]` is vertex `v`'s position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeOrder {
    order: Vec<u32>,
    rank: Vec<u32>,
}

impl NodeOrder {
    /// Wraps an explicit elimination order.
    ///
    /// # Panics
    /// Panics when `order` is not a permutation of `0..order.len()`.
    pub fn from_order(order: Vec<u32>) -> Self {
        let n = order.len();
        let mut rank = vec![u32::MAX; n];
        for (k, &v) in order.iter().enumerate() {
            assert!((v as usize) < n, "vertex {v} out of range");
            assert!(rank[v as usize] == u32::MAX, "vertex {v} appears twice");
            rank[v as usize] = k as u32;
        }
        Self { order, rank }
    }

    /// The nested-dissection order of `graph` — a pure function of the
    /// graph topology and geometry, independent of edge costs.
    pub fn nested_dissection(graph: &RoadNetwork) -> Self {
        Self::from_order(mtshare_road::nested_dissection_order(graph))
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the order is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Position of vertex `v` in the elimination order.
    #[inline]
    pub fn rank(&self, v: u32) -> u32 {
        self.rank[v as usize]
    }

    /// Vertex eliminated at position `k`.
    #[inline]
    pub fn node_at(&self, k: u32) -> u32 {
        self.order[k as usize]
    }

    /// The rank array, indexed by vertex id.
    #[inline]
    pub fn ranks(&self) -> &[u32] {
        &self.rank
    }

    /// The order array (vertices in elimination sequence).
    #[inline]
    pub fn nodes(&self) -> &[u32] {
        &self.order
    }

    /// Consumes the order into its `(order, rank)` arrays.
    pub fn into_parts(self) -> (Vec<u32>, Vec<u32>) {
        (self.order, self.rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtshare_road::{grid_city, GridCityConfig};

    #[test]
    fn rank_inverts_order() {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        let ord = NodeOrder::nested_dissection(&g);
        assert_eq!(ord.len(), g.node_count());
        assert!(!ord.is_empty());
        for k in 0..ord.len() as u32 {
            assert_eq!(ord.rank(ord.node_at(k)), k);
        }
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn rejects_duplicates() {
        let _ = NodeOrder::from_order(vec![0, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let _ = NodeOrder::from_order(vec![0, 3]);
    }
}
