//! Bidirectional Dijkstra — the default point-to-point engine behind the
//! shared [`PathCache`](crate::cache::PathCache).
//!
//! Explores forward from the source and backward (over the reverse star)
//! from the target, stopping when the two frontiers prove optimality. On
//! city grids this settles roughly half the vertices plain Dijkstra does.

use crate::dijkstra::HeapEntry;
use crate::path::Path;
use mtshare_road::{NodeId, RoadNetwork};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reusable bidirectional point-to-point engine.
#[derive(Debug)]
pub struct BidirDijkstra {
    dist_f: Vec<f32>,
    dist_b: Vec<f32>,
    parent_f: Vec<NodeId>,
    parent_b: Vec<NodeId>,
    epoch_of_f: Vec<u32>,
    epoch_of_b: Vec<u32>,
    epoch: u32,
    heap_f: BinaryHeap<Reverse<HeapEntry>>,
    heap_b: BinaryHeap<Reverse<HeapEntry>>,
}

impl BidirDijkstra {
    /// Creates an engine sized for `graph`.
    pub fn new(graph: &RoadNetwork) -> Self {
        let n = graph.node_count();
        Self {
            dist_f: vec![f32::INFINITY; n],
            dist_b: vec![f32::INFINITY; n],
            parent_f: vec![NodeId(u32::MAX); n],
            parent_b: vec![NodeId(u32::MAX); n],
            epoch_of_f: vec![0; n],
            epoch_of_b: vec![0; n],
            epoch: 0,
            heap_f: BinaryHeap::new(),
            heap_b: BinaryHeap::new(),
        }
    }

    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.epoch_of_f.iter_mut().for_each(|e| *e = 0);
            self.epoch_of_b.iter_mut().for_each(|e| *e = 0);
            self.epoch = 1;
        }
        self.heap_f.clear();
        self.heap_b.clear();
    }

    #[inline]
    fn dist(&self, forward: bool, node: NodeId) -> f32 {
        let (epochs, dist) = if forward {
            (&self.epoch_of_f, &self.dist_f)
        } else {
            (&self.epoch_of_b, &self.dist_b)
        };
        if epochs[node.index()] == self.epoch {
            dist[node.index()]
        } else {
            f32::INFINITY
        }
    }

    #[inline]
    fn settle(&mut self, forward: bool, node: NodeId, cost: f32, parent: NodeId) -> bool {
        let epoch = self.epoch;
        let (epochs, dist, par) = if forward {
            (&mut self.epoch_of_f, &mut self.dist_f, &mut self.parent_f)
        } else {
            (&mut self.epoch_of_b, &mut self.dist_b, &mut self.parent_b)
        };
        let i = node.index();
        if epochs[i] == epoch && dist[i] <= cost {
            return false;
        }
        epochs[i] = epoch;
        dist[i] = cost;
        par[i] = parent;
        true
    }

    /// Cost of the shortest `source -> target` path, or `None`.
    pub fn cost(&mut self, graph: &RoadNetwork, source: NodeId, target: NodeId) -> Option<f64> {
        self.search(graph, source, target).map(|(c, _)| c)
    }

    /// Shortest path with vertex sequence, or `None`.
    pub fn path(&mut self, graph: &RoadNetwork, source: NodeId, target: NodeId) -> Option<Path> {
        let (cost, meet) = self.search(graph, source, target)?;
        if source == target {
            return Some(Path::trivial(source));
        }
        // Forward half: source .. meet.
        let mut nodes = Vec::new();
        let mut cur = meet;
        while cur != source {
            nodes.push(cur);
            cur = self.parent_f[cur.index()];
        }
        nodes.push(source);
        nodes.reverse();
        // Backward half: meet .. target (parents point toward target).
        let mut cur = meet;
        while cur != target {
            cur = self.parent_b[cur.index()];
            nodes.push(cur);
        }
        Some(Path { nodes, cost_s: cost })
    }

    /// Runs the bidirectional search, returning `(cost, meeting_node)`.
    fn search(
        &mut self,
        graph: &RoadNetwork,
        source: NodeId,
        target: NodeId,
    ) -> Option<(f64, NodeId)> {
        if source == target {
            return Some((0.0, source));
        }
        self.begin();
        self.settle(true, source, 0.0, source);
        self.settle(false, target, 0.0, target);
        self.heap_f.push(Reverse(HeapEntry { cost: 0.0, node: source }));
        self.heap_b.push(Reverse(HeapEntry { cost: 0.0, node: target }));

        let mut best = f32::INFINITY;
        let mut meet = None;

        loop {
            let top_f = self.heap_f.peek().map(|Reverse(e)| e.cost).unwrap_or(f32::INFINITY);
            let top_b = self.heap_b.peek().map(|Reverse(e)| e.cost).unwrap_or(f32::INFINITY);
            if top_f + top_b >= best || (top_f == f32::INFINITY && top_b == f32::INFINITY) {
                break;
            }
            let forward = top_f <= top_b;
            let Some(Reverse(HeapEntry { cost, node })) =
                (if forward { self.heap_f.pop() } else { self.heap_b.pop() })
            else {
                break;
            };
            if cost > self.dist(forward, node) {
                continue;
            }
            // Relax.
            if forward {
                for (next, w) in graph.out_edges(node) {
                    let nc = cost + w;
                    if self.settle(true, next, nc, node) {
                        self.heap_f.push(Reverse(HeapEntry { cost: nc, node: next }));
                        let other = self.dist(false, next);
                        if nc + other < best {
                            best = nc + other;
                            meet = Some(next);
                        }
                    }
                }
            } else {
                for (prev, w) in graph.in_edges(node) {
                    let nc = cost + w;
                    if self.settle(false, prev, nc, node) {
                        self.heap_b.push(Reverse(HeapEntry { cost: nc, node: prev }));
                        let other = self.dist(true, prev);
                        if nc + other < best {
                            best = nc + other;
                            meet = Some(prev);
                        }
                    }
                }
            }
        }
        meet.map(|m| (best as f64, m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::Dijkstra;
    use mtshare_road::{grid_city, GridCityConfig};
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    #[test]
    fn matches_unidirectional_on_random_pairs() {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        let mut uni = Dijkstra::new(&g);
        let mut bi = BidirDijkstra::new(&g);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..60 {
            let s = NodeId(rng.gen_range(0..g.node_count() as u32));
            let t = NodeId(rng.gen_range(0..g.node_count() as u32));
            let a = uni.cost(&g, s, t).unwrap();
            let b = bi.cost(&g, s, t).unwrap();
            assert!((a - b).abs() < 1e-2, "{s}->{t}: uni {a}, bi {b}");
        }
    }

    #[test]
    fn path_walk_is_valid_and_optimal() {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        let mut bi = BidirDijkstra::new(&g);
        let mut uni = Dijkstra::new(&g);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..20 {
            let s = NodeId(rng.gen_range(0..g.node_count() as u32));
            let t = NodeId(rng.gen_range(0..g.node_count() as u32));
            let p = bi.path(&g, s, t).unwrap();
            assert_eq!(p.start(), s);
            assert_eq!(p.end(), t);
            let mut total = 0.0f64;
            for w in p.nodes.windows(2) {
                total += g.direct_edge_cost(w[0], w[1]).expect("adjacent") as f64;
            }
            assert!((total - p.cost_s).abs() < 1e-2);
            let want = uni.cost(&g, s, t).unwrap();
            assert!((p.cost_s - want).abs() < 1e-2);
        }
    }

    #[test]
    fn self_path_is_trivial() {
        let g = grid_city(&GridCityConfig::tiny()).unwrap();
        let mut bi = BidirDijkstra::new(&g);
        assert_eq!(bi.cost(&g, NodeId(9), NodeId(9)), Some(0.0));
        assert_eq!(bi.path(&g, NodeId(9), NodeId(9)).unwrap().nodes, vec![NodeId(9)]);
    }

    #[test]
    fn unreachable_is_none() {
        use mtshare_road::{EdgeSpec, GeoPoint, RoadNetwork};
        let pts = vec![GeoPoint::new(30.0, 104.0), GeoPoint::new(30.001, 104.0)];
        let edges =
            vec![EdgeSpec { from: NodeId(0), to: NodeId(1), length_m: 10.0, speed_kmh: 15.0 }];
        let g = RoadNetwork::new(pts, &edges).unwrap();
        let mut bi = BidirDijkstra::new(&g);
        assert_eq!(bi.cost(&g, NodeId(1), NodeId(0)), None);
    }
}
