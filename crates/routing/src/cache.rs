//! Shared shortest-path cost cache.
//!
//! The paper precomputes the all-pairs shortest paths of the Chengdu graph
//! and serves them from memory so that every scheme enjoys O(1) queries
//! (Sec. V-A4). All-pairs storage is infeasible beyond toy graphs, so we
//! provide the equivalent amortized behaviour: a memoizing point-to-point
//! cache backed by bidirectional Dijkstra, shared by *all* schemes so the
//! response-time comparison stays fair.
//!
//! The memo is split into lock-striped shards keyed by the source node so
//! that the speculative batch-dispatch workers can probe and fill it
//! concurrently without serializing on one mutex. Each shard owns its own
//! search engine (the engine is per-query scratch state, so one per shard
//! keeps a miss from blocking other shards). Both the search and the memo
//! quantize costs to `f32`, which makes every answer independent of lookup
//! history and thread interleaving: hit or miss, a query returns the same
//! canonical value.
//!
//! # Pluggable exact backend
//!
//! Cost misses are answered by a [`RouterBackend`]: plain bidirectional
//! Dijkstra (the default) or a preprocessed [`ContractionHierarchy`]. Both
//! are exact, and because edge costs live on the dyadic grid
//! (`mtshare_road::COST_QUANTUM_S`) they return *bit-identical* values, so
//! switching backends can never change simulator behaviour — only speed.
//! Under the CH backend, [`PathCache::prime_many_to_one`] additionally
//! batches "K taxi positions → one pickup" probes through the bucket
//! kernel ([`ChBuckets`]) — one downward sweep instead of K searches.
//!
//! Paths always come from bidirectional Dijkstra, regardless of backend:
//! when several shortest paths tie, CH unpacking and bidirectional search
//! can legitimately pick different (equal-cost) vertex sequences, and a
//! different committed route would change taxi trajectories and therefore
//! trace bytes. Costs are the hot query mix; paths are only materialized
//! when a schedule commits.

use crate::bidirectional::BidirDijkstra;
use crate::ch::{ChBuckets, ChQuery, ChStats, ContractionHierarchy};
use crate::path::Path;
use mtshare_road::{NodeId, RoadNetwork};
use parking_lot::Mutex;
use rustc_hash::FxHashMap;
use std::collections::hash_map::Entry;
use std::sync::Arc;

/// The exact engine a [`PathCache`] uses to answer cost misses.
#[derive(Debug, Clone, Default)]
pub enum RouterBackend {
    /// Bidirectional Dijkstra, no preprocessing (the seed behaviour).
    #[default]
    Bidir,
    /// Preprocessed contraction hierarchy (must be built from — or loaded
    /// against — the same [`RoadNetwork`] the cache serves).
    Ch(Arc<ContractionHierarchy>),
}

impl RouterBackend {
    /// Stable name for CLI/observability output.
    pub fn name(&self) -> &'static str {
        match self {
            RouterBackend::Bidir => "bidir",
            RouterBackend::Ch(_) => "ch",
        }
    }
}

/// Number of lock stripes. Power of two so the shard pick is a mask; 16
/// comfortably exceeds the worker counts the batch dispatcher uses.
const SHARDS: usize = 16;

/// Hit/miss/evict counters of a [`PathCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the memo.
    pub hits: u64,
    /// Queries that ran a graph search.
    pub misses: u64,
    /// Entries dropped by [`PathCache::trim_to`]. Zero unless a caller
    /// bounds the memo (the default policy caches forever).
    pub evictions: u64,
}

impl CacheStats {
    /// Hit ratio in [0, 1]; 0 when no queries were made.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct CacheShard {
    costs: FxHashMap<u64, f32>,
    engine: BidirDijkstra,
    /// CH query scratch when the backend is [`RouterBackend::Ch`].
    ch: Option<ChQuery>,
    stats: CacheStats,
}

/// Thread-safe memoizing shortest-path oracle over a fixed road network.
///
/// Costs are cached forever (the paper assumes static traffic, Sec. III-A).
/// Paths are *not* cached — they are only needed when a schedule is actually
/// committed, which is orders of magnitude rarer than cost probes.
#[derive(Debug, Clone)]
pub struct PathCache {
    graph: Arc<RoadNetwork>,
    shards: Arc<[Mutex<CacheShard>; SHARDS]>,
    hierarchy: Option<Arc<ContractionHierarchy>>,
    buckets: Option<Arc<Mutex<ChBuckets>>>,
}

impl PathCache {
    /// Creates an empty cache over `graph` with the default
    /// ([`RouterBackend::Bidir`]) backend.
    pub fn new(graph: Arc<RoadNetwork>) -> Self {
        Self::with_backend(graph, RouterBackend::Bidir)
    }

    /// Creates an empty cache over `graph` answering misses with `backend`.
    pub fn with_backend(graph: Arc<RoadNetwork>, backend: RouterBackend) -> Self {
        let hierarchy = match &backend {
            RouterBackend::Bidir => None,
            RouterBackend::Ch(ch) => {
                assert_eq!(
                    ch.graph_digest(),
                    graph.digest(),
                    "contraction hierarchy was built for a different graph"
                );
                Some(ch.clone())
            }
        };
        let shards = std::array::from_fn(|_| {
            Mutex::new(CacheShard {
                costs: FxHashMap::default(),
                engine: BidirDijkstra::new(&graph),
                ch: hierarchy.as_ref().map(|h| ChQuery::new(h.clone())),
                stats: CacheStats::default(),
            })
        });
        let buckets = hierarchy.as_ref().map(|h| Arc::new(Mutex::new(ChBuckets::new(h.clone()))));
        Self { graph, shards: Arc::new(shards), hierarchy, buckets }
    }

    /// Name of the active backend (`"bidir"` or `"ch"`).
    pub fn backend_name(&self) -> &'static str {
        if self.hierarchy.is_some() {
            "ch"
        } else {
            "bidir"
        }
    }

    /// The shared hierarchy when the backend is [`RouterBackend::Ch`].
    pub fn hierarchy(&self) -> Option<&Arc<ContractionHierarchy>> {
        self.hierarchy.as_ref()
    }

    /// CH query/bucket counters, when the backend is [`RouterBackend::Ch`].
    pub fn ch_stats(&self) -> Option<ChStats> {
        self.hierarchy.as_ref().map(|h| h.stats())
    }

    /// The underlying road network.
    #[inline]
    pub fn graph(&self) -> &Arc<RoadNetwork> {
        &self.graph
    }

    #[inline]
    fn key(a: NodeId, b: NodeId) -> u64 {
        ((a.0 as u64) << 32) | b.0 as u64
    }

    /// Stripe by source node: batch workers probing different requests'
    /// legs mostly start from distinct sources, so they land on distinct
    /// locks.
    #[inline]
    fn shard(&self, a: NodeId) -> &Mutex<CacheShard> {
        &self.shards[a.0 as usize & (SHARDS - 1)]
    }

    /// Shortest-path cost in seconds from `a` to `b`, or `None` when
    /// unreachable. Unreachability is memoized too.
    pub fn cost(&self, a: NodeId, b: NodeId) -> Option<f64> {
        if a == b {
            return Some(0.0);
        }
        let key = Self::key(a, b);
        let mut shard = self.shard(a).lock();
        if let Some(&c) = shard.costs.get(&key) {
            shard.stats.hits += 1;
            return c.is_finite().then_some(c as f64);
        }
        shard.stats.misses += 1;
        let cost = match shard.ch.as_mut() {
            Some(q) => q.cost(a, b),
            None => shard.engine.cost(&self.graph, a, b),
        };
        shard.costs.insert(key, cost.map_or(f32::INFINITY, |c| c as f32));
        cost
    }

    /// Batch-primes the memo with the costs from every `source` to
    /// `target` using the bucket many-to-one kernel — one downward sweep
    /// instead of one search per source. No-op (returns 0) under the
    /// bidirectional backend, where there is nothing cheaper than the
    /// per-pair search the memo already does; the values installed are
    /// bit-identical to what per-pair queries would produce, so callers
    /// never observe which path filled the memo. Returns the number of
    /// pairs computed (already-memoized pairs are skipped).
    pub fn prime_many_to_one(&self, sources: &[NodeId], target: NodeId) -> usize {
        let Some(buckets) = &self.buckets else {
            return 0;
        };
        let mut missing: Vec<NodeId> = Vec::with_capacity(sources.len());
        for &s in sources {
            if s == target {
                continue;
            }
            if !self.shard(s).lock().costs.contains_key(&Self::key(s, target)) {
                missing.push(s);
            }
        }
        missing.sort_unstable();
        missing.dedup();
        if missing.is_empty() {
            return 0;
        }
        let costs = buckets.lock().many_to_one(&missing, target);
        for (&s, c) in missing.iter().zip(&costs) {
            let mut shard = self.shard(s).lock();
            if let Entry::Vacant(slot) = shard.costs.entry(Self::key(s, target)) {
                slot.insert(c.map_or(f32::INFINITY, |c| c as f32));
                shard.stats.misses += 1;
            }
        }
        missing.len()
    }

    /// Shortest path from `a` to `b` (computed fresh; its cost is memoized).
    pub fn path(&self, a: NodeId, b: NodeId) -> Option<Path> {
        let mut shard = self.shard(a).lock();
        let p = shard.engine.path(&self.graph, a, b)?;
        let key = Self::key(a, b);
        shard.costs.entry(key).or_insert(p.cost_s as f32);
        Some(p)
    }

    /// Pre-warms the memo with all pairs from `sources` × `targets`.
    pub fn warm(&self, sources: &[NodeId], targets: &[NodeId]) {
        for &s in sources {
            for &t in targets {
                let _ = self.cost(s, t);
            }
        }
    }

    /// Snapshot of hit/miss/evict counters, aggregated over all shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in self.shards.iter() {
            let s = shard.lock().stats;
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
        }
        total
    }

    /// Bounds the memo to at most `max_entries`, dropping whole shards'
    /// overflow (entries are evicted in unspecified order; the memo only
    /// accelerates, it never changes answers). Returns how many entries
    /// were evicted. Deployments replaying city-scale traces call this
    /// between episodes to cap resident memory.
    pub fn trim_to(&self, max_entries: usize) -> u64 {
        let per_shard = max_entries / SHARDS;
        let mut evicted = 0u64;
        for shard in self.shards.iter() {
            let mut s = shard.lock();
            if s.costs.len() > per_shard {
                let excess = (s.costs.len() - per_shard) as u64;
                if per_shard == 0 {
                    s.costs.clear();
                } else {
                    let keep: Vec<u64> = s.costs.keys().copied().take(per_shard).collect();
                    let kept: FxHashMap<u64, f32> = keep.iter().map(|k| (*k, s.costs[k])).collect();
                    s.costs = kept;
                }
                s.stats.evictions += excess;
                evicted += excess;
            }
        }
        evicted
    }

    /// Number of memoized entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().costs.len()).sum()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident memory of the memo in bytes.
    pub fn memory_bytes(&self) -> usize {
        // key (8) + value (4) + hashbrown overhead ≈ 1 ctrl byte + padding.
        self.shards.iter().map(|s| s.lock().costs.capacity() * (8 + 4 + 2)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::Dijkstra;
    use mtshare_road::{grid_city, GridCityConfig};

    fn cache() -> (Arc<RoadNetwork>, PathCache) {
        let g = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let c = PathCache::new(g.clone());
        (g, c)
    }

    #[test]
    fn cost_matches_dijkstra_and_hits_on_repeat() {
        let (g, c) = cache();
        let mut d = Dijkstra::new(&g);
        let want = d.cost(&g, NodeId(0), NodeId(399)).unwrap();
        let got1 = c.cost(NodeId(0), NodeId(399)).unwrap();
        let got2 = c.cost(NodeId(0), NodeId(399)).unwrap();
        assert!((got1 - want).abs() < 1e-2);
        assert_eq!(got1, got2);
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn self_cost_is_zero_and_free() {
        let (_, c) = cache();
        assert_eq!(c.cost(NodeId(5), NodeId(5)), Some(0.0));
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn direction_matters_in_the_key() {
        let (_, c) = cache();
        let ab = c.cost(NodeId(0), NodeId(399)).unwrap();
        let ba = c.cost(NodeId(399), NodeId(0)).unwrap();
        // Jittered directed grid: costs differ between directions.
        assert_eq!(c.stats().misses, 2);
        assert!(ab > 0.0 && ba > 0.0);
    }

    #[test]
    fn path_agrees_with_cost() {
        let (_, c) = cache();
        let p = c.path(NodeId(3), NodeId(200)).unwrap();
        let cost = c.cost(NodeId(3), NodeId(200)).unwrap();
        assert!((p.cost_s - cost).abs() < 1e-2);
    }

    #[test]
    fn unreachable_memoized() {
        use mtshare_road::{EdgeSpec, GeoPoint};
        let pts = vec![GeoPoint::new(30.0, 104.0), GeoPoint::new(30.001, 104.0)];
        let edges =
            vec![EdgeSpec { from: NodeId(0), to: NodeId(1), length_m: 10.0, speed_kmh: 15.0 }];
        let g = Arc::new(RoadNetwork::new(pts, &edges).unwrap());
        let c = PathCache::new(g);
        assert_eq!(c.cost(NodeId(1), NodeId(0)), None);
        assert_eq!(c.cost(NodeId(1), NodeId(0)), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn warm_fills_the_memo() {
        let (_, c) = cache();
        c.warm(&[NodeId(0), NodeId(1)], &[NodeId(10), NodeId(11)]);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        assert!(c.memory_bytes() > 0);
    }

    #[test]
    fn trim_to_counts_evictions_and_keeps_answers_correct() {
        let (g, c) = cache();
        let sources: Vec<NodeId> = (0..8).map(NodeId).collect();
        let targets: Vec<NodeId> = (390..399).map(NodeId).collect();
        c.warm(&sources, &targets);
        let before = c.len();
        assert!(before > 0);
        let evicted = c.trim_to(0);
        assert_eq!(evicted, before as u64);
        assert_eq!(c.stats().evictions, evicted);
        assert!(c.is_empty());
        // A re-query after eviction still returns the canonical value.
        let mut d = Dijkstra::new(&g);
        let want = d.cost(&g, NodeId(0), NodeId(390)).unwrap();
        let got = c.cost(NodeId(0), NodeId(390)).unwrap();
        assert!((got - want).abs() < 1e-2);
        // Trimming to a generous bound evicts nothing.
        assert_eq!(c.trim_to(1 << 20), 0);
    }

    #[test]
    fn ch_backend_returns_bit_identical_costs_and_primes_the_memo() {
        let g = Arc::new(grid_city(&GridCityConfig::tiny()).unwrap());
        let ch = Arc::new(crate::ch::ContractionHierarchy::build(&g, 2));
        let bidir = PathCache::new(g.clone());
        let cached = PathCache::with_backend(g.clone(), RouterBackend::Ch(ch));
        assert_eq!(bidir.backend_name(), "bidir");
        assert_eq!(cached.backend_name(), "ch");
        assert!(cached.hierarchy().is_some());

        // Bucket priming installs exactly the values per-pair queries find.
        let sources: Vec<NodeId> = (0..32).map(|i| NodeId(i * 7 % 400)).collect();
        let target = NodeId(399);
        let computed = cached.prime_many_to_one(&sources, target);
        assert!(computed > 0);
        // `bidir` never primes: the bucket kernel needs a hierarchy.
        assert_eq!(bidir.prime_many_to_one(&sources, target), 0);
        for &s in &sources {
            assert_eq!(cached.cost(s, target), bidir.cost(s, target), "{s}");
        }
        // Every probe above hit the primed memo (sources are distinct and
        // none equals the target, so all 32 were bucket-computed).
        assert_eq!(computed, sources.len());
        let st = cached.stats();
        assert_eq!(st.hits as usize, sources.len());
        let ch_stats = cached.ch_stats().unwrap();
        assert_eq!(ch_stats.bucket_sweeps, 1);
        // Re-priming the same batch computes nothing new.
        assert_eq!(cached.prime_many_to_one(&sources, target), 0);
        assert_eq!(cached.ch_stats().unwrap().bucket_sweeps, 1);

        // Plain cost misses route through the CH query path.
        assert_eq!(cached.cost(NodeId(1), NodeId(398)), bidir.cost(NodeId(1), NodeId(398)));
        assert!(cached.ch_stats().unwrap().p2p_queries > 0);
        // Paths still come from the canonical bidirectional engine.
        assert_eq!(cached.path(NodeId(1), NodeId(398)), bidir.path(NodeId(1), NodeId(398)));
    }

    #[test]
    fn sources_land_on_distinct_shards_but_answers_agree() {
        // Sources 0..16 map to all 16 stripes; repeat queries hit their
        // own shard's memo and aggregate counters stay exact.
        let (g, c) = cache();
        let mut d = Dijkstra::new(&g);
        for src in 0..16u32 {
            let want = d.cost(&g, NodeId(src), NodeId(399)).unwrap();
            let got = c.cost(NodeId(src), NodeId(399)).unwrap();
            assert!((got - want).abs() < 1e-2, "src={src}");
            assert_eq!(c.cost(NodeId(src), NodeId(399)), Some(got));
        }
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (16, 16));
        assert_eq!(c.len(), 16);
    }
}
